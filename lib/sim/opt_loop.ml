open Orianna_isa
open Orianna_hw

(* The measured side of the profile-guided optimization loop: [Opt]
   owns the passes and the accept-if-better fixpoint, this module
   closes the loop with the cycle-level scheduler — compile ->
   [Schedule.run] -> operand-stall attribution -> feed both the cycle
   count and the per-producer stall weights back into the optimizer.
   Used by [Pipeline.frame], the serving compile path, the CLI and the
   bench at [-O] levels that measure (every level when invoked through
   {!optimize}). *)

let probe ?accel ?(policy = Schedule.Ooo_full) () : Opt.probe =
  let accel = match accel with Some a -> a | None -> Accel.base () in
  fun p ->
    let r = Schedule.run ~accel ~policy p in
    (r.Schedule.cycles, Trace.operand_stalls p r)

let optimize_traced ?accel ?(policy = Schedule.Ooo_full) ?(level = 1) p =
  let accel = match accel with Some a -> a | None -> Accel.base () in
  Opt.optimize_traced ~level ~cost_model:(Accel.cost_model accel) ~probe:(probe ~accel ~policy ()) p

let optimize ?accel ?policy ?level p =
  let p', _, _ = optimize_traced ?accel ?policy ?level p in
  p'
