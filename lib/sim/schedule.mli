(** Cycle-level execution of a compiled instruction stream on a
    generated accelerator (Sec. 6.3).

    Three issue policies:

    - [In_order]: the ORIANNA-IO variant — instructions issue strictly
      in program order (an instruction may not start before its
      predecessor has started), stalling on operand dependencies and
      structural hazards;
    - [Ooo_fine]: dataflow issue {e within} each algorithm, but
      algorithms of the application execute one after another — this
      isolates the contribution of coarse-grained reordering;
    - [Ooo_full]: the ORIANNA-OoO variant — dataflow issue across the
      whole application; instructions of different algorithms
      interleave freely on the shared units.

    Scheduling is greedy list scheduling with critical-path priority,
    which is what a scoreboard with a full instruction window
    achieves. *)

open Orianna_isa
open Orianna_hw

type policy = In_order | Ooo_fine | Ooo_full

exception
  Deadlock of {
    cycle : int;  (** simulated cycle at which progress stopped *)
    stuck : int list;  (** instruction ids ready or arriving but unschedulable *)
    occupancy : (Unit_model.unit_class * int list) list;
        (** per class, the busy-until cycle of every live instance —
            an empty list means the class has no live instances *)
  }
(** Raised when no pending instruction can ever issue — in practice
    only when a unit class required by the program has zero live
    instances (a faulted accelerator).  Structured so fault-campaign
    logs can name the stuck instructions and the unit occupancy. *)

val policy_name : policy -> string

type result = {
  cycles : int;  (** makespan *)
  seconds : float;
  dynamic_energy_j : float;
  static_energy_j : float;
  energy_j : float;
  phase_busy : (Instr.phase * int) list;  (** busy cycles per phase *)
  unit_busy : (Unit_model.unit_class * int) list;
  utilization : (Unit_model.unit_class * float) list;  (** busy / (makespan * instances) *)
  instructions : int;
  starts : int array;  (** per-instruction start cycle *)
  finishes : int array;
  issue_base : int array;
      (** earliest cycle each instruction may issue at: 0, or the
          partition start under [Ooo_fine] — the base of the stall
          accounting *)
  stall_operand_cycles : int;
      (** summed over instructions: cycles spent waiting on operands
          (a source still executing) before issue, relative to the
          instruction's earliest issue cycle (0, or the partition start
          under [Ooo_fine]) *)
  stall_structural_cycles : int;
      (** summed over instructions: cycles between operands ready and
          issue — every unit instance of the class busy, or the serial
          in-order controller.  Per instruction,
          [stall_operand + stall_structural + latency = finish - base],
          so the totals tie out against the makespan accounting. *)
}

type priority_policy =
  | Critical_path  (** longest latency-weighted path to a sink (default) *)
  | Fifo  (** program order among ready instructions *)

val run :
  ?priority:priority_policy ->
  ?jitter:(int -> int) ->
  accel:Accel.t ->
  policy:policy ->
  Program.t ->
  result
(** [jitter] (fault injection) adds extra execution cycles to an
    instruction on top of its analytic unit latency; negative values
    are clamped to 0.  Omitted, the schedule is bit-identical to
    previous behaviour. *)

val check_invariants : accel:Accel.t -> Program.t -> result -> (unit, string) Stdlib.result
(** Runtime assertion of the schedule's internal accounting, re-derived
    from nominal unit latencies: per instruction
    [stall_operand + stall_structural + latency = finish - issue_base],
    causality ([start >= operands ready]), latency conformance
    ([finish - start] equals the unit model), and makespan consistency.
    [Error msg] names the first violation — under fault injection this
    is the detector for latency anomalies. *)

val frame_seconds : result -> float
(** Alias for [.seconds] — one compiled program is one frame's
    iteration. *)

val pp_result : Format.formatter -> result -> unit
