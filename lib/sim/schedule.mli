(** Cycle-level execution of a compiled instruction stream on a
    generated accelerator (Sec. 6.3).

    Three issue policies:

    - [In_order]: the ORIANNA-IO variant — instructions issue strictly
      in program order (an instruction may not start before its
      predecessor has started), stalling on operand dependencies and
      structural hazards;
    - [Ooo_fine]: dataflow issue {e within} each algorithm, but
      algorithms of the application execute one after another — this
      isolates the contribution of coarse-grained reordering;
    - [Ooo_full]: the ORIANNA-OoO variant — dataflow issue across the
      whole application; instructions of different algorithms
      interleave freely on the shared units.

    Scheduling is greedy list scheduling with critical-path priority,
    which is what a scoreboard with a full instruction window
    achieves. *)

open Orianna_isa
open Orianna_hw

type policy = In_order | Ooo_fine | Ooo_full

val policy_name : policy -> string

type result = {
  cycles : int;  (** makespan *)
  seconds : float;
  dynamic_energy_j : float;
  static_energy_j : float;
  energy_j : float;
  phase_busy : (Instr.phase * int) list;  (** busy cycles per phase *)
  unit_busy : (Unit_model.unit_class * int) list;
  utilization : (Unit_model.unit_class * float) list;  (** busy / (makespan * instances) *)
  instructions : int;
  starts : int array;  (** per-instruction start cycle *)
  finishes : int array;
  stall_operand_cycles : int;
      (** summed over instructions: cycles spent waiting on operands
          (a source still executing) before issue, relative to the
          instruction's earliest issue cycle (0, or the partition start
          under [Ooo_fine]) *)
  stall_structural_cycles : int;
      (** summed over instructions: cycles between operands ready and
          issue — every unit instance of the class busy, or the serial
          in-order controller.  Per instruction,
          [stall_operand + stall_structural + latency = finish - base],
          so the totals tie out against the makespan accounting. *)
}

type priority_policy =
  | Critical_path  (** longest latency-weighted path to a sink (default) *)
  | Fifo  (** program order among ready instructions *)

val run : ?priority:priority_policy -> accel:Accel.t -> policy:policy -> Program.t -> result

val frame_seconds : result -> float
(** Alias for [.seconds] — one compiled program is one frame's
    iteration. *)

val pp_result : Format.formatter -> result -> unit
