open Orianna_isa
open Orianna_hw

let gantt_csv (p : Program.t) (r : Schedule.result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "id,opcode,phase,algo,unit,start,finish,cycles\n";
  Array.iter
    (fun (ins : Instr.t) ->
      let id = ins.Instr.id in
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%d,%s,%d,%d,%d\n" id
           (Instr.opcode_name ins.Instr.op)
           (Instr.phase_name ins.Instr.phase)
           ins.Instr.algo
           (Unit_model.class_name (Unit_model.class_of_op ins.Instr.op))
           r.Schedule.starts.(id) r.Schedule.finishes.(id)
           (r.Schedule.finishes.(id) - r.Schedule.starts.(id))))
    p.Program.instrs;
  Buffer.contents buf

let utilization_timeline ?(width = 72) (p : Program.t) (r : Schedule.result) =
  let makespan = max 1 r.Schedule.cycles in
  let buf = Buffer.create 1024 in
  List.iter
    (fun cls ->
      let busy = Array.make width 0.0 in
      Array.iter
        (fun (ins : Instr.t) ->
          if Unit_model.class_of_op ins.Instr.op = cls then begin
            let s = r.Schedule.starts.(ins.Instr.id) and f = r.Schedule.finishes.(ins.Instr.id) in
            (* Spread the busy interval over the bins it overlaps. *)
            let bin_width = float_of_int makespan /. float_of_int width in
            let b0 = int_of_float (float_of_int s /. bin_width) in
            let b1 = min (width - 1) (int_of_float (float_of_int (f - 1) /. bin_width)) in
            for b = b0 to b1 do
              let bin_lo = float_of_int b *. bin_width in
              let bin_hi = bin_lo +. bin_width in
              let overlap = Float.min bin_hi (float_of_int f) -. Float.max bin_lo (float_of_int s) in
              if overlap > 0.0 then busy.(b) <- busy.(b) +. overlap
            done
          end)
        p.Program.instrs;
      Buffer.add_string buf (Printf.sprintf "%-8s " (Unit_model.class_name cls));
      let bin_width = float_of_int makespan /. float_of_int width in
      Array.iter
        (fun b ->
          let frac = b /. bin_width in
          if frac <= 0.01 then Buffer.add_char buf '.'
          else begin
            let level = min 9 (int_of_float (frac *. 10.0)) in
            Buffer.add_char buf (Char.chr (Char.code '0' + level))
          end)
        busy;
      Buffer.add_char buf '\n')
    Unit_model.all_classes;
  Buffer.contents buf

module Json = Orianna_obs.Json
module Chrome_trace = Orianna_obs.Chrome_trace

(* One Chrome-trace "process" for the accelerator, one "thread" per
   unit-class instance.  Instances are not recorded by the scheduler
   (only class counts are), so replay the valid schedule greedily:
   instructions of a class, in start order, each take the
   lowest-numbered instance free at their start cycle.  A valid
   schedule never overlaps more instructions than instances, so this
   interval coloring never needs an extra track — but allocate one
   defensively rather than stack slices on top of each other. *)
let accel_pid = 1

let chrome_events (p : Program.t) (r : Schedule.result) =
  let by_class =
    List.map
      (fun cls ->
        let mine =
          Array.to_list p.Program.instrs
          |> List.filter (fun (i : Instr.t) -> Unit_model.class_of_op i.Instr.op = cls)
          |> List.sort (fun (a : Instr.t) (b : Instr.t) ->
                 compare
                   (r.Schedule.starts.(a.Instr.id), a.Instr.id)
                   (r.Schedule.starts.(b.Instr.id), b.Instr.id))
        in
        (cls, mine))
      Unit_model.all_classes
  in
  let events = ref [] in
  let tid_base = ref 0 in
  List.iter
    (fun (cls, instrs) ->
      let free = ref [||] in
      let instance_of start =
        let k = ref (-1) in
        Array.iteri (fun i ft -> if !k < 0 && ft <= start then k := i) !free;
        if !k < 0 then begin
          free := Array.append !free [| 0 |];
          k := Array.length !free - 1
        end;
        !k
      in
      let used = ref 0 in
      List.iter
        (fun (ins : Instr.t) ->
          let id = ins.Instr.id in
          let start = r.Schedule.starts.(id) and finish = r.Schedule.finishes.(id) in
          let k = instance_of start in
          !free.(k) <- finish;
          used := max !used (k + 1);
          events :=
            Chrome_trace.Duration
              {
                name = Instr.opcode_name ins.Instr.op;
                cat = Instr.phase_name ins.Instr.phase;
                pid = accel_pid;
                tid = !tid_base + k;
                ts_us = float_of_int start;
                dur_us = float_of_int (finish - start);
                args =
                  [
                    ("id", Json.int id);
                    ("algo", Json.int ins.Instr.algo);
                    ("tag", Json.Str ins.Instr.tag);
                    ("shape", Json.Str (Printf.sprintf "%dx%d" ins.Instr.rows ins.Instr.cols));
                  ];
              }
            :: !events)
        instrs;
      for k = 0 to !used - 1 do
        events :=
          Chrome_trace.Thread_name
            {
              pid = accel_pid;
              tid = !tid_base + k;
              name = Printf.sprintf "%s#%d" (Unit_model.class_name cls) k;
            }
          :: !events
      done;
      tid_base := !tid_base + max 1 !used)
    by_class;
  Chrome_trace.Process_name { pid = accel_pid; name = "accelerator" } :: List.rev !events

let chrome_trace p r = Chrome_trace.to_string (chrome_events p r)

let phase_color = function
  | Instr.Construct -> "lightblue"
  | Instr.Decompose -> "lightsalmon"
  | Instr.Backsub -> "lightgreen"

let to_dot (p : Program.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph program {\n  rankdir=LR;\n  node [shape=box, style=filled];\n";
  Array.iter
    (fun (ins : Instr.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  i%d [label=\"%s\\n%dx%d\", fillcolor=%s];\n" ins.Instr.id
           (Instr.opcode_name ins.Instr.op) ins.Instr.rows ins.Instr.cols
           (phase_color ins.Instr.phase));
      Array.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "  i%d -> i%d;\n" s ins.Instr.id))
        ins.Instr.srcs)
    p.Program.instrs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Stall attribution for the operand-aware reorder pass.               *)

let operand_stalls (p : Program.t) (r : Schedule.result) =
  let n = Array.length p.Program.instrs in
  let out = Array.make n 0 in
  Array.iter
    (fun (ins : Instr.t) ->
      let id = ins.Instr.id in
      let base = r.Schedule.issue_base.(id) in
      let ready = ref base and culprit = ref (-1) in
      Array.iter
        (fun s ->
          if r.Schedule.finishes.(s) > !ready then begin
            ready := r.Schedule.finishes.(s);
            culprit := s
          end)
        ins.Instr.srcs;
      if !culprit >= 0 && !ready > base then
        out.(!culprit) <- out.(!culprit) + (!ready - base))
    p.Program.instrs;
  out

let reoptimize ?accel ?(policy = Schedule.In_order) (p : Program.t) =
  let accel = match accel with Some a -> a | None -> Accel.base () in
  let r = Schedule.run ~accel ~policy p in
  let stalls = operand_stalls p r in
  fst (Opt.reorder ~stalls p)
