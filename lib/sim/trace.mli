(** Schedule inspection tooling.

    The out-of-order controller's behaviour is easiest to audit
    visually: {!gantt_csv} dumps one row per instruction with its unit
    class, start and finish cycles (load into any spreadsheet/plotting
    tool), and {!utilization_timeline} renders a coarse textual
    heat-strip per unit class. *)

open Orianna_isa

val gantt_csv : Program.t -> Schedule.result -> string
(** Columns: id, opcode, phase, algo, unit, start, finish, cycles. *)

val utilization_timeline : ?width:int -> Program.t -> Schedule.result -> string
(** One line per unit class: time binned into [width] columns
    (default 72), each column a digit 0-9 for the fraction of the bin
    the class was busy ('.' for idle). *)

val to_dot : Program.t -> string
(** GraphViz rendering of the instruction dependency DAG, colored by
    phase (for small programs / documentation). *)

val accel_pid : int
(** The Chrome-trace process id of the accelerator tracks (1; pid 0 is
    the pipeline span track). *)

val chrome_events : Program.t -> Schedule.result -> Orianna_obs.Chrome_trace.event list
(** One duration slice per instruction on one track per unit-class
    {e instance} (derived by replaying the schedule), with
    thread-name/process-name metadata. One simulated cycle maps to one
    trace microsecond. *)

val chrome_trace : Program.t -> Schedule.result -> string
(** {!chrome_events} serialized as a Chrome trace-event JSON object —
    loadable in Perfetto or chrome://tracing. *)

val operand_stalls : Program.t -> Schedule.result -> int array
(** Per-instruction operand-stall attribution: for every instruction
    that had to wait on operands past its earliest issue cycle
    ([issue_base]), the wait is charged to its last-finishing source.
    The resulting array (cycles charged to each {e producer}) is the
    weight vector [Orianna_isa.Opt.reorder] accepts to hoist
    long-latency producers using measured rather than modeled
    latencies. *)

val reoptimize :
  ?accel:Orianna_hw.Accel.t -> ?policy:Schedule.policy -> Program.t -> Program.t
(** Schedule-informed reorder (the [-O 2] feedback round): run the
    program once on [accel] (default [Accel.base ()]) under [policy]
    (default [In_order]), attribute operand-wait cycles to their
    last-finishing producers with {!operand_stalls}, and feed the
    measured weights back into [Opt.reorder].  Shared by
    [Pipeline.reoptimize] and the serving runtime's compile path. *)
