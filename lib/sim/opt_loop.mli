(** Profile-guided optimization against the cycle-level scheduler.

    [Orianna_isa.Opt] owns the passes and the accept-if-better
    fixpoint; this module supplies the measurement: schedule the
    candidate on a concrete accelerator, return the makespan and the
    per-producer operand-stall attribution, and inject the
    accelerator's real cost model ({!Orianna_hw.Accel.cost_model}).
    With a measured probe the optimizer's guard holds at {e every}
    level: an optimized stream never schedules slower than its input
    on the probing accelerator/policy, and cycles are monotonically
    non-increasing in the level. *)

open Orianna_isa
open Orianna_hw

val probe : ?accel:Accel.t -> ?policy:Schedule.policy -> unit -> Opt.probe
(** Measurement hook for [Opt.optimize_traced]: [Schedule.run] under
    the given accelerator (default [Accel.base ()]) and policy
    (default [Ooo_full]), paired with
    [Trace.operand_stalls] attribution. *)

val optimize_traced :
  ?accel:Accel.t ->
  ?policy:Schedule.policy ->
  ?level:int ->
  Program.t ->
  Program.t * int array * Opt.report
(** [Opt.optimize_traced] with this accelerator's cost model and a
    measured probe.  Default level 1, accelerator [Accel.base ()],
    policy [Ooo_full]. *)

val optimize :
  ?accel:Accel.t -> ?policy:Schedule.policy -> ?level:int -> Program.t -> Program.t
(** {!optimize_traced} without the map and report. *)
