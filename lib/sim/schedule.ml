open Orianna_isa
open Orianna_hw
module Heap = Orianna_util.Heap
module Obs = Orianna_obs.Obs

type policy = In_order | Ooo_fine | Ooo_full

exception
  Deadlock of {
    cycle : int;
    stuck : int list;
    occupancy : (Unit_model.unit_class * int list) list;
  }

let policy_name = function
  | In_order -> "in-order"
  | Ooo_fine -> "ooo-fine"
  | Ooo_full -> "ooo-full"

type result = {
  cycles : int;
  seconds : float;
  dynamic_energy_j : float;
  static_energy_j : float;
  energy_j : float;
  phase_busy : (Instr.phase * int) list;
  unit_busy : (Unit_model.unit_class * int) list;
  utilization : (Unit_model.unit_class * float) list;
  instructions : int;
  starts : int array;
  finishes : int array;
  issue_base : int array;
  stall_operand_cycles : int;
  stall_structural_cycles : int;
}

let class_index cls =
  let rec find i = function
    | [] -> assert false
    | c :: rest -> if c = cls then i else find (i + 1) rest
  in
  find 0 Unit_model.all_classes

let num_classes = List.length Unit_model.all_classes
let classes_arr = Array.of_list Unit_model.all_classes

(* Dense per-run scratch, sized to the program.  [schedule_ooo] used
   to rebuild hashtables keyed by instruction id on every call; these
   arrays are allocated once per [run] and reused across the
   [Ooo_fine] partitions.  Invariant between calls: [in_subset] is all
   [false] and [children] all [[]] ([indeg]/[ready_dep_time] are
   (re)initialised per subset id, so they need no clearing). *)
type scratch = {
  in_subset : bool array;
  indeg : int array;
  children : int list array;
  ready_dep_time : int array;
}

let make_scratch n =
  {
    in_subset = Array.make n false;
    indeg = Array.make n 0;
    children = Array.make n [];
    ready_dep_time = Array.make n 0;
  }

(* Critical-path priority: longest latency-weighted path to a sink. *)
let priorities (p : Program.t) latency_of =
  let n = Array.length p.Program.instrs in
  let prio = Array.make n 0 in
  for i = n - 1 downto 0 do
    let ins = p.Program.instrs.(i) in
    prio.(i) <- max prio.(i) (latency_of i);
    Array.iter
      (fun s -> prio.(s) <- max prio.(s) (prio.(i) + latency_of s))
      ins.Instr.srcs
  done;
  prio

(* Dataflow (OoO) list scheduling of the instruction subset [ids],
   starting no earlier than [t0].  Returns the subset makespan.
   [cls_of] maps instruction id to its dense unit-class index (the
   per-arrival [class_index] list scan, hoisted to one pass in [run]);
   [scratch] is the caller's reusable dependency-tracking state.
   Heap tie-breaking depends on push order, so the traversal orders
   here (ids order for roots, srcs order for dependency edges,
   prepend-then-iterate for children) are part of the bit-identical
   contract with the seed scheduler. *)
let schedule_ooo (p : Program.t) ~latency_of ~prio ~cls_of ~scratch ~counts ~starts ~finishes
    ~ids ~t0 =
  let { in_subset; indeg; children; ready_dep_time } = scratch in
  Array.iter (fun id -> in_subset.(id) <- true) ids;
  Array.iter
    (fun id ->
      let ins = p.Program.instrs.(id) in
      let deps = ref 0 in
      Array.iter
        (fun s ->
          if in_subset.(s) then begin
            incr deps;
            children.(s) <- id :: children.(s)
          end)
        ins.Instr.srcs;
      indeg.(id) <- !deps;
      ready_dep_time.(id) <- t0)
    ids;
  (* Per-class: arrivals ordered by ready time, ready ordered by
     descending priority.  Unit instances as free-time arrays. *)
  let arrivals =
    Array.init num_classes (fun _ -> Heap.create ~cmp:(fun (ta, _) (tb, _) -> compare ta tb))
  in
  let ready =
    Array.init num_classes (fun _ -> Heap.create ~cmp:(fun (pa, _) (pb, _) -> compare pb pa))
  in
  let free : int array array =
    Array.of_list
      (List.map (fun cls -> Array.make (List.assoc cls counts) t0) Unit_model.all_classes)
  in
  let arrive id t = Heap.push arrivals.(cls_of.(id)) (max t t0, id) in
  Array.iter
    (fun id -> if indeg.(id) = 0 then arrive id t0)
    ids;
  let remaining = ref (Array.length ids) in
  let t = ref t0 in
  let makespan = ref t0 in
  let telemetry = Obs.enabled () in
  while !remaining > 0 do
    (* Promote arrivals whose time has come. *)
    for c = 0 to num_classes - 1 do
      let continue_ = ref true in
      while !continue_ do
        match Heap.peek arrivals.(c) with
        | Some (ta, id) when ta <= !t ->
            ignore (Heap.pop arrivals.(c));
            Heap.push ready.(c) (prio.(id), id)
        | Some _ | None -> continue_ := false
      done
    done;
    if telemetry then begin
      let depth = ref 0 in
      for c = 0 to num_classes - 1 do
        depth := !depth + Heap.size ready.(c)
      done;
      Obs.observe "sim.ready_queue_depth" (float_of_int !depth)
    end;
    (* Greedily fill free unit instances with the highest-priority
       ready instruction of their class. *)
    let scheduled_any = ref false in
    for c = 0 to num_classes - 1 do
      let continue_ = ref true in
      while !continue_ && not (Heap.is_empty ready.(c)) do
        (* Find a free instance. *)
        let best = ref (-1) in
        Array.iteri (fun k ft -> if ft <= !t && (!best < 0 || ft < free.(c).(!best)) then best := k) free.(c);
        if !best < 0 then continue_ := false
        else begin
          match Heap.pop ready.(c) with
          | None -> continue_ := false
          | Some (_, id) ->
              let start = max !t ready_dep_time.(id) in
              let lat = latency_of id in
              let finish = start + lat in
              starts.(id) <- start;
              finishes.(id) <- finish;
              free.(c).(!best) <- finish;
              makespan := max !makespan finish;
              decr remaining;
              scheduled_any := true;
              List.iter
                (fun child ->
                  let d = indeg.(child) - 1 in
                  indeg.(child) <- d;
                  if finish > ready_dep_time.(child) then ready_dep_time.(child) <- finish;
                  if d = 0 then arrive child finish)
                children.(id)
        end
      done
    done;
    if !remaining > 0 && not !scheduled_any then begin
      (* Advance time to the next event: an arrival or a unit free. *)
      let next = ref max_int in
      for c = 0 to num_classes - 1 do
        (match Heap.peek arrivals.(c) with Some (ta, _) when ta > !t -> next := min !next ta | _ -> ());
        if not (Heap.is_empty ready.(c)) then
          Array.iter (fun ft -> if ft > !t then next := min !next ft) free.(c)
      done;
      if !next = max_int then begin
        (* Everything ready but no instance ever frees — e.g. a class
           needed by a pending instruction has zero live instances.
           Report which instructions are stuck and what every unit
           instance is doing so campaign logs stay actionable. *)
        let stuck = ref [] in
        for c = num_classes - 1 downto 0 do
          let drain h of_entry =
            let continue_ = ref true in
            while !continue_ do
              match Heap.pop h with
              | Some e -> stuck := of_entry e :: !stuck
              | None -> continue_ := false
            done
          in
          drain ready.(c) snd;
          drain arrivals.(c) snd
        done;
        let occupancy =
          List.mapi (fun c cls -> (cls, Array.to_list free.(c))) Unit_model.all_classes
        in
        raise (Deadlock { cycle = !t; stuck = List.sort compare !stuck; occupancy })
      end;
      t := !next
    end
  done;
  (* Restore the inter-call scratch invariant for the next partition. *)
  Array.iter
    (fun id ->
      in_subset.(id) <- false;
      children.(id) <- [])
    ids;
  !makespan

(* The in-order controller has no scoreboard: it dispatches one matrix
   instruction, waits for its completion, then dispatches the next —
   instructions never overlap, whatever units exist (Sec. 7.1's
   ORIANNA-IO). *)
let schedule_in_order (p : Program.t) ~latency_of ~counts ~starts ~finishes =
  ignore counts;
  let makespan = ref 0 in
  Array.iter
    (fun (ins : Instr.t) ->
      let id = ins.Instr.id in
      let dep_ready = Array.fold_left (fun acc s -> max acc finishes.(s)) 0 ins.Instr.srcs in
      let start = max dep_ready !makespan in
      let finish = start + latency_of id in
      starts.(id) <- start;
      finishes.(id) <- finish;
      makespan := finish)
    p.Program.instrs;
  !makespan

type priority_policy = Critical_path | Fifo

let nominal_latency_of ~accel (p : Program.t) =
  let src_shape id = (p.Program.instrs.(id).Instr.rows, p.Program.instrs.(id).Instr.cols) in
  fun id ->
    let ins = p.Program.instrs.(id) in
    Unit_model.latency
      (Unit_model.class_of_op ins.Instr.op)
      ~qr_rotators:accel.Accel.qr_rotators ins ~src_shape

let run ?(priority = Critical_path) ?jitter ~accel ~policy (p : Program.t) =
  Obs.with_span "sim.schedule"
    ~attrs:
      [
        ("policy", policy_name policy);
        ("instructions", string_of_int (Array.length p.Program.instrs));
      ]
  @@ fun () ->
  let n = Array.length p.Program.instrs in
  let src_shape id = (p.Program.instrs.(id).Instr.rows, p.Program.instrs.(id).Instr.cols) in
  let nominal = nominal_latency_of ~accel p in
  (* [jitter] models degraded silicon: extra execution cycles per
     instruction, on top of the analytic unit latency.  The fault
     campaign injects here; without it the schedule is bit-identical
     to the jitter-free one. *)
  let latency_of =
    match jitter with None -> nominal | Some j -> fun id -> nominal id + max 0 (j id)
  in
  let counts = accel.Accel.counts in
  let starts = Array.make n 0 and finishes = Array.make n 0 in
  (* Dense class index per instruction, computed once — the scheduler
     and the accounting below used to redo an O(num_classes) list scan
     per lookup. *)
  let cls_of =
    Array.map
      (fun (ins : Instr.t) -> class_index (Unit_model.class_of_op ins.Instr.op))
      p.Program.instrs
  in
  (* Earliest cycle each instruction may issue at: 0 except under
     [Ooo_fine], where each algorithm partition starts after the
     previous one's makespan. Stall accounting is relative to it. *)
  let issue_base = Array.make n 0 in
  let makespan =
    match policy with
    | In_order -> schedule_in_order p ~latency_of ~counts ~starts ~finishes
    | Ooo_full ->
        let prio =
          match priority with
          | Critical_path -> priorities p latency_of
          | Fifo -> Array.init n (fun i -> -i)
        in
        schedule_ooo p ~latency_of ~prio ~cls_of ~scratch:(make_scratch n) ~counts ~starts
          ~finishes ~ids:(Array.init n Fun.id) ~t0:0
    | Ooo_fine ->
        let prio =
          match priority with
          | Critical_path -> priorities p latency_of
          | Fifo -> Array.init n (fun i -> -i)
        in
        (* Partition by algorithm in first-appearance order, one pass
           over the stream, then run the partitions back to back. *)
        let buckets = Hashtbl.create 8 in
        let algo_order = ref [] in
        Array.iter
          (fun (i : Instr.t) ->
            match Hashtbl.find_opt buckets i.Instr.algo with
            | Some ids -> ids := i.Instr.id :: !ids
            | None ->
                Hashtbl.add buckets i.Instr.algo (ref [ i.Instr.id ]);
                algo_order := i.Instr.algo :: !algo_order)
          p.Program.instrs;
        let scratch = make_scratch n in
        List.fold_left
          (fun t0 algo ->
            let ids = Array.of_list (List.rev !(Hashtbl.find buckets algo)) in
            Array.iter (fun id -> issue_base.(id) <- t0) ids;
            schedule_ooo p ~latency_of ~prio ~cls_of ~scratch ~counts ~starts ~finishes ~ids
              ~t0)
          0 (List.rev !algo_order)
  in
  (* Accounting. *)
  let phase_busy = Hashtbl.create 4 in
  let bump tbl k v = Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let unit_busy_arr = Array.make num_classes 0 in
  let unit_seen = Array.make num_classes false in
  let dynamic = ref 0.0 in
  (* Stall causes: an instruction issuing at [start] after becoming
     issuable at [issue_base] spent [ready - issue_base] cycles waiting
     on operands (its sources still executing) and [start - ready]
     cycles on a structural hazard (operands done, every unit instance
     of its class busy — or, in order, the serial controller). *)
  let stall_operand = ref 0 and stall_structural = ref 0 in
  Array.iter
    (fun (ins : Instr.t) ->
      let id = ins.Instr.id in
      let c = cls_of.(id) in
      let lat = latency_of id in
      bump phase_busy ins.Instr.phase lat;
      unit_busy_arr.(c) <- unit_busy_arr.(c) + lat;
      unit_seen.(c) <- true;
      let base = issue_base.(id) in
      let ready = Array.fold_left (fun acc s -> max acc finishes.(s)) base ins.Instr.srcs in
      stall_operand := !stall_operand + (ready - base);
      stall_structural := !stall_structural + (starts.(id) - ready);
      dynamic := !dynamic +. Unit_model.dynamic_energy_nj classes_arr.(c) ins ~src_shape)
    p.Program.instrs;
  if Obs.enabled () then begin
    Obs.count "sim.instructions" ~n;
    Obs.count "sim.stall.operand_cycles" ~n:!stall_operand;
    Obs.count "sim.stall.structural_cycles" ~n:!stall_structural;
    Obs.set_gauge "sim.makespan_cycles" (float_of_int makespan)
  end;
  let seconds = float_of_int makespan /. (accel.Accel.clock_mhz *. 1e6) in
  let dynamic_energy_j = !dynamic *. 1e-9 in
  let static_energy_j = Accel.static_power_w accel *. seconds in
  let utilization =
    List.map
      (fun (cls, k) ->
        let busy = unit_busy_arr.(class_index cls) in
        let denom = float_of_int (max 1 (makespan * k)) in
        (cls, float_of_int busy /. denom))
      counts
  in
  let unit_busy =
    let acc = ref [] in
    for c = num_classes - 1 downto 0 do
      if unit_seen.(c) then acc := (classes_arr.(c), unit_busy_arr.(c)) :: !acc
    done;
    List.sort compare !acc
  in
  {
    cycles = makespan;
    seconds;
    dynamic_energy_j;
    static_energy_j;
    energy_j = dynamic_energy_j +. static_energy_j;
    phase_busy = Hashtbl.fold (fun k v acc -> (k, v) :: acc) phase_busy [] |> List.sort compare;
    unit_busy;
    utilization;
    instructions = n;
    starts;
    finishes;
    issue_base;
    stall_operand_cycles = !stall_operand;
    stall_structural_cycles = !stall_structural;
  }

(* The PR-1 stall accounting, re-derived from nominal unit latencies
   and checked against what the schedule actually recorded.  Under
   fault injection this is the runtime assertion that flags latency
   anomalies (a unit taking longer than its analytic model) and broken
   degraded schedules; on a healthy run it always returns [Ok]. *)
let check_invariants ~accel (p : Program.t) r =
  let n = Array.length p.Program.instrs in
  if r.instructions <> n || Array.length r.starts <> n then
    Result.Error "result does not describe this program"
  else begin
    let latency_of = nominal_latency_of ~accel p in
    let violation = ref None in
    let flag msg = if !violation = None then violation := Some msg in
    let operand = ref 0 and structural = ref 0 and makespan = ref 0 in
    Array.iter
      (fun (ins : Instr.t) ->
        let id = ins.Instr.id in
        let lat = latency_of id in
        let base = r.issue_base.(id) in
        let ready =
          Array.fold_left (fun acc s -> max acc r.finishes.(s)) base ins.Instr.srcs
        in
        if r.finishes.(id) - r.starts.(id) <> lat then
          flag
            (Printf.sprintf "latency anomaly: #%d ran %d cycles, unit model says %d" id
               (r.finishes.(id) - r.starts.(id))
               lat)
        else if r.starts.(id) < ready then
          flag (Printf.sprintf "causality violation: #%d issued before its operands" id);
        operand := !operand + (ready - base);
        structural := !structural + (r.starts.(id) - ready);
        makespan := max !makespan r.finishes.(id))
      p.Program.instrs;
    if !violation = None then begin
      if !operand <> r.stall_operand_cycles then
        flag
          (Printf.sprintf "stall accounting: operand %d recorded, %d derived"
             r.stall_operand_cycles !operand);
      if !structural <> r.stall_structural_cycles then
        flag
          (Printf.sprintf "stall accounting: structural %d recorded, %d derived"
             r.stall_structural_cycles !structural);
      if !makespan <> r.cycles then
        flag (Printf.sprintf "makespan %d recorded, %d derived" r.cycles !makespan)
    end;
    match !violation with None -> Ok () | Some msg -> Result.Error msg
  end

let frame_seconds r = r.seconds

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%d instrs, %d cycles (%.3f ms), energy %.3f mJ (dyn %.3f + static %.3f)@,"
    r.instructions r.cycles (r.seconds *. 1e3) (r.energy_j *. 1e3) (r.dynamic_energy_j *. 1e3)
    (r.static_energy_j *. 1e3);
  List.iter
    (fun (ph, c) -> Format.fprintf ppf "  %-10s %8d busy cycles@," (Instr.phase_name ph) c)
    r.phase_busy;
  List.iter
    (fun (cls, u) -> Format.fprintf ppf "  %-8s %5.1f%% utilized@," (Unit_model.class_name cls) (100.0 *. u))
    r.utilization;
  Format.fprintf ppf "  stalls: %d operand + %d structural instruction-cycles@,"
    r.stall_operand_cycles r.stall_structural_cycles;
  Format.fprintf ppf "@]"
