let src = Logs.Src.create "orianna.dse" ~doc:"Hardware design-space exploration"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Orianna_obs.Obs
module Pool = Orianna_par.Pool

type move = Add_unit of Unit_model.unit_class | Widen_qr

type step = {
  added : move option;
  accel : Accel.t;
  objective : float;
  resources : Resource.t;
}

type result = { best : Accel.t; objective : float; trace : step list }

type config_key = int list * int

let config_key a =
  (List.map (fun cls -> Accel.count a cls) Unit_model.all_classes, a.Accel.qr_rotators)

let cache () : (config_key, float) Hashtbl.t = Hashtbl.create 64

(* Memoized, batched evaluation: look every configuration up first,
   evaluate only the misses — in parallel, since [evaluate] is a pure
   function of the configuration — and store them in input order.
   Scores come back in input order either way, so the greedy search
   below is independent of the job count. *)
let evaluate_batch ~cache ~evaluate accels =
  let pending = List.filter (fun a -> not (Hashtbl.mem cache (config_key a))) accels in
  let hits = List.length accels - List.length pending in
  if hits > 0 then Obs.count "dse.candidates.cached" ~n:hits;
  if pending <> [] then begin
    Obs.count "dse.candidates.evaluated" ~n:(List.length pending);
    (* Every candidate is a full cycle-level simulation — singleton
       chunks so idle lanes can steal any straggler. *)
    let scores = Pool.parallel_map_list ~chunk:1 evaluate pending in
    List.iter2 (fun a s -> Hashtbl.replace cache (config_key a) s) pending scores
  end;
  List.map (fun a -> Hashtbl.find cache (config_key a)) accels

let optimize ~budget ~evaluate ?(classes = Unit_model.all_classes) ?init ?(min_gain = 0.005)
    ?cache:(tbl = cache ()) () =
  Obs.with_span "dse.optimize" @@ fun () ->
  let current = ref (match init with Some a -> a | None -> Accel.base ()) in
  if not (Accel.fits !current ~budget) then
    invalid_arg "Dse.optimize: initial configuration exceeds the budget";
  let objective = ref (List.hd (evaluate_batch ~cache:tbl ~evaluate [ !current ])) in
  let trace =
    ref [ { added = None; accel = !current; objective = !objective; resources = Accel.resources !current } ]
  in
  let improved = ref true in
  while !improved do
    improved := false;
    Obs.count "dse.rounds";
    (* Try one replication of every class; keep the best that fits. *)
    let moves =
      Widen_qr :: List.map (fun cls -> Add_unit cls) classes
    in
    let feasible =
      List.filter_map
        (fun move ->
          let candidate =
            match move with
            | Add_unit cls -> Accel.with_extra !current cls
            | Widen_qr -> Accel.with_wider_qr !current
          in
          if Accel.fits candidate ~budget then Some (move, candidate)
          else begin
            Obs.count "dse.candidates.pruned";
            None
          end)
        moves
    in
    let scores = evaluate_batch ~cache:tbl ~evaluate (List.map snd feasible) in
    let candidates = List.map2 (fun (move, a) s -> (move, a, s)) feasible scores in
    match candidates with
    | [] -> ()
    | _ ->
        let move, best, score =
          List.fold_left
            (fun (bc, ba, bs) (c, a, s) -> if s < bs then (c, a, s) else (bc, ba, bs))
            (let c, a, s = List.hd candidates in
             (c, a, s))
            (List.tl candidates)
        in
        if score < !objective *. (1.0 -. min_gain) then begin
          Obs.count "dse.moves.accepted";
          (match move with
          | Add_unit c -> Obs.count ("dse.moves.add." ^ Unit_model.class_name c)
          | Widen_qr -> Obs.count "dse.moves.widen_qr");
          Log.info (fun m ->
              m "accepted %s: objective %.4g -> %.4g"
                (match move with
                | Add_unit c -> "+" ^ Unit_model.class_name c
                | Widen_qr -> "widen-qr")
                !objective score);
          current := best;
          objective := score;
          trace :=
            { added = Some move; accel = best; objective = score; resources = Accel.resources best }
            :: !trace;
          improved := true
        end
  done;
  Obs.set_gauge "dse.best_objective" !objective;
  { best = !current; objective = !objective; trace = List.rev !trace }

let move_name = function
  | None -> "initial"
  | Some (Add_unit c) -> "+" ^ Unit_model.class_name c
  | Some Widen_qr -> "widen-qr"

let result_json ?(meta = []) r =
  let module J = Orianna_obs.Json in
  let accel_json (a : Accel.t) =
    J.Obj
      [
        ("name", J.Str a.Accel.name);
        ( "counts",
          J.Obj (List.map (fun (cls, n) -> (Unit_model.class_name cls, J.int n)) a.Accel.counts)
        );
        ("qr_rotators", J.int a.Accel.qr_rotators);
      ]
  in
  J.Obj
    ((if meta = [] then [] else [ ("meta", J.Obj meta) ])
    @ [
        ( "trace",
          J.Arr
            (List.map
               (fun (s : step) ->
                 J.Obj
                   [
                     ("move", J.Str (move_name s.added));
                     ("objective", J.Num s.objective);
                     ("dsp", J.int s.resources.Resource.dsp);
                   ])
               r.trace) );
        ("best", accel_json r.best);
        ("objective", J.Num r.objective);
      ])
