(** Accelerator configurations: how many instances of each unit
    template a generated design instantiates (Sec. 6.2).

    Generation always starts from the base configuration (one unit per
    class) and replicates units along the critical path under a
    resource budget — see {!Dse}. *)

type t = {
  name : string;
  counts : (Unit_model.unit_class * int) list;  (** instances per class, all > 0 *)
  qr_rotators : int;  (** Givens-array width of the QR units *)
  clock_mhz : float;
}

val base : ?name:string -> unit -> t
(** One unit of every class, 167 MHz (the paper's prototype clock). *)

val make : name:string -> ?qr_rotators:int -> counts:(Unit_model.unit_class * int) list -> unit -> t
(** Missing classes get one instance; counts must be positive. *)

val count : t -> Unit_model.unit_class -> int

val with_extra : t -> Unit_model.unit_class -> t
(** One more instance of the class. *)

val with_wider_qr : t -> t
(** Double the QR rotator width. *)

val with_masked : t -> Unit_model.unit_class -> t option
(** Mask one failed instance of the class out of the configuration —
    the reschedule-degraded step of the fault recovery ladder.  [None]
    when the class is already down to its last instance (the ladder
    then falls back to the software model). *)

val degraded : t -> t
(** Every class reduced to a single instance (clock and QR width
    kept) — the worst sustainable degraded configuration, used by the
    robustness property tests. *)

val resources : t -> Resource.t
(** Total resource footprint (units + controller overhead). *)

val static_power_w : t -> float

val total_units : t -> int

val cost_model : t -> Orianna_isa.Opt.cost_model
(** This configuration's cost surface for the schedule-aware
    optimizer: real {!Unit_model} latencies (at the configured QR
    width) and per-class instance counts, classes indexed by position
    in [Unit_model.all_classes]. *)

val fits : t -> budget:Resource.t -> bool

val pp : Format.formatter -> t -> unit
