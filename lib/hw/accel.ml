type t = {
  name : string;
  counts : (Unit_model.unit_class * int) list;
  qr_rotators : int;
  clock_mhz : float;
}

let controller_overhead = { Resource.lut = 6500; ff = 9000; bram = 32; dsp = 0 }

let normalize counts =
  List.map
    (fun cls ->
      match List.assoc_opt cls counts with
      | Some n when n > 0 -> (cls, n)
      | Some _ -> invalid_arg "Accel: unit counts must be positive"
      | None -> (cls, 1))
    Unit_model.all_classes

let base ?(name = "orianna-base") () =
  { name; counts = normalize []; qr_rotators = Unit_model.default_qr_rotators; clock_mhz = 167.0 }

let make ~name ?(qr_rotators = Unit_model.default_qr_rotators) ~counts () =
  if qr_rotators <= 0 then invalid_arg "Accel.make: qr_rotators must be positive";
  { name; counts = normalize counts; qr_rotators; clock_mhz = 167.0 }

let count t cls = List.assoc cls t.counts

let with_extra t cls =
  { t with counts = List.map (fun (c, n) -> if c = cls then (c, n + 1) else (c, n)) t.counts }

let with_wider_qr t = { t with qr_rotators = 2 * t.qr_rotators }

let with_masked t cls =
  match List.assoc_opt cls t.counts with
  | Some n when n > 1 ->
      Some
        {
          t with
          name = t.name ^ "-degraded";
          counts = List.map (fun (c, k) -> if c = cls then (c, k - 1) else (c, k)) t.counts;
        }
  | Some _ | None -> None

let degraded t =
  { t with name = t.name ^ "-minimal"; counts = List.map (fun (c, _) -> (c, 1)) t.counts }

let resources t =
  List.fold_left
    (fun acc (cls, n) ->
      Resource.add acc (Resource.scale n (Unit_model.resources cls ~qr_rotators:t.qr_rotators)))
    controller_overhead t.counts

let static_power_w t =
  List.fold_left
    (fun acc (cls, n) ->
      acc +. (float_of_int n *. Unit_model.static_power_w cls ~qr_rotators:t.qr_rotators))
    Unit_model.base_static_power_w t.counts

let total_units t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.counts

(* The optimizer's injected cost surface: this accelerator's real
   per-opcode latencies and unit-instance counts, with classes indexed
   by their position in [Unit_model.all_classes].  [Orianna_isa]
   cannot depend on this layer, so the record crosses the boundary
   downward. *)
let cost_model t =
  let class_index =
    let tbl = List.mapi (fun i cls -> (cls, i)) Unit_model.all_classes in
    fun cls -> List.assoc cls tbl
  in
  {
    Orianna_isa.Opt.classes = List.length Unit_model.all_classes;
    class_of = (fun op -> class_index (Unit_model.class_of_op op));
    ports =
      Array.of_list (List.map (fun cls -> count t cls) Unit_model.all_classes);
    latency =
      (fun ins ~src_shape ->
        Unit_model.latency
          (Unit_model.class_of_op ins.Orianna_isa.Instr.op)
          ~qr_rotators:t.qr_rotators ins ~src_shape);
  }

let fits t ~budget = Resource.fits (resources t) ~budget

let pp ppf t =
  Format.fprintf ppf "@[<v>%s @ %.0f MHz (qr width %d)@," t.name t.clock_mhz t.qr_rotators;
  List.iter
    (fun (cls, n) -> Format.fprintf ppf "  %-8s x%d@," (Unit_model.class_name cls) n)
    t.counts;
  Format.fprintf ppf "  resources: %a@]" Resource.pp (resources t)
