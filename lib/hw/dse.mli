(** Constraint-driven hardware generation (Sec. 6.2, Equ. 5).

    Solves [argmin L(p1..pn) s.t. R(p1..pn) <= R*] with the paper's
    greedy procedure: start from one unit per class, repeatedly add
    the unit whose replication best improves the objective, stop when
    the budget is exhausted or no replication helps.  The objective is
    supplied as a callback (the cycle-level simulator in
    [orianna_sim]), so latency- and energy-targeted generation share
    this module. *)

type move = Add_unit of Unit_model.unit_class | Widen_qr

type step = {
  added : move option;  (** [None] on the initial point *)
  accel : Accel.t;
  objective : float;
  resources : Resource.t;
}

type result = { best : Accel.t; objective : float; trace : step list }

type config_key = int list * int
(** Structural identity of a configuration: unit counts in
    [Unit_model.all_classes] order, plus the QR rotator width. *)

val config_key : Accel.t -> config_key

val cache : unit -> (config_key, float) Hashtbl.t
(** A fresh evaluation cache for {!optimize}'s [?cache].  Pass the
    same cache to several [optimize] calls sharing one [evaluate]
    (multi-start search) and configurations reached from more than one
    start are evaluated once. *)

val optimize :
  budget:Resource.t ->
  evaluate:(Accel.t -> float) ->
  ?classes:Unit_model.unit_class list ->
  ?init:Accel.t ->
  ?min_gain:float ->
  ?cache:(config_key, float) Hashtbl.t ->
  unit ->
  result
(** [optimize ~budget ~evaluate ()] greedily replicates units.
    [classes] restricts which templates may be replicated (default:
    all); [min_gain] is the relative improvement below which the
    search stops (default 0.5 %).  The initial configuration must fit
    the budget; raises [Invalid_argument] otherwise.

    Candidate evaluations are memoized on {!config_key} — hits bump
    the [dse.candidates.cached] counter and skip [evaluate].  [cache]
    defaults to a fresh per-call table; supply one ({!cache}) to share
    memoized scores across calls.  [evaluate] must therefore be a pure
    function of the configuration.  Uncached candidates of a round are
    evaluated in parallel on the {!Orianna_par.Pool} (results are
    independent of the job count; [evaluate] must be thread-safe —
    the simulator's [Schedule.run] is). *)

val move_name : move option -> string
(** ["initial"], ["+<class>"] or ["widen-qr"] — the names the trace
    reports use. *)

val result_json : ?meta:(string * Orianna_obs.Json.t) list -> result -> Orianna_obs.Json.t
(** The search result as JSON: the greedy trace (move, objective, DSP
    use per step), the chosen configuration and its objective, with
    the optional [meta] object prepended.  Pure function of the search
    inputs — no timings — so the payload diffs byte-for-byte across
    job counts; the j1-vs-j4 determinism tests compare it directly. *)
