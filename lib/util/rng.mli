(** Deterministic pseudo-random number generation.

    Every experiment in the repository draws randomness through this
    module so that results are reproducible bit-for-bit.  The generator
    is splitmix64: tiny state, good statistical quality, and trivially
    splittable into independent streams. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent generators, in the exact
    order [n] successive {!split} calls would.  Pre-splitting the
    streams for a batch of seeded tasks keeps the batch deterministic
    when the tasks later run in parallel. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform float in [[lo, hi)]. *)

val int : t -> int -> int
(** [int t n] is a uniform integer in [[0, n)]. [n] must be positive. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> float
(** Standard normal deviate (Marsaglia polar method). *)

val gaussian_sigma : t -> sigma:float -> float
(** Normal deviate with standard deviation [sigma]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
