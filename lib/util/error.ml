type phase = Solve | Compile | Generate | Schedule | Encode | Runtime

let phase_name = function
  | Solve -> "solve"
  | Compile -> "compile"
  | Generate -> "generate"
  | Schedule -> "schedule"
  | Encode -> "encode"
  | Runtime -> "runtime"

type t = { phase : phase; context : string list; message : string }

exception Error of t

let to_string e =
  let ctx = match e.context with [] -> "" | cs -> " [" ^ String.concat " > " cs ^ "]" in
  Printf.sprintf "%s%s: %s" (phase_name e.phase) ctx e.message

let () =
  Printexc.register_printer (function Error e -> Some (to_string e) | _ -> None)

let fail ?(context = []) phase message = raise (Error { phase; context; message })

let failf ?context phase fmt = Printf.ksprintf (fun message -> fail ?context phase message) fmt

let with_context label f =
  try f () with Error e -> raise (Error { e with context = label :: e.context })

let guard ~phase f =
  try Ok (f ()) with
  | Error e -> Result.Error e
  | Failure message -> Result.Error { phase; context = []; message }
  | Invalid_argument message -> Result.Error { phase; context = []; message }

let pp ppf e = Format.pp_print_string ppf (to_string e)
