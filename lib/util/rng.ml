type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)

(* splitmix64 finalizer: xor-shift multiply avalanche. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (int64 t)

let split_n t n =
  (* Explicit loop: [Array.init]'s evaluation order is unspecified and
     each split advances [t]. *)
  let streams = Array.make n t in
  for i = 0 to n - 1 do
    streams.(i) <- split t
  done;
  streams

let float t =
  (* 53 significant bits mapped onto [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Keep 62 bits so the conversion to a native 63-bit int stays
     non-negative. *)
  let x = Int64.to_int (Int64.logand (int64 t) 0x3FFFFFFFFFFFFFFFL) in
  x mod n

let bool t = Int64.logand (int64 t) 1L = 1L

let rec gaussian t =
  let u = (2.0 *. float t) -. 1.0 in
  let v = (2.0 *. float t) -. 1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then gaussian t
  else u *. sqrt (-2.0 *. log s /. s)

let gaussian_sigma t ~sigma = sigma *. gaussian t

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
