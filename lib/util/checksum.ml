(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Guarantees detection of any single-bit and any burst error up to 32
   bits — the property the instruction-stream integrity check relies
   on. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  String.iter (fun ch -> crc := t.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8)) s;
  !crc lxor 0xFFFFFFFF

(* Fletcher-32 over bytes: cheaper than CRC, still detects all
   single-bit errors; used where a unit would realistically keep only
   a running sum (per-instruction word checks). *)
let fletcher32 s =
  let a = ref 0 and b = ref 0 in
  String.iter
    (fun ch ->
      a := (!a + Char.code ch) mod 65535;
      b := (!b + !a) mod 65535)
    s;
  (!b lsl 16) lor !a
