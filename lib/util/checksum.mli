(** Checksums for instruction-stream integrity checking.

    Both detect every single-bit corruption of their input; CRC-32
    additionally detects all bursts up to 32 bits. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, reflected). Result fits in 32 bits. *)

val fletcher32 : string -> int
(** Fletcher-32 over bytes. Result fits in 32 bits. *)
