(** Shared structured errors across the pipeline.

    A bare [failwith] deep inside the compiler or scheduler gives a
    fault-injection campaign (or a user) nothing to act on.  [Error]
    carries the pipeline phase where the failure happened and a
    context trail ("which app > which algorithm > which factor"), so
    campaign logs and CLI diagnostics stay actionable. *)

type phase = Solve | Compile | Generate | Schedule | Encode | Runtime

val phase_name : phase -> string

type t = { phase : phase; context : string list; message : string }

exception Error of t

val fail : ?context:string list -> phase -> string -> 'a
(** Raise [Error]. *)

val failf : ?context:string list -> phase -> ('a, unit, string, 'b) format4 -> 'a
(** [fail] with a format string. *)

val with_context : string -> (unit -> 'a) -> 'a
(** Run [f], prepending [label] to the context trail of any [Error]
    escaping it. *)

val guard : phase:phase -> (unit -> 'a) -> ('a, t) result
(** Run [f], catching [Error] as well as legacy [Failure] /
    [Invalid_argument] (attributed to [phase]) into a [result]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
