(** Small descriptive-statistics helpers used by the experiment
    harness (trajectory errors, latency distributions, ...). *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays shorter than 2. *)

val min : float array -> float
(** Smallest element. Raises [Invalid_argument] on the empty array. *)

val max : float array -> float
(** Largest element. Raises [Invalid_argument] on the empty array. *)

val sum : float array -> float
(** Sum of elements. *)

val median : float array -> float
(** Median (does not mutate its argument). Raises on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [[0, 100]], linear interpolation.
    Raises on empty input. *)

val rms : float array -> float
(** Root mean square; 0 on the empty array. *)

type summary = {
  count : int;
  mean : float;
  std : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** All of the above in one pass-ish bundle. Raises [Invalid_argument]
    on the empty array, like {!min}/{!max}/{!median}/{!percentile} —
    use {!summarize_opt} on inputs that can legitimately be empty. *)

val summarize_opt : float array -> summary option
(** Total version of {!summarize}: [None] on the empty array. The
    harness's choice for workload-derived samples (mission errors,
    latency sets) that may be empty. *)

val pp_summary : Format.formatter -> summary -> unit
