let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    sqrt (!acc /. float_of_int n)
  end

let nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let min xs =
  nonempty "Stats.min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  nonempty "Stats.max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let sorted_copy xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let percentile xs p =
  nonempty "Stats.percentile" xs;
  let c = sorted_copy xs in
  let n = Array.length c in
  if n = 1 then c.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    c.(lo) +. (frac *. (c.(hi) -. c.(lo)))
  end

let median xs = percentile xs 50.0

let rms xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. (x *. x)) xs;
    sqrt (!acc /. float_of_int n)
  end

type summary = {
  count : int;
  mean : float;
  std : float;
  min : float;
  max : float;
}

let summarize xs =
  nonempty "Stats.summarize" xs;
  { count = Array.length xs; mean = mean xs; std = stddev xs; min = min xs; max = max xs }

let summarize_opt xs = if Array.length xs = 0 then None else Some (summarize xs)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4f std=%.4f min=%.4f max=%.4f" s.count s.mean s.std s.min s.max
