open Orianna_linalg
open Orianna_lie

type t = { instrs : Instr.t array; outputs : (string * int) list }

module Builder = struct
  type program = t
  type b = { mutable rev : Instr.t list; mutable count : int; shapes : (int, int * int) Hashtbl.t }

  let create () = { rev = []; count = 0; shapes = Hashtbl.create 256 }

  let emit b ~op ~srcs ~rows ~cols ~phase ~algo ~tag =
    Array.iter
      (fun s ->
        if s < 0 || s >= b.count then
          failwith (Printf.sprintf "Program.Builder.emit: source i%d out of range" s))
      srcs;
    let id = b.count in
    b.count <- id + 1;
    let i = { Instr.id; op; srcs; rows; cols; phase; algo; tag } in
    b.rev <- i :: b.rev;
    Hashtbl.add b.shapes id (rows, cols);
    id

  let shape b id =
    match Hashtbl.find_opt b.shapes id with
    | Some s -> s
    | None -> failwith (Printf.sprintf "Program.Builder.shape: unknown register i%d" id)

  let finish b ~outputs = { instrs = Array.of_list (List.rev b.rev); outputs }
end

let length t = Array.length t.instrs

(* Canonical byte serialization for {!hash}: the semantic content of
   the stream — opcodes with their payloads, shapes, phases, algorithm
   ids, dependencies and outputs — but {e not} the human-readable
   [tag], which the binary wire format ([Encode]) also drops.  Hashes
   therefore survive an encode/decode round trip. *)
let hash t =
  let buf = Buffer.create 4096 in
  let w8 v = Buffer.add_char buf (Char.chr (v land 0xFF)) in
  let w32 v =
    w8 v;
    w8 (v lsr 8);
    w8 (v lsr 16);
    w8 (v lsr 24)
  in
  let wf64 x = Buffer.add_int64_le buf (Int64.bits_of_float x) in
  let wstring s =
    w32 (String.length s);
    Buffer.add_string buf s
  in
  let wmat m =
    let rows, cols = Mat.dims m in
    w32 rows;
    w32 cols;
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        wf64 (Mat.get m i j)
      done
    done
  in
  let opcode_tag : Instr.opcode -> int = function
    | Instr.Load _ -> 0
    | Instr.Vadd -> 1
    | Instr.Vsub -> 2
    | Instr.Scale _ -> 3
    | Instr.Neg -> 4
    | Instr.Transpose -> 5
    | Instr.Gemm -> 6
    | Instr.Gemv -> 7
    | Instr.Logm -> 8
    | Instr.Expm -> 9
    | Instr.Skew -> 10
    | Instr.Jr -> 11
    | Instr.Jrinv -> 12
    | Instr.Assemble _ -> 13
    | Instr.Extract _ -> 14
    | Instr.Qr -> 15
    | Instr.Backsolve -> 16
    | Instr.Kernel _ -> 17
  in
  let phase_tag = function Instr.Construct -> 0 | Instr.Decompose -> 1 | Instr.Backsub -> 2 in
  Buffer.add_string buf "ORIAH1";
  w32 (Array.length t.instrs);
  w32 (List.length t.outputs);
  Array.iter
    (fun (ins : Instr.t) ->
      w8 (opcode_tag ins.Instr.op);
      w8 (phase_tag ins.Instr.phase);
      w32 ins.Instr.algo;
      w32 ins.Instr.rows;
      w32 ins.Instr.cols;
      w32 (Array.length ins.Instr.srcs);
      Array.iter w32 ins.Instr.srcs;
      match ins.Instr.op with
      | Instr.Load m -> wmat m
      | Instr.Scale s -> wf64 s
      | Instr.Assemble places ->
          w32 (List.length places);
          List.iter
            (fun (r, c) ->
              w32 r;
              w32 c)
            places
      | Instr.Extract { row; col; rows; cols } ->
          w32 row;
          w32 col;
          w32 rows;
          w32 cols
      | Instr.Kernel k ->
          wstring k.Instr.kname;
          w32 k.Instr.flops
      | _ -> ())
    t.instrs;
  List.iter
    (fun (name, reg) ->
      wstring name;
      w32 reg)
    t.outputs;
  Int32.of_int (Orianna_util.Checksum.crc32 (Buffer.contents buf) land 0xFFFFFFFF)

let validate t =
  Array.iteri
    (fun i (ins : Instr.t) ->
      if ins.Instr.id <> i then failwith "Program.validate: id mismatch";
      Array.iter
        (fun s ->
          if s >= i || s < 0 then
            failwith (Printf.sprintf "Program.validate: instruction i%d reads future register i%d" i s))
        ins.Instr.srcs)
    t.instrs;
  List.iter
    (fun (name, reg) ->
      if reg < 0 || reg >= Array.length t.instrs then
        failwith ("Program.validate: output " ^ name ^ " out of range"))
    t.outputs

(* Evaluate one instruction given its source {e values} (positionally
   aligned with [ins.srcs]).  Shared by {!execute} and the optimizer's
   superword pass, whose batched kernels must reproduce the member
   ops' semantics bit-for-bit. *)
let eval_op (ins : Instr.t) (args : Mat.t array) =
  let src k = args.(k) in
  match ins.Instr.op with
  | Instr.Load m -> m
  | Instr.Vadd -> Mat.add (src 0) (src 1)
  | Instr.Vsub -> Mat.sub (src 0) (src 1)
  | Instr.Scale s -> Mat.scale s (src 0)
  | Instr.Neg -> Mat.neg (src 0)
  | Instr.Transpose -> Mat.transpose (src 0)
  | Instr.Gemm | Instr.Gemv -> Mat.mul (src 0) (src 1)
  | Instr.Logm ->
      let r = src 0 in
      if fst (Mat.dims r) = 2 then Mat.of_rows [| [| So2.log r |] |] else Mat.of_vec (So3.log r)
  | Instr.Expm ->
      let v = src 0 in
      if fst (Mat.dims v) = 1 then So2.exp (Mat.get v 0 0) else So3.exp (Mat.to_vec v)
  | Instr.Skew ->
      let v = src 0 in
      if fst (Mat.dims v) = 1 then So2.hat (Mat.get v 0 0) else So3.hat (Mat.to_vec v)
  | Instr.Jr ->
      let v = src 0 in
      if fst (Mat.dims v) = 1 then Mat.identity 1 else So3.jr (Mat.to_vec v)
  | Instr.Jrinv ->
      let v = src 0 in
      if fst (Mat.dims v) = 1 then Mat.identity 1 else So3.jr_inv (Mat.to_vec v)
  | Instr.Assemble places ->
      let out = Mat.create ins.Instr.rows ins.Instr.cols in
      List.iteri (fun k (r, c) -> Mat.set_block out r c args.(k)) places;
      out
  | Instr.Extract { row; col; rows; cols } -> Mat.block (src 0) row col rows cols
  | Instr.Qr -> Qr.triangularize (src 0)
  | Instr.Backsolve -> Mat.of_vec (Tri.solve_upper (src 0) (Mat.to_vec (src 1)))
  | Instr.Kernel k -> k.Instr.apply args

let execute t =
  let values = Array.make (Array.length t.instrs) (Mat.create 0 0) in
  Array.iter
    (fun (ins : Instr.t) ->
      let result = eval_op ins (Array.map (fun s -> values.(s)) ins.Instr.srcs) in
      let r, c = Mat.dims result in
      if r <> ins.Instr.rows || c <> ins.Instr.cols then
        failwith
          (Printf.sprintf "Program.execute: i%d (%s) produced %dx%d, declared %dx%d" ins.Instr.id
             (Instr.opcode_name ins.Instr.op) r c ins.Instr.rows ins.Instr.cols);
      values.(ins.Instr.id) <- result)
    t.instrs;
  values

let deltas t values =
  List.map (fun (name, reg) -> (name, Mat.to_vec values.(reg))) t.outputs

let run t = deltas t (execute t)

type stats = {
  instructions : int;
  by_opcode : (string * int) list;
  by_phase : (Instr.phase * int) list;
  flops_total : int;
  flops_by_phase : (Instr.phase * int) list;
  critical_path : int;
  max_width : int;
}

let stats t =
  let by_op = Hashtbl.create 16 in
  let by_phase = Hashtbl.create 4 in
  let flops_by_phase = Hashtbl.create 4 in
  let bump tbl key v = Hashtbl.replace tbl key (v + Option.value ~default:0 (Hashtbl.find_opt tbl key)) in
  let src_shape id = (t.instrs.(id).Instr.rows, t.instrs.(id).Instr.cols) in
  let depth = Array.make (Array.length t.instrs) 0 in
  let width = Hashtbl.create 64 in
  let total_flops = ref 0 in
  Array.iter
    (fun (ins : Instr.t) ->
      bump by_op (Instr.opcode_name ins.Instr.op) 1;
      bump by_phase ins.Instr.phase 1;
      let f = Instr.flops ins ~src_shape in
      total_flops := !total_flops + f;
      bump flops_by_phase ins.Instr.phase f;
      let d =
        Array.fold_left (fun acc s -> max acc (depth.(s) + 1)) 0 ins.Instr.srcs
      in
      depth.(ins.Instr.id) <- d;
      bump width d 1)
    t.instrs;
  let critical_path = Array.fold_left max 0 depth + if Array.length t.instrs > 0 then 1 else 0 in
  let max_width = Hashtbl.fold (fun _ v acc -> max v acc) width 0 in
  {
    instructions = Array.length t.instrs;
    by_opcode = Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_op [] |> List.sort compare;
    by_phase = Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_phase [] |> List.sort compare;
    flops_total = !total_flops;
    flops_by_phase =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) flops_by_phase [] |> List.sort compare;
    critical_path;
    max_width;
  }

let op_sizes t ?phase () =
  Array.to_list t.instrs
  |> List.filter_map (fun (ins : Instr.t) ->
         let keep_phase = match phase with None -> true | Some p -> ins.Instr.phase = p in
         if keep_phase && not (Instr.is_data_movement ins.Instr.op) then
           Some (ins.Instr.rows, ins.Instr.cols)
         else None)

let concat programs =
  let b = Builder.create () in
  let outputs = ref [] in
  List.iter
    (fun p ->
      let base = Hashtbl.create (Array.length p.instrs) in
      Array.iter
        (fun (ins : Instr.t) ->
          let srcs = Array.map (fun s -> Hashtbl.find base s) ins.Instr.srcs in
          let id =
            Builder.emit b ~op:ins.Instr.op ~srcs ~rows:ins.Instr.rows ~cols:ins.Instr.cols
              ~phase:ins.Instr.phase ~algo:ins.Instr.algo ~tag:ins.Instr.tag
          in
          Hashtbl.add base ins.Instr.id id)
        p.instrs;
      List.iter
        (fun (name, reg) ->
          if List.mem_assoc name !outputs then
            invalid_arg ("Program.concat: duplicate output " ^ name);
          outputs := (name, Hashtbl.find base reg) :: !outputs)
        p.outputs)
    programs;
  Builder.finish b ~outputs:(List.rev !outputs)

let pp ppf t =
  Format.fprintf ppf "@[<v>program: %d instructions@," (Array.length t.instrs);
  Array.iter (fun i -> Format.fprintf ppf "  %a@," Instr.pp i) t.instrs;
  List.iter (fun (n, r) -> Format.fprintf ppf "  out %s = i%d@," n r) t.outputs;
  Format.fprintf ppf "@]"

let pp_stats ppf s =
  Format.fprintf ppf "@[<v>%d instructions, %d flops, critical path %d, max width %d@,"
    s.instructions s.flops_total s.critical_path s.max_width;
  List.iter (fun (op, n) -> Format.fprintf ppf "  %-10s %d@," op n) s.by_opcode;
  List.iter
    (fun (ph, n) -> Format.fprintf ppf "  phase %-10s %d instrs@," (Instr.phase_name ph) n)
    s.by_phase;
  Format.fprintf ppf "@]"
