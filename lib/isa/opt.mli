(** Instruction-stream optimizer: a pass pipeline over {!Program.t}.

    Four passes, each semantics-preserving over {!Program.execute}:

    - {!cse} — global common-subexpression elimination on pure matrix
      ops (including [Load], keyed on the matrix bytes; [Kernel] is
      never merged because closures carry no structural identity).
    - {!fuse} — peephole fusion of adjacent compatible ops
      (scale/negate chains into a single [Scale], add-of-negate into
      [Vsub], transpose-of-transpose and extract-of-assemble
      forwarding, ...).
    - {!dce} — dead-code elimination of instructions whose
      destinations are never live-out (not reachable from
      [p.outputs]).
    - {!reorder} — operand-aware list reorder: a topological
      re-sequencing that hoists long-latency producers, optionally
      weighted by measured per-instruction stall attribution from a
      previous schedule (see [Orianna_sim.Trace.operand_stalls]).

    Every pass returns, besides the rewritten program, a register map
    [map] with [map.(old_id)] = the new register holding the same
    value, or [-1] if the value is no longer computed (dead code).
    The differential-equivalence harness uses these maps to compare
    intermediate values instruction-by-instruction, not just final
    outputs.

    Per-pass deltas are reported through [Orianna_obs] counters:
    [isa.opt.cse_merged], [isa.opt.fused], [isa.opt.dce_removed],
    [isa.opt.reorder_moved], [isa.opt.instructions_saved]. *)

type report = {
  before : int;  (** instruction count going in *)
  after : int;  (** instruction count coming out *)
  cse_merged : int;  (** duplicates merged by CSE (all rounds) *)
  fused : int;  (** peephole rewrites + forwardings (all rounds) *)
  dce_removed : int;  (** dead instructions removed *)
  reorder_moved : int;  (** instructions whose position changed *)
}

val cse : Program.t -> Program.t * int array
(** Merge structurally identical pure instructions, keeping the first
    occurrence.  [Vadd] operands are canonicalized (exact FP
    commutativity); [Kernel] instructions are never merged. *)

val fuse : Program.t -> Program.t * int array
(** Peephole rewrites to a fixpoint.  Rewritten instructions keep
    their register; forwarded ones are dropped and their consumers
    redirected.  The only rewrite that can perturb rounding is
    [Scale s2 (Scale s1 x)] -> [Scale (s1*s2) x].  One more is exact
    in magnitude but not in sign-of-zero: [Neg (Vsub a b)] ->
    [Vsub b a] turns [-0.] elements into [+0.] wherever [a] and [b]
    agree (the symmetric Vadd/Vsub-of-Neg folds are unaffected).  All
    remaining rewrites are bit-exact under IEEE-754; the harness's
    1e-9 tolerance absorbs both exceptions. *)

val dce : Program.t -> Program.t * int array
(** Remove instructions not backward-reachable from [p.outputs]. *)

val reorder : ?stalls:int array -> Program.t -> Program.t * int array
(** Topologically re-sequence each contiguous [algo] run (runs are
    never interleaved, so the per-algorithm partitions seen by
    [Ooo_fine] scheduling keep their first-appearance order).
    Priority = longest latency-weighted path to a sink, using a static
    per-opcode latency model; [stalls] (one entry per instruction, as
    produced by [Orianna_sim.Trace.operand_stalls] on {e this}
    program) adds measured operand-stall cycles attributed to each
    producer to its weight.  Raises [Invalid_argument] if [stalls]
    has the wrong length. *)

val optimize : ?level:int -> Program.t -> Program.t
(** [optimize ~level p]: [level <= 0] returns [p] unchanged; [level
    >= 1] runs fuse+cse to a fixpoint, then dce, then a statically
    weighted reorder.  Default level is [1]. *)

val optimize_traced : ?level:int -> Program.t -> Program.t * int array * report
(** Like {!optimize} but also returns the composed old->new register
    map and a per-pass {!report}.  The result is re-validated with
    [Program.validate]. *)

val pp_report : Format.formatter -> report -> unit
