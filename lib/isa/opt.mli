(** Instruction-stream optimizer: a pass pipeline over {!Program.t}.

    Four passes, each semantics-preserving over {!Program.execute}:

    - {!cse} — global common-subexpression elimination on pure matrix
      ops (including [Load], keyed on the matrix bytes; [Kernel] is
      never merged because closures carry no structural identity).
    - {!fuse} — peephole fusion of adjacent compatible ops
      (scale/negate chains into a single [Scale], add-of-negate into
      [Vsub], transpose-of-transpose and extract-of-assemble
      forwarding, ...).
    - {!dce} — dead-code elimination of instructions whose
      destinations are never live-out (not reachable from
      [p.outputs]).
    - {!reorder} — operand-aware list reorder: a topological
      re-sequencing that hoists long-latency producers, optionally
      weighted by measured per-instruction stall attribution from a
      previous schedule (see [Orianna_sim.Trace.operand_stalls]).

    Every pass returns, besides the rewritten program, a register map
    [map] with [map.(old_id)] = the new register holding the same
    value, or [-1] if the value is no longer computed (dead code).
    The differential-equivalence harness uses these maps to compare
    intermediate values instruction-by-instruction, not just final
    outputs.

    Per-pass deltas are reported through [Orianna_obs] counters:
    [isa.opt.cse_merged], [isa.opt.fused], [isa.opt.dce_removed],
    [isa.opt.reorder_moved], [isa.opt.superword_merged],
    [isa.opt.instructions_saved], [isa.opt.cycles_saved]. *)

type report = {
  before : int;  (** instruction count going in *)
  after : int;  (** instruction count coming out *)
  cse_merged : int;  (** duplicates merged by CSE (all rounds) *)
  fused : int;  (** peephole rewrites + forwardings (all rounds) *)
  dce_removed : int;  (** dead instructions removed *)
  reorder_moved : int;  (** instructions whose position changed *)
  superword_merged : int;  (** member ops folded into batched kernels *)
  cycle_deltas : (string * int) list;
      (** per-pass measured (or modeled) cycle savings, in application
          order; positive = cycles saved, rejected candidates are
          labeled and carry the regression they would have cost *)
}

type cost_model = {
  classes : int;  (** number of unit classes *)
  class_of : Instr.opcode -> int;  (** opcode -> class index, < [classes] *)
  ports : int array;  (** unit instances per class (issue width) *)
  latency : Instr.t -> src_shape:(int -> int * int) -> int;
      (** per-instruction cycles given a source-shape oracle *)
}
(** Injected hardware cost surface.  [Orianna_isa] cannot depend on
    the hardware layer, so the real per-opcode latencies and
    unit-instance counts of a generated accelerator are threaded in
    through this record — see [Orianna_hw.Accel.cost_model]. *)

val static_cost_model : cost_model
(** One port per class with latencies mirroring the shape (not the
    exact parameters) of [Orianna_hw.Unit_model]. *)

type probe = Program.t -> int * int array
(** A measurement hook: schedule the program on a concrete accelerator
    and return (makespan cycles, per-instruction operand-stall
    attribution as produced by [Orianna_sim.Trace.operand_stalls]).
    See [Orianna_sim.Opt_loop.probe]. *)

val estimate_cycles : ?cost_model:cost_model -> Program.t -> int
(** Modeled makespan: deterministic resource-constrained list
    scheduling under [cost_model] (default {!static_cost_model}).
    Used as the acceptance metric at level 3 when no {!probe} is
    available. *)

val cse : Program.t -> Program.t * int array
(** Merge structurally identical pure instructions, keeping the first
    occurrence.  [Vadd] operands are canonicalized (exact FP
    commutativity); [Kernel] instructions are never merged. *)

val fuse : Program.t -> Program.t * int array
(** Peephole rewrites to a fixpoint.  Rewritten instructions keep
    their register; forwarded ones are dropped and their consumers
    redirected.  The only rewrite that can perturb rounding is
    [Scale s2 (Scale s1 x)] -> [Scale (s1*s2) x].  One more is exact
    in magnitude but not in sign-of-zero: [Neg (Vsub a b)] ->
    [Vsub b a] turns [-0.] elements into [+0.] wherever [a] and [b]
    agree (the symmetric Vadd/Vsub-of-Neg folds are unaffected).  All
    remaining rewrites are bit-exact under IEEE-754; the harness's
    1e-9 tolerance absorbs both exceptions. *)

val dce : Program.t -> Program.t * int array
(** Remove instructions not backward-reachable from [p.outputs]. *)

val reorder : ?stalls:int array -> ?cost_model:cost_model -> Program.t -> Program.t * int array
(** Without [cost_model]: topologically re-sequence each contiguous
    [algo] run (runs are never interleaved, so the per-algorithm
    partitions seen by [Ooo_fine] scheduling keep their
    first-appearance order), priority = longest latency-weighted path
    to a sink under the static model.  With [cost_model]:
    resource-aware list scheduling over the {e whole} stream — port
    contention on every unit class is modeled with the injected
    instance counts and latencies, and algo runs interleave freely.
    [stalls] (one entry per instruction, as produced by
    [Orianna_sim.Trace.operand_stalls] on {e this} program) adds
    measured operand-stall cycles attributed to each producer to its
    weight.  Raises [Invalid_argument] if [stalls] has the wrong
    length. *)

val superword :
  ?min_batch:int ->
  ?max_batch:int ->
  ?kinds:[ `Mul | `All ] ->
  Program.t ->
  Program.t * int array
(** Batch small independent same-shape ops of the same [algo]/[phase]
    into one wide [Kernel] whose result vertically stacks the member
    results; each member's register becomes an [Extract] of its slice,
    so the traced map proves equivalence member-by-member.  Two ops
    share a batch only if neither transitively depends on the other.
    [`Mul] (default) batches Gemm/Gemv only; [`All] also batches
    elementwise Vadd/Vsub/Scale/Neg through the matmul unit.
    [min_batch] (default 3) and [max_batch] (default 16) bound batch
    sizes.  Batched kernels evaluate members with [Program.eval_op],
    so results are bit-identical. *)

val optimize : ?level:int -> ?cost_model:cost_model -> ?probe:probe -> Program.t -> Program.t
(** [optimize ~level p]: [level <= 0] returns [p] unchanged; [level >=
    1] runs fuse+cse to a fixpoint, then dce, then a statically
    weighted reorder; [level >= 2] adds one measured-stall reorder
    round (requires [probe]); [level >= 3] adds a profile-guided
    fixpoint — resource-aware global reorder under [cost_model] and
    superword batching, each candidate accepted only if cycles
    strictly improve, iterated until no candidate helps.  With a
    [probe] (or at level 3, where the {!estimate_cycles} model stands
    in), every reorder is guarded accept-if-better and the final
    stream is reverted wholesale if it measures slower than the input,
    so optimization can never cost cycles under the measuring
    schedule.  Default level is [1]. *)

val optimize_traced :
  ?level:int -> ?cost_model:cost_model -> ?probe:probe -> Program.t -> Program.t * int array * report
(** Like {!optimize} but also returns the composed old->new register
    map and a per-pass {!report}.  The result is re-validated with
    [Program.validate]. *)

val pp_report : Format.formatter -> report -> unit
