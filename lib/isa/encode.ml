open Orianna_linalg

exception Decode_error of string

let magic = "ORIA"
let version = 1

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

let w8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let w16 buf v =
  if v < 0 || v > 0xFFFF then invalid_arg "Encode: u16 overflow";
  w8 buf (v land 0xFF);
  w8 buf ((v lsr 8) land 0xFF)

let w32 buf v =
  if v < 0 then invalid_arg "Encode: u32 overflow";
  w8 buf (v land 0xFF);
  w8 buf ((v lsr 8) land 0xFF);
  w8 buf ((v lsr 16) land 0xFF);
  w8 buf ((v lsr 24) land 0xFF)

let wf64 buf x = Buffer.add_int64_le buf (Int64.bits_of_float x)

let wstring buf s =
  w16 buf (String.length s);
  Buffer.add_string buf s

let wmat buf m =
  let rows, cols = Mat.dims m in
  w16 buf rows;
  w16 buf cols;
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      wf64 buf (Mat.get m i j)
    done
  done

let opcode_tag = function
  | Instr.Load _ -> 0
  | Instr.Vadd -> 1
  | Instr.Vsub -> 2
  | Instr.Scale _ -> 3
  | Instr.Neg -> 4
  | Instr.Transpose -> 5
  | Instr.Gemm -> 6
  | Instr.Gemv -> 7
  | Instr.Logm -> 8
  | Instr.Expm -> 9
  | Instr.Skew -> 10
  | Instr.Jr -> 11
  | Instr.Jrinv -> 12
  | Instr.Assemble _ -> 13
  | Instr.Extract _ -> 14
  | Instr.Qr -> 15
  | Instr.Backsolve -> 16
  | Instr.Kernel _ -> 17

let phase_tag = function Instr.Construct -> 0 | Instr.Decompose -> 1 | Instr.Backsub -> 2

let encode (p : Program.t) =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  w16 buf version;
  w32 buf (Array.length p.Program.instrs);
  w32 buf (List.length p.Program.outputs);
  Array.iter
    (fun (ins : Instr.t) ->
      w8 buf (opcode_tag ins.Instr.op);
      w8 buf (phase_tag ins.Instr.phase);
      w16 buf ins.Instr.algo;
      w16 buf ins.Instr.rows;
      w16 buf ins.Instr.cols;
      w16 buf (Array.length ins.Instr.srcs);
      Array.iter (w32 buf) ins.Instr.srcs;
      (match ins.Instr.op with
      | Instr.Load m -> wmat buf m
      | Instr.Scale s -> wf64 buf s
      | Instr.Extract { row; col; rows; cols } ->
          w16 buf row;
          w16 buf col;
          w16 buf rows;
          w16 buf cols
      | Instr.Assemble places ->
          w16 buf (List.length places);
          List.iter
            (fun (r, c) ->
              w16 buf r;
              w16 buf c)
            places
      | Instr.Kernel k ->
          wstring buf k.Instr.kname;
          w32 buf k.Instr.flops
      | Instr.Vadd | Instr.Vsub | Instr.Neg | Instr.Transpose | Instr.Gemm | Instr.Gemv
      | Instr.Logm | Instr.Expm | Instr.Skew | Instr.Jr | Instr.Jrinv | Instr.Qr
      | Instr.Backsolve ->
          ()))
    p.Program.instrs;
  List.iter
    (fun (name, reg) ->
      wstring buf name;
      w32 buf reg)
    p.Program.outputs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)

type reader = { data : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.data then raise (Decode_error "truncated stream")

let r8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r16 r =
  let a = r8 r in
  let b = r8 r in
  a lor (b lsl 8)

let r32 r =
  let a = r16 r in
  let b = r16 r in
  a lor (b lsl 16)

let rf64 r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  Int64.float_of_bits v

let rstring r =
  let n = r16 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let rmat r =
  let rows = r16 r in
  let cols = r16 r in
  let m = Mat.create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      Mat.set m i j (rf64 r)
    done
  done;
  m

let default_resolve name = raise (Decode_error ("unresolved kernel " ^ name))

let decode ?(resolve = default_resolve) data =
  let r = { data; pos = 0 } in
  need r 4;
  if String.sub data 0 4 <> magic then raise (Decode_error "bad magic");
  r.pos <- 4;
  let v = r16 r in
  if v <> version then raise (Decode_error (Printf.sprintf "unsupported version %d" v));
  let count = r32 r in
  let out_count = r32 r in
  let b = Program.Builder.create () in
  for _ = 1 to count do
    let tag = r8 r in
    let phase =
      match r8 r with
      | 0 -> Instr.Construct
      | 1 -> Instr.Decompose
      | 2 -> Instr.Backsub
      | n -> raise (Decode_error (Printf.sprintf "bad phase %d" n))
    in
    let algo = r16 r in
    let rows = r16 r in
    let cols = r16 r in
    let nsrcs = r16 r in
    let srcs = Array.init nsrcs (fun _ -> r32 r) in
    let op =
      match tag with
      | 0 -> Instr.Load (rmat r)
      | 1 -> Instr.Vadd
      | 2 -> Instr.Vsub
      | 3 -> Instr.Scale (rf64 r)
      | 4 -> Instr.Neg
      | 5 -> Instr.Transpose
      | 6 -> Instr.Gemm
      | 7 -> Instr.Gemv
      | 8 -> Instr.Logm
      | 9 -> Instr.Expm
      | 10 -> Instr.Skew
      | 11 -> Instr.Jr
      | 12 -> Instr.Jrinv
      | 13 ->
          let n = r16 r in
          Instr.Assemble
            (List.init n (fun _ ->
                 let row = r16 r in
                 let col = r16 r in
                 (row, col)))
      | 14 ->
          let row = r16 r in
          let col = r16 r in
          let brows = r16 r in
          let bcols = r16 r in
          Instr.Extract { row; col; rows = brows; cols = bcols }
      | 15 -> Instr.Qr
      | 16 -> Instr.Backsolve
      | 17 ->
          let name = rstring r in
          let flops = r32 r in
          let k = resolve name in
          if k.Instr.flops <> flops then
            raise (Decode_error ("kernel flops mismatch for " ^ name));
          Instr.Kernel k
      | n -> raise (Decode_error (Printf.sprintf "bad opcode %d" n))
    in
    (try ignore (Program.Builder.emit b ~op ~srcs ~rows ~cols ~phase ~algo ~tag:"")
     with Failure msg -> raise (Decode_error msg))
  done;
  let outputs =
    List.init out_count (fun _ ->
        let name = rstring r in
        let reg = r32 r in
        (name, reg))
  in
  if r.pos <> String.length data then raise (Decode_error "trailing bytes");
  let p = Program.Builder.finish b ~outputs in
  (try Program.validate p with Failure msg -> raise (Decode_error msg));
  p

(* ------------------------------------------------------------------ *)
(* Integrity trailer                                                   *)

let trailer_magic = "CRC0"
let trailer_length = 8

let encode_checksummed p =
  let payload = encode p in
  let buf = Buffer.create (String.length payload + trailer_length) in
  Buffer.add_string buf payload;
  Buffer.add_string buf trailer_magic;
  w32 buf (Orianna_util.Checksum.crc32 payload);
  Buffer.contents buf

let verify data =
  let n = String.length data in
  if n < trailer_length then Error "image shorter than the integrity trailer"
  else begin
    let payload = String.sub data 0 (n - trailer_length) in
    let trailer = String.sub data (n - trailer_length) trailer_length in
    if String.sub trailer 0 4 <> trailer_magic then Error "missing CRC trailer"
    else begin
      let stored = ref 0 in
      for i = 7 downto 4 do
        stored := (!stored lsl 8) lor Char.code trailer.[i]
      done;
      let computed = Orianna_util.Checksum.crc32 payload in
      if computed <> !stored then
        Error
          (Printf.sprintf "instruction-stream checksum mismatch: stored %08x, computed %08x"
             !stored computed)
      else Ok payload
    end
  end

let decode_checksummed ?resolve data =
  match verify data with
  | Ok payload -> decode ?resolve payload
  | Error msg -> raise (Decode_error msg)

let kernel_names (p : Program.t) =
  let seen = Hashtbl.create 8 in
  Array.to_list p.Program.instrs
  |> List.filter_map (fun (i : Instr.t) ->
         match i.Instr.op with
         | Instr.Kernel k when not (Hashtbl.mem seen k.Instr.kname) ->
             Hashtbl.add seen k.Instr.kname ();
             Some k.Instr.kname
         | _ -> None)
