(** SSA instruction streams and their functional semantics.

    A program is the complete instruction stream of one Gauss-Newton
    iteration for a (multi-algorithm) application: construction
    instructions per factor, elimination instructions per variable and
    back-substitution instructions, with explicit register
    dependencies.  The interpreter gives the stream a precise meaning,
    which tests compare against the software solver; the hardware
    simulator (in [orianna_sim]) replays the same stream against
    timing models. *)

open Orianna_linalg

type t = {
  instrs : Instr.t array;  (** topologically ordered: srcs < id *)
  outputs : (string * int) list;  (** variable name -> register holding its Δ *)
}

module Builder : sig
  type program = t
  type b

  val create : unit -> b

  val emit :
    b ->
    op:Instr.opcode ->
    srcs:int array ->
    rows:int ->
    cols:int ->
    phase:Instr.phase ->
    algo:int ->
    tag:string ->
    int
  (** Append an instruction; returns the register it defines. *)

  val shape : b -> int -> int * int
  (** Shape of an already-emitted register. *)

  val finish : b -> outputs:(string * int) list -> program
end

val length : t -> int

val hash : t -> int32
(** Content hash: CRC-32 over a canonical byte serialization of the
    stream (opcodes with payloads, shapes, phases, algorithm ids,
    dependencies, outputs — everything {!Encode} puts on the wire, and
    nothing it drops, so the hash is stable across an encode/decode
    round trip).  Serving-layer compile caches use it as the fallback
    content key when no factor-graph template is available. *)

val validate : t -> unit
(** Check SSA ordering and source-range sanity; raises [Failure]. *)

val eval_op : Instr.t -> Mat.t array -> Mat.t
(** Evaluate one instruction given its source {e values} (positionally
    aligned with [srcs]).  {!execute} is defined in terms of this; the
    optimizer's superword pass captures it so batched kernels
    reproduce member-op semantics bit-for-bit. *)

val execute : t -> Mat.t array
(** Evaluate every instruction (vectors are [n x 1] matrices). *)

val deltas : t -> Mat.t array -> (string * Vec.t) list
(** Read the per-variable solution out of an execution. *)

val run : t -> (string * Vec.t) list
(** {!execute} then {!deltas}. *)

type stats = {
  instructions : int;
  by_opcode : (string * int) list;
  by_phase : (Instr.phase * int) list;
  flops_total : int;
  flops_by_phase : (Instr.phase * int) list;
  critical_path : int;  (** longest dependency chain, in instructions *)
  max_width : int;  (** peak number of instructions at one dependency depth *)
}

val stats : t -> stats

val op_sizes : t -> ?phase:Instr.phase -> unit -> (int * int) list
(** Output shapes of the arithmetic instructions (optionally filtered
    by phase) — the census behind Figs. 17/18. *)

val concat : t list -> t
(** Merge several algorithm streams into one application stream,
    renumbering registers; output names must not collide.  Algorithm
    ids are preserved, so the coarse-grained OoO scheduler can
    interleave them (Sec. 6.3). *)

val pp : Format.formatter -> t -> unit

val pp_stats : Format.formatter -> stats -> unit
