open Orianna_linalg
module Obs = Orianna_obs.Obs

type report = {
  before : int;
  after : int;
  cse_merged : int;
  fused : int;
  dce_removed : int;
  reorder_moved : int;
}

let identity_map n = Array.init n (fun i -> i)

(* Compose register maps: [m1] old->mid, [m2] mid->new. *)
let compose m1 m2 = Array.map (fun m -> if m < 0 then -1 else m2.(m)) m1

let rec resolve subst i =
  let j = subst.(i) in
  if j = i then i
  else begin
    let r = resolve subst j in
    subst.(i) <- r;
    r
  end

(* Rebuild [p] keeping instruction [i] iff [keep.(i)], with every
   register first redirected through [subst].  Representatives
   (targets of [subst]) must be kept.  Returns the rebuilt program and
   the old->new register map; a dropped-but-forwarded register maps to
   its representative's new id, a dropped dead register to [-1]. *)
let rebuild (p : Program.t) ~(instrs : Instr.t array) ~subst ~keep =
  let n = Array.length instrs in
  let map = Array.make n (-1) in
  let b = Program.Builder.create () in
  Array.iteri
    (fun i (ins : Instr.t) ->
      if keep.(i) then begin
        let srcs = Array.map (fun s -> map.(resolve subst s)) ins.Instr.srcs in
        map.(i) <-
          Program.Builder.emit b ~op:ins.Instr.op ~srcs ~rows:ins.Instr.rows ~cols:ins.Instr.cols
            ~phase:ins.Instr.phase ~algo:ins.Instr.algo ~tag:ins.Instr.tag
      end)
    instrs;
  let map = Array.mapi (fun i m -> if m >= 0 then m else map.(resolve subst i)) map in
  let outputs = List.map (fun (nm, r) -> (nm, map.(resolve subst r))) p.Program.outputs in
  (Program.Builder.finish b ~outputs, map)

(* ------------------------------------------------------------------ *)
(* CSE                                                                 *)

let opcode_tag : Instr.opcode -> int = function
  | Instr.Load _ -> 0
  | Instr.Vadd -> 1
  | Instr.Vsub -> 2
  | Instr.Scale _ -> 3
  | Instr.Neg -> 4
  | Instr.Transpose -> 5
  | Instr.Gemm -> 6
  | Instr.Gemv -> 7
  | Instr.Logm -> 8
  | Instr.Expm -> 9
  | Instr.Skew -> 10
  | Instr.Jr -> 11
  | Instr.Jrinv -> 12
  | Instr.Assemble _ -> 13
  | Instr.Extract _ -> 14
  | Instr.Qr -> 15
  | Instr.Backsolve -> 16
  | Instr.Kernel _ -> 17

(* Structural value key: opcode + payload (Load matrices by bytes) +
   resolved sources + declared shape.  Phase/algo/tag are metadata,
   not semantics, and are deliberately excluded so duplicates merge
   across graphs of a concatenated application.  [Vadd] sources are
   sorted: IEEE-754 addition is commutative bit-for-bit. *)
let value_key subst (ins : Instr.t) =
  match ins.Instr.op with
  | Instr.Kernel _ -> None
  | op ->
      let buf = Buffer.create 64 in
      let w32 v = Buffer.add_int32_le buf (Int32.of_int v) in
      let wf64 x = Buffer.add_int64_le buf (Int64.bits_of_float x) in
      w32 (opcode_tag op);
      (match op with
      | Instr.Load m ->
          let r, c = Mat.dims m in
          w32 r;
          w32 c;
          for i = 0 to r - 1 do
            for j = 0 to c - 1 do
              wf64 (Mat.get m i j)
            done
          done
      | Instr.Scale s -> wf64 s
      | Instr.Assemble places ->
          w32 (List.length places);
          List.iter
            (fun (r, c) ->
              w32 r;
              w32 c)
            places
      | Instr.Extract { row; col; rows; cols } ->
          w32 row;
          w32 col;
          w32 rows;
          w32 cols
      | _ -> ());
      let srcs = Array.map (resolve subst) ins.Instr.srcs in
      (match op with
      | Instr.Vadd when Array.length srcs = 2 && srcs.(0) > srcs.(1) ->
          let t = srcs.(0) in
          srcs.(0) <- srcs.(1);
          srcs.(1) <- t
      | _ -> ());
      w32 (Array.length srcs);
      Array.iter w32 srcs;
      w32 ins.Instr.rows;
      w32 ins.Instr.cols;
      Some (Buffer.contents buf)

let cse_pass (p : Program.t) =
  let instrs = p.Program.instrs in
  let n = Array.length instrs in
  let subst = identity_map n in
  let keep = Array.make n true in
  let table = Hashtbl.create ((2 * n) + 1) in
  let merged = ref 0 in
  Array.iteri
    (fun i ins ->
      match value_key subst ins with
      | None -> ()
      | Some k -> (
          match Hashtbl.find_opt table k with
          | Some rep ->
              subst.(i) <- rep;
              keep.(i) <- false;
              incr merged
          | None -> Hashtbl.add table k i))
    instrs;
  if !merged > 0 then Obs.count "isa.opt.cse_merged" ~n:!merged;
  let p', map = rebuild p ~instrs ~subst ~keep in
  (p', map, !merged)

let cse p =
  let p', map, _ = cse_pass p in
  (p', map)

(* ------------------------------------------------------------------ *)
(* Peephole fusion                                                     *)

let fuse_pass (p : Program.t) =
  let instrs = Array.copy p.Program.instrs in
  let n = Array.length instrs in
  let subst = identity_map n in
  let keep = Array.make n true in
  let fused = ref 0 in
  let changed = ref true in
  let forward i target =
    subst.(i) <- resolve subst target;
    keep.(i) <- false;
    incr fused;
    changed := true
  in
  let set i op srcs =
    instrs.(i) <- { (instrs.(i)) with Instr.op; srcs };
    incr fused;
    changed := true
  in
  let def s = instrs.(resolve subst s) in
  let rounds = ref 0 in
  while !changed && !rounds < 8 do
    changed := false;
    incr rounds;
    for i = 0 to n - 1 do
      if keep.(i) then begin
        (* Resolve sources through the substitution first so chains
           expose themselves within one round. *)
        let rs = Array.map (resolve subst) instrs.(i).Instr.srcs in
        if rs <> instrs.(i).Instr.srcs then instrs.(i) <- { (instrs.(i)) with Instr.srcs = rs };
        let ins = instrs.(i) in
        match ins.Instr.op with
        | Instr.Scale s when s = 1.0 -> forward i ins.Instr.srcs.(0)
        | Instr.Scale s -> (
            let dx = def ins.Instr.srcs.(0) in
            match dx.Instr.op with
            | Instr.Scale s' -> set i (Instr.Scale (s *. s')) [| dx.Instr.srcs.(0) |]
            | Instr.Neg -> set i (Instr.Scale (-.s)) [| dx.Instr.srcs.(0) |]
            | _ -> ())
        | Instr.Neg -> (
            let dx = def ins.Instr.srcs.(0) in
            match dx.Instr.op with
            | Instr.Neg -> forward i dx.Instr.srcs.(0)
            | Instr.Scale s -> set i (Instr.Scale (-.s)) [| dx.Instr.srcs.(0) |]
            | Instr.Vsub -> set i Instr.Vsub [| dx.Instr.srcs.(1); dx.Instr.srcs.(0) |]
            | _ -> ())
        | Instr.Transpose -> (
            let dx = def ins.Instr.srcs.(0) in
            match dx.Instr.op with
            | Instr.Transpose -> forward i dx.Instr.srcs.(0)
            | _ -> ())
        | Instr.Vadd -> (
            let a = ins.Instr.srcs.(0) and b = ins.Instr.srcs.(1) in
            match ((def b).Instr.op, (def a).Instr.op) with
            | Instr.Neg, _ -> set i Instr.Vsub [| a; (def b).Instr.srcs.(0) |]
            | _, Instr.Neg -> set i Instr.Vsub [| b; (def a).Instr.srcs.(0) |]
            | _ -> ())
        | Instr.Vsub -> (
            let a = ins.Instr.srcs.(0) and b = ins.Instr.srcs.(1) in
            match (def b).Instr.op with
            | Instr.Neg -> set i Instr.Vadd [| a; (def b).Instr.srcs.(0) |]
            | _ -> ())
        | Instr.Assemble [ (0, 0) ] when Array.length ins.Instr.srcs = 1 ->
            let ds = def ins.Instr.srcs.(0) in
            if ds.Instr.rows = ins.Instr.rows && ds.Instr.cols = ins.Instr.cols then
              forward i ins.Instr.srcs.(0)
        | Instr.Extract { row; col; rows; cols } -> (
            let x = ins.Instr.srcs.(0) in
            let dx = def x in
            if row = 0 && col = 0 && rows = dx.Instr.rows && cols = dx.Instr.cols then forward i x
            else
              match dx.Instr.op with
              | Instr.Assemble places ->
                  (* Forward an extract that reads exactly one placed
                     block, provided no later block clobbers it (later
                     blocks overwrite earlier ones in [execute]). *)
                  let places = Array.of_list places in
                  let nb = Array.length places in
                  let region k =
                    let r, c = places.(k) in
                    let s = def dx.Instr.srcs.(k) in
                    (r, c, s.Instr.rows, s.Instr.cols)
                  in
                  let overlaps (r1, c1, h1, w1) (r2, c2, h2, w2) =
                    r1 < r2 + h2 && r2 < r1 + h1 && c1 < c2 + w2 && c2 < c1 + w1
                  in
                  let found = ref (-1) in
                  for k = 0 to nb - 1 do
                    let r, c, h, w = region k in
                    if r = row && c = col && h = rows && w = cols then found := k
                  done;
                  if !found >= 0 then begin
                    let k = !found in
                    let clobbered = ref false in
                    for j = k + 1 to nb - 1 do
                      if overlaps (region k) (region j) then clobbered := true
                    done;
                    if not !clobbered then forward i dx.Instr.srcs.(k)
                  end
              | _ -> ())
        | _ -> ()
      end
    done
  done;
  if !fused > 0 then Obs.count "isa.opt.fused" ~n:!fused;
  let p', map = rebuild p ~instrs ~subst ~keep in
  (p', map, !fused)

let fuse p =
  let p', map, _ = fuse_pass p in
  (p', map)

(* ------------------------------------------------------------------ *)
(* DCE                                                                 *)

let dce_pass (p : Program.t) =
  let instrs = p.Program.instrs in
  let n = Array.length instrs in
  let live = Array.make n false in
  List.iter (fun (_, r) -> live.(r) <- true) p.Program.outputs;
  for i = n - 1 downto 0 do
    if live.(i) then Array.iter (fun s -> live.(s) <- true) instrs.(i).Instr.srcs
  done;
  let removed = ref 0 in
  Array.iter (fun l -> if not l then incr removed) live;
  if !removed > 0 then Obs.count "isa.opt.dce_removed" ~n:!removed;
  let p', map = rebuild p ~instrs ~subst:(identity_map n) ~keep:live in
  (p', map, !removed)

let dce p =
  let p', map, _ = dce_pass p in
  (p', map)

(* ------------------------------------------------------------------ *)
(* Operand-aware reorder                                               *)

(* Static per-opcode latency model mirroring the shape (not the exact
   parameters) of [Orianna_hw.Unit_model]; [Orianna_isa] cannot depend
   on the hardware layer, and the measured [stalls] weights are the
   precision knob when a real schedule is available. *)
let static_latency (instrs : Instr.t array) i =
  let ins = instrs.(i) in
  let out = ins.Instr.rows * ins.Instr.cols in
  let cd a b = (a + b - 1) / b in
  match ins.Instr.op with
  | Instr.Load _ | Instr.Assemble _ | Instr.Extract _ -> 2 + cd out 8
  | Instr.Vadd | Instr.Vsub | Instr.Scale _ | Instr.Neg | Instr.Transpose -> 2 + cd out 16
  | Instr.Logm | Instr.Expm | Instr.Skew | Instr.Jr | Instr.Jrinv -> 20
  | Instr.Gemm | Instr.Gemv ->
      let k = instrs.(ins.Instr.srcs.(0)).Instr.cols in
      2 + (cd ins.Instr.rows 8 * cd ins.Instr.cols 8 * (k + 8))
  | Instr.Qr ->
      let s = instrs.(ins.Instr.srcs.(0)) in
      let m = s.Instr.rows and nn = s.Instr.cols in
      let w = ref 6 in
      for k = 0 to min m nn - 1 do
        w := !w + (cd (max (m - k - 1) 1) 8 * (nn - k))
      done;
      !w
  | Instr.Backsolve ->
      let nn = instrs.(ins.Instr.srcs.(0)).Instr.rows in
      2 + (nn * cd nn 4) + nn
  | Instr.Kernel k -> 2 + cd k.Instr.flops 64

let reorder ?stalls (p : Program.t) =
  let instrs = p.Program.instrs in
  let n = Array.length instrs in
  (match stalls with
  | Some s when Array.length s <> n -> invalid_arg "Opt.reorder: stalls length mismatch"
  | _ -> ());
  let w i = static_latency instrs i + match stalls with Some s -> s.(i) | None -> 0 in
  (* Priority: longest latency-weighted path from the instruction to
     any sink.  Descending sweep finalizes each consumer before its
     producers are relaxed (sources always have smaller ids). *)
  let prio = Array.init n w in
  for i = n - 1 downto 0 do
    Array.iter
      (fun s -> if prio.(s) < prio.(i) + w s then prio.(s) <- prio.(i) + w s)
      instrs.(i).Instr.srcs
  done;
  (* Greedy list order within each contiguous algo run.  Runs are not
     merged or interleaved: cross-run dependencies always point
     backwards, and the per-algorithm partition order used by
     [Ooo_fine] scheduling is preserved. *)
  let order = Array.make n 0 in
  let pos = ref 0 in
  let seg = ref 0 in
  while !seg < n do
    let lo = !seg in
    let a = instrs.(lo).Instr.algo in
    let hi = ref lo in
    while !hi < n && instrs.(!hi).Instr.algo = a do
      incr hi
    done;
    let hi = !hi in
    let indeg = Array.make n 0 in
    let consumers = Array.make n [] in
    for i = lo to hi - 1 do
      Array.iter
        (fun s ->
          if s >= lo then begin
            indeg.(i) <- indeg.(i) + 1;
            consumers.(s) <- i :: consumers.(s)
          end)
        instrs.(i).Instr.srcs
    done;
    let heap =
      Orianna_util.Heap.create ~cmp:(fun (pa, ia) (pb, ib) ->
          if pa <> pb then compare (pb : int) pa else compare (ia : int) ib)
    in
    for i = lo to hi - 1 do
      if indeg.(i) = 0 then Orianna_util.Heap.push heap (prio.(i), i)
    done;
    while not (Orianna_util.Heap.is_empty heap) do
      match Orianna_util.Heap.pop heap with
      | None -> ()
      | Some (_, i) ->
          order.(!pos) <- i;
          incr pos;
          List.iter
            (fun c ->
              indeg.(c) <- indeg.(c) - 1;
              if indeg.(c) = 0 then Orianna_util.Heap.push heap (prio.(c), c))
            consumers.(i)
    done;
    seg := hi
  done;
  if !pos <> n then failwith "Opt.reorder: scheduling did not cover the program";
  let map = Array.make n (-1) in
  let b = Program.Builder.create () in
  Array.iter
    (fun i ->
      let ins = instrs.(i) in
      let srcs = Array.map (fun s -> map.(s)) ins.Instr.srcs in
      map.(i) <-
        Program.Builder.emit b ~op:ins.Instr.op ~srcs ~rows:ins.Instr.rows ~cols:ins.Instr.cols
          ~phase:ins.Instr.phase ~algo:ins.Instr.algo ~tag:ins.Instr.tag)
    order;
  let outputs = List.map (fun (nm, r) -> (nm, map.(r))) p.Program.outputs in
  let moved = ref 0 in
  Array.iteri (fun i m -> if i <> m then incr moved) map;
  if !moved > 0 then Obs.count "isa.opt.reorder_moved" ~n:!moved;
  (Program.Builder.finish b ~outputs, map)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)

let optimize_traced ?(level = 1) (p : Program.t) =
  let before = Program.length p in
  let zero = { before; after = before; cse_merged = 0; fused = 0; dce_removed = 0; reorder_moved = 0 } in
  if level <= 0 || before = 0 then (p, identity_map before, zero)
  else begin
    let prog = ref p in
    let map = ref (identity_map before) in
    let cse_merged = ref 0 and fused = ref 0 in
    let continue_ = ref true in
    let rounds = ref 0 in
    while !continue_ && !rounds < 5 do
      incr rounds;
      let q, m, df = fuse_pass !prog in
      prog := q;
      map := compose !map m;
      fused := !fused + df;
      let q, m, dc = cse_pass !prog in
      prog := q;
      map := compose !map m;
      cse_merged := !cse_merged + dc;
      continue_ := df + dc > 0
    done;
    let q, m, dce_removed = dce_pass !prog in
    prog := q;
    map := compose !map m;
    let q, m = reorder !prog in
    let reorder_moved = ref 0 in
    Array.iteri (fun i mi -> if i <> mi then incr reorder_moved) m;
    prog := q;
    map := compose !map m;
    Program.validate !prog;
    let after = Program.length !prog in
    if before > after then Obs.count "isa.opt.instructions_saved" ~n:(before - after);
    ( !prog,
      !map,
      {
        before;
        after;
        cse_merged = !cse_merged;
        fused = !fused;
        dce_removed;
        reorder_moved = !reorder_moved;
      } )
  end

let optimize ?level p =
  let p', _, _ = optimize_traced ?level p in
  p'

let pp_report ppf r =
  Format.fprintf ppf "%d -> %d instructions (cse %d, fused %d, dce %d, reordered %d)" r.before
    r.after r.cse_merged r.fused r.dce_removed r.reorder_moved
