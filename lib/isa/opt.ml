open Orianna_linalg
module Obs = Orianna_obs.Obs

type report = {
  before : int;
  after : int;
  cse_merged : int;
  fused : int;
  dce_removed : int;
  reorder_moved : int;
  superword_merged : int;
  cycle_deltas : (string * int) list;
}

let identity_map n = Array.init n (fun i -> i)

(* Compose register maps: [m1] old->mid, [m2] mid->new. *)
let compose m1 m2 = Array.map (fun m -> if m < 0 then -1 else m2.(m)) m1

let rec resolve subst i =
  let j = subst.(i) in
  if j = i then i
  else begin
    let r = resolve subst j in
    subst.(i) <- r;
    r
  end

(* Rebuild [p] keeping instruction [i] iff [keep.(i)], with every
   register first redirected through [subst].  Representatives
   (targets of [subst]) must be kept.  Returns the rebuilt program and
   the old->new register map; a dropped-but-forwarded register maps to
   its representative's new id, a dropped dead register to [-1]. *)
let rebuild (p : Program.t) ~(instrs : Instr.t array) ~subst ~keep =
  let n = Array.length instrs in
  let map = Array.make n (-1) in
  let b = Program.Builder.create () in
  Array.iteri
    (fun i (ins : Instr.t) ->
      if keep.(i) then begin
        let srcs = Array.map (fun s -> map.(resolve subst s)) ins.Instr.srcs in
        map.(i) <-
          Program.Builder.emit b ~op:ins.Instr.op ~srcs ~rows:ins.Instr.rows ~cols:ins.Instr.cols
            ~phase:ins.Instr.phase ~algo:ins.Instr.algo ~tag:ins.Instr.tag
      end)
    instrs;
  let map = Array.mapi (fun i m -> if m >= 0 then m else map.(resolve subst i)) map in
  let outputs = List.map (fun (nm, r) -> (nm, map.(resolve subst r))) p.Program.outputs in
  (Program.Builder.finish b ~outputs, map)

(* ------------------------------------------------------------------ *)
(* CSE                                                                 *)

let opcode_tag : Instr.opcode -> int = function
  | Instr.Load _ -> 0
  | Instr.Vadd -> 1
  | Instr.Vsub -> 2
  | Instr.Scale _ -> 3
  | Instr.Neg -> 4
  | Instr.Transpose -> 5
  | Instr.Gemm -> 6
  | Instr.Gemv -> 7
  | Instr.Logm -> 8
  | Instr.Expm -> 9
  | Instr.Skew -> 10
  | Instr.Jr -> 11
  | Instr.Jrinv -> 12
  | Instr.Assemble _ -> 13
  | Instr.Extract _ -> 14
  | Instr.Qr -> 15
  | Instr.Backsolve -> 16
  | Instr.Kernel _ -> 17

(* Structural value key: opcode + payload (Load matrices by bytes) +
   resolved sources + declared shape.  Phase/algo/tag are metadata,
   not semantics, and are deliberately excluded so duplicates merge
   across graphs of a concatenated application.  [Vadd] sources are
   sorted: IEEE-754 addition is commutative bit-for-bit. *)
let value_key subst (ins : Instr.t) =
  match ins.Instr.op with
  | Instr.Kernel _ -> None
  | op ->
      let buf = Buffer.create 64 in
      let w32 v = Buffer.add_int32_le buf (Int32.of_int v) in
      let wf64 x = Buffer.add_int64_le buf (Int64.bits_of_float x) in
      w32 (opcode_tag op);
      (match op with
      | Instr.Load m ->
          let r, c = Mat.dims m in
          w32 r;
          w32 c;
          for i = 0 to r - 1 do
            for j = 0 to c - 1 do
              wf64 (Mat.get m i j)
            done
          done
      | Instr.Scale s -> wf64 s
      | Instr.Assemble places ->
          w32 (List.length places);
          List.iter
            (fun (r, c) ->
              w32 r;
              w32 c)
            places
      | Instr.Extract { row; col; rows; cols } ->
          w32 row;
          w32 col;
          w32 rows;
          w32 cols
      | _ -> ());
      let srcs = Array.map (resolve subst) ins.Instr.srcs in
      (match op with
      | Instr.Vadd when Array.length srcs = 2 && srcs.(0) > srcs.(1) ->
          let t = srcs.(0) in
          srcs.(0) <- srcs.(1);
          srcs.(1) <- t
      | _ -> ());
      w32 (Array.length srcs);
      Array.iter w32 srcs;
      w32 ins.Instr.rows;
      w32 ins.Instr.cols;
      Some (Buffer.contents buf)

let cse_pass (p : Program.t) =
  let instrs = p.Program.instrs in
  let n = Array.length instrs in
  let subst = identity_map n in
  let keep = Array.make n true in
  let table = Hashtbl.create ((2 * n) + 1) in
  let merged = ref 0 in
  Array.iteri
    (fun i ins ->
      match value_key subst ins with
      | None -> ()
      | Some k -> (
          match Hashtbl.find_opt table k with
          | Some rep ->
              subst.(i) <- rep;
              keep.(i) <- false;
              incr merged
          | None -> Hashtbl.add table k i))
    instrs;
  if !merged > 0 then Obs.count "isa.opt.cse_merged" ~n:!merged;
  let p', map = rebuild p ~instrs ~subst ~keep in
  (p', map, !merged)

let cse p =
  let p', map, _ = cse_pass p in
  (p', map)

(* ------------------------------------------------------------------ *)
(* Peephole fusion                                                     *)

let fuse_pass (p : Program.t) =
  let instrs = Array.copy p.Program.instrs in
  let n = Array.length instrs in
  let subst = identity_map n in
  let keep = Array.make n true in
  let fused = ref 0 in
  let changed = ref true in
  let forward i target =
    subst.(i) <- resolve subst target;
    keep.(i) <- false;
    incr fused;
    changed := true
  in
  let set i op srcs =
    instrs.(i) <- { (instrs.(i)) with Instr.op; srcs };
    incr fused;
    changed := true
  in
  let def s = instrs.(resolve subst s) in
  let rounds = ref 0 in
  while !changed && !rounds < 8 do
    changed := false;
    incr rounds;
    for i = 0 to n - 1 do
      if keep.(i) then begin
        (* Resolve sources through the substitution first so chains
           expose themselves within one round. *)
        let rs = Array.map (resolve subst) instrs.(i).Instr.srcs in
        if rs <> instrs.(i).Instr.srcs then instrs.(i) <- { (instrs.(i)) with Instr.srcs = rs };
        let ins = instrs.(i) in
        match ins.Instr.op with
        | Instr.Scale s when s = 1.0 -> forward i ins.Instr.srcs.(0)
        | Instr.Scale s -> (
            let dx = def ins.Instr.srcs.(0) in
            match dx.Instr.op with
            | Instr.Scale s' -> set i (Instr.Scale (s *. s')) [| dx.Instr.srcs.(0) |]
            | Instr.Neg -> set i (Instr.Scale (-.s)) [| dx.Instr.srcs.(0) |]
            | _ -> ())
        | Instr.Neg -> (
            let dx = def ins.Instr.srcs.(0) in
            match dx.Instr.op with
            | Instr.Neg -> forward i dx.Instr.srcs.(0)
            | Instr.Scale s -> set i (Instr.Scale (-.s)) [| dx.Instr.srcs.(0) |]
            | Instr.Vsub -> set i Instr.Vsub [| dx.Instr.srcs.(1); dx.Instr.srcs.(0) |]
            | _ -> ())
        | Instr.Transpose -> (
            let dx = def ins.Instr.srcs.(0) in
            match dx.Instr.op with
            | Instr.Transpose -> forward i dx.Instr.srcs.(0)
            | _ -> ())
        | Instr.Vadd -> (
            let a = ins.Instr.srcs.(0) and b = ins.Instr.srcs.(1) in
            match ((def b).Instr.op, (def a).Instr.op) with
            | Instr.Neg, _ -> set i Instr.Vsub [| a; (def b).Instr.srcs.(0) |]
            | _, Instr.Neg -> set i Instr.Vsub [| b; (def a).Instr.srcs.(0) |]
            | _ -> ())
        | Instr.Vsub -> (
            let a = ins.Instr.srcs.(0) and b = ins.Instr.srcs.(1) in
            match (def b).Instr.op with
            | Instr.Neg -> set i Instr.Vadd [| a; (def b).Instr.srcs.(0) |]
            | _ -> ())
        | Instr.Assemble [ (0, 0) ] when Array.length ins.Instr.srcs = 1 ->
            let ds = def ins.Instr.srcs.(0) in
            if ds.Instr.rows = ins.Instr.rows && ds.Instr.cols = ins.Instr.cols then
              forward i ins.Instr.srcs.(0)
        | Instr.Extract { row; col; rows; cols } -> (
            let x = ins.Instr.srcs.(0) in
            let dx = def x in
            if row = 0 && col = 0 && rows = dx.Instr.rows && cols = dx.Instr.cols then forward i x
            else
              match dx.Instr.op with
              | Instr.Assemble places ->
                  (* Forward an extract that reads exactly one placed
                     block, provided no later block clobbers it (later
                     blocks overwrite earlier ones in [execute]). *)
                  let places = Array.of_list places in
                  let nb = Array.length places in
                  let region k =
                    let r, c = places.(k) in
                    let s = def dx.Instr.srcs.(k) in
                    (r, c, s.Instr.rows, s.Instr.cols)
                  in
                  let overlaps (r1, c1, h1, w1) (r2, c2, h2, w2) =
                    r1 < r2 + h2 && r2 < r1 + h1 && c1 < c2 + w2 && c2 < c1 + w1
                  in
                  let found = ref (-1) in
                  for k = 0 to nb - 1 do
                    let r, c, h, w = region k in
                    if r = row && c = col && h = rows && w = cols then found := k
                  done;
                  if !found >= 0 then begin
                    let k = !found in
                    let clobbered = ref false in
                    for j = k + 1 to nb - 1 do
                      if overlaps (region k) (region j) then clobbered := true
                    done;
                    if not !clobbered then forward i dx.Instr.srcs.(k)
                  end
              | _ -> ())
        | _ -> ()
      end
    done
  done;
  if !fused > 0 then Obs.count "isa.opt.fused" ~n:!fused;
  let p', map = rebuild p ~instrs ~subst ~keep in
  (p', map, !fused)

let fuse p =
  let p', map, _ = fuse_pass p in
  (p', map)

(* ------------------------------------------------------------------ *)
(* DCE                                                                 *)

let dce_pass (p : Program.t) =
  let instrs = p.Program.instrs in
  let n = Array.length instrs in
  let live = Array.make n false in
  List.iter (fun (_, r) -> live.(r) <- true) p.Program.outputs;
  for i = n - 1 downto 0 do
    if live.(i) then Array.iter (fun s -> live.(s) <- true) instrs.(i).Instr.srcs
  done;
  let removed = ref 0 in
  Array.iter (fun l -> if not l then incr removed) live;
  if !removed > 0 then Obs.count "isa.opt.dce_removed" ~n:!removed;
  let p', map = rebuild p ~instrs ~subst:(identity_map n) ~keep:live in
  (p', map, !removed)

let dce p =
  let p', map, _ = dce_pass p in
  (p', map)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)

(* The hardware layer ([Orianna_hw]) sits above [Orianna_isa], so the
   real per-opcode latencies and unit-instance counts are injected
   through this record (see [Orianna_hw.Accel.cost_model]) rather than
   referenced directly.  [static_cost_model] mirrors the shape (not
   the exact parameters) of [Unit_model] with one port per class. *)
type cost_model = {
  classes : int;
  class_of : Instr.opcode -> int;
  ports : int array;
  latency : Instr.t -> src_shape:(int -> int * int) -> int;
}

let static_class_of : Instr.opcode -> int = function
  | Instr.Gemm | Instr.Gemv | Instr.Kernel _ -> 0
  | Instr.Vadd | Instr.Vsub | Instr.Scale _ | Instr.Neg | Instr.Transpose -> 1
  | Instr.Logm | Instr.Expm | Instr.Skew | Instr.Jr | Instr.Jrinv -> 2
  | Instr.Qr -> 3
  | Instr.Backsolve -> 4
  | Instr.Load _ | Instr.Assemble _ | Instr.Extract _ -> 5

let static_latency_of (ins : Instr.t) ~src_shape =
  let out = ins.Instr.rows * ins.Instr.cols in
  let cd a b = (a + b - 1) / b in
  match ins.Instr.op with
  | Instr.Load _ | Instr.Assemble _ | Instr.Extract _ -> 2 + cd out 8
  | Instr.Vadd | Instr.Vsub | Instr.Scale _ | Instr.Neg | Instr.Transpose -> 2 + cd out 16
  | Instr.Logm | Instr.Expm | Instr.Skew | Instr.Jr | Instr.Jrinv -> 20
  | Instr.Gemm | Instr.Gemv ->
      let _, k = src_shape ins.Instr.srcs.(0) in
      2 + (cd ins.Instr.rows 8 * cd ins.Instr.cols 8 * (k + 8))
  | Instr.Qr ->
      let m, nn = src_shape ins.Instr.srcs.(0) in
      let w = ref 6 in
      for k = 0 to min m nn - 1 do
        w := !w + (cd (max (m - k - 1) 1) 8 * (nn - k))
      done;
      !w
  | Instr.Backsolve ->
      let nn, _ = src_shape ins.Instr.srcs.(0) in
      2 + (nn * cd nn 4) + nn
  | Instr.Kernel k -> 2 + cd k.Instr.flops 64

let static_cost_model =
  {
    classes = 6;
    class_of = static_class_of;
    ports = Array.make 6 1;
    latency = static_latency_of;
  }

type probe = Program.t -> int * int array

(* Resource-constrained list scheduling over the whole stream: at each
   step pick, among dependence-ready instructions, the one that can
   start earliest given per-class port availability; ties go to the
   higher critical-path priority, then the lower id.  Returns the
   issue order and the modeled makespan.  Deterministic by
   construction. *)
let list_schedule ~(cost_model : cost_model) ?stalls (p : Program.t) =
  let cm = cost_model in
  let instrs = p.Program.instrs in
  let n = Array.length instrs in
  (match stalls with
  | Some s when Array.length s <> n -> invalid_arg "Opt.list_schedule: stalls length mismatch"
  | _ -> ());
  let src_shape s = (instrs.(s).Instr.rows, instrs.(s).Instr.cols) in
  let lat = Array.init n (fun i -> max 1 (cm.latency instrs.(i) ~src_shape)) in
  let cls =
    Array.init n (fun i ->
        let c = cm.class_of instrs.(i).Instr.op in
        if c < 0 || c >= cm.classes then invalid_arg "Opt.list_schedule: class out of range";
        c)
  in
  let w i = lat.(i) + match stalls with Some s -> s.(i) | None -> 0 in
  let prio = Array.init n w in
  for i = n - 1 downto 0 do
    Array.iter
      (fun s -> if prio.(s) < prio.(i) + w s then prio.(s) <- prio.(i) + w s)
      instrs.(i).Instr.srcs
  done;
  let indeg = Array.make n 0 and consumers = Array.make n [] in
  for i = 0 to n - 1 do
    Array.iter
      (fun s ->
        indeg.(i) <- indeg.(i) + 1;
        consumers.(s) <- i :: consumers.(s))
      instrs.(i).Instr.srcs
  done;
  let port_free = Array.init cm.classes (fun c -> Array.make (max 1 cm.ports.(c)) 0) in
  let earliest_port c =
    let free = port_free.(c) in
    let k = ref 0 in
    for j = 1 to Array.length free - 1 do
      if free.(j) < free.(!k) then k := j
    done;
    !k
  in
  let dep_ready = Array.make n 0 in
  let ready = ref [] in
  for i = n - 1 downto 0 do
    if indeg.(i) = 0 then ready := i :: !ready
  done;
  let order = Array.make n 0 in
  let makespan = ref 0 in
  for pos = 0 to n - 1 do
    let best = ref (-1) and best_start = ref max_int in
    List.iter
      (fun i ->
        let st = max dep_ready.(i) port_free.(cls.(i)).(earliest_port cls.(i)) in
        if
          st < !best_start
          || st = !best_start
             && (!best < 0 || prio.(i) > prio.(!best) || (prio.(i) = prio.(!best) && i < !best))
        then begin
          best := i;
          best_start := st
        end)
      !ready;
    let i = !best in
    if i < 0 then failwith "Opt.list_schedule: no ready instruction (cycle?)";
    ready := List.filter (fun j -> j <> i) !ready;
    let k = earliest_port cls.(i) in
    let start = max dep_ready.(i) port_free.(cls.(i)).(k) in
    let fin = start + lat.(i) in
    port_free.(cls.(i)).(k) <- fin;
    if fin > !makespan then makespan := fin;
    order.(pos) <- i;
    List.iter
      (fun c ->
        if fin > dep_ready.(c) then dep_ready.(c) <- fin;
        indeg.(c) <- indeg.(c) - 1;
        if indeg.(c) = 0 then ready := c :: !ready)
      consumers.(i)
  done;
  (order, !makespan)

let estimate_cycles ?(cost_model = static_cost_model) p = snd (list_schedule ~cost_model p)

(* ------------------------------------------------------------------ *)
(* Operand-aware reorder                                               *)

let static_latency (instrs : Instr.t array) i =
  let src_shape s = (instrs.(s).Instr.rows, instrs.(s).Instr.cols) in
  static_latency_of instrs.(i) ~src_shape

(* Emit [p]'s instructions in [order]; shared by both reorder modes. *)
let emit_order (p : Program.t) order =
  let instrs = p.Program.instrs in
  let map = Array.make (Array.length instrs) (-1) in
  let b = Program.Builder.create () in
  Array.iter
    (fun i ->
      let ins = instrs.(i) in
      let srcs = Array.map (fun s -> map.(s)) ins.Instr.srcs in
      map.(i) <-
        Program.Builder.emit b ~op:ins.Instr.op ~srcs ~rows:ins.Instr.rows ~cols:ins.Instr.cols
          ~phase:ins.Instr.phase ~algo:ins.Instr.algo ~tag:ins.Instr.tag)
    order;
  let outputs = List.map (fun (nm, r) -> (nm, map.(r))) p.Program.outputs in
  let moved = ref 0 in
  Array.iteri (fun i m -> if i <> m then incr moved) map;
  if !moved > 0 then Obs.count "isa.opt.reorder_moved" ~n:!moved;
  (Program.Builder.finish b ~outputs, map)

let reorder_static ?stalls (p : Program.t) =
  let instrs = p.Program.instrs in
  let n = Array.length instrs in
  (match stalls with
  | Some s when Array.length s <> n -> invalid_arg "Opt.reorder: stalls length mismatch"
  | _ -> ());
  let w i = static_latency instrs i + match stalls with Some s -> s.(i) | None -> 0 in
  (* Priority: longest latency-weighted path from the instruction to
     any sink.  Descending sweep finalizes each consumer before its
     producers are relaxed (sources always have smaller ids). *)
  let prio = Array.init n w in
  for i = n - 1 downto 0 do
    Array.iter
      (fun s -> if prio.(s) < prio.(i) + w s then prio.(s) <- prio.(i) + w s)
      instrs.(i).Instr.srcs
  done;
  (* Greedy list order within each contiguous algo run.  Runs are not
     merged or interleaved: cross-run dependencies always point
     backwards, and the per-algorithm partition order used by
     [Ooo_fine] scheduling is preserved. *)
  let order = Array.make n 0 in
  let pos = ref 0 in
  let seg = ref 0 in
  while !seg < n do
    let lo = !seg in
    let a = instrs.(lo).Instr.algo in
    let hi = ref lo in
    while !hi < n && instrs.(!hi).Instr.algo = a do
      incr hi
    done;
    let hi = !hi in
    let indeg = Array.make n 0 in
    let consumers = Array.make n [] in
    for i = lo to hi - 1 do
      Array.iter
        (fun s ->
          if s >= lo then begin
            indeg.(i) <- indeg.(i) + 1;
            consumers.(s) <- i :: consumers.(s)
          end)
        instrs.(i).Instr.srcs
    done;
    let heap =
      Orianna_util.Heap.create ~cmp:(fun (pa, ia) (pb, ib) ->
          if pa <> pb then compare (pb : int) pa else compare (ia : int) ib)
    in
    for i = lo to hi - 1 do
      if indeg.(i) = 0 then Orianna_util.Heap.push heap (prio.(i), i)
    done;
    while not (Orianna_util.Heap.is_empty heap) do
      match Orianna_util.Heap.pop heap with
      | None -> ()
      | Some (_, i) ->
          order.(!pos) <- i;
          incr pos;
          List.iter
            (fun c ->
              indeg.(c) <- indeg.(c) - 1;
              if indeg.(c) = 0 then Orianna_util.Heap.push heap (prio.(c), c))
            consumers.(i)
    done;
    seg := hi
  done;
  if !pos <> n then failwith "Opt.reorder: scheduling did not cover the program";
  emit_order p order

let reorder ?stalls ?cost_model (p : Program.t) =
  match cost_model with
  | Some cm ->
      (* Resource-aware global schedule: port contention modeled, algo
         runs freely interleaved. *)
      let order, _ = list_schedule ~cost_model:cm ?stalls p in
      emit_order p order
  | None -> reorder_static ?stalls p

(* ------------------------------------------------------------------ *)
(* Superword batching                                                  *)

(* Merge small independent same-shape ops of the same [algo]/[phase]
   into one wide [Kernel] invocation whose result vertically stacks
   the member results; each member's register becomes an [Extract] of
   its slice.  Amortizes the per-instruction issue overhead and fills
   the systolic array the way the GPU baseline batches GEMMs.
   [`Mul] batches only matmul-class ops (Gemm/Gemv); [`All] also
   routes elementwise Vadd/Vsub/Scale/Neg batches through the matmul
   unit (worth it only when the vector queue, not the matmul port, is
   the constraint — callers gate it on measured cycles).

   Safety: two ops may share a batch only if they sit at the same
   dependence depth (longest path from a source).  Equal-depth nodes
   are automatically independent — any path strictly increases depth —
   and contraction cannot create a cycle: every contracted edge goes
   from a batch at depth d to a node at depth > d, so batch-to-batch
   edges strictly increase depth and the contracted graph stays
   acyclic.  (Checking only pairwise member independence is NOT
   enough: two batches can form a cycle through unrelated members.)
   The rebuilt stream is a topological order of the contracted
   graph. *)

let eligible_kind kinds (op : Instr.opcode) =
  match op with
  | Instr.Gemm | Instr.Gemv -> true
  | Instr.Vadd | Instr.Vsub | Instr.Scale _ | Instr.Neg -> kinds = `All
  | _ -> false

let superword_pass ?(min_batch = 3) ?(max_batch = 16) ?(kinds = `Mul) (p : Program.t) =
  let instrs = p.Program.instrs in
  let n = Array.length instrs in
  let src_shape s = (instrs.(s).Instr.rows, instrs.(s).Instr.cols) in
  let candidates = ref 0 in
  Array.iter (fun (i : Instr.t) -> if eligible_kind kinds i.Instr.op then incr candidates) instrs;
  if !candidates < min_batch then (p, identity_map n, 0)
  else begin
    (* Transitive-ancestor bitsets (32 bits per word, flat array). *)
    let w = (n + 31) / 32 in
    let anc = Array.make (n * w) 0 in
    let test_bit i j = anc.((i * w) + (j lsr 5)) land (1 lsl (j land 31)) <> 0 in
    for i = 0 to n - 1 do
      Array.iter
        (fun s ->
          let bi = i * w and bs = s * w in
          for k = 0 to w - 1 do
            anc.(bi + k) <- anc.(bi + k) lor anc.(bs + k)
          done;
          anc.(bi + (s lsr 5)) <- anc.(bi + (s lsr 5)) lor (1 lsl (s land 31)))
        instrs.(i).Instr.srcs
    done;
    (* Greedy grouping in id order; flush a group on dependence
       conflict or when it reaches [max_batch]. *)
    let key (ins : Instr.t) =
      Printf.sprintf "%d|%d|%d|%d|%d|%d" (opcode_tag ins.Instr.op) ins.Instr.rows ins.Instr.cols
        (Array.length ins.Instr.srcs) ins.Instr.algo
        (match ins.Instr.phase with Instr.Construct -> 0 | Instr.Decompose -> 1 | Instr.Backsub -> 2)
    in
    let open_groups : (string, int list ref) Hashtbl.t = Hashtbl.create 32 in
    let collected = ref [] in
    let commit members =
      (* members arrive newest-first *)
      if List.length members >= min_batch then collected := List.rev members :: !collected
    in
    Array.iteri
      (fun i (ins : Instr.t) ->
        if eligible_kind kinds ins.Instr.op then begin
          let k = key ins in
          match Hashtbl.find_opt open_groups k with
          | None -> Hashtbl.add open_groups k (ref [ i ])
          | Some cur ->
              if List.exists (fun m -> test_bit i m) !cur then begin
                commit !cur;
                cur := [ i ]
              end
              else begin
                cur := i :: !cur;
                if List.length !cur >= max_batch then begin
                  commit !cur;
                  cur := []
                end
              end
        end)
      instrs;
    Hashtbl.iter (fun _ cur -> commit !cur) open_groups;
    (* Pairwise member independence does not rule out a cycle crossing
       TWO batches (A -> B through one pair of members, B -> A through
       an unrelated pair), which would deadlock the contracted
       topological sort.  Validate the contraction with a counting-only
       Kahn pass and dissolve the lowest-id batch still blocked until
       the contracted graph is acyclic; dissolving every batch recovers
       the original (acyclic) program, so this terminates. *)
    let batch_list = ref (List.rev !collected) in
    let acyclic () =
      let batches = Array.of_list !batch_list in
      let nbatches = Array.length batches in
      let batch_of = Array.make n (-1) in
      Array.iteri (fun bi ms -> List.iter (fun m -> batch_of.(m) <- bi) ms) batches;
      let super i = if batch_of.(i) >= 0 then n + batch_of.(i) else i in
      let nsup = n + nbatches in
      let indeg = Array.make nsup 0 and scons = Array.make nsup [] in
      for i = 0 to n - 1 do
        let si = super i in
        Array.iter
          (fun s ->
            let ss = super s in
            if ss <> si then begin
              indeg.(si) <- indeg.(si) + 1;
              scons.(ss) <- si :: scons.(ss)
            end)
          instrs.(i).Instr.srcs
      done;
      let members = Array.fold_left (fun acc ms -> acc + List.length ms) 0 batches in
      let queue = Queue.create () in
      for s = 0 to nsup - 1 do
        if indeg.(s) = 0 && (if s < n then batch_of.(s) < 0 else true) then Queue.add s queue
      done;
      let popped = ref 0 in
      while not (Queue.is_empty queue) do
        let s = Queue.pop queue in
        incr popped;
        List.iter
          (fun c ->
            indeg.(c) <- indeg.(c) - 1;
            if indeg.(c) = 0 then Queue.add c queue)
          scons.(s)
      done;
      if !popped = nsup - members then true
      else begin
        let stuck = ref (-1) and stuck_rep = ref max_int in
        Array.iteri
          (fun bi ms ->
            if indeg.(n + bi) > 0 then begin
              let r = List.hd ms in
              if r < !stuck_rep then begin
                stuck := bi;
                stuck_rep := r
              end
            end)
          batches;
        batch_list := List.filteri (fun bi _ -> bi <> !stuck) !batch_list;
        false
      end
    in
    while not (acyclic ()) do
      ()
    done;
    let batches = Array.of_list !batch_list in
    let nbatches = Array.length batches in
    if nbatches = 0 then (p, identity_map n, 0)
    else begin
      let batch_of = Array.make n (-1) in
      Array.iteri (fun bi members -> List.iter (fun m -> batch_of.(m) <- bi) members) batches;
      let super i = if batch_of.(i) >= 0 then n + batch_of.(i) else i in
      let rep = Array.init (n + nbatches) (fun s -> if s < n then s else List.hd batches.(s - n)) in
      (* Contracted-graph Kahn, ready nodes popped in old-id order. *)
      let nsup = n + nbatches in
      let indeg = Array.make nsup 0 and sconsumers = Array.make nsup [] in
      for i = 0 to n - 1 do
        let si = super i in
        Array.iter
          (fun s ->
            let ss = super s in
            if ss <> si then begin
              indeg.(si) <- indeg.(si) + 1;
              sconsumers.(ss) <- si :: sconsumers.(ss)
            end)
          instrs.(i).Instr.srcs
      done;
      let heap = Orianna_util.Heap.create ~cmp:(fun a b -> compare (rep.(a) : int) rep.(b)) in
      (* Batched members keep an indegree of 0 at their own index (their
         edges live on the batch supernode) — only real supernodes
         (unbatched instructions and batch ids) enter the ready set. *)
      for s = 0 to nsup - 1 do
        if indeg.(s) = 0 && (if s < n then batch_of.(s) < 0 else true) then
          Orianna_util.Heap.push heap s
      done;
      let map = Array.make n (-1) in
      let b = Program.Builder.create () in
      let merged = ref 0 in
      let kcount = ref 0 in
      let emit_single i =
        let ins = instrs.(i) in
        let srcs = Array.map (fun s -> map.(s)) ins.Instr.srcs in
        map.(i) <-
          Program.Builder.emit b ~op:ins.Instr.op ~srcs ~rows:ins.Instr.rows ~cols:ins.Instr.cols
            ~phase:ins.Instr.phase ~algo:ins.Instr.algo ~tag:ins.Instr.tag
      in
      let emit_batch bi =
        let members = Array.of_list batches.(bi) in
        let count = Array.length members in
        let first = instrs.(members.(0)) in
        let mrows = first.Instr.rows and mcols = first.Instr.cols in
        let member_instrs = Array.map (fun m -> instrs.(m)) members in
        let arity = Array.map (fun (m : Instr.t) -> Array.length m.Instr.srcs) member_instrs in
        let flops =
          Array.fold_left (fun acc m -> acc + Instr.flops instrs.(m) ~src_shape) 0 members
        in
        let srcs =
          Array.concat
            (Array.to_list
               (Array.map
                  (fun m -> Array.map (fun s -> map.(s)) instrs.(m).Instr.srcs)
                  members))
        in
        let idx = !kcount in
        incr kcount;
        let kname =
          Printf.sprintf "sw%d.%s.%dx%d.b%d" idx (Instr.opcode_name first.Instr.op) mrows mcols
            count
        in
        let apply mats =
          let out = Mat.create (count * mrows) mcols in
          let off = ref 0 in
          Array.iteri
            (fun j (m : Instr.t) ->
              let args = Array.sub mats !off arity.(j) in
              off := !off + arity.(j);
              Mat.set_block out (j * mrows) 0 (Program.eval_op m args))
            member_instrs;
          out
        in
        let kid =
          Program.Builder.emit b
            ~op:(Instr.Kernel { Instr.kname; flops; apply })
            ~srcs ~rows:(count * mrows) ~cols:mcols ~phase:first.Instr.phase ~algo:first.Instr.algo
            ~tag:"superword"
        in
        Array.iteri
          (fun j m ->
            let ins = instrs.(m) in
            map.(m) <-
              Program.Builder.emit b
                ~op:(Instr.Extract { row = j * mrows; col = 0; rows = mrows; cols = mcols })
                ~srcs:[| kid |] ~rows:mrows ~cols:mcols ~phase:ins.Instr.phase ~algo:ins.Instr.algo
                ~tag:ins.Instr.tag)
          members;
        merged := !merged + count
      in
      let emitted = ref 0 in
      let rec drain () =
        match Orianna_util.Heap.pop heap with
        | None -> ()
        | Some s ->
            incr emitted;
            if s < n then emit_single s else emit_batch (s - n);
            List.iter
              (fun c ->
                indeg.(c) <- indeg.(c) - 1;
                if indeg.(c) = 0 then Orianna_util.Heap.push heap c)
              sconsumers.(s);
            drain ()
      in
      drain ();
      let total_members = Array.fold_left (fun acc ms -> acc + List.length ms) 0 batches in
      if !emitted <> nsup - total_members then
        failwith "Opt.superword: contracted graph not covered";
      let outputs = List.map (fun (nm, r) -> (nm, map.(r))) p.Program.outputs in
      if !merged > 0 then Obs.count "isa.opt.superword_merged" ~n:!merged;
      (Program.Builder.finish b ~outputs, map, !merged)
    end
  end

let superword ?min_batch ?max_batch ?kinds p =
  let p', map, _ = superword_pass ?min_batch ?max_batch ?kinds p in
  (p', map)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)

let optimize_traced ?(level = 1) ?cost_model ?probe (p : Program.t) =
  let before = Program.length p in
  let zero =
    {
      before;
      after = before;
      cse_merged = 0;
      fused = 0;
      dce_removed = 0;
      reorder_moved = 0;
      superword_merged = 0;
      cycle_deltas = [];
    }
  in
  if level <= 0 || before = 0 then (p, identity_map before, zero)
  else begin
    let cm = match cost_model with Some c -> c | None -> static_cost_model in
    (* Measured cycles when a probe is injected; the cost-model
       list-schedule estimate otherwise (used only at level >= 3,
       where the fixpoint needs a metric to accept against). *)
    let measurable = Option.is_some probe || level >= 3 in
    let measure =
      match probe with
      | Some f -> f
      | None -> fun q -> (estimate_cycles ~cost_model:cm q, Array.make (Program.length q) 0)
    in
    let prog = ref p in
    let map = ref (identity_map before) in
    let cse_merged = ref 0 and fused = ref 0 in
    let continue_ = ref true in
    let rounds = ref 0 in
    while !continue_ && !rounds < 5 do
      incr rounds;
      let q, m, df = fuse_pass !prog in
      prog := q;
      map := compose !map m;
      fused := !fused + df;
      let q, m, dc = cse_pass !prog in
      prog := q;
      map := compose !map m;
      cse_merged := !cse_merged + dc;
      continue_ := df + dc > 0
    done;
    let q, m, dce_removed = dce_pass !prog in
    prog := q;
    map := compose !map m;
    let reorder_moved = ref 0 in
    let superword_merged = ref 0 in
    let deltas = ref [] in
    let accept_reorder (q, m) =
      Array.iteri (fun i mi -> if i <> mi then incr reorder_moved) m;
      prog := q;
      map := compose !map m
    in
    (* Accept-if-better guard: with a measurement available, keep a
       candidate stream only if it does not cost cycles; without one
       (levels 1-2, no probe), reorder unconditionally as before. *)
    (if not measurable then accept_reorder (reorder !prog)
     else begin
       let c0, _ = measure !prog in
       let ((q, _) as cand) = reorder !prog in
       let c1, _ = measure q in
       if c1 <= c0 then begin
         accept_reorder cand;
         deltas := ("reorder", c0 - c1) :: !deltas
       end
       else deltas := ("reorder (rejected)", c0 - c1) :: !deltas
     end);
    (* O2: one measured-stall feedback round. *)
    if level >= 2 && measurable && Option.is_some probe then begin
      let c0, stalls = measure !prog in
      let ((q, _) as cand) = reorder ~stalls !prog in
      let c1, _ = measure q in
      if c1 < c0 then begin
        accept_reorder cand;
        deltas := ("reorder+stalls", c0 - c1) :: !deltas
      end
    end;
    (* O3: profile-guided fixpoint — resource-aware global reorder and
       superword batching candidates, each accepted only if measured
       (or modeled) cycles strictly improve, iterated until no
       candidate helps. *)
    if level >= 3 then begin
      let improved = ref true in
      let fixrounds = ref 0 in
      while !improved && !fixrounds < 6 do
        incr fixrounds;
        improved := false;
        let label name = Printf.sprintf "%s#%d" name !fixrounds in
        (let c0, stalls = measure !prog in
         let ((q, _) as cand) = reorder ~stalls ~cost_model:cm !prog in
         let c1, _ = measure q in
         if c1 < c0 then begin
           accept_reorder cand;
           deltas := (label "reorder+ports", c0 - c1) :: !deltas;
           improved := true
         end);
        List.iter
          (fun (kinds, name) ->
            let c0, _ = measure !prog in
            let q, m, merged = superword_pass ~kinds !prog in
            if merged > 0 then begin
              let q, m2, _ = dce_pass q in
              let m = compose m m2 in
              let c1, _ = measure q in
              if c1 < c0 then begin
                prog := q;
                map := compose !map m;
                superword_merged := !superword_merged + merged;
                deltas := (label name, c0 - c1) :: !deltas;
                improved := true
              end
            end)
          [ (`Mul, "superword"); (`All, "superword+vec") ]
      done
    end;
    (* Monotonicity net: an optimized stream must never measure worse
       than its input.  (Reachable in principle when instruction
       deletions degrade the schedule; fixes the MobileRobot O1 cycle
       regression.) *)
    if measurable then begin
      let cf, _ = measure !prog in
      let corig, _ = measure p in
      if cf > corig then begin
        prog := p;
        map := identity_map before;
        cse_merged := 0;
        fused := 0;
        reorder_moved := 0;
        superword_merged := 0;
        deltas := [ ("reverted (optimized stream measured slower)", 0) ]
      end
    end;
    Program.validate !prog;
    let after = Program.length !prog in
    if before > after then Obs.count "isa.opt.instructions_saved" ~n:(before - after);
    let cycle_deltas = List.rev !deltas in
    let saved = List.fold_left (fun acc (_, d) -> if d > 0 then acc + d else acc) 0 cycle_deltas in
    if saved > 0 then Obs.count "isa.opt.cycles_saved" ~n:saved;
    ( !prog,
      !map,
      {
        before;
        after;
        cse_merged = !cse_merged;
        fused = !fused;
        dce_removed = (if !prog == p then 0 else dce_removed);
        reorder_moved = !reorder_moved;
        superword_merged = !superword_merged;
        cycle_deltas;
      } )
  end

let optimize ?level ?cost_model ?probe p =
  let p', _, _ = optimize_traced ?level ?cost_model ?probe p in
  p'

let pp_report ppf r =
  Format.fprintf ppf "%d -> %d instructions (cse %d, fused %d, dce %d, reordered %d, superword %d)"
    r.before r.after r.cse_merged r.fused r.dce_removed r.reorder_moved r.superword_merged;
  match r.cycle_deltas with
  | [] -> ()
  | ds ->
      let saved = List.fold_left (fun acc (_, d) -> acc + d) 0 ds in
      Format.fprintf ppf ", %+d cycles" (-saved)
