(** Binary encoding of instruction streams.

    The generated accelerator consumes its program from DRAM as a flat
    binary image; this module defines that wire format.  The layout is
    little-endian:

    - header: magic "ORIA", version u16, instruction count u32,
      output count u32;
    - per instruction: opcode u8, phase u8, algo u16, rows u16,
      cols u16, source count u16, sources u32 each, then an
      opcode-specific payload (matrix data for [Load], the scale for
      [Scale], offsets for [Extract]/[Assemble], the kernel name and
      declared flops for [Kernel]);
    - outputs: length-prefixed names with register ids.

    [Kernel] instructions wrap native-factor closures; their code
    cannot be serialized, so decoding takes a [resolve] registry
    mapping kernel names back to implementations (the same way a real
    deployment binds fixed-function blocks by name).  Programs without
    kernels round-trip with no registry. *)

exception Decode_error of string

val encode : Program.t -> string

val decode : ?resolve:(string -> Instr.kernel) -> string -> Program.t
(** Raises {!Decode_error} on malformed input, and on a [Kernel]
    instruction whose name the registry does not resolve (default
    registry resolves nothing). *)

val encode_checksummed : Program.t -> string
(** {!encode}, followed by an 8-byte integrity trailer: magic "CRC0"
    and the CRC-32 of the payload (u32 little-endian).  The instruction
    fetch path verifies the trailer before dispatch, so any single-bit
    (or up-to-32-bit burst) corruption of the image in DRAM or on the
    bus is detected rather than executed. *)

val verify : string -> (string, string) result
(** Check a checksummed image's trailer.  [Ok payload] strips the
    trailer; [Error msg] describes the mismatch. *)

val decode_checksummed : ?resolve:(string -> Instr.kernel) -> string -> Program.t
(** {!verify} then {!decode}; raises {!Decode_error} if the checksum
    does not match. *)

val kernel_names : Program.t -> string list
(** Distinct kernel names, first-occurrence order — the registry a
    deployment must provide. *)
