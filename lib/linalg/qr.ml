(* Householder triangularization, working on a mutable copy.

   For column k we build the reflector v from the k-th column tail and
   apply (I - 2 v vT / vTv) to the trailing submatrix.  The classic
   trick of choosing the sign of alpha to avoid cancellation is used. *)

let triangularize a =
  let m, n = Mat.dims a in
  let r = Mat.copy a in
  (* Hot kernel: work on the raw row-major array, bounds checks
     hoisted out of the inner loops. *)
  let data = r.Mat.data in
  let steps = min m n in
  let v = Array.make m 0.0 in
  let macs = Macs.handle () in
  for k = 0 to steps - 1 do
    (* Norm of the column tail r[k..m-1, k]. *)
    let norm_sq = ref 0.0 in
    for i = k to m - 1 do
      let x = Array.unsafe_get data ((i * n) + k) in
      norm_sq := !norm_sq +. (x *. x)
    done;
    let norm = sqrt !norm_sq in
    if norm > 1e-300 then begin
      let rkk = Array.unsafe_get data ((k * n) + k) in
      let alpha = if rkk >= 0.0 then -.norm else norm in
      (* v = x - alpha * e1 on the tail. *)
      let vnorm_sq = ref 0.0 in
      for i = k to m - 1 do
        let x = Array.unsafe_get data ((i * n) + k) in
        let vi = if i = k then x -. alpha else x in
        Array.unsafe_set v i vi;
        vnorm_sq := !vnorm_sq +. (vi *. vi)
      done;
      macs := !macs + (2 * (m - k));
      if !vnorm_sq > 1e-300 then begin
        let beta = 2.0 /. !vnorm_sq in
        (* Apply the reflector to columns k..n-1. *)
        for j = k to n - 1 do
          let dot = ref 0.0 in
          for i = k to m - 1 do
            dot := !dot +. (Array.unsafe_get v i *. Array.unsafe_get data ((i * n) + j))
          done;
          let s = beta *. !dot in
          for i = k to m - 1 do
            let idx = (i * n) + j in
            Array.unsafe_set data idx (Array.unsafe_get data idx -. (s *. Array.unsafe_get v i))
          done
        done;
        macs := !macs + (2 * (m - k) * (n - k));
        (* Force exact zeros below the diagonal of column k. *)
        Array.unsafe_set data ((k * n) + k) alpha;
        for i = k + 1 to m - 1 do
          Array.unsafe_set data ((i * n) + k) 0.0
        done
      end
    end
  done;
  r

(* One Givens rotation zeroing r[i][k] against pivot row k. *)
let apply_givens r k i =
  let m_cols = snd (Mat.dims r) in
  let a = Mat.get r k k and b = Mat.get r i k in
  if Float.abs b > 1e-300 then begin
    let h = Float.hypot a b in
    let c = a /. h and s = b /. h in
    for j = k to m_cols - 1 do
      let x = Mat.get r k j and y = Mat.get r i j in
      Mat.set r k j ((c *. x) +. (s *. y));
      Mat.set r i j ((c *. y) -. (s *. x))
    done;
    Macs.add (4 * (m_cols - k));
    Mat.set r i k 0.0
  end

let givens_triangularize a =
  let m, n = Mat.dims a in
  let r = Mat.copy a in
  for k = 0 to min m n - 1 do
    for i = k + 1 to m - 1 do
      apply_givens r k i
    done
  done;
  r

let qr a =
  let m, _n = Mat.dims a in
  (* Triangularize the augmented [a | I]: the right block accumulates
     Qᵀ, so Q is its transpose. *)
  let aug = Mat.hcat [ a; Mat.identity m ] in
  let t = triangularize aug in
  let n = snd (Mat.dims a) in
  let r = Mat.block t 0 0 m n in
  let qt = Mat.block t 0 n m m in
  (Mat.transpose qt, r)

let solve_ls a b =
  let m, n = Mat.dims a in
  if m < n then invalid_arg "Qr.solve_ls: underdetermined system";
  if Vec.dim b <> m then invalid_arg "Qr.solve_ls: rhs dimension mismatch";
  let aug = Mat.hcat [ a; Mat.of_vec b ] in
  let t = triangularize aug in
  let r = Mat.block t 0 0 n n in
  let d = Mat.to_vec (Mat.block t 0 n n 1) in
  Tri.solve_upper r d

let flops_estimate ~rows ~cols =
  let m = float_of_int rows and n = float_of_int cols in
  int_of_float (n *. n *. (m -. (n /. 3.0)))
