(* Domain-local so concurrent solver runs on the Orianna_par pool
   neither race the counter nor pollute each other's [measure]
   windows: a task's charges land on the lane that ran it, and every
   [measure] call is enclosed within one task. *)
let counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let reset () = Domain.DLS.get counter := 0

let handle () = Domain.DLS.get counter

let add n =
  let c = Domain.DLS.get counter in
  c := !c + n

let count () = !(Domain.DLS.get counter)

let measure f =
  let c = Domain.DLS.get counter in
  let before = !c in
  let result = f () in
  let spent = !c - before in
  (result, spent)
