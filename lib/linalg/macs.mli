(** Multiply-accumulate (MAC) counter, one per domain.

    The paper reports a 52.7 % MAC saving of the unified pose
    representation over SE(3) (Sec. 4.3).  Every routine in
    {!Orianna_linalg} and every Lie-group map charges its MAC cost
    here, so experiments can compare operation counts of two
    mathematically equivalent implementations.

    The counter is domain-local: work parallelized on the
    {!Orianna_par} pool charges the lane that ran it, so [measure]
    windows never see another task's MACs. *)

val reset : unit -> unit
(** Zero the counter. *)

val add : int -> unit
(** Charge [n] MACs. *)

val count : unit -> int
(** Current counter value. *)

val measure : (unit -> 'a) -> 'a * int
(** [measure f] runs [f] and returns its result together with the MACs
    charged during the call.  The surrounding count is preserved. *)
