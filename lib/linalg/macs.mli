(** Multiply-accumulate (MAC) counter, one per domain.

    The paper reports a 52.7 % MAC saving of the unified pose
    representation over SE(3) (Sec. 4.3).  Every routine in
    {!Orianna_linalg} and every Lie-group map charges its MAC cost
    here, so experiments can compare operation counts of two
    mathematically equivalent implementations.

    The counter is domain-local: work parallelized on the
    {!Orianna_par} pool charges the lane that ran it, so [measure]
    windows never see another task's MACs. *)

val reset : unit -> unit
(** Zero the counter. *)

val add : int -> unit
(** Charge [n] MACs. *)

val handle : unit -> int ref
(** The calling domain's counter cell.  Kernels with per-column or
    per-element charges hoist this out of their loops and bump the ref
    directly ([h := !h + n]), paying the domain-local lookup once per
    kernel instead of once per charge.  The handle must not outlive
    the task it was taken in: it is only valid on the domain (pool
    lane) that called [handle]. *)

val count : unit -> int
(** Current counter value. *)

val measure : (unit -> 'a) -> 'a * int
(** [measure f] runs [f] and returns its result together with the MACs
    charged during the call.  The surrounding count is preserved. *)
