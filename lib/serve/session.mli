(** Streaming sessions: per-tenant incremental smoothing behind the
    serving DES.

    A {e mission} replays a timestamped measurement stream
    ({!Orianna_apps.Stream}) as a sequence of [Tick] requests, one per
    stream tick, admitted through the ordinary queue/batch/dispatch
    machinery alongside full solves.  Each session (keyed by mission
    id) owns an {!Orianna_fg.Smoother}: executing a tick folds the
    corresponding measurement delta into the session's smoother and
    charges a modeled service time proportional to the {e affected}
    re-elimination work — the incremental win over a batch re-solve is
    what the simulated latencies measure.

    All sessions of the same stream share one compiled program: the
    structural cache key of a fixed template prefix of the stream, so
    compiled-program reuse across ticks (and across tenants on the
    same dataset) goes through the ordinary content-addressed cache.

    Sessions are bounded two ways: an LRU capacity ([max_sessions],
    least-recently-used session evicted when a new one needs a slot)
    and an idle timeout ([idle_timeout_s] of virtual-clock inactivity,
    checked lazily).  An evicted or expired session that receives
    another tick restarts from the beginning of its stream and
    fast-forwards — restarts, evictions and expiries are all
    reported.

    Everything here is driven by the single-threaded virtual-clock
    DES, so session behavior is deterministic and independent of the
    worker-domain count. *)

module Stream = Orianna_apps.Stream
module Json = Orianna_obs.Json

type params = {
  max_sessions : int;  (** resident-session capacity (LRU beyond it) *)
  idle_timeout_s : float;
      (** evict after this much virtual-clock inactivity; [<= 0]
          disables the timeout *)
  window : int option;  (** smoother sliding window (see {!Orianna_fg.Smoother}) *)
  relin_threshold : float;
  max_relin_passes : int;
  template_ticks : int;
      (** stream-prefix length whose graph is compiled as the shared
          session program *)
  tick_overhead_s : float;  (** fixed modeled cost per tick *)
}

val default_params : params
(** 8 resident sessions, 50 ms idle timeout, no window,
    [relin_threshold = 0.05], 3 relin passes, 12-tick template,
    20 us tick overhead. *)

type mission = {
  mid : int;  (** session id; must be unique across missions *)
  stream : Stream.t;
  start_s : float;  (** virtual-clock arrival of tick 0 *)
  period_s : float;  (** tick arrival spacing *)
  priority : Request.priority;
  deadline_slack_s : float;  (** per-tick deadline beyond arrival *)
}

type t

val create : ?params:params -> opt_level:int -> missions:mission list -> unit -> t
(** Precomputes each mission's template graph and structural cache
    key.  Raises [Invalid_argument] on duplicate mission ids, an empty
    stream, or a stream longer than 10000 ticks. *)

val mission_requests : t -> Request.t list
(** One [Tick] request per stream tick of every mission, in
    (mission, step) order; ids live in a dedicated range above
    1_000_000 so they cannot collide with generated solve traces. *)

val key_of : t -> Request.t -> int32 option
(** The session's template cache key; [None] for non-tick requests or
    unknown session ids (the admission path rejects those as
    unservable). *)

val template_graphs : t -> session:int -> (string * Orianna_fg.Graph.t) list
(** The named template graph compiled for this session — the compile
    thunk behind the content-addressed cache.  Raises [Not_found] on
    unknown ids. *)

val execute : t -> now_s:float -> base_s:float -> Request.t -> float
(** Modeled service seconds for one tick at virtual time [now_s],
    where [base_s] is the accelerator's per-request service time for
    the compiled template program (slowdowns included).  Applies lazy
    idle-timeout expiry and LRU eviction, creates or restarts the
    session's smoother as needed, fast-forwards the stream to the
    tick's step and folds it in with one smoother update.  The charge
    is [tick_overhead_s + base_s * affected / template_variables]; a
    tick at an already-applied step is a cheap replay costing only the
    overhead.  Raises [Invalid_argument] on a non-tick request. *)

type session_stats = {
  sid : int;
  sname : string;  (** stream name *)
  ticks_applied : int;  (** stream ticks folded in (restarts refold) *)
  replays : int;  (** requests at an already-applied step *)
  restarts : int;  (** smoother rebuilds after eviction/expiry *)
  evictions : int;  (** LRU capacity evictions of this session *)
  expiries : int;  (** idle-timeout expiries of this session *)
  dropped_factors : int;  (** measurements dropped against retired variables *)
  live_variables : int;  (** smoother size at last touch *)
  marginalized : int;  (** variables folded out at last touch *)
  median_affected : float;  (** median affected variables per update *)
  median_affected_fraction : float;
      (** median affected / live fraction per update *)
}

type report = {
  per_session : session_stats list;  (** ascending session id *)
  active : int;  (** sessions still resident at the end *)
  ticks_total : int;
  replays_total : int;
  restarts_total : int;
  evictions_total : int;
  expiries_total : int;
}

val report : t -> report

val report_json : report -> Json.t

val table : report -> string
