open Orianna_util

(* ------------------------------------------------------------------ *)
(* Injected fault kinds                                                *)

type kind = Crash | Hang | Transient | Slowdown

let all_kinds = [ Crash; Hang; Transient; Slowdown ]

let kind_name = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Transient -> "transient"
  | Slowdown -> "slowdown"

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type config = {
  crash_rate_hz : float;
  hang_rate_hz : float;
  transient_rate_hz : float;
  slowdown_rate_hz : float;
  slowdown_factor : float;
  slowdown_duration_s : float;
  restart_mean_s : float;
  restart : bool;
  cold_penalty_s : float;
  scripted : (float * int * kind) list;
  seed : int;
}

let default =
  {
    crash_rate_hz = 0.0;
    hang_rate_hz = 0.0;
    transient_rate_hz = 0.0;
    slowdown_rate_hz = 0.0;
    slowdown_factor = 4.0;
    slowdown_duration_s = 2e-3;
    restart_mean_s = 2e-3;
    restart = true;
    cold_penalty_s = 0.5e-3;
    scripted = [];
    seed = 0;
  }

(* [x] targets a steady-state per-instance unavailability of roughly
   x/(1+x) (the M/M/1-repair fixed point of rate * mttr = x): a 10%
   intensity downs each instance for ~10% of virtual time.  The other
   kinds ride along at fixed ratios of the crash rate, so one knob
   sweeps the whole mix. *)
let of_intensity ?(seed = 0) ?(mttr_s = 2e-3) x =
  if x <= 0.0 then { default with seed; restart_mean_s = mttr_s }
  else begin
    let mttr = if mttr_s > 0.0 then mttr_s else default.restart_mean_s in
    let crash = x /. ((1.0 +. x) *. mttr) in
    {
      default with
      seed;
      restart_mean_s = mttr;
      crash_rate_hz = crash;
      hang_rate_hz = crash /. 2.0;
      transient_rate_hz = 2.0 *. crash;
      slowdown_rate_hz = crash;
    }
  end

let enabled c =
  c.crash_rate_hz > 0.0 || c.hang_rate_hz > 0.0 || c.transient_rate_hz > 0.0
  || c.slowdown_rate_hz > 0.0 || c.scripted <> []

(* ------------------------------------------------------------------ *)
(* The seeded event schedule                                           *)

type event = { at_s : float; instance : int; kind : kind }

type stream = { rng : Rng.t; rate_hz : float; mutable next_s : float }

type t = {
  config : config;
  streams : stream array array;  (* [instance].[kind] in [all_kinds] order *)
  restart_rngs : Rng.t array;
  mutable scripted : event list;  (* pending, sorted by time *)
}

let exponential rng ~rate = -.log (1.0 -. Rng.float rng) /. rate

(* The split table: one independent stream per (instance, kind) plus
   one per-instance restart-latency stream, split in a fixed order so
   a rate change in one dimension cannot perturb the draws of any
   other (the [Request.generate] idiom). *)
let make config ~instances =
  if instances <= 0 then invalid_arg "Chaos.make: need at least one instance";
  let root = Rng.of_int config.seed in
  let rate_of = function
    | Crash -> config.crash_rate_hz
    | Hang -> config.hang_rate_hz
    | Transient -> config.transient_rate_hz
    | Slowdown -> config.slowdown_rate_hz
  in
  let streams = Array.make instances [||] in
  for i = 0 to instances - 1 do
    streams.(i) <-
      Array.of_list
        (List.map
           (fun kind ->
             let rng = Rng.split root in
             let rate_hz = rate_of kind in
             let next_s = if rate_hz > 0.0 then exponential rng ~rate:rate_hz else infinity in
             { rng; rate_hz; next_s })
           all_kinds)
  done;
  let restart_rngs = Array.make instances root in
  for i = 0 to instances - 1 do
    restart_rngs.(i) <- Rng.split root
  done;
  let scripted =
    List.stable_sort
      (fun a b -> compare (a.at_s, a.instance) (b.at_s, b.instance))
      (List.filter_map
         (fun (at_s, instance, kind) ->
           if instance < 0 || instance >= instances then None else Some { at_s; instance; kind })
         config.scripted)
  in
  { config; streams; restart_rngs; scripted }

let kind_rank = function Crash -> 0 | Hang -> 1 | Transient -> 2 | Slowdown -> 3

let peek t =
  let best = ref None in
  let consider ev =
    match !best with
    | Some b
      when (b.at_s, b.instance, kind_rank b.kind) <= (ev.at_s, ev.instance, kind_rank ev.kind) ->
        ()
    | _ -> best := Some ev
  in
  (match t.scripted with ev :: _ -> consider ev | [] -> ());
  Array.iteri
    (fun i streams ->
      Array.iteri
        (fun k s ->
          if s.next_s < infinity then
            consider { at_s = s.next_s; instance = i; kind = List.nth all_kinds k })
        streams)
    t.streams;
  !best

let pop t =
  match peek t with
  | None -> None
  | Some ev ->
      (match t.scripted with
      | s :: rest when s.at_s = ev.at_s && s.instance = ev.instance && s.kind = ev.kind ->
          t.scripted <- rest
      | _ ->
          let s = t.streams.(ev.instance).(kind_rank ev.kind) in
          s.next_s <- s.next_s +. exponential s.rng ~rate:s.rate_hz);
      Some ev

let restart_latency_s t instance =
  let m = t.config.restart_mean_s in
  if m <= 0.0 then 0.0 else m *. exponential t.restart_rngs.(instance) ~rate:1.0

(* ------------------------------------------------------------------ *)
(* Per-instance health, circuit breaker and restart state              *)

type health = Up | Suspect | Down

let health_name = function Up -> "up" | Suspect -> "suspect" | Down -> "down"

type breaker = Closed | Open_until of float | Half_open

let breaker_name = function
  | Closed -> "closed"
  | Open_until _ -> "open"
  | Half_open -> "half-open"

type node = {
  nidx : int;
  mutable health : health;
  mutable hung_since : float option;
  mutable suspect_at : float;
  mutable detect_at : float;
  mutable restart_at : float;
  mutable dead_forever : bool;
  mutable breaker : breaker;
  mutable breaker_level : int;
  mutable consecutive_failures : int;
  mutable slow_until : float;
  mutable down_since : float;
  mutable downtime_s : float;
  mutable down_intervals : (float * float) list;  (* reverse chronological *)
  mutable crashes : int;
  mutable hangs : int;
  mutable transients : int;
  mutable slowdowns : int;
  mutable restarts : int;
  mutable breaker_opens : int;
  mutable cold_batches : int;
  warm : (int32, unit) Hashtbl.t;
}

let make_nodes instances =
  Array.init instances (fun nidx ->
      {
        nidx;
        health = Up;
        hung_since = None;
        suspect_at = infinity;
        detect_at = infinity;
        restart_at = infinity;
        dead_forever = false;
        breaker = Closed;
        breaker_level = 0;
        consecutive_failures = 0;
        slow_until = neg_infinity;
        down_since = nan;
        downtime_s = 0.0;
        down_intervals = [];
        crashes = 0;
        hangs = 0;
        transients = 0;
        slowdowns = 0;
        restarts = 0;
        breaker_opens = 0;
        cold_batches = 0;
        warm = Hashtbl.create 8;
      })

let routable node ~now_s =
  (match node.health with Up -> true | Suspect | Down -> false)
  && (not node.dead_forever)
  && match node.breaker with
     | Closed | Half_open -> true
     | Open_until until_s -> until_s <= now_s

(* A probe is armed lazily: the dispatcher calls this right before
   routing, so an elapsed open interval flips to half-open exactly when
   the first post-cooldown batch goes out. *)
let arm_probe node ~now_s =
  match node.breaker with
  | Open_until until_s when until_s <= now_s ->
      node.breaker <- Half_open;
      true
  | Closed | Half_open | Open_until _ -> false

let breaker_success node =
  node.consecutive_failures <- 0;
  match node.breaker with
  | Half_open ->
      node.breaker <- Closed;
      node.breaker_level <- 0;
      true
  | Closed | Open_until _ -> false

(* Consecutive failures trip a closed breaker; a failed half-open probe
   reopens with doubled cooldown. Returns [true] when the breaker
   (re)opened. *)
let breaker_failure node ~now_s ~threshold ~cooldown_s =
  node.consecutive_failures <- node.consecutive_failures + 1;
  let reopen level =
    node.breaker_level <- level;
    node.breaker <- Open_until (now_s +. (cooldown_s *. float_of_int (1 lsl level)));
    node.breaker_opens <- node.breaker_opens + 1;
    true
  in
  match node.breaker with
  | Half_open -> reopen (min 16 (node.breaker_level + 1))
  | Closed when threshold > 0 && node.consecutive_failures >= threshold -> reopen 0
  | Closed | Open_until _ -> false

let begin_downtime node ~from_s =
  if Float.is_nan node.down_since then node.down_since <- from_s

let end_downtime node ~until_s =
  if not (Float.is_nan node.down_since) then begin
    node.downtime_s <- node.downtime_s +. Float.max 0.0 (until_s -. node.down_since);
    node.down_intervals <- (node.down_since, until_s) :: node.down_intervals;
    node.down_since <- nan
  end

(* Total unavailable time clipped to [0, horizon], counting a still-open
   interval up to the horizon. *)
let downtime_before node ~horizon_s =
  let closed =
    List.fold_left
      (fun acc (from_s, until_s) ->
        acc +. Float.max 0.0 (Float.min until_s horizon_s -. Float.min from_s horizon_s))
      0.0 node.down_intervals
  in
  if Float.is_nan node.down_since then closed
  else closed +. Float.max 0.0 (horizon_s -. Float.min node.down_since horizon_s)
