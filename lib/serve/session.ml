open Orianna_fg
module Stream = Orianna_apps.Stream
module Obs = Orianna_obs.Obs
module Json = Orianna_obs.Json
module Texttable = Orianna_util.Texttable

type params = {
  max_sessions : int;
  idle_timeout_s : float;
  window : int option;
  relin_threshold : float;
  max_relin_passes : int;
  template_ticks : int;
  tick_overhead_s : float;
}

let default_params =
  {
    max_sessions = 8;
    idle_timeout_s = 50e-3;
    window = None;
    relin_threshold = 0.05;
    max_relin_passes = 3;
    template_ticks = 12;
    tick_overhead_s = 20e-6;
  }

type mission = {
  mid : int;
  stream : Stream.t;
  start_s : float;
  period_s : float;
  priority : Request.priority;
  deadline_slack_s : float;
}

(* Tick request ids live above this base so they can never collide
   with a generated solve trace (ids there are trace positions). *)
let id_base = 1_000_000

let max_steps = 10_000

(* Accounting that survives eviction: the session's whole history. *)
type meta = {
  m_mission : mission;
  m_key : int32;
  m_graphs : (string * Graph.t) list;
  m_template_vars : int;
  mutable m_ticks : int;
  mutable m_replays : int;
  mutable m_restarts : int;
  mutable m_evictions : int;
  mutable m_expiries : int;
  mutable m_dropped : int;
  mutable m_affected : (int * float) list;  (* (affected, fraction) per update, newest first *)
  mutable m_live : int;
  mutable m_marginalized : int;
}

(* A resident session: the live smoother and its replay cursor. *)
type resident = { r_sm : Smoother.t; mutable r_next : int; mutable r_used_s : float }

type t = {
  params : params;
  metas : (int, meta) Hashtbl.t;
  resident : (int, resident) Hashtbl.t;
  order : int list;  (* mission ids, ascending *)
}

let create ?(params = default_params) ~opt_level ~missions () =
  if params.max_sessions <= 0 then invalid_arg "Session.create: max_sessions must be positive";
  if params.template_ticks <= 0 then invalid_arg "Session.create: template_ticks must be positive";
  let metas = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if m.mid < 0 then invalid_arg "Session.create: negative mission id";
      if Hashtbl.mem metas m.mid then invalid_arg "Session.create: duplicate mission id";
      let len = Stream.length m.stream in
      if len = 0 then invalid_arg "Session.create: empty stream";
      if len > max_steps then invalid_arg "Session.create: stream too long";
      let graphs =
        [
          ( m.stream.Stream.sname,
            Stream.prefix_graph m.stream ~n:(min params.template_ticks len) );
        ]
      in
      let key = Cache.structural_key ~opt_level graphs in
      let template_vars =
        List.fold_left (fun acc (_, g) -> acc + List.length (Graph.variables g)) 0 graphs
      in
      Hashtbl.replace metas m.mid
        {
          m_mission = m;
          m_key = key;
          m_graphs = graphs;
          m_template_vars = template_vars;
          m_ticks = 0;
          m_replays = 0;
          m_restarts = 0;
          m_evictions = 0;
          m_expiries = 0;
          m_dropped = 0;
          m_affected = [];
          m_live = 0;
          m_marginalized = 0;
        })
    missions;
  let order = List.sort compare (List.map (fun m -> m.mid) missions) in
  { params; metas; resident = Hashtbl.create 16; order }

let mission_requests t =
  List.concat_map
    (fun mid ->
      let meta = Hashtbl.find t.metas mid in
      let m = meta.m_mission in
      List.init (Stream.length m.stream) (fun step ->
          let arrival = m.start_s +. (float_of_int step *. m.period_s) in
          {
            Request.id = id_base + (mid * max_steps) + step;
            app = m.stream.Stream.sname;
            seed = mid;
            priority = m.priority;
            arrival_s = arrival;
            deadline_s = arrival +. m.deadline_slack_s;
            kind = Request.Tick { session = mid; step };
          }))
    t.order

let key_of t (r : Request.t) =
  match r.Request.kind with
  | Request.Solve -> None
  | Request.Tick { session; _ } ->
      Option.map (fun meta -> meta.m_key) (Hashtbl.find_opt t.metas session)

let template_graphs t ~session = (Hashtbl.find t.metas session).m_graphs

(* Lazy idle-timeout sweep: expire every resident session whose last
   touch is more than the timeout ago.  Sorted ids keep the sweep (and
   its Obs counters) independent of hash-table layout. *)
let expire_idle t ~now_s =
  if t.params.idle_timeout_s > 0.0 then begin
    let stale =
      Hashtbl.fold
        (fun sid r acc ->
          if now_s -. r.r_used_s > t.params.idle_timeout_s then sid :: acc else acc)
        t.resident []
      |> List.sort compare
    in
    List.iter
      (fun sid ->
        Hashtbl.remove t.resident sid;
        let meta = Hashtbl.find t.metas sid in
        meta.m_expiries <- meta.m_expiries + 1;
        Obs.count "serve.session.expired")
      stale
  end

(* LRU capacity eviction: oldest last touch goes, smaller id on a
   tie. *)
let evict_for_room t =
  if Hashtbl.length t.resident >= t.params.max_sessions then begin
    let victim =
      Hashtbl.fold
        (fun sid r acc ->
          match acc with
          | Some (bsid, best) when (best.r_used_s, bsid) <= (r.r_used_s, sid) -> acc
          | _ -> Some (sid, r))
        t.resident None
    in
    match victim with
    | Some (sid, _) ->
        Hashtbl.remove t.resident sid;
        let meta = Hashtbl.find t.metas sid in
        meta.m_evictions <- meta.m_evictions + 1;
        Obs.count "serve.session.evicted"
    | None -> ()
  end

let resident_for t meta ~now_s =
  let sid = meta.m_mission.mid in
  match Hashtbl.find_opt t.resident sid with
  | Some r -> r
  | None ->
      evict_for_room t;
      let sparams =
        {
          Smoother.relin_threshold = t.params.relin_threshold;
          max_relin_passes = t.params.max_relin_passes;
          window = t.params.window;
        }
      in
      let r = { r_sm = Smoother.create ~params:sparams (); r_next = 0; r_used_s = now_s } in
      Hashtbl.replace t.resident sid r;
      if meta.m_ticks > 0 then begin
        (* The session had progress before it was evicted or expired:
           this is a restart, and the fast-forward below refolds the
           stream from the top. *)
        meta.m_restarts <- meta.m_restarts + 1;
        Obs.count "serve.session.restart"
      end;
      r

let execute t ~now_s ~base_s (r : Request.t) =
  match r.Request.kind with
  | Request.Solve -> invalid_arg "Session.execute: not a tick request"
  | Request.Tick { session; step } ->
      let meta =
        match Hashtbl.find_opt t.metas session with
        | Some m -> m
        | None -> invalid_arg "Session.execute: unknown session"
      in
      expire_idle t ~now_s;
      let res = resident_for t meta ~now_s in
      res.r_used_s <- now_s;
      Obs.count "serve.session.tick";
      if step < res.r_next then begin
        (* Already folded in (an earlier tick of the same batch
           fast-forwarded past this step, or a retry of recovered
           in-flight work): nothing to solve. *)
        meta.m_replays <- meta.m_replays + 1;
        Obs.count "serve.session.replay";
        t.params.tick_overhead_s
      end
      else begin
        let stream = meta.m_mission.stream in
        let last = min step (Stream.length stream - 1) in
        for k = res.r_next to last do
          meta.m_dropped <- meta.m_dropped + Stream.apply_tick res.r_sm stream.Stream.ticks.(k)
        done;
        meta.m_ticks <- meta.m_ticks + (last - res.r_next + 1);
        res.r_next <- last + 1;
        Smoother.update res.r_sm;
        let st = Smoother.stats res.r_sm in
        let fraction =
          if st.Smoother.total_variables = 0 then 0.0
          else float_of_int st.Smoother.affected_last /. float_of_int st.Smoother.total_variables
        in
        meta.m_affected <- (st.Smoother.affected_last, fraction) :: meta.m_affected;
        meta.m_live <- st.Smoother.total_variables;
        meta.m_marginalized <- st.Smoother.marginalized;
        t.params.tick_overhead_s
        +. base_s
           *. (float_of_int st.Smoother.affected_last /. float_of_int (max 1 meta.m_template_vars))
      end

type session_stats = {
  sid : int;
  sname : string;
  ticks_applied : int;
  replays : int;
  restarts : int;
  evictions : int;
  expiries : int;
  dropped_factors : int;
  live_variables : int;
  marginalized : int;
  median_affected : float;
  median_affected_fraction : float;
}

type report = {
  per_session : session_stats list;
  active : int;
  ticks_total : int;
  replays_total : int;
  restarts_total : int;
  evictions_total : int;
  expiries_total : int;
}

let median xs = if xs = [] then 0.0 else Orianna_util.Stats.median (Array.of_list xs)

let report t =
  let per_session =
    List.map
      (fun sid ->
        let m = Hashtbl.find t.metas sid in
        {
          sid;
          sname = m.m_mission.stream.Stream.sname;
          ticks_applied = m.m_ticks;
          replays = m.m_replays;
          restarts = m.m_restarts;
          evictions = m.m_evictions;
          expiries = m.m_expiries;
          dropped_factors = m.m_dropped;
          live_variables = m.m_live;
          marginalized = m.m_marginalized;
          median_affected = median (List.map (fun (a, _) -> float_of_int a) m.m_affected);
          median_affected_fraction = median (List.map snd m.m_affected);
        })
      t.order
  in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 per_session in
  {
    per_session;
    active = Hashtbl.length t.resident;
    ticks_total = sum (fun s -> s.ticks_applied);
    replays_total = sum (fun s -> s.replays);
    restarts_total = sum (fun s -> s.restarts);
    evictions_total = sum (fun s -> s.evictions);
    expiries_total = sum (fun s -> s.expiries);
  }

let report_json r =
  Json.Obj
    [
      ("active", Json.int r.active);
      ("ticks", Json.int r.ticks_total);
      ("replays", Json.int r.replays_total);
      ("restarts", Json.int r.restarts_total);
      ("evictions", Json.int r.evictions_total);
      ("expiries", Json.int r.expiries_total);
      ( "per_session",
        Json.Arr
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("sid", Json.int s.sid);
                   ("stream", Json.Str s.sname);
                   ("ticks", Json.int s.ticks_applied);
                   ("replays", Json.int s.replays);
                   ("restarts", Json.int s.restarts);
                   ("evictions", Json.int s.evictions);
                   ("expiries", Json.int s.expiries);
                   ("dropped_factors", Json.int s.dropped_factors);
                   ("live_variables", Json.int s.live_variables);
                   ("marginalized", Json.int s.marginalized);
                   ("median_affected", Json.Num s.median_affected);
                   ("median_affected_fraction", Json.Num s.median_affected_fraction);
                 ])
             r.per_session) );
    ]

let table r =
  let t =
    Texttable.create ~title:"Sessions"
      ~headers:
        [ "sid"; "stream"; "ticks"; "replays"; "restarts"; "evict"; "expire"; "live"; "marg"; "med affected" ]
  in
  List.iter
    (fun s ->
      Texttable.add_row t
        [
          string_of_int s.sid;
          s.sname;
          string_of_int s.ticks_applied;
          string_of_int s.replays;
          string_of_int s.restarts;
          string_of_int s.evictions;
          string_of_int s.expiries;
          string_of_int s.live_variables;
          string_of_int s.marginalized;
          Printf.sprintf "%.1f (%.1f%%)" s.median_affected (100.0 *. s.median_affected_fraction);
        ])
    r.per_session;
  Texttable.render t
