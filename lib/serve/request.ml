open Orianna_util

type priority = Low | Normal | High

let priority_name = function Low -> "low" | Normal -> "normal" | High -> "high"

let priority_rank = function Low -> 0 | Normal -> 1 | High -> 2

type kind = Solve | Tick of { session : int; step : int }

let kind_name = function Solve -> "solve" | Tick _ -> "tick"

type t = {
  id : int;
  app : string;
  seed : int;
  priority : priority;
  arrival_s : float;
  deadline_s : float;
  kind : kind;
}

let slack_s t ~now_s = t.deadline_s -. now_s

type shape = Poisson of { rate_hz : float } | Bursty of { rate_hz : float; burst : int }

let exponential rng ~rate = -.log (1.0 -. Rng.float rng) /. rate

let generate ~rng ~shape ~apps ~deadline_s:(dl_lo, dl_hi) ~n =
  if apps = [] then invalid_arg "Request.generate: no apps";
  if n < 0 then invalid_arg "Request.generate: negative n";
  if dl_lo < 0.0 || dl_hi < dl_lo then invalid_arg "Request.generate: bad deadline range";
  (* The split table: one independent stream per trace dimension. *)
  let arrivals_rng = Rng.split rng in
  let apps_rng = Rng.split rng in
  let prio_rng = Rng.split rng in
  let slack_rng = Rng.split rng in
  let seed_rng = Rng.split rng in
  let apps = Array.of_list apps in
  let clock = ref 0.0 in
  List.init n (fun id ->
      (match shape with
      | Poisson { rate_hz } -> clock := !clock +. exponential arrivals_rng ~rate:rate_hz
      | Bursty { rate_hz; burst } ->
          let burst = max 1 burst in
          (* Gaps only between bursts, scaled so the mean rate still
             holds: every [burst]-th request pays the whole group's
             inter-arrival budget. *)
          if id mod burst = 0 then
            clock := !clock +. exponential arrivals_rng ~rate:(rate_hz /. float_of_int burst));
      let priority =
        let u = Rng.float prio_rng in
        if u < 0.15 then High else if u < 0.85 then Normal else Low
      in
      {
        id;
        app = apps.(Rng.int apps_rng (Array.length apps));
        seed = 1 + Rng.int seed_rng 1_000_000;
        priority;
        arrival_s = !clock;
        deadline_s = !clock +. Rng.uniform slack_rng ~lo:dl_lo ~hi:dl_hi;
        kind = Solve;
      })

let pp ppf r =
  Format.fprintf ppf "req#%d %s seed=%d %s arr=%.6fs dl=%.6fs" r.id r.app r.seed
    (priority_name r.priority) r.arrival_s r.deadline_s
