open Orianna_util
open Orianna_hw
open Orianna_sim
module App = Orianna_apps.App
module Compile = Orianna_compiler.Compile
module Obs = Orianna_obs.Obs
module Json = Orianna_obs.Json
module Chrome_trace = Orianna_obs.Chrome_trace

type config = {
  instances : int;
  masked : (int * Unit_model.unit_class) list;
  policy : Dispatch.policy;
  queue_capacity : int;
  max_batch : int;
  batch_overhead_s : float;
  miss_penalty_s : float;
  cache_capacity : int;
  budget : Resource.t;
  opt_level : int;
  chaos : Chaos.config option;
  max_retries : int;
  retry_backoff_s : float;
  hedge : bool;
  hedge_slack_s : float;
  heartbeat_interval_s : float;
  heartbeat_timeout_s : float;
  breaker_threshold : int;
  breaker_cooldown_s : float;
}

let default_config =
  {
    instances = 4;
    masked = [];
    policy = Dispatch.Edf;
    queue_capacity = 64;
    max_batch = 8;
    batch_overhead_s = 20e-6;
    miss_penalty_s = 2e-3;
    cache_capacity = 8;
    budget = Resource.zc706;
    opt_level = 1;
    chaos = None;
    max_retries = 2;
    retry_backoff_s = 100e-6;
    hedge = false;
    hedge_slack_s = 1e-3;
    heartbeat_interval_s = 250e-6;
    heartbeat_timeout_s = 1e-3;
    breaker_threshold = 3;
    breaker_cooldown_s = 1e-3;
  }

type rejection = Queue_full | Shed_lower_priority | Unservable | Failed_after_retries

let rejection_name = function
  | Queue_full -> "queue-full"
  | Shed_lower_priority -> "shed-lower-priority"
  | Unservable -> "unservable"
  | Failed_after_retries -> "failed-after-retries"

type completion = {
  request : Request.t;
  instance : int;
  batch : int;
  start_s : float;
  finish_s : float;
  cache_hit : bool;
  rerouted : bool;
  attempts : int;
  hedged : bool;
}

type batch = {
  bid : int;
  binstance : int;
  bapp : string;
  bsize : int;
  bstart_s : float;
  bfinish_s : float;
  bhit : bool;
  brerouted : bool;
  bfailed : bool;
}

type instance_report = {
  iidx : int;
  imasked : string option;
  iserved : int;
  ibatches : int;
  ibusy_s : float;
  iutil : float;
  idowntime_s : float;
  icrashes : int;
  ihangs : int;
  itransients : int;
  islowdowns : int;
  irestarts : int;
  ibreaker_opens : int;
  icold_batches : int;
}

type chaos_report = {
  crashes : int;
  hangs : int;
  transients : int;
  slowdowns : int;
  restarts : int;
  breaker_opens : int;
  cold_batches : int;
  retries : int;
  failed_after_retries : int;
  hedges_launched : int;
  hedges_cancelled : int;
  inflight_recovered : int;
  inflight_lost : int;
  availability : float;
  transitions : (float * int * string) list;
}

type report = {
  total : int;
  admitted : int;
  completed : int;
  rejections : (Request.t * rejection) list;
  completions : completion list;
  batches : batch list;
  makespan_s : float;
  throughput_rps : float;
  mean_latency_s : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_latency_ms : float;
  deadline_misses : int;
  deadline_miss_rate : float;
  queue_depth_max : int;
  queue_samples : (float * int) list;
  rerouted : int;
  cache : Cache.stats;
  fleet : instance_report list;
  per_app : (string * int * int) list;
  chaos : chaos_report option;
  sessions : Session.report option;
}

(* One queued copy of a request: its structural cache key (computed at
   admission), how many dispatch attempts this copy has consumed, the
   virtual time its retry backoff elapses, and whether it is a hedged
   duplicate of another live copy. *)
type queued = { req : Request.t; key : int32; attempts : int; eligible_s : float; dup : bool }

(* One request riding an in-flight batch, with its individual
   (staggered) finish time. *)
type flight_req = { fq : queued; ffinish_s : float }

(* A dispatched batch whose completions have not all committed yet.
   [fpending] is in finish order; commits pop the due prefix, an
   instance failure recovers whatever remains. *)
type flight = {
  fbid : int;
  finst : int;
  fapp : string;
  fsize : int;
  fstart_s : float;
  ffinish_last : float;
  fhit : bool;
  frerouted : bool;
  mutable fpending : flight_req list;
}

let compile_graphs ~budget ~opt_level graphs =
  let program = Compile.compile_application ~opt_level graphs in
  (* Same schedule-feedback rounds as the compile/simulate/profile CLI
     paths: one measured-stall reorder at -O2 (Pipeline.reoptimize),
     the full profile-guided fixpoint at -O3 (Opt_loop.optimize).
     Without them, O2/O3 artifacts would be byte-identical to O1 while
     still being cached under a distinct (structural key, opt_level)
     cache key. *)
  let program =
    if opt_level >= 3 then Opt_loop.optimize ~level:opt_level program
    else if opt_level >= 2 then Trace.reoptimize program
    else program
  in
  let dse =
    Dse.optimize ~budget
      ~evaluate:(fun accel ->
        (Schedule.run ~accel ~policy:Schedule.Ooo_full program).Schedule.seconds)
      ()
  in
  (program, dse)

let compile_entry ~budget ~opt_level (req : Request.t) () =
  let app = App.find req.Request.app in
  compile_graphs ~budget ~opt_level (app.App.graphs (Rng.of_int req.Request.seed))

let run ?(config = default_config) ?sessions ~trace () =
  if config.queue_capacity <= 0 then invalid_arg "Serve.run: queue_capacity must be positive";
  if config.max_batch <= 0 then invalid_arg "Serve.run: max_batch must be positive";
  if config.max_retries < 0 then invalid_arg "Serve.run: max_retries must be non-negative";
  (* Mission ticks ride the same trace as generated solves; the stable
     sort below interleaves them by arrival. *)
  let trace =
    match sessions with None -> trace | Some s -> trace @ Session.mission_requests s
  in
  let trace =
    List.stable_sort
      (fun (a : Request.t) b -> compare (a.Request.arrival_s, a.Request.id) (b.Request.arrival_s, b.Request.id))
      trace
  in
  let arr = Array.of_list trace in
  let n = Array.length arr in
  let fleet = Dispatch.make_fleet ~instances:config.instances ~masked:config.masked in
  let fleet_arr = Dispatch.instances fleet in
  let cache = Cache.create ~capacity:config.cache_capacity in
  let ccfg = Option.value config.chaos ~default:Chaos.default in
  let sched =
    match config.chaos with
    | Some c when Chaos.enabled c -> Some (Chaos.make c ~instances:config.instances)
    | Some _ | None -> None
  in
  let nodes = Chaos.make_nodes config.instances in
  let clock = ref 0.0 in
  let ai = ref 0 in
  let queue = ref ([] : queued list) in
  let inflight = ref ([] : flight list) in
  let rejections = ref [] in
  let completions = ref [] in
  let batches = ref [] in
  let batch_counter = ref 0 in
  let queue_depth_max = ref 0 in
  let queue_samples = ref [] in
  let admitted = ref 0 in
  let retries_total = ref 0 in
  let hedges_launched = ref 0 in
  let hedges_cancelled = ref 0 in
  let transitions = ref [] in
  (* Copies of a request id still alive (queued or in flight); a
     terminal outcome is recorded exactly when the last copy dies. *)
  let live = Hashtbl.create (max 16 n) in
  let finished = Hashtbl.create (max 16 n) in
  (* Ids whose in-flight work was ever recovered from a failed
     instance: recovered-vs-lost accounting for the report. *)
  let touched = Hashtbl.create 16 in
  (* Keys whose compile happened but whose miss penalty has not yet
     been charged to a dispatched batch. *)
  let pending_penalty = Hashtbl.create 8 in
  let reject r why =
    rejections := (r, why) :: !rejections;
    Obs.count ("serve.rejected." ^ rejection_name why)
  in
  (* Drop one live copy; the last copy dying without a completion on
     record is the id's single structured terminal outcome. *)
  let fail_copy (r : Request.t) why =
    let id = r.Request.id in
    let l = (match Hashtbl.find_opt live id with Some l -> l | None -> 0) - 1 in
    Hashtbl.replace live id l;
    if l <= 0 && not (Hashtbl.mem finished id) then reject r why
  in
  let transition label idx = transitions := (!clock, idx, label) :: !transitions in
  let sample_queue () =
    let depth = List.length !queue in
    if depth > !queue_depth_max then queue_depth_max := depth;
    match !queue_samples with
    | (t, d) :: _ when t = !clock && d = depth ->
        (* Duplicate sample: the gauge already reads [depth], so skip
           the registry write (a sequenced shard-lock hit) too. *)
        ()
    | _ ->
        queue_samples := (!clock, depth) :: !queue_samples;
        Obs.set_gauge "serve.queue_depth" (float_of_int depth)
  in
  let admit (r : Request.t) =
    let key_opt =
      match r.Request.kind with
      | Request.Solve -> (
          match App.find r.Request.app with
          | exception Not_found -> None
          | app ->
              Some
                (Cache.structural_key ~opt_level:config.opt_level
                   (app.App.graphs (Rng.of_int r.Request.seed))))
      | Request.Tick _ -> (
          (* A tick without a session layer (or for an unknown session)
             has no program to run. *)
          match sessions with None -> None | Some s -> Session.key_of s r)
    in
    match key_opt with
    | None -> reject r Unservable
    | Some key ->
        let q = { req = r; key; attempts = 0; eligible_s = r.Request.arrival_s; dup = false } in
        if List.length !queue >= config.queue_capacity then begin
          (* Shed-on-overload: a strictly lower-priority queued request
             with the slackest deadline makes room; otherwise the
             arrival itself is turned away. *)
          let rank q = Request.priority_rank q.req.Request.priority in
          let victim =
            List.fold_left
              (fun acc cand ->
                if rank cand >= Request.priority_rank r.Request.priority then acc
                else
                  match acc with
                  | Some best
                    when (rank best, -.best.req.Request.deadline_s, -best.req.Request.id)
                         <= (rank cand, -.cand.req.Request.deadline_s, -cand.req.Request.id) ->
                      acc
                  | _ -> Some cand)
              None !queue
          in
          match victim with
          | Some v ->
              queue := List.filter (fun q -> q.req.Request.id <> v.req.Request.id) !queue @ [ q ];
              admitted := !admitted + 1;
              Hashtbl.replace live r.Request.id 1;
              Obs.count "serve.admitted";
              fail_copy v.req Shed_lower_priority
          | None -> reject r Queue_full
        end
        else begin
          queue := !queue @ [ q ];
          admitted := !admitted + 1;
          Hashtbl.replace live r.Request.id 1;
          Obs.count "serve.admitted"
        end
  in
  let mk_batch (f : flight) ~failed ~finish_s =
    {
      bid = f.fbid;
      binstance = f.finst;
      bapp = f.fapp;
      bsize = f.fsize;
      bstart_s = f.fstart_s;
      bfinish_s = finish_s;
      bhit = f.fhit;
      brerouted = f.frerouted;
      bfailed = failed;
    }
  in
  (* Put a recovered copy back in the queue under the retry budget,
     with exponential backoff clamped to half the remaining deadline
     slack (waiting longer than the slack allows buys nothing).  A
     near-deadline retry may additionally launch one hedged duplicate:
     first completion wins, the loser is cancelled. *)
  let requeue (q : queued) =
    let attempts = q.attempts + 1 in
    if attempts > config.max_retries then fail_copy q.req Failed_after_retries
    else begin
      incr retries_total;
      let slack = Request.slack_s q.req ~now_s:!clock in
      let backoff =
        Float.min
          (config.retry_backoff_s *. float_of_int (1 lsl min 16 (attempts - 1)))
          (Float.max 0.0 (0.5 *. slack))
      in
      let q' = { q with attempts; eligible_s = !clock +. backoff } in
      queue := !queue @ [ q' ];
      if
        config.hedge && (not q.dup)
        && slack < config.hedge_slack_s
        && Hashtbl.find_opt live q.req.Request.id = Some 1
      then begin
        incr hedges_launched;
        Hashtbl.replace live q.req.Request.id 2;
        queue := !queue @ [ { q' with dup = true } ]
      end
    end
  in
  (* Fail-over: every batch still in flight on this instance dies; its
     uncommitted requests are recovered and re-dispatched elsewhere. *)
  let fail_node_flights idx =
    let mine, rest = List.partition (fun f -> f.finst = idx) !inflight in
    inflight := rest;
    List.iter
      (fun f ->
        let inst = fleet_arr.(idx) in
        let recov = f.fpending in
        f.fpending <- [];
        inst.Dispatch.served <- inst.Dispatch.served - List.length recov;
        inst.Dispatch.busy_total_s <-
          inst.Dispatch.busy_total_s -. Float.max 0.0 (f.ffinish_last -. !clock);
        batches := mk_batch f ~failed:true ~finish_s:!clock :: !batches;
        List.iter
          (fun fr ->
            Hashtbl.replace touched fr.fq.req.Request.id ();
            requeue fr.fq)
          recov)
      mine
  in
  (* A node just failed (crash, hang detection, or transient): trip the
     breaker, recover its in-flight work, and free its slot. *)
  let node_failure node =
    let idx = node.Chaos.nidx in
    fail_node_flights idx;
    if Chaos.breaker_failure node ~now_s:!clock ~threshold:config.breaker_threshold
         ~cooldown_s:config.breaker_cooldown_s
    then transition "breaker-open" idx;
    let inst = fleet_arr.(idx) in
    inst.Dispatch.busy_until_s <- Float.min inst.Dispatch.busy_until_s !clock
  in
  let schedule_restart node =
    match sched with
    | Some cs when ccfg.Chaos.restart ->
        node.Chaos.restart_at <- !clock +. Chaos.restart_latency_s cs node.Chaos.nidx
    | Some _ | None -> node.Chaos.dead_forever <- true
  in
  (* Commit every due completion (finish time reached, instance not
     hung), then finalize batches whose requests have all resolved.
     The first committed copy of an id wins; any other live copies are
     cancelled on the spot, so no id can complete twice. *)
  let commit_req (f : flight) (fr : flight_req) =
    let id = fr.fq.req.Request.id in
    if Hashtbl.mem finished id then incr hedges_cancelled
    else begin
      Hashtbl.replace finished id ();
      completions :=
        {
          request = fr.fq.req;
          instance = f.finst;
          batch = f.fbid;
          start_s = f.fstart_s;
          finish_s = fr.ffinish_s;
          cache_hit = f.fhit;
          rerouted = f.frerouted;
          attempts = fr.fq.attempts;
          hedged = fr.fq.dup;
        }
        :: !completions;
      Obs.count "serve.completed";
      Obs.observe "serve.latency_ms" ((fr.ffinish_s -. fr.fq.req.Request.arrival_s) *. 1e3);
      Obs.observe "serve.wait_ms" ((f.fstart_s -. fr.fq.req.Request.arrival_s) *. 1e3);
      if Hashtbl.find_opt live id <> Some 1 then begin
        (* Cancel the losing hedge copies: queued twins drop out, in-
           flight twins are removed from their batch's pending list. *)
        let dups, rest = List.partition (fun q -> q.req.Request.id = id) !queue in
        queue := rest;
        hedges_cancelled := !hedges_cancelled + List.length dups;
        List.iter
          (fun g ->
            let d, keep = List.partition (fun fr2 -> fr2.fq.req.Request.id = id) g.fpending in
            g.fpending <- keep;
            hedges_cancelled := !hedges_cancelled + List.length d)
          !inflight
      end;
      Hashtbl.replace live id 0
    end
  in
  let commit_due () =
    List.iter
      (fun f ->
        if nodes.(f.finst).Chaos.hung_since = None then begin
          let rec pop_due () =
            match f.fpending with
            | fr :: rest when fr.ffinish_s <= !clock ->
                f.fpending <- rest;
                commit_req f fr;
                pop_due ()
            | _ -> ()
          in
          pop_due ()
        end)
      !inflight;
    let resolved, active = List.partition (fun f -> f.fpending = []) !inflight in
    inflight := active;
    List.iter
      (fun f ->
        if Chaos.breaker_success nodes.(f.finst) then transition "breaker-close" f.finst;
        Obs.count "serve.batches";
        batches := mk_batch f ~failed:false ~finish_s:f.ffinish_last :: !batches)
      resolved
  in
  (* Node timers: heartbeat-miss (Up -> Suspect), heartbeat-timeout
     (hang detected -> Down, fail over, schedule restart), restart
     (Down -> Up with a cold compile cache). *)
  let process_timers_due () =
    Array.iter
      (fun node ->
        let idx = node.Chaos.nidx in
        if node.Chaos.suspect_at <= !clock then begin
          node.Chaos.suspect_at <- infinity;
          if node.Chaos.health = Chaos.Up then begin
            node.Chaos.health <- Chaos.Suspect;
            transition "suspect" idx
          end
        end;
        if node.Chaos.detect_at <= !clock then begin
          node.Chaos.detect_at <- infinity;
          if (not node.Chaos.dead_forever) && node.Chaos.health <> Chaos.Down then begin
            node.Chaos.health <- Chaos.Down;
            transition "down" idx;
            let from_s = match node.Chaos.hung_since with Some h -> h | None -> !clock in
            Chaos.begin_downtime node ~from_s;
            node_failure node;
            schedule_restart node
          end
        end;
        if node.Chaos.restart_at <= !clock then begin
          let t = node.Chaos.restart_at in
          node.Chaos.restart_at <- infinity;
          node.Chaos.health <- Chaos.Up;
          node.Chaos.hung_since <- None;
          node.Chaos.restarts <- node.Chaos.restarts + 1;
          Chaos.end_downtime node ~until_s:t;
          Hashtbl.reset node.Chaos.warm;
          transition "restart" idx
        end)
      nodes
  in
  let handle_chaos_event (ev : Chaos.event) =
    let node = nodes.(ev.Chaos.instance) in
    let idx = ev.Chaos.instance in
    (* Faults only land on healthy, non-hung nodes: a dead node cannot
       crash twice, and a hung one is already doomed. *)
    if node.Chaos.health = Chaos.Up && node.Chaos.hung_since = None
       && not node.Chaos.dead_forever
    then
      match ev.Chaos.kind with
      | Chaos.Crash ->
          node.Chaos.crashes <- node.Chaos.crashes + 1;
          node.Chaos.health <- Chaos.Down;
          transition "crash" idx;
          Chaos.begin_downtime node ~from_s:!clock;
          node_failure node;
          schedule_restart node
      | Chaos.Hang ->
          node.Chaos.hangs <- node.Chaos.hangs + 1;
          node.Chaos.hung_since <- Some !clock;
          node.Chaos.suspect_at <- !clock +. config.heartbeat_interval_s;
          node.Chaos.detect_at <- !clock +. config.heartbeat_timeout_s;
          transition "hang" idx
      | Chaos.Transient ->
          if List.exists (fun f -> f.finst = idx) !inflight then begin
            node.Chaos.transients <- node.Chaos.transients + 1;
            transition "transient" idx;
            node_failure node
          end
      | Chaos.Slowdown ->
          node.Chaos.slowdowns <- node.Chaos.slowdowns + 1;
          node.Chaos.slow_until <- !clock +. ccfg.Chaos.slowdown_duration_s;
          transition "slowdown" idx
  in
  let rec process_chaos_due () =
    match sched with
    | None -> ()
    | Some cs -> (
        match Chaos.peek cs with
        | Some ev when ev.Chaos.at_s <= !clock ->
            ignore (Chaos.pop cs);
            handle_chaos_event ev;
            process_chaos_due ()
        | Some _ | None -> ())
  in
  let dispatch_batch (head : queued) (hit : bool) (inst : Dispatch.instance)
      (per_req_s : float) (was_rerouted : bool) =
    let node = nodes.(inst.Dispatch.idx) in
    let batch_reqs, rest =
      Dispatch.take_batch ~max_batch:config.max_batch ~key:head.key
        ~keyof:(fun q -> q.key)
        ~idof:(fun q -> q.req.Request.id)
        ~ready:(fun q -> q.eligible_s <= !clock)
        !queue
    in
    queue := rest;
    ignore (Chaos.arm_probe node ~now_s:!clock);
    let penalty =
      if Hashtbl.mem pending_penalty head.key then begin
        Hashtbl.remove pending_penalty head.key;
        config.miss_penalty_s
      end
      else 0.0
    in
    (* A restarted instance lost its on-device program images: the
       first post-restart batch per program recompiles/reloads. *)
    let cold = node.Chaos.restarts > 0 && not (Hashtbl.mem node.Chaos.warm head.key) in
    if cold then node.Chaos.cold_batches <- node.Chaos.cold_batches + 1;
    Hashtbl.replace node.Chaos.warm head.key ();
    let per_req_s =
      if !clock < node.Chaos.slow_until then per_req_s *. ccfg.Chaos.slowdown_factor
      else per_req_s
    in
    let start = !clock in
    let overhead =
      config.batch_overhead_s +. penalty +. (if cold then ccfg.Chaos.cold_penalty_s else 0.0)
    in
    let bid = !batch_counter in
    incr batch_counter;
    let is_tick q = match q.req.Request.kind with Request.Tick _ -> true | Request.Solve -> false in
    let fpending =
      if List.exists is_tick batch_reqs then
        (* Tick service times are per-request (proportional to the
           session's affected re-elimination work), so finishes
           accumulate instead of the uniform stagger below. *)
        let at = ref (start +. overhead) in
        List.map
          (fun q ->
            let svc =
              match (q.req.Request.kind, sessions) with
              | Request.Tick _, Some s -> Session.execute s ~now_s:!clock ~base_s:per_req_s q.req
              | _ -> per_req_s
            in
            at := !at +. svc;
            { fq = q; ffinish_s = !at })
          batch_reqs
      else
        List.mapi
          (fun i q ->
            { fq = q; ffinish_s = start +. overhead +. (float_of_int (i + 1) *. per_req_s) })
          batch_reqs
    in
    let finish_last =
      match List.rev fpending with fr :: _ -> fr.ffinish_s | [] -> start
    in
    inst.Dispatch.busy_until_s <- finish_last;
    inst.Dispatch.busy_total_s <- inst.Dispatch.busy_total_s +. (finish_last -. start);
    inst.Dispatch.served <- inst.Dispatch.served + List.length batch_reqs;
    inst.Dispatch.batches <- inst.Dispatch.batches + 1;
    inflight :=
      !inflight
      @ [
          {
            fbid = bid;
            finst = inst.Dispatch.idx;
            fapp = head.req.Request.app;
            fsize = List.length batch_reqs;
            fstart_s = start;
            ffinish_last = finish_last;
            fhit = hit;
            frerouted = was_rerouted;
            fpending;
          };
        ]
  in
  let usable (inst : Dispatch.instance) = Chaos.routable nodes.(inst.Dispatch.idx) ~now_s:!clock in
  let alive (inst : Dispatch.instance) = not nodes.(inst.Dispatch.idx).Chaos.dead_forever in
  let try_dispatch () =
    if !queue = [] then false
    else begin
      let ordered = Dispatch.select config.policy !queue ~key:(fun q -> q.req) in
      let rec walk seen = function
        | [] -> false
        | (q : queued) :: rest when q.eligible_s > !clock -> walk seen rest
        | q :: rest when List.mem q.key seen -> walk seen rest
        | q :: rest -> (
            let hit, entry =
              Cache.find_or_add cache q.key (fun () ->
                  let p, d =
                    match (q.req.Request.kind, sessions) with
                    | Request.Tick { session; _ }, Some s ->
                        (* Ticks run the session's compiled template
                           program; every tick of every tenant on the
                           same stream shares this one artifact. *)
                        compile_graphs ~budget:config.budget ~opt_level:config.opt_level
                          (Session.template_graphs s ~session)
                    | _ ->
                        compile_entry ~budget:config.budget ~opt_level:config.opt_level q.req ()
                  in
                  Hashtbl.replace pending_penalty q.key ();
                  (p, d))
            in
            match Dispatch.choose_instance ~usable config.policy fleet ~now_s:!clock ~entry with
            | Some (inst, per_req_s, was_rerouted) ->
                dispatch_batch q hit inst per_req_s was_rerouted;
                true
            | None ->
                if Dispatch.can_any_serve ~alive fleet entry then walk (q.key :: seen) rest
                else begin
                  (* No instance that is still alive (or will ever come
                     back) can execute this program: structured
                     rejection instead of livelock, even when the last
                     capable instance died mid-run. *)
                  let doomed, rest_q = List.partition (fun c -> c.key = q.key) !queue in
                  queue := rest_q;
                  List.iter (fun c -> fail_copy c.req Unservable) doomed;
                  true
                end)
      in
      walk [] ordered
    end
  in
  let advance () =
    let best = ref infinity in
    let upd t = if t > !clock && t < !best then best := t in
    if !ai < n then upd arr.(!ai).Request.arrival_s;
    (* First uncommitted finish per live (non-hung) flight; a hung
       instance produces nothing until its heartbeat timeout fires. *)
    List.iter
      (fun f ->
        if nodes.(f.finst).Chaos.hung_since = None then
          match f.fpending with fr :: _ -> upd fr.ffinish_s | [] -> ())
      !inflight;
    Array.iter (fun (i : Dispatch.instance) -> upd i.Dispatch.busy_until_s) fleet_arr;
    List.iter (fun (q : queued) -> upd q.eligible_s) !queue;
    (match sched with
    | Some cs -> ( match Chaos.peek cs with Some ev -> upd ev.Chaos.at_s | None -> ())
    | None -> ());
    Array.iter
      (fun node ->
        upd node.Chaos.suspect_at;
        upd node.Chaos.detect_at;
        upd node.Chaos.restart_at;
        match node.Chaos.breaker with Chaos.Open_until t -> upd t | _ -> ())
      nodes;
    if !best < infinity then begin
      clock := !best;
      true
    end
    else false
  in
  while !ai < n || !queue <> [] || !inflight <> [] do
    while !ai < n && arr.(!ai).Request.arrival_s <= !clock do
      admit arr.(!ai);
      incr ai
    done;
    commit_due ();
    process_timers_due ();
    process_chaos_due ();
    sample_queue ();
    if not (try_dispatch ()) then
      if not (advance ()) then begin
        (* No future event can unblock the queue (defensive: reachable
           only if every instance is idle yet incapable, which
           [try_dispatch] already rejects). *)
        let stuck = !queue in
        queue := [];
        List.iter (fun q -> fail_copy q.req Unservable) stuck
      end
  done;
  commit_due ();
  sample_queue ();
  let completions =
    List.sort (fun a b -> compare a.request.Request.id b.request.Request.id) !completions
  in
  let batches = List.sort (fun a b -> compare a.bid b.bid) !batches in
  let rejections = List.rev !rejections in
  let completed = List.length completions in
  let latencies =
    Array.of_list (List.map (fun c -> c.finish_s -. c.request.Request.arrival_s) completions)
  in
  let makespan_s = List.fold_left (fun acc c -> Float.max acc c.finish_s) 0.0 completions in
  let deadline_misses =
    List.length (List.filter (fun c -> c.finish_s > c.request.Request.deadline_s) completions)
  in
  (* Single source of truth for reroute / deadline-miss telemetry: both
     are derived from the report data and mirrored into Obs once, so
     the counter and the report field cannot drift. *)
  let rerouted_total = List.length (List.filter (fun b -> b.brerouted) batches) in
  let mirror name v = if v > 0 then Obs.count ~n:v name in
  mirror "serve.rerouted" rerouted_total;
  mirror "serve.deadline_miss" deadline_misses;
  (* Latency percentiles go through the shared log-bucketed histogram
     (one quantile implementation repo-wide); error vs the exact sorted
     percentile is bounded by one bucket width. *)
  let lat_hist =
    let h = Obs.Hist.create () in
    Array.iter (fun l -> Obs.Hist.add h (l *. 1e3)) latencies;
    Obs.snapshot_hist h
  in
  let pctl p = if Array.length latencies = 0 then 0.0 else Obs.quantile lat_hist p in
  let per_app =
    List.fold_left
      (fun acc c ->
        let app = c.request.Request.app in
        let done_, miss = try List.assoc app acc with Not_found -> (0, 0) in
        (app, (done_ + 1, miss + if c.finish_s > c.request.Request.deadline_s then 1 else 0))
        :: List.remove_assoc app acc)
      [] completions
    |> List.map (fun (app, (d, m)) -> (app, d, m))
    |> List.sort compare
  in
  let sum f = Array.fold_left (fun acc node -> acc + f node) 0 nodes in
  let chaos_rep =
    match config.chaos with
    | None -> None
    | Some _ ->
        let failed_after_retries =
          List.length (List.filter (fun (_, w) -> w = Failed_after_retries) rejections)
        in
        let inflight_recovered =
          Hashtbl.fold (fun id () acc -> if Hashtbl.mem finished id then acc + 1 else acc) touched 0
        in
        let inflight_lost = Hashtbl.length touched - inflight_recovered in
        let availability =
          if makespan_s <= 0.0 then 1.0
          else
            let down =
              Array.fold_left
                (fun acc node -> acc +. Chaos.downtime_before node ~horizon_s:makespan_s)
                0.0 nodes
            in
            Float.max 0.0 (1.0 -. (down /. (float_of_int config.instances *. makespan_s)))
        in
        let c =
          {
            crashes = sum (fun nd -> nd.Chaos.crashes);
            hangs = sum (fun nd -> nd.Chaos.hangs);
            transients = sum (fun nd -> nd.Chaos.transients);
            slowdowns = sum (fun nd -> nd.Chaos.slowdowns);
            restarts = sum (fun nd -> nd.Chaos.restarts);
            breaker_opens = sum (fun nd -> nd.Chaos.breaker_opens);
            cold_batches = sum (fun nd -> nd.Chaos.cold_batches);
            retries = !retries_total;
            failed_after_retries;
            hedges_launched = !hedges_launched;
            hedges_cancelled = !hedges_cancelled;
            inflight_recovered;
            inflight_lost;
            availability;
            transitions = List.rev !transitions;
          }
        in
        mirror "serve.chaos.crash" c.crashes;
        mirror "serve.chaos.hang" c.hangs;
        mirror "serve.chaos.transient" c.transients;
        mirror "serve.chaos.slowdown" c.slowdowns;
        mirror "serve.chaos.restart" c.restarts;
        mirror "serve.chaos.cold" c.cold_batches;
        mirror "serve.retry.scheduled" c.retries;
        mirror "serve.retry.exhausted" c.failed_after_retries;
        mirror "serve.breaker.open" c.breaker_opens;
        mirror "serve.hedge.launched" c.hedges_launched;
        mirror "serve.hedge.cancelled" c.hedges_cancelled;
        Obs.set_gauge "serve.availability" c.availability;
        Some c
  in
  let report =
    {
      total = n;
      admitted = !admitted;
      completed;
      rejections;
      completions;
      batches;
      makespan_s;
      throughput_rps = (if makespan_s > 0.0 then float_of_int completed /. makespan_s else 0.0);
      mean_latency_s = Stats.mean latencies;
      p50_ms = pctl 50.0;
      p95_ms = pctl 95.0;
      p99_ms = pctl 99.0;
      max_latency_ms = (if Array.length latencies = 0 then 0.0 else Stats.max latencies *. 1e3);
      deadline_misses;
      deadline_miss_rate =
        (if completed = 0 then 0.0 else float_of_int deadline_misses /. float_of_int completed);
      queue_depth_max = !queue_depth_max;
      queue_samples = List.rev !queue_samples;
      rerouted = rerouted_total;
      cache = Cache.stats cache;
      fleet =
        Array.to_list fleet_arr
        |> List.map (fun (i : Dispatch.instance) ->
               let node = nodes.(i.Dispatch.idx) in
               {
                 iidx = i.Dispatch.idx;
                 imasked = Option.map Unit_model.class_name i.Dispatch.masked;
                 iserved = i.Dispatch.served;
                 ibatches = i.Dispatch.batches;
                 ibusy_s = i.Dispatch.busy_total_s;
                 iutil =
                   (if makespan_s > 0.0 then i.Dispatch.busy_total_s /. makespan_s else 0.0);
                 idowntime_s =
                   (if makespan_s > 0.0 then Chaos.downtime_before node ~horizon_s:makespan_s
                    else 0.0);
                 icrashes = node.Chaos.crashes;
                 ihangs = node.Chaos.hangs;
                 itransients = node.Chaos.transients;
                 islowdowns = node.Chaos.slowdowns;
                 irestarts = node.Chaos.restarts;
                 ibreaker_opens = node.Chaos.breaker_opens;
                 icold_batches = node.Chaos.cold_batches;
               });
      per_app;
      chaos = chaos_rep;
      sessions = Option.map Session.report sessions;
    }
  in
  Obs.set_gauge "serve.deadline_miss_rate" report.deadline_miss_rate;
  Obs.set_gauge "serve.cache.hit_rate" (Cache.hit_rate report.cache);
  Obs.set_gauge "serve.throughput_rps" report.throughput_rps;
  report

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let report_json r =
  let cache = r.cache in
  let chaos_fields =
    match r.chaos with
    | None -> []
    | Some c ->
        [
          ( "chaos",
            Json.Obj
              [
                ("availability", Json.Num c.availability);
                ("crashes", Json.int c.crashes);
                ("hangs", Json.int c.hangs);
                ("transients", Json.int c.transients);
                ("slowdowns", Json.int c.slowdowns);
                ("restarts", Json.int c.restarts);
                ("breaker_opens", Json.int c.breaker_opens);
                ("cold_batches", Json.int c.cold_batches);
                ("retries", Json.int c.retries);
                ("failed_after_retries", Json.int c.failed_after_retries);
                ("hedges_launched", Json.int c.hedges_launched);
                ("hedges_cancelled", Json.int c.hedges_cancelled);
                ("inflight_recovered", Json.int c.inflight_recovered);
                ("inflight_lost", Json.int c.inflight_lost);
                ("transitions", Json.int (List.length c.transitions));
              ] );
        ]
  in
  let session_fields =
    match r.sessions with
    | None -> []
    | Some s -> [ ("sessions", Session.report_json s) ]
  in
  Json.Obj
    ([
       ("total", Json.int r.total);
       ("admitted", Json.int r.admitted);
       ("completed", Json.int r.completed);
       ( "rejected",
         Json.Obj
           (List.map
              (fun why ->
                ( rejection_name why,
                  Json.int (List.length (List.filter (fun (_, w) -> w = why) r.rejections)) ))
              [ Queue_full; Shed_lower_priority; Unservable; Failed_after_retries ]) );
       ("makespan_s", Json.Num r.makespan_s);
       ("throughput_rps", Json.Num r.throughput_rps);
       ( "latency_ms",
         Json.Obj
           [
             ("mean", Json.Num (r.mean_latency_s *. 1e3));
             ("p50", Json.Num r.p50_ms);
             ("p95", Json.Num r.p95_ms);
             ("p99", Json.Num r.p99_ms);
             ("max", Json.Num r.max_latency_ms);
           ] );
       ("deadline_misses", Json.int r.deadline_misses);
       ("deadline_miss_rate", Json.Num r.deadline_miss_rate);
       ("queue_depth_max", Json.int r.queue_depth_max);
       ("rerouted_batches", Json.int r.rerouted);
       ("batches", Json.int (List.length r.batches));
       ( "cache",
         Json.Obj
           [
             ("capacity", Json.int cache.Cache.capacity);
             ("entries", Json.int cache.Cache.entries);
             ("hits", Json.int cache.Cache.hits);
             ("misses", Json.int cache.Cache.misses);
             ("evictions", Json.int cache.Cache.evictions);
             ("hit_rate", Json.Num (Cache.hit_rate cache));
           ] );
       ( "fleet",
         Json.Arr
           (List.map
              (fun i ->
                Json.Obj
                  ([
                     ("instance", Json.int i.iidx);
                     ( "masked",
                       match i.imasked with None -> Json.Null | Some c -> Json.Str c );
                     ("served", Json.int i.iserved);
                     ("batches", Json.int i.ibatches);
                     ("busy_s", Json.Num i.ibusy_s);
                     ("utilization", Json.Num i.iutil);
                   ]
                  @
                  if r.chaos = None then []
                  else
                    [
                      ("downtime_s", Json.Num i.idowntime_s);
                      ("crashes", Json.int i.icrashes);
                      ("hangs", Json.int i.ihangs);
                      ("transients", Json.int i.itransients);
                      ("slowdowns", Json.int i.islowdowns);
                      ("restarts", Json.int i.irestarts);
                      ("breaker_opens", Json.int i.ibreaker_opens);
                      ("cold_batches", Json.int i.icold_batches);
                    ]))
              r.fleet) );
       ( "per_app",
         Json.Obj
           (List.map
              (fun (app, done_, miss) ->
                ( app,
                  Json.Obj
                    [ ("completed", Json.int done_); ("deadline_misses", Json.int miss) ] ))
              r.per_app) );
     ]
    @ chaos_fields @ session_fields)

let table r =
  let t = Texttable.create ~title:"Serving campaign" ~headers:[ "metric"; "value" ] in
  let add k v = Texttable.add_row t [ k; v ] in
  add "requests" (string_of_int r.total);
  add "admitted" (string_of_int r.admitted);
  add "completed" (string_of_int r.completed);
  add "rejected" (string_of_int (List.length r.rejections));
  add "makespan" (Printf.sprintf "%.3f ms" (r.makespan_s *. 1e3));
  add "throughput" (Printf.sprintf "%.0f req/s" r.throughput_rps);
  add "latency mean/p50/p95/p99"
    (Printf.sprintf "%.3f / %.3f / %.3f / %.3f ms" (r.mean_latency_s *. 1e3) r.p50_ms r.p95_ms
       r.p99_ms);
  add "deadline misses"
    (Printf.sprintf "%d (%.1f%%)" r.deadline_misses (100.0 *. r.deadline_miss_rate));
  add "queue depth max" (string_of_int r.queue_depth_max);
  add "batches" (string_of_int (List.length r.batches));
  add "rerouted batches" (string_of_int r.rerouted);
  add "cache hit rate"
    (Printf.sprintf "%.1f%% (%d hits, %d misses, %d evictions)"
       (100.0 *. Cache.hit_rate r.cache)
       r.cache.Cache.hits r.cache.Cache.misses r.cache.Cache.evictions);
  (match r.chaos with
  | None -> ()
  | Some c ->
      add "availability" (Printf.sprintf "%.3f%%" (100.0 *. c.availability));
      add "chaos events"
        (Printf.sprintf "%d crash, %d hang, %d transient, %d slowdown" c.crashes c.hangs
           c.transients c.slowdowns);
      add "restarts / breaker opens / cold"
        (Printf.sprintf "%d / %d / %d" c.restarts c.breaker_opens c.cold_batches);
      add "retries / failed-after-retries"
        (Printf.sprintf "%d / %d" c.retries c.failed_after_retries);
      add "hedges launched / cancelled"
        (Printf.sprintf "%d / %d" c.hedges_launched c.hedges_cancelled);
      add "in-flight recovered / lost"
        (Printf.sprintf "%d / %d" c.inflight_recovered c.inflight_lost));
  let f =
    Texttable.create ~title:"Fleet"
      ~headers:[ "instance"; "masked"; "served"; "batches"; "busy"; "util"; "down"; "faults" ]
  in
  List.iter
    (fun i ->
      Texttable.add_row f
        [
          string_of_int i.iidx;
          (match i.imasked with None -> "-" | Some c -> c);
          string_of_int i.iserved;
          string_of_int i.ibatches;
          Printf.sprintf "%.3f ms" (i.ibusy_s *. 1e3);
          Printf.sprintf "%.0f%%" (100.0 *. i.iutil);
          Printf.sprintf "%.3f ms" (i.idowntime_s *. 1e3);
          string_of_int (i.icrashes + i.ihangs + i.itransients + i.islowdowns);
        ])
    r.fleet;
  let base = Texttable.render t ^ "\n" ^ Texttable.render f in
  match r.sessions with None -> base | Some s -> base ^ "\n" ^ Session.table s

let fleet_pid = 2

let chrome_events r =
  let header =
    Chrome_trace.Process_name { pid = fleet_pid; name = "serving fleet" }
    :: List.map
         (fun i ->
           Chrome_trace.Thread_name
             {
               pid = fleet_pid;
               tid = i.iidx;
               name =
                 (match i.imasked with
                 | None -> Printf.sprintf "instance %d" i.iidx
                 | Some c -> Printf.sprintf "instance %d (degraded: %s)" i.iidx c);
             })
         r.fleet
  in
  let slices =
    List.map
      (fun b ->
        Chrome_trace.Duration
          {
            name =
              (if b.bfailed then Printf.sprintf "%s x%d (failed)" b.bapp b.bsize
               else Printf.sprintf "%s x%d" b.bapp b.bsize);
            cat = "serve";
            pid = fleet_pid;
            tid = b.binstance;
            ts_us = b.bstart_s *. 1e6;
            dur_us = (b.bfinish_s -. b.bstart_s) *. 1e6;
            args =
              [
                ("batch", Json.int b.bid);
                ("cache_hit", Json.Bool b.bhit);
                ("rerouted", Json.Bool b.brerouted);
                ("failed", Json.Bool b.bfailed);
              ];
          })
      r.batches
  in
  let queue_series =
    List.map
      (fun (t, d) ->
        Chrome_trace.Counter
          {
            name = "serve.queue_depth";
            pid = fleet_pid;
            ts_us = t *. 1e6;
            series = [ ("depth", float_of_int d) ];
          })
      r.queue_samples
  in
  let misses =
    List.filter (fun c -> c.finish_s > c.request.Request.deadline_s) r.completions
    |> List.sort (fun a b -> compare a.finish_s b.finish_s)
  in
  let miss_series =
    List.mapi
      (fun i c ->
        Chrome_trace.Counter
          {
            name = "serve.deadline_misses";
            pid = fleet_pid;
            ts_us = c.finish_s *. 1e6;
            series = [ ("missed", float_of_int (i + 1)) ];
          })
      misses
  in
  let miss_instants =
    List.map
      (fun c ->
        Chrome_trace.Instant
          {
            name = Printf.sprintf "deadline-miss req#%d" c.request.Request.id;
            cat = "serve";
            pid = fleet_pid;
            tid = c.instance;
            ts_us = c.finish_s *. 1e6;
          })
      misses
  in
  let chaos_instants =
    match r.chaos with
    | None -> []
    | Some c ->
        List.map
          (fun (t, idx, label) ->
            Chrome_trace.Instant
              { name = label; cat = "chaos"; pid = fleet_pid; tid = idx; ts_us = t *. 1e6 })
          c.transitions
  in
  header @ slices @ queue_series @ miss_series @ miss_instants @ chaos_instants
