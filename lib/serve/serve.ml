open Orianna_util
open Orianna_hw
open Orianna_sim
module App = Orianna_apps.App
module Compile = Orianna_compiler.Compile
module Obs = Orianna_obs.Obs
module Json = Orianna_obs.Json
module Chrome_trace = Orianna_obs.Chrome_trace

type config = {
  instances : int;
  masked : (int * Unit_model.unit_class) list;
  policy : Dispatch.policy;
  queue_capacity : int;
  max_batch : int;
  batch_overhead_s : float;
  miss_penalty_s : float;
  cache_capacity : int;
  budget : Resource.t;
  opt_level : int;
}

let default_config =
  {
    instances = 4;
    masked = [];
    policy = Dispatch.Edf;
    queue_capacity = 64;
    max_batch = 8;
    batch_overhead_s = 20e-6;
    miss_penalty_s = 2e-3;
    cache_capacity = 8;
    budget = Resource.zc706;
    opt_level = 1;
  }

type rejection = Queue_full | Shed_lower_priority | Unservable

let rejection_name = function
  | Queue_full -> "queue-full"
  | Shed_lower_priority -> "shed-lower-priority"
  | Unservable -> "unservable"

type completion = {
  request : Request.t;
  instance : int;
  batch : int;
  start_s : float;
  finish_s : float;
  cache_hit : bool;
  rerouted : bool;
}

type batch = {
  bid : int;
  binstance : int;
  bapp : string;
  bsize : int;
  bstart_s : float;
  bfinish_s : float;
  bhit : bool;
  brerouted : bool;
}

type instance_report = {
  iidx : int;
  imasked : string option;
  iserved : int;
  ibatches : int;
  ibusy_s : float;
  iutil : float;
}

type report = {
  total : int;
  admitted : int;
  completed : int;
  rejections : (Request.t * rejection) list;
  completions : completion list;
  batches : batch list;
  makespan_s : float;
  throughput_rps : float;
  mean_latency_s : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_latency_ms : float;
  deadline_misses : int;
  deadline_miss_rate : float;
  queue_depth_max : int;
  queue_samples : (float * int) list;
  rerouted : int;
  cache : Cache.stats;
  fleet : instance_report list;
  per_app : (string * int * int) list;
}

(* One queued request, with its structural cache key (computed at
   admission from the request's own problem instance). *)
type queued = { req : Request.t; key : int32 }

let compile_entry ~budget ~opt_level (req : Request.t) () =
  let app = App.find req.Request.app in
  let graphs = app.App.graphs (Rng.of_int req.Request.seed) in
  let program = Compile.compile_application ~opt_level graphs in
  (* Same -O2 schedule-feedback round as the compile/simulate/profile
     CLI paths (Pipeline.reoptimize); without it, O2 artifacts would be
     byte-identical to O1 while still being cached under a distinct
     (structural key, opt_level) cache key. *)
  let program = if opt_level >= 2 then Trace.reoptimize program else program in
  let dse =
    Dse.optimize ~budget
      ~evaluate:(fun accel ->
        (Schedule.run ~accel ~policy:Schedule.Ooo_full program).Schedule.seconds)
      ()
  in
  (program, dse)

let run ?(config = default_config) ~trace () =
  if config.queue_capacity <= 0 then invalid_arg "Serve.run: queue_capacity must be positive";
  if config.max_batch <= 0 then invalid_arg "Serve.run: max_batch must be positive";
  let trace =
    List.stable_sort
      (fun (a : Request.t) b -> compare (a.Request.arrival_s, a.Request.id) (b.Request.arrival_s, b.Request.id))
      trace
  in
  let arr = Array.of_list trace in
  let n = Array.length arr in
  let fleet = Dispatch.make_fleet ~instances:config.instances ~masked:config.masked in
  let cache = Cache.create ~capacity:config.cache_capacity in
  let clock = ref 0.0 in
  let ai = ref 0 in
  let queue = ref ([] : queued list) in
  let rejections = ref [] in
  let completions = ref [] in
  let batches = ref [] in
  let batch_counter = ref 0 in
  let queue_depth_max = ref 0 in
  let queue_samples = ref [] in
  let rerouted_total = ref 0 in
  let admitted = ref 0 in
  (* Keys whose compile happened but whose miss penalty has not yet
     been charged to a dispatched batch. *)
  let pending_penalty = Hashtbl.create 8 in
  let reject r why =
    rejections := (r, why) :: !rejections;
    Obs.count ("serve.rejected." ^ rejection_name why)
  in
  let sample_queue () =
    let depth = List.length !queue in
    if depth > !queue_depth_max then queue_depth_max := depth;
    (match !queue_samples with
    | (t, d) :: _ when t = !clock && d = depth -> ()
    | _ -> queue_samples := (!clock, depth) :: !queue_samples);
    Obs.set_gauge "serve.queue_depth" (float_of_int depth)
  in
  let admit (r : Request.t) =
    match App.find r.Request.app with
    | exception Not_found -> reject r Unservable
    | app ->
        let key =
          Cache.structural_key ~opt_level:config.opt_level
            (app.App.graphs (Rng.of_int r.Request.seed))
        in
        let q = { req = r; key } in
        if List.length !queue >= config.queue_capacity then begin
          (* Shed-on-overload: a strictly lower-priority queued request
             with the slackest deadline makes room; otherwise the
             arrival itself is turned away. *)
          let rank q = Request.priority_rank q.req.Request.priority in
          let victim =
            List.fold_left
              (fun acc cand ->
                if rank cand >= Request.priority_rank r.Request.priority then acc
                else
                  match acc with
                  | Some best
                    when (rank best, -.best.req.Request.deadline_s, -best.req.Request.id)
                         <= (rank cand, -.cand.req.Request.deadline_s, -cand.req.Request.id) ->
                      acc
                  | _ -> Some cand)
              None !queue
          in
          match victim with
          | Some v ->
              queue := List.filter (fun q -> q.req.Request.id <> v.req.Request.id) !queue @ [ q ];
              admitted := !admitted + 1;
              Obs.count "serve.admitted";
              reject v.req Shed_lower_priority
          | None -> reject r Queue_full
        end
        else begin
          queue := !queue @ [ q ];
          admitted := !admitted + 1;
          Obs.count "serve.admitted"
        end
  in
  let dispatch_batch (head : queued) (hit : bool) (inst : Dispatch.instance)
      (per_req_s : float) (was_rerouted : bool) =
    let batch_reqs, rest =
      Dispatch.take_batch ~max_batch:config.max_batch ~key:head.key (fun q -> q.key) !queue
    in
    queue := rest;
    let penalty =
      if Hashtbl.mem pending_penalty head.key then begin
        Hashtbl.remove pending_penalty head.key;
        config.miss_penalty_s
      end
      else 0.0
    in
    let start = !clock in
    let overhead = config.batch_overhead_s +. penalty in
    let bid = !batch_counter in
    incr batch_counter;
    let finish_last = ref start in
    List.iteri
      (fun i q ->
        let finish = start +. overhead +. (float_of_int (i + 1) *. per_req_s) in
        finish_last := finish;
        completions :=
          {
            request = q.req;
            instance = inst.Dispatch.idx;
            batch = bid;
            start_s = start;
            finish_s = finish;
            cache_hit = hit;
            rerouted = was_rerouted;
          }
          :: !completions;
        Obs.count "serve.completed";
        Obs.observe "serve.latency_ms" ((finish -. q.req.Request.arrival_s) *. 1e3);
        Obs.observe "serve.wait_ms" ((start -. q.req.Request.arrival_s) *. 1e3);
        if finish > q.req.Request.deadline_s then Obs.count "serve.deadline_miss")
      batch_reqs;
    inst.Dispatch.busy_until_s <- !finish_last;
    inst.Dispatch.busy_total_s <- inst.Dispatch.busy_total_s +. (!finish_last -. start);
    inst.Dispatch.served <- inst.Dispatch.served + List.length batch_reqs;
    inst.Dispatch.batches <- inst.Dispatch.batches + 1;
    if was_rerouted then begin
      incr rerouted_total;
      Obs.count "serve.rerouted"
    end;
    Obs.count "serve.batches";
    batches :=
      {
        bid;
        binstance = inst.Dispatch.idx;
        bapp = head.req.Request.app;
        bsize = List.length batch_reqs;
        bstart_s = start;
        bfinish_s = !finish_last;
        bhit = hit;
        brerouted = was_rerouted;
      }
      :: !batches
  in
  let try_dispatch () =
    if !queue = [] then false
    else begin
      let ordered = Dispatch.select config.policy !queue ~key:(fun q -> q.req) in
      let rec walk seen = function
        | [] -> false
        | q :: rest when List.mem q.key seen -> walk seen rest
        | q :: rest -> (
            let hit, entry =
              Cache.find_or_add cache q.key (fun () ->
                  let p, d = compile_entry ~budget:config.budget ~opt_level:config.opt_level q.req () in
                  Hashtbl.replace pending_penalty q.key ();
                  (p, d))
            in
            match Dispatch.choose_instance config.policy fleet ~now_s:!clock ~entry with
            | Some (inst, per_req_s, was_rerouted) ->
                dispatch_batch q hit inst per_req_s was_rerouted;
                true
            | None ->
                if Dispatch.can_any_serve fleet entry then walk (q.key :: seen) rest
                else begin
                  (* No instance, busy or free, can ever execute this
                     program: structured rejection instead of livelock. *)
                  let doomed, rest_q = List.partition (fun c -> c.key = q.key) !queue in
                  queue := rest_q;
                  List.iter (fun c -> reject c.req Unservable) doomed;
                  true
                end)
      in
      walk [] ordered
    end
  in
  let advance () =
    let next_arrival = if !ai < n then Some arr.(!ai).Request.arrival_s else None in
    let next_free =
      Array.fold_left
        (fun acc (i : Dispatch.instance) ->
          if i.Dispatch.busy_until_s > !clock then
            match acc with
            | Some t when t <= i.Dispatch.busy_until_s -> acc
            | _ -> Some i.Dispatch.busy_until_s
          else acc)
        None (Dispatch.instances fleet)
    in
    let next =
      match (next_arrival, next_free) with
      | None, t | t, None -> t
      | Some a, Some f -> Some (Float.min a f)
    in
    match next with
    | Some t ->
        clock := Float.max !clock t;
        true
    | None -> false
  in
  while !ai < n || !queue <> [] do
    while !ai < n && arr.(!ai).Request.arrival_s <= !clock do
      admit arr.(!ai);
      incr ai
    done;
    sample_queue ();
    if not (try_dispatch ()) then
      if not (advance ()) then begin
        (* No future event can unblock the queue (defensive: reachable
           only if every instance is idle yet incapable, which
           [try_dispatch] already rejects). *)
        List.iter (fun q -> reject q.req Unservable) !queue;
        queue := []
      end
  done;
  sample_queue ();
  let completions =
    List.sort (fun a b -> compare a.request.Request.id b.request.Request.id) !completions
  in
  let batches = List.rev !batches in
  let rejections = List.rev !rejections in
  let completed = List.length completions in
  let latencies =
    Array.of_list (List.map (fun c -> c.finish_s -. c.request.Request.arrival_s) completions)
  in
  let makespan_s = List.fold_left (fun acc c -> Float.max acc c.finish_s) 0.0 completions in
  let deadline_misses =
    List.length (List.filter (fun c -> c.finish_s > c.request.Request.deadline_s) completions)
  in
  (* Latency percentiles go through the shared log-bucketed histogram
     (one quantile implementation repo-wide); error vs the exact sorted
     percentile is bounded by one bucket width. *)
  let lat_hist =
    let h = Obs.Hist.create () in
    Array.iter (fun l -> Obs.Hist.add h (l *. 1e3)) latencies;
    Obs.snapshot_hist h
  in
  let pctl p = if Array.length latencies = 0 then 0.0 else Obs.quantile lat_hist p in
  let per_app =
    List.fold_left
      (fun acc c ->
        let app = c.request.Request.app in
        let done_, miss = try List.assoc app acc with Not_found -> (0, 0) in
        (app, (done_ + 1, miss + if c.finish_s > c.request.Request.deadline_s then 1 else 0))
        :: List.remove_assoc app acc)
      [] completions
    |> List.map (fun (app, (d, m)) -> (app, d, m))
    |> List.sort compare
  in
  let report =
    {
      total = n;
      admitted = !admitted;
      completed;
      rejections;
      completions;
      batches;
      makespan_s;
      throughput_rps = (if makespan_s > 0.0 then float_of_int completed /. makespan_s else 0.0);
      mean_latency_s = Stats.mean latencies;
      p50_ms = pctl 50.0;
      p95_ms = pctl 95.0;
      p99_ms = pctl 99.0;
      max_latency_ms = (if Array.length latencies = 0 then 0.0 else Stats.max latencies *. 1e3);
      deadline_misses;
      deadline_miss_rate =
        (if completed = 0 then 0.0 else float_of_int deadline_misses /. float_of_int completed);
      queue_depth_max = !queue_depth_max;
      queue_samples = List.rev !queue_samples;
      rerouted = !rerouted_total;
      cache = Cache.stats cache;
      fleet =
        Array.to_list (Dispatch.instances fleet)
        |> List.map (fun (i : Dispatch.instance) ->
               {
                 iidx = i.Dispatch.idx;
                 imasked = Option.map Unit_model.class_name i.Dispatch.masked;
                 iserved = i.Dispatch.served;
                 ibatches = i.Dispatch.batches;
                 ibusy_s = i.Dispatch.busy_total_s;
                 iutil =
                   (if makespan_s > 0.0 then i.Dispatch.busy_total_s /. makespan_s else 0.0);
               });
      per_app;
    }
  in
  Obs.set_gauge "serve.deadline_miss_rate" report.deadline_miss_rate;
  Obs.set_gauge "serve.cache.hit_rate" (Cache.hit_rate report.cache);
  Obs.set_gauge "serve.throughput_rps" report.throughput_rps;
  report

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let report_json r =
  let cache = r.cache in
  Json.Obj
    [
      ("total", Json.int r.total);
      ("admitted", Json.int r.admitted);
      ("completed", Json.int r.completed);
      ( "rejected",
        Json.Obj
          (List.map
             (fun why ->
               ( rejection_name why,
                 Json.int (List.length (List.filter (fun (_, w) -> w = why) r.rejections)) ))
             [ Queue_full; Shed_lower_priority; Unservable ]) );
      ("makespan_s", Json.Num r.makespan_s);
      ("throughput_rps", Json.Num r.throughput_rps);
      ( "latency_ms",
        Json.Obj
          [
            ("mean", Json.Num (r.mean_latency_s *. 1e3));
            ("p50", Json.Num r.p50_ms);
            ("p95", Json.Num r.p95_ms);
            ("p99", Json.Num r.p99_ms);
            ("max", Json.Num r.max_latency_ms);
          ] );
      ("deadline_misses", Json.int r.deadline_misses);
      ("deadline_miss_rate", Json.Num r.deadline_miss_rate);
      ("queue_depth_max", Json.int r.queue_depth_max);
      ("rerouted_batches", Json.int r.rerouted);
      ("batches", Json.int (List.length r.batches));
      ( "cache",
        Json.Obj
          [
            ("capacity", Json.int cache.Cache.capacity);
            ("entries", Json.int cache.Cache.entries);
            ("hits", Json.int cache.Cache.hits);
            ("misses", Json.int cache.Cache.misses);
            ("evictions", Json.int cache.Cache.evictions);
            ("hit_rate", Json.Num (Cache.hit_rate cache));
          ] );
      ( "fleet",
        Json.Arr
          (List.map
             (fun i ->
               Json.Obj
                 [
                   ("instance", Json.int i.iidx);
                   ( "masked",
                     match i.imasked with None -> Json.Null | Some c -> Json.Str c );
                   ("served", Json.int i.iserved);
                   ("batches", Json.int i.ibatches);
                   ("busy_s", Json.Num i.ibusy_s);
                   ("utilization", Json.Num i.iutil);
                 ])
             r.fleet) );
      ( "per_app",
        Json.Obj
          (List.map
             (fun (app, done_, miss) ->
               ( app,
                 Json.Obj
                   [ ("completed", Json.int done_); ("deadline_misses", Json.int miss) ] ))
             r.per_app) );
    ]

let table r =
  let t = Texttable.create ~title:"Serving campaign" ~headers:[ "metric"; "value" ] in
  let add k v = Texttable.add_row t [ k; v ] in
  add "requests" (string_of_int r.total);
  add "admitted" (string_of_int r.admitted);
  add "completed" (string_of_int r.completed);
  add "rejected" (string_of_int (List.length r.rejections));
  add "makespan" (Printf.sprintf "%.3f ms" (r.makespan_s *. 1e3));
  add "throughput" (Printf.sprintf "%.0f req/s" r.throughput_rps);
  add "latency mean/p50/p95/p99"
    (Printf.sprintf "%.3f / %.3f / %.3f / %.3f ms" (r.mean_latency_s *. 1e3) r.p50_ms r.p95_ms
       r.p99_ms);
  add "deadline misses"
    (Printf.sprintf "%d (%.1f%%)" r.deadline_misses (100.0 *. r.deadline_miss_rate));
  add "queue depth max" (string_of_int r.queue_depth_max);
  add "batches" (string_of_int (List.length r.batches));
  add "rerouted batches" (string_of_int r.rerouted);
  add "cache hit rate"
    (Printf.sprintf "%.1f%% (%d hits, %d misses, %d evictions)"
       (100.0 *. Cache.hit_rate r.cache)
       r.cache.Cache.hits r.cache.Cache.misses r.cache.Cache.evictions);
  let f = Texttable.create ~title:"Fleet" ~headers:[ "instance"; "masked"; "served"; "batches"; "busy"; "util" ] in
  List.iter
    (fun i ->
      Texttable.add_row f
        [
          string_of_int i.iidx;
          (match i.imasked with None -> "-" | Some c -> c);
          string_of_int i.iserved;
          string_of_int i.ibatches;
          Printf.sprintf "%.3f ms" (i.ibusy_s *. 1e3);
          Printf.sprintf "%.0f%%" (100.0 *. i.iutil);
        ])
    r.fleet;
  Texttable.render t ^ "\n" ^ Texttable.render f

let fleet_pid = 2

let chrome_events r =
  let header =
    Chrome_trace.Process_name { pid = fleet_pid; name = "serving fleet" }
    :: List.map
         (fun i ->
           Chrome_trace.Thread_name
             {
               pid = fleet_pid;
               tid = i.iidx;
               name =
                 (match i.imasked with
                 | None -> Printf.sprintf "instance %d" i.iidx
                 | Some c -> Printf.sprintf "instance %d (degraded: %s)" i.iidx c);
             })
         r.fleet
  in
  let slices =
    List.map
      (fun b ->
        Chrome_trace.Duration
          {
            name = Printf.sprintf "%s x%d" b.bapp b.bsize;
            cat = "serve";
            pid = fleet_pid;
            tid = b.binstance;
            ts_us = b.bstart_s *. 1e6;
            dur_us = (b.bfinish_s -. b.bstart_s) *. 1e6;
            args =
              [
                ("batch", Json.int b.bid);
                ("cache_hit", Json.Bool b.bhit);
                ("rerouted", Json.Bool b.brerouted);
              ];
          })
      r.batches
  in
  let queue_series =
    List.map
      (fun (t, d) ->
        Chrome_trace.Counter
          {
            name = "serve.queue_depth";
            pid = fleet_pid;
            ts_us = t *. 1e6;
            series = [ ("depth", float_of_int d) ];
          })
      r.queue_samples
  in
  let misses =
    List.filter (fun c -> c.finish_s > c.request.Request.deadline_s) r.completions
    |> List.sort (fun a b -> compare a.finish_s b.finish_s)
  in
  let miss_series =
    List.mapi
      (fun i c ->
        Chrome_trace.Counter
          {
            name = "serve.deadline_misses";
            pid = fleet_pid;
            ts_us = c.finish_s *. 1e6;
            series = [ ("missed", float_of_int (i + 1)) ];
          })
      misses
  in
  let miss_instants =
    List.map
      (fun c ->
        Chrome_trace.Instant
          {
            name = Printf.sprintf "deadline-miss req#%d" c.request.Request.id;
            cat = "serve";
            pid = fleet_pid;
            tid = c.instance;
            ts_us = c.finish_s *. 1e6;
          })
      misses
  in
  header @ slices @ queue_series @ miss_series @ miss_instants
