(** The multi-tenant serving runtime: a deterministic discrete-event
    simulation of many clients sharing a fleet of generated
    accelerators.

    Layered on the existing pipeline (compile → generate → simulate),
    the runtime adds what one-shot invocation lacks: a
    content-addressed {!Cache} so repeated templates skip compilation
    and hardware generation entirely, a bounded admission queue with
    priority-aware shed-on-overload, and a {!Dispatch} batcher that
    groups same-program requests and routes batches across the fleet
    under a pluggable policy, rerouting around degraded instances.

    With a {!Chaos.config} attached, the fleet additionally suffers
    seeded crash / hang / transient / slowdown faults on the virtual
    clock: heartbeat-based health detection and per-instance circuit
    breakers steer traffic away from sick instances, in-flight work on
    a failed instance is recovered and re-dispatched under a
    per-request retry budget with deadline-aware backoff (optionally
    hedged near the deadline), and instances return after a modelled
    restart latency with a cold compile cache.  Every admitted request
    still ends in exactly one structured terminal state.

    Time is a virtual clock advanced from {!Orianna_sim.Schedule.run}
    makespans, so a campaign is bit-for-bit reproducible from its
    trace: no wall-clock value enters the report.  When telemetry is
    enabled, throughput, latency, queue depth, reroutes, cache and
    fault-tolerance behaviour are mirrored into {!Orianna_obs.Obs}. *)

open Orianna_hw

type config = {
  instances : int;  (** fleet size *)
  masked : (int * Unit_model.unit_class) list;
      (** degraded instances: (fleet index, failed unit class) *)
  policy : Dispatch.policy;
  queue_capacity : int;  (** admission-queue bound (retries are exempt) *)
  max_batch : int;  (** largest same-program batch *)
  batch_overhead_s : float;  (** per-batch dispatch / reconfiguration cost *)
  miss_penalty_s : float;
      (** modeled compile + generate latency charged to the batch that
          triggers a cache miss *)
  cache_capacity : int;
  budget : Resource.t;  (** hardware-generation budget on a miss *)
  opt_level : int;
      (** instruction-stream optimization level used for compiles on a
          cache miss; mixed into the cache key so entries compiled at
          different levels never alias *)
  chaos : Chaos.config option;  (** [None]: fault-free, identical to the pre-chaos DES *)
  max_retries : int;  (** re-dispatches allowed per request copy after a failure *)
  retry_backoff_s : float;  (** base of the exponential retry backoff *)
  hedge : bool;  (** duplicate near-deadline retries; first completion wins *)
  hedge_slack_s : float;  (** remaining slack below which a retry hedges *)
  heartbeat_interval_s : float;  (** one missed heartbeat flips Up -> Suspect *)
  heartbeat_timeout_s : float;  (** hang detection latency (-> Down + failover) *)
  breaker_threshold : int;  (** consecutive failures that trip a closed breaker *)
  breaker_cooldown_s : float;  (** initial open interval; doubles per reopen *)
}

val default_config : config
(** 4 instances, none masked, EDF, queue of 64, batches of 8, 20 µs
    batch overhead, 2 ms miss penalty, 8 cache entries, ZC706, O1; no
    chaos, 2 retries with 100 µs base backoff, hedging off, 250 µs
    heartbeats with a 1 ms timeout, breaker trips at 3 failures with a
    1 ms cooldown. *)

type rejection =
  | Queue_full  (** arrived over a full queue with no lower-priority victim *)
  | Shed_lower_priority  (** evicted from the queue by a higher-priority arrival *)
  | Unservable
      (** unknown app, or no live fleet instance can (or will ever again)
          execute the program *)
  | Failed_after_retries  (** recovered from failed instances until the retry budget ran out *)

val rejection_name : rejection -> string

type completion = {
  request : Request.t;
  instance : int;
  batch : int;
  start_s : float;  (** batch dispatch time *)
  finish_s : float;
  cache_hit : bool;
  rerouted : bool;
  attempts : int;  (** dispatch attempts consumed before this one (0 = first try) *)
  hedged : bool;  (** completed copy was a hedged duplicate *)
}

type batch = {
  bid : int;
  binstance : int;
  bapp : string;
  bsize : int;
  bstart_s : float;
  bfinish_s : float;  (** for a failed batch: the failure time *)
  bhit : bool;
  brerouted : bool;
  bfailed : bool;  (** instance failed mid-batch; uncommitted requests recovered *)
}

type instance_report = {
  iidx : int;
  imasked : string option;  (** failed unit class name *)
  iserved : int;
  ibatches : int;
  ibusy_s : float;
  iutil : float;  (** busy / makespan *)
  idowntime_s : float;  (** unavailable time within the makespan *)
  icrashes : int;
  ihangs : int;
  itransients : int;
  islowdowns : int;
  irestarts : int;
  ibreaker_opens : int;
  icold_batches : int;  (** post-restart batches that paid the cold-cache penalty *)
}

type chaos_report = {
  crashes : int;
  hangs : int;
  transients : int;
  slowdowns : int;
  restarts : int;
  breaker_opens : int;
  cold_batches : int;
  retries : int;  (** recovered copies re-enqueued *)
  failed_after_retries : int;  (** ids whose every copy exhausted the budget *)
  hedges_launched : int;
  hedges_cancelled : int;  (** losing copies cancelled after the first completion *)
  inflight_recovered : int;  (** ids recovered from a failed instance that completed *)
  inflight_lost : int;  (** ids recovered from a failed instance that ended failed *)
  availability : float;  (** 1 - downtime / (instances x makespan), in [0, 1] *)
  transitions : (float * int * string) list;
      (** (virtual time, instance, label) health / breaker transitions, in order *)
}

type report = {
  total : int;
  admitted : int;
  completed : int;
  rejections : (Request.t * rejection) list;  (** rejection order *)
  completions : completion list;  (** request-id order; one per id, always *)
  batches : batch list;  (** dispatch (bid) order *)
  makespan_s : float;
  throughput_rps : float;
  mean_latency_s : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_latency_ms : float;
  deadline_misses : int;
  deadline_miss_rate : float;  (** misses / completed; 0 when none completed *)
  queue_depth_max : int;
  queue_samples : (float * int) list;  (** (virtual time, depth) *)
  rerouted : int;
      (** batches placed away from the policy's first choice; the
          [serve.rerouted] Obs counter is derived from this same count *)
  cache : Cache.stats;
  fleet : instance_report list;
  per_app : (string * int * int) list;  (** app, completed, deadline misses *)
  chaos : chaos_report option;  (** present iff the config carried a chaos model *)
  sessions : Session.report option;  (** present iff a session layer was attached *)
}

val run : ?config:config -> ?sessions:Session.t -> trace:Request.t list -> unit -> report
(** Replay one arrival trace to completion.  Every admitted request
    ends in exactly one terminal state — completed, shed, unservable,
    or failed-after-retries — even under chaos; nothing is lost
    silently, and no request completes twice (hedged duplicates are
    cancelled at the first completion).

    With [sessions] attached, the session layer's mission ticks are
    merged into the trace by arrival time and executed through the
    same queue/batch/dispatch machinery: each tick folds one
    measurement delta into its session's incremental smoother and is
    charged service time proportional to the affected re-elimination
    work on the session's compiled template program.  Without
    [sessions], behavior (and the report, byte for byte) is identical
    to the session-free runtime; tick requests are then rejected as
    unservable. *)

val report_json : report -> Orianna_obs.Json.t
(** Deterministic machine-readable summary (no wall-clock content);
    embedded under ["serve"] in {!Orianna_obs.Report} exports so serve
    and profile reports share one shape. *)

val table : report -> string
(** Human-readable summary tables. *)

val chrome_events : report -> Orianna_obs.Chrome_trace.event list
(** Per-instance batch tracks (failed batches marked) plus queue-depth
    and cumulative deadline-miss counter series and chaos/health
    transition instants (one virtual second maps to one trace
    second). *)
