(** The multi-tenant serving runtime: a deterministic discrete-event
    simulation of many clients sharing a fleet of generated
    accelerators.

    Layered on the existing pipeline (compile → generate → simulate),
    the runtime adds what one-shot invocation lacks: a
    content-addressed {!Cache} so repeated templates skip compilation
    and hardware generation entirely, a bounded admission queue with
    priority-aware shed-on-overload, and a {!Dispatch} batcher that
    groups same-program requests and routes batches across the fleet
    under a pluggable policy, rerouting around degraded instances.

    Time is a virtual clock advanced from {!Orianna_sim.Schedule.run}
    makespans, so a campaign is bit-for-bit reproducible from its
    trace: no wall-clock value enters the report.  When telemetry is
    enabled, throughput, latency, queue depth, reroutes and cache
    behaviour are mirrored into {!Orianna_obs.Obs}. *)

open Orianna_hw

type config = {
  instances : int;  (** fleet size *)
  masked : (int * Unit_model.unit_class) list;
      (** degraded instances: (fleet index, failed unit class) *)
  policy : Dispatch.policy;
  queue_capacity : int;  (** admission-queue bound *)
  max_batch : int;  (** largest same-program batch *)
  batch_overhead_s : float;  (** per-batch dispatch / reconfiguration cost *)
  miss_penalty_s : float;
      (** modeled compile + generate latency charged to the batch that
          triggers a cache miss *)
  cache_capacity : int;
  budget : Resource.t;  (** hardware-generation budget on a miss *)
  opt_level : int;
      (** instruction-stream optimization level used for compiles on a
          cache miss; mixed into the cache key so entries compiled at
          different levels never alias *)
}

val default_config : config
(** 4 instances, none masked, EDF, queue of 64, batches of 8, 20 µs
    batch overhead, 2 ms miss penalty, 8 cache entries, ZC706, O1. *)

type rejection =
  | Queue_full  (** arrived over a full queue with no lower-priority victim *)
  | Shed_lower_priority  (** evicted from the queue by a higher-priority arrival *)
  | Unservable  (** unknown app, or no fleet instance can execute the program *)

val rejection_name : rejection -> string

type completion = {
  request : Request.t;
  instance : int;
  batch : int;
  start_s : float;  (** batch dispatch time *)
  finish_s : float;
  cache_hit : bool;
  rerouted : bool;
}

type batch = {
  bid : int;
  binstance : int;
  bapp : string;
  bsize : int;
  bstart_s : float;
  bfinish_s : float;
  bhit : bool;
  brerouted : bool;
}

type instance_report = {
  iidx : int;
  imasked : string option;  (** failed unit class name *)
  iserved : int;
  ibatches : int;
  ibusy_s : float;
  iutil : float;  (** busy / makespan *)
}

type report = {
  total : int;
  admitted : int;
  completed : int;
  rejections : (Request.t * rejection) list;  (** rejection order *)
  completions : completion list;  (** request-id order *)
  batches : batch list;  (** dispatch order *)
  makespan_s : float;
  throughput_rps : float;
  mean_latency_s : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_latency_ms : float;
  deadline_misses : int;
  deadline_miss_rate : float;  (** misses / completed; 0 when none completed *)
  queue_depth_max : int;
  queue_samples : (float * int) list;  (** (virtual time, depth) *)
  rerouted : int;  (** batches placed away from the policy's first choice *)
  cache : Cache.stats;
  fleet : instance_report list;
  per_app : (string * int * int) list;  (** app, completed, deadline misses *)
}

val run : ?config:config -> trace:Request.t list -> unit -> report
(** Replay one arrival trace to completion.  Every admitted request is
    either completed or structurally rejected; nothing is lost. *)

val report_json : report -> Orianna_obs.Json.t
(** Deterministic machine-readable summary (no wall-clock content);
    embedded under ["serve"] in {!Orianna_obs.Report} exports so serve
    and profile reports share one shape. *)

val table : report -> string
(** Human-readable summary tables. *)

val chrome_events : report -> Orianna_obs.Chrome_trace.event list
(** Per-instance batch tracks plus queue-depth and cumulative
    deadline-miss counter series (one virtual second maps to one trace
    second). *)
