open Orianna_util
open Orianna_isa
open Orianna_hw
module Graph = Orianna_fg.Graph
module Var = Orianna_fg.Var
module Factor = Orianna_fg.Factor
module Obs = Orianna_obs.Obs

type entry = { program : Program.t; dse : Dse.result; program_hash : int32 }

type slot = { entry : entry; mutable last_used : int }

type t = {
  capacity : int;
  slots : (int32, slot) Hashtbl.t;
  mutable tick : int;  (** logical LRU clock *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  { capacity; slots = Hashtbl.create (2 * capacity); tick = 0; hits = 0; misses = 0; evictions = 0 }

let structural_key ?(opt_level = 1) graphs =
  let buf = Buffer.create 4096 in
  let var_kind g name =
    match Graph.value g name with
    | Var.Pose2 _ -> "p2"
    | Var.Pose3 _ -> "p3"
    | Var.Se3 _ -> "se3"
    | Var.Vector v -> "v" ^ string_of_int (Orianna_linalg.Vec.dim v)
  in
  List.iter
    (fun (gname, g) ->
      Buffer.add_string buf "G|";
      Buffer.add_string buf gname;
      Buffer.add_char buf '\n';
      List.iter
        (fun v ->
          Buffer.add_string buf "V|";
          Buffer.add_string buf v;
          Buffer.add_char buf '|';
          Buffer.add_string buf (var_kind g v);
          Buffer.add_char buf '\n')
        (Graph.variables g);
      List.iter
        (fun f ->
          Buffer.add_string buf "F|";
          Buffer.add_string buf (Factor.name f);
          Buffer.add_char buf '|';
          Buffer.add_string buf (String.concat "," (Factor.vars f));
          Buffer.add_char buf '|';
          Buffer.add_string buf (string_of_int (Factor.error_dim f));
          Buffer.add_char buf '\n')
        (Graph.factors g))
    graphs;
  (* The optimizer changes the compiled artifact (and its
     [Program.hash]) without changing the template, so the cache key
     is the pair (structural key, opt_level): entries compiled at
     different levels must not alias.  Clamped to the effective level
     (0 = off, 1 = static pipeline, 2 = one schedule-feedback round,
     3+ = profile-guided fixpoint): levels that produce identical
     artifacts must share one entry. *)
  let effective =
    if opt_level <= 0 then 0 else if opt_level = 1 then 1 else if opt_level = 2 then 2 else 3
  in
  Buffer.add_string buf "O|";
  Buffer.add_string buf (string_of_int effective);
  Buffer.add_char buf '\n';
  Int32.of_int (Checksum.crc32 (Buffer.contents buf) land 0xFFFFFFFF)

let program_key = Program.hash

let touch t slot =
  t.tick <- t.tick + 1;
  slot.last_used <- t.tick

let find t key =
  match Hashtbl.find_opt t.slots key with
  | Some slot ->
      touch t slot;
      Some slot.entry
  | None -> None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key slot acc ->
        match acc with
        | Some (_, best) when best.last_used <= slot.last_used -> acc
        | _ -> Some (key, slot))
      t.slots None
  in
  Option.iter
    (fun (key, _) ->
      Hashtbl.remove t.slots key;
      t.evictions <- t.evictions + 1;
      Obs.count "serve.cache.evict")
    victim

let find_or_add t key compile =
  match Hashtbl.find_opt t.slots key with
  | Some slot ->
      touch t slot;
      t.hits <- t.hits + 1;
      Obs.count "serve.cache.hit";
      (true, slot.entry)
  | None ->
      t.misses <- t.misses + 1;
      Obs.count "serve.cache.miss";
      let program, dse = compile () in
      let entry = { program; dse; program_hash = Program.hash program } in
      if Hashtbl.length t.slots >= t.capacity then evict_lru t;
      let slot = { entry; last_used = 0 } in
      touch t slot;
      Hashtbl.replace t.slots key slot;
      (false, entry)

type stats = { capacity : int; entries : int; hits : int; misses : int; evictions : int }

let stats (t : t) =
  {
    capacity = t.capacity;
    entries = Hashtbl.length t.slots;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
  }

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
