(** Batching and fleet routing for the serving runtime.

    The dispatcher owns an N-instance accelerator fleet.  Each
    instance is an independent reconfigurable slot that can load any
    generated accelerator; an instance may be {e degraded} — one unit
    instance of some class failed and masked out via
    {!Orianna_hw.Accel.with_masked} — in which case programs it can
    still serve run slower, and programs whose required class has no
    live instance left cannot be placed on it at all (the dispatcher
    reroutes them to a healthy peer).

    Service times come from the cycle-level simulator: one request's
    service on an instance is the {!Orianna_sim.Schedule.run} makespan
    of the cached program on the instance's (possibly masked)
    accelerator, memoized per (program, mask) pair. *)

open Orianna_hw

type policy = Fifo | Edf | Least_loaded
(** Request-selection / placement policy:
    - [Fifo]: requests in arrival order, instance free earliest;
    - [Edf]: earliest absolute deadline first, instance free earliest;
    - [Least_loaded]: arrival order, instance with the least
      accumulated busy time. *)

val policy_name : policy -> string

val policy_of_string : string -> policy option

type instance = {
  idx : int;
  masked : Unit_model.unit_class option;  (** degraded: one failed unit of this class *)
  mutable busy_until_s : float;
  mutable busy_total_s : float;
  mutable served : int;  (** requests completed *)
  mutable batches : int;
}

type fleet

val make_fleet : instances:int -> masked:(int * Unit_model.unit_class) list -> fleet
(** [instances] must be positive; [masked] lists per-instance failed
    unit classes (instance indices out of range are rejected). *)

val instances : fleet -> instance array

val service_time_s : fleet -> instance -> Cache.entry -> float option
(** Makespan in seconds of one request of this program on this
    instance, or [None] if the instance cannot serve it (its masked
    accelerator drops the last unit of a class the program needs).
    Memoized. *)

val select : policy -> 'a list -> key:('a -> Request.t) -> 'a list
(** Queue contents reordered by the policy's request-selection rule
    (stable; ties broken by request id). *)

val take_batch :
  max_batch:int ->
  key:int32 ->
  keyof:('a -> int32) ->
  idof:('a -> int) ->
  ready:('a -> bool) ->
  'a list ->
  'a list * 'a list
(** [take_batch ~max_batch ~key ~keyof ~idof ~ready queue] splits the
    queue into up to [max_batch] elements with structural key [key]
    that are [ready] (e.g. past their retry-backoff time), never
    taking two elements with the same request id into one batch
    (hedged duplicates must ride separate batches), and the rest
    (order preserved). *)

val choose_instance :
  ?usable:(instance -> bool) ->
  policy ->
  fleet ->
  now_s:float ->
  entry:Cache.entry ->
  (instance * float * bool) option
(** Route one batch: among instances free at [now_s] that are [usable]
    (default: all — chaos mode passes health + circuit-breaker state
    here) and can serve the program, pick per policy; returns the
    instance, its per-request service time, and whether the batch was
    {e rerouted} (the policy's first choice could not serve the
    program and a peer was substituted).  [None] when no free usable
    instance can serve it. *)

val can_any_serve : ?alive:(instance -> bool) -> fleet -> Cache.entry -> bool
(** True if at least one [alive] instance (busy or free; default: all)
    can serve the program — false means the program is unservable by
    this fleet and its requests must be rejected rather than waited on
    forever.  Chaos mode passes [alive] excluding permanently dead
    instances so a fleet that loses its last capable instance mid-run
    starts rejecting [Unservable] instead of queueing forever. *)
