(** Deterministic fleet-level chaos injection for the serving DES.

    Fault events (instance crash / hang / transient error / slowdown)
    are drawn at virtual times from independent split-table RNG
    streams — one per (instance, kind) — so the schedule is a pure
    function of the seed and rates, bit-identical at any [-j] count,
    and a change to one rate never perturbs another stream's draws.
    Per-instance health, circuit-breaker, and restart state live here
    too so [Serve] and the fault campaign share one model. *)

type kind = Crash | Hang | Transient | Slowdown

val kind_name : kind -> string

type config = {
  crash_rate_hz : float;  (** fail-stop; in-flight work is recovered *)
  hang_rate_hz : float;  (** silent stall, found by heartbeat timeout *)
  transient_rate_hz : float;  (** one-shot batch failure, node stays up *)
  slowdown_rate_hz : float;  (** temporary service-time inflation *)
  slowdown_factor : float;
  slowdown_duration_s : float;
  restart_mean_s : float;  (** MTTR: mean of the exponential restart latency *)
  restart : bool;  (** [false]: a crashed/hung instance never returns *)
  cold_penalty_s : float;  (** first post-restart batch per program pays this *)
  scripted : (float * int * kind) list;
      (** deterministic extra events [(virtual time, instance, kind)] for tests *)
  seed : int;
}

val default : config
(** All rates zero (chaos disabled), restart enabled, MTTR 2 ms. *)

val of_intensity : ?seed:int -> ?mttr_s:float -> float -> config
(** [of_intensity x] derives a full rate mix from one intensity knob:
    crash rate targets steady-state per-instance unavailability
    [x /. (1. +. x)], hangs at half, transients at twice, and
    slowdowns at the crash rate. [x <= 0.] disables chaos. *)

val enabled : config -> bool

(** {1 Event schedule} *)

type event = { at_s : float; instance : int; kind : kind }

type t

val make : config -> instances:int -> t

val peek : t -> event option
(** Earliest pending event (ties broken by instance then kind), without
    consuming it. [None] once all streams are exhausted/disabled. *)

val pop : t -> event option
(** [peek] + consume: scripted events are dequeued, stochastic streams
    advance by a fresh exponential gap. *)

val restart_latency_s : t -> int -> float
(** Seeded restart latency draw (mean [restart_mean_s]) for an instance,
    from its dedicated restart stream. *)

(** {1 Node state: health, breaker, downtime} *)

type health = Up | Suspect | Down

val health_name : health -> string

type breaker = Closed | Open_until of float | Half_open

val breaker_name : breaker -> string

type node = {
  nidx : int;
  mutable health : health;
  mutable hung_since : float option;
  mutable suspect_at : float;  (** next heartbeat-miss time, [infinity] = none *)
  mutable detect_at : float;  (** heartbeat-timeout time for a hang *)
  mutable restart_at : float;
  mutable dead_forever : bool;
  mutable breaker : breaker;
  mutable breaker_level : int;
  mutable consecutive_failures : int;
  mutable slow_until : float;
  mutable down_since : float;  (** [nan] when not currently down *)
  mutable downtime_s : float;
  mutable down_intervals : (float * float) list;  (** reverse chronological *)
  mutable crashes : int;
  mutable hangs : int;
  mutable transients : int;
  mutable slowdowns : int;
  mutable restarts : int;
  mutable breaker_opens : int;
  mutable cold_batches : int;
  warm : (int32, unit) Hashtbl.t;  (** program keys compiled since last restart *)
}

val make_nodes : int -> node array

val routable : node -> now_s:float -> bool
(** Health is [Up], not permanently dead, and the breaker admits traffic
    (closed, half-open, or open with an elapsed cooldown). *)

val arm_probe : node -> now_s:float -> bool
(** Flip an elapsed open breaker to half-open; [true] iff this call
    armed the probe. Call right before dispatching to the node. *)

val breaker_success : node -> bool
(** Reset the failure streak; a half-open probe success closes the
    breaker ([true] iff it closed). *)

val breaker_failure : node -> now_s:float -> threshold:int -> cooldown_s:float -> bool
(** Record a failure: trips a closed breaker after [threshold]
    consecutive failures, reopens a half-open one with doubled cooldown.
    [true] iff the breaker (re)opened. *)

val begin_downtime : node -> from_s:float -> unit
val end_downtime : node -> until_s:float -> unit

val downtime_before : node -> horizon_s:float -> float
(** Total unavailable time clipped to [\[0, horizon\]], including a
    still-open interval. *)
