open Orianna_hw
open Orianna_sim

type policy = Fifo | Edf | Least_loaded

let policy_name = function Fifo -> "fifo" | Edf -> "edf" | Least_loaded -> "least-loaded"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "fifo" -> Some Fifo
  | "edf" -> Some Edf
  | "least-loaded" | "least_loaded" | "ll" -> Some Least_loaded
  | _ -> None

type instance = {
  idx : int;
  masked : Unit_model.unit_class option;
  mutable busy_until_s : float;
  mutable busy_total_s : float;
  mutable served : int;
  mutable batches : int;
}

type fleet = {
  arr : instance array;
  (* (program hash, masked class name) -> makespan seconds, or None
     when the masked accelerator cannot execute the program at all. *)
  service_memo : (int32 * string, float option) Hashtbl.t;
}

let make_fleet ~instances ~masked =
  if instances <= 0 then invalid_arg "Dispatch.make_fleet: need at least one instance";
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= instances then
        invalid_arg (Printf.sprintf "Dispatch.make_fleet: masked instance %d out of range" i))
    masked;
  {
    arr =
      Array.init instances (fun idx ->
          {
            idx;
            masked = List.assoc_opt idx masked;
            busy_until_s = 0.0;
            busy_total_s = 0.0;
            served = 0;
            batches = 0;
          });
    service_memo = Hashtbl.create 64;
  }

let instances fleet = fleet.arr

let service_time_s fleet inst (entry : Cache.entry) =
  let mask_name = match inst.masked with None -> "" | Some c -> Unit_model.class_name c in
  let key = (entry.Cache.program_hash, mask_name) in
  match Hashtbl.find_opt fleet.service_memo key with
  | Some cached -> cached
  | None ->
      let accel =
        match inst.masked with
        | None -> Some entry.Cache.dse.Dse.best
        | Some c -> Accel.with_masked entry.Cache.dse.Dse.best c
      in
      let time =
        match accel with
        | None -> None
        | Some accel -> (
            try
              Some (Schedule.run ~accel ~policy:Schedule.Ooo_full entry.Cache.program).Schedule.seconds
            with Schedule.Deadlock _ -> None)
      in
      Hashtbl.replace fleet.service_memo key time;
      time

let select policy queue ~key =
  let by f = List.stable_sort (fun a b -> compare (f (key a)) (f (key b))) queue in
  match policy with
  | Fifo | Least_loaded -> by (fun r -> (r.Request.arrival_s, r.Request.id))
  | Edf -> by (fun r -> (r.Request.deadline_s, r.Request.id))

(* Batch up to [max_batch] same-key requests that are [ready] (retry
   backoff elapsed), never packing two copies of one request id into a
   single batch — a hedged duplicate must ride a different batch or
   instance to buy any fault independence. *)
let take_batch ~max_batch ~key ~keyof ~idof ~ready queue =
  let rec go taken ids rest = function
    | [] -> (List.rev taken, List.rev rest)
    | x :: xs ->
        if
          List.length taken < max_batch
          && keyof x = key
          && ready x
          && not (List.mem (idof x) ids)
        then go (x :: taken) (idof x :: ids) rest xs
        else go taken ids (x :: rest) xs
  in
  go [] [] [] queue

let preference ?(usable = fun (_ : instance) -> true) policy fleet ~now_s =
  let free =
    Array.to_list fleet.arr |> List.filter (fun i -> i.busy_until_s <= now_s && usable i)
  in
  match policy with
  | Fifo | Edf ->
      List.stable_sort (fun a b -> compare (a.busy_until_s, a.idx) (b.busy_until_s, b.idx)) free
  | Least_loaded ->
      List.stable_sort (fun a b -> compare (a.busy_total_s, a.idx) (b.busy_total_s, b.idx)) free

let choose_instance ?usable policy fleet ~now_s ~entry =
  match preference ?usable policy fleet ~now_s with
  | [] -> None
  | first :: _ as prefs ->
      let rec walk = function
        | [] -> None
        | inst :: rest -> (
            match service_time_s fleet inst entry with
            | Some t -> Some (inst, t, inst.idx <> first.idx)
            | None -> walk rest)
      in
      walk prefs

let can_any_serve ?(alive = fun (_ : instance) -> true) fleet entry =
  Array.exists
    (fun inst -> alive inst && service_time_s fleet inst entry <> None)
    fleet.arr
