(** The serving runtime's unit of work, and seeded arrival-trace
    generators.

    A request names an application template (by registry name), a
    workload seed (the problem {e instance} — values differ, the
    factor-graph structure does not), a priority class and an absolute
    deadline on the virtual clock.  Traces are generated through a
    split table of independent {!Orianna_util.Rng} streams (arrivals,
    app choice, priorities, deadline slack), so adding a stream or
    reordering draws in one dimension cannot perturb the others and a
    trace is bit-for-bit reproducible from its seed. *)

type priority = Low | Normal | High

val priority_name : priority -> string

val priority_rank : priority -> int
(** [Low] = 0 < [Normal] = 1 < [High] = 2; admission shedding compares
    ranks. *)

type kind =
  | Solve  (** a full batch solve of the named application *)
  | Tick of { session : int; step : int }
      (** one measurement delta of a streaming session: fold tick
          [step] of session [session]'s stream into its smoother *)

val kind_name : kind -> string

type t = {
  id : int;  (** position in the trace, unique *)
  app : string;  (** application registry name (or stream name for ticks) *)
  seed : int;  (** workload seed: same structure, fresh values *)
  priority : priority;
  arrival_s : float;  (** virtual-clock arrival time *)
  deadline_s : float;  (** absolute virtual-clock deadline *)
  kind : kind;
}

val slack_s : t -> now_s:float -> float
(** Remaining time to the deadline at [now_s]; negative once missed.
    Retry backoff and hedging decisions key off this. *)

type shape =
  | Poisson of { rate_hz : float }
      (** memoryless arrivals at the given mean rate *)
  | Bursty of { rate_hz : float; burst : int }
      (** same mean rate, but arrivals clumped into back-to-back
          groups of [burst] — the overload pattern that exercises
          queue backpressure and shedding *)

val generate :
  rng:Orianna_util.Rng.t ->
  shape:shape ->
  apps:string list ->
  deadline_s:float * float ->
  n:int ->
  t list
(** [generate ~rng ~shape ~apps ~deadline_s:(lo, hi) ~n] draws [n]
    requests in arrival order.  Each request's app is drawn uniformly
    from [apps], its priority from a fixed 15/70/15 High/Normal/Low
    mix, and its deadline as arrival plus a uniform slack in
    [[lo, hi)]. *)

val pp : Format.formatter -> t -> unit
