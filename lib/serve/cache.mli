(** Content-addressed compile cache: the amortization layer of the
    serving runtime.

    ORIANNA compiles a factor-graph {e template} once and replays the
    instruction stream every tick (Fig. 2); what varies between
    requests is the measurement values, not the graph structure.  The
    cache therefore keys on a {e structural} hash of the template —
    factor types and arities, variable kinds and dimensions, graph
    shape — computed with {!Orianna_util.Checksum.crc32} over a
    canonical description that deliberately excludes numeric values.
    Two requests with different seeds hash identically and share one
    compiled program and one generated accelerator.

    [Program.hash] (CRC-32 over the canonical instruction encoding)
    is the fallback content key for entries inserted from a bare
    compiled program, with no factor-graph template in hand; it is
    also recorded on every entry so batches can be grouped by compiled
    artifact.

    Eviction is LRU over a fixed capacity.  Hit / miss / eviction
    counters are kept locally and mirrored into {!Orianna_obs.Obs}
    ([serve.cache.hit] / [.miss] / [.evict]) when telemetry is on. *)

open Orianna_isa
open Orianna_hw

type entry = {
  program : Program.t;  (** the compiled application stream *)
  dse : Dse.result;  (** the accelerator generated for it *)
  program_hash : int32;  (** {!Program.hash} of [program] *)
}

type t

val create : capacity:int -> t
(** LRU cache holding at most [capacity] entries; capacity must be
    positive. *)

val structural_key : ?opt_level:int -> (string * Orianna_fg.Graph.t) list -> int32
(** Structural hash of an application's graphs (one per algorithm):
    graph names and order, variable names / kinds / dimensions, factor
    names / scopes / error dimensions.  Values (poses, measurements,
    sigmas) are excluded, so all seeds of one template collide — by
    design.  [opt_level] (default 1) is mixed into the key: the
    instruction-stream optimizer changes the compiled artifact (and
    its {!Program.hash}) without changing the template, so entries
    compiled at different levels must not alias.  The level is clamped
    to the effective one (0, 1, or 2): levels beyond 2 compile
    identically to 2 and share its entry. *)

val program_key : Program.t -> int32
(** The fallback content key: {!Program.hash}. *)

val find : t -> int32 -> entry option
(** Lookup without counting a hit or miss (inspection only). *)

val find_or_add : t -> int32 -> (unit -> Program.t * Dse.result) -> bool * entry
(** [find_or_add t key compile] returns [(true, entry)] on a hit
    (bumping the entry's recency) or runs [compile], inserts, evicts
    the least-recently-used entry if over capacity, and returns
    [(false, entry)]. *)

type stats = {
  capacity : int;
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : t -> stats

val hit_rate : stats -> float
(** [hits / (hits + misses)]; 0 when no lookups happened. *)
