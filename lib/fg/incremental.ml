module Obs = Orianna_obs.Obs

type t = {
  dims : (string, int) Hashtbl.t;
  mutable order : string list;  (** elimination order, first-eliminated first *)
  mutable conditionals : Elimination.conditional list;  (** in elimination order *)
  mutable affected_last : int;
  mutable updates : int;
}

type stats = { total_variables : int; affected_last : int; updates : int }

let create () =
  { dims = Hashtbl.create 32; order = []; conditionals = []; affected_last = 0; updates = 0 }

let add_variable t name dim =
  if Hashtbl.mem t.dims name then invalid_arg ("Incremental.add_variable: duplicate " ^ name);
  if dim <= 0 then invalid_arg "Incremental.add_variable: dimension must be positive";
  Hashtbl.add t.dims name dim;
  t.order <- t.order @ [ name ]

let dims_fn t v =
  match Hashtbl.find_opt t.dims v with
  | Some d -> d
  | None -> invalid_arg ("Incremental: unknown variable " ^ v)

(* A stored conditional is a valid linear factor: its rows are rows of
   the current R. *)
let factor_of_conditional (c : Elimination.conditional) =
  {
    Linear_system.vars = c.Elimination.var :: List.map fst c.Elimination.parents;
    blocks = (c.Elimination.var, c.Elimination.r) :: c.Elimination.parents;
    rhs = c.Elimination.rhs;
  }

module Sset = Set.Make (String)

let update t new_factors =
  List.iter
    (fun (f : Linear_system.t) -> List.iter (fun v -> ignore (dims_fn t v)) f.Linear_system.vars)
    new_factors;
  (* Affected closure: variables of the new factors, plus — walking
     the existing conditionals in elimination order — the parents of
     every affected frontal variable (ancestors toward the root). *)
  let affected = ref Sset.empty in
  List.iter
    (fun (f : Linear_system.t) ->
      List.iter (fun v -> affected := Sset.add v !affected) f.Linear_system.vars)
    new_factors;
  List.iter
    (fun (c : Elimination.conditional) ->
      if Sset.mem c.Elimination.var !affected then
        List.iter (fun (p, _) -> affected := Sset.add p !affected) c.Elimination.parents)
    t.conditionals;
  let in_affected v = Sset.mem v !affected in
  let sub_order = List.filter in_affected t.order in
  t.affected_last <- List.length sub_order;
  t.updates <- t.updates + 1;
  Obs.count "fg.incremental.updates";
  Obs.count ~n:t.affected_last "fg.incremental.affected";
  let total = List.length t.order in
  if total > 0 then
    Obs.observe "fg.incremental.affected_fraction"
      (float_of_int t.affected_last /. float_of_int total);
  (* Re-eliminate the affected sub-problem: new factors plus the old
     conditionals of affected frontal variables, reinterpreted as
     factors. *)
  let recycled =
    List.filter_map
      (fun (c : Elimination.conditional) ->
        if in_affected c.Elimination.var then Some (factor_of_conditional c) else None)
      t.conditionals
  in
  let result =
    Elimination.eliminate ~order:sub_order ~dims:(dims_fn t) (new_factors @ recycled)
  in
  (* Merge: keep unaffected conditionals, splice the fresh ones in at
     their positions in the global order. *)
  let fresh = Hashtbl.create 16 in
  List.iter
    (fun (c : Elimination.conditional) -> Hashtbl.add fresh c.Elimination.var c)
    result.Elimination.conditionals;
  let kept = Hashtbl.create 16 in
  List.iter
    (fun (c : Elimination.conditional) ->
      if not (in_affected c.Elimination.var) then Hashtbl.add kept c.Elimination.var c)
    t.conditionals;
  t.conditionals <-
    List.filter_map
      (fun v ->
        match Hashtbl.find_opt fresh v with
        | Some c -> Some c
        | None -> Hashtbl.find_opt kept v)
      t.order

let solution t = Elimination.back_substitute t.conditionals

let stats t =
  { total_variables = List.length t.order; affected_last = t.affected_last; updates = t.updates }

let batch_equivalent t factors = Elimination.solve ~order:t.order ~dims:(dims_fn t) factors
