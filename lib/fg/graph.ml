type t = {
  values : (string, Var.t) Hashtbl.t;
  mutable rev_vars : string list;
  mutable rev_factors : Factor.t list;
}

let create () = { values = Hashtbl.create 64; rev_vars = []; rev_factors = [] }

let add_variable t name value =
  if Hashtbl.mem t.values name then invalid_arg ("Graph.add_variable: duplicate " ^ name);
  Hashtbl.add t.values name value;
  t.rev_vars <- name :: t.rev_vars

let has_variable t name = Hashtbl.mem t.values name

let add_factor t factor =
  List.iter
    (fun v ->
      if not (Hashtbl.mem t.values v) then
        invalid_arg
          (Printf.sprintf "Graph.add_factor: factor %s uses unknown variable %s"
             (Factor.name factor) v))
    (Factor.vars factor);
  t.rev_factors <- factor :: t.rev_factors

let value t name = Hashtbl.find t.values name

let set_value t name v =
  match Hashtbl.find_opt t.values name with
  | None -> invalid_arg ("Graph.set_value: unknown variable " ^ name)
  | Some old ->
      let same_kind =
        match (old, v) with
        | Var.Pose2 _, Var.Pose2 _ | Var.Pose3 _, Var.Pose3 _ | Var.Se3 _, Var.Se3 _ -> true
        | Var.Vector a, Var.Vector b -> Orianna_linalg.Vec.dim a = Orianna_linalg.Vec.dim b
        | (Var.Pose2 _ | Var.Pose3 _ | Var.Se3 _ | Var.Vector _), _ -> false
      in
      if not same_kind then invalid_arg ("Graph.set_value: kind mismatch for " ^ name);
      Hashtbl.replace t.values name v

let lookup t name = value t name

let variables t = List.rev t.rev_vars
let factors t = List.rev t.rev_factors
let num_variables t = List.length t.rev_vars
let num_factors t = List.length t.rev_factors

let dims t name = Var.dim (value t name)

let total_dim t = List.fold_left (fun acc v -> acc + dims t v) 0 (variables t)

let total_rows t =
  List.fold_left (fun acc f -> acc + Factor.error_dim f) 0 (factors t)

let error t =
  List.fold_left (fun acc f -> acc +. Factor.error_norm_sq f (lookup t)) 0.0 (factors t)

let linearize t = List.map (fun f -> Linear_system.of_factor f (lookup t)) (factors t)

let factor_scopes t = List.map Factor.vars (factors t)

(* Shallow: the value table is duplicated (so [set_value] on the copy
   leaves the original untouched) while the immutable [Var.t] values
   and the factor/variable lists are shared. *)
let copy t =
  { values = Hashtbl.copy t.values; rev_vars = t.rev_vars; rev_factors = t.rev_factors }

let copy_values t = List.map (fun v -> (v, value t v)) (variables t)

let restore_values t saved = List.iter (fun (name, v) -> Hashtbl.replace t.values name v) saved
