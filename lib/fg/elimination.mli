(** Sequential variable elimination by partial QR (Figs. 5 and 6).

    For every variable in the ordering, the adjacent factors' block
    rows are gathered into a small dense matrix [Abar] which is
    triangularized; the top rows become the variable's conditional
    (a row of the square-root information matrix R), the remaining
    rows become a new factor on the separator — exactly the
    square-root SAM recipe the paper builds its accelerator around.
    Back substitution over the conditionals in reverse order yields
    the solution Δ. *)

open Orianna_linalg

type conditional = {
  var : string;
  dim : int;
  r : Mat.t;  (** [dim x dim] upper triangular *)
  parents : (string * Mat.t) list;  (** later variables and their blocks *)
  rhs : Vec.t;
}

type census_entry = {
  var : string;
  rows : int;  (** rows of the eliminated dense Abar *)
  cols : int;  (** columns of Abar (including the RHS column) *)
  density : float;  (** fill of Abar before decomposition *)
}

type result = {
  conditionals : conditional list;  (** in elimination order *)
  census : census_entry list;  (** per-elimination matrix census (Figs. 17/18) *)
}

exception Underconstrained of string
(** Raised when a variable has no adjacent factor or too few rows. *)

type method_ =
  | Qr  (** partial Householder QR of the stacked Abar (the paper's path) *)
  | Cholesky
      (** GTSAM's default: form the frontal Hessian [AbarT Abar] and
          factor it; the Schur complement becomes the new factor.  Same
          square-root result, fewer MACs, less numerically robust. *)

val eliminate :
  ?method_:method_ -> order:string list -> dims:(string -> int) -> Linear_system.t list -> result

type frontal = {
  f_conditional : conditional;
  f_leftover : Linear_system.t option;
      (** rows left after the conditional: a new factor on the
          separator, [None] when the frontal variable was a leaf *)
  f_rows : int;
  f_cols : int;
  f_density : float;
}

val eliminate_frontal :
  dims:(string -> int) -> pos:(string -> int) -> string -> Linear_system.t list -> frontal
(** One QR elimination step of a single frontal variable against its
    adjacent factors ([pos] orders the separator).  This is the exact
    kernel {!eliminate} applies per variable on the [Qr] path; the
    incremental smoother calls it directly so that partial
    re-elimination is bit-identical to a batch pass over the same
    stacked rows.  Raises {!Underconstrained} on an empty or
    row-deficient adjacency. *)

val back_substitute : conditional list -> (string * Vec.t) list
(** Solution per variable (in elimination order). *)

val solve :
  ?method_:method_ ->
  order:string list ->
  dims:(string -> int) ->
  Linear_system.t list ->
  (string * Vec.t) list
(** {!eliminate} followed by {!back_substitute}. *)

val r_matrix : order:string list -> dims:(string -> int) -> result -> Mat.t
(** Assemble the square upper-triangular R factor (for tests: it must
    match the R of a dense QR up to row signs). *)
