(** Nonlinear incremental smoother: the iSAM-style partial
    re-elimination of {!Incremental} grown to full nonlinear streams.

    The smoother keeps, per frontal variable, the conditional {e and}
    the leftover factor its elimination produced.  An update
    re-eliminates only the affected closure of the new measurements,
    rebuilding each affected frontal from its original factors plus the
    cached leftovers flowing in from unaffected neighbours — stacked in
    the same order a batch {!Elimination.eliminate} over the same
    factors would use, so with relinearization and marginalization off
    the incremental square-root factor is {e bit-identical} to the
    batch one.

    Nonlinearity is handled iSAM2-style: after each solve, variables
    whose delta exceeds [relin_threshold] are rebased (their
    linearization point absorbs the delta), every measurement factor
    touching them is relinearized, and the dirtied closure is
    re-eliminated, up to [max_relin_passes] times.

    Bounded memory comes from sliding-window marginalization: when the
    live variable count exceeds [window], the oldest variables are
    folded out by collecting the cached leftovers that escape the
    marginalized prefix — together they are exactly the marginal
    information on the separator — and QR-compressing them into one
    dense prior factor.  Marginalization is exact in the linear case;
    under relinearization the prior is rebased to first order
    (GTSAM's linear-container treatment). *)

open Orianna_linalg

type params = {
  relin_threshold : float;
      (** relinearize a variable when the infinity norm of its delta
          exceeds this; [<= 0] disables relinearization entirely *)
  max_relin_passes : int;  (** extra elimination passes per update *)
  window : int option;
      (** keep at most this many live variables, marginalizing the
          oldest; [None] disables marginalization *)
}

val default_params : params
(** [{ relin_threshold = 0.05; max_relin_passes = 3; window = None }] *)

type t

type stats = {
  total_variables : int;  (** live (non-marginalized) variables *)
  affected_last : int;
      (** distinct variables re-eliminated by the last update, across
          all relinearization passes and any marginalization rebuild *)
  relinearized_last : int;  (** variables rebased by the last update *)
  relin_passes_last : int;  (** extra passes run by the last update *)
  marginalized : int;  (** variables folded out so far (cumulative) *)
  updates : int;
}

val create : ?params:params -> unit -> t

val add_variable : t -> string -> Var.t -> unit
(** Stage a new variable with its initial estimate (which becomes its
    first linearization point).  Raises [Invalid_argument] on a
    duplicate or retired name. *)

val add_factor : t -> Factor.t -> unit
(** Stage a new measurement.  Every variable it touches must be live
    or staged; raises [Invalid_argument] on an unknown name and
    {!Retired} when a variable has been marginalized out. *)

exception Retired of string
(** A factor referenced a variable that left the sliding window. *)

val has_variable : t -> string -> bool
(** Live or staged. *)

val is_retired : t -> string -> bool

val update : t -> unit
(** Fold the staged variables and factors in: commit, re-eliminate the
    affected closure, back-substitute, relinearize while over
    threshold, then marginalize down to the window.  A no-op when
    nothing is staged.  Raises {!Elimination.Underconstrained} if a
    staged variable has no constraining measurement. *)

val estimate : t -> string -> Var.t
(** Current estimate; retired variables return their final estimate
    before marginalization.  Raises [Not_found] on unknown names. *)

val estimates : t -> (string * Var.t) list
(** Live variables in elimination order. *)

val all_estimates : t -> (string * Var.t) list
(** Retired variables (in retirement order) followed by live ones. *)

val delta : t -> string -> Vec.t
(** Last solved delta of a live variable (zero right after a
    rebase). *)

val live_variables : t -> string list

val error : t -> float
(** Sum of squared whitened measurement errors at the current
    estimates (marginalization priors excluded). *)

val stats : t -> stats
