(** Nonlinear optimization over a factor graph (Fig. 3).

    Implements the iterative construct-and-solve loop: linearize all
    factors at the current estimate, eliminate with sequential QR,
    back-substitute, retract the update, repeat until convergence.
    Gauss-Newton is the paper's method; Levenberg-Marquardt damping is
    available for poorly initialized problems (it reuses the same
    elimination machinery by appending damping rows). *)

type method_ = Gauss_newton | Levenberg_marquardt

type params = {
  max_iterations : int;
  error_tol : float;  (** absolute objective threshold *)
  delta_tol : float;  (** infinity-norm threshold on the update *)
  relative_tol : float;  (** relative objective-decrease threshold *)
  ordering : Ordering.strategy;
  factorization : Elimination.method_;  (** QR (default) or Cholesky elimination *)
  method_ : method_;
  init_lambda : float;  (** initial LM damping *)
  max_lambda : float;  (** LM divergence guard *)
}

val default_params : params
(** 50 iterations, Gauss-Newton, min-degree ordering, tolerances 1e-9
    (error), 1e-8 (delta), 1e-10 (relative). *)

type report = {
  iterations : int;
  converged : bool;
  reason : string option;
      (** why the optimizer stopped when [converged = false] (diverging
          or non-finite residual with damped retries exhausted,
          iteration budget), or a termination note otherwise; [None] on
          a clean convergence *)
  initial_error : float;
  final_error : float;
  history : float list;  (** objective after each iteration *)
  census : Elimination.census_entry list;  (** last accepted elimination *)
  macs : int;  (** MACs charged during the whole optimization *)
}

val optimize : ?params:params -> Graph.t -> report
(** Mutates the graph's values in place.

    Robustness guards: a non-finite or increasing residual after a
    Gauss-Newton step backs the step out and retries it with
    escalating Levenberg damping; if no damped step recovers, the
    optimizer stops with [converged = false] and a [reason] instead of
    looping or crashing.  A non-finite initial residual stops before
    the first iteration.  Raises [Orianna_util.Error.Error] (phase
    [Solve]) on an underconstrained variable. *)

val solve_once : ?ordering:Ordering.strategy -> Graph.t -> (string * Orianna_linalg.Vec.t) list
(** A single linearize-eliminate-substitute round, returning the raw
    update without applying it (used by tests and by the compiler
    validation path). *)

val pp_report : Format.formatter -> report -> unit
