open Orianna_linalg

type conditional = {
  var : string;
  dim : int;
  r : Mat.t;
  parents : (string * Mat.t) list;
  rhs : Vec.t;
}

type census_entry = { var : string; rows : int; cols : int; density : float }

type result = { conditionals : conditional list; census : census_entry list }

exception Underconstrained of string

type method_ = Qr | Cholesky

let distinct_vars factors =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun (f : Linear_system.t) ->
      List.filter_map
        (fun v ->
          if Hashtbl.mem seen v then None
          else begin
            Hashtbl.add seen v ();
            Some v
          end)
        f.Linear_system.vars)
    factors

(* Cholesky elimination of one frontal variable: factor the frontal
   Hessian block, produce the conditional rows and the square-root of
   the Schur complement as the new factor. *)
let cholesky_step abar ~d ~w =
  let m, _ = Mat.dims abar in
  let a = Mat.block abar 0 0 m w in
  let b = Vec.init m (fun i -> Mat.get abar i w) in
  let at = Mat.transpose a in
  let h = Mat.mul at a in
  let g = Mat.mul_vec at b in
  let h11 = Mat.block h 0 0 d d in
  let h12 = Mat.block h 0 d d (w - d) in
  let h22 = Mat.block h d d (w - d) (w - d) in
  let l11 = Chol.factor h11 in
  (* R_vv = L11T (upper triangular), R_vp = L11^-1 H12, d_v = L11^-1 g1. *)
  let r_vv = Mat.transpose l11 in
  let r_vp =
    let cols = w - d in
    let out = Mat.create d cols in
    for j = 0 to cols - 1 do
      let col = Tri.solve_lower l11 (Mat.col h12 j) in
      for i = 0 to d - 1 do
        Mat.set out i j col.(i)
      done
    done;
    out
  in
  let d_v = Tri.solve_lower l11 (Vec.init d (fun i -> g.(i))) in
  (* Schur complement and its square root. *)
  let rest =
    if w > d then begin
      let h22' = Mat.sub h22 (Mat.mul (Mat.transpose r_vp) r_vp) in
      let g2 = Vec.init (w - d) (fun i -> g.(d + i)) in
      let g2' = Vec.sub g2 (Mat.mul_vec (Mat.transpose r_vp) d_v) in
      (* Guard: numerical round-off can leave tiny negative eigenvalues
         on a fully-determined separator; regularize the diagonal. *)
      let n = w - d in
      let h22' = Mat.init n n (fun i j -> Mat.get h22' i j +. (if i = j then 1e-12 else 0.0)) in
      let l22 = Chol.factor h22' in
      let r22 = Mat.transpose l22 in
      let rhs22 = Tri.solve_lower l22 g2' in
      Some (r22, rhs22)
    end
    else None
  in
  (r_vv, r_vp, d_v, rest)

(* Stack the factors adjacent to frontal variable [v] into the dense
   augmented matrix Abar = [A | b], with the separator ordered by
   elimination position. *)
let stack_adjacent ~dims ~pos v adjacent =
  let d = dims v in
  let others =
    distinct_vars adjacent
    |> List.filter (fun w -> w <> v)
    |> List.sort (fun a b -> compare (pos a) (pos b))
  in
  let col_vars = v :: others in
  let offsets = Hashtbl.create 8 in
  let width = ref 0 in
  List.iter
    (fun w ->
      Hashtbl.add offsets w !width;
      width := !width + dims w)
    col_vars;
  let w = !width in
  let m = List.fold_left (fun acc f -> acc + Linear_system.rows f) 0 adjacent in
  if m < d then raise (Underconstrained v);
  let abar = Mat.create m (w + 1) in
  let row = ref 0 in
  List.iter
    (fun (f : Linear_system.t) ->
      List.iter
        (fun (var, b) -> Mat.set_block abar !row (Hashtbl.find offsets var) b)
        f.Linear_system.blocks;
      let r = Linear_system.rows f in
      for i = 0 to r - 1 do
        Mat.set abar (!row + i) w f.Linear_system.rhs.(i)
      done;
      row := !row + r)
    adjacent;
  (abar, others, offsets, w, m)

type frontal = {
  f_conditional : conditional;
  f_leftover : Linear_system.t option;
  f_rows : int;
  f_cols : int;
  f_density : float;
}

let eliminate_frontal ~dims ~pos v adjacent =
  if adjacent = [] then raise (Underconstrained v);
  let d = dims v in
  let abar, others, offsets, w, m = stack_adjacent ~dims ~pos v adjacent in
  let rbar = Qr.triangularize abar in
  let parents =
    List.map (fun p -> (p, Mat.block rbar 0 (Hashtbl.find offsets p) d (dims p))) others
  in
  let cond =
    {
      var = v;
      dim = d;
      r = Mat.block rbar 0 0 d d;
      parents;
      rhs = Vec.init d (fun i -> Mat.get rbar i w);
    }
  in
  (* Leftover rows become the new factor on the separator. *)
  let leftover = min m w - d in
  let f_leftover =
    if leftover <= 0 || others = [] then None
    else begin
      let blocks =
        List.map
          (fun p -> (p, Mat.block rbar d (Hashtbl.find offsets p) leftover (dims p)))
          others
      in
      let rhs = Vec.init leftover (fun i -> Mat.get rbar (d + i) w) in
      Some { Linear_system.vars = others; blocks; rhs }
    end
  in
  { f_conditional = cond; f_leftover; f_rows = m; f_cols = w + 1; f_density = Mat.density abar }

let eliminate ?(method_ = Qr) ~order ~dims factors =
  let position = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.add position v i) order;
  let pos v =
    match Hashtbl.find_opt position v with
    | Some p -> p
    | None -> invalid_arg ("Elimination: variable not in ordering: " ^ v)
  in
  (* Factor store indexed by id with a per-variable adjacency index,
     so each elimination touches only its neighborhood instead of
     scanning every live factor (O(V F) -> O(edges)). *)
  let store : (int, Linear_system.t) Hashtbl.t = Hashtbl.create 256 in
  let adjacency : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  let register f =
    let id = !next_id in
    incr next_id;
    Hashtbl.add store id f;
    List.iter
      (fun var ->
        match Hashtbl.find_opt adjacency var with
        | Some ids -> ids := id :: !ids
        | None -> Hashtbl.add adjacency var (ref [ id ]))
      f.Linear_system.vars
  in
  List.iter register factors;
  let conditionals = ref [] in
  let census = ref [] in
  List.iter
    (fun v ->
      (* Adjacency may hold ids of already-consumed factors; filter
         against the store, ascending ids for determinism. *)
      let adjacent =
        match Hashtbl.find_opt adjacency v with
        | None -> []
        | Some ids ->
            List.sort_uniq compare !ids
            |> List.filter_map (fun id -> Hashtbl.find_opt store id)
      in
      if adjacent = [] then raise (Underconstrained v);
      (match Hashtbl.find_opt adjacency v with
      | Some ids ->
          List.iter (fun id -> Hashtbl.remove store id) (List.sort_uniq compare !ids);
          Hashtbl.remove adjacency v
      | None -> ());
      let new_factor =
        match method_ with
        | Qr ->
            let fr = eliminate_frontal ~dims ~pos v adjacent in
            census :=
              { var = v; rows = fr.f_rows; cols = fr.f_cols; density = fr.f_density }
              :: !census;
            conditionals := fr.f_conditional :: !conditionals;
            fr.f_leftover
        | Cholesky ->
            let d = dims v in
            let abar, others, offsets, w, m = stack_adjacent ~dims ~pos v adjacent in
            census := { var = v; rows = m; cols = w + 1; density = Mat.density abar } :: !census;
            let r_vv, r_vp, d_v, schur = cholesky_step abar ~d ~w in
            let parents =
              List.mapi
                (fun _ p ->
                  let off = Hashtbl.find offsets p - d in
                  (p, Mat.block r_vp 0 off d (dims p)))
                others
            in
            conditionals := { var = v; dim = d; r = r_vv; parents; rhs = d_v } :: !conditionals;
            (match schur with
            | None -> None
            | Some (r22, rhs22) when others <> [] ->
                let blocks =
                  List.map
                    (fun p ->
                      let off = Hashtbl.find offsets p - d in
                      (p, Mat.block r22 0 off (w - d) (dims p)))
                    others
                in
                Some { Linear_system.vars = others; blocks; rhs = rhs22 }
            | Some _ -> None)
      in
      Option.iter register new_factor)
    order;
  { conditionals = List.rev !conditionals; census = List.rev !census }

let back_substitute conditionals =
  let solution = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun c ->
      let acc = Vec.copy c.rhs in
      List.iter
        (fun (p, block) ->
          match Hashtbl.find_opt solution p with
          | Some dp ->
              let contrib = Mat.mul_vec block dp in
              for i = 0 to c.dim - 1 do
                acc.(i) <- acc.(i) -. contrib.(i)
              done
          | None -> failwith ("Elimination.back_substitute: parent not yet solved: " ^ p))
        c.parents;
      let dv = Tri.solve_upper c.r acc in
      Hashtbl.add solution c.var dv;
      out := (c.var, dv) :: !out)
    (List.rev conditionals);
  !out

let solve ?method_ ~order ~dims factors =
  let { conditionals; _ } = eliminate ?method_ ~order ~dims factors in
  back_substitute conditionals

let r_matrix ~order ~dims result =
  let offsets = Hashtbl.create 16 in
  let width = ref 0 in
  List.iter
    (fun v ->
      Hashtbl.add offsets v !width;
      width := !width + dims v)
    order;
  let r = Mat.create !width !width in
  List.iter
    (fun (c : conditional) ->
      let off = Hashtbl.find offsets c.var in
      Mat.set_block r off off c.r;
      List.iter (fun (p, b) -> Mat.set_block r off (Hashtbl.find offsets p) b) c.parents)
    result.conditionals;
  r
