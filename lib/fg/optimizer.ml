open Orianna_linalg

let src = Logs.Src.create "orianna.optimizer" ~doc:"Nonlinear optimization loop"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Orianna_obs.Obs
module Error = Orianna_util.Error

type method_ = Gauss_newton | Levenberg_marquardt

type params = {
  max_iterations : int;
  error_tol : float;
  delta_tol : float;
  relative_tol : float;
  ordering : Ordering.strategy;
  factorization : Elimination.method_;
  method_ : method_;
  init_lambda : float;
  max_lambda : float;
}

let default_params =
  {
    max_iterations = 50;
    error_tol = 1e-9;
    delta_tol = 1e-8;
    relative_tol = 1e-10;
    ordering = Ordering.Min_degree;
    factorization = Elimination.Qr;
    method_ = Gauss_newton;
    init_lambda = 1e-4;
    max_lambda = 1e8;
  }

type report = {
  iterations : int;
  converged : bool;
  reason : string option;
  initial_error : float;
  final_error : float;
  history : float list;
  census : Elimination.census_entry list;
  macs : int;
}

let ordering_of graph strategy =
  Ordering.compute strategy ~vars:(Graph.variables graph) ~factor_scopes:(Graph.factor_scopes graph)

let damping_factors graph lambda =
  let s = sqrt lambda in
  List.map
    (fun v ->
      let d = Graph.dims graph v in
      {
        Linear_system.vars = [ v ];
        blocks = [ (v, Mat.scale s (Mat.identity d)) ];
        rhs = Vec.create d;
      })
    (Graph.variables graph)

let apply_update graph deltas =
  List.iter
    (fun (v, delta) -> Graph.set_value graph v (Var.retract (Graph.value graph v) delta))
    deltas

let max_abs_delta deltas =
  List.fold_left
    (fun acc (_, d) -> Array.fold_left (fun m x -> Float.max m (Float.abs x)) acc d)
    0.0 deltas

let solve_once ?(ordering = Ordering.Min_degree) graph =
  let order = ordering_of graph ordering in
  let lin = Graph.linearize graph in
  Elimination.solve ~order ~dims:(Graph.dims graph) lin

let optimize ?(params = default_params) graph =
  Obs.with_span "optimizer.optimize"
    ~attrs:
      [
        ("method", match params.method_ with Gauss_newton -> "gauss-newton" | Levenberg_marquardt -> "lm");
        ("variables", string_of_int (Graph.num_variables graph));
        ("factors", string_of_int (Graph.num_factors graph));
      ]
  @@ fun () ->
  let result, macs =
    Macs.measure (fun () ->
        let order = ordering_of graph params.ordering in
        let dims = Graph.dims graph in
        let initial_error = Graph.error graph in
        let history = ref [] in
        let census = ref [] in
        let lambda = ref params.init_lambda in
        let current_error = ref initial_error in
        let converged = ref (initial_error <= params.error_tol) in
        let reason = ref None in
        let stop = ref false in
        let iters = ref 0 in
        if not (Float.is_finite initial_error) then begin
          stop := true;
          reason := Some "non-finite initial residual";
          Obs.count "optimizer.guard.nonfinite"
        end;
        (* Damped retry ladder shared by the divergence guards: retry
           the step with escalating Levenberg damping until the
           residual stops misbehaving or the lambda bound is hit. *)
        let damped_retry ~lin ~saved =
          let accepted = ref None in
          let l = ref (Float.max params.init_lambda (2.0 *. !lambda)) in
          while !accepted = None && !l <= params.max_lambda do
            let damped = lin @ damping_factors graph !l in
            let result = Elimination.eliminate ~method_:params.factorization ~order ~dims damped in
            let deltas = Elimination.back_substitute result.conditionals in
            apply_update graph deltas;
            let err = Graph.error graph in
            if Float.is_finite err && err <= !current_error then
              accepted := Some (result, deltas, err)
            else begin
              Obs.count "optimizer.guard.damped_retries";
              Graph.restore_values graph saved;
              l := !l *. 10.0
            end
          done;
          !accepted
        in
        (try
           while (not !converged) && (not !stop) && !iters < params.max_iterations do
             incr iters;
             let lin = Graph.linearize graph in
             (match params.method_ with
             | Gauss_newton ->
                 let saved = Graph.copy_values graph in
                 let result = Elimination.eliminate ~method_:params.factorization ~order ~dims lin in
                 let deltas = Elimination.back_substitute result.conditionals in
                 let accept result deltas err =
                   census := result.Elimination.census;
                   let decrease = !current_error -. err in
                   if
                     max_abs_delta deltas < params.delta_tol
                     || err <= params.error_tol
                     || Float.abs decrease <= params.relative_tol *. Float.max 1.0 !current_error
                   then converged := true;
                   current_error := err
                 in
                 apply_update graph deltas;
                 let err = Graph.error graph in
                 if Float.is_finite err && err <= !current_error *. (1.0 +. 1e-12) +. params.error_tol
                 then accept result deltas err
                 else begin
                   (* Non-finite or increasing residual: the NaN /
                      divergence guard.  Back out the step and retry it
                      with damping before giving up. *)
                   Obs.count "optimizer.guard.trips";
                   Graph.restore_values graph saved;
                   match damped_retry ~lin ~saved with
                   | Some (result, deltas, err') -> accept result deltas err'
                   | None ->
                       stop := true;
                       reason :=
                         Some
                           (if Float.is_finite err then
                              Printf.sprintf
                                "diverging residual (%.6g -> %.6g); damped retries exhausted"
                                !current_error err
                            else "non-finite residual; damped retries exhausted")
                 end
             | Levenberg_marquardt ->
                 let accepted = ref false in
                 let saved = Graph.copy_values graph in
                 while (not !accepted) && !lambda <= params.max_lambda do
                   let damped = lin @ damping_factors graph !lambda in
                   let result = Elimination.eliminate ~method_:params.factorization ~order ~dims damped in
                   let deltas = Elimination.back_substitute result.conditionals in
                   apply_update graph deltas;
                   let err = Graph.error graph in
                   if Float.is_finite err && err < !current_error then begin
                     accepted := true;
                     census := result.census;
                     lambda := Float.max 1e-12 (!lambda /. 10.0);
                     if
                       max_abs_delta deltas < params.delta_tol
                       || err <= params.error_tol
                       || !current_error -. err <= params.relative_tol *. Float.max 1.0 !current_error
                     then converged := true;
                     current_error := err
                   end
                   else begin
                     Obs.count "optimizer.lm.rejected_steps";
                     Graph.restore_values graph saved;
                     lambda := !lambda *. 10.0
                   end
                 done;
                 if not !accepted then
                   if Float.is_finite !current_error then begin
                     (* Stationary: no damped step improves a finite
                        residual — the usual LM termination. *)
                     converged := true;
                     reason := Some "stationary: no improving damped step within lambda bound"
                   end
                   else begin
                     stop := true;
                     reason := Some "non-finite residual; no recovering damped step"
                   end);
             Log.debug (fun m -> m "iteration %d: error %.6g" !iters !current_error);
             Obs.count "optimizer.iterations";
             Obs.observe "optimizer.error" !current_error;
             history := !current_error :: !history
           done
         with Elimination.Underconstrained v ->
           Error.fail Error.Solve ~context:[ "optimizer" ] ("underconstrained variable " ^ v));
        if (not !converged) && !reason = None && !iters >= params.max_iterations then
          reason := Some (Printf.sprintf "iteration budget (%d) exhausted" params.max_iterations);
        ( !iters,
          !converged,
          !reason,
          initial_error,
          !current_error,
          List.rev !history,
          !census ))
  in
  let iterations, converged, reason, initial_error, final_error, history, census = result in
  if Obs.enabled () then begin
    Obs.set_gauge "optimizer.final_error" final_error;
    Obs.count "optimizer.runs";
    if converged then Obs.count "optimizer.converged"
  end;
  Log.info (fun m ->
      m "optimized: %d iterations, error %.6g -> %.6g, %d MACs" iterations initial_error
        final_error macs);
  { iterations; converged; reason; initial_error; final_error; history; census; macs }

let pp_report ppf r =
  Format.fprintf ppf "iters=%d converged=%b error %.6g -> %.6g (macs %d)" r.iterations r.converged
    r.initial_error r.final_error r.macs;
  Option.iter (fun why -> Format.fprintf ppf " [%s]" why) r.reason
