open Orianna_linalg

let src = Logs.Src.create "orianna.optimizer" ~doc:"Nonlinear optimization loop"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Orianna_obs.Obs

type method_ = Gauss_newton | Levenberg_marquardt

type params = {
  max_iterations : int;
  error_tol : float;
  delta_tol : float;
  relative_tol : float;
  ordering : Ordering.strategy;
  factorization : Elimination.method_;
  method_ : method_;
  init_lambda : float;
  max_lambda : float;
}

let default_params =
  {
    max_iterations = 50;
    error_tol = 1e-9;
    delta_tol = 1e-8;
    relative_tol = 1e-10;
    ordering = Ordering.Min_degree;
    factorization = Elimination.Qr;
    method_ = Gauss_newton;
    init_lambda = 1e-4;
    max_lambda = 1e8;
  }

type report = {
  iterations : int;
  converged : bool;
  initial_error : float;
  final_error : float;
  history : float list;
  census : Elimination.census_entry list;
  macs : int;
}

let ordering_of graph strategy =
  Ordering.compute strategy ~vars:(Graph.variables graph) ~factor_scopes:(Graph.factor_scopes graph)

let damping_factors graph lambda =
  let s = sqrt lambda in
  List.map
    (fun v ->
      let d = Graph.dims graph v in
      {
        Linear_system.vars = [ v ];
        blocks = [ (v, Mat.scale s (Mat.identity d)) ];
        rhs = Vec.create d;
      })
    (Graph.variables graph)

let apply_update graph deltas =
  List.iter
    (fun (v, delta) -> Graph.set_value graph v (Var.retract (Graph.value graph v) delta))
    deltas

let max_abs_delta deltas =
  List.fold_left
    (fun acc (_, d) -> Array.fold_left (fun m x -> Float.max m (Float.abs x)) acc d)
    0.0 deltas

let solve_once ?(ordering = Ordering.Min_degree) graph =
  let order = ordering_of graph ordering in
  let lin = Graph.linearize graph in
  Elimination.solve ~order ~dims:(Graph.dims graph) lin

let optimize ?(params = default_params) graph =
  Obs.with_span "optimizer.optimize"
    ~attrs:
      [
        ("method", match params.method_ with Gauss_newton -> "gauss-newton" | Levenberg_marquardt -> "lm");
        ("variables", string_of_int (Graph.num_variables graph));
        ("factors", string_of_int (Graph.num_factors graph));
      ]
  @@ fun () ->
  let result, macs =
    Macs.measure (fun () ->
        let order = ordering_of graph params.ordering in
        let dims = Graph.dims graph in
        let initial_error = Graph.error graph in
        let history = ref [] in
        let census = ref [] in
        let lambda = ref params.init_lambda in
        let current_error = ref initial_error in
        let converged = ref (initial_error <= params.error_tol) in
        let iters = ref 0 in
        (try
           while (not !converged) && !iters < params.max_iterations do
             incr iters;
             let lin = Graph.linearize graph in
             (match params.method_ with
             | Gauss_newton ->
                 let result = Elimination.eliminate ~method_:params.factorization ~order ~dims lin in
                 let deltas = Elimination.back_substitute result.conditionals in
                 census := result.census;
                 apply_update graph deltas;
                 let err = Graph.error graph in
                 let decrease = !current_error -. err in
                 if
                   max_abs_delta deltas < params.delta_tol
                   || err <= params.error_tol
                   || Float.abs decrease <= params.relative_tol *. Float.max 1.0 !current_error
                 then converged := true;
                 current_error := err
             | Levenberg_marquardt ->
                 let accepted = ref false in
                 let saved = Graph.copy_values graph in
                 while (not !accepted) && !lambda <= params.max_lambda do
                   let damped = lin @ damping_factors graph !lambda in
                   let result = Elimination.eliminate ~method_:params.factorization ~order ~dims damped in
                   let deltas = Elimination.back_substitute result.conditionals in
                   apply_update graph deltas;
                   let err = Graph.error graph in
                   if err < !current_error then begin
                     accepted := true;
                     census := result.census;
                     lambda := Float.max 1e-12 (!lambda /. 10.0);
                     if
                       max_abs_delta deltas < params.delta_tol
                       || err <= params.error_tol
                       || !current_error -. err <= params.relative_tol *. Float.max 1.0 !current_error
                     then converged := true;
                     current_error := err
                   end
                   else begin
                     Obs.count "optimizer.lm.rejected_steps";
                     Graph.restore_values graph saved;
                     lambda := !lambda *. 10.0
                   end
                 done;
                 if not !accepted then converged := true (* stuck: report non-improvement *));
             Log.debug (fun m -> m "iteration %d: error %.6g" !iters !current_error);
             Obs.count "optimizer.iterations";
             Obs.observe "optimizer.error" !current_error;
             history := !current_error :: !history
           done
         with Elimination.Underconstrained v ->
           failwith ("Optimizer: underconstrained variable " ^ v));
        ( !iters,
          !converged,
          initial_error,
          !current_error,
          List.rev !history,
          !census ))
  in
  let iterations, converged, initial_error, final_error, history, census = result in
  if Obs.enabled () then begin
    Obs.set_gauge "optimizer.final_error" final_error;
    Obs.count "optimizer.runs";
    if converged then Obs.count "optimizer.converged"
  end;
  Log.info (fun m ->
      m "optimized: %d iterations, error %.6g -> %.6g, %d MACs" iterations initial_error
        final_error macs);
  { iterations; converged; initial_error; final_error; history; census; macs }

let pp_report ppf r =
  Format.fprintf ppf "iters=%d converged=%b error %.6g -> %.6g (macs %d)" r.iterations r.converged
    r.initial_error r.final_error r.macs
