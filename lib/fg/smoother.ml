open Orianna_linalg
module Obs = Orianna_obs.Obs

type params = { relin_threshold : float; max_relin_passes : int; window : int option }

let default_params = { relin_threshold = 0.05; max_relin_passes = 3; window = None }

type vinfo = {
  vpos : int;  (** global elimination position, monotone, never reused *)
  vdim : int;
  mutable lin_point : Var.t;
  mutable estimate : Var.t;
  mutable delta : Vec.t;
}

type origin =
  | Measurement of Factor.t
  | Prior of { mutable refs : (string * Var.t) list }
      (** marginalization prior: linearization reference per scope
          variable, for first-order rebasing *)

type frec = {
  lid : int;
  fscope : string list;  (** position-sorted *)
  home : string;  (** earliest-position scope variable *)
  origin : origin;
  mutable lin : Linear_system.t;
}

module Sset = Set.Make (String)

type stats = {
  total_variables : int;
  affected_last : int;
  relinearized_last : int;
  relin_passes_last : int;
  marginalized : int;
  updates : int;
}

type t = {
  params : params;
  vars : (string, vinfo) Hashtbl.t;
  mutable order : string list;  (** live variables, ascending position *)
  mutable next_pos : int;
  factors : (int, frec) Hashtbl.t;
  mutable next_lid : int;
  homes : (string, int list ref) Hashtbl.t;  (** home variable -> lids *)
  touching : (string, int list ref) Hashtbl.t;  (** variable -> lids of factors involving it *)
  conditionals : (string, Elimination.conditional) Hashtbl.t;
  leftovers : (string, Linear_system.t) Hashtbl.t;  (** producer -> cached leftover *)
  history : (string, Var.t) Hashtbl.t;  (** retired variables' final estimates *)
  mutable retired_order : string list;  (** retirement order, reversed *)
  mutable pending_vars : (string * Var.t) list;  (** reversed *)
  mutable pending_factors : Factor.t list;  (** reversed *)
  mutable updates : int;
  mutable affected_last : int;
  mutable relinearized_last : int;
  mutable relin_passes_last : int;
  mutable marginalized_total : int;
}

exception Retired of string

let create ?(params = default_params) () =
  {
    params;
    vars = Hashtbl.create 64;
    order = [];
    next_pos = 0;
    factors = Hashtbl.create 128;
    next_lid = 0;
    homes = Hashtbl.create 64;
    touching = Hashtbl.create 64;
    conditionals = Hashtbl.create 64;
    leftovers = Hashtbl.create 64;
    history = Hashtbl.create 64;
    retired_order = [];
    pending_vars = [];
    pending_factors = [];
    updates = 0;
    affected_last = 0;
    relinearized_last = 0;
    relin_passes_last = 0;
    marginalized_total = 0;
  }

let is_retired t v = Hashtbl.mem t.history v

let has_variable t v =
  Hashtbl.mem t.vars v || List.exists (fun (n, _) -> n = v) t.pending_vars

let add_variable t name value =
  if has_variable t name then invalid_arg ("Smoother.add_variable: duplicate " ^ name);
  if is_retired t name then invalid_arg ("Smoother.add_variable: retired " ^ name);
  t.pending_vars <- (name, value) :: t.pending_vars

let add_factor t f =
  List.iter
    (fun v ->
      if not (has_variable t v) then
        if is_retired t v then raise (Retired v)
        else invalid_arg ("Smoother.add_factor: unknown variable " ^ v))
    (Factor.vars f);
  t.pending_factors <- f :: t.pending_factors

let vinfo t v =
  match Hashtbl.find_opt t.vars v with
  | Some vi -> vi
  | None -> invalid_arg ("Smoother: unknown variable " ^ v)

let pos_fn t v = (vinfo t v).vpos
let dims_fn t v = (vinfo t v).vdim
let lin_lookup t v = (vinfo t v).lin_point

let add_to_index table key v =
  match Hashtbl.find_opt table key with
  | Some l -> l := v :: !l
  | None -> Hashtbl.add table key (ref [ v ])

let remove_from_index table key v =
  match Hashtbl.find_opt table key with
  | Some l -> l := List.filter (fun x -> x <> v) !l
  | None -> ()

(* Register a committed factor record in all indices. *)
let register_frec t fr =
  Hashtbl.replace t.factors fr.lid fr;
  add_to_index t.homes fr.home fr.lid;
  List.iter (fun v -> add_to_index t.touching v fr.lid) fr.fscope

let commit_factor t f =
  let lid = t.next_lid in
  t.next_lid <- lid + 1;
  let fscope =
    Factor.vars f |> List.sort_uniq compare
    |> List.sort (fun a b -> compare (pos_fn t a) (pos_fn t b))
  in
  let lin = Linear_system.of_factor f (lin_lookup t) in
  let fr = { lid; fscope; home = List.hd fscope; origin = Measurement f; lin } in
  register_frec t fr;
  fr

(* Earliest-position scope variable of a linear factor.  Leftovers
   from [Elimination.eliminate_frontal] keep their scope pos-sorted,
   so this is the head; re-derive defensively anyway. *)
let target_of t (l : Linear_system.t) =
  match l.Linear_system.vars with
  | [] -> invalid_arg "Smoother: empty leftover scope"
  | v0 :: rest ->
      List.fold_left (fun best v -> if pos_fn t v < pos_fn t best then v else best) v0 rest

(* Affected-closure sweep.  All additions lie later in elimination
   position than the variable that triggered them — factor scopes
   homed at [v] start at [v], conditional parents are later — so one
   ascending pass over the live order settles membership. *)
let closure t seeds =
  let r = ref seeds in
  List.iter
    (fun v ->
      if Sset.mem v !r then begin
        (match Hashtbl.find_opt t.homes v with
        | Some lids ->
            List.iter
              (fun lid ->
                match Hashtbl.find_opt t.factors lid with
                | Some fr -> List.iter (fun s -> r := Sset.add s !r) fr.fscope
                | None -> ())
              !lids
        | None -> ());
        match Hashtbl.find_opt t.conditionals v with
        | Some c -> List.iter (fun (p, _) -> r := Sset.add p !r) c.Elimination.parents
        | None -> ()
      end)
    t.order;
  !r

(* Re-eliminate the affected set.  Inputs are the original factors
   homed inside it, keyed [(0, lid)], plus the cached leftovers
   flowing in from unaffected producers, keyed [(1, producer pos)];
   in-pass leftovers register under the same key scheme.  Sorting a
   frontal's adjacency by that key reproduces exactly the stacking
   order of a batch [Elimination.eliminate] fed the live factors in
   lid order (originals by registration, then leftovers by production
   position), so the partial QR is bit-identical to the batch one. *)
let reeliminate t affected =
  let in_r v = Sset.mem v affected in
  let sub_order = List.filter in_r t.order in
  let store : (int * int, Linear_system.t) Hashtbl.t = Hashtbl.create 64 in
  let adj : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  let register key (l : Linear_system.t) =
    Hashtbl.replace store key l;
    List.iter (fun v -> add_to_index adj v key) l.Linear_system.vars
  in
  Sset.iter
    (fun v ->
      match Hashtbl.find_opt t.homes v with
      | Some lids ->
          List.iter
            (fun lid ->
              match Hashtbl.find_opt t.factors lid with
              | Some fr -> register (0, fr.lid) fr.lin
              | None -> ())
            !lids
      | None -> ())
    affected;
  Hashtbl.iter
    (fun p l ->
      if (not (in_r p)) && in_r (target_of t l) then register (1, pos_fn t p) l)
    t.leftovers;
  let dims = dims_fn t and pos = pos_fn t in
  List.iter
    (fun v ->
      let keys =
        match Hashtbl.find_opt adj v with
        | Some l -> List.sort_uniq compare !l
        | None -> []
      in
      let adjacent = List.filter_map (fun k -> Hashtbl.find_opt store k) keys in
      List.iter (fun k -> Hashtbl.remove store k) keys;
      Hashtbl.remove adj v;
      let fr = Elimination.eliminate_frontal ~dims ~pos v adjacent in
      Hashtbl.replace t.conditionals v fr.Elimination.f_conditional;
      match fr.Elimination.f_leftover with
      | Some l ->
          Hashtbl.replace t.leftovers v l;
          register (1, pos v) l
      | None -> Hashtbl.remove t.leftovers v)
    sub_order

(* Back-substitute over every live conditional and refresh deltas and
   estimates. *)
let solve_all t =
  let conds = List.filter_map (fun v -> Hashtbl.find_opt t.conditionals v) t.order in
  let sol = Elimination.back_substitute conds in
  List.iter
    (fun (v, d) ->
      let vi = vinfo t v in
      vi.delta <- d;
      vi.estimate <- Var.retract vi.lin_point d)
    sol

let inf_norm (v : Vec.t) = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 v

(* Rebase dirty variables onto their current estimates, refresh every
   factor touching them, and return the seeds of the next pass. *)
let relinearize t dirty =
  List.iter
    (fun v ->
      let vi = vinfo t v in
      vi.lin_point <- vi.estimate;
      vi.delta <- Vec.create vi.vdim)
    dirty;
  let stale = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun v ->
      match Hashtbl.find_opt t.touching v with
      | Some lids ->
          List.iter
            (fun lid ->
              if not (Hashtbl.mem seen lid) then begin
                Hashtbl.add seen lid ();
                match Hashtbl.find_opt t.factors lid with
                | Some fr -> stale := fr :: !stale
                | None -> ()
              end)
            !lids
      | None -> ())
    dirty;
  let dirty_set = List.fold_left (fun s v -> Sset.add v s) Sset.empty dirty in
  List.iter
    (fun fr ->
      match fr.origin with
      | Measurement f -> fr.lin <- Linear_system.of_factor f (lin_lookup t)
      | Prior p ->
          (* First-order rebase: keep the Jacobian, shift the residual
             by the motion of each dirtied reference point. *)
          let rhs = ref fr.lin.Linear_system.rhs in
          p.refs <-
            List.map
              (fun (s, ref_point) ->
                if Sset.mem s dirty_set then begin
                  let vi = vinfo t s in
                  let d = Var.local ref_point vi.lin_point in
                  (match Linear_system.block fr.lin s with
                  | Some a -> rhs := Vec.sub !rhs (Mat.mul_vec a d)
                  | None -> ());
                  (s, vi.lin_point)
                end
                else (s, ref_point))
              p.refs;
          fr.lin <- { fr.lin with Linear_system.rhs = !rhs })
    !stale;
  List.fold_left (fun s fr -> Sset.add fr.home s) dirty_set !stale

(* Fold the oldest [k] variables out: the cached leftovers escaping
   the marginalized prefix carry exactly its marginal information on
   the separator; QR-compress them into one dense prior. *)
let marginalize t k =
  let rec split i acc = function
    | rest when i = 0 -> (List.rev acc, rest)
    | v :: rest -> split (i - 1) (v :: acc) rest
    | [] -> (List.rev acc, [])
  in
  let m_list, survivors = split k [] t.order in
  let m_set = List.fold_left (fun s v -> Sset.add v s) Sset.empty m_list in
  let escaped =
    List.filter_map
      (fun p ->
        match Hashtbl.find_opt t.leftovers p with
        | Some l when not (Sset.mem (target_of t l) m_set) -> Some l
        | _ -> None)
      m_list
  in
  let prior_lin =
    match escaped with
    | [] -> None
    | [ l ] -> Some l
    | ls ->
        let scope =
          List.concat_map (fun (l : Linear_system.t) -> l.Linear_system.vars) ls
          |> List.sort_uniq compare
          |> List.sort (fun a b -> compare (pos_fn t a) (pos_fn t b))
        in
        let offsets = Hashtbl.create 8 in
        let width = ref 0 in
        List.iter
          (fun v ->
            Hashtbl.add offsets v !width;
            width := !width + dims_fn t v)
          scope;
        let w = !width in
        let m = List.fold_left (fun acc l -> acc + Linear_system.rows l) 0 ls in
        let abar = Mat.create m (w + 1) in
        let row = ref 0 in
        List.iter
          (fun (l : Linear_system.t) ->
            List.iter
              (fun (var, b) -> Mat.set_block abar !row (Hashtbl.find offsets var) b)
              l.Linear_system.blocks;
            let r = Linear_system.rows l in
            for i = 0 to r - 1 do
              Mat.set abar (!row + i) w l.Linear_system.rhs.(i)
            done;
            row := !row + r)
          ls;
        let rbar = Qr.triangularize abar in
        (* Rows past the column count carry pure residual — no
           information about the separator — so drop them. *)
        let keep = min m w in
        let blocks =
          List.map
            (fun v -> (v, Mat.block rbar 0 (Hashtbl.find offsets v) keep (dims_fn t v)))
            scope
        in
        let rhs = Vec.init keep (fun i -> Mat.get rbar i w) in
        Some { Linear_system.vars = scope; blocks; rhs }
  in
  (* Retire the prefix: record final estimates, drop every factor
     homed inside it (all factors touching it are, since the prefix is
     position-minimal), its conditionals and leftovers. *)
  List.iter
    (fun v ->
      Hashtbl.replace t.history v (vinfo t v).estimate;
      t.retired_order <- v :: t.retired_order;
      Hashtbl.remove t.conditionals v;
      Hashtbl.remove t.leftovers v;
      (match Hashtbl.find_opt t.homes v with
      | Some lids ->
          List.iter
            (fun lid ->
              match Hashtbl.find_opt t.factors lid with
              | Some fr ->
                  Hashtbl.remove t.factors lid;
                  List.iter
                    (fun s -> if not (Sset.mem s m_set) then remove_from_index t.touching s lid)
                    fr.fscope
              | None -> ())
            !lids;
          Hashtbl.remove t.homes v
      | None -> ());
      Hashtbl.remove t.touching v;
      Hashtbl.remove t.vars v)
    m_list;
  t.order <- survivors;
  t.marginalized_total <- t.marginalized_total + k;
  (* Install the prior and rebuild the separator's subtree so every
     cached conditional reflects the current factor set. *)
  match prior_lin with
  | None -> Sset.empty
  | Some lin ->
      let lid = t.next_lid in
      t.next_lid <- lid + 1;
      let refs = List.map (fun s -> (s, (vinfo t s).lin_point)) lin.Linear_system.vars in
      let fr =
        {
          lid;
          fscope = lin.Linear_system.vars;
          home = List.hd lin.Linear_system.vars;
          origin = Prior { refs };
          lin;
        }
      in
      register_frec t fr;
      let affected = closure t (Sset.singleton fr.home) in
      reeliminate t affected;
      solve_all t;
      affected

let update t =
  if t.pending_vars = [] && t.pending_factors = [] then ()
  else begin
    let new_vars = List.rev t.pending_vars in
    let new_factors = List.rev t.pending_factors in
    t.pending_vars <- [];
    t.pending_factors <- [];
    List.iter
      (fun (name, value) ->
        let vpos = t.next_pos in
        t.next_pos <- vpos + 1;
        let vdim = Var.dim value in
        Hashtbl.add t.vars name
          { vpos; vdim; lin_point = value; estimate = value; delta = Vec.create vdim })
      new_vars;
    t.order <- t.order @ List.map fst new_vars;
    let total = List.length t.order in
    let seeds =
      List.fold_left
        (fun s (name, _) -> Sset.add name s)
        Sset.empty new_vars
    in
    let seeds =
      List.fold_left (fun s f -> Sset.add (commit_factor t f).home s) seeds new_factors
    in
    let affected = ref Sset.empty in
    let relinearized = ref 0 in
    let passes = ref 0 in
    let current = ref seeds in
    let continue_ = ref true in
    while !continue_ do
      incr passes;
      let r = closure t !current in
      affected := Sset.union !affected r;
      reeliminate t r;
      solve_all t;
      if t.params.relin_threshold <= 0.0 || !passes > t.params.max_relin_passes then
        continue_ := false
      else begin
        let dirty =
          List.filter (fun v -> inf_norm (vinfo t v).delta > t.params.relin_threshold) t.order
        in
        if dirty = [] then continue_ := false
        else begin
          relinearized := !relinearized + List.length dirty;
          current := relinearize t dirty
        end
      end
    done;
    (match t.params.window with
    | Some w when List.length t.order > w ->
        let folded = marginalize t (List.length t.order - w) in
        affected := Sset.union !affected folded
    | _ -> ());
    t.updates <- t.updates + 1;
    t.affected_last <- Sset.cardinal !affected;
    t.relinearized_last <- !relinearized;
    t.relin_passes_last <- !passes - 1;
    Obs.count "fg.incremental.updates";
    Obs.count ~n:t.affected_last "fg.incremental.affected";
    if !relinearized > 0 then Obs.count ~n:!relinearized "fg.incremental.relinearized";
    if total > 0 then
      Obs.observe "fg.incremental.affected_fraction"
        (float_of_int t.affected_last /. float_of_int total)
  end

let estimate t v =
  match Hashtbl.find_opt t.vars v with
  | Some vi -> vi.estimate
  | None -> (
      match Hashtbl.find_opt t.history v with Some e -> e | None -> raise Not_found)

let estimates t = List.map (fun v -> (v, (vinfo t v).estimate)) t.order

let all_estimates t =
  List.rev_map (fun v -> (v, Hashtbl.find t.history v)) t.retired_order @ estimates t

let delta t v = (vinfo t v).delta

let live_variables t = t.order

let error t =
  Hashtbl.fold
    (fun _ fr acc ->
      match fr.origin with
      | Measurement f -> acc +. Factor.error_norm_sq f (fun v -> (vinfo t v).estimate)
      | Prior _ -> acc)
    t.factors 0.0

let stats t =
  {
    total_variables = List.length t.order;
    affected_last = t.affected_last;
    relinearized_last = t.relinearized_last;
    relin_passes_last = t.relin_passes_last;
    marginalized = t.marginalized_total;
    updates = t.updates;
  }
