(** The factor graph: the paper's programming model (Sec. 5.1).

    Users start from an empty graph, add variables with initial
    values and factors relating them, then call the optimizer.  The
    graph owns the current estimate. *)

type t

val create : unit -> t

val add_variable : t -> string -> Var.t -> unit
(** Raises [Invalid_argument] if the name is already taken. *)

val add_factor : t -> Factor.t -> unit
(** Every variable of the factor must already exist. *)

val has_variable : t -> string -> bool

val value : t -> string -> Var.t
(** Raises [Not_found] on unknown names. *)

val set_value : t -> string -> Var.t -> unit
(** Replace the estimate of an existing variable (kind must match). *)

val lookup : t -> Factor.lookup

val variables : t -> string list
(** Insertion order. *)

val factors : t -> Factor.t list
(** Insertion order. *)

val num_variables : t -> int

val num_factors : t -> int

val dims : t -> string -> int

val total_dim : t -> int
(** Sum of variable tangent dimensions. *)

val total_rows : t -> int
(** Sum of factor error dimensions. *)

val error : t -> float
(** Objective of Equ. 1: sum of squared whitened factor errors. *)

val linearize : t -> Linear_system.t list
(** All factors, insertion order. *)

val factor_scopes : t -> string list list

val copy : t -> t
(** Independent working copy: mutating the copy's variable values
    ([set_value]/[restore_values]) leaves the original untouched.
    Structure (variables, factors) and the immutable values themselves
    are shared.  Fault campaigns hand one copy per worker so missions
    can corrupt and re-solve graphs concurrently. *)

val copy_values : t -> (string * Var.t) list

val restore_values : t -> (string * Var.t) list -> unit
