(** Deterministic Monte-Carlo fault-injection campaigns.

    A campaign replays [missions] independent faults against one
    compiled application (its factor graphs, instruction stream and
    generated accelerator), classifies each as masked / detected →
    recovered / escaped, and aggregates per-class statistics.  All
    randomness flows from the caller's {!Orianna_util.Rng}, so a
    campaign is bit-for-bit reproducible from its seed.

    Detection and recovery walk the degradation ladder: bounded
    damped retry (with exponential backoff), rescheduling on a
    degraded accelerator with the failed instance masked out, and
    final fallback to the software baseline model.  Every event is
    also counted through {!Orianna_obs.Obs} (counters
    [fault.<class>.<outcome>], [fault.detected_by.<detector>],
    [fault.recovered_by.<recovery>]) when telemetry is enabled. *)

open Orianna_isa
open Orianna_hw
open Orianna_sim

type config = {
  missions : int;
  policy : Schedule.policy;
  max_retries : int;  (** bounded retry budget per detected fault *)
  backoff_cycles : int;  (** base backoff quantum, doubled per attempt *)
}

val default_config : config
(** 32 missions, OoO policy, 2 retries, 64-cycle backoff quantum. *)

type class_stats = {
  injected : int;
  detected : int;
  recovered : int;
  masked : int;
  escaped : int;
}

type summary = {
  events : Fault.event list;  (** in mission order *)
  per_class : (Fault.fclass * class_stats) list;  (** in {!Fault.all_classes} order *)
  totals : class_stats;
  worst_slowdown : float;
      (** worst execution-time ratio of a degraded or fallback run
          against the healthy accelerator (1.0 if none occurred) *)
  total_backoff_cycles : int;
}

val escaped : summary -> bool
(** True iff any fault escaped both detection and recovery. *)

val run :
  ?config:config ->
  rng:Orianna_util.Rng.t ->
  graphs:(string * Orianna_fg.Graph.t) list ->
  program:Program.t ->
  accel:Accel.t ->
  unit ->
  summary
(** Run a campaign.  The graphs are solved to convergence first (they
    are mutated) to establish the reference the runtime residual
    monitor compares against; the fault-free schedule is asserted
    against {!Schedule.check_invariants} before any injection. *)

val table : summary -> string
(** Per-class counts and detection/recovery rates as a rendered text
    table (detection rate is over non-masked injections). *)

val json : ?meta:(string * Orianna_obs.Json.t) list -> summary -> Orianna_obs.Json.t
(** The campaign as JSON: the per-mission event log, per-class and
    total statistics, worst slowdown and backoff budget — everything
    the [faults --json] CLI emits, with the optional [meta] object
    prepended.  The payload carries no timings, so it diffs
    byte-for-byte across job counts; the j1-vs-j4 determinism tests
    compare it directly. *)
