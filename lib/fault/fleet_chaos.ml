open Orianna_util
module Serve = Orianna_serve.Serve
module Request = Orianna_serve.Request
module Dispatch = Orianna_serve.Dispatch
module Chaos = Orianna_serve.Chaos
module Json = Orianna_obs.Json

type config = {
  runs : int;
  requests : int;
  rate_hz : float;
  apps : string list;
  deadline_s : float * float;
  intensity : float;
  mttr_s : float;
  max_retries : int;
  hedge : bool;
  policy : Dispatch.policy;
  instances : int;
  opt_level : int;
}

let default_config =
  {
    runs = 16;
    requests = 120;
    rate_hz = 20000.0;
    apps = [];
    deadline_s = (1e-3, 4e-3);
    intensity = 0.1;
    mttr_s = 2e-3;
    max_retries = 2;
    hedge = false;
    policy = Dispatch.Edf;
    instances = 4;
    opt_level = 1;
  }

type run_result = {
  run : int;
  availability : float;
  completion_rate : float;  (** completed / admitted *)
  p99_ms : float;
  deadline_miss_rate : float;
  retries : int;
  failed_after_retries : int;
  crashes : int;
  hangs : int;
  conserved : bool;  (** every trace id in exactly one terminal state *)
}

type summary = {
  config : config;
  results : run_result list;
  availability_min : float;
  availability_mean : float;
  completion_mean : float;
  p99_min_ms : float;
  p99_mean_ms : float;
  p99_max_ms : float;
  total_retries : int;
  total_failed : int;
  all_conserved : bool;
}

(* The fleet-level conservation law: completions and structured
   rejections partition the trace's request ids — nothing lost, nothing
   duplicated, even with hedged copies racing. *)
let conserved (trace : Request.t list) (r : Serve.report) =
  let module IS = Set.Make (Int) in
  let ids = List.fold_left (fun s (q : Request.t) -> IS.add q.Request.id s) IS.empty trace in
  let comp =
    List.fold_left (fun s (c : Serve.completion) -> IS.add c.Serve.request.Request.id s) IS.empty
      r.Serve.completions
  in
  let rej =
    List.fold_left (fun s ((q : Request.t), _) -> IS.add q.Request.id s) IS.empty r.Serve.rejections
  in
  List.length r.Serve.completions = IS.cardinal comp
  && List.length r.Serve.rejections = IS.cardinal rej
  && IS.inter comp rej = IS.empty
  && IS.equal (IS.union comp rej) ids

let run ?(config = default_config) ~rng () =
  if config.runs <= 0 then invalid_arg "Fleet_chaos.run: need at least one run";
  if config.apps = [] then invalid_arg "Fleet_chaos.run: no apps";
  (* Split table up front, sequentially: each Monte-Carlo run gets an
     independent trace stream and chaos seed, so the campaign is a pure
     function of [rng] at any job count. *)
  let inputs =
    List.init config.runs (fun i ->
        let trace_rng = Rng.split rng in
        let chaos_seed = Rng.int (Rng.split rng) 0x3FFFFFFF in
        (i, trace_rng, chaos_seed))
  in
  let one (i, trace_rng, chaos_seed) =
    let trace =
      Request.generate ~rng:trace_rng
        ~shape:(Request.Poisson { rate_hz = config.rate_hz })
        ~apps:config.apps ~deadline_s:config.deadline_s ~n:config.requests
    in
    let serve_config =
      {
        Serve.default_config with
        Serve.instances = config.instances;
        policy = config.policy;
        opt_level = config.opt_level;
        max_retries = config.max_retries;
        hedge = config.hedge;
        chaos =
          Some (Chaos.of_intensity ~seed:chaos_seed ~mttr_s:config.mttr_s config.intensity);
      }
    in
    let r = Serve.run ~config:serve_config ~trace () in
    let c = match r.Serve.chaos with Some c -> c | None -> assert false in
    {
      run = i;
      availability = c.Serve.availability;
      completion_rate =
        (if r.Serve.admitted = 0 then 1.0
         else float_of_int r.Serve.completed /. float_of_int r.Serve.admitted);
      p99_ms = r.Serve.p99_ms;
      deadline_miss_rate = r.Serve.deadline_miss_rate;
      retries = c.Serve.retries;
      failed_after_retries = c.Serve.failed_after_retries;
      crashes = c.Serve.crashes;
      hangs = c.Serve.hangs;
      conserved = conserved trace r;
    }
  in
  let results = Orianna_par.Pool.parallel_map_list ~chunk:1 one inputs in
  let fold f init = List.fold_left f init results in
  let nf = float_of_int config.runs in
  {
    config;
    results;
    availability_min = fold (fun acc r -> Float.min acc r.availability) 1.0;
    availability_mean = fold (fun acc r -> acc +. (r.availability /. nf)) 0.0;
    completion_mean = fold (fun acc r -> acc +. (r.completion_rate /. nf)) 0.0;
    p99_min_ms = fold (fun acc r -> Float.min acc r.p99_ms) infinity;
    p99_mean_ms = fold (fun acc r -> acc +. (r.p99_ms /. nf)) 0.0;
    p99_max_ms = fold (fun acc r -> Float.max acc r.p99_ms) 0.0;
    total_retries = fold (fun acc r -> acc + r.retries) 0;
    total_failed = fold (fun acc r -> acc + r.failed_after_retries) 0;
    all_conserved = fold (fun acc r -> acc && r.conserved) true;
  }

let silent_loss s = not s.all_conserved

let table s =
  let t =
    Texttable.create ~title:"Fleet chaos campaign"
      ~headers:[ "run"; "avail"; "done"; "p99"; "miss"; "retries"; "failed"; "crash"; "hang"; "ok" ]
  in
  List.iter
    (fun r ->
      Texttable.add_row t
        [
          string_of_int r.run;
          Printf.sprintf "%.3f" r.availability;
          Printf.sprintf "%.2f" r.completion_rate;
          Printf.sprintf "%.3f ms" r.p99_ms;
          Printf.sprintf "%.2f" r.deadline_miss_rate;
          string_of_int r.retries;
          string_of_int r.failed_after_retries;
          string_of_int r.crashes;
          string_of_int r.hangs;
          (if r.conserved then "yes" else "LOST");
        ])
    s.results;
  let sum =
    Texttable.create ~title:"Summary" ~headers:[ "metric"; "value" ]
  in
  let add k v = Texttable.add_row sum [ k; v ] in
  add "runs" (string_of_int s.config.runs);
  add "fault intensity" (Printf.sprintf "%.2f (mttr %.3f ms)" s.config.intensity (s.config.mttr_s *. 1e3));
  add "availability min/mean" (Printf.sprintf "%.4f / %.4f" s.availability_min s.availability_mean);
  add "completion rate mean" (Printf.sprintf "%.4f" s.completion_mean);
  add "p99 under faults min/mean/max"
    (Printf.sprintf "%.3f / %.3f / %.3f ms" s.p99_min_ms s.p99_mean_ms s.p99_max_ms);
  add "retries / failed-after-retries"
    (Printf.sprintf "%d / %d" s.total_retries s.total_failed);
  add "conservation" (if s.all_conserved then "all runs conserved" else "SILENT LOSS");
  Texttable.render t ^ "\n" ^ Texttable.render sum

let json s =
  Json.Obj
    [
      ( "config",
        Json.Obj
          [
            ("runs", Json.int s.config.runs);
            ("requests", Json.int s.config.requests);
            ("intensity", Json.Num s.config.intensity);
            ("mttr_s", Json.Num s.config.mttr_s);
            ("max_retries", Json.int s.config.max_retries);
            ("hedge", Json.Bool s.config.hedge);
            ("instances", Json.int s.config.instances);
            ("policy", Json.Str (Dispatch.policy_name s.config.policy));
          ] );
      ( "runs",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("run", Json.int r.run);
                   ("availability", Json.Num r.availability);
                   ("completion_rate", Json.Num r.completion_rate);
                   ("p99_ms", Json.Num r.p99_ms);
                   ("deadline_miss_rate", Json.Num r.deadline_miss_rate);
                   ("retries", Json.int r.retries);
                   ("failed_after_retries", Json.int r.failed_after_retries);
                   ("crashes", Json.int r.crashes);
                   ("hangs", Json.int r.hangs);
                   ("conserved", Json.Bool r.conserved);
                 ])
             s.results) );
      ("availability_min", Json.Num s.availability_min);
      ("availability_mean", Json.Num s.availability_mean);
      ("completion_mean", Json.Num s.completion_mean);
      ("p99_mean_ms", Json.Num s.p99_mean_ms);
      ("p99_max_ms", Json.Num s.p99_max_ms);
      ("total_retries", Json.int s.total_retries);
      ("total_failed", Json.int s.total_failed);
      ("all_conserved", Json.Bool s.all_conserved);
    ]
