(** Fault model for the generated accelerators.

    Four fault classes cover the failure modes a deployed
    optimization accelerator realistically sees:

    - [Bit_flip]: an SEU corrupts a unit's output word — modelled as a
      single flipped bit in a solver result value;
    - [Stuck_unit]: a unit instance goes offline (stuck-at, clock
      domain loss) and never completes another instruction;
    - [Latency_jitter]: a degraded unit takes longer than its analytic
      latency (voltage droop, retried bus transactions);
    - [Instr_corruption]: a bit of the binary instruction image flips
      in DRAM or on the fetch path.

    Every injected fault is drawn from {!Orianna_util.Rng}, so a
    campaign replays bit-for-bit from its seed. *)

type fclass = Bit_flip | Stuck_unit | Latency_jitter | Instr_corruption

val all_classes : fclass list

val class_name : fclass -> string

(** Which mechanism caught a fault. *)
type detector =
  | Checksum  (** instruction-stream CRC trailer ({!Orianna_isa.Encode.verify}) *)
  | Decoder  (** structural decode failure ([Decode_error]) *)
  | Nan_guard  (** non-finite residual check in the optimizer *)
  | Residual_guard  (** residual increased beyond the converged reference *)
  | Invariant_check  (** schedule stall/latency accounting assertion *)
  | Watchdog  (** completion timeout on a stuck unit *)

val detector_name : detector -> string

(** Which rung of the degradation ladder completed the mission. *)
type recovery = Retry | Reschedule_degraded | Software_fallback

val recovery_name : recovery -> string

type outcome =
  | Masked  (** fault injected but architecturally invisible (no output deviation) *)
  | Recovered of {
      detector : detector;
      recovery : recovery;
      attempts : int;
      backoff_cycles : int;  (** simulated backoff spent before success *)
    }
  | Escaped of string
      (** no detector fired and the output deviates — silent data
          corruption; the description says how *)

type event = { mission : int; fclass : fclass; description : string; outcome : outcome }

val outcome_name : outcome -> string

val pp_event : Format.formatter -> event -> unit

val flip_bit_f64 : float -> int -> float
(** Flip bit [0..63] of the IEEE-754 representation. *)

val flip_bit_in_string : string -> int -> string
(** Flip one bit of a byte string (bit index over the whole string,
    little-endian within each byte). *)

val program_has_nonfinite : Orianna_isa.Program.t -> bool
(** Scan embedded constants ([Load] matrices, [Scale] payloads) for
    NaN / infinity. *)
