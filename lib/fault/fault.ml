type fclass = Bit_flip | Stuck_unit | Latency_jitter | Instr_corruption

let all_classes = [ Bit_flip; Stuck_unit; Latency_jitter; Instr_corruption ]

let class_name = function
  | Bit_flip -> "bit-flip"
  | Stuck_unit -> "stuck-unit"
  | Latency_jitter -> "latency-jitter"
  | Instr_corruption -> "instr-corruption"

type detector =
  | Checksum
  | Decoder
  | Nan_guard
  | Residual_guard
  | Invariant_check
  | Watchdog

let detector_name = function
  | Checksum -> "checksum"
  | Decoder -> "decoder"
  | Nan_guard -> "nan-guard"
  | Residual_guard -> "residual-guard"
  | Invariant_check -> "invariant-check"
  | Watchdog -> "watchdog"

type recovery = Retry | Reschedule_degraded | Software_fallback

let recovery_name = function
  | Retry -> "retry"
  | Reschedule_degraded -> "reschedule-degraded"
  | Software_fallback -> "software-fallback"

type outcome =
  | Masked
  | Recovered of {
      detector : detector;
      recovery : recovery;
      attempts : int;
      backoff_cycles : int;
    }
  | Escaped of string

type event = { mission : int; fclass : fclass; description : string; outcome : outcome }

let outcome_name = function
  | Masked -> "masked"
  | Recovered _ -> "recovered"
  | Escaped _ -> "escaped"

let pp_event ppf e =
  Format.fprintf ppf "mission %3d  %-16s %-40s " e.mission (class_name e.fclass) e.description;
  match e.outcome with
  | Masked -> Format.fprintf ppf "masked"
  | Recovered { detector; recovery; attempts; backoff_cycles } ->
      Format.fprintf ppf "detected by %s, recovered via %s (%d attempt%s, %d backoff cycles)"
        (detector_name detector) (recovery_name recovery) attempts
        (if attempts = 1 then "" else "s")
        backoff_cycles
  | Escaped why -> Format.fprintf ppf "ESCAPED: %s" why

(* ------------------------------------------------------------------ *)
(* Bit-level corruption helpers                                        *)

let flip_bit_f64 x bit =
  if bit < 0 || bit > 63 then invalid_arg "Fault.flip_bit_f64: bit out of range";
  Int64.float_of_bits (Int64.logxor (Int64.bits_of_float x) (Int64.shift_left 1L bit))

let flip_bit_in_string s bit =
  let byte = bit / 8 in
  if byte >= String.length s then invalid_arg "Fault.flip_bit_in_string: bit out of range";
  let b = Bytes.of_string s in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

(* ------------------------------------------------------------------ *)
(* Program-level scans                                                 *)

open Orianna_isa

let program_has_nonfinite (p : Program.t) =
  let bad = ref false in
  let check x = if not (Float.is_finite x) then bad := true in
  Array.iter
    (fun (ins : Instr.t) ->
      match ins.Instr.op with
      | Instr.Load m ->
          let rows, cols = Orianna_linalg.Mat.dims m in
          for i = 0 to rows - 1 do
            for j = 0 to cols - 1 do
              check (Orianna_linalg.Mat.get m i j)
            done
          done
      | Instr.Scale s -> check s
      | _ -> ())
    p.Program.instrs;
  !bad
