(** Monte-Carlo campaign over the fleet-level chaos model: many seeded
    serving runs under injected instance faults, summarizing
    availability and tail-latency-under-faults distributions and
    checking the conservation law (every admitted request ends in
    exactly one terminal state) on every run.

    The device-level sibling is {!Campaign} (faults inside one
    accelerator); this campaign injects faults at the {e fleet} layer —
    instance crashes, hangs, transient errors, slowdowns — and
    exercises the serving runtime's health checking, circuit breakers,
    retry/hedging and failover recovery.  Runs are fanned out over the
    domain pool with a split-table RNG, so the summary is bit-identical
    at any [-j] count. *)

type config = {
  runs : int;  (** Monte-Carlo serving runs *)
  requests : int;  (** trace length per run *)
  rate_hz : float;
  apps : string list;
  deadline_s : float * float;  (** uniform slack range *)
  intensity : float;  (** {!Orianna_serve.Chaos.of_intensity} knob *)
  mttr_s : float;
  max_retries : int;
  hedge : bool;
  policy : Orianna_serve.Dispatch.policy;
  instances : int;
  opt_level : int;
}

val default_config : config
(** 16 runs of 120 requests at 20 kHz, 4-instance EDF fleet, intensity
    0.1 with 2 ms MTTR, 2 retries, no hedging.  [apps] is empty and
    must be supplied. *)

type run_result = {
  run : int;
  availability : float;
  completion_rate : float;  (** completed / admitted *)
  p99_ms : float;
  deadline_miss_rate : float;
  retries : int;
  failed_after_retries : int;
  crashes : int;
  hangs : int;
  conserved : bool;  (** every trace id in exactly one terminal state *)
}

type summary = {
  config : config;
  results : run_result list;
  availability_min : float;
  availability_mean : float;
  completion_mean : float;
  p99_min_ms : float;
  p99_mean_ms : float;
  p99_max_ms : float;
  total_retries : int;
  total_failed : int;
  all_conserved : bool;
}

val conserved : Orianna_serve.Request.t list -> Orianna_serve.Serve.report -> bool
(** Completions and rejections partition the trace's ids: no silent
    loss, no double completion. *)

val run : ?config:config -> rng:Orianna_util.Rng.t -> unit -> summary

val silent_loss : summary -> bool
(** True iff any run broke conservation — the campaign's failure
    condition (the CLI exits non-zero on it). *)

val table : summary -> string

val json : summary -> Orianna_obs.Json.t
(** Deterministic (no wall-clock content); byte-identical across job
    counts. *)
