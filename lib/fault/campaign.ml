open Orianna_isa
open Orianna_hw
open Orianna_sim
open Orianna_baselines
module Rng = Orianna_util.Rng
module Texttable = Orianna_util.Texttable
module Graph = Orianna_fg.Graph
module Var = Orianna_fg.Var
module Optimizer = Orianna_fg.Optimizer
module Obs = Orianna_obs.Obs
module Pool = Orianna_par.Pool

type config = {
  missions : int;
  policy : Schedule.policy;
  max_retries : int;
  backoff_cycles : int;
}

let default_config =
  { missions = 32; policy = Schedule.Ooo_full; max_retries = 2; backoff_cycles = 64 }

type class_stats = {
  injected : int;
  detected : int;
  recovered : int;
  masked : int;
  escaped : int;
}

let zero_stats = { injected = 0; detected = 0; recovered = 0; masked = 0; escaped = 0 }

type summary = {
  events : Fault.event list;
  per_class : (Fault.fclass * class_stats) list;
  totals : class_stats;
  worst_slowdown : float;
  total_backoff_cycles : int;
}

let escaped s = s.totals.escaped > 0

(* A flipped value counts as architecturally masked when it cannot
   move any mission-level acceptance check (those tolerate ~1e-1);
   anything larger must be caught by a detector or it is silent data
   corruption. *)
let masked_deviation = 1e-3

(* Residual monitor sensitivity: the runtime compares the live
   objective against the converged reference it stored. *)
let residual_slack ref_error = 1e-9 +. (1e-9 *. Float.abs ref_error)

(* Re-solve acceptance: a retry succeeded when it lands back at (or
   below) the reference objective, up to relative tolerance. *)
let resolve_ok ~ref_error err =
  Float.is_finite err && err <= ref_error +. 1e-9 +. (1e-6 *. Float.abs ref_error)

type graph_ref = {
  gname : string;
  graph : Graph.t;
  ref_error : float;
  solution : (string * Var.t) list;
}

(* ------------------------------------------------------------------ *)
(* Per-class mission simulations                                       *)

let backoff_total ~config attempts =
  (* Exponential backoff: 1x, 2x, 4x ... of the base quantum. *)
  let rec go acc k = if k <= 0 then acc else go (acc + (config.backoff_cycles * (1 lsl (k - 1)))) (k - 1) in
  go 0 attempts

let bit_flip_mission ~config ~mrng ~grefs =
  let gr = List.nth grefs (Rng.int mrng (List.length grefs)) in
  Graph.restore_values gr.graph gr.solution;
  let vector_vars =
    List.filter
      (fun v -> match Graph.value gr.graph v with Var.Vector _ -> true | _ -> false)
      (Graph.variables gr.graph)
  in
  match vector_vars with
  | [] -> ("no vector-valued unit output in " ^ gr.gname, Fault.Masked)
  | vars -> (
      let v = List.nth vars (Rng.int mrng (List.length vars)) in
      let vec =
        match Graph.value gr.graph v with Var.Vector vec -> vec | _ -> assert false
      in
      let j = Rng.int mrng (Array.length vec) in
      let bit = Rng.int mrng 64 in
      let vec' = Array.copy vec in
      vec'.(j) <- Fault.flip_bit_f64 vec'.(j) bit;
      Graph.set_value gr.graph v (Var.Vector vec');
      let desc = Printf.sprintf "%s: bit %d of %s[%d]" gr.gname bit v j in
      let err = Graph.error gr.graph in
      let detector =
        if not (Float.is_finite err) then Some Fault.Nan_guard
        else if Float.abs (err -. gr.ref_error) > residual_slack gr.ref_error then
          Some Fault.Residual_guard
        else None
      in
      match detector with
      | None ->
          let deviation =
            List.fold_left
              (fun acc (name, value) ->
                Float.max acc (Var.distance value (Graph.value gr.graph name)))
              0.0 gr.solution
          in
          Graph.restore_values gr.graph gr.solution;
          if deviation > masked_deviation then
            (desc, Fault.Escaped (Printf.sprintf "silent corruption, deviation %.3g" deviation))
          else (desc, Fault.Masked)
      | Some detector ->
          (* Degradation ladder: bounded damped re-solves from the
             corrupted state, then restore the checkpointed solution
             (the software model re-derives it). *)
          let rec attempt k =
            if k > config.max_retries then begin
              Graph.restore_values gr.graph gr.solution;
              Fault.Recovered
                {
                  detector;
                  recovery = Fault.Software_fallback;
                  attempts = config.max_retries + 1;
                  backoff_cycles = backoff_total ~config config.max_retries;
                }
            end
            else begin
              (* The corrupted state may make the linearized system
                 singular or non-finite; any solver exception is just a
                 failed attempt, handled by the next rung. *)
              let resolved =
                match Optimizer.optimize gr.graph with
                | report ->
                    report.Optimizer.converged
                    && resolve_ok ~ref_error:gr.ref_error report.Optimizer.final_error
                | exception (Failure _ | Orianna_util.Error.Error _) -> false
              in
              if resolved then
                Fault.Recovered
                  {
                    detector;
                    recovery = Fault.Retry;
                    attempts = k;
                    backoff_cycles = backoff_total ~config (k - 1);
                  }
              else attempt (k + 1)
            end
          in
          let outcome = attempt 1 in
          Graph.restore_values gr.graph gr.solution;
          (desc, outcome))

let stuck_unit_mission ~config ~mrng ~program ~accel ~ref_sched =
  let classes = Array.of_list Unit_model.all_classes in
  let cls = classes.(Rng.int mrng (Array.length classes)) in
  let instance = Rng.int mrng (Accel.count accel cls) in
  let used =
    Array.exists
      (fun (ins : Instr.t) -> Unit_model.class_of_op ins.Instr.op = cls)
      program.Program.instrs
  in
  let desc =
    Printf.sprintf "%s instance %d/%d offline" (Unit_model.class_name cls) instance
      (Accel.count accel cls)
  in
  if not used then (desc ^ " (class unused)", Fault.Masked, 1.0)
  else begin
    (* The watchdog always notices: instructions bound to the dead
       instance never complete.  Ladder: reschedule on the degraded
       configuration, then software fallback. *)
    let fallback attempts =
      let sw = Cpu_model.run Cpu_model.arm program in
      ( Fault.Recovered
          {
            detector = Fault.Watchdog;
            recovery = Fault.Software_fallback;
            attempts;
            backoff_cycles = backoff_total ~config (attempts - 1);
          },
        sw.Cpu_model.seconds /. ref_sched.Schedule.seconds )
    in
    let outcome, slowdown =
      match Accel.with_masked accel cls with
      | None -> fallback 1
      | Some degraded -> (
          match
            let r = Schedule.run ~accel:degraded ~policy:config.policy program in
            (r, Schedule.check_invariants ~accel:degraded program r)
          with
          | r, Ok () ->
              ( Fault.Recovered
                  {
                    detector = Fault.Watchdog;
                    recovery = Fault.Reschedule_degraded;
                    attempts = 1;
                    backoff_cycles = 0;
                  },
                r.Schedule.seconds /. ref_sched.Schedule.seconds )
          | _, Error _ -> fallback 2
          | exception Schedule.Deadlock _ -> fallback 2)
    in
    (desc, outcome, slowdown)
  end

let jitter_mission ~config ~mrng ~program ~accel =
  let n = Array.length program.Program.instrs in
  if n = 0 then ("empty program", Fault.Masked)
  else begin
    let targets = Hashtbl.create 4 in
    let k = 1 + Rng.int mrng (min 4 n) in
    for _ = 1 to k do
      Hashtbl.replace targets (Rng.int mrng n) (1 + Rng.int mrng 32)
    done;
    let jitter id = Option.value ~default:0 (Hashtbl.find_opt targets id) in
    let desc =
      Printf.sprintf "+[1,32] cycles on %d instruction%s" (Hashtbl.length targets)
        (if Hashtbl.length targets = 1 then "" else "s")
    in
    let r = Schedule.run ~accel ~policy:config.policy ~jitter program in
    match Schedule.check_invariants ~accel program r with
    | Ok () -> (desc, Fault.Escaped "latency anomaly passed the schedule invariant check")
    | Error _ -> (
        (* Transient: re-run clean, verify the accounting holds. *)
        let r' = Schedule.run ~accel ~policy:config.policy program in
        match Schedule.check_invariants ~accel program r' with
        | Ok () ->
            ( desc,
              Fault.Recovered
                {
                  detector = Fault.Invariant_check;
                  recovery = Fault.Retry;
                  attempts = 1;
                  backoff_cycles = backoff_total ~config 1;
                } )
        | Error msg -> (desc, Fault.Escaped ("retry still violates invariants: " ^ msg)))
  end

let corruption_mission ~mrng ~image ~payload =
  let bit = Rng.int mrng (8 * String.length image) in
  let corrupted = Fault.flip_bit_in_string image bit in
  let desc = Printf.sprintf "image bit %d of %d" bit (8 * String.length image) in
  match Encode.verify corrupted with
  | Error _ ->
      (* Checksum caught it; the controller re-fetches the pristine
         image, which verifies. *)
      let outcome =
        match Encode.verify image with
        | Ok _ ->
            Fault.Recovered
              { detector = Fault.Checksum; recovery = Fault.Retry; attempts = 1; backoff_cycles = 0 }
        | Error msg -> Fault.Escaped ("pristine image fails verification: " ^ msg)
      in
      (desc, outcome)
  | Ok payload' -> (
      match Encode.decode payload' with
      | p' ->
          if Encode.encode p' = payload && not (Fault.program_has_nonfinite p') then
            (desc, Fault.Masked)
          else (desc, Fault.Escaped "corrupted image passed the checksum")
      | exception Encode.Decode_error _ ->
          ( desc,
            Fault.Recovered
              { detector = Fault.Decoder; recovery = Fault.Retry; attempts = 1; backoff_cycles = 0 }
          ))

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                     *)

let count_event stats (outcome : Fault.outcome) =
  match outcome with
  | Fault.Masked -> { stats with injected = stats.injected + 1; masked = stats.masked + 1 }
  | Fault.Recovered _ ->
      {
        stats with
        injected = stats.injected + 1;
        detected = stats.detected + 1;
        recovered = stats.recovered + 1;
      }
  | Fault.Escaped _ -> { stats with injected = stats.injected + 1; escaped = stats.escaped + 1 }

let run ?(config = default_config) ~rng ~graphs ~program ~accel () =
  Obs.with_span "fault.campaign"
    ~attrs:[ ("missions", string_of_int config.missions) ]
  @@ fun () ->
  let ref_sched = Schedule.run ~accel ~policy:config.policy program in
  (match Schedule.check_invariants ~accel program ref_sched with
  | Ok () -> ()
  | Error msg ->
      Orianna_util.Error.fail Orianna_util.Error.Schedule ~context:[ "fault campaign" ]
        ("fault-free schedule violates invariants: " ^ msg));
  let image = Encode.encode_checksummed program in
  let payload = Encode.encode program in
  let grefs =
    List.map
      (fun (gname, graph) ->
        ignore (Optimizer.optimize graph);
        let ref_error = Graph.error graph in
        { gname; graph; ref_error; solution = Graph.copy_values graph })
      graphs
  in
  (* Missions are mutually independent: every mission path restores
     the graph state it touched, and each draws from its own split RNG
     stream.  Splitting all streams up front makes mission [m]'s
     stream identical to what the sequential [Rng.split]-per-iteration
     loop produced, so outcomes are bit-identical at any job count —
     including under work-stealing, where which lane runs a mission is
     nondeterministic but the mission's inputs never are.  The only
     shared mutable state is the gref graphs: each pool lane that runs
     a bit-flip mission gets one lazily-created [Graph.copy] scratch
     set for the whole campaign (lane 0 is the caller and keeps the
     originals, so a sequential run touches exactly what the
     sequential campaign always touched).  A lane runs at most one
     mission at a time and every mission path restores the graph state
     it perturbs, so a lane's scratch set is pristine between
     missions. *)
  let mission_rngs = Rng.split_n rng config.missions in
  let scratch = Array.make (Pool.max_lanes ()) None in
  let copy_grefs () =
    List.map (fun gr -> { gr with graph = Graph.copy gr.graph }) grefs
  in
  let grefs_for_lane () =
    let lane = Pool.self_lane () in
    if lane = 0 then grefs
    else if lane >= Array.length scratch then copy_grefs ()
    else
      match scratch.(lane) with
      | Some cached -> cached
      | None ->
          let cached = copy_grefs () in
          scratch.(lane) <- Some cached;
          cached
  in
  let mission m mrng =
    let fclass = List.nth Fault.all_classes (Rng.int mrng (List.length Fault.all_classes)) in
    let (description, outcome), slowdown =
      match fclass with
      | Fault.Bit_flip -> (bit_flip_mission ~config ~mrng ~grefs:(grefs_for_lane ()), 1.0)
      | Fault.Stuck_unit ->
          let d, o, slowdown = stuck_unit_mission ~config ~mrng ~program ~accel ~ref_sched in
          ((d, o), slowdown)
      | Fault.Latency_jitter -> (jitter_mission ~config ~mrng ~program ~accel, 1.0)
      | Fault.Instr_corruption -> (corruption_mission ~mrng ~image ~payload, 1.0)
    in
    ({ Fault.mission = m; fclass; description; outcome }, slowdown)
  in
  (* One slot per mission (~chunk:1): mission costs vary by orders of
     magnitude across fault classes, so singleton chunks let idle
     lanes steal the expensive ones. *)
  let results =
    Array.to_list
      (Pool.parallel_map ~chunk:1
         (fun m -> mission (m + 1) mission_rngs.(m))
         (Array.init config.missions Fun.id))
  in
  let events = List.map fst results in
  (* Telemetry flushes once per campaign instead of up to three
     registry hits per mission on the hot path. *)
  if Obs.enabled () then begin
    let tally = Hashtbl.create 32 in
    let bump name =
      Hashtbl.replace tally name
        (1 + match Hashtbl.find_opt tally name with Some n -> n | None -> 0)
    in
    List.iter
      (fun (e : Fault.event) ->
        bump
          (Printf.sprintf "fault.%s.%s" (Fault.class_name e.Fault.fclass)
             (Fault.outcome_name e.Fault.outcome));
        match e.Fault.outcome with
        | Fault.Recovered { detector; recovery; _ } ->
            bump ("fault.detected_by." ^ Fault.detector_name detector);
            bump ("fault.recovered_by." ^ Fault.recovery_name recovery)
        | Fault.Masked | Fault.Escaped _ -> ())
      events;
    Hashtbl.iter (fun name n -> Obs.count ~n name) tally
  end;
  let worst_slowdown =
    List.fold_left (fun acc (_, s) -> Float.max acc s) 1.0 results
  in
  let total_backoff =
    List.fold_left
      (fun acc ((e : Fault.event), _) ->
        match e.Fault.outcome with
        | Fault.Recovered { backoff_cycles; _ } -> acc + backoff_cycles
        | Fault.Masked | Fault.Escaped _ -> acc)
      0 results
  in
  let per_class =
    List.map
      (fun fc ->
        ( fc,
          List.fold_left
            (fun acc (e : Fault.event) ->
              if e.Fault.fclass = fc then count_event acc e.Fault.outcome else acc)
            zero_stats events ))
      Fault.all_classes
  in
  let totals =
    List.fold_left
      (fun acc (e : Fault.event) -> count_event acc e.Fault.outcome)
      zero_stats events
  in
  {
    events;
    per_class;
    totals;
    worst_slowdown;
    total_backoff_cycles = total_backoff;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let rate num den = if den = 0 then "-" else Printf.sprintf "%.1f%%" (100.0 *. float_of_int num /. float_of_int den)

let table summary =
  let t =
    Texttable.create ~title:"Fault campaign"
      ~headers:[ "class"; "injected"; "detected"; "recovered"; "masked"; "escaped"; "det."; "rec." ]
  in
  let row name s =
    Texttable.add_row t
      [
        name;
        string_of_int s.injected;
        string_of_int s.detected;
        string_of_int s.recovered;
        string_of_int s.masked;
        string_of_int s.escaped;
        rate s.detected (s.injected - s.masked);
        rate s.recovered s.detected;
      ]
  in
  List.iter (fun (fc, s) -> row (Fault.class_name fc) s) summary.per_class;
  row "total" summary.totals;
  Texttable.render t
  ^ Printf.sprintf "\nworst degraded slowdown: %.2fx; backoff spent: %d cycles\n"
      summary.worst_slowdown summary.total_backoff_cycles

let json ?(meta = []) summary =
  let module J = Orianna_obs.Json in
  let outcome_json (o : Fault.outcome) =
    match o with
    | Fault.Masked -> J.Obj [ ("kind", J.Str "masked") ]
    | Fault.Escaped why -> J.Obj [ ("kind", J.Str "escaped"); ("why", J.Str why) ]
    | Fault.Recovered { detector; recovery; attempts; backoff_cycles } ->
        J.Obj
          [
            ("kind", J.Str "recovered");
            ("detector", J.Str (Fault.detector_name detector));
            ("recovery", J.Str (Fault.recovery_name recovery));
            ("attempts", J.int attempts);
            ("backoff_cycles", J.int backoff_cycles);
          ]
  in
  let stats_json (s : class_stats) =
    J.Obj
      [
        ("injected", J.int s.injected);
        ("detected", J.int s.detected);
        ("recovered", J.int s.recovered);
        ("masked", J.int s.masked);
        ("escaped", J.int s.escaped);
      ]
  in
  J.Obj
    ((if meta = [] then [] else [ ("meta", J.Obj meta) ])
    @ [
        ( "events",
          J.Arr
            (List.map
               (fun (e : Fault.event) ->
                 J.Obj
                   [
                     ("mission", J.int e.Fault.mission);
                     ("class", J.Str (Fault.class_name e.Fault.fclass));
                     ("description", J.Str e.Fault.description);
                     ("outcome", outcome_json e.Fault.outcome);
                   ])
               summary.events) );
        ( "per_class",
          J.Obj
            (List.map (fun (fc, s) -> (Fault.class_name fc, stats_json s)) summary.per_class) );
        ("totals", stats_json summary.totals);
        ("worst_slowdown", J.Num summary.worst_slowdown);
        ("total_backoff_cycles", J.int summary.total_backoff_cycles);
      ])
