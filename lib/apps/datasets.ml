open Orianna_lie
open Orianna_fg
open Orianna_factors
open Orianna_util

type t = {
  truth : Pose2.t array;
  initial : Pose2.t array;
  odometry : (int * int * Pose2.t) array;
  loops : (int * int * Pose2.t) array;
}

type config = {
  steps : int;
  grid : float;
  odo_rot_sigma : float;
  odo_trans_sigma : float;
  init_rot_sigma : float;
  init_trans_sigma : float;
  seed : int;
}

let default_config =
  {
    steps = 300;
    grid = 1.0;
    odo_rot_sigma = 0.005;
    odo_trans_sigma = 0.01;
    init_rot_sigma = 0.02;
    init_trans_sigma = 0.05;
    seed = 2718;
  }

let noisy rng ~rot ~trans rel =
  Pose2.retract rel
    [|
      Rng.gaussian_sigma rng ~sigma:rot;
      Rng.gaussian_sigma rng ~sigma:trans;
      Rng.gaussian_sigma rng ~sigma:trans;
    |]

let manhattan cfg =
  let rng = Rng.of_int cfg.seed in
  let n = cfg.steps + 1 in
  let truth = Array.make n Pose2.identity in
  (* Random walk on the grid: mostly straight, occasional 90-degree
     turns, reflected at a bounding box so the trajectory keeps
     revisiting cells (the Manhattan-world shape). *)
  let half_extent = cfg.grid *. 6.0 in
  for i = 1 to cfg.steps do
    let propose turn =
      Pose2.oplus truth.(i - 1) (Pose2.create ~theta:turn ~t:[| cfg.grid; 0.0 |])
    in
    let inside p =
      let t = Pose2.translation p in
      Float.abs t.(0) <= half_extent && Float.abs t.(1) <= half_extent
    in
    let turn =
      match Rng.int rng 5 with
      | 0 -> Float.pi /. 2.0
      | 1 -> -.Float.pi /. 2.0
      | _ -> 0.0
    in
    let candidate = propose turn in
    truth.(i) <-
      (if inside candidate then candidate
       else begin
         (* Turn toward the interior instead of leaving. *)
         let left = propose (Float.pi /. 2.0) and right = propose (-.Float.pi /. 2.0) in
         if inside left then left else if inside right then right else propose Float.pi
       end)
  done;
  let odometry =
    Array.init cfg.steps (fun i ->
        let rel = Pose2.ominus truth.(i + 1) truth.(i) in
        (i, i + 1, noisy rng ~rot:cfg.odo_rot_sigma ~trans:cfg.odo_trans_sigma rel))
  in
  (* Loop closures on cell revisits: remember the first pose index
     seen at each rounded grid cell. *)
  let cells = Hashtbl.create 64 in
  let loops = ref [] in
  Array.iteri
    (fun i p ->
      let tr = Pose2.translation p in
      let key =
        ( int_of_float (Float.round (tr.(0) /. cfg.grid)),
          int_of_float (Float.round (tr.(1) /. cfg.grid)) )
      in
      (match Hashtbl.find_opt cells key with
      | Some j when i - j > 10 ->
          let rel = Pose2.ominus truth.(i) truth.(j) in
          loops := (j, i, noisy rng ~rot:cfg.odo_rot_sigma ~trans:cfg.odo_trans_sigma rel) :: !loops
      | Some _ | None -> ());
      Hashtbl.replace cells key i)
    truth;
  let initial = Array.make n truth.(0) in
  Array.iter
    (fun (i, j, z) ->
      let drifted = noisy rng ~rot:cfg.init_rot_sigma ~trans:cfg.init_trans_sigma z in
      initial.(j) <- Pose2.oplus initial.(i) drifted)
    odometry;
  { truth; initial; odometry; loops = Array.of_list (List.rev !loops) }

let name i = Printf.sprintf "x%d" i

let to_graph ds =
  let g = Graph.create () in
  Array.iteri (fun i p -> Graph.add_variable g (name i) (Var.Pose2 p)) ds.initial;
  Graph.add_factor g (Pose_factors.prior2 ~name:"anchor" ~var:(name 0) ~z:ds.truth.(0) ~sigma:1e-3);
  let add kind (i, j, z) =
    Graph.add_factor g
      (Pose_factors.between2 ~name:(Printf.sprintf "%s%d-%d" kind i j) ~a:(name i) ~b:(name j) ~z
         ~sigma:0.01)
  in
  Array.iter (add "odo") ds.odometry;
  Array.iter (add "loop") ds.loops;
  g

let to_g2o ds =
  let info = Array.make 3 (1.0 /. (0.01 *. 0.01)) in
  Array.to_list (Array.mapi (fun i p -> G2o.Vertex2 (i, p)) ds.initial)
  @ Array.to_list (Array.map (fun (i, j, z) -> G2o.Edge2 (i, j, z, info)) ds.odometry)
  @ Array.to_list (Array.map (fun (i, j, z) -> G2o.Edge2 (i, j, z, info)) ds.loops)

let ate ~truth ~estimate =
  if Array.length truth <> Array.length estimate then invalid_arg "Datasets.ate: length mismatch";
  let d = Array.map2 Pose2.distance truth estimate in
  match Stats.summarize_opt d with
  | Some s -> { Sphere.max = s.Stats.max; mean = s.Stats.mean; min = s.Stats.min; std = s.Stats.std }
  | None -> { Sphere.max = 0.0; mean = 0.0; min = 0.0; std = 0.0 }

let estimate_of g ~n =
  Array.init n (fun i ->
      match Graph.value g (name i) with
      | Var.Pose2 p -> p
      | Var.Pose3 _ | Var.Se3 _ | Var.Vector _ -> invalid_arg "Datasets.estimate_of: kind")
