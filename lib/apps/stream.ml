open Orianna_lie
open Orianna_fg
open Orianna_util

type tick = {
  at_s : float;
  tvars : (string * Var.t) list;
  tfactors : Factor.t list;
}

type t = { sname : string; ticks : tick array }

let length s = Array.length s.ticks

let total_variables s =
  Array.fold_left (fun acc tk -> acc + List.length tk.tvars) 0 s.ticks

let of_g2o ?(hz = 10.0) ~name entries =
  let vertices =
    List.filter_map
      (function
        | G2o.Vertex2 (id, p) -> Some (id, Var.Pose2 p)
        | G2o.Vertex3 (id, p) -> Some (id, Var.Pose3 p)
        | G2o.Edge2 _ | G2o.Edge3 _ -> None)
      entries
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  if vertices = [] then invalid_arg "Stream.of_g2o: no vertices";
  let arrival = Hashtbl.create 64 in
  List.iteri (fun k (id, _) -> Hashtbl.add arrival id k) vertices;
  let slot id =
    match Hashtbl.find_opt arrival id with
    | Some k -> k
    | None -> invalid_arg (Printf.sprintf "Stream.of_g2o: edge references unknown vertex %d" id)
  in
  let n = List.length vertices in
  let factors_at = Array.make n [] in
  (* Factor names follow G2o.to_graph: e<position in the entry list>. *)
  List.iteri
    (fun pos e ->
      match e with
      | G2o.Vertex2 _ | G2o.Vertex3 _ -> ()
      | G2o.Edge2 (i, j, _, _) | G2o.Edge3 (i, j, _, _) ->
          let k = max (slot i) (slot j) in
          let f = Option.get (G2o.edge_factor ~name:(Printf.sprintf "e%d" (pos + 1)) e) in
          factors_at.(k) <- f :: factors_at.(k))
    entries;
  let anchor =
    let id, _ = List.hd vertices in
    List.find_map
      (fun e ->
        match e with
        | (G2o.Vertex2 (vid, _) | G2o.Vertex3 (vid, _)) when vid = id -> G2o.anchor_factor e
        | _ -> None)
      entries
  in
  let ticks =
    Array.of_list
      (List.mapi
         (fun k (id, value) ->
           let base = List.rev factors_at.(k) in
           let tfactors =
             if k = 0 then match anchor with Some a -> a :: base | None -> base else base
           in
           {
             at_s = float_of_int k /. hz;
             tvars = [ (G2o.vertex_name id, value) ];
             tfactors;
           })
         vertices)
  in
  { sname = name; ticks }

let manhattan ?(cfg = Datasets.default_config) () =
  of_g2o ~name:"manhattan" (Datasets.to_g2o (Datasets.manhattan cfg))

let sphere ?(cfg = Sphere.default_config) () =
  of_g2o ~name:"sphere" (G2o.of_sphere (Sphere.generate cfg))

type loopy_config = {
  side : int;
  laps : int;
  odo_rot_sigma : float;
  odo_trans_sigma : float;
  seed : int;
}

let default_loopy_config =
  { side = 5; laps = 4; odo_rot_sigma = 0.005; odo_trans_sigma = 0.01; seed = 4242 }

let loopy ?(cfg = default_loopy_config) () =
  let perimeter = 4 * cfg.side in
  let n = (perimeter * cfg.laps) + 1 in
  (* Ground truth: drive the square circuit, heading along the side. *)
  let truth =
    Array.init n (fun k ->
        let p = k mod perimeter in
        let side_idx = p / cfg.side and along = float_of_int (p mod cfg.side) in
        let s = float_of_int cfg.side in
        let theta = float_of_int side_idx *. (Float.pi /. 2.0) in
        let x, y =
          match side_idx with
          | 0 -> (along, 0.0)
          | 1 -> (s, along)
          | 2 -> (s -. along, s)
          | _ -> (0.0, s -. along)
        in
        Pose2.create ~theta ~t:[| x; y |])
  in
  let rng = Rng.of_int cfg.seed in
  let noisy rel =
    Pose2.retract rel
      [|
        Rng.gaussian_sigma rng ~sigma:cfg.odo_rot_sigma;
        Rng.gaussian_sigma rng ~sigma:cfg.odo_trans_sigma;
        Rng.gaussian_sigma rng ~sigma:cfg.odo_trans_sigma;
      |]
  in
  let edges = ref [] in
  for k = 1 to n - 1 do
    edges := (k - 1, k, noisy (Pose2.ominus truth.(k) truth.(k - 1))) :: !edges;
    (* Close against the same spot one lap ago: every pose after the
       first lap carries a loop closure. *)
    if k >= perimeter then
      edges := (k - perimeter, k, noisy (Pose2.ominus truth.(k) truth.(k - perimeter))) :: !edges
  done;
  let edges = List.rev !edges in
  (* Dead-reckoned initial estimates from the noisy odometry chain. *)
  let initial = Array.make n truth.(0) in
  List.iter
    (fun (i, j, z) -> if j = i + 1 then initial.(j) <- Pose2.oplus initial.(i) z)
    edges;
  let info = Array.make 3 (1.0 /. (0.01 *. 0.01)) in
  let entries =
    Array.to_list (Array.mapi (fun i p -> G2o.Vertex2 (i, p)) initial)
    @ List.map (fun (i, j, z) -> G2o.Edge2 (i, j, z, info)) edges
  in
  of_g2o ~name:"loopy" entries

let prefix_graph s ~n =
  let n = min n (Array.length s.ticks) in
  let g = Graph.create () in
  for k = 0 to n - 1 do
    let tk = s.ticks.(k) in
    List.iter (fun (v, value) -> Graph.add_variable g v value) tk.tvars;
    List.iter (Graph.add_factor g) tk.tfactors
  done;
  g

let apply_tick sm tk =
  List.iter (fun (v, value) -> Smoother.add_variable sm v value) tk.tvars;
  List.fold_left
    (fun dropped f ->
      if List.for_all (Smoother.has_variable sm) (Factor.vars f) then begin
        Smoother.add_factor sm f;
        dropped
      end
      else dropped + 1)
    0 tk.tfactors
