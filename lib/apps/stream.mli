(** Timestamped measurement streams: pose-graph datasets replayed the
    way a live mission delivers them — one new pose per tick, together
    with every measurement whose endpoints have now all been observed.

    A stream is pure data; the session layer in [lib/serve] and the
    differential harness in the tests drive a {!Orianna_fg.Smoother}
    (or a batch solve over {!prefix_graph}) from it. *)

open Orianna_fg

type tick = {
  at_s : float;  (** arrival time *)
  tvars : (string * Var.t) list;  (** new variables with initial estimates *)
  tfactors : Factor.t list;  (** measurements fully observable at this tick *)
}

type t = { sname : string; ticks : tick array }

val length : t -> int

val total_variables : t -> int

val of_g2o : ?hz:float -> name:string -> G2o.t -> t
(** One tick per vertex (ascending id, [1/hz] seconds apart, default
    10 Hz).  An edge arrives with its later endpoint; the gauge anchor
    of {!G2o.to_graph} arrives with the first vertex.  Raises
    [Invalid_argument] on an edge whose endpoints never appear. *)

val manhattan : ?cfg:Datasets.config -> unit -> t
(** The Manhattan-world random walk of {!Datasets.manhattan}, replayed
    through its g2o export. *)

val sphere : ?cfg:Sphere.config -> unit -> t
(** The sphere benchmark replayed through {!G2o.of_sphere}. *)

type loopy_config = {
  side : int;  (** cells per square side *)
  laps : int;
  odo_rot_sigma : float;
  odo_trans_sigma : float;
  seed : int;
}

val default_loopy_config : loopy_config
(** 5-cell square, 4 laps, seed 4242. *)

val loopy : ?cfg:loopy_config -> unit -> t
(** Loop-closure-heavy synthetic mission: a square racetrack driven
    for several laps, closing the loop against the previous lap at
    {e every} pose after the first — the adversarial revisit pattern
    for incremental smoothing. *)

val prefix_graph : t -> n:int -> Graph.t
(** Batch graph over the first [n] ticks (the whole stream when [n]
    exceeds the length) — the reference problem for the
    incremental-vs-batch differential harness. *)

val apply_tick : Smoother.t -> tick -> int
(** Stage one tick's variables and measurements into a smoother
    (without calling [update]).  Measurements touching a variable that
    already left the smoother's window are dropped; returns how many
    were. *)
