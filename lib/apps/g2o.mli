(** The g2o pose-graph text format.

    The de-facto exchange format of the SLAM community (g2o, GTSAM,
    Ceres examples all read it).  Supported records:

    - [VERTEX_SE2 id x y theta]
    - [EDGE_SE2 i j dx dy dtheta  i11 i12 i13 i22 i23 i33]
    - [VERTEX_SE3:QUAT id x y z qx qy qz qw]
    - [EDGE_SE3:QUAT i j dx dy dz qx qy qz qw  (21 upper-triangular
      information entries, row-major over (x y z rx ry rz))]

    Information matrices are reduced to their diagonal when building
    factors ([sigma_k = 1 / sqrt I_kk]); writing emits a diagonal
    information matrix.  Lines starting with [#] are comments. *)

open Orianna_lie
open Orianna_fg

type entry =
  | Vertex2 of int * Pose2.t
  | Edge2 of int * int * Pose2.t * float array  (** 3 diagonal information entries *)
  | Vertex3 of int * Pose3.t
  | Edge3 of int * int * Pose3.t * float array  (** 6 diagonal information entries, (x y z rx ry rz) order *)

type t = entry list

exception Parse_error of string
(** Carries the reason, the 1-based line number and the offending
    line. *)

val parse : string -> t
(** Parse a whole file's contents.  Unknown or unsupported record
    types (e.g. [FIX]) are skipped; use {!parse_verbose} to see what
    was dropped.  Malformed instances of the supported records still
    raise {!Parse_error}. *)

val parse_verbose : string -> t * string list
(** Like {!parse} but also returns one warning per skipped line
    (["line <n>: ignored <tag>"]). *)

val vertex_name : int -> string
(** Variable name of a vertex id (["x<id>"]). *)

val edge_factor : name:string -> entry -> Orianna_fg.Factor.t option
(** The between factor of an edge entry, with information-derived
    sigmas — the exact conversion {!to_graph} applies.  [None] for
    vertices. *)

val anchor_factor : entry -> Orianna_fg.Factor.t option
(** The tight gauge-fixing prior {!to_graph} puts on the first vertex.
    [None] for edges. *)

val to_string : t -> string
(** Serialize; [parse (to_string d)] preserves every entry. *)

val to_graph : ?fix_first:bool -> t -> Graph.t
(** Build a factor graph: vertices become pose variables named
    ["x<id>"], edges become between factors with information-derived
    sigmas.  [fix_first] (default true) anchors the lowest-id vertex
    of each dimension with a tight prior — pose graphs are otherwise
    gauge-free. *)

val of_sphere : Sphere.dataset -> t
(** Export the sphere benchmark in g2o form (a standard artifact). *)

val solve_file : string -> Graph.t * Orianna_fg.Optimizer.report
(** Parse file contents, build the graph, optimize with LM. *)
