open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_factors
open Orianna_util

type config = {
  rings : int;
  poses_per_ring : int;
  radius : float;
  odo_rot_sigma : float;
  odo_trans_sigma : float;
  init_rot_sigma : float;
  init_trans_sigma : float;
  seed : int;
}

let default_config =
  {
    rings = 8;
    poses_per_ring = 24;
    radius = 10.0;
    odo_rot_sigma = 0.0015;
    odo_trans_sigma = 0.004;
    init_rot_sigma = 0.05;
    init_trans_sigma = 0.15;
    seed = 1234;
  }

type dataset = {
  truth : Pose3.t array;
  initial : Pose3.t array;
  odometry : (int * int * Pose3.t) array;
  loops : (int * int * Pose3.t) array;
}

let position cfg ring j =
  let polar = Float.pi *. float_of_int (ring + 1) /. float_of_int (cfg.rings + 1) in
  let azimuth = 2.0 *. Float.pi *. float_of_int j /. float_of_int cfg.poses_per_ring in
  [|
    cfg.radius *. sin polar *. cos azimuth;
    cfg.radius *. sin polar *. sin azimuth;
    cfg.radius *. cos polar;
  |]

(* Orientation: x-axis along the direction of travel, z-axis outward. *)
let orientation ~pos ~next =
  let x = Vec.sub next pos in
  let xn = Vec.norm x in
  let x = if xn < 1e-9 then [| 1.0; 0.0; 0.0 |] else Vec.scale (1.0 /. xn) x in
  let z = Vec.scale (1.0 /. Vec.norm pos) pos in
  let raw = Mat.init 3 3 (fun i j -> match j with 0 -> x.(i) | 2 -> z.(i) | _ -> 0.0) in
  (* Gram-Schmidt fixes the middle column and any x/z correlation. *)
  let m = Mat.copy raw in
  Mat.set m 0 1 ((z.(1) *. x.(2)) -. (z.(2) *. x.(1)));
  Mat.set m 1 1 ((z.(2) *. x.(0)) -. (z.(0) *. x.(2)));
  Mat.set m 2 1 ((z.(0) *. x.(1)) -. (z.(1) *. x.(0)));
  So3.normalize m

let noisy_between rng ~rot_sigma ~trans_sigma rel =
  let noise =
    Array.init 6 (fun k ->
        if k < 3 then Rng.gaussian_sigma rng ~sigma:rot_sigma
        else Rng.gaussian_sigma rng ~sigma:trans_sigma)
  in
  Pose3.retract rel noise

let generate cfg =
  let rng = Rng.of_int cfg.seed in
  let n = cfg.rings * cfg.poses_per_ring in
  let idx ring j = (ring * cfg.poses_per_ring) + j in
  let truth =
    Array.init n (fun i ->
        let ring = i / cfg.poses_per_ring and j = i mod cfg.poses_per_ring in
        let pos = position cfg ring j in
        let next_j = (j + 1) mod cfg.poses_per_ring in
        let next = position cfg ring next_j in
        Pose3.create ~r:(orientation ~pos ~next) ~t:pos)
  in
  let odometry =
    Array.init (n - 1) (fun i ->
        let rel = Pose3.ominus truth.(i + 1) truth.(i) in
        (i, i + 1, noisy_between rng ~rot_sigma:cfg.odo_rot_sigma ~trans_sigma:cfg.odo_trans_sigma rel))
  in
  let loops =
    Array.concat
      (List.init (cfg.rings - 1) (fun ring ->
           Array.init cfg.poses_per_ring (fun j ->
               let a = idx ring j and b = idx (ring + 1) j in
               let rel = Pose3.ominus truth.(b) truth.(a) in
               (a, b, noisy_between rng ~rot_sigma:cfg.odo_rot_sigma ~trans_sigma:cfg.odo_trans_sigma rel))))
  in
  (* The initial guess integrates a separately corrupted odometry, so
     it drifts far from the truth (Fig. 9a) while the measurements
     themselves stay precise. *)
  let initial = Array.make n truth.(0) in
  Array.iter
    (fun (i, j, z) ->
      let drifted =
        noisy_between rng ~rot_sigma:cfg.init_rot_sigma ~trans_sigma:cfg.init_trans_sigma z
      in
      initial.(j) <- Pose3.oplus initial.(i) drifted)
    odometry;
  { truth; initial; odometry; loops }

type errors = { max : float; mean : float; min : float; std : float }

let ate ~truth ~estimate =
  if Array.length truth <> Array.length estimate then invalid_arg "Sphere.ate: length mismatch";
  let d = Array.map2 Pose3.distance truth estimate in
  match Stats.summarize_opt d with
  | Some s -> { max = s.Stats.max; mean = s.Stats.mean; min = s.Stats.min; std = s.Stats.std }
  | None -> { max = 0.0; mean = 0.0; min = 0.0; std = 0.0 }

type run = { errors : errors; macs : int; construct_macs : int; iterations : int; converged : bool }

type report = {
  initial_errors : errors;
  unified : run;
  se3 : run;
  mac_saving : float;
}

let optimizer_params =
  {
    Optimizer.default_params with
    method_ = Optimizer.Levenberg_marquardt;
    max_iterations = 40;
    ordering = Ordering.Min_degree;
  }

let name i = Printf.sprintf "x%d" i

let unified_graph ds =
  let g = Graph.create () in
  Array.iteri (fun i p -> Graph.add_variable g (name i) (Var.Pose3 p)) ds.initial;
  Graph.add_factor g (Pose_factors.prior3 ~name:"prior" ~var:(name 0) ~z:ds.truth.(0) ~sigma:1e-3);
  Array.iter
    (fun (i, j, z) ->
      Graph.add_factor g
        (Pose_factors.between3 ~name:(Printf.sprintf "odo%d-%d" i j) ~a:(name i) ~b:(name j) ~z
           ~sigma:0.004))
    ds.odometry;
  Array.iter
    (fun (i, j, z) ->
      Graph.add_factor g
        (Pose_factors.between3 ~name:(Printf.sprintf "loop%d-%d" i j) ~a:(name i) ~b:(name j) ~z
           ~sigma:0.004))
    ds.loops;
  g

let pose3_estimate ds g =
  Array.init (Array.length ds.initial) (fun i ->
      match Graph.value g (name i) with
      | Var.Pose3 p -> p
      | Var.Pose2 _ | Var.Se3 _ | Var.Vector _ -> assert false)

let run_unified ds =
  let g = unified_graph ds in
  let report = Optimizer.optimize ~params:optimizer_params g in
  let _, construct_macs = Macs.measure (fun () -> ignore (Graph.linearize g)) in
  let estimate = pose3_estimate ds g in
  {
    errors = ate ~truth:ds.truth ~estimate;
    macs = report.Optimizer.macs;
    construct_macs;
    iterations = report.Optimizer.iterations;
    converged = report.Optimizer.converged;
  }

let unified_estimate ds =
  let g = unified_graph ds in
  ignore (Optimizer.optimize ~params:optimizer_params g);
  pose3_estimate ds g

let run_se3 ds =
  let g = Graph.create () in
  Array.iteri
    (fun i p -> Graph.add_variable g (name i) (Var.Se3 (Convert.se3_of_pose3 p)))
    ds.initial;
  Graph.add_factor g
    (Se3_factors.prior ~name:"prior" ~var:(name 0) ~z:(Convert.se3_of_pose3 ds.truth.(0))
       ~sigma:1e-3);
  Array.iter
    (fun (i, j, z) ->
      Graph.add_factor g
        (Se3_factors.between ~name:(Printf.sprintf "odo%d-%d" i j) ~a:(name i) ~b:(name j)
           ~z:(Convert.se3_of_pose3 z) ~sigma:0.004))
    ds.odometry;
  Array.iter
    (fun (i, j, z) ->
      Graph.add_factor g
        (Se3_factors.between ~name:(Printf.sprintf "loop%d-%d" i j) ~a:(name i) ~b:(name j)
           ~z:(Convert.se3_of_pose3 z) ~sigma:0.004))
    ds.loops;
  let report = Optimizer.optimize ~params:optimizer_params g in
  let _, construct_macs = Macs.measure (fun () -> ignore (Graph.linearize g)) in
  let estimate =
    Array.init (Array.length ds.initial) (fun i ->
        match Graph.value g (name i) with
        | Var.Se3 x -> Convert.pose3_of_se3 x
        | Var.Pose2 _ | Var.Pose3 _ | Var.Vector _ -> assert false)
  in
  {
    errors = ate ~truth:ds.truth ~estimate;
    macs = report.Optimizer.macs;
    construct_macs;
    iterations = report.Optimizer.iterations;
    converged = report.Optimizer.converged;
  }

(* ------------------------------------------------------------------ *)
(* Robustness extension: wild loop closures vs M-estimators.           *)

type robust_report = {
  outliers : int;
  plain : errors;
  robust : errors;
  clean : errors;
}

let corrupt_loops rng ~fraction ds =
  let count = ref 0 in
  let loops =
    Array.map
      (fun (i, j, z) ->
        if Rng.float rng < fraction then begin
          incr count;
          (* A wild, confidently-wrong measurement. *)
          (i, j, Pose3.retract z (Array.init 6 (fun k ->
               if k < 3 then Rng.uniform rng ~lo:(-0.6) ~hi:0.6
               else Rng.uniform rng ~lo:(-4.0) ~hi:4.0)))
        end
        else (i, j, z))
      ds.loops
  in
  ({ ds with loops }, !count)

let run_with_loss ?loss ds =
  let wrap f = match loss with None -> f | Some l -> Robust.robustify l f in
  let g = Graph.create () in
  Array.iteri (fun i p -> Graph.add_variable g (name i) (Var.Pose3 p)) ds.initial;
  Graph.add_factor g (Pose_factors.prior3 ~name:"prior" ~var:(name 0) ~z:ds.truth.(0) ~sigma:1e-3);
  Array.iter
    (fun (i, j, z) ->
      Graph.add_factor g
        (Pose_factors.between3 ~name:(Printf.sprintf "odo%d-%d" i j) ~a:(name i) ~b:(name j) ~z
           ~sigma:0.004))
    ds.odometry;
  Array.iter
    (fun (i, j, z) ->
      Graph.add_factor g
        (wrap
           (Pose_factors.between3 ~name:(Printf.sprintf "loop%d-%d" i j) ~a:(name i) ~b:(name j)
              ~z ~sigma:0.004)))
    ds.loops;
  ignore (Optimizer.optimize ~params:optimizer_params g);
  let estimate =
    Array.init (Array.length ds.initial) (fun i ->
        match Graph.value g (name i) with
        | Var.Pose3 p -> p
        | Var.Pose2 _ | Var.Se3 _ | Var.Vector _ -> assert false)
  in
  ate ~truth:ds.truth ~estimate

let run_robust ?(config = default_config) ?(outlier_fraction = 0.1) () =
  let ds = generate config in
  let rng = Rng.of_int (config.seed + 1) in
  let corrupted, outliers = corrupt_loops rng ~fraction:outlier_fraction ds in
  {
    outliers;
    plain = run_with_loss corrupted;
    robust = run_with_loss ~loss:(Robust.Cauchy 1.0) corrupted;
    clean = run_with_loss ds;
  }

let run ?(config = default_config) () =
  let ds = generate config in
  let initial_errors = ate ~truth:ds.truth ~estimate:ds.initial in
  let unified = run_unified ds in
  let se3 = run_se3 ds in
  let mac_saving = 1.0 -. (float_of_int unified.construct_macs /. float_of_int se3.construct_macs) in
  { initial_errors; unified; se3; mac_saving }

let trajectory_csv ds ~estimate =
  if Array.length estimate <> Array.length ds.truth then
    invalid_arg "Sphere.trajectory_csv: length mismatch";
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "i,truth_x,truth_y,truth_z,init_x,init_y,init_z,est_x,est_y,est_z\n";
  Array.iteri
    (fun i truth ->
      let t = Pose3.translation truth in
      let n = Pose3.translation ds.initial.(i) in
      let e = Pose3.translation estimate.(i) in
      Buffer.add_string buf
        (Printf.sprintf "%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n" i t.(0) t.(1) t.(2)
           n.(0) n.(1) n.(2) e.(0) e.(1) e.(2)))
    ds.truth;
  Buffer.contents buf

let pp_errors ppf e =
  Format.fprintf ppf "max=%.3f mean=%.3f min=%.3f std=%.3f" e.max e.mean e.min e.std
