open Orianna_lie
open Orianna_fg
open Orianna_factors

type entry =
  | Vertex2 of int * Pose2.t
  | Edge2 of int * int * Pose2.t * float array
  | Vertex3 of int * Pose3.t
  | Edge3 of int * int * Pose3.t * float array

type t = entry list

exception Parse_error of string

(* [line] is carried through parsing as ["<number>: <text>"] so every
   error message pinpoints its source line. *)
let fail line reason = raise (Parse_error (Printf.sprintf "%s: %s" reason line))

let float_of line s =
  match float_of_string_opt s with Some f -> f | None -> fail line ("bad float " ^ s)

let int_of line s =
  match int_of_string_opt s with Some i -> i | None -> fail line ("bad int " ^ s)

(* Diagonal positions inside an upper-triangular row-major listing of
   an n x n symmetric matrix. *)
let upper_diag_indices n =
  let idx = Array.make n 0 in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    idx.(i) <- !pos;
    pos := !pos + (n - i)
  done;
  idx

let se3_diag_indices = upper_diag_indices 6
let se2_diag_indices = upper_diag_indices 3

let quat_of_fields line qx qy qz qw =
  try Quat.normalize { Quat.w = qw; x = qx; y = qy; z = qz }
  with Invalid_argument _ -> fail line "zero quaternion"

let parse_line ?at raw =
  let line = match at with Some s -> s | None -> raw in
  let fields = String.split_on_char ' ' (String.trim raw) |> List.filter (fun s -> s <> "") in
  match fields with
  | [] -> None
  | tag :: rest when tag.[0] = '#' ->
      ignore rest;
      None
  | "VERTEX_SE2" :: rest -> (
      match List.map (float_of line) rest with
      | [ id; x; y; theta ] ->
          Some (Vertex2 (int_of_float id, Pose2.create ~theta ~t:[| x; y |]))
      | _ -> fail line "VERTEX_SE2 expects 4 fields")
  | "EDGE_SE2" :: rest -> (
      match rest with
      | i :: j :: values when List.length values = 9 ->
          let v = Array.of_list (List.map (float_of line) values) in
          let z = Pose2.create ~theta:v.(2) ~t:[| v.(0); v.(1) |] in
          let info = Array.map (fun k -> v.(3 + k)) (Array.map Fun.id se2_diag_indices) in
          Some (Edge2 (int_of line i, int_of line j, z, info))
      | _ -> fail line "EDGE_SE2 expects 11 fields")
  | "VERTEX_SE3:QUAT" :: rest -> (
      match rest with
      | id :: values when List.length values = 7 ->
          let v = Array.of_list (List.map (float_of line) values) in
          let q = quat_of_fields line v.(3) v.(4) v.(5) v.(6) in
          Some
            (Vertex3
               (int_of line id, Pose3.create ~r:(Quat.to_rotation q) ~t:[| v.(0); v.(1); v.(2) |]))
      | _ -> fail line "VERTEX_SE3:QUAT expects 8 fields")
  | "EDGE_SE3:QUAT" :: rest -> (
      match rest with
      | i :: j :: values when List.length values = 28 ->
          let v = Array.of_list (List.map (float_of line) values) in
          let q = quat_of_fields line v.(3) v.(4) v.(5) v.(6) in
          let z = Pose3.create ~r:(Quat.to_rotation q) ~t:[| v.(0); v.(1); v.(2) |] in
          let info = Array.map (fun k -> v.(7 + k)) (Array.map Fun.id se3_diag_indices) in
          Some (Edge3 (int_of line i, int_of line j, z, info))
      | _ -> fail line "EDGE_SE3:QUAT expects 30 fields")
  | tag :: _ -> fail line ("unknown record " ^ tag)

(* Record types other solvers emit that carry no information we can
   use; skipped with a warning rather than a hard failure. *)
let is_known_noise tag =
  match tag with
  | "FIX" | "VERTEX_CAM" | "EDGE_SE2_XY" | "EQUIV" -> true
  | _ -> false

let parse_verbose contents =
  let warnings = ref [] in
  let entries =
    String.split_on_char '\n' contents
    |> List.mapi (fun i line -> (i + 1, line))
    |> List.filter_map (fun (n, raw) ->
           let at = Printf.sprintf "line %d: %s" n (String.trim raw) in
           let tag =
             match
               String.split_on_char ' ' (String.trim raw) |> List.filter (fun s -> s <> "")
             with
             | t :: _ -> t
             | [] -> ""
           in
           match parse_line ~at raw with
           | entry -> entry
           | exception Parse_error msg ->
               if
                 is_known_noise tag
                 || not
                      (List.mem tag
                         [ "VERTEX_SE2"; "EDGE_SE2"; "VERTEX_SE3:QUAT"; "EDGE_SE3:QUAT" ])
               then begin
                 warnings := Printf.sprintf "line %d: ignored %s" n tag :: !warnings;
                 None
               end
               else raise (Parse_error msg))
  in
  (entries, List.rev !warnings)

let parse contents = fst (parse_verbose contents)

let upper_diag_string n diag =
  (* Emit a diagonal information matrix in upper-triangular order. *)
  let cells = ref [] in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      cells := (if i = j then Printf.sprintf "%.9g" diag.(i) else "0") :: !cells
    done
  done;
  String.concat " " (List.rev !cells)

let to_string entries =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      (match e with
      | Vertex2 (id, p) ->
          let t = Pose2.translation p in
          Buffer.add_string buf
            (Printf.sprintf "VERTEX_SE2 %d %.9g %.9g %.9g" id t.(0) t.(1) (Pose2.theta p))
      | Edge2 (i, j, z, info) ->
          let t = Pose2.translation z in
          Buffer.add_string buf
            (Printf.sprintf "EDGE_SE2 %d %d %.9g %.9g %.9g %s" i j t.(0) t.(1) (Pose2.theta z)
               (upper_diag_string 3 info))
      | Vertex3 (id, p) ->
          let t = Pose3.translation p in
          let q = Quat.of_rotation (Pose3.rotation p) in
          Buffer.add_string buf
            (Printf.sprintf "VERTEX_SE3:QUAT %d %.9g %.9g %.9g %.9g %.9g %.9g %.9g" id t.(0) t.(1)
               t.(2) q.Quat.x q.Quat.y q.Quat.z q.Quat.w)
      | Edge3 (i, j, z, info) ->
          let t = Pose3.translation z in
          let q = Quat.of_rotation (Pose3.rotation z) in
          Buffer.add_string buf
            (Printf.sprintf "EDGE_SE3:QUAT %d %d %.9g %.9g %.9g %.9g %.9g %.9g %.9g %s" i j t.(0)
               t.(1) t.(2) q.Quat.x q.Quat.y q.Quat.z q.Quat.w (upper_diag_string 6 info)));
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let sigma_of_info i = if i <= 0.0 then 1.0 else 1.0 /. sqrt i

let vertex_name id = Printf.sprintf "x%d" id

let edge_factor ~name e =
  match e with
  | Vertex2 _ | Vertex3 _ -> None
  | Edge2 (i, j, z, info) ->
      (* g2o info order (x y th); ours is [th; x; y]. *)
      let sigmas = [| sigma_of_info info.(2); sigma_of_info info.(0); sigma_of_info info.(1) |] in
      Some (Pose_factors.between2_sigmas ~name ~a:(vertex_name i) ~b:(vertex_name j) ~z ~sigmas)
  | Edge3 (i, j, z, info) ->
      (* g2o info order (x y z rx ry rz); ours is [rot3; trans3]. *)
      let sigmas =
        [|
          sigma_of_info info.(3); sigma_of_info info.(4); sigma_of_info info.(5);
          sigma_of_info info.(0); sigma_of_info info.(1); sigma_of_info info.(2);
        |]
      in
      Some (Pose_factors.between3_sigmas ~name ~a:(vertex_name i) ~b:(vertex_name j) ~z ~sigmas)

let anchor_factor e =
  match e with
  | Vertex2 (id, p) ->
      Some (Pose_factors.prior2 ~name:"anchor2" ~var:(vertex_name id) ~z:p ~sigma:1e-4)
  | Vertex3 (id, p) ->
      Some (Pose_factors.prior3 ~name:"anchor3" ~var:(vertex_name id) ~z:p ~sigma:1e-4)
  | Edge2 _ | Edge3 _ -> None

let to_graph ?(fix_first = true) entries =
  let g = Graph.create () in
  let first2 = ref None and first3 = ref None in
  List.iter
    (fun e ->
      match e with
      | Vertex2 (id, p) ->
          Graph.add_variable g (Printf.sprintf "x%d" id) (Var.Pose2 p);
          (match !first2 with
          | Some (fid, _) when fid <= id -> ()
          | _ -> first2 := Some (id, p))
      | Vertex3 (id, p) ->
          Graph.add_variable g (Printf.sprintf "x%d" id) (Var.Pose3 p);
          (match !first3 with
          | Some (fid, _) when fid <= id -> ()
          | _ -> first3 := Some (id, p))
      | Edge2 _ | Edge3 _ -> ())
    entries;
  let counter = ref 0 in
  List.iter
    (fun e ->
      incr counter;
      match edge_factor ~name:(Printf.sprintf "e%d" !counter) e with
      | Some f -> Graph.add_factor g f
      | None -> ())
    entries;
  if fix_first then begin
    (match !first2 with
    | Some (id, p) -> Option.iter (Graph.add_factor g) (anchor_factor (Vertex2 (id, p)))
    | None -> ());
    match !first3 with
    | Some (id, p) -> Option.iter (Graph.add_factor g) (anchor_factor (Vertex3 (id, p)))
    | None -> ()
  end;
  g

let of_sphere (ds : Sphere.dataset) =
  (* Initial estimates as vertices (the g2o convention); a shared
     diagonal information from the benchmark's measurement noise. *)
  let info sigma = Array.make 6 (1.0 /. (sigma *. sigma)) in
  let vertices = Array.to_list (Array.mapi (fun i p -> Vertex3 (i, p)) ds.Sphere.initial) in
  let edge (i, j, z) = Edge3 (i, j, z, info 0.004) in
  vertices
  @ List.map edge (Array.to_list ds.Sphere.odometry)
  @ List.map edge (Array.to_list ds.Sphere.loops)

let solve_file contents =
  let g = to_graph (parse contents) in
  let params =
    {
      Optimizer.default_params with
      Optimizer.method_ = Optimizer.Levenberg_marquardt;
      max_iterations = 50;
    }
  in
  let report = Optimizer.optimize ~params g in
  (g, report)
