(** The end-to-end ORIANNA pipeline (Fig. 2): application graphs ->
    compiled instruction stream -> generated accelerator -> cycle-level
    execution, plus every baseline execution model run on the same
    workload. *)

open Orianna_fg
open Orianna_isa
open Orianna_hw
open Orianna_sim
open Orianna_baselines
module App = Orianna_apps.App

val se3_construct_scale : float
(** Construction-phase arithmetic inflation of an SE(3)-style software
    stack relative to the unified representation — measured by the
    sphere benchmark (Sec. 4.3); conventional CPU baselines pay it. *)

val generate :
  ?budget:Resource.t ->
  ?objective:[ `Latency | `Energy ] ->
  ?policy:Schedule.policy ->
  Program.t ->
  Dse.result
(** Hardware generation under a resource constraint (Equ. 5): greedy
    template replication / QR widening, evaluated by the cycle-level
    simulator under the given issue policy (default: OoO, latency
    objective, full ZC706 budget). *)

val generate_multi :
  ?budget:Resource.t ->
  objective:[ `Mean_latency | `Tail_latency | `Energy ] ->
  Program.t list ->
  Dse.result
(** Multi-frame generation (Sec. 6.2's alternative user goals): the
    objective aggregates over a set of frame programs — the mean for
    average frame latency, the max for the long-tail goal the paper
    mentions, or total energy. *)

type frame = {
  app : App.t;
  graphs : (string * Graph.t) list;  (** one frame's three algorithm graphs *)
  program : Program.t;  (** the merged application stream *)
  algo_programs : (string * Program.t) list;  (** per-algorithm streams *)
  dense_program : Program.t;  (** the VANILLA-HLS lowering *)
}

val reoptimize : ?accel:Accel.t -> ?policy:Schedule.policy -> Program.t -> Program.t
(** Schedule-informed reorder: simulate the program once (default: the
    base accelerator, in-order issue — the policy most sensitive to
    program order), attribute operand-wait cycles to their
    last-finishing producers with [Trace.operand_stalls], and re-run
    [Orianna_isa.Opt.reorder] with the measured weights.  Semantics
    are unchanged; only the issue order moves. *)

val frame : ?opt_level:int -> App.t -> seed:int -> frame
(** Build and compile one frame of an application.  [opt_level]
    (default 1) is forwarded to the compiler's instruction-stream
    optimizer; at [>= 2] every compiled stream additionally gets one
    {!reoptimize} feedback round. *)

type evaluation = {
  eframe : frame;
  accel : Accel.t;  (** DSE-generated under the ZC706 budget *)
  ooo : Schedule.result;  (** ORIANNA-OoO *)
  ooo_fine : Schedule.result;  (** fine-grained-only OoO *)
  io : Schedule.result;  (** ORIANNA-IO *)
  arm : Cpu_model.result;
  intel : Cpu_model.result;
  orianna_sw : Cpu_model.result;  (** Intel running the unified representation *)
  gpu : Gpu_model.result;
  vanilla_accel : Accel.t;  (** generated for the dense lowering *)
  vanilla : Schedule.result;
  stack : (string * Accel.t * Schedule.result) list;  (** dedicated accel per algorithm *)
}

val evaluate : App.t -> seed:int -> evaluation
(** Run the whole comparison matrix for one application frame. *)

val stack_latency : evaluation -> float
(** STACK frame latency: the three dedicated accelerators run in
    parallel, so the frame takes as long as the slowest algorithm. *)

val stack_energy : evaluation -> float
(** STACK frame energy: every stacked accelerator burns static power
    for the whole frame plus its own dynamic energy. *)

val stack_resources : evaluation -> Resource.t
