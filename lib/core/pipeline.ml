open Orianna_isa
open Orianna_hw
open Orianna_sim
open Orianna_baselines
open Orianna_util
module App = Orianna_apps.App
module Compile = Orianna_compiler.Compile
module Graph = Orianna_fg.Graph

(* Measured by the sphere benchmark: the SE(3) construction pass costs
   ~1.6x the unified one (Sec. 4.3 reports 52.7 % savings ~ 2.1x; our
   reverse-mode unified pass is slightly heavier than the paper's
   hand-derived formulas). *)
let se3_construct_scale = 1.64

let generate ?(budget = Resource.zc706) ?(objective = `Latency) ?(policy = Schedule.Ooo_full)
    program =
  let evaluate accel =
    let r = Schedule.run ~accel ~policy program in
    match objective with `Latency -> r.Schedule.seconds | `Energy -> r.Schedule.energy_j
  in
  Dse.optimize ~budget ~evaluate ()

let generate_multi ?(budget = Resource.zc706) ~objective programs =
  if programs = [] then invalid_arg "Pipeline.generate_multi: no programs";
  let evaluate accel =
    let metrics =
      List.map
        (fun p ->
          let r = Schedule.run ~accel ~policy:Schedule.Ooo_full p in
          match objective with
          | `Mean_latency | `Tail_latency -> r.Schedule.seconds
          | `Energy -> r.Schedule.energy_j)
        programs
    in
    match objective with
    | `Mean_latency | `Energy ->
        List.fold_left ( +. ) 0.0 metrics /. float_of_int (List.length metrics)
    | `Tail_latency -> List.fold_left Float.max 0.0 metrics
  in
  Dse.optimize ~budget ~evaluate ()

type frame = {
  app : App.t;
  graphs : (string * Graph.t) list;
  program : Program.t;
  algo_programs : (string * Program.t) list;
  dense_program : Program.t;
}

(* Schedule-informed reorder (O2): run the program once on a reference
   accelerator, attribute every operand-wait cycle to its
   last-finishing producer, and feed the measured weights back into
   [Opt.reorder].  The compile-time reorder uses only a static latency
   model; this closes the loop with the cycle-level simulator.  At O3,
   [Opt_loop.optimize] runs the full profile-guided fixpoint instead
   (resource-aware reorder + superword batching, every step accepted
   only if the measured cycle count improves). *)
let reoptimize = Trace.reoptimize

let frame ?(opt_level = 1) (app : App.t) ~seed =
  let graphs = app.App.graphs (Rng.of_int seed) in
  let maybe_feedback p =
    if opt_level >= 3 then Opt_loop.optimize ~level:opt_level p
    else if opt_level >= 2 then reoptimize p
    else p
  in
  let program = Compile.compile_application ~opt_level graphs |> maybe_feedback in
  let algo_programs =
    List.mapi (fun i (name, g) -> (name, Compile.compile ~algo:i ~opt_level g |> maybe_feedback)) graphs
  in
  let dense_program = Compile.compile_dense_application ~opt_level graphs |> maybe_feedback in
  { app; graphs; program; algo_programs; dense_program }

type evaluation = {
  eframe : frame;
  accel : Accel.t;
  ooo : Schedule.result;
  ooo_fine : Schedule.result;
  io : Schedule.result;
  arm : Cpu_model.result;
  intel : Cpu_model.result;
  orianna_sw : Cpu_model.result;
  gpu : Gpu_model.result;
  vanilla_accel : Accel.t;
  vanilla : Schedule.result;
  stack : (string * Accel.t * Schedule.result) list;
}

let evaluate app ~seed =
  let eframe = frame app ~seed in
  let accel = (generate eframe.program).Dse.best in
  let run policy = Schedule.run ~accel ~policy eframe.program in
  let vanilla_accel = (generate eframe.dense_program).Dse.best in
  let stack =
    List.map
      (fun (name, p) ->
        let a = (generate p).Dse.best in
        (name, a, Schedule.run ~accel:a ~policy:Schedule.Ooo_full p))
      eframe.algo_programs
  in
  {
    eframe;
    accel;
    ooo = run Schedule.Ooo_full;
    ooo_fine = run Schedule.Ooo_fine;
    io = run Schedule.In_order;
    arm = Cpu_model.run Cpu_model.arm ~construct_flop_scale:se3_construct_scale eframe.program;
    intel = Cpu_model.run Cpu_model.intel ~construct_flop_scale:se3_construct_scale eframe.program;
    orianna_sw = Cpu_model.run Cpu_model.intel eframe.program;
    gpu = Gpu_model.run Gpu_model.jetson_maxwell eframe.program;
    vanilla_accel;
    vanilla = Schedule.run ~accel:vanilla_accel ~policy:Schedule.Ooo_full eframe.dense_program;
    stack;
  }

let stack_latency e =
  List.fold_left (fun acc (_, _, r) -> Float.max acc r.Schedule.seconds) 0.0 e.stack

let stack_energy e =
  let frame_time = stack_latency e in
  List.fold_left
    (fun acc (_, a, r) ->
      acc +. (Accel.static_power_w a *. frame_time) +. r.Schedule.dynamic_energy_j)
    0.0 e.stack

let stack_resources e =
  List.fold_left (fun acc (_, a, _) -> Resource.add acc (Accel.resources a)) Resource.zero e.stack
