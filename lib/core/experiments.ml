open Orianna_util
open Orianna_isa
open Orianna_hw
open Orianna_sim
open Orianna_baselines
module App = Orianna_apps.App
module Sphere = Orianna_apps.Sphere
module Compile = Orianna_compiler.Compile
module Graph = Orianna_fg.Graph
module Elimination = Orianna_fg.Elimination
module Ordering = Orianna_fg.Ordering
module Linear_system = Orianna_fg.Linear_system
module Campaign = Orianna_fault.Campaign
module Pool = Orianna_par.Pool

type context = { seed : int; evals : Pipeline.evaluation list }

(* Per-app evaluation (DSE + schedules + baselines) is the dominant
   cost of [run_all]; the apps are independent, so fan out. *)
let make_context ?(seed = 42) () =
  { seed; evals = Pool.parallel_map_list ~chunk:1 (fun app -> Pipeline.evaluate app ~seed) App.all }

let f2 = Texttable.cell_fx ~decimals:2
let f1 = Texttable.cell_fx ~decimals:1
let f3 = Texttable.cell_fx ~decimals:3

(* ------------------------------------------------------------------ *)

let table1 () =
  let r = Sphere.run () in
  let t =
    Texttable.create
      ~title:
        "Table 1: sphere-benchmark absolute trajectory errors (m).\n\
         (paper: initial 62.7/17.7/0.6/10.0; both optimized rows 0.04/0.007/0.000/0.005)"
      ~headers:[ ""; "Max"; "Mean"; "Min"; "Std" ]
  in
  let row label (e : Sphere.errors) =
    Texttable.add_row t [ label; f3 e.Sphere.max; f3 e.Sphere.mean; f3 e.Sphere.min; f3 e.Sphere.std ]
  in
  row "Initial Error" r.Sphere.initial_errors;
  row "<so(3), T(3)>" r.Sphere.unified.Sphere.errors;
  row "SE(3)" r.Sphere.se3.Sphere.errors;
  Texttable.render t
  ^ Printf.sprintf
      "Construction-phase MACs: unified %d vs SE(3) %d -> %.1f%% saving (paper: 52.7%%).\n\
       Identical optimized accuracy in both representations, as in the paper.\n"
      r.Sphere.unified.Sphere.construct_macs r.Sphere.se3.Sphere.construct_macs
      (100.0 *. r.Sphere.mac_saving)

let table4 () =
  let t =
    Texttable.create ~title:"Table 4: benchmark applications and factor-graph nodes"
      ~headers:[ "Application"; "Loc dim"; "Plan dim"; "Ctrl dims"; "Loc factors"; "Plan factors"; "Ctrl factors" ]
  in
  List.iter
    (fun (a : App.t) ->
      let ld, pd, cd = a.App.variable_dims in
      let lf, pf, cf = a.App.factor_kinds in
      Texttable.add_row t [ a.App.name; ld; pd; cd; lf; pf; cf ])
    App.all;
  Texttable.render t

let table5 ?(missions = 30) () =
  let t =
    Texttable.create
      ~title:
        (Printf.sprintf
           "Table 5: mission success rate over %d missions (paper: 100 / 96.7 / 100 / 93.3, \
            identical for software and ORIANNA)"
           missions)
      ~headers:[ "Application"; "Software"; "ORIANNA" ]
  in
  List.iter
    (fun (a : App.t) ->
      let sw = App.success_rate a ~solver:`Software ~missions in
      let hw = App.success_rate a ~solver:`Compiled ~missions in
      Texttable.add_row t
        [ a.App.name; Printf.sprintf "%.1f%%" (100.0 *. sw); Printf.sprintf "%.1f%%" (100.0 *. hw) ])
    App.all;
  Texttable.render t

(* ------------------------------------------------------------------ *)

let mean xs = Stats.mean (Array.of_list xs)

let fig13 ctx =
  let t =
    Texttable.create
      ~title:
        "Fig. 13: speedup over ARM (paper averages: Intel ~8.2x, GPU ~2.0x, ORIANNA-SW ~9x, \
         IO ~8.5x, OoO 53.5x)"
      ~headers:[ "Application"; "ARM"; "Intel"; "GPU"; "ORIANNA-SW"; "ORIANNA-IO"; "ORIANNA-OoO" ]
  in
  let ratios =
    List.map
      (fun (e : Pipeline.evaluation) ->
        let arm = e.Pipeline.arm.Cpu_model.seconds in
        let r =
          [
            1.0;
            arm /. e.Pipeline.intel.Cpu_model.seconds;
            arm /. e.Pipeline.gpu.Gpu_model.seconds;
            arm /. e.Pipeline.orianna_sw.Cpu_model.seconds;
            arm /. e.Pipeline.io.Schedule.seconds;
            arm /. e.Pipeline.ooo.Schedule.seconds;
          ]
        in
        Texttable.add_row t (e.Pipeline.eframe.Pipeline.app.App.name :: List.map f1 r);
        r)
      ctx.evals
  in
  let avg = List.map (fun i -> mean (List.map (fun r -> List.nth r i) ratios)) [ 0; 1; 2; 3; 4; 5 ] in
  Texttable.add_row t ("Average" :: List.map f1 avg);
  Texttable.render t

let fig14 ctx =
  let t =
    Texttable.create
      ~title:
        "Fig. 14: energy reduction over ARM (paper average: OoO 3.4x over ARM; Intel and GPU \
         consume several-fold more than ARM)"
      ~headers:[ "Application"; "ARM"; "Intel"; "GPU"; "ORIANNA-IO"; "ORIANNA-OoO" ]
  in
  let ratios =
    List.map
      (fun (e : Pipeline.evaluation) ->
        let arm = e.Pipeline.arm.Cpu_model.energy_j in
        let r =
          [
            1.0;
            arm /. e.Pipeline.intel.Cpu_model.energy_j;
            arm /. e.Pipeline.gpu.Gpu_model.energy_j;
            arm /. e.Pipeline.io.Schedule.energy_j;
            arm /. e.Pipeline.ooo.Schedule.energy_j;
          ]
        in
        Texttable.add_row t (e.Pipeline.eframe.Pipeline.app.App.name :: List.map f2 r);
        r)
      ctx.evals
  in
  let avg = List.map (fun i -> mean (List.map (fun r -> List.nth r i) ratios)) [ 0; 1; 2; 3; 4 ] in
  Texttable.add_row t ("Average" :: List.map f2 avg);
  Texttable.render t

let fig15 ctx =
  let t =
    Texttable.create
      ~title:
        "Fig. 15: per-algorithm speedup of ORIANNA-OoO over ARM (paper averages: localization \
         48.2x, planning 50.6x, control 60.7x)"
      ~headers:[ "Application"; "localization"; "planning"; "control" ]
  in
  let per_algo = Hashtbl.create 4 in
  List.iter
    (fun (e : Pipeline.evaluation) ->
      let cells =
        List.map
          (fun (name, p) ->
            let arm = Cpu_model.run Cpu_model.arm ~construct_flop_scale:Pipeline.se3_construct_scale p in
            let sim = Schedule.run ~accel:e.Pipeline.accel ~policy:Schedule.Ooo_full p in
            let speedup = arm.Cpu_model.seconds /. sim.Schedule.seconds in
            Hashtbl.replace per_algo name
              (speedup :: Option.value ~default:[] (Hashtbl.find_opt per_algo name));
            speedup)
          e.Pipeline.eframe.Pipeline.algo_programs
      in
      Texttable.add_row t (e.Pipeline.eframe.Pipeline.app.App.name :: List.map f1 cells))
    ctx.evals;
  let avg =
    List.map
      (fun name -> mean (Option.value ~default:[ 0.0 ] (Hashtbl.find_opt per_algo name)))
      [ "localization"; "planning"; "control" ]
  in
  Texttable.add_row t ("Average" :: List.map f1 avg);
  Texttable.render t

let fig16 ctx =
  let ta =
    Texttable.create
      ~title:
        "Fig. 16a: speedup over Intel (paper: OoO 25.6x over VANILLA-HLS; STACK ~1% faster than \
         OoO)"
      ~headers:[ "Application"; "VANILLA-HLS"; "STACK"; "ORIANNA-IO"; "ORIANNA-OoO" ]
  in
  let tb =
    Texttable.create
      ~title:"Fig. 16b: energy reduction over Intel (paper: OoO 15.1x; 2.9x less than STACK)"
      ~headers:[ "Application"; "VANILLA-HLS"; "STACK"; "ORIANNA-IO"; "ORIANNA-OoO" ]
  in
  let tc =
    Texttable.create
      ~title:
        "Fig. 16c: resource consumption (paper: STACK uses 3.4x LUT / 3.0x FF / 3.2x BRAM / 2.0x \
         DSP of ORIANNA)"
      ~headers:[ "Application"; "Design"; "LUT"; "FF"; "BRAM"; "DSP" ]
  in
  List.iter
    (fun (e : Pipeline.evaluation) ->
      let name = e.Pipeline.eframe.Pipeline.app.App.name in
      let intel_t = e.Pipeline.intel.Cpu_model.seconds in
      let intel_e = e.Pipeline.intel.Cpu_model.energy_j in
      Texttable.add_row ta
        [
          name;
          f2 (intel_t /. e.Pipeline.vanilla.Schedule.seconds);
          f2 (intel_t /. Pipeline.stack_latency e);
          f2 (intel_t /. e.Pipeline.io.Schedule.seconds);
          f2 (intel_t /. e.Pipeline.ooo.Schedule.seconds);
        ];
      Texttable.add_row tb
        [
          name;
          f2 (intel_e /. e.Pipeline.vanilla.Schedule.energy_j);
          f2 (intel_e /. Pipeline.stack_energy e);
          f2 (intel_e /. e.Pipeline.io.Schedule.energy_j);
          f2 (intel_e /. e.Pipeline.ooo.Schedule.energy_j);
        ];
      let resource_row design (r : Resource.t) =
        Texttable.add_row tc
          [
            name;
            design;
            string_of_int r.Resource.lut;
            string_of_int r.Resource.ff;
            string_of_int r.Resource.bram;
            string_of_int r.Resource.dsp;
          ]
      in
      resource_row "ORIANNA" (Accel.resources e.Pipeline.accel);
      resource_row "VANILLA-HLS" (Accel.resources e.Pipeline.vanilla_accel);
      resource_row "STACK" (Pipeline.stack_resources e))
    ctx.evals;
  (* Average STACK / ORIANNA resource ratio. *)
  let ratios =
    List.map
      (fun (e : Pipeline.evaluation) ->
        let o = Accel.resources e.Pipeline.accel and s = Pipeline.stack_resources e in
        let frac a b = float_of_int a /. float_of_int b in
        [
          frac s.Resource.lut o.Resource.lut;
          frac s.Resource.ff o.Resource.ff;
          frac s.Resource.bram o.Resource.bram;
          frac s.Resource.dsp o.Resource.dsp;
        ])
      ctx.evals
  in
  let avg = List.map (fun i -> mean (List.map (fun r -> List.nth r i) ratios)) [ 0; 1; 2; 3 ] in
  Texttable.render ta ^ Texttable.render tb ^ Texttable.render tc
  ^ Printf.sprintf "STACK / ORIANNA average resource ratio: LUT %.1fx FF %.1fx BRAM %.1fx DSP %.1fx\n"
      (List.nth avg 0) (List.nth avg 1) (List.nth avg 2) (List.nth avg 3)

(* ------------------------------------------------------------------ *)
(* Figs. 17/18: matrix-operation size and density on the mobile robot. *)

let qr_shapes (p : Program.t) =
  Array.to_list p.Program.instrs
  |> List.filter_map (fun (i : Instr.t) ->
         match i.Instr.op with
         | Instr.Qr ->
             let src = p.Program.instrs.(i.Instr.srcs.(0)) in
             Some (src.Instr.rows, src.Instr.cols)
         | _ -> None)

let mobile_robot_algo_data seed =
  let graphs = App.mobile_robot.App.graphs (Rng.of_int seed) in
  List.map
    (fun (name, g) ->
      let orianna_program = Compile.compile g in
      let dense_program = Compile.compile_dense g in
      (* Density of the factor-graph path: census of the eliminated
         dense blocks.  Density of the dense path: the assembled A. *)
      let order =
        Ordering.compute Ordering.Min_degree ~vars:(Graph.variables g)
          ~factor_scopes:(Graph.factor_scopes g)
      in
      let lin = Graph.linearize g in
      let census = (Elimination.eliminate ~order ~dims:(Graph.dims g) lin).Elimination.census in
      let asm = Linear_system.assemble ~var_order:(Graph.variables g) ~dims:(Graph.dims g) lin in
      (name, orianna_program, dense_program, census, asm))
    graphs

let fig17 ctx =
  let t =
    Texttable.create
      ~title:
        "Fig. 17: matrix-operation (QR) sizes, mobile robot (paper: localization 147x90 dense vs \
         11.1x smaller ORIANNA blocks; planning max 41x12)"
      ~headers:[ "Algorithm"; "VANILLA-HLS size"; "ORIANNA max"; "ORIANNA mean cells"; "reduction" ]
  in
  List.iter
    (fun (name, orianna_program, dense_program, _census, _asm) ->
      let dense_shape = List.hd (qr_shapes dense_program) in
      let shapes = qr_shapes orianna_program in
      let max_shape =
        List.fold_left (fun (am, an) (m, n) -> if m * n > am * an then (m, n) else (am, an)) (0, 0)
          shapes
      in
      let mean_cells = mean (List.map (fun (m, n) -> float_of_int (m * n)) shapes) in
      let dm, dn = dense_shape in
      let reduction = float_of_int (dm * dn) /. mean_cells in
      Texttable.add_row t
        [
          name;
          Printf.sprintf "%dx%d" dm dn;
          Printf.sprintf "%dx%d" (fst max_shape) (snd max_shape);
          f1 mean_cells;
          f1 reduction ^ "x";
        ])
    (mobile_robot_algo_data ctx.seed);
  Texttable.render t

let fig18 ctx =
  let t =
    Texttable.create
      ~title:
        "Fig. 18: matrix-operation density, mobile robot (paper: localization 5.3% dense system \
         vs 58.5% average ORIANNA blocks)"
      ~headers:[ "Algorithm"; "VANILLA-HLS density"; "ORIANNA mean density"; "improvement" ]
  in
  List.iter
    (fun (name, _op, _dp, census, asm) ->
      let dense_density = Orianna_linalg.Assembly.density asm in
      let block_density =
        mean (List.map (fun (c : Elimination.census_entry) -> c.Elimination.density) census)
      in
      Texttable.add_row t
        [
          name;
          Printf.sprintf "%.1f%%" (100.0 *. dense_density);
          Printf.sprintf "%.1f%%" (100.0 *. block_density);
          f1 (block_density /. dense_density) ^ "x";
        ])
    (mobile_robot_algo_data ctx.seed);
  Texttable.render t

(* ------------------------------------------------------------------ *)
(* Figs. 19/20: constrained generation vs manual designs.              *)

(* Plausible hand designs: fixed allocation shapes scaled up until the
   budget is hit. *)
let manual_shapes =
  [
    ("manual-balanced", List.map (fun c -> (c, 1)) Unit_model.all_classes);
    ("manual-matmul-heavy", [ (Unit_model.Matmul, 3); (Unit_model.Qr_unit, 1); (Unit_model.Dma, 2) ]);
    ("manual-qr-heavy", [ (Unit_model.Matmul, 1); (Unit_model.Qr_unit, 3); (Unit_model.Dma, 2) ]);
  ]

let manual_designs budget =
  let scale_until_fit shape name =
    let rec grow k best =
      let counts = List.map (fun (c, n) -> (c, max 1 (k * n))) shape in
      let accel = Accel.make ~name ~counts () in
      if Accel.fits accel ~budget then grow (k + 1) (Some accel) else best
    in
    grow 1 None
  in
  List.map (fun (name, shape) -> (name, scale_until_fit shape name)) manual_shapes

(* The base configuration (one unit per class) needs 336 DSPs; the
   sweep starts just above it, like the paper's constrained points. *)
let dsp_sweep = [ 352; 448; 544; 640; 768; 900 ]

let sweep_row ctx ~objective dsp =
  let budget = { Resource.zc706 with Resource.dsp } in
  let programs = List.map (fun (e : Pipeline.evaluation) -> e.Pipeline.eframe.Pipeline.program) ctx.evals in
  let intel_t =
    mean (List.map (fun (e : Pipeline.evaluation) -> e.Pipeline.intel.Cpu_model.seconds) ctx.evals)
  in
  let metric accel =
    mean
      (List.map
         (fun p ->
           let r = Schedule.run ~accel ~policy:Schedule.Ooo_full p in
           match objective with
           | `Latency -> r.Schedule.seconds
           | `Energy -> r.Schedule.energy_j)
         programs)
  in
  let generated =
    (* Multi-start greedy over the averaged objective: the generator
       explores from the base template and from each feasible manual
       allocation, keeping the best design it reaches. *)
    let evaluate accel = metric accel in
    let starts =
      Accel.base ()
      :: List.filter_map (fun (_, a) -> a) (manual_designs budget)
    in
    (* One evaluation cache across the starts: greedy paths from
       different initial allocations revisit the same configurations,
       and the averaged objective is expensive. *)
    let cache = Dse.cache () in
    let results =
      List.filter_map
        (fun init ->
          if Accel.fits init ~budget then Some (Dse.optimize ~budget ~evaluate ~init ~cache ())
          else None)
        starts
    in
    (List.fold_left
       (fun best r -> if r.Dse.objective < best.Dse.objective then r else best)
       (List.hd results) (List.tl results))
      .Dse.best
  in
  let manuals = manual_designs budget in
  let cell accel =
    match objective with
    | `Latency -> f1 (intel_t /. metric accel) ^ "x"
    | `Energy -> f3 (metric accel *. 1e3) ^ " mJ"
  in
  ( string_of_int dsp,
    cell generated,
    List.map
      (fun (name, a) -> (name, match a with Some a -> cell a | None -> "n/a"))
      manuals )

let sweep_table ctx ~objective ~title =
  let rows = Pool.parallel_map_list ~chunk:1 (sweep_row ctx ~objective) dsp_sweep in
  let manual_names = List.map fst manual_shapes in
  let t = Texttable.create ~title ~headers:([ "DSP budget"; "ORIANNA (generated)" ] @ manual_names) in
  List.iter
    (fun (dsp, gen, manuals) -> Texttable.add_row t ([ dsp; gen ] @ List.map snd manuals))
    rows;
  Texttable.render t

let fig19 ctx =
  sweep_table ctx ~objective:`Latency
    ~title:
      "Fig. 19: average speedup over Intel under a DSP constraint — generated vs manual designs \
       (paper: generated is best at every budget)"

let fig20 ctx =
  sweep_table ctx ~objective:`Energy
    ~title:
      "Fig. 20: average frame energy under a DSP constraint, energy-objective generation \
       (paper: generated consumes the least at every budget)"

let breakdown ctx =
  let quad =
    List.find
      (fun (e : Pipeline.evaluation) -> e.Pipeline.eframe.Pipeline.app.App.name = "Quadrotor")
      ctx.evals
  in
  let busy = quad.Pipeline.ooo.Schedule.phase_busy in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 busy in
  let t =
    Texttable.create
      ~title:
        "Sec. 7.3 latency breakdown, quadrotor (paper: decomposition 74%, construction 16%, \
         back substitution 10%)"
      ~headers:[ "Phase"; "busy cycles"; "share" ]
  in
  List.iter
    (fun (ph, c) ->
      Texttable.add_row t
        [
          Instr.phase_name ph;
          string_of_int c;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int c /. float_of_int total);
        ])
    busy;
  let occ =
    Buffer_model.analyze quad.Pipeline.eframe.Pipeline.program quad.Pipeline.ooo
  in
  Texttable.render t
  ^ Printf.sprintf
      "On-chip buffer: peak working set %d words, capacity %d words (%.0f%% occupied at peak)\n"
      occ.Buffer_model.peak_words
      (Buffer_model.capacity_words quad.Pipeline.accel)
      (100.0
      *. float_of_int occ.Buffer_model.peak_words
      /. float_of_int (Buffer_model.capacity_words quad.Pipeline.accel))

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out.                *)

let ablations ctx =
  let base = Accel.base () in
  let t_cse =
    Texttable.create
      ~title:"Ablation A: compiler value numbering (CSE) — instruction count and base-accel OoO latency"
      ~headers:[ "Application"; "instrs CSE"; "instrs no-CSE"; "OoO us CSE"; "OoO us no-CSE" ]
  in
  let t_ord =
    Texttable.create
      ~title:"Ablation B: elimination ordering — compiled flops and base-accel OoO latency"
      ~headers:
        [ "Application"; "min-degree flops"; "natural flops"; "reverse flops"; "min-degree us"; "natural us"; "reverse us" ]
  in
  let t_prio =
    Texttable.create
      ~title:"Ablation C: OoO issue priority — critical-path vs FIFO on the generated accelerator"
      ~headers:[ "Application"; "critical-path us"; "FIFO us"; "penalty" ]
  in
  List.iter
    (fun (e : Pipeline.evaluation) ->
      let name = e.Pipeline.eframe.Pipeline.app.App.name in
      let graphs = e.Pipeline.eframe.Pipeline.graphs in
      (* A: CSE. *)
      let with_cse = e.Pipeline.eframe.Pipeline.program in
      let without_cse = Compile.compile_application ~cse:false graphs in
      let us p = (Schedule.run ~accel:base ~policy:Schedule.Ooo_full p).Schedule.seconds *. 1e6 in
      Texttable.add_row t_cse
        [
          name;
          string_of_int (Program.length with_cse);
          string_of_int (Program.length without_cse);
          f1 (us with_cse);
          f1 (us without_cse);
        ];
      (* B: ordering. *)
      let program_of ordering = Compile.compile_application ~ordering graphs in
      let p_md = with_cse in
      let p_nat = program_of Orianna_fg.Ordering.Natural in
      let p_rev = program_of Orianna_fg.Ordering.Reverse in
      let flops p = (Program.stats p).Program.flops_total in
      Texttable.add_row t_ord
        [
          name;
          string_of_int (flops p_md);
          string_of_int (flops p_nat);
          string_of_int (flops p_rev);
          f1 (us p_md);
          f1 (us p_nat);
          f1 (us p_rev);
        ];
      (* C: scheduler priority. *)
      let run priority =
        (Schedule.run ~priority ~accel:e.Pipeline.accel ~policy:Schedule.Ooo_full with_cse)
          .Schedule.seconds *. 1e6
      in
      let cp = run Schedule.Critical_path and fifo = run Schedule.Fifo in
      Texttable.add_row t_prio
        [ name; f1 cp; f1 fifo; Printf.sprintf "+%.1f%%" (100.0 *. ((fifo /. cp) -. 1.0)) ])
    ctx.evals;
  Texttable.render t_cse ^ Texttable.render t_ord ^ Texttable.render t_prio

let frame_rates ctx =
  (* The paper's motivation (Sec. 1): optimization-based stacks run at
     a few Hz on CPUs.  A frame is 3 Gauss-Newton iterations: CPUs run
     them back to back, the accelerator runs the unrolled 3-iteration
     program (Compile.compile_iterations) whose update phases stay
     on-chip and whose iterations overlap under OoO issue. *)
  let iterations = 3.0 in
  let t =
    Texttable.create
      ~title:
        "Frame rates at 3 GN iterations per frame (paper intro: a LOAM-class localizer reaches \
         ~5 Hz on a desktop CPU); the OoO column runs the unrolled on-chip loop"
      ~headers:[ "Application"; "ARM Hz"; "Intel Hz"; "GPU Hz"; "ORIANNA-OoO Hz" ]
  in
  List.iter
    (fun (e : Pipeline.evaluation) ->
      let hz seconds = 1.0 /. (iterations *. seconds) in
      let unrolled =
        Program.concat
          (List.mapi
             (fun i (name, g) ->
               Compile.compile_iterations ~algo:i ~prefix:(name ^ "/") ~iterations:3 g)
             e.Pipeline.eframe.Pipeline.graphs)
      in
      let sim = Schedule.run ~accel:e.Pipeline.accel ~policy:Schedule.Ooo_full unrolled in
      Texttable.add_row t
        [
          e.Pipeline.eframe.Pipeline.app.App.name;
          f1 (hz e.Pipeline.arm.Cpu_model.seconds);
          f1 (hz e.Pipeline.intel.Cpu_model.seconds);
          f1 (hz e.Pipeline.gpu.Gpu_model.seconds);
          f1 (1.0 /. sim.Schedule.seconds);
        ])
    ctx.evals;
  Texttable.render t

let extension_robust () =
  let config =
    { Sphere.default_config with Sphere.rings = 5; poses_per_ring = 12; seed = 77 }
  in
  let r = Sphere.run_robust ~config ~outlier_fraction:0.12 () in
  let t =
    Texttable.create
      ~title:
        (Printf.sprintf
           "Extension: robust loop closures — %d wild outliers injected into the sphere graph             (plain least squares vs Cauchy M-estimator)"
           r.Sphere.outliers)
      ~headers:[ ""; "Max"; "Mean"; "Min"; "Std" ]
  in
  let row label (e : Sphere.errors) =
    Texttable.add_row t [ label; f3 e.Sphere.max; f3 e.Sphere.mean; f3 e.Sphere.min; f3 e.Sphere.std ]
  in
  row "clean (no outliers)" r.Sphere.clean;
  row "plain least squares" r.Sphere.plain;
  row "Cauchy robust loss" r.Sphere.robust;
  Texttable.render t

let extension_manhattan () =
  let ds = Orianna_apps.Datasets.manhattan Orianna_apps.Datasets.default_config in
  let init = Orianna_apps.Datasets.ate ~truth:ds.Orianna_apps.Datasets.truth ~estimate:ds.Orianna_apps.Datasets.initial in
  let g = Orianna_apps.Datasets.to_graph ds in
  let params =
    { Orianna_fg.Optimizer.default_params with
      Orianna_fg.Optimizer.method_ = Orianna_fg.Optimizer.Levenberg_marquardt }
  in
  let report = Orianna_fg.Optimizer.optimize ~params g in
  let est = Orianna_apps.Datasets.estimate_of g ~n:(Array.length ds.Orianna_apps.Datasets.truth) in
  let final = Orianna_apps.Datasets.ate ~truth:ds.Orianna_apps.Datasets.truth ~estimate:est in
  let t =
    Texttable.create
      ~title:
        (Printf.sprintf
           "Extension: Manhattan-world pose graph (M3500-style, %d poses, %d loop closures)"
           (Array.length ds.Orianna_apps.Datasets.truth)
           (Array.length ds.Orianna_apps.Datasets.loops))
      ~headers:[ ""; "Max"; "Mean"; "Min"; "Std" ]
  in
  let row label (e : Sphere.errors) =
    Texttable.add_row t [ label; f3 e.Sphere.max; f3 e.Sphere.mean; f3 e.Sphere.min; f3 e.Sphere.std ]
  in
  row "Initial Error" init;
  row "Optimized" final;
  Texttable.render t
  ^ Printf.sprintf "LM converged in %d iterations.\n" report.Orianna_fg.Optimizer.iterations

let extension_faults ?(missions = 16) () =
  let t =
    Texttable.create
      ~title:
        (Printf.sprintf "Extension: fault-injection campaigns (%d missions per app, seed 42)"
           missions)
      ~headers:[ "App"; "Injected"; "Detected"; "Recovered"; "Masked"; "Escaped"; "Worst slowdown" ]
  in
  let rows =
    Pool.parallel_map_list ~chunk:1
      (fun (app : App.t) ->
        let frame = Pipeline.frame app ~seed:42 in
        let accel = (Pipeline.generate frame.Pipeline.program).Dse.best in
        let config = { Campaign.default_config with Campaign.missions } in
        let s =
          Campaign.run ~config ~rng:(Rng.of_int 42) ~graphs:frame.Pipeline.graphs
            ~program:frame.Pipeline.program ~accel ()
        in
        let tot = s.Campaign.totals in
        [
          app.App.name;
          string_of_int tot.Campaign.injected;
          string_of_int tot.Campaign.detected;
          string_of_int tot.Campaign.recovered;
          string_of_int tot.Campaign.masked;
          string_of_int tot.Campaign.escaped;
          Printf.sprintf "%.2fx" s.Campaign.worst_slowdown;
        ])
      App.all
  in
  List.iter (Texttable.add_row t) rows;
  Texttable.render t

let extension_serve ?(requests = 200) () =
  let module Serve = Orianna_serve.Serve in
  let module Request = Orianna_serve.Request in
  let module Dispatch = Orianna_serve.Dispatch in
  let module Cache = Orianna_serve.Cache in
  let t =
    Texttable.create
      ~title:
        (Printf.sprintf
           "Extension: serving runtime (%d requests per app, Poisson 20 kHz, seed 42)" requests)
      ~headers:
        [ "App"; "Policy"; "Completed"; "Rejected"; "Cache hit"; "p50 ms"; "p99 ms"; "DL miss" ]
  in
  (* The app x policy cells are independent virtual-clock DES runs
     (each [Serve.run] owns its cache and fleet state) — the whole
     matrix fans out. *)
  let cells =
    List.concat_map
      (fun (app : App.t) ->
        List.map
          (fun policy -> (app, policy))
          [
            Orianna_serve.Dispatch.Fifo;
            Orianna_serve.Dispatch.Edf;
            Orianna_serve.Dispatch.Least_loaded;
          ])
      App.all
  in
  let rows =
    Pool.parallel_map_list ~chunk:1
      (fun ((app : App.t), policy) ->
        let trace =
          Request.generate ~rng:(Rng.of_int 42)
            ~shape:(Request.Poisson { rate_hz = 20000.0 })
            ~apps:[ app.App.name ] ~deadline_s:(1e-3, 4e-3) ~n:requests
        in
        let config = { Serve.default_config with Serve.policy } in
        let r = Serve.run ~config ~trace () in
        [
          app.App.name;
          Dispatch.policy_name policy;
          string_of_int r.Serve.completed;
          string_of_int (List.length r.Serve.rejections);
          Printf.sprintf "%.1f%%" (100.0 *. Cache.hit_rate r.Serve.cache);
          Printf.sprintf "%.3f" r.Serve.p50_ms;
          Printf.sprintf "%.3f" r.Serve.p99_ms;
          Printf.sprintf "%.1f%%" (100.0 *. r.Serve.deadline_miss_rate);
        ])
      cells
  in
  List.iter (Texttable.add_row t) rows;
  Texttable.render t

let run_all ?(missions = 30) () =
  print_string (table1 ());
  print_newline ();
  print_string (table4 ());
  print_newline ();
  print_string (table5 ~missions ());
  print_newline ();
  let ctx = make_context () in
  List.iter
    (fun f ->
      print_string (f ctx);
      print_newline ())
    [ fig13; fig14; fig15; fig16; fig17; fig18; fig19; fig20; breakdown; frame_rates; ablations ];
  print_string (extension_robust ());
  print_newline ();
  print_string (extension_manhattan ());
  print_newline ();
  print_string (extension_faults ());
  print_newline ();
  print_string (extension_serve ());
  print_newline ()
