(** Reproduction harness: one entry per table and figure of the
    paper's evaluation (see DESIGN.md's experiment index).

    Each function renders a plain-text table with the measured values
    (and, where meaningful, the paper's reported numbers alongside).
    The expensive comparison matrix (compilation + hardware generation
    + simulation of every application) is computed once per
    {!context}. *)

type context

val make_context : ?seed:int -> unit -> context
(** Compile and evaluate all four applications (a few seconds). *)

val table1 : unit -> string
(** Sphere-benchmark trajectory errors: initial vs [<so(3),T(3)>] vs
    SE(3), plus the construction-phase MAC saving of Sec. 4.3. *)

val table4 : unit -> string
(** Benchmark configuration (descriptive). *)

val table5 : ?missions:int -> unit -> string
(** Mission success rates, ORIANNA (compiled semantics) vs software. *)

val fig13 : context -> string
(** Speedup over ARM: Intel / GPU / ORIANNA-SW / IO / OoO. *)

val fig14 : context -> string
(** Energy reduction over ARM. *)

val fig15 : context -> string
(** Per-algorithm speedup over ARM (localization / planning / control). *)

val fig16 : context -> string
(** ORIANNA vs VANILLA-HLS vs STACK: speedup and energy vs Intel
    (16a/16b) and resource consumption (16c). *)

val fig17 : context -> string
(** Matrix-operation sizes, VANILLA-HLS vs ORIANNA, per algorithm of
    the mobile robot. *)

val fig18 : context -> string
(** Matrix-operation density, VANILLA-HLS vs ORIANNA. *)

val fig19 : context -> string
(** Speedup vs Intel under a DSP budget sweep: generated vs manually
    designed accelerators. *)

val fig20 : context -> string
(** Energy under the same sweep, energy-objective generation. *)

val breakdown : context -> string
(** Latency breakdown by phase on the quadrotor (Sec. 7.3: decomposition
    ~74 %, construction ~16 %, back substitution ~10 %). *)

val frame_rates : context -> string
(** Achieved frame rates per platform at a typical 3 iterations per
    frame (the Sec. 1 motivation numbers). *)

val ablations : context -> string
(** Design-choice ablations beyond the paper's figures: compiler CSE
    on/off, elimination-ordering choice, and OoO issue priority
    (critical-path vs FIFO). *)

val extension_robust : unit -> string
(** Extension beyond the paper: outlier-corrupted loop closures solved
    with and without a robust loss (see {!Orianna_fg.Robust}). *)

val extension_manhattan : unit -> string
(** Extension: a Manhattan-world (M3500-style) 2D pose graph solved
    end to end. *)

val extension_serve : ?requests:int -> unit -> string
(** Extension: the multi-tenant serving runtime (seed 42) — per app
    and dispatch policy, completions / rejections, compile-cache hit
    rate, p50/p99 latency and deadline-miss rate over a Poisson
    arrival trace. *)

val extension_faults : ?missions:int -> unit -> string
(** Fault-injection campaigns (seed 42) across all four apps:
    per-app injected / detected / recovered / masked / escaped counts
    and the worst degraded-mode slowdown. *)

val run_all : ?missions:int -> unit -> unit
(** Print everything to stdout (the bench harness entry point). *)
