(** Fixed-size domain worker pool with deterministic parallel
    combinators.

    Every fan-out site in the repository (DSE candidate evaluation,
    fault-campaign missions, the experiments/bench matrices, the serve
    sweeps) is an embarrassingly parallel loop over pure work items.
    This module runs those loops across OCaml 5 domains under a hard
    contract: {e results are bit-identical for any job count}.  The
    contract holds because

    - results are collected into their input slot (ordered), never in
      completion order;
    - work items must not share mutable state (callers split PRNG
      streams with {!Orianna_util.Rng.split_n} and copy any mutable
      fixtures per chunk {e before} submission);
    - at [jobs = 1] no domain is spawned — the map degrades to a plain
      sequential [Array.map], which is also the guaranteed fallback
      inside nested calls (a parallel map issued from within a worker
      task runs sequentially rather than deadlocking the pool).

    Exceptions raised by work items are captured per slot and the
    first one {e in input order} is re-raised (with its backtrace)
    after all items have settled, so a failing item behaves the same
    at any job count.

    The pool is process-global and sized lazily from, in order of
    precedence: {!set_default_jobs} (the [--jobs]/[-j] CLI flag), the
    [ORIANNA_JOBS] environment variable, and
    [Domain.recommended_domain_count ()].  Worker domains are spawned
    on first use, reused across calls, resized when a different job
    count is requested, and joined at process exit. *)

val default_jobs : unit -> int
(** The job count parallel combinators use when [?jobs] is omitted.
    At least 1. *)

val set_default_jobs : int -> unit
(** Override the default job count ([n < 1] is clamped to 1).  The
    CLI's [--jobs]/[-j] flag lands here. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f xs] is [Array.map f xs] computed on [jobs] domains
    (the caller participates as one lane).  Results keep input order;
    the first failing slot's exception is re-raised.  Sequential when
    [jobs = 1], when [xs] has fewer than two elements, or when called
    from inside another pool task. *)

val parallel_map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!parallel_map}. *)

val parallel_map_reduce :
  ?jobs:int -> map:('a -> 'b) -> reduce:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** Map in parallel, then fold the results {e sequentially in input
    order} — deterministic even for non-associative [reduce]. *)

val chunk_ranges : chunks:int -> n:int -> (int * int) array
(** [chunk_ranges ~chunks ~n] splits [0..n-1] into at most [chunks]
    contiguous, balanced, half-open ranges [(lo, hi)].  Used by
    callers that need one mutable fixture per task (e.g. the fault
    campaign's per-chunk graph copies). *)

val shutdown : unit -> unit
(** Join all worker domains.  Called automatically at exit; safe to
    call repeatedly (the pool respawns on next use). *)

(** {1 Instrumentation}

    While the telemetry registry ({!Orianna_obs.Obs}) is enabled,
    every pool run records per-lane metrics: slot counts, busy time,
    dispatch latency (job publication to the lane's first claim),
    per-slot spans, and per-domain [Gc.quick_stat] deltas (minor words
    allocated, promoted words, minor/major collections — minor-heap
    figures are per-domain in OCaml 5, so allocation is attributed to
    the domain that did the work).  Lane [0] is the calling domain;
    lanes [1..jobs-1] are the worker domains.  Each completed run also
    feeds the registry ([pool.runs]/[pool.slots] counters and the
    [pool.slot_ms]/[pool.dispatch_ms]/[pool.join_spin_ms] histograms).
    The sequential fallback (jobs = 1, tiny inputs) is recorded too,
    as a single-lane run — [profile --par] compares the same workload's
    sequential and parallel run records to split the scaling gap into
    serial sections, work inflation, pool overhead and idle time.
    With the registry disabled, none of this exists — the claim loop
    is the bare fetch-and-add. *)

type lane_stats = {
  lane : int;
  mutable slots : int;
  mutable busy_s : float;
  mutable dispatch_s : float;
  mutable minor_words : float;
  mutable promoted_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable slot_spans : (int * float * float) list;
      (** (slot index, start, duration), seconds on the {!Orianna_obs.Obs}
          epoch clock, most recent first *)
}

type run_record = {
  run_id : int;
  rjobs : int;
  items : int;
  submit_s : float;
  mutable done_s : float;
  mutable join_spin_s : float;
      (** caller's busy-wait after the slot supply ran dry — pure pool
          overhead *)
  lanes : lane_stats array;  (** indexed by lane; length [rjobs] *)
}

val drain_stats : unit -> run_record list
(** All run records accumulated since the last drain, oldest first.
    The session buffer is cleared. *)

type lane_totals = {
  tlane : int;
  tslots : int;
  tbusy_s : float;
  tdispatch_s : float;
  tminor_words : float;
  tpromoted_words : float;
  tminor_collections : int;
  tmajor_collections : int;
}

type summary = {
  runs : int;
  total_items : int;
  lanes_used : int;
  per_lane : lane_totals array;
  join_spin_total_s : float;
}

val summarize : run_record list -> summary
(** Aggregate per-lane totals across a batch of run records. *)

val chrome_pid_base : int
(** First pid used by {!chrome_events} (3): pids 0–2 belong to the
    pipeline spans, the accelerator and the serving fleet. *)

val chrome_events :
  ?base_pid:int -> run_record list -> Orianna_obs.Chrome_trace.event list
(** One Chrome-trace process ({e pid}) per pool domain — lane [l]
    maps to pid [base_pid + l] — carrying that domain's slot slices,
    a submit instant per run, and a [pool.gc.minor_words] counter
    track per lane. *)
