(** Fixed-size domain worker pool with deterministic parallel
    combinators.

    Every fan-out site in the repository (DSE candidate evaluation,
    fault-campaign missions, the experiments/bench matrices, the serve
    sweeps) is an embarrassingly parallel loop over pure work items.
    This module runs those loops across OCaml 5 domains under a hard
    contract: {e results are bit-identical for any job count}.  The
    contract holds because

    - results are collected into their input slot (ordered), never in
      completion order;
    - work items must not share mutable state (callers split PRNG
      streams with {!Orianna_util.Rng.split_n} and copy any mutable
      fixtures per chunk {e before} submission);
    - at [jobs = 1] no domain is spawned — the map degrades to a plain
      sequential [Array.map], which is also the guaranteed fallback
      inside nested calls (a parallel map issued from within a worker
      task runs sequentially rather than deadlocking the pool).

    Exceptions raised by work items are captured per slot and the
    first one {e in input order} is re-raised (with its backtrace)
    after all items have settled, so a failing item behaves the same
    at any job count.

    The pool is process-global and sized lazily from, in order of
    precedence: {!set_default_jobs} (the [--jobs]/[-j] CLI flag), the
    [ORIANNA_JOBS] environment variable, and
    [Domain.recommended_domain_count ()].  Worker domains are spawned
    on first use, reused across calls, resized when a different job
    count is requested, and joined at process exit. *)

val default_jobs : unit -> int
(** The job count parallel combinators use when [?jobs] is omitted.
    At least 1. *)

val set_default_jobs : int -> unit
(** Override the default job count ([n < 1] is clamped to 1).  The
    CLI's [--jobs]/[-j] flag lands here. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f xs] is [Array.map f xs] computed on [jobs] domains
    (the caller participates as one lane).  Results keep input order;
    the first failing slot's exception is re-raised.  Sequential when
    [jobs = 1], when [xs] has fewer than two elements, or when called
    from inside another pool task. *)

val parallel_map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!parallel_map}. *)

val parallel_map_reduce :
  ?jobs:int -> map:('a -> 'b) -> reduce:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** Map in parallel, then fold the results {e sequentially in input
    order} — deterministic even for non-associative [reduce]. *)

val chunk_ranges : chunks:int -> n:int -> (int * int) array
(** [chunk_ranges ~chunks ~n] splits [0..n-1] into at most [chunks]
    contiguous, balanced, half-open ranges [(lo, hi)].  Used by
    callers that need one mutable fixture per task (e.g. the fault
    campaign's per-chunk graph copies). *)

val shutdown : unit -> unit
(** Join all worker domains.  Called automatically at exit; safe to
    call repeatedly (the pool respawns on next use). *)
