(** Deterministic work-stealing domain pool.

    Every fan-out site in the repository (DSE candidate evaluation,
    fault-campaign missions, the experiments/bench matrices, the chaos
    and serve sweeps) is an embarrassingly parallel loop over pure
    work items.  This module runs those loops across OCaml 5 domains
    under a hard contract: {e results are bit-identical for any job
    count and any steal interleaving}.  The contract holds because

    - results are collected into their input slot (ordered), never in
      completion order;
    - work items must not share mutable state (callers split PRNG
      streams with {!Orianna_util.Rng.split_n}; callers with mutable
      fixtures keep one scratch copy per {e lane} via {!self_lane},
      not per chunk — the fault campaign is the worked example);
    - which lane runs a slot affects only {e where} the result is
      computed, never the result: stealing moves slot indices between
      lanes, and every slot's work is a pure function of its input;
    - at [jobs = 1] no domain is spawned — the map degrades to a plain
      sequential [Array.map], which is also the guaranteed fallback
      inside nested calls (a parallel map issued from within a worker
      task runs sequentially rather than deadlocking the pool).

    {2 Scheduling}

    A job's slots are split into one contiguous range per lane
    ({!chunk_ranges} over the lanes).  Each lane claims chunks off the
    {e front} of its own range and, when that is empty, steals chunks
    off the {e back} of the first non-empty victim range (round-robin
    from the next lane).  A range is a single packed [(lo, hi)] int
    updated by CAS, so a slot is handed out exactly once and unclaimed
    work stays visible to every lane until claimed.  Chunk sizes
    follow guided self-scheduling — a [1/(2*lanes)] share of the
    range's remainder — floored by a cost-adaptive minimum: the pool
    measures per-item cost chunk by chunk and aims for roughly 200 µs
    of work per claim, so cheap items get amortized into big chunks
    while expensive items split down to singletons that others can
    steal.  Slot 0 runs on the caller before the fan-out (it seeds the
    result array, keeping float results unboxed and avoiding a
    per-slot option box).  The caller works like any other lane and
    then {e parks on a condition variable} until the last chunk
    retires — there is no spin-join, and idle workers sleep between
    jobs on the same mechanism.

    Exceptions raised by work items are captured (lowest slot wins)
    and the first one {e in input order} is re-raised with its
    backtrace after all items have settled, so a failing item behaves
    the same at any job count.

    The pool is process-global and sized lazily from, in order of
    precedence: {!set_default_jobs} (the [--jobs]/[-j] CLI flag), the
    [ORIANNA_JOBS] environment variable, and
    [Domain.recommended_domain_count ()].  Worker domains are spawned
    on first use, reused across calls, grown (never shrunk) when a
    larger job count is requested, and joined at process exit. *)

val default_jobs : unit -> int
(** The job count parallel combinators use when [?jobs] is omitted.
    At least 1. *)

val set_default_jobs : int -> unit
(** Override the default job count ([n < 1] is clamped to 1).  The
    CLI's [--jobs]/[-j] flag lands here. *)

val parallel_map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f xs] is [Array.map f xs] computed on [jobs] domains
    (the caller participates as one lane).  Results keep input order;
    the first failing slot's exception is re-raised.  Sequential when
    [jobs = 1], when [xs] has fewer than two elements, or when called
    from inside another pool task.  [?chunk] seeds the adaptive
    minimum chunk size (use [~chunk:1] when every item is known to be
    expensive; the default starts at 1 item and adapts upward from
    measured cost). *)

val parallel_map_list : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!parallel_map}. *)

val parallel_map_reduce :
  ?jobs:int ->
  ?chunk:int ->
  map:('a -> 'b) ->
  reduce:('b -> 'b -> 'b) ->
  init:'b ->
  'a array ->
  'b
(** Map in parallel, then fold the results {e sequentially in input
    order} — deterministic even for non-associative [reduce]. *)

val self_lane : unit -> int
(** The pool lane executing the current task: 0 on the caller (and
    anywhere outside a pool task), [1..] on worker domains.  A nested
    sequential map keeps the outer lane.  Callers with mutable
    fixtures key one scratch copy per lane off this — lanes run at
    most one slot at a time, so a lane's scratch is never shared. *)

val max_lanes : unit -> int
(** Upper bound on {!self_lane} values that can run tasks right now
    (current pool size + caller, or the default job count before the
    pool exists).  Size per-lane scratch tables with this. *)

val chunk_ranges : chunks:int -> n:int -> (int * int) array
(** [chunk_ranges ~chunks ~n] splits [0..n-1] into at most [chunks]
    contiguous, balanced, half-open ranges [(lo, hi)].  The scheduler
    uses this shape for the initial per-lane ranges; it remains
    available to callers that want a fixed partition. *)

val guided_chunk : lanes:int -> min_chunk:int -> remaining:int -> int
(** The adaptive claim size: [max min_chunk (remaining / (2 * lanes))],
    clamped to [1..remaining] ([0] when [remaining <= 0]).  Exposed for
    the property suite: repeatedly claiming this much off a range
    always partitions it exactly. *)

val shutdown : unit -> unit
(** Join all worker domains.  Called automatically at exit; safe to
    call repeatedly (the pool respawns on next use). *)

(** Test-only scheduler hooks.  [set_victim_order (Some f)] makes
    every lane visit steal victims in the order [f ~lane ~lanes]
    returns (entries outside [0..lanes-1] and the lane itself are
    skipped); [set_chunk_override (Some c)] forces every claim and
    steal to exactly [c] slots (clamped to at least 1), disabling
    adaptation.  Both reset with [None].  The property suite drives
    these through random permutations and chunk sizes to check results
    never depend on the steal schedule. *)
module Testing : sig
  val set_victim_order : (lane:int -> lanes:int -> int array) option -> unit
  val set_chunk_override : int option -> unit
end

(** {1 Instrumentation}

    While the telemetry registry ({!Orianna_obs.Obs}) is enabled,
    every pool run records per-lane metrics: slot, chunk and steal
    counts, busy time, dispatch latency (job publication to the lane's
    first claim), per-slot spans, and per-domain [Gc.quick_stat]
    deltas (minor words allocated, promoted words, minor/major
    collections — minor-heap figures are per-domain in OCaml 5, so
    allocation is attributed to the domain that did the work).  Lane
    [0] is the calling domain; lanes [1..jobs-1] are the worker
    domains.  Each completed run also feeds the registry
    ([pool.runs]/[pool.slots]/[pool.steals] counters and the
    [pool.slot_ms]/[pool.dispatch_ms]/[pool.join_wait_ms] histograms).
    The sequential fallback (jobs = 1, tiny inputs) is recorded too,
    as a single-lane run — [profile --par] compares the same
    workload's sequential and parallel run records to split the
    scaling gap into serial sections, work inflation, pool overhead
    and idle time (see {!Gap}).  With the registry disabled, none of
    this exists — the claim loop is the bare CAS plus one clock pair
    per chunk for cost adaptation. *)

type lane_stats = {
  lane : int;
  mutable slots : int;
  mutable chunks : int;  (** claims that ran at least one slot *)
  mutable steals : int;  (** chunks claimed from another lane's range *)
  mutable busy_s : float;
  mutable dispatch_s : float;
  mutable minor_words : float;
  mutable promoted_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable slot_spans : (int * float * float) list;
      (** (slot index, start, duration), seconds on the {!Orianna_obs.Obs}
          epoch clock, most recent first *)
}

type run_record = {
  run_id : int;
  rjobs : int;
  items : int;
  submit_s : float;
  mutable done_s : float;
  mutable join_wait_s : float;
      (** caller parked on the done condition after its own sweep ran
          dry — pure pool overhead, but a sleep, not a busy-wait *)
  lanes : lane_stats array;  (** indexed by lane; length [rjobs] *)
}

val drain_stats : unit -> run_record list
(** All run records accumulated since the last drain, oldest first.
    The session buffer is cleared. *)

type lane_totals = {
  tlane : int;
  tslots : int;
  tchunks : int;
  tsteals : int;
  tbusy_s : float;
  tdispatch_s : float;
  tminor_words : float;
  tpromoted_words : float;
  tminor_collections : int;
  tmajor_collections : int;
}

type summary = {
  runs : int;
  total_items : int;
  lanes_used : int;
  per_lane : lane_totals array;
  join_wait_total_s : float;
}

val summarize : run_record list -> summary
(** Aggregate per-lane totals across a batch of run records. *)

val chrome_pid_base : int
(** First pid used by {!chrome_events} (3): pids 0–2 belong to the
    pipeline spans, the accelerator and the serving fleet. *)

val chrome_events :
  ?base_pid:int -> run_record list -> Orianna_obs.Chrome_trace.event list
(** One Chrome-trace process ({e pid}) per pool domain — lane [l]
    maps to pid [base_pid + l] — carrying that domain's slot slices,
    a submit instant per run, and a [pool.gc.minor_words] counter
    track per lane. *)