(* Scaling-gap decomposition over pool run records.

   The same workload is timed once sequentially and once at N lanes.
   With [t_seq]/[t_par] the wall clocks, [S*] the time outside pool
   regions, [B*] the summed lane busy time, [O] pool overhead
   (dispatch latency + caller join wait) and [I] idle lane-time inside
   parallel regions, the gap to perfect scaling decomposes exactly:

     t_par - t_seq/N = (S_par - S_seq/N)        serial sections
                     + (B_par - B_seq)/N        work inflation
                     + O/N                      pool overhead
                     + I/N                      idle (imbalance)

   Idle is defined as the remainder of lane-time inside parallel
   regions ([N * R_par - B_par - O]), so the four components account
   for the full gap by construction — up to the sequential baseline's
   own region/busy skew ([accounted - gap = (R_seq - B_seq)/N]), which
   is clock granularity on a single-lane run.  [test_par_sched]
   asserts the sum lands within 1% of the measured gap. *)

type t = {
  jobs : int;
  t_seq_s : float;
  t_par_s : float;
  speedup : float;
  efficiency : float;
  gap_s : float;
  serial_s : float;
  inflation_s : float;
  overhead_s : float;
  idle_s : float;
  accounted_s : float;
  region_seq_s : float;
  region_par_s : float;
  busy_seq_s : float;
  busy_par_s : float;
}

let region records =
  List.fold_left
    (fun acc (r : Pool.run_record) -> acc +. (r.Pool.done_s -. r.Pool.submit_s))
    0.0 records

let busy (s : Pool.summary) =
  Array.fold_left (fun acc (t : Pool.lane_totals) -> acc +. t.Pool.tbusy_s) 0.0 s.Pool.per_lane

let dispatch (s : Pool.summary) =
  Array.fold_left
    (fun acc (t : Pool.lane_totals) -> acc +. t.Pool.tdispatch_s)
    0.0 s.Pool.per_lane

let decompose ~jobs ~t_seq ~t_par ~seq ~par =
  let n = float_of_int (max 1 jobs) in
  let seq_sum = Pool.summarize seq and par_sum = Pool.summarize par in
  let b_seq = busy seq_sum and b_par = busy par_sum in
  let r_seq = region seq and r_par = region par in
  let s_seq = Float.max 0.0 (t_seq -. r_seq) and s_par = Float.max 0.0 (t_par -. r_par) in
  let overhead = dispatch par_sum +. par_sum.Pool.join_wait_total_s in
  let idle = Float.max 0.0 ((n *. r_par) -. b_par -. overhead) in
  let serial_s = s_par -. (s_seq /. n) in
  let inflation_s = (b_par -. b_seq) /. n in
  let overhead_s = overhead /. n in
  let idle_s = idle /. n in
  let speedup = if t_par > 0.0 then t_seq /. t_par else 0.0 in
  {
    jobs = max 1 jobs;
    t_seq_s = t_seq;
    t_par_s = t_par;
    speedup;
    efficiency = speedup /. n;
    gap_s = t_par -. (t_seq /. n);
    serial_s;
    inflation_s;
    overhead_s;
    idle_s;
    accounted_s = serial_s +. inflation_s +. overhead_s +. idle_s;
    region_seq_s = r_seq;
    region_par_s = r_par;
    busy_seq_s = b_seq;
    busy_par_s = b_par;
  }

let json_fields g =
  let module J = Orianna_obs.Json in
  [
    ("jobs", J.int g.jobs);
    ("t_seq_s", J.Num g.t_seq_s);
    ("t_par_s", J.Num g.t_par_s);
    ("speedup", J.Num g.speedup);
    ("efficiency", J.Num g.efficiency);
    ("gap_s", J.Num g.gap_s);
    ("accounted_s", J.Num g.accounted_s);
    ( "gap_breakdown_s",
      J.Obj
        [
          ("serial", J.Num g.serial_s);
          ("inflation", J.Num g.inflation_s);
          ("overhead", J.Num g.overhead_s);
          ("idle", J.Num g.idle_s);
        ] );
  ]
