(* Deterministic fixed-size domain pool.

   One process-global pool of [jobs - 1] worker domains; the caller
   participates as the remaining lane.  A "job" is an indexed bag of
   [n] slots; lanes claim slot indices with [Atomic.fetch_and_add] and
   write results into the slot's cell, so collection order is input
   order no matter which lane ran which slot.  Determinism therefore
   only requires that slots not share mutable state — the combinators
   themselves introduce none. *)

(* [in_task] marks lanes currently executing pool work.  A
   [parallel_map] issued from such a lane must not submit to the pool
   (the single job cell is occupied and workers are busy: deadlock);
   it runs sequentially instead, which the determinism contract makes
   observationally equivalent. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type job = {
  n : int;
  run : int -> unit;  (* must not raise: slot errors are captured inside *)
  next : int Atomic.t;
  completed : int Atomic.t;
}

let execute job =
  let prev = Domain.DLS.get in_task in
  Domain.DLS.set in_task true;
  let rec claim () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      job.run i;
      Atomic.incr job.completed;
      claim ()
    end
  in
  claim ();
  Domain.DLS.set in_task prev

type pool = {
  size : int;  (* worker domains; lanes = size + 1 *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable epoch : int;
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let worker pool =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.mutex;
    while pool.epoch = !seen && not pool.stop do
      Condition.wait pool.cond pool.mutex
    done;
    if pool.stop then Mutex.unlock pool.mutex
    else begin
      seen := pool.epoch;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      (match job with Some j -> execute j | None -> ());
      loop ()
    end
  in
  loop ()

let pool : pool option ref = ref None
let exit_hook_installed = ref false

let shutdown () =
  match !pool with
  | None -> ()
  | Some p ->
    Mutex.lock p.mutex;
    p.stop <- true;
    Condition.broadcast p.cond;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.workers;
    pool := None

let get_pool ~size =
  match !pool with
  | Some p when p.size = size -> p
  | other ->
    if other <> None then shutdown ();
    let p =
      { size;
        mutex = Mutex.create ();
        cond = Condition.create ();
        epoch = 0;
        job = None;
        stop = false;
        workers = [] }
    in
    p.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker p));
    if not !exit_hook_installed then begin
      exit_hook_installed := true;
      at_exit shutdown
    end;
    pool := Some p;
    p

(* Run [job] across the pool plus the calling lane, returning once
   every slot has completed (not merely been claimed). *)
let run_job ~jobs job =
  let p = get_pool ~size:(jobs - 1) in
  Mutex.lock p.mutex;
  p.job <- Some job;
  p.epoch <- p.epoch + 1;
  Condition.broadcast p.cond;
  Mutex.unlock p.mutex;
  execute job;
  while Atomic.get job.completed < job.n do
    Domain.cpu_relax ()
  done

let default_override = ref None

let clamp_jobs n = if n < 1 then 1 else n

let set_default_jobs n = default_override := Some (clamp_jobs n)

let default_jobs () =
  match !default_override with
  | Some n -> n
  | None -> (
    match Sys.getenv_opt "ORIANNA_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> clamp_jobs n
      | None -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ())

let resolve_jobs = function
  | Some n -> clamp_jobs n
  | None -> default_jobs ()

let parallel_map ?jobs f xs =
  let jobs = resolve_jobs jobs in
  let n = Array.length xs in
  if jobs <= 1 || n < 2 || Domain.DLS.get in_task then Array.map f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let run i =
      match f xs.(i) with
      | y -> results.(i) <- Some y
      | exception e ->
        errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    run_job ~jobs
      { n; run; next = Atomic.make 0; completed = Atomic.make 0 };
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map
      (function
        | Some y -> y
        | None -> assert false (* every non-error slot completed *))
      results
  end

let parallel_map_list ?jobs f xs =
  Array.to_list (parallel_map ?jobs f (Array.of_list xs))

let parallel_map_reduce ?jobs ~map ~reduce ~init xs =
  Array.fold_left reduce init (parallel_map ?jobs map xs)

let chunk_ranges ~chunks ~n =
  if n <= 0 then [||]
  else begin
    let chunks = max 1 (min chunks n) in
    let base = n / chunks and extra = n mod chunks in
    let ranges = Array.make chunks (0, 0) in
    let lo = ref 0 in
    for c = 0 to chunks - 1 do
      let len = base + if c < extra then 1 else 0 in
      ranges.(c) <- (!lo, !lo + len);
      lo := !lo + len
    done;
    ranges
  end
