module Obs = Orianna_obs.Obs
module Chrome_trace = Orianna_obs.Chrome_trace
module Json = Orianna_obs.Json

(* Deterministic work-stealing domain pool.

   One process-global pool of warm worker domains; the caller
   participates as lane 0.  A "job" is an indexed bag of [n] slots
   split into one contiguous range per lane; each lane claims adaptive
   chunks off the *front* of its own range and, when that runs dry,
   steals chunks off the *back* of a victim's range.  Results are
   written into the slot's input-ordered cell, so collection order is
   input order no matter which lane ran which slot — determinism needs
   only that slots not share mutable state, never a particular steal
   order.

   Every lane's unclaimed work is one packed (lo, hi) int updated by
   CAS, so claim and steal can never hand out the same slot twice and
   unclaimed slots stay visible to every lane until the moment they
   are claimed.  When a lane's sweep over all ranges finds nothing,
   all remaining slots are already being executed and the lane is done
   with the job; the caller then parks on a condition variable (no
   busy-wait) until the last chunk completes. *)

(* [in_task] marks lanes currently executing pool work.  A
   [parallel_map] issued from such a lane must not submit to the pool
   (the single job cell is occupied and workers are busy: deadlock);
   it runs sequentially instead, which the determinism contract makes
   observationally equivalent.  [current_lane] lets per-lane fixtures
   (e.g. the fault campaign's scratch graphs) find their slot; a
   nested sequential map keeps the outer lane. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let current_lane : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let self_lane () = Domain.DLS.get current_lane

(* ------------------------------------------------------------------ *)
(* Instrumentation.

   When the telemetry registry is enabled, every pool run carries a
   [run_record]: per-lane slot/chunk/steal counts, busy time, dispatch
   latency (job publication -> the lane's first claim), per-slot spans
   for Chrome-trace export, and [Gc.quick_stat] deltas — minor-heap
   figures are per-domain in OCaml 5, so each lane's allocation and
   minor-collection counts are attributed to the domain that did the
   work.  Lane [0] is always the calling domain; lanes [1..] are the
   worker domains.  Each lane mutates only its own [lane_stats], so
   recording needs no locks on the claim path; completed records
   accumulate in a session list drained by [drain_stats] (the
   [profile --par] report). *)

type lane_stats = {
  lane : int;
  mutable slots : int;
  mutable chunks : int;   (* claims that ran at least one slot *)
  mutable steals : int;   (* chunks claimed from another lane's range *)
  mutable busy_s : float;
  mutable dispatch_s : float;  (* job publish -> first claim *)
  mutable minor_words : float;
  mutable promoted_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable slot_spans : (int * float * float) list;  (* slot, start_s, dur_s; reversed *)
}

type run_record = {
  run_id : int;
  rjobs : int;  (* lanes = workers + caller *)
  items : int;
  submit_s : float;
  mutable done_s : float;
  mutable join_wait_s : float;  (* caller parked on the done condition *)
  lanes : lane_stats array;
}

let new_lane lane =
  {
    lane;
    slots = 0;
    chunks = 0;
    steals = 0;
    busy_s = 0.0;
    dispatch_s = 0.0;
    minor_words = 0.0;
    promoted_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    slot_spans = [];
  }

let session_mutex = Mutex.create ()
let session : run_record list ref = ref []
let run_counter = ref 0

let drain_stats () =
  Mutex.lock session_mutex;
  let records = List.rev !session in
  session := [];
  Mutex.unlock session_mutex;
  records

(* ------------------------------------------------------------------ *)
(* Ranges and chunk sizing.                                            *)

(* A lane's unclaimed range packs into one int: [lo] in the high bits,
   exclusive [hi] in the low 31.  A single CAS moves either bound —
   the owner advances [lo], thieves retreat [hi] — which is the whole
   synchronization protocol.  31 bits bound slot counts at ~2e9, far
   beyond any fan-out here. *)
let range_bits = 31
let range_mask = (1 lsl range_bits) - 1
let pack lo hi = (lo lsl range_bits) lor hi
let range_lo r = r lsr range_bits
let range_hi r = r land range_mask

(* Guided self-scheduling: claim a [1 / (2 * lanes)] share of what is
   left in the range, floored at [min_chunk] (adapted below from the
   measured per-item cost).  Early claims are big enough to amortize
   the CAS and timing probes; late claims shrink so the tail stays
   balanced and stealable. *)
let guided_chunk ~lanes ~min_chunk ~remaining =
  if remaining <= 0 then 0
  else
    let c = max min_chunk (remaining / (2 * max 1 lanes)) in
    min remaining (max 1 c)

(* Adapt [min_chunk] toward ~[target_chunk_s] of measured work per
   claim: expensive items drive the floor down to 1 (fine-grained
   stealing), cheap items drive it up (amortized claims), capped so a
   single claim can never swallow half a lane's initial share.  The
   running value is damped to soften one noisy measurement. *)
let target_chunk_s = 2e-4

let adapted_min_chunk ~n ~lanes ~chunk_s ~chunk_len ~prev =
  let cap = max 1 (n / (2 * max 1 lanes)) in
  let per_item = chunk_s /. float_of_int (max 1 chunk_len) in
  let ideal =
    if per_item <= 1e-9 then cap
    else
      let i = target_chunk_s /. per_item in
      if i >= float_of_int cap then cap else max 1 (int_of_float i)
  in
  min cap (max 1 ((prev + ideal + 1) / 2))

(* Test hooks: force the victim visit order and/or a fixed chunk size,
   so the property suite can drive the scheduler through arbitrary
   steal interleavings and check results never change. *)
let victim_order_hook : (lane:int -> lanes:int -> int array) option ref = ref None
let chunk_override : int option ref = ref None

module Testing = struct
  let set_victim_order h = victim_order_hook := h
  let set_chunk_override c = chunk_override := Option.map (fun c -> max 1 c) c
end

type job = {
  jlanes : int;
  total : int;  (* slots in this job's ranges *)
  run : int -> unit;  (* must not raise: slot errors are captured inside *)
  ranges : int Atomic.t array;  (* per lane, packed (lo, hi) *)
  remaining : int Atomic.t;  (* slots not yet finished *)
  min_chunk : int Atomic.t;  (* cost-adaptive claim floor *)
  done_mutex : Mutex.t;
  done_cond : Condition.t;
  probe : run_record option;
}

let chunk_size job remaining =
  match !chunk_override with
  | Some c -> min remaining c
  | None ->
      guided_chunk ~lanes:job.jlanes ~min_chunk:(Atomic.get job.min_chunk) ~remaining

(* Claim the next chunk off the front of [ranges.(lane)]. *)
let rec claim_front job lane =
  let ra = job.ranges.(lane) in
  let r = Atomic.get ra in
  let lo = range_lo r and hi = range_hi r in
  if lo >= hi then None
  else
    let lo' = lo + chunk_size job (hi - lo) in
    if Atomic.compare_and_set ra r (pack lo' hi) then Some (lo, lo')
    else claim_front job lane

(* Steal a chunk off the back of [ranges.(victim)]; unclaimed work
   stays in the victim's range, visible to every other lane. *)
let rec steal_back job victim =
  let ra = job.ranges.(victim) in
  let r = Atomic.get ra in
  let lo = range_lo r and hi = range_hi r in
  if lo >= hi then None
  else
    let hi' = hi - chunk_size job (hi - lo) in
    if Atomic.compare_and_set ra r (pack lo hi') then Some (hi', hi)
    else steal_back job victim

(* One sweep: own range first, then victims round-robin from the next
   lane (or in the test hook's order).  [None] means every range is
   empty — all remaining slots are in execution elsewhere, so this
   lane is done with the job.  The result marks stolen chunks for the
   instrumentation. *)
let next_chunk job lane =
  match claim_front job lane with
  | Some (lo, hi) -> Some (false, lo, hi)
  | None -> (
      match !victim_order_hook with
      | Some order ->
          let vs = order ~lane ~lanes:job.jlanes in
          let rec go k =
            if k >= Array.length vs then None
            else
              let v = vs.(k) in
              if v < 0 || v >= job.jlanes || v = lane then go (k + 1)
              else
                match steal_back job v with
                | Some (lo, hi) -> Some (true, lo, hi)
                | None -> go (k + 1)
          in
          go 0
      | None ->
          let rec go k =
            if k >= job.jlanes - 1 then None
            else
              let v = (lane + 1 + k) mod job.jlanes in
              match steal_back job v with
              | Some (lo, hi) -> Some (true, lo, hi)
              | None -> go (k + 1)
          in
          go 0)

(* Retire a finished chunk; the lane that retires the last slot wakes
   the (possibly parked) caller. *)
let finish_chunk job len =
  let before = Atomic.fetch_and_add job.remaining (-len) in
  if before = len then begin
    Mutex.lock job.done_mutex;
    Condition.broadcast job.done_cond;
    Mutex.unlock job.done_mutex
  end

let adapt job chunk_s chunk_len =
  if !chunk_override = None then
    Atomic.set job.min_chunk
      (adapted_min_chunk ~n:job.total ~lanes:job.jlanes ~chunk_s ~chunk_len
         ~prev:(Atomic.get job.min_chunk))

let execute ~lane job =
  if lane < job.jlanes then begin
    let prev_task = Domain.DLS.get in_task in
    let prev_lane = Domain.DLS.get current_lane in
    Domain.DLS.set in_task true;
    Domain.DLS.set current_lane lane;
    (match job.probe with
    | None ->
        let rec loop () =
          match next_chunk job lane with
          | None -> ()
          | Some (_, lo, hi) ->
              let t0 = Obs.now_s () in
              for i = lo to hi - 1 do
                job.run i
              done;
              adapt job (Obs.now_s () -. t0) (hi - lo);
              finish_chunk job (hi - lo);
              loop ()
        in
        loop ()
    | Some rec_ ->
        let ls = rec_.lanes.(lane) in
        let g0 = ref (Gc.quick_stat ()) in
        let rec loop () =
          match next_chunk job lane with
          | None -> ()
          | Some (stolen, lo, hi) ->
              let c0 = Obs.now_s () in
              if ls.chunks = 0 && ls.slots = 0 then
                ls.dispatch_s <- Float.max 0.0 (c0 -. rec_.submit_s);
              ls.chunks <- ls.chunks + 1;
              if stolen then ls.steals <- ls.steals + 1;
              for i = lo to hi - 1 do
                let t0 = Obs.now_s () in
                job.run i;
                let t1 = Obs.now_s () in
                ls.slots <- ls.slots + 1;
                ls.busy_s <- ls.busy_s +. (t1 -. t0);
                ls.slot_spans <- (i, t0, t1 -. t0) :: ls.slot_spans
              done;
              let c1 = Obs.now_s () in
              let g1 = Gc.quick_stat () in
              ls.minor_words <- ls.minor_words +. (g1.Gc.minor_words -. !g0.Gc.minor_words);
              ls.promoted_words <-
                ls.promoted_words +. (g1.Gc.promoted_words -. !g0.Gc.promoted_words);
              ls.minor_collections <-
                ls.minor_collections + (g1.Gc.minor_collections - !g0.Gc.minor_collections);
              ls.major_collections <-
                ls.major_collections + (g1.Gc.major_collections - !g0.Gc.major_collections);
              g0 := g1;
              adapt job (c1 -. c0) (hi - lo);
              finish_chunk job (hi - lo);
              loop ()
        in
        loop ());
    Domain.DLS.set in_task prev_task;
    Domain.DLS.set current_lane prev_lane
  end

(* ------------------------------------------------------------------ *)
(* The pool itself.                                                    *)

type pool = {
  size : int;  (* worker domains; lanes available = size + 1 *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable epoch : int;
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let worker pool lane =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.mutex;
    while pool.epoch = !seen && not pool.stop do
      Condition.wait pool.cond pool.mutex
    done;
    if pool.stop then Mutex.unlock pool.mutex
    else begin
      seen := pool.epoch;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      (match job with Some j -> execute ~lane j | None -> ());
      loop ()
    end
  in
  loop ()

let pool : pool option ref = ref None
let exit_hook_installed = ref false

let shutdown () =
  match !pool with
  | None -> ()
  | Some p ->
    Mutex.lock p.mutex;
    p.stop <- true;
    Condition.broadcast p.cond;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.workers;
    pool := None

(* Grow-only: a request for fewer lanes reuses the bigger pool (extra
   workers skip jobs with [lane >= jlanes]), so alternating job counts
   — the property suite drives 1..8 — never respawns domains. *)
let get_pool ~size =
  match !pool with
  | Some p when p.size >= size -> p
  | other ->
    if other <> None then shutdown ();
    let p =
      { size;
        mutex = Mutex.create ();
        cond = Condition.create ();
        epoch = 0;
        job = None;
        stop = false;
        workers = [] }
    in
    (* Lane 0 is the caller; worker [w] claims lane [w + 1]. *)
    p.workers <- List.init size (fun w -> Domain.spawn (fun () -> worker p (w + 1)));
    if not !exit_hook_installed then begin
      exit_hook_installed := true;
      at_exit shutdown
    end;
    pool := Some p;
    p

(* Feed one completed record into the registry (counters + slot/dispatch
   histograms) and the session list. *)
let record_run rec_ =
  let steals = ref 0 in
  Array.iter
    (fun ls ->
      steals := !steals + ls.steals;
      List.iter (fun (_, _, dur) -> Obs.observe "pool.slot_ms" (dur *. 1e3)) ls.slot_spans;
      if ls.slots > 0 then Obs.observe "pool.dispatch_ms" (ls.dispatch_s *. 1e3))
    rec_.lanes;
  Obs.observe "pool.join_wait_ms" (rec_.join_wait_s *. 1e3);
  Obs.count "pool.runs";
  Obs.count ~n:rec_.items "pool.slots";
  if !steals > 0 then Obs.count ~n:!steals "pool.steals";
  Mutex.lock session_mutex;
  session := rec_ :: !session;
  Mutex.unlock session_mutex

let chunk_ranges ~chunks ~n =
  if n <= 0 then [||]
  else begin
    let chunks = max 1 (min chunks n) in
    let base = n / chunks and extra = n mod chunks in
    let ranges = Array.make chunks (0, 0) in
    let lo = ref 0 in
    for c = 0 to chunks - 1 do
      let len = base + if c < extra then 1 else 0 in
      ranges.(c) <- (!lo, !lo + len);
      lo := !lo + len
    done;
    ranges
  end

(* Run the slots [start, n) across the pool plus the calling lane,
   returning once every slot has completed (not merely been claimed).
   The caller works like any other lane, then parks on the job's
   condition variable for the stragglers — no spinning. *)
let run_job ~jobs ~start ~n ~chunk ~probe ~run =
  let p = get_pool ~size:(jobs - 1) in
  let total = n - start in
  let init = chunk_ranges ~chunks:jobs ~n:total in
  let ranges =
    Array.init jobs (fun l ->
        let lo, hi = if l < Array.length init then init.(l) else (0, 0) in
        let r = Atomic.make (pack (start + lo) (start + hi)) in
        (* Space the atomics a cache line apart: claims and steals CAS
           them from different domains, and adjacently allocated boxes
           would false-share. *)
        ignore (Sys.opaque_identity (Array.make 8 0));
        r)
  in
  let job =
    {
      jlanes = jobs;
      total;
      run;
      ranges;
      remaining = Atomic.make total;
      min_chunk = Atomic.make (match chunk with Some c -> max 1 c | None -> 1);
      done_mutex = Mutex.create ();
      done_cond = Condition.create ();
      probe;
    }
  in
  Mutex.lock p.mutex;
  p.job <- Some job;
  p.epoch <- p.epoch + 1;
  Condition.broadcast p.cond;
  Mutex.unlock p.mutex;
  execute ~lane:0 job;
  let wait0 = match probe with None -> 0.0 | Some _ -> Obs.now_s () in
  Mutex.lock job.done_mutex;
  while Atomic.get job.remaining > 0 do
    Condition.wait job.done_cond job.done_mutex
  done;
  Mutex.unlock job.done_mutex;
  match probe with
  | None -> ()
  | Some rec_ ->
      let now = Obs.now_s () in
      rec_.join_wait_s <- now -. wait0;
      rec_.done_s <- now;
      record_run rec_

let default_override = ref None

let clamp_jobs n = if n < 1 then 1 else n

let set_default_jobs n = default_override := Some (clamp_jobs n)

let default_jobs () =
  match !default_override with
  | Some n -> n
  | None -> (
    match Sys.getenv_opt "ORIANNA_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> clamp_jobs n
      | None -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ())

let resolve_jobs = function
  | Some n -> clamp_jobs n
  | None -> default_jobs ()

let max_lanes () =
  let spawned = match !pool with Some p -> p.size + 1 | None -> 1 in
  max (default_jobs ()) spawned

(* Sequential fallback, still recorded as a 1-lane run when telemetry
   is on: [profile --par]'s gap accounting needs the {e sequential}
   busy time and pool-region wall time of the same workload to
   separate work inflation from serial sections.  Exceptions propagate
   directly (the record for a failed run is simply dropped). *)
let seq_map_recorded f xs =
  let n = Array.length xs in
  incr run_counter;
  let ls = new_lane 0 in
  let rec_ =
    {
      run_id = !run_counter;
      rjobs = 1;
      items = n;
      submit_s = Obs.now_s ();
      done_s = 0.0;
      join_wait_s = 0.0;
      lanes = [| ls |];
    }
  in
  let g0 = ref (Gc.quick_stat ()) in
  let res =
    Array.mapi
      (fun i x ->
        let t0 = Obs.now_s () in
        let y = f x in
        let t1 = Obs.now_s () in
        let g1 = Gc.quick_stat () in
        ls.slots <- ls.slots + 1;
        ls.chunks <- ls.chunks + 1;
        ls.busy_s <- ls.busy_s +. (t1 -. t0);
        ls.slot_spans <- (i, t0, t1 -. t0) :: ls.slot_spans;
        ls.minor_words <- ls.minor_words +. (g1.Gc.minor_words -. !g0.Gc.minor_words);
        ls.promoted_words <- ls.promoted_words +. (g1.Gc.promoted_words -. !g0.Gc.promoted_words);
        ls.minor_collections <-
          ls.minor_collections + (g1.Gc.minor_collections - !g0.Gc.minor_collections);
        ls.major_collections <-
          ls.major_collections + (g1.Gc.major_collections - !g0.Gc.major_collections);
        g0 := g1;
        y)
      xs
  in
  rec_.done_s <- Obs.now_s ();
  record_run rec_;
  res

(* Keep the lowest failing slot: re-raising it after all slots settle
   makes a failing item behave identically at any job count. *)
let rec note_failure cell i e bt =
  match Atomic.get cell with
  | Some (j, _, _) when j <= i -> ()
  | cur ->
      if not (Atomic.compare_and_set cell cur (Some (i, e, bt))) then
        note_failure cell i e bt

let parallel_map ?jobs ?chunk f xs =
  let jobs = resolve_jobs jobs in
  let n = Array.length xs in
  if jobs <= 1 || n < 2 || Domain.DLS.get in_task then
    if n > 0 && Obs.enabled () && not (Domain.DLS.get in_task) then seq_map_recorded f xs
    else Array.map f xs
  else begin
    let probe =
      if Obs.enabled () then begin
        incr run_counter;
        Some
          {
            run_id = !run_counter;
            rjobs = jobs;
            items = n;
            submit_s = Obs.now_s ();
            done_s = 0.0;
            join_wait_s = 0.0;
            lanes = Array.init jobs new_lane;
          }
      end
      else None
    in
    (* Slot 0 runs on the caller before the fan-out: its result seeds
       the result array directly (float results stay unboxed; no
       ['b option] cells, no rebuild pass).  If it raises, that is by
       definition the first failure in input order, re-raised exactly
       as the sequential map would.  The caller is marked in-task for
       the duration so a nested map inside slot 0 falls back
       sequentially just like in every other slot. *)
    let run0 () =
      Domain.DLS.set in_task true;
      Fun.protect ~finally:(fun () -> Domain.DLS.set in_task false) (fun () -> f xs.(0))
    in
    let y0 =
      match probe with
      | None -> run0 ()
      | Some rec_ ->
          let ls = rec_.lanes.(0) in
          let g0 = Gc.quick_stat () in
          let t0 = Obs.now_s () in
          let y = run0 () in
          let t1 = Obs.now_s () in
          let g1 = Gc.quick_stat () in
          ls.slots <- 1;
          ls.chunks <- 1;
          ls.busy_s <- t1 -. t0;
          ls.slot_spans <- [ (0, t0, t1 -. t0) ];
          ls.minor_words <- g1.Gc.minor_words -. g0.Gc.minor_words;
          ls.promoted_words <- g1.Gc.promoted_words -. g0.Gc.promoted_words;
          ls.minor_collections <- g1.Gc.minor_collections - g0.Gc.minor_collections;
          ls.major_collections <- g1.Gc.major_collections - g0.Gc.major_collections;
          y
    in
    let results = Array.make n y0 in
    let failure = Atomic.make None in
    let run i =
      match f xs.(i) with
      | y -> results.(i) <- y
      | exception e -> note_failure failure i e (Printexc.get_raw_backtrace ())
    in
    run_job ~jobs ~start:1 ~n ~chunk ~probe ~run;
    (match Atomic.get failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    results
  end

let parallel_map_list ?jobs ?chunk f xs =
  Array.to_list (parallel_map ?jobs ?chunk f (Array.of_list xs))

let parallel_map_reduce ?jobs ?chunk ~map ~reduce ~init xs =
  Array.fold_left reduce init (parallel_map ?jobs ?chunk map xs)

(* ------------------------------------------------------------------ *)
(* Aggregation and trace export.                                       *)

type lane_totals = {
  tlane : int;
  tslots : int;
  tchunks : int;
  tsteals : int;
  tbusy_s : float;
  tdispatch_s : float;
  tminor_words : float;
  tpromoted_words : float;
  tminor_collections : int;
  tmajor_collections : int;
}

type summary = {
  runs : int;
  total_items : int;
  lanes_used : int;
  per_lane : lane_totals array;
  join_wait_total_s : float;
}

let summarize records =
  let lanes_used = List.fold_left (fun acc r -> max acc r.rjobs) 0 records in
  let per_lane =
    Array.init lanes_used (fun lane ->
        {
          tlane = lane;
          tslots = 0;
          tchunks = 0;
          tsteals = 0;
          tbusy_s = 0.0;
          tdispatch_s = 0.0;
          tminor_words = 0.0;
          tpromoted_words = 0.0;
          tminor_collections = 0;
          tmajor_collections = 0;
        })
  in
  let join_wait = ref 0.0 in
  let total_items = ref 0 in
  List.iter
    (fun r ->
      join_wait := !join_wait +. r.join_wait_s;
      total_items := !total_items + r.items;
      Array.iter
        (fun ls ->
          let t = per_lane.(ls.lane) in
          per_lane.(ls.lane) <-
            {
              t with
              tslots = t.tslots + ls.slots;
              tchunks = t.tchunks + ls.chunks;
              tsteals = t.tsteals + ls.steals;
              tbusy_s = t.tbusy_s +. ls.busy_s;
              tdispatch_s = t.tdispatch_s +. ls.dispatch_s;
              tminor_words = t.tminor_words +. ls.minor_words;
              tpromoted_words = t.tpromoted_words +. ls.promoted_words;
              tminor_collections = t.tminor_collections + ls.minor_collections;
              tmajor_collections = t.tmajor_collections + ls.major_collections;
            })
        r.lanes)
    records;
  {
    runs = List.length records;
    total_items = !total_items;
    lanes_used;
    per_lane;
    join_wait_total_s = !join_wait;
  }

let chrome_pid_base = 3

let chrome_events ?(base_pid = chrome_pid_base) records =
  let lanes_used = List.fold_left (fun acc r -> max acc r.rjobs) 0 records in
  let header =
    List.concat
      (List.init lanes_used (fun lane ->
           [
             Chrome_trace.Process_name
               {
                 pid = base_pid + lane;
                 name =
                   (if lane = 0 then "pool domain 0 (caller)"
                    else Printf.sprintf "pool domain %d" lane);
               };
             Chrome_trace.Thread_name { pid = base_pid + lane; tid = 0; name = "slots" };
           ]))
  in
  let body =
    List.concat_map
      (fun r ->
        Chrome_trace.Instant
          {
            name = Printf.sprintf "submit run %d (%d slots)" r.run_id r.items;
            cat = "pool";
            pid = base_pid;
            tid = 0;
            ts_us = r.submit_s *. 1e6;
          }
        :: List.concat
             (Array.to_list
                (Array.map
                   (fun ls ->
                     let slices =
                       List.rev_map
                         (fun (slot, start_s, dur_s) ->
                           Chrome_trace.Duration
                             {
                               name = Printf.sprintf "run %d slot %d" r.run_id slot;
                               cat = "pool";
                               pid = base_pid + ls.lane;
                               tid = 0;
                               ts_us = start_s *. 1e6;
                               dur_us = dur_s *. 1e6;
                               args = [ ("run", Json.int r.run_id); ("slot", Json.int slot) ];
                             })
                         ls.slot_spans
                     in
                     if ls.slots = 0 then slices
                     else
                       Chrome_trace.Counter
                         {
                           name = "pool.gc.minor_words";
                           pid = base_pid + ls.lane;
                           ts_us = r.done_s *. 1e6;
                           series = [ ("minor_words", ls.minor_words) ];
                         }
                       :: slices)
                   r.lanes)))
      records
  in
  header @ body
