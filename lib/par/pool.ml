module Obs = Orianna_obs.Obs
module Chrome_trace = Orianna_obs.Chrome_trace
module Json = Orianna_obs.Json

(* Deterministic fixed-size domain pool.

   One process-global pool of [jobs - 1] worker domains; the caller
   participates as the remaining lane.  A "job" is an indexed bag of
   [n] slots; lanes claim slot indices with [Atomic.fetch_and_add] and
   write results into the slot's cell, so collection order is input
   order no matter which lane ran which slot.  Determinism therefore
   only requires that slots not share mutable state — the combinators
   themselves introduce none. *)

(* [in_task] marks lanes currently executing pool work.  A
   [parallel_map] issued from such a lane must not submit to the pool
   (the single job cell is occupied and workers are busy: deadlock);
   it runs sequentially instead, which the determinism contract makes
   observationally equivalent. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* ------------------------------------------------------------------ *)
(* Instrumentation.

   When the telemetry registry is enabled, every pool run carries a
   [run_record]: per-lane slot counts, busy time, dispatch latency
   (job publication -> the lane's first slot claim), per-slot spans
   for Chrome-trace export, and [Gc.quick_stat] deltas — minor-heap
   figures are per-domain in OCaml 5, so each lane's allocation and
   minor-collection counts are attributed to the domain that did the
   work.  Lane [0] is always the calling domain; lanes [1..] are the
   worker domains.  Each lane mutates only its own [lane_stats], so
   recording needs no locks on the claim path; completed records
   accumulate in a session list drained by [drain_stats] (the
   [profile --par] report). *)

type lane_stats = {
  lane : int;
  mutable slots : int;
  mutable busy_s : float;
  mutable dispatch_s : float;  (* job publish -> first slot claim *)
  mutable minor_words : float;
  mutable promoted_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable slot_spans : (int * float * float) list;  (* slot, start_s, dur_s; reversed *)
}

type run_record = {
  run_id : int;
  rjobs : int;  (* lanes = workers + caller *)
  items : int;
  submit_s : float;
  mutable done_s : float;
  mutable join_spin_s : float;  (* caller busy-wait after its own slots ran out *)
  lanes : lane_stats array;
}

let new_lane lane =
  {
    lane;
    slots = 0;
    busy_s = 0.0;
    dispatch_s = 0.0;
    minor_words = 0.0;
    promoted_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    slot_spans = [];
  }

let session_mutex = Mutex.create ()
let session : run_record list ref = ref []
let run_counter = ref 0

let drain_stats () =
  Mutex.lock session_mutex;
  let records = List.rev !session in
  session := [];
  Mutex.unlock session_mutex;
  records

type job = {
  n : int;
  run : int -> unit;  (* must not raise: slot errors are captured inside *)
  next : int Atomic.t;
  completed : int Atomic.t;
  probe : run_record option;
}

let execute ~lane job =
  let prev = Domain.DLS.get in_task in
  Domain.DLS.set in_task true;
  (match job.probe with
  | None ->
      let rec claim () =
        let i = Atomic.fetch_and_add job.next 1 in
        if i < job.n then begin
          job.run i;
          Atomic.incr job.completed;
          claim ()
        end
      in
      claim ()
  | Some rec_ ->
      let ls = rec_.lanes.(lane) in
      let g0 = ref (Gc.quick_stat ()) in
      let rec claim () =
        let i = Atomic.fetch_and_add job.next 1 in
        if i < job.n then begin
          let t0 = Obs.now_s () in
          if ls.slots = 0 then ls.dispatch_s <- Float.max 0.0 (t0 -. rec_.submit_s);
          job.run i;
          Atomic.incr job.completed;
          let t1 = Obs.now_s () in
          let g1 = Gc.quick_stat () in
          ls.slots <- ls.slots + 1;
          ls.busy_s <- ls.busy_s +. (t1 -. t0);
          ls.slot_spans <- (i, t0, t1 -. t0) :: ls.slot_spans;
          ls.minor_words <- ls.minor_words +. (g1.Gc.minor_words -. !g0.Gc.minor_words);
          ls.promoted_words <-
            ls.promoted_words +. (g1.Gc.promoted_words -. !g0.Gc.promoted_words);
          ls.minor_collections <-
            ls.minor_collections + (g1.Gc.minor_collections - !g0.Gc.minor_collections);
          ls.major_collections <-
            ls.major_collections + (g1.Gc.major_collections - !g0.Gc.major_collections);
          g0 := g1;
          claim ()
        end
      in
      claim ());
  Domain.DLS.set in_task prev

type pool = {
  size : int;  (* worker domains; lanes = size + 1 *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable epoch : int;
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let worker pool lane =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.mutex;
    while pool.epoch = !seen && not pool.stop do
      Condition.wait pool.cond pool.mutex
    done;
    if pool.stop then Mutex.unlock pool.mutex
    else begin
      seen := pool.epoch;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      (match job with Some j -> execute ~lane j | None -> ());
      loop ()
    end
  in
  loop ()

let pool : pool option ref = ref None
let exit_hook_installed = ref false

let shutdown () =
  match !pool with
  | None -> ()
  | Some p ->
    Mutex.lock p.mutex;
    p.stop <- true;
    Condition.broadcast p.cond;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.workers;
    pool := None

let get_pool ~size =
  match !pool with
  | Some p when p.size = size -> p
  | other ->
    if other <> None then shutdown ();
    let p =
      { size;
        mutex = Mutex.create ();
        cond = Condition.create ();
        epoch = 0;
        job = None;
        stop = false;
        workers = [] }
    in
    (* Lane 0 is the caller; worker [w] claims lane [w + 1]. *)
    p.workers <- List.init size (fun w -> Domain.spawn (fun () -> worker p (w + 1)));
    if not !exit_hook_installed then begin
      exit_hook_installed := true;
      at_exit shutdown
    end;
    pool := Some p;
    p

(* Feed one completed record into the registry (counters + slot/dispatch
   histograms) and the session list. *)
let record_run rec_ =
  Array.iter
    (fun ls ->
      List.iter (fun (_, _, dur) -> Obs.observe "pool.slot_ms" (dur *. 1e3)) ls.slot_spans;
      if ls.slots > 0 then Obs.observe "pool.dispatch_ms" (ls.dispatch_s *. 1e3))
    rec_.lanes;
  Obs.observe "pool.join_spin_ms" (rec_.join_spin_s *. 1e3);
  Obs.count "pool.runs";
  Obs.count ~n:rec_.items "pool.slots";
  Mutex.lock session_mutex;
  session := rec_ :: !session;
  Mutex.unlock session_mutex

(* Run [job] across the pool plus the calling lane, returning once
   every slot has completed (not merely been claimed). *)
let run_job ~jobs ~n ~run =
  let p = get_pool ~size:(jobs - 1) in
  let probe =
    if Obs.enabled () then begin
      incr run_counter;
      Some
        {
          run_id = !run_counter;
          rjobs = jobs;
          items = n;
          submit_s = Obs.now_s ();
          done_s = 0.0;
          join_spin_s = 0.0;
          lanes = Array.init jobs new_lane;
        }
    end
    else None
  in
  let job = { n; run; next = Atomic.make 0; completed = Atomic.make 0; probe } in
  Mutex.lock p.mutex;
  p.job <- Some job;
  p.epoch <- p.epoch + 1;
  Condition.broadcast p.cond;
  Mutex.unlock p.mutex;
  execute ~lane:0 job;
  let spin0 = match probe with None -> 0.0 | Some _ -> Obs.now_s () in
  while Atomic.get job.completed < job.n do
    Domain.cpu_relax ()
  done;
  match probe with
  | None -> ()
  | Some rec_ ->
      let now = Obs.now_s () in
      rec_.join_spin_s <- now -. spin0;
      rec_.done_s <- now;
      record_run rec_

let default_override = ref None

let clamp_jobs n = if n < 1 then 1 else n

let set_default_jobs n = default_override := Some (clamp_jobs n)

let default_jobs () =
  match !default_override with
  | Some n -> n
  | None -> (
    match Sys.getenv_opt "ORIANNA_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> clamp_jobs n
      | None -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ())

let resolve_jobs = function
  | Some n -> clamp_jobs n
  | None -> default_jobs ()

(* Sequential fallback, still recorded as a 1-lane run when telemetry
   is on: [profile --par]'s gap accounting needs the {e sequential}
   busy time and pool-region wall time of the same workload to
   separate work inflation from serial sections.  Exceptions propagate
   directly (the record for a failed run is simply dropped). *)
let seq_map_recorded f xs =
  let n = Array.length xs in
  incr run_counter;
  let ls = new_lane 0 in
  let rec_ =
    {
      run_id = !run_counter;
      rjobs = 1;
      items = n;
      submit_s = Obs.now_s ();
      done_s = 0.0;
      join_spin_s = 0.0;
      lanes = [| ls |];
    }
  in
  let g0 = ref (Gc.quick_stat ()) in
  let res =
    Array.mapi
      (fun i x ->
        let t0 = Obs.now_s () in
        let y = f x in
        let t1 = Obs.now_s () in
        let g1 = Gc.quick_stat () in
        ls.slots <- ls.slots + 1;
        ls.busy_s <- ls.busy_s +. (t1 -. t0);
        ls.slot_spans <- (i, t0, t1 -. t0) :: ls.slot_spans;
        ls.minor_words <- ls.minor_words +. (g1.Gc.minor_words -. !g0.Gc.minor_words);
        ls.promoted_words <- ls.promoted_words +. (g1.Gc.promoted_words -. !g0.Gc.promoted_words);
        ls.minor_collections <-
          ls.minor_collections + (g1.Gc.minor_collections - !g0.Gc.minor_collections);
        ls.major_collections <-
          ls.major_collections + (g1.Gc.major_collections - !g0.Gc.major_collections);
        g0 := g1;
        y)
      xs
  in
  rec_.done_s <- Obs.now_s ();
  record_run rec_;
  res

let parallel_map ?jobs f xs =
  let jobs = resolve_jobs jobs in
  let n = Array.length xs in
  if jobs <= 1 || n < 2 || Domain.DLS.get in_task then
    if n > 0 && Obs.enabled () && not (Domain.DLS.get in_task) then seq_map_recorded f xs
    else Array.map f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let run i =
      match f xs.(i) with
      | y -> results.(i) <- Some y
      | exception e ->
        errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    run_job ~jobs ~n ~run;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map
      (function
        | Some y -> y
        | None -> assert false (* every non-error slot completed *))
      results
  end

let parallel_map_list ?jobs f xs =
  Array.to_list (parallel_map ?jobs f (Array.of_list xs))

let parallel_map_reduce ?jobs ~map ~reduce ~init xs =
  Array.fold_left reduce init (parallel_map ?jobs map xs)

let chunk_ranges ~chunks ~n =
  if n <= 0 then [||]
  else begin
    let chunks = max 1 (min chunks n) in
    let base = n / chunks and extra = n mod chunks in
    let ranges = Array.make chunks (0, 0) in
    let lo = ref 0 in
    for c = 0 to chunks - 1 do
      let len = base + if c < extra then 1 else 0 in
      ranges.(c) <- (!lo, !lo + len);
      lo := !lo + len
    done;
    ranges
  end

(* ------------------------------------------------------------------ *)
(* Aggregation and trace export.                                       *)

type lane_totals = {
  tlane : int;
  tslots : int;
  tbusy_s : float;
  tdispatch_s : float;
  tminor_words : float;
  tpromoted_words : float;
  tminor_collections : int;
  tmajor_collections : int;
}

type summary = {
  runs : int;
  total_items : int;
  lanes_used : int;
  per_lane : lane_totals array;
  join_spin_total_s : float;
}

let summarize records =
  let lanes_used = List.fold_left (fun acc r -> max acc r.rjobs) 0 records in
  let per_lane =
    Array.init lanes_used (fun lane ->
        {
          tlane = lane;
          tslots = 0;
          tbusy_s = 0.0;
          tdispatch_s = 0.0;
          tminor_words = 0.0;
          tpromoted_words = 0.0;
          tminor_collections = 0;
          tmajor_collections = 0;
        })
  in
  let join_spin = ref 0.0 in
  let total_items = ref 0 in
  List.iter
    (fun r ->
      join_spin := !join_spin +. r.join_spin_s;
      total_items := !total_items + r.items;
      Array.iter
        (fun ls ->
          let t = per_lane.(ls.lane) in
          per_lane.(ls.lane) <-
            {
              t with
              tslots = t.tslots + ls.slots;
              tbusy_s = t.tbusy_s +. ls.busy_s;
              tdispatch_s = t.tdispatch_s +. ls.dispatch_s;
              tminor_words = t.tminor_words +. ls.minor_words;
              tpromoted_words = t.tpromoted_words +. ls.promoted_words;
              tminor_collections = t.tminor_collections + ls.minor_collections;
              tmajor_collections = t.tmajor_collections + ls.major_collections;
            })
        r.lanes)
    records;
  {
    runs = List.length records;
    total_items = !total_items;
    lanes_used;
    per_lane;
    join_spin_total_s = !join_spin;
  }

let chrome_pid_base = 3

let chrome_events ?(base_pid = chrome_pid_base) records =
  let lanes_used = List.fold_left (fun acc r -> max acc r.rjobs) 0 records in
  let header =
    List.concat
      (List.init lanes_used (fun lane ->
           [
             Chrome_trace.Process_name
               {
                 pid = base_pid + lane;
                 name =
                   (if lane = 0 then "pool domain 0 (caller)"
                    else Printf.sprintf "pool domain %d" lane);
               };
             Chrome_trace.Thread_name { pid = base_pid + lane; tid = 0; name = "slots" };
           ]))
  in
  let body =
    List.concat_map
      (fun r ->
        Chrome_trace.Instant
          {
            name = Printf.sprintf "submit run %d (%d slots)" r.run_id r.items;
            cat = "pool";
            pid = base_pid;
            tid = 0;
            ts_us = r.submit_s *. 1e6;
          }
        :: List.concat
             (Array.to_list
                (Array.map
                   (fun ls ->
                     let slices =
                       List.rev_map
                         (fun (slot, start_s, dur_s) ->
                           Chrome_trace.Duration
                             {
                               name = Printf.sprintf "run %d slot %d" r.run_id slot;
                               cat = "pool";
                               pid = base_pid + ls.lane;
                               tid = 0;
                               ts_us = start_s *. 1e6;
                               dur_us = dur_s *. 1e6;
                               args = [ ("run", Json.int r.run_id); ("slot", Json.int slot) ];
                             })
                         ls.slot_spans
                     in
                     if ls.slots = 0 then slices
                     else
                       Chrome_trace.Counter
                         {
                           name = "pool.gc.minor_words";
                           pid = base_pid + ls.lane;
                           ts_us = r.done_s *. 1e6;
                           series = [ ("minor_words", ls.minor_words) ];
                         }
                       :: slices)
                   r.lanes)))
      records
  in
  header @ body
