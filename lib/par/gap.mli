(** Scaling-gap decomposition: why a parallel run missed perfect
    scaling.

    Feed {!decompose} the wall clocks and drained {!Pool.run_record}
    batches of the same workload run sequentially and at [jobs] lanes.
    The gap to perfect scaling ([t_par - t_seq/jobs]) splits exactly
    into serial sections, work inflation, pool overhead and idle time:

    {v
    t_par - t_seq/N = (S_par - S_seq/N)    serial sections
                    + (B_par - B_seq)/N    work inflation
                    + O/N                  pool overhead
                    + I/N                  idle (imbalance)
    v}

    with [S*] time outside pool regions, [B*] summed lane busy time,
    [O] dispatch latency plus caller join wait, and [I] the remaining
    lane-time inside parallel regions.  Because idle is defined as the
    remainder, [accounted_s] matches [gap_s] up to the sequential
    baseline's region/busy clock skew — the accounting property the
    test suite locks at 1%. *)

type t = {
  jobs : int;
  t_seq_s : float;
  t_par_s : float;
  speedup : float;  (** [t_seq /. t_par] *)
  efficiency : float;  (** [speedup /. jobs] *)
  gap_s : float;  (** [t_par -. t_seq /. jobs] *)
  serial_s : float;
  inflation_s : float;
  overhead_s : float;
  idle_s : float;
  accounted_s : float;  (** sum of the four components *)
  region_seq_s : float;  (** wall time inside pool regions, sequential run *)
  region_par_s : float;
  busy_seq_s : float;  (** summed lane busy time, sequential run *)
  busy_par_s : float;
}

val decompose :
  jobs:int ->
  t_seq:float ->
  t_par:float ->
  seq:Pool.run_record list ->
  par:Pool.run_record list ->
  t

val json_fields : t -> (string * Orianna_obs.Json.t) list
(** The decomposition as report fields ([jobs], clocks, [speedup],
    [efficiency], [gap_s], [accounted_s], [gap_breakdown_s]); callers
    append workload-specific extras (GC deltas, per-lane tables). *)
