open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_isa
module Expr = Orianna_ir.Expr
module Value = Orianna_ir.Value
module Modfg = Orianna_ir.Modfg
module B = Program.Builder
module Obs = Orianna_obs.Obs
module Error = Orianna_util.Error

let src = Logs.Src.create "orianna.compiler" ~doc:"Factor graph to ISA lowering"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Emission context with local value numbering: pure operations on the
   same sources share one instruction (the datapath CSE of Sec. 6).   *)

type ctx = { b : B.b; algo : int; cse : bool; cache : (string, int) Hashtbl.t }

let shape_of_ty = function
  | Value.Trot n -> (n, n)
  | Value.Tvec n -> (n, 1)

let cache_key op srcs =
  let payload =
    match op with
    | Instr.Scale s -> Printf.sprintf "SCALE:%h" s
    | Instr.Extract { row; col; rows; cols } -> Printf.sprintf "EXTRACT:%d:%d:%d:%d" row col rows cols
    | Instr.Vadd | Instr.Vsub | Instr.Neg | Instr.Transpose | Instr.Gemm | Instr.Gemv
    | Instr.Logm | Instr.Expm | Instr.Skew | Instr.Jr | Instr.Jrinv | Instr.Qr | Instr.Backsolve ->
        Instr.opcode_name op
    | Instr.Load _ | Instr.Assemble _ | Instr.Kernel _ -> ""
  in
  if payload = "" then None
  else Some (payload ^ "|" ^ String.concat "," (Array.to_list (Array.map string_of_int srcs)))

let emit ctx ~op ~srcs ~rows ~cols ~phase ~tag =
  match (if ctx.cse then cache_key op srcs else None) with
  | None -> B.emit ctx.b ~op ~srcs ~rows ~cols ~phase ~algo:ctx.algo ~tag
  | Some key -> (
      match Hashtbl.find_opt ctx.cache key with
      | Some reg ->
          Obs.count "compile.cse_hits";
          reg
      | None ->
          let reg = B.emit ctx.b ~op ~srcs ~rows ~cols ~phase ~algo:ctx.algo ~tag in
          Hashtbl.add ctx.cache key reg;
          reg)

let load ctx ~m ~phase ~tag =
  let rows, cols = Mat.dims m in
  B.emit ctx.b ~op:(Instr.Load m) ~srcs:[||] ~rows ~cols ~phase ~algo:ctx.algo ~tag

(* ------------------------------------------------------------------ *)
(* Variable inputs                                                     *)

type var_regs =
  | Pose_regs of { rot : int; trans : int; rot_dim : int; trans_dim : int }
  | Se3_regs of { reg : int }
  | Vec_regs of { reg : int; dim : int }

let load_variable ctx graph v =
  match Graph.value graph v with
  | Var.Pose2 p ->
      let rot = load ctx ~m:(Pose2.rotation p) ~phase:Instr.Construct ~tag:("in:R(" ^ v ^ ")") in
      let trans =
        load ctx ~m:(Mat.of_vec (Pose2.translation p)) ~phase:Instr.Construct ~tag:("in:t(" ^ v ^ ")")
      in
      Pose_regs { rot; trans; rot_dim = 1; trans_dim = 2 }
  | Var.Pose3 p ->
      let rot = load ctx ~m:(Pose3.rotation p) ~phase:Instr.Construct ~tag:("in:R(" ^ v ^ ")") in
      let trans =
        load ctx ~m:(Mat.of_vec (Pose3.translation p)) ~phase:Instr.Construct ~tag:("in:t(" ^ v ^ ")")
      in
      Pose_regs { rot; trans; rot_dim = 3; trans_dim = 3 }
  | Var.Se3 x ->
      let reg = load ctx ~m:(Se3.to_matrix x) ~phase:Instr.Construct ~tag:("in:T(" ^ v ^ ")") in
      Se3_regs { reg }
  | Var.Vector vec ->
      let reg = load ctx ~m:(Mat.of_vec vec) ~phase:Instr.Construct ~tag:("in:v(" ^ v ^ ")") in
      Vec_regs { reg; dim = Vec.dim vec }

let leaf_reg var_regs leaf =
  match (leaf, var_regs) with
  | Expr.Rot_of _, Pose_regs { rot; _ } -> rot
  | Expr.Trans_of _, Pose_regs { trans; _ } -> trans
  | Expr.Vec_of _, Vec_regs { reg; _ } -> reg
  | _ -> Error.fail Error.Compile ~context:[ "leaf_reg" ] "leaf kind does not match variable kind"

let leaf_var = function Expr.Rot_of v | Expr.Trans_of v | Expr.Vec_of v -> v

(* ------------------------------------------------------------------ *)
(* Adjoint representation for backward propagation.  A [Sel] is a
   scaled block of identity rows — kept symbolic so the seed of the
   chain rule costs nothing until a real Jacobian shows up.           *)

type adj =
  | Sel of { off : int; dim : int; scale : float; err : int }
  | Reg of { reg : int; rows : int; cols : int }

let sel_matrix ~off ~dim ~scale ~err =
  Mat.init err dim (fun i j -> if i = off + j then scale else 0.0)

let materialize ctx ~phase ~tag = function
  | Reg { reg; _ } -> reg
  | Sel { off; dim; scale; err } -> load ctx ~m:(sel_matrix ~off ~dim ~scale ~err) ~phase ~tag

(* The local Jacobian of one MO-DFG edge, as codegen actions. *)
type local_jac =
  | J_ident
  | J_neg_ident
  | J_scale of float
  | J_reg of int * int * int  (** register, rows, cols *)

let apply_local ctx ~phase ~tag adjoint = function
  | J_ident -> adjoint
  | J_neg_ident -> (
      match adjoint with
      | Sel s -> Sel { s with scale = -.s.scale }
      | Reg { reg; rows; cols } ->
          Reg { reg = emit ctx ~op:Instr.Neg ~srcs:[| reg |] ~rows ~cols ~phase ~tag; rows; cols })
  | J_scale s -> (
      match adjoint with
      | Sel sel -> Sel { sel with scale = s *. sel.scale }
      | Reg { reg; rows; cols } ->
          Reg
            { reg = emit ctx ~op:(Instr.Scale s) ~srcs:[| reg |] ~rows ~cols ~phase ~tag; rows; cols })
  | J_reg (j, jr, jc) -> (
      match adjoint with
      | Sel { off; dim; scale; err } ->
          (* Selector times J just places (scale * J) at row [off]. *)
          assert (dim = jr);
          let j =
            if scale = 1.0 then j
            else emit ctx ~op:(Instr.Scale scale) ~srcs:[| j |] ~rows:jr ~cols:jc ~phase ~tag
          in
          let reg =
            emit ctx
              ~op:(Instr.Assemble [ (off, 0) ])
              ~srcs:[| j |] ~rows:err ~cols:jc ~phase ~tag
          in
          Reg { reg; rows = err; cols = jc }
      | Reg { reg; rows; _ } ->
          Reg
            {
              reg = emit ctx ~op:Instr.Gemm ~srcs:[| reg; j |] ~rows ~cols:jc ~phase ~tag;
              rows;
              cols = jc;
            })

let add_adjoint ctx ~phase ~tag a b =
  let ra = materialize ctx ~phase ~tag a in
  let rb = materialize ctx ~phase ~tag b in
  let rows, cols = B.shape ctx.b ra in
  Reg { reg = emit ctx ~op:Instr.Vadd ~srcs:[| ra; rb |] ~rows ~cols ~phase ~tag; rows; cols }

(* ------------------------------------------------------------------ *)
(* Symbolic factor lowering: forward (error) + backward (Jacobians).   *)

type lin = {
  lvars : string list;
  lblocks : (string * int) list;  (** whitened Jacobian register per variable *)
  lrhs : int;  (** register holding -whitened error, rows x 1 *)
  lrows : int;
}

let forward_pass ctx ~tag ~regs_of_var g =
  let nodes = Modfg.nodes g in
  let regs = Array.make (Array.length nodes) (-1) in
  Array.iter
    (fun (n : Modfg.node) ->
      let rows, cols = shape_of_ty n.ty in
      let arg k = regs.(n.args.(k)) in
      let reg =
        match n.op with
        | Modfg.In_leaf leaf -> leaf_reg (regs_of_var (leaf_var leaf)) leaf
        | Modfg.In_const (Value.Rot m) -> load ctx ~m ~phase:Instr.Construct ~tag
        | Modfg.In_const (Value.Vc v) -> load ctx ~m:(Mat.of_vec v) ~phase:Instr.Construct ~tag
        | Modfg.Op_vadd ->
            emit ctx ~op:Instr.Vadd ~srcs:[| arg 0; arg 1 |] ~rows ~cols ~phase:Instr.Construct ~tag
        | Modfg.Op_vsub ->
            emit ctx ~op:Instr.Vsub ~srcs:[| arg 0; arg 1 |] ~rows ~cols ~phase:Instr.Construct ~tag
        | Modfg.Op_vscale s ->
            emit ctx ~op:(Instr.Scale s) ~srcs:[| arg 0 |] ~rows ~cols ~phase:Instr.Construct ~tag
        | Modfg.Op_rt ->
            emit ctx ~op:Instr.Transpose ~srcs:[| arg 0 |] ~rows ~cols ~phase:Instr.Construct ~tag
        | Modfg.Op_rr ->
            emit ctx ~op:Instr.Gemm ~srcs:[| arg 0; arg 1 |] ~rows ~cols ~phase:Instr.Construct ~tag
        | Modfg.Op_rv ->
            emit ctx ~op:Instr.Gemv ~srcs:[| arg 0; arg 1 |] ~rows ~cols ~phase:Instr.Construct ~tag
        | Modfg.Op_log ->
            emit ctx ~op:Instr.Logm ~srcs:[| arg 0 |] ~rows ~cols ~phase:Instr.Construct ~tag
        | Modfg.Op_exp ->
            emit ctx ~op:Instr.Expm ~srcs:[| arg 0 |] ~rows ~cols ~phase:Instr.Construct ~tag
      in
      regs.(n.id) <- reg)
    nodes;
  regs

(* Backward local Jacobians, mirroring Modfg.local_jacobian but as
   instruction emission. *)
let local_jacobian ctx ~tag ~regs (nodes : Modfg.node array) (n : Modfg.node) k =
  let phase = Instr.Construct in
  let arg_node i = nodes.(n.args.(i)) in
  let arg_reg i = regs.(n.args.(i)) in
  let rot_dim () =
    match (arg_node 0).ty with Value.Trot d -> d | Value.Tvec _ -> assert false
  in
  match n.op with
  | Modfg.In_leaf _ | Modfg.In_const _ -> assert false
  | Modfg.Op_vadd -> J_ident
  | Modfg.Op_vsub -> if k = 0 then J_ident else J_neg_ident
  | Modfg.Op_vscale s -> J_scale s
  | Modfg.Op_rt ->
      if rot_dim () = 2 then J_neg_ident
      else
        J_reg (emit ctx ~op:Instr.Neg ~srcs:[| arg_reg 0 |] ~rows:3 ~cols:3 ~phase ~tag, 3, 3)
  | Modfg.Op_rr ->
      if rot_dim () = 2 then J_ident
      else if k = 0 then
        J_reg (emit ctx ~op:Instr.Transpose ~srcs:[| arg_reg 1 |] ~rows:3 ~cols:3 ~phase ~tag, 3, 3)
      else J_ident
  | Modfg.Op_rv ->
      if k = 1 then
        let d = rot_dim () in
        J_reg (arg_reg 0, d, d)
      else if rot_dim () = 2 then begin
        (* d(Rv)/dtheta = R (P v) with P the quarter-turn matrix. *)
        let p = load ctx ~m:(Mat.of_rows [| [| 0.0; -1.0 |]; [| 1.0; 0.0 |] |]) ~phase ~tag in
        let pv = emit ctx ~op:Instr.Gemv ~srcs:[| p; arg_reg 1 |] ~rows:2 ~cols:1 ~phase ~tag in
        J_reg (emit ctx ~op:Instr.Gemv ~srcs:[| arg_reg 0; pv |] ~rows:2 ~cols:1 ~phase ~tag, 2, 1)
      end
      else begin
        (* d(Rv)/dphi = -(R v^). *)
        let sk = emit ctx ~op:Instr.Skew ~srcs:[| arg_reg 1 |] ~rows:3 ~cols:3 ~phase ~tag in
        let rv = emit ctx ~op:Instr.Gemm ~srcs:[| arg_reg 0; sk |] ~rows:3 ~cols:3 ~phase ~tag in
        J_reg (emit ctx ~op:Instr.Neg ~srcs:[| rv |] ~rows:3 ~cols:3 ~phase ~tag, 3, 3)
      end
  | Modfg.Op_log ->
      if Value.tangent_dim n.ty = 1 then J_ident
      else J_reg (emit ctx ~op:Instr.Jrinv ~srcs:[| regs.(n.id) |] ~rows:3 ~cols:3 ~phase ~tag, 3, 3)
  | Modfg.Op_exp ->
      if Value.tangent_dim n.ty = 1 then J_ident
      else J_reg (emit ctx ~op:Instr.Jr ~srcs:[| arg_reg 0 |] ~rows:3 ~cols:3 ~phase ~tag, 3, 3)

let backward_pass ctx ~tag ~regs g =
  let phase = Instr.Construct in
  let nodes = Modfg.nodes g in
  let err = Modfg.error_dim g in
  let adj : adj option array = Array.make (Array.length nodes) None in
  let accumulate id contrib =
    adj.(id) <-
      Some (match adj.(id) with None -> contrib | Some prev -> add_adjoint ctx ~phase ~tag prev contrib)
  in
  (* Seed the outputs. *)
  let offset = ref 0 in
  Array.iter
    (fun out ->
      let dim = Value.tangent_dim nodes.(out).ty in
      accumulate out (Sel { off = !offset; dim; scale = 1.0; err });
      offset := !offset + dim)
    (Modfg.outputs g);
  for i = Array.length nodes - 1 downto 0 do
    let node = nodes.(i) in
    match (adj.(i), node.op) with
    | None, _ | Some _, (Modfg.In_leaf _ | Modfg.In_const _) -> ()
    | ( Some a,
        ( Modfg.Op_vadd | Modfg.Op_vsub | Modfg.Op_vscale _ | Modfg.Op_rt | Modfg.Op_rr
        | Modfg.Op_rv | Modfg.Op_log | Modfg.Op_exp ) ) ->
        Array.iteri
          (fun k argid ->
            let j = local_jacobian ctx ~tag ~regs nodes node k in
            accumulate argid (apply_local ctx ~phase ~tag a j))
          node.args
  done;
  (* Jacobian register per leaf (zero block for cancelled leaves). *)
  List.map
    (fun (leaf, id) ->
      let td = Value.tangent_dim nodes.(id).ty in
      let reg =
        match adj.(id) with
        | Some a -> materialize ctx ~phase ~tag a
        | None -> load ctx ~m:(Mat.create err td) ~phase ~tag
      in
      (leaf, reg))
    (Modfg.leaves g)

let whiten_and_pack ctx ~tag ~factor ~err_reg ~var_blocks =
  let phase = Instr.Construct in
  let sigmas = Factor.sigmas factor in
  let err = Vec.dim sigmas in
  let uniform = Array.for_all (fun s -> s = sigmas.(0)) sigmas in
  let whiten reg cols =
    if uniform then
      emit ctx ~op:(Instr.Scale (1.0 /. sigmas.(0))) ~srcs:[| reg |] ~rows:err ~cols ~phase ~tag
    else begin
      let w = Mat.init err err (fun i j -> if i = j then 1.0 /. sigmas.(i) else 0.0) in
      let wreg = load ctx ~m:w ~phase ~tag in
      emit ctx ~op:Instr.Gemm ~srcs:[| wreg; reg |] ~rows:err ~cols ~phase ~tag
    end
  in
  let blocks = List.map (fun (v, reg, cols) -> (v, whiten reg cols)) var_blocks in
  let werr = whiten err_reg 1 in
  let rhs = emit ctx ~op:Instr.Neg ~srcs:[| werr |] ~rows:err ~cols:1 ~phase ~tag in
  { lvars = List.map (fun (v, _, _) -> v) var_blocks; lblocks = blocks; lrhs = rhs; lrows = err }

let lower_symbolic ctx graph ~regs_of_var factor g =
  let tag = Factor.name factor in
  let regs = forward_pass ctx ~tag ~regs_of_var g in
  let err = Modfg.error_dim g in
  (* Stack the error components into one rows x 1 register. *)
  let outputs = Modfg.outputs g in
  let err_reg =
    if Array.length outputs = 1 then regs.(outputs.(0))
    else begin
      let srcs = Array.map (fun o -> regs.(o)) outputs in
      let nodes = Modfg.nodes g in
      let places = ref [] in
      let off = ref 0 in
      Array.iter
        (fun o ->
          let d = Value.tangent_dim nodes.(o).ty in
          places := (!off, 0) :: !places;
          off := !off + d)
        outputs;
      emit ctx
        ~op:(Instr.Assemble (List.rev !places))
        ~srcs ~rows:err ~cols:1 ~phase:Instr.Construct ~tag
    end
  in
  let leaf_jacs = backward_pass ctx ~tag ~regs g in
  (* Combine a pose variable's rotation and translation leaves into one
     block in tangent order. *)
  let var_blocks =
    List.map
      (fun v ->
        let value = Graph.value graph v in
        let vdim = Var.dim value in
        let rdim = Var.rot_dim value in
        let mine = List.filter (fun (leaf, _) -> leaf_var leaf = v) leaf_jacs in
        match mine with
        | [ (Expr.Vec_of _, reg) ] -> (v, reg, vdim)
        | _ ->
            let srcs = ref [] and places = ref [] in
            List.iter
              (fun (leaf, reg) ->
                match leaf with
                | Expr.Rot_of _ ->
                    srcs := reg :: !srcs;
                    places := (0, 0) :: !places
                | Expr.Trans_of _ ->
                    srcs := reg :: !srcs;
                    places := (0, rdim) :: !places
                | Expr.Vec_of _ -> ())
              mine;
            let reg =
              if !srcs = [] then load ctx ~m:(Mat.create err vdim) ~phase:Instr.Construct ~tag:(Factor.name factor)
              else
                emit ctx
                  ~op:(Instr.Assemble (List.rev !places))
                  ~srcs:(Array.of_list (List.rev !srcs))
                  ~rows:err ~cols:vdim ~phase:Instr.Construct ~tag:(Factor.name factor)
            in
            (v, reg, vdim))
      (Factor.vars factor)
  in
  whiten_and_pack ctx ~tag ~factor ~err_reg ~var_blocks

(* ------------------------------------------------------------------ *)
(* Native factor lowering: a kernel instruction + extracts.            *)

let rebuild_value template mats pos =
  match template with
  | Var.Pose2 _ ->
      let r = mats.(pos) and t = mats.(pos + 1) in
      (Var.Pose2 (Pose2.create ~theta:(So2.log r) ~t:(Mat.to_vec t)), pos + 2)
  | Var.Pose3 _ ->
      let r = mats.(pos) and t = mats.(pos + 1) in
      (Var.Pose3 (Pose3.create ~r ~t:(Mat.to_vec t)), pos + 2)
  | Var.Se3 _ -> (Var.Se3 (Se3.of_matrix mats.(pos)), pos + 1)
  | Var.Vector _ -> (Var.Vector (Mat.to_vec mats.(pos)), pos + 1)

let lower_native ctx graph ~regs_of_var factor =
  let tag = Factor.name factor in
  let vars = Factor.vars factor in
  let err = Factor.error_dim factor in
  let dims = List.map (fun v -> Var.dim (Graph.value graph v)) vars in
  let total = List.fold_left ( + ) 0 dims in
  let srcs =
    List.concat_map
      (fun v ->
        match regs_of_var v with
        | Pose_regs { rot; trans; _ } -> [ rot; trans ]
        | Se3_regs { reg } -> [ reg ]
        | Vec_regs { reg; _ } -> [ reg ])
      vars
  in
  let templates = List.map (fun v -> (v, Graph.value graph v)) vars in
  let apply mats =
    (* Rebuild a lookup from the incoming registers. *)
    let assoc = ref [] in
    let pos = ref 0 in
    List.iter
      (fun (v, template) ->
        let value, next = rebuild_value template mats !pos in
        assoc := (v, value) :: !assoc;
        pos := next)
      templates;
    let lookup v = List.assoc v !assoc in
    let werr, blocks = Factor.linearize factor lookup in
    let out = Mat.create err (1 + total) in
    Mat.set_block out 0 0 (Mat.of_vec (Vec.neg werr));
    let col = ref 1 in
    List.iter2
      (fun v d ->
        (match List.assoc_opt v blocks with
        | Some b -> Mat.set_block out 0 !col b
        | None -> ());
        col := !col + d)
      vars dims;
    out
  in
  let flops = (err * total * 3) + (err * 10) in
  (* Kernel names are the deployment registry's keys: namespace them
     by algorithm so identically-named factors of different algorithms
     stay distinct. *)
  let kname = Printf.sprintf "a%d:%s" ctx.algo tag in
  let kreg =
    B.emit ctx.b
      ~op:(Instr.Kernel { Instr.kname; flops; apply })
      ~srcs:(Array.of_list srcs) ~rows:err ~cols:(1 + total) ~phase:Instr.Construct ~algo:ctx.algo
      ~tag
  in
  let rhs =
    emit ctx
      ~op:(Instr.Extract { row = 0; col = 0; rows = err; cols = 1 })
      ~srcs:[| kreg |] ~rows:err ~cols:1 ~phase:Instr.Construct ~tag
  in
  let col = ref 1 in
  let blocks =
    List.map2
      (fun v d ->
        let reg =
          emit ctx
            ~op:(Instr.Extract { row = 0; col = !col; rows = err; cols = d })
            ~srcs:[| kreg |] ~rows:err ~cols:d ~phase:Instr.Construct ~tag
        in
        col := !col + d;
        (v, reg))
      vars dims
  in
  { lvars = vars; lblocks = blocks; lrhs = rhs; lrows = err }

(* ------------------------------------------------------------------ *)
(* Elimination plan (Fig. 5) and back substitution (Fig. 6).           *)

type cond_regs = {
  cvar : string;
  cdim : int;
  cr : int;  (** d x d upper-triangular register *)
  cparents : (string * int) list;
  crhs : int;
}

let compile_elimination ctx ~order ~dims lins =
  let position = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.add position v i) order;
  let work = ref lins in
  let conds = ref [] in
  List.iter
    (fun v ->
      let adjacent, rest = List.partition (fun l -> List.mem v l.lvars) !work in
      if adjacent = [] then raise (Elimination.Underconstrained v);
      let d = dims v in
      let others =
        List.concat_map (fun l -> l.lvars) adjacent
        |> List.sort_uniq compare
        |> List.filter (fun w -> w <> v)
        |> List.sort (fun a b -> compare (Hashtbl.find position a) (Hashtbl.find position b))
      in
      let offsets = Hashtbl.create 8 in
      let width = ref 0 in
      List.iter
        (fun w ->
          Hashtbl.add offsets w !width;
          width := !width + dims w)
        (v :: others);
      let w = !width in
      let m = List.fold_left (fun acc l -> acc + l.lrows) 0 adjacent in
      if m < d then raise (Elimination.Underconstrained v);
      let tag = "elim:" ^ v in
      (* Gather the adjacent factors' blocks into Abar = [A | b]. *)
      let srcs = ref [] and places = ref [] in
      let row = ref 0 in
      List.iter
        (fun l ->
          List.iter
            (fun (var, reg) ->
              srcs := reg :: !srcs;
              places := (!row, Hashtbl.find offsets var) :: !places)
            l.lblocks;
          srcs := l.lrhs :: !srcs;
          places := (!row, w) :: !places;
          row := !row + l.lrows)
        adjacent;
      let abar =
        emit ctx
          ~op:(Instr.Assemble (List.rev !places))
          ~srcs:(Array.of_list (List.rev !srcs))
          ~rows:m ~cols:(w + 1) ~phase:Instr.Decompose ~tag
      in
      let rbar =
        emit ctx ~op:Instr.Qr ~srcs:[| abar |] ~rows:m ~cols:(w + 1) ~phase:Instr.Decompose ~tag
      in
      let extract ~row ~col ~rows ~cols =
        emit ctx
          ~op:(Instr.Extract { row; col; rows; cols })
          ~srcs:[| rbar |] ~rows ~cols ~phase:Instr.Decompose ~tag
      in
      let cr = extract ~row:0 ~col:0 ~rows:d ~cols:d in
      let cparents =
        List.map (fun p -> (p, extract ~row:0 ~col:(Hashtbl.find offsets p) ~rows:d ~cols:(dims p))) others
      in
      let crhs = extract ~row:0 ~col:w ~rows:d ~cols:1 in
      conds := { cvar = v; cdim = d; cr; cparents; crhs } :: !conds;
      let leftover = min m w - d in
      let work' =
        if leftover <= 0 || others = [] then rest
        else begin
          let blocks =
            List.map
              (fun p -> (p, extract ~row:d ~col:(Hashtbl.find offsets p) ~rows:leftover ~cols:(dims p)))
              others
          in
          let rhs = extract ~row:d ~col:w ~rows:leftover ~cols:1 in
          { lvars = others; lblocks = blocks; lrhs = rhs; lrows = leftover } :: rest
        end
      in
      work := work')
    order;
  List.rev !conds

let compile_backsub ctx conds =
  let solution = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let tag = "solve:" ^ c.cvar in
      let acc =
        List.fold_left
          (fun acc (p, block) ->
            let dp = Hashtbl.find solution p in
            let contrib =
              emit ctx ~op:Instr.Gemv ~srcs:[| block; dp |] ~rows:c.cdim ~cols:1
                ~phase:Instr.Backsub ~tag
            in
            emit ctx ~op:Instr.Vsub ~srcs:[| acc; contrib |] ~rows:c.cdim ~cols:1
              ~phase:Instr.Backsub ~tag)
          c.crhs c.cparents
      in
      let delta =
        emit ctx ~op:Instr.Backsolve ~srcs:[| c.cr; acc |] ~rows:c.cdim ~cols:1
          ~phase:Instr.Backsub ~tag
      in
      Hashtbl.add solution c.cvar delta)
    (List.rev conds);
  solution

(* ------------------------------------------------------------------ *)

(* One linearize-eliminate-substitute round over the given variable
   input registers; returns the per-variable delta registers. *)
let compile_round ctx graph ~regs_of_var ~order =
  let lins =
    Obs.with_span "compile.construct" @@ fun () ->
    List.map
      (fun f ->
        match Factor.modfg f (Graph.lookup graph) with
        | Some g ->
            Obs.count "compile.factors.symbolic";
            lower_symbolic ctx graph ~regs_of_var f g
        | None ->
            Obs.count "compile.factors.native";
            lower_native ctx graph ~regs_of_var f)
      (Graph.factors graph)
  in
  let conds =
    Obs.with_span "compile.eliminate" (fun () ->
        compile_elimination ctx ~order ~dims:(Graph.dims graph) lins)
  in
  Obs.with_span "compile.backsub" (fun () -> compile_backsub ctx conds)

(* Per-opcode emission counters over a finished stream — one place
   covers every lowering path. *)
let record_program_counters (p : Program.t) =
  if Obs.enabled () then begin
    Array.iter
      (fun (i : Instr.t) -> Obs.count ("compile.op." ^ Instr.opcode_name i.Instr.op))
      p.Program.instrs;
    Obs.count "compile.instructions" ~n:(Program.length p)
  end;
  p

(* Post-hoc instruction-stream optimization (Opt pass pipeline),
   applied to the finished stream of every lowering path behind one
   [opt_level] knob (0 = off). *)
let optimize_level ~opt_level (p : Program.t) =
  if opt_level <= 0 then p
  else
    Obs.with_span "compile.optimize" ~attrs:[ ("level", string_of_int opt_level) ] @@ fun () ->
    let p', _, rep = Opt.optimize_traced ~level:opt_level p in
    Log.debug (fun m -> m "optimize (O%d): %a" opt_level Opt.pp_report rep);
    p'

let compile_graph ?(algo = 0) ?(prefix = "") ?(ordering = Ordering.Min_degree) ?(cse = true) graph =
  Obs.with_span "compile.lower"
    ~attrs:
      [
        ("algo", string_of_int algo);
        ("variables", string_of_int (Graph.num_variables graph));
        ("factors", string_of_int (Graph.num_factors graph));
      ]
  @@ fun () ->
  let ctx = { b = B.create (); algo; cse; cache = Hashtbl.create 256 } in
  let var_regs = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.add var_regs v (load_variable ctx graph v)) (Graph.variables graph);
  let regs_of_var v = Hashtbl.find var_regs v in
  let order =
    Ordering.compute ordering ~vars:(Graph.variables graph) ~factor_scopes:(Graph.factor_scopes graph)
  in
  let solution = compile_round ctx graph ~regs_of_var ~order in
  let outputs =
    List.map (fun v -> (prefix ^ v, Hashtbl.find solution v)) (Graph.variables graph)
  in
  let p = B.finish ctx.b ~outputs in
  Log.debug (fun m ->
      m "compiled %d variables / %d factors -> %d instructions" (Graph.num_variables graph)
        (Graph.num_factors graph) (Program.length p));
  p

let compile ?algo ?prefix ?ordering ?cse ?(opt_level = 1) graph =
  record_program_counters
    (optimize_level ~opt_level (compile_graph ?algo ?prefix ?ordering ?cse graph))

(* The update phase of Fig. 3: retract each variable by its delta to
   produce the next iteration's inputs. *)
let emit_update ctx graph regs v delta =
  let tag = "update:" ^ v in
  let phase = Instr.Construct in
  match regs with
  | Pose_regs { rot; trans; rot_dim; trans_dim } ->
      let dphi =
        emit ctx
          ~op:(Instr.Extract { row = 0; col = 0; rows = rot_dim; cols = 1 })
          ~srcs:[| delta |] ~rows:rot_dim ~cols:1 ~phase ~tag
      in
      let dt =
        emit ctx
          ~op:(Instr.Extract { row = rot_dim; col = 0; rows = trans_dim; cols = 1 })
          ~srcs:[| delta |] ~rows:trans_dim ~cols:1 ~phase ~tag
      in
      let n = trans_dim in
      let exp_d = emit ctx ~op:Instr.Expm ~srcs:[| dphi |] ~rows:n ~cols:n ~phase ~tag in
      let rot' = emit ctx ~op:Instr.Gemm ~srcs:[| rot; exp_d |] ~rows:n ~cols:n ~phase ~tag in
      let trans' =
        emit ctx ~op:Instr.Vadd ~srcs:[| trans; dt |] ~rows:trans_dim ~cols:1 ~phase ~tag
      in
      Pose_regs { rot = rot'; trans = trans'; rot_dim; trans_dim }
  | Se3_regs _ ->
      Error.fail Error.Compile ~context:[ "compile_iterations" ]
        ("SE(3) variable " ^ v ^ " is not compilable")
  | Vec_regs { reg; dim } ->
      let reg' = emit ctx ~op:Instr.Vadd ~srcs:[| reg; delta |] ~rows:dim ~cols:1 ~phase ~tag in
      ignore graph;
      Vec_regs { reg = reg'; dim }

let compile_iterations ?(algo = 0) ?(prefix = "") ?(ordering = Ordering.Min_degree)
    ?(opt_level = 1) ~iterations graph =
  if iterations < 1 then
    Error.fail Error.Compile ~context:[ "compile_iterations" ] "need at least one iteration";
  Obs.with_span "compile.lower_iterations"
    ~attrs:[ ("algo", string_of_int algo); ("iterations", string_of_int iterations) ]
  @@ fun () ->
  let ctx = { b = B.create (); algo; cse = true; cache = Hashtbl.create 256 } in
  let var_regs = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.add var_regs v (load_variable ctx graph v)) (Graph.variables graph);
  let order =
    Ordering.compute ordering ~vars:(Graph.variables graph) ~factor_scopes:(Graph.factor_scopes graph)
  in
  let last_solution = ref None in
  for it = 1 to iterations do
    (* Value numbering must not merge operations across iterations that
       read different register generations — the cache keys on source
       registers, so this is automatic; clear anyway to bound it. *)
    Hashtbl.reset ctx.cache;
    let regs_of_var v = Hashtbl.find var_regs v in
    let solution = compile_round ctx graph ~regs_of_var ~order in
    last_solution := Some solution;
    if it < iterations then
      List.iter
        (fun v ->
          let updated = emit_update ctx graph (Hashtbl.find var_regs v) v (Hashtbl.find solution v) in
          Hashtbl.replace var_regs v updated)
        (Graph.variables graph)
  done;
  let solution = Option.get !last_solution in
  let outputs =
    List.map (fun v -> (prefix ^ v, Hashtbl.find solution v)) (Graph.variables graph)
  in
  record_program_counters (optimize_level ~opt_level (B.finish ctx.b ~outputs))

let compile_application ?(ordering = Ordering.Min_degree) ?(cse = true) ?(opt_level = 1) graphs =
  Obs.with_span "compile.application" @@ fun () ->
  (* Optimize after concatenation: CSE then also merges duplicates
     (selector matrices, shared priors, ...) across the application's
     algorithms, which per-graph optimization cannot see. *)
  record_program_counters
    (optimize_level ~opt_level
       (Program.concat
          (List.mapi
             (fun i (name, g) -> compile_graph ~algo:i ~prefix:(name ^ "/") ~ordering ~cse g)
             graphs)))

let compile_dense_graph ?(algo = 0) ?(prefix = "") graph =
  Obs.with_span "compile.lower_dense" ~attrs:[ ("algo", string_of_int algo) ] @@ fun () ->
  let ctx = { b = B.create (); algo; cse = true; cache = Hashtbl.create 256 } in
  let var_regs = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.add var_regs v (load_variable ctx graph v)) (Graph.variables graph);
  let regs_of_var v = Hashtbl.find var_regs v in
  let lins =
    List.map
      (fun f ->
        match Factor.modfg f (Graph.lookup graph) with
        | Some g -> lower_symbolic ctx graph ~regs_of_var f g
        | None -> lower_native ctx graph ~regs_of_var f)
      (Graph.factors graph)
  in
  (* One monolithic dense system [A | b]. *)
  let order = Graph.variables graph in
  let offsets = Hashtbl.create 16 in
  let width = ref 0 in
  List.iter
    (fun v ->
      Hashtbl.add offsets v !width;
      width := !width + Graph.dims graph v)
    order;
  let w = !width in
  let m = List.fold_left (fun acc l -> acc + l.lrows) 0 lins in
  if m < w then raise (Elimination.Underconstrained "dense system");
  let srcs = ref [] and places = ref [] in
  let row = ref 0 in
  List.iter
    (fun l ->
      List.iter
        (fun (var, reg) ->
          srcs := reg :: !srcs;
          places := (!row, Hashtbl.find offsets var) :: !places)
        l.lblocks;
      srcs := l.lrhs :: !srcs;
      places := (!row, w) :: !places;
      row := !row + l.lrows)
    lins;
  let tag = "dense" in
  let abar =
    emit ctx
      ~op:(Instr.Assemble (List.rev !places))
      ~srcs:(Array.of_list (List.rev !srcs))
      ~rows:m ~cols:(w + 1) ~phase:Instr.Decompose ~tag
  in
  let rbar = emit ctx ~op:Instr.Qr ~srcs:[| abar |] ~rows:m ~cols:(w + 1) ~phase:Instr.Decompose ~tag in
  let r =
    emit ctx
      ~op:(Instr.Extract { row = 0; col = 0; rows = w; cols = w })
      ~srcs:[| rbar |] ~rows:w ~cols:w ~phase:Instr.Decompose ~tag
  in
  let rhs =
    emit ctx
      ~op:(Instr.Extract { row = 0; col = w; rows = w; cols = 1 })
      ~srcs:[| rbar |] ~rows:w ~cols:1 ~phase:Instr.Decompose ~tag
  in
  let delta =
    emit ctx ~op:Instr.Backsolve ~srcs:[| r; rhs |] ~rows:w ~cols:1 ~phase:Instr.Backsub ~tag
  in
  let outputs =
    List.map
      (fun v ->
        let d = Graph.dims graph v in
        let reg =
          emit ctx
            ~op:(Instr.Extract { row = Hashtbl.find offsets v; col = 0; rows = d; cols = 1 })
            ~srcs:[| delta |] ~rows:d ~cols:1 ~phase:Instr.Backsub ~tag
        in
        (prefix ^ v, reg))
      order
  in
  B.finish ctx.b ~outputs

let compile_dense ?algo ?prefix ?(opt_level = 1) graph =
  record_program_counters (optimize_level ~opt_level (compile_dense_graph ?algo ?prefix graph))

let compile_dense_application ?(opt_level = 1) graphs =
  Obs.with_span "compile.application" ~attrs:[ ("lowering", "dense") ] @@ fun () ->
  record_program_counters
    (optimize_level ~opt_level
       (Program.concat
          (List.mapi (fun i (name, g) -> compile_dense_graph ~algo:i ~prefix:(name ^ "/") g) graphs)))

let iterate ?(ordering = Ordering.Min_degree) ?(max_iterations = 25) ?(delta_tol = 1e-8) graph =
  let iters = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iters < max_iterations do
    incr iters;
    let program = compile ~ordering graph in
    let deltas = Program.run program in
    let max_delta = ref 0.0 in
    List.iter
      (fun (v, d) ->
        Array.iter (fun x -> max_delta := Float.max !max_delta (Float.abs x)) d;
        Graph.set_value graph v (Var.retract (Graph.value graph v) d))
      deltas;
    if !max_delta < delta_tol then continue_ := false
  done;
  !iters
