(** The ORIANNA compiler (Sec. 5.2).

    Translates a factor graph into one Gauss-Newton iteration's
    instruction stream:

    + every symbolic factor's MO-DFG is traversed forward (emitting
      the error instructions that build the RHS vector [b]) and
      backward (emitting the derivative instructions that build the
      coefficient blocks of [A]); native factors lower to an opaque
      [Kernel] instruction plus block extracts;
    + the factor graph is traversed in elimination order, emitting
      [Assemble] / [Qr] / [Extract] instructions per variable
      (Fig. 5);
    + back-substitution instructions are emitted in reverse order
      (Fig. 6).

    The compiled program is closed over the current estimate and the
    measurements (they appear as [Load] instructions), so executing it
    with {!Orianna_isa.Program.run} reproduces exactly the update the
    software solver would compute — a property the test suite
    checks. *)

open Orianna_fg
open Orianna_isa

val compile :
  ?algo:int ->
  ?prefix:string ->
  ?ordering:Ordering.strategy ->
  ?cse:bool ->
  ?opt_level:int ->
  Graph.t ->
  Program.t
(** Compile one iteration.  [algo] tags every instruction (for
    coarse-grained out-of-order execution across algorithms);
    [prefix] namespaces the output variable names; [cse] (default
    true) enables the local value numbering that shares pure
    operations on identical sources — the knob the ablation study
    flips.  [opt_level] (default 1) runs the post-hoc
    {!Orianna_isa.Opt} pass pipeline (global CSE, peephole fusion,
    DCE, latency-aware reorder) over the finished stream; 0 turns it
    off. *)

val compile_application :
  ?ordering:Ordering.strategy -> ?cse:bool -> ?opt_level:int -> (string * Graph.t) list -> Program.t
(** Compile several algorithms of one robotic application into a
    single stream: algorithm [i] gets [algo = i] and its outputs are
    prefixed ["name/"].  [opt_level] is applied to the concatenated
    stream, so CSE also merges duplicates across algorithms. *)

val compile_iterations :
  ?algo:int ->
  ?prefix:string ->
  ?ordering:Ordering.strategy ->
  ?opt_level:int ->
  iterations:int ->
  Graph.t ->
  Program.t
(** Unroll [iterations] Gauss-Newton iterations into one stream,
    including the {e update phase} of Fig. 3: after each solve, retract
    instructions ([Expm] + [Gemm] for orientations, [Vadd] for
    positions and vectors) produce the next iteration's variable
    inputs, so the whole optimization runs on the accelerator without
    host round-trips.  Outputs are the final iteration's deltas —
    equal to what the software solver computes at the same point. *)

val compile_dense : ?algo:int -> ?prefix:string -> ?opt_level:int -> Graph.t -> Program.t
(** The VANILLA-HLS lowering (Sec. 7.1): identical construction
    instructions, but no factor-graph inference — the whole sparse
    system is assembled into one big dense matrix, decomposed with a
    single QR and solved with one big back substitution.  Produces the
    same deltas as {!compile}, at the cost the paper's Figs. 17/18
    illustrate. *)

val compile_dense_application : ?opt_level:int -> (string * Graph.t) list -> Program.t

val iterate :
  ?ordering:Ordering.strategy -> ?max_iterations:int -> ?delta_tol:float -> Graph.t -> int
(** Run full Gauss-Newton by recompiling and {e executing the
    compiled program} each iteration, applying the deltas to the
    graph.  Returns the iteration count.  This is the "accelerator
    semantics" optimization path: it must land on the same optimum as
    {!Orianna_fg.Optimizer.optimize}. *)
