type attr = string * string

type span = {
  name : string;
  attrs : attr list;
  start_s : float;
  dur_s : float;
  children : span list;
}

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms.

   [Hist.t] is the mutable accumulator (domain-local inside the
   registry, or standalone — the serving runtime builds one over its
   latency samples); [histogram] below is the immutable public
   snapshot.  Buckets are logarithmic: [sub] per octave over
   [2^min_exp, 2^max_exp), so any quantile read off the bucket counts
   carries a bounded relative error of [2^(1/sub) - 1] (~4.4%).
   Values outside the range clamp into the end buckets; non-positive
   values are counted separately (they still contribute to
   samples/sum/min/max). *)

module Hist = struct
  let sub = 16
  let min_exp = -30 (* ~9.3e-10 *)
  let max_exp = 34 (* ~1.7e10 *)
  let buckets = (max_exp - min_exp) * sub

  type t = {
    mutable samples : int;
    mutable sum : float;
    mutable hmin : float;
    mutable hmax : float;
    mutable last : float;
    mutable last_seq : int;  (* global write sequence; merge keeps the newest *)
    mutable nonpos : int;  (* samples <= 0, kept out of the log buckets *)
    counts : int array;
  }

  let create () =
    {
      samples = 0;
      sum = 0.0;
      hmin = infinity;
      hmax = neg_infinity;
      last = 0.0;
      last_seq = 0;
      nonpos = 0;
      counts = Array.make buckets 0;
    }

  let index v =
    (* v > 0 *)
    let i = int_of_float (Float.floor (Float.log2 v *. float_of_int sub)) - (min_exp * sub) in
    if i < 0 then 0 else if i >= buckets then buckets - 1 else i

  (* Lower bound of bucket [i]; bucket [i] covers [bound i, bound (i+1)). *)
  let bound i = Float.pow 2.0 (float_of_int ((min_exp * sub) + i) /. float_of_int sub)

  let add ?(seq = 0) h v =
    h.samples <- h.samples + 1;
    h.sum <- h.sum +. v;
    if v < h.hmin then h.hmin <- v;
    if v > h.hmax then h.hmax <- v;
    h.last <- v;
    h.last_seq <- seq;
    if v > 0.0 then begin
      let i = index v in
      h.counts.(i) <- h.counts.(i) + 1
    end
    else h.nonpos <- h.nonpos + 1

  let merge_into ~into h =
    into.samples <- into.samples + h.samples;
    into.sum <- into.sum +. h.sum;
    if h.hmin < into.hmin then into.hmin <- h.hmin;
    if h.hmax > into.hmax then into.hmax <- h.hmax;
    if h.last_seq >= into.last_seq then begin
      into.last <- h.last;
      into.last_seq <- h.last_seq
    end;
    into.nonpos <- into.nonpos + h.nonpos;
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) h.counts
end

type histogram = {
  samples : int;
  sum : float;
  hmin : float;
  hmax : float;
  last : float;
  nonpos : int;
  counts : int array;
}

let snapshot_hist (h : Hist.t) =
  {
    samples = h.Hist.samples;
    sum = h.Hist.sum;
    hmin = h.Hist.hmin;
    hmax = h.Hist.hmax;
    last = h.Hist.last;
    nonpos = h.Hist.nonpos;
    counts = Array.copy h.Hist.counts;
  }

let mean h = if h.samples = 0 then 0.0 else h.sum /. float_of_int h.samples

(* Value of the [j]-th order statistic (0-based), reconstructed from
   the bucket counts with linear interpolation inside the bucket and
   clamped to the recorded extrema. *)
let value_at_rank h j =
  let clamp v = Float.min h.hmax (Float.max h.hmin v) in
  if j < h.nonpos then clamp h.hmin (* non-positive samples sort first *)
  else begin
    let j = j - h.nonpos in
    let rec walk i cum =
      if i >= Hist.buckets then clamp h.hmax
      else begin
        let c = h.counts.(i) in
        if j < cum + c then begin
          let lo = Hist.bound i and hi = Hist.bound (i + 1) in
          let frac = (float_of_int (j - cum) +. 0.5) /. float_of_int c in
          clamp (lo +. (frac *. (hi -. lo)))
        end
        else walk (i + 1) (cum + c)
      end
    in
    walk 0 0
  end

let quantile h p =
  if h.samples = 0 then 0.0
  else if p <= 0.0 then h.hmin
  else if p >= 100.0 then h.hmax
  else begin
    (* Same rank convention as Stats.percentile: linear interpolation
       between the two order statistics straddling p. *)
    let rank = p /. 100.0 *. float_of_int (h.samples - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (h.samples - 1) in
    let frac = rank -. float_of_int lo in
    let vlo = value_at_rank h lo in
    let vhi = if hi = lo then vlo else value_at_rank h hi in
    vlo +. (frac *. (vhi -. vlo))
  end

(* ------------------------------------------------------------------ *)
(* Registry.

   Multicore design: metric tables are sharded per domain.  Each
   domain that emits a metric owns a shard (counters / gauges /
   histogram accumulators) guarded by its own mutex; the shard mutex
   is only ever contended by a snapshot, so the hot path pays an
   uncontended lock instead of fighting every other domain for one
   global mutex and its cache line.  Snapshots take the registry lock
   (shard list + completed roots), then each shard's lock in turn, and
   merge deterministically:

   - counters sum across shards (order-independent);
   - histograms sum samples/sums/bucket counts, combine extrema, and
     keep the [last] written under the highest global sequence number;
   - gauges keep the value with the highest global sequence number
     (last-writer-wins, as with the old single-table registry).

   Merged snapshots are name-sorted, so at any job count the same work
   yields the same counters and histogram contents.

   A reset bumps [generation] and empties the shard list; live domains
   notice their cached shard is stale on the next write and register a
   fresh one, so no lock is ever required on a pure metric write apart
   from the shard's own.  The open-span stack stays per-domain (DLS);
   [on] is read unguarded — a torn read merely drops or admits a
   sample at the enable/disable boundary. *)

type shard = {
  slock : Mutex.t;
  scounters : (string, int ref) Hashtbl.t;
  sgauges : (string, (float * int) ref) Hashtbl.t;  (* value, write seq *)
  shists : (string, Hist.t) Hashtbl.t;
}

(* An open span being timed: children accumulate in reverse. *)
type frame = {
  fname : string;
  fattrs : attr list;
  fstart : float;
  fgc : Gc.stat option;  (* quick_stat at entry when GC accounting is on *)
  mutable fchildren : span list;
}

type registry = {
  mutable on : bool;
  mutable clock : unit -> float;
  mutable epoch : float;
  mutable roots : span list;  (** completed top-level spans, reversed *)
  mutable shards : shard list;
  mutable generation : int;
}

let default_clock = Unix.gettimeofday

let reg =
  { on = false; clock = default_clock; epoch = 0.0; roots = []; shards = []; generation = 0 }

let lock = Mutex.create ()
let locked f = Mutex.lock lock; Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Global write sequence for last-writer-wins merges (gauges and the
   histogram [last] field).  One fetch-and-add per gauge/observe —
   still far cheaper than a contended mutex. *)
let write_seq = Atomic.make 1

let new_shard () =
  {
    slock = Mutex.create ();
    scounters = Hashtbl.create 32;
    sgauges = Hashtbl.create 16;
    shists = Hashtbl.create 16;
  }

let shard_key : (int * shard) option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let my_shard () =
  let cell = Domain.DLS.get shard_key in
  match !cell with
  | Some (gen, s) when gen = reg.generation -> s
  | _ ->
      let s = new_shard () in
      let gen =
        locked (fun () ->
            reg.shards <- s :: reg.shards;
            reg.generation)
      in
      cell := Some (gen, s);
      s

let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let stack () = Domain.DLS.get stack_key

let enabled () = reg.on

let clear_data () =
  (stack ()) := [];
  locked (fun () ->
      reg.roots <- [];
      reg.shards <- [];
      reg.generation <- reg.generation + 1);
  (Domain.DLS.get shard_key) := None;
  reg.epoch <- reg.clock ()

let enable () =
  reg.on <- true;
  reg.epoch <- reg.clock ()

let disable () = reg.on <- false

let reset () = clear_data ()

let set_clock clock =
  reg.clock <- clock;
  reg.epoch <- clock ()

let now_rel () = reg.clock () -. reg.epoch
let now_s = now_rel

(* The three write paths below sit inside every pool lane's hot loop,
   so they avoid closure and option allocation: straight-line
   lock/find/unlock, with [Not_found] as the miss path (misses only
   ever allocate on a metric's first write).  The table mutations
   cannot raise, so no [Fun.protect] is needed to keep the shard lock
   balanced. *)

let count ?(n = 1) name =
  if reg.on then begin
    let s = my_shard () in
    Mutex.lock s.slock;
    (match Hashtbl.find s.scounters name with
    | r -> r := !r + n
    | exception Not_found -> Hashtbl.add s.scounters name (ref n));
    Mutex.unlock s.slock
  end

let set_gauge name v =
  if reg.on then begin
    let seq = Atomic.fetch_and_add write_seq 1 in
    let s = my_shard () in
    Mutex.lock s.slock;
    (match Hashtbl.find s.sgauges name with
    | r -> r := (v, seq)
    | exception Not_found -> Hashtbl.add s.sgauges name (ref (v, seq)));
    Mutex.unlock s.slock
  end

let observe name v =
  if reg.on then begin
    let seq = Atomic.fetch_and_add write_seq 1 in
    let s = my_shard () in
    Mutex.lock s.slock;
    let h =
      match Hashtbl.find s.shists name with
      | h -> h
      | exception Not_found ->
          let h = Hist.create () in
          Hashtbl.add s.shists name h;
          h
    in
    Hist.add ~seq h v;
    Mutex.unlock s.slock
  end

(* ---------------- spans ---------------- *)

let gc_attrs (g0 : Gc.stat) =
  let g1 = Gc.quick_stat () in
  [
    ("gc.minor_words", Printf.sprintf "%.0f" (g1.Gc.minor_words -. g0.Gc.minor_words));
    ("gc.promoted_words", Printf.sprintf "%.0f" (g1.Gc.promoted_words -. g0.Gc.promoted_words));
    ( "gc.minor_collections",
      string_of_int (g1.Gc.minor_collections - g0.Gc.minor_collections) );
    ( "gc.major_collections",
      string_of_int (g1.Gc.major_collections - g0.Gc.major_collections) );
  ]

let finish_frame f =
  let dur = now_rel () -. f.fstart in
  let attrs = match f.fgc with None -> f.fattrs | Some g0 -> f.fattrs @ gc_attrs g0 in
  let span =
    { name = f.fname; attrs; start_s = f.fstart; dur_s = dur; children = List.rev f.fchildren }
  in
  match !(stack ()) with
  | parent :: _ -> parent.fchildren <- span :: parent.fchildren
  | [] -> locked (fun () -> reg.roots <- span :: reg.roots)

let with_span ?(attrs = []) ?(gc = false) name f =
  if not reg.on then f ()
  else begin
    let stack = stack () in
    let frame =
      {
        fname = name;
        fattrs = attrs;
        fstart = now_rel ();
        fgc = (if gc then Some (Gc.quick_stat ()) else None);
        fchildren = [];
      }
    in
    stack := frame :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | top :: rest when top == frame -> stack := rest
        | frames ->
            (* Mismatched nesting can only come from a [with_span] body
               capturing and resuming continuations — drop down to the
               matching frame rather than corrupt the tree. *)
            let rec unwind = function
              | top :: rest when top == frame -> rest
              | _ :: rest -> unwind rest
              | [] -> []
            in
            stack := unwind frames);
        finish_frame frame)
      f
  end

(* ---------------- snapshots ---------------- *)

let shards_snapshot () = locked (fun () -> reg.shards)

let fold_shards f init =
  List.fold_left
    (fun acc s ->
      Mutex.lock s.slock;
      Fun.protect ~finally:(fun () -> Mutex.unlock s.slock) (fun () -> f acc s))
    init (shards_snapshot ())

let sorted_bindings l = List.sort (fun (a, _) (b, _) -> compare a b) l

let counters () =
  let tbl = Hashtbl.create 32 in
  fold_shards
    (fun () s ->
      Hashtbl.iter
        (fun k r ->
          match Hashtbl.find_opt tbl k with
          | Some acc -> acc := !acc + !r
          | None -> Hashtbl.add tbl k (ref !r))
        s.scounters)
    ();
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [] |> sorted_bindings

let counter name =
  fold_shards
    (fun acc s -> acc + Option.fold ~none:0 ~some:( ! ) (Hashtbl.find_opt s.scounters name))
    0

let gauges () =
  let tbl = Hashtbl.create 16 in
  fold_shards
    (fun () s ->
      Hashtbl.iter
        (fun k r ->
          let v, seq = !r in
          match Hashtbl.find_opt tbl k with
          | Some acc when snd !acc >= seq -> ()
          | Some acc -> acc := (v, seq)
          | None -> Hashtbl.add tbl k (ref (v, seq)))
        s.sgauges)
    ();
  Hashtbl.fold (fun k r acc -> (k, fst !r) :: acc) tbl [] |> sorted_bindings

let histograms () =
  let tbl : (string, Hist.t) Hashtbl.t = Hashtbl.create 16 in
  fold_shards
    (fun () s ->
      Hashtbl.iter
        (fun k h ->
          match Hashtbl.find_opt tbl k with
          | Some into -> Hist.merge_into ~into h
          | None ->
              let into = Hist.create () in
              Hist.merge_into ~into h;
              Hashtbl.add tbl k into)
        s.shists)
    ();
  Hashtbl.fold (fun k h acc -> (k, snapshot_hist h) :: acc) tbl [] |> sorted_bindings

let spans () = locked (fun () -> List.rev reg.roots)

let span_self_s s =
  Float.max 0.0 (s.dur_s -. List.fold_left (fun acc c -> acc +. c.dur_s) 0.0 s.children)

let rec fold_spans f acc spans =
  List.fold_left (fun acc s -> fold_spans f (f acc s) s.children) acc spans

let pp_spans ppf spans =
  let rec pp depth s =
    Format.fprintf ppf "%s%-*s %10.3f ms%s@," (String.make (2 * depth) ' ')
      (32 - (2 * depth)) s.name (1e3 *. s.dur_s)
      (match s.attrs with
      | [] -> ""
      | attrs ->
          "  [" ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs) ^ "]");
    List.iter (pp (depth + 1)) s.children
  in
  Format.fprintf ppf "@[<v>";
  List.iter (pp 0) spans;
  Format.fprintf ppf "@]"
