type attr = string * string

type span = {
  name : string;
  attrs : attr list;
  start_s : float;
  dur_s : float;
  children : span list;
}

type histogram = { samples : int; sum : float; hmin : float; hmax : float; last : float }

(* An open span being timed: children accumulate in reverse. *)
type frame = { fname : string; fattrs : attr list; fstart : float; mutable fchildren : span list }

(* Domain safety: the registry is process-global while spans and
   metrics may now be emitted from pool worker domains
   (Orianna_par).  Metric tables and the completed-span roots are
   guarded by [lock]; the open-span stack is per-domain (DLS) so each
   domain builds its own span tree and nesting never interleaves
   across domains.  [on] is read unguarded — a torn read merely drops
   or admits a sample at the enable/disable boundary. *)

type registry = {
  mutable on : bool;
  mutable clock : unit -> float;
  mutable epoch : float;
  mutable roots : span list;  (** completed top-level spans, reversed *)
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, histogram ref) Hashtbl.t;
}

let default_clock = Unix.gettimeofday

let reg =
  {
    on = false;
    clock = default_clock;
    epoch = 0.0;
    roots = [];
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let lock = Mutex.create ()
let locked f = Mutex.lock lock; Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let stack () = Domain.DLS.get stack_key

let enabled () = reg.on

let clear_data () =
  (stack ()) := [];
  locked (fun () ->
      reg.roots <- [];
      Hashtbl.reset reg.counters;
      Hashtbl.reset reg.gauges;
      Hashtbl.reset reg.histograms);
  reg.epoch <- reg.clock ()

let enable () =
  reg.on <- true;
  reg.epoch <- reg.clock ()

let disable () = reg.on <- false

let reset () = clear_data ()

let set_clock clock =
  reg.clock <- clock;
  reg.epoch <- clock ()

let now_rel () = reg.clock () -. reg.epoch

let finish_frame f =
  let dur = now_rel () -. f.fstart in
  let span =
    { name = f.fname; attrs = f.fattrs; start_s = f.fstart; dur_s = dur; children = List.rev f.fchildren }
  in
  match !(stack ()) with
  | parent :: _ -> parent.fchildren <- span :: parent.fchildren
  | [] -> locked (fun () -> reg.roots <- span :: reg.roots)

let with_span ?(attrs = []) name f =
  if not reg.on then f ()
  else begin
    let stack = stack () in
    let frame = { fname = name; fattrs = attrs; fstart = now_rel (); fchildren = [] } in
    stack := frame :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | top :: rest when top == frame -> stack := rest
        | frames ->
            (* Mismatched nesting can only come from a [with_span] body
               capturing and resuming continuations — drop down to the
               matching frame rather than corrupt the tree. *)
            let rec unwind = function
              | top :: rest when top == frame -> rest
              | _ :: rest -> unwind rest
              | [] -> []
            in
            stack := unwind frames);
        finish_frame frame)
      f
  end

let count ?(n = 1) name =
  if reg.on then
    locked (fun () ->
        match Hashtbl.find_opt reg.counters name with
        | Some r -> r := !r + n
        | None -> Hashtbl.add reg.counters name (ref n))

let set_gauge name v =
  if reg.on then
    locked (fun () ->
        match Hashtbl.find_opt reg.gauges name with
        | Some r -> r := v
        | None -> Hashtbl.add reg.gauges name (ref v))

let observe name v =
  if reg.on then
    locked (fun () ->
        match Hashtbl.find_opt reg.histograms name with
        | Some r ->
            let h = !r in
            r :=
              {
                samples = h.samples + 1;
                sum = h.sum +. v;
                hmin = Float.min h.hmin v;
                hmax = Float.max h.hmax v;
                last = v;
              }
        | None ->
            Hashtbl.add reg.histograms name (ref { samples = 1; sum = v; hmin = v; hmax = v; last = v }))

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters () =
  locked (fun () -> sorted_bindings reg.counters |> List.map (fun (k, r) -> (k, !r)))

let counter name =
  locked (fun () -> Option.fold ~none:0 ~some:( ! ) (Hashtbl.find_opt reg.counters name))

let gauges () =
  locked (fun () -> sorted_bindings reg.gauges |> List.map (fun (k, r) -> (k, !r)))

let histograms () =
  locked (fun () -> sorted_bindings reg.histograms |> List.map (fun (k, r) -> (k, !r)))

let mean h = if h.samples = 0 then 0.0 else h.sum /. float_of_int h.samples

let spans () = locked (fun () -> List.rev reg.roots)

let span_self_s s =
  Float.max 0.0 (s.dur_s -. List.fold_left (fun acc c -> acc +. c.dur_s) 0.0 s.children)

let rec fold_spans f acc spans =
  List.fold_left (fun acc s -> fold_spans f (f acc s) s.children) acc spans

let pp_spans ppf spans =
  let rec pp depth s =
    Format.fprintf ppf "%s%-*s %10.3f ms%s@," (String.make (2 * depth) ' ')
      (32 - (2 * depth)) s.name (1e3 *. s.dur_s)
      (match s.attrs with
      | [] -> ""
      | attrs ->
          "  [" ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs) ^ "]");
    List.iter (pp (depth + 1)) s.children
  in
  Format.fprintf ppf "@[<v>";
  List.iter (pp 0) spans;
  Format.fprintf ppf "@]"
