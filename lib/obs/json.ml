type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> number buf x
  | Str s -> escape buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parser: plain recursive descent over a cursor.                      *)

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue_ = ref true in
  while !continue_ do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue_ := false
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some ('"' | '\\' | '/') ->
            Buffer.add_char buf c.src.[c.pos];
            advance c;
            go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
            let code = int_of_string ("0x" ^ String.sub c.src c.pos 4) in
            c.pos <- c.pos + 4;
            (* Escaped control characters are all we ever emit; decode
               the BMP code point as UTF-8 for completeness. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let continue_ = ref true in
  while !continue_ do
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> advance c
    | _ -> continue_ := false
  done;
  if c.pos = start then fail c "expected number";
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some x -> x
  | None -> fail c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let continue_ = ref true in
        while !continue_ do
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (key, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c
          | Some '}' ->
              advance c;
              continue_ := false
          | _ -> fail c "expected ',' or '}'"
        done;
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        Arr []
      end
      else begin
        let items = ref [] in
        let continue_ = ref true in
        while !continue_ do
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c
          | Some ']' ->
              advance c;
              continue_ := false
          | _ -> fail c "expected ',' or ']'"
        done;
        Arr (List.rev !items)
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
