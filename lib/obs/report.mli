(** Flat JSON run report: a machine-readable snapshot of the {!Obs}
    registry — counters, gauges, histogram summaries and the span
    forest — for regression dashboards and scripted comparison of
    runs ([jq .counters] and friends). *)

val to_json : ?meta:(string * string) list -> unit -> Json.t
(** Snapshot the current registry. [meta] lands as a string-valued
    object under ["meta"] (app name, seed, policy, ...). *)

val to_string : ?meta:(string * string) list -> unit -> string

val write_file : ?meta:(string * string) list -> string -> unit
