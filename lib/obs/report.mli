(** Flat JSON run report: a machine-readable snapshot of the {!Obs}
    registry — counters, gauges, histogram summaries and the span
    forest — for regression dashboards and scripted comparison of
    runs ([jq .counters] and friends). *)

val to_json : ?meta:(string * string) list -> ?extra:(string * Json.t) list -> unit -> Json.t
(** Snapshot the current registry. [meta] lands as a string-valued
    object under ["meta"] (app name, seed, policy, ...); [extra]
    fields are appended verbatim at the top level — the hook through
    which domain reports (the serving runtime's campaign summary, the
    profile subcommand's pipeline numbers) share this one
    machine-readable shape. *)

val to_string : ?meta:(string * string) list -> ?extra:(string * Json.t) list -> unit -> string

val write_file : ?meta:(string * string) list -> ?extra:(string * Json.t) list -> string -> unit
