(** Flat JSON run report: a machine-readable snapshot of the {!Obs}
    registry — counters, gauges, histogram summaries and the span
    forest — for regression dashboards and scripted comparison of
    runs ([jq .counters] and friends). *)

val git_rev : unit -> string
(** Current git revision, resolved without a subprocess:
    [ORIANNA_GIT_REV] / [GITHUB_SHA] from the environment if set,
    otherwise a [.git/HEAD] walk upward from the working directory;
    ["unknown"] when neither works. *)

val iso8601 : float -> string
(** Unix timestamp as ["YYYY-MM-DDTHH:MM:SSZ"] (UTC). *)

val standard_meta : ?extra:(string * string) list -> jobs:int -> unit -> (string * string) list
(** The provenance header every machine-readable artifact carries:
    [extra] fields first, then [git_rev], [jobs], [domains]
    (recommended domain count), [ocaml_version] and an ISO-8601
    [timestamp].  Emit it only at the top level of an artifact so the
    payload sections stay byte-diffable across job counts. *)

val meta_json : (string * string) list -> Json.t
(** A meta list as a string-valued JSON object. *)

val to_json : ?meta:(string * string) list -> ?extra:(string * Json.t) list -> unit -> Json.t
(** Snapshot the current registry. [meta] lands as a string-valued
    object under ["meta"] (app name, seed, policy, ...); [extra]
    fields are appended verbatim at the top level — the hook through
    which domain reports (the serving runtime's campaign summary, the
    profile subcommand's pipeline numbers) share this one
    machine-readable shape. *)

val to_string : ?meta:(string * string) list -> ?extra:(string * Json.t) list -> unit -> string

val write_file : ?meta:(string * string) list -> ?extra:(string * Json.t) list -> string -> unit
