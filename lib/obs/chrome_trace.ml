type event =
  | Duration of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts_us : float;
      dur_us : float;
      args : (string * Json.t) list;
    }
  | Instant of { name : string; cat : string; pid : int; tid : int; ts_us : float }
  | Counter of { name : string; pid : int; ts_us : float; series : (string * float) list }
  | Thread_name of { pid : int; tid : int; name : string }
  | Process_name of { pid : int; name : string }

let event_json = function
  | Duration { name; cat; pid; tid; ts_us; dur_us; args } ->
      Json.Obj
        ([
           ("name", Json.Str name);
           ("cat", Json.Str cat);
           ("ph", Json.Str "X");
           ("pid", Json.int pid);
           ("tid", Json.int tid);
           ("ts", Json.Num ts_us);
           ("dur", Json.Num dur_us);
         ]
        @ if args = [] then [] else [ ("args", Json.Obj args) ])
  | Instant { name; cat; pid; tid; ts_us } ->
      Json.Obj
        [
          ("name", Json.Str name);
          ("cat", Json.Str cat);
          ("ph", Json.Str "i");
          ("s", Json.Str "t");
          ("pid", Json.int pid);
          ("tid", Json.int tid);
          ("ts", Json.Num ts_us);
        ]
  | Counter { name; pid; ts_us; series } ->
      Json.Obj
        [
          ("name", Json.Str name);
          ("ph", Json.Str "C");
          ("pid", Json.int pid);
          ("tid", Json.int 0);
          ("ts", Json.Num ts_us);
          ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) series));
        ]
  | Thread_name { pid; tid; name } ->
      Json.Obj
        [
          ("name", Json.Str "thread_name");
          ("ph", Json.Str "M");
          ("pid", Json.int pid);
          ("tid", Json.int tid);
          ("args", Json.Obj [ ("name", Json.Str name) ]);
        ]
  | Process_name { pid; name } ->
      Json.Obj
        [
          ("name", Json.Str "process_name");
          ("ph", Json.Str "M");
          ("pid", Json.int pid);
          ("tid", Json.int 0);
          ("args", Json.Obj [ ("name", Json.Str name) ]);
        ]

let to_json events =
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map event_json events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string events = Json.to_string (to_json events)

let spans_pid = 0

let of_spans ?(pid = spans_pid) ?(tid = 0) spans =
  let rec events acc (s : Obs.span) =
    let acc =
      Duration
        {
          name = s.name;
          cat = "span";
          pid;
          tid;
          ts_us = 1e6 *. s.start_s;
          dur_us = 1e6 *. s.dur_s;
          args = List.map (fun (k, v) -> (k, Json.Str v)) s.attrs;
        }
      :: acc
    in
    List.fold_left events acc s.children
  in
  Process_name { pid; name = "pipeline" } :: List.rev (List.fold_left events [] spans)

let write_file path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string events))
