let rec span_json (s : Obs.span) =
  Json.Obj
    ([
       ("name", Json.Str s.name);
       ("start_s", Json.Num s.start_s);
       ("dur_s", Json.Num s.dur_s);
     ]
    @ (if s.attrs = [] then []
       else [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.attrs)) ])
    @ if s.children = [] then [] else [ ("children", Json.Arr (List.map span_json s.children)) ])

let histogram_json (h : Obs.histogram) =
  Json.Obj
    [
      ("samples", Json.int h.samples);
      ("sum", Json.Num h.sum);
      ("mean", Json.Num (Obs.mean h));
      ("min", Json.Num h.hmin);
      ("max", Json.Num h.hmax);
      ("last", Json.Num h.last);
      ("p50", Json.Num (Obs.quantile h 50.0));
      ("p90", Json.Num (Obs.quantile h 90.0));
      ("p99", Json.Num (Obs.quantile h 99.0));
    ]

(* ------------------------------------------------------------------ *)
(* Standard report metadata.

   Every machine-readable artifact (BENCH_*.json, the CLI's --json
   reports) carries the same provenance header: git revision, job
   count, the machine's recommended domain count, the OCaml version
   and an ISO-8601 timestamp.  It lives only at the top level of each
   artifact so the payload sections below it stay byte-diffable across
   job counts and machines. *)

let read_first_line path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
      close_in ic;
      line

(* Resolve HEAD without spawning a subprocess: environment overrides
   first (CI exports GITHUB_SHA), then a .git/HEAD walk upward from
   the working directory. *)
let git_rev () =
  match (Sys.getenv_opt "ORIANNA_GIT_REV", Sys.getenv_opt "GITHUB_SHA") with
  | Some r, _ | None, Some r -> r
  | None, None -> (
      let rec find_git dir depth =
        if depth > 6 then None
        else begin
          let head = Filename.concat dir ".git/HEAD" in
          if Sys.file_exists head then Some (dir, head)
          else begin
            let parent = Filename.dirname dir in
            if parent = dir then None else find_git parent (depth + 1)
          end
        end
      in
      match find_git (Sys.getcwd ()) 0 with
      | None -> "unknown"
      | Some (dir, head) -> (
          match read_first_line head with
          | None -> "unknown"
          | Some line ->
              let prefix = "ref: " in
              if String.length line > String.length prefix
                 && String.sub line 0 (String.length prefix) = prefix
              then begin
                let ref_path =
                  Filename.concat dir
                    (Filename.concat ".git"
                       (String.sub line (String.length prefix)
                          (String.length line - String.length prefix)))
                in
                Option.value ~default:"unknown" (read_first_line ref_path)
              end
              else line))

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let standard_meta ?(extra = []) ~jobs () =
  extra
  @ [
      ("git_rev", git_rev ());
      ("jobs", string_of_int jobs);
      ("domains", string_of_int (Domain.recommended_domain_count ()));
      ("ocaml_version", Sys.ocaml_version);
      ("timestamp", iso8601 (Unix.gettimeofday ()));
    ]

let meta_json meta = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) meta)

let to_json ?(meta = []) ?(extra = []) () =
  Json.Obj
    ([
       ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) meta));
       ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) (Obs.counters ())));
       ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) (Obs.gauges ())));
       ("histograms", Json.Obj (List.map (fun (k, h) -> (k, histogram_json h)) (Obs.histograms ())));
       ("spans", Json.Arr (List.map span_json (Obs.spans ())));
     ]
    @ extra)

let to_string ?meta ?extra () = Json.to_string (to_json ?meta ?extra ())

let write_file ?meta ?extra path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?meta ?extra ()))
