let rec span_json (s : Obs.span) =
  Json.Obj
    ([
       ("name", Json.Str s.name);
       ("start_s", Json.Num s.start_s);
       ("dur_s", Json.Num s.dur_s);
     ]
    @ (if s.attrs = [] then []
       else [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.attrs)) ])
    @ if s.children = [] then [] else [ ("children", Json.Arr (List.map span_json s.children)) ])

let histogram_json (h : Obs.histogram) =
  Json.Obj
    [
      ("samples", Json.int h.samples);
      ("sum", Json.Num h.sum);
      ("mean", Json.Num (Obs.mean h));
      ("min", Json.Num h.hmin);
      ("max", Json.Num h.hmax);
      ("last", Json.Num h.last);
    ]

let to_json ?(meta = []) ?(extra = []) () =
  Json.Obj
    ([
       ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) meta));
       ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) (Obs.counters ())));
       ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) (Obs.gauges ())));
       ("histograms", Json.Obj (List.map (fun (k, h) -> (k, histogram_json h)) (Obs.histograms ())));
       ("spans", Json.Arr (List.map span_json (Obs.spans ())));
     ]
    @ extra)

let to_string ?meta ?extra () = Json.to_string (to_json ?meta ?extra ())

let write_file ?meta ?extra path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?meta ?extra ()))
