(** A deliberately minimal JSON tree: enough to emit Chrome trace-event
    files and flat run reports, and to parse them back in tests —
    without pulling a JSON dependency into the build. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val int : int -> t
(** Integer-valued {!Num}. *)

val to_string : t -> string
(** Compact (single-line) serialization. Integral floats print without
    a decimal point; strings are escaped per RFC 8259. *)

val to_buffer : Buffer.t -> t -> unit

exception Parse_error of string

val parse : string -> t
(** Recursive-descent parser for the subset this module emits (which
    is all of standard JSON). Raises {!Parse_error} on malformed
    input. *)

val member : string -> t -> t option
(** Field lookup on an {!Obj}; [None] on missing keys or non-objects. *)
