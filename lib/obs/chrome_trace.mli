(** Chrome trace-event JSON writer.

    Produces the JSON-object trace format understood by Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and the legacy
    chrome://tracing viewer: a [traceEvents] array of duration ([ph:X]),
    instant ([ph:i]), counter ([ph:C]) and metadata ([ph:M]) events.
    Timestamps are microseconds; cycle-level producers (the scheduler
    trace) map one cycle to one microsecond, so the viewer's "ms"
    readout is kilocycles. *)

type event =
  | Duration of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts_us : float;
      dur_us : float;
      args : (string * Json.t) list;
    }
  | Instant of { name : string; cat : string; pid : int; tid : int; ts_us : float }
  | Counter of { name : string; pid : int; ts_us : float; series : (string * float) list }
  | Thread_name of { pid : int; tid : int; name : string }
  | Process_name of { pid : int; name : string }

val spans_pid : int
(** The pid under which {!of_spans} places pipeline spans (0); trace
    producers with their own tracks (the scheduler) should use other
    pids. *)

val of_spans : ?pid:int -> ?tid:int -> Obs.span list -> event list
(** One duration event per span (children flattened onto the same
    track — nesting is reconstructed by the viewer from containment),
    preceded by a process-name metadata record. *)

val to_json : event list -> Json.t

val to_string : event list -> string

val write_file : string -> event list -> unit
