(** Lightweight, process-global observability registry: nested timed
    spans, named counters/gauges/histograms.

    The registry is {e off by default} and near-zero-cost while off —
    {!with_span} degrades to a direct call and the metric entry points
    to a single branch — so instrumented hot paths (the compiler, the
    DSE loop, the cycle-level scheduler) cost nothing in benchmarks.
    The [bench --obs-overhead] smoke gates this: the disabled registry
    must cost under 1% of the scheduling hot path.

    Multicore: metric storage is {e sharded per domain}.  A domain's
    counters, gauges and histogram accumulators live in its own shard
    behind a shard-local mutex that is only ever contended by a
    snapshot, so worker domains never fight over a global lock (or its
    cache line) on the metric fast path.  Snapshot accessors merge all
    shards deterministically — counters and histogram contents sum, so
    the same work yields the same snapshot at any job count — and
    return entries sorted by name.  [last]-style fields (gauges, a
    histogram's most recent sample) are resolved last-writer-wins via
    a global write sequence.

    Histograms are log-bucketed ({!Hist.sub} buckets per octave), so
    {!quantile} reads p50/p90/p99 off the bucket counts with a bounded
    relative error of [2^(1/sub) - 1] (~4.4%) against the exact sorted
    percentile.

    Determinism: {!set_clock} injects the time source so tests see
    reproducible timings. Exporters live in {!Chrome_trace} (Perfetto /
    chrome://tracing) and {!Report} (flat JSON). *)

type attr = string * string

type span = {
  name : string;
  attrs : attr list;
  start_s : float;  (** seconds since the registry epoch ({!enable}/{!reset}) *)
  dur_s : float;
  children : span list;  (** in start order *)
}

(** Standalone log-bucketed histogram accumulator — the same structure
    the registry shards use, exposed so other subsystems (the serving
    runtime's latency percentiles) unify on one quantile
    implementation. Not thread-safe; confine one [t] to one domain. *)
module Hist : sig
  val sub : int
  (** Buckets per octave (16): relative quantile error <= 2^(1/sub)-1. *)

  val buckets : int

  type t

  val create : unit -> t

  val add : ?seq:int -> t -> float -> unit
  (** Feed one sample. [seq] orders [last] across merged accumulators;
      standalone users can ignore it. *)

  val merge_into : into:t -> t -> unit

  val bound : int -> float
  (** Lower bound of bucket [i]; bucket [i] covers
      [[bound i, bound (i+1))]. *)
end

type histogram = {
  samples : int;
  sum : float;
  hmin : float;
  hmax : float;
  last : float;  (** most recent observation *)
  nonpos : int;  (** samples [<= 0], kept out of the log buckets *)
  counts : int array;  (** log-bucket occupancy; see {!Hist.bound} *)
}

val snapshot_hist : Hist.t -> histogram
(** Immutable snapshot of a standalone accumulator. *)

val quantile : histogram -> float -> float
(** [quantile h p] for [p] in [[0, 100]], following
    [Stats.percentile]'s rank convention (linear interpolation between
    order statistics), reconstructed from the log buckets and clamped
    to the recorded extrema.  Relative error vs the exact sorted
    percentile is bounded by one bucket width (~4.4%). *)

val enabled : unit -> bool

val enable : unit -> unit
(** Turn collection on and restart the epoch. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop all collected data (spans, counters, gauges, histograms) and
    restart the epoch; the enabled state and clock are kept.  Domains
    that emitted metrics before the reset re-register fresh shards on
    their next write. *)

val set_clock : (unit -> float) -> unit
(** Replace the wall-clock source (default [Unix.gettimeofday]) — the
    injection point for reproducible timings in tests. Resets the
    epoch. *)

val now_s : unit -> float
(** Seconds since the registry epoch, on the injected clock.  Trace
    producers (the domain pool) use this so their events share the
    span timeline. *)

val with_span : ?attrs:attr list -> ?gc:bool -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f] as a span nested under the innermost
    open span. The span is recorded even if [f] raises. When the
    registry is disabled this is exactly [f ()].  With [~gc:true] the
    span additionally records [Gc.quick_stat] deltas over [f] as
    attributes ([gc.minor_words], [gc.promoted_words],
    [gc.minor_collections], [gc.major_collections]) — minor-heap
    figures are per-domain in OCaml 5, so they attribute allocation to
    the domain running the span. *)

val count : ?n:int -> string -> unit
(** Add [n] (default 1) to a named counter. *)

val set_gauge : string -> float -> unit

val observe : string -> float -> unit
(** Feed one sample into a named histogram. *)

val counters : unit -> (string * int) list
(** Name-sorted snapshot, summed across all domain shards. *)

val counter : string -> int
(** One counter's value; 0 if never touched. *)

val gauges : unit -> (string * float) list

val histograms : unit -> (string * histogram) list

val mean : histogram -> float

val spans : unit -> span list
(** Completed top-level spans, in start order. Spans still open are
    not included. *)

val span_self_s : span -> float
(** Duration not covered by child spans. *)

val fold_spans : ('a -> span -> 'a) -> 'a -> span list -> 'a
(** Pre-order fold over a span forest. *)

val pp_spans : Format.formatter -> span list -> unit
(** Indented span tree with millisecond durations. *)
