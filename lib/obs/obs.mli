(** Lightweight, process-global observability registry: nested timed
    spans, named counters/gauges/histograms.

    The registry is {e off by default} and near-zero-cost while off —
    {!with_span} degrades to a direct call and the metric entry points
    to a single branch — so instrumented hot paths (the compiler, the
    DSE loop, the cycle-level scheduler) cost nothing in benchmarks.

    Determinism: all snapshot accessors return entries sorted by name,
    and {!set_clock} injects the time source so tests see reproducible
    timings. Exporters live in {!Chrome_trace} (Perfetto /
    chrome://tracing) and {!Report} (flat JSON). *)

type attr = string * string

type span = {
  name : string;
  attrs : attr list;
  start_s : float;  (** seconds since the registry epoch ({!enable}/{!reset}) *)
  dur_s : float;
  children : span list;  (** in start order *)
}

type histogram = {
  samples : int;
  sum : float;
  hmin : float;
  hmax : float;
  last : float;  (** most recent observation *)
}

val enabled : unit -> bool

val enable : unit -> unit
(** Turn collection on and restart the epoch. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop all collected data (spans, counters, gauges, histograms) and
    restart the epoch; the enabled state and clock are kept. *)

val set_clock : (unit -> float) -> unit
(** Replace the wall-clock source (default [Unix.gettimeofday]) — the
    injection point for reproducible timings in tests. Resets the
    epoch. *)

val with_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f] as a span nested under the innermost
    open span. The span is recorded even if [f] raises. When the
    registry is disabled this is exactly [f ()]. *)

val count : ?n:int -> string -> unit
(** Add [n] (default 1) to a named counter. *)

val set_gauge : string -> float -> unit

val observe : string -> float -> unit
(** Feed one sample into a named histogram. *)

val counters : unit -> (string * int) list
(** Name-sorted snapshot. *)

val counter : string -> int
(** One counter's value; 0 if never touched. *)

val gauges : unit -> (string * float) list

val histograms : unit -> (string * histogram) list

val mean : histogram -> float

val spans : unit -> span list
(** Completed top-level spans, in start order. Spans still open are
    not included. *)

val span_self_s : span -> float
(** Duration not covered by child spans. *)

val fold_spans : ('a -> span -> 'a) -> 'a -> span list -> 'a
(** Pre-order fold over a span forest. *)

val pp_spans : Format.formatter -> span list -> unit
(** Indented span tree with millisecond durations. *)
