(* ORIANNA benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (the experiment index of DESIGN.md): Tbl. 1/4/5, Figs. 13-20 and
   the Sec. 7.3 latency breakdown, printed as text tables with the
   paper's reported numbers alongside.

   Part 2 runs Bechamel micro-benchmarks of the kernels the whole
   system is built from: Lie-group maps, small QR, factor
   linearization, variable elimination, compilation and cycle-level
   simulation. *)

open Bechamel
open Toolkit
open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_factors
open Orianna_util
module App = Orianna_apps.App
module Compile = Orianna_compiler.Compile
module Schedule = Orianna_sim.Schedule
module Accel = Orianna_hw.Accel

(* ------------------------------------------------------------------ *)
(* Micro-benchmark fixtures (built once, outside the timed regions).   *)

let rng = Rng.of_int 987

(* Shared provenance header for every BENCH_*.json artifact.  It is
   the only job-count- or machine-dependent part of the files, and it
   lives at the top level only, so the payload sections still diff
   byte-for-byte across job counts (CI strips "meta" before
   comparing). *)
let bench_meta () =
  Orianna_obs.Report.meta_json
    (Orianna_obs.Report.standard_meta ~jobs:(Orianna_par.Pool.default_jobs ()) ())

let m8 = Mat.random rng 8 8
let m24x13 = Mat.random rng 24 13
let phi = [| 0.3; -0.2; 0.5 |]
let rot = So3.exp phi

let between =
  Pose_factors.between3 ~name:"b" ~a:"a" ~b:"b"
    ~z:(Pose3.of_phi_t [| 0.0; 0.1; 0.0 |] [| 1.0; 0.0; 0.0 |])
    ~sigma:0.1

let between_lookup =
  let pa = Pose3.of_phi_t [| 0.1; 0.0; 0.2 |] [| 0.5; 0.2; 0.0 |] in
  let pb = Pose3.of_phi_t [| 0.0; 0.1; 0.3 |] [| 1.4; 0.3; 0.1 |] in
  function "a" -> Var.Pose3 pa | _ -> Var.Pose3 pb

let loc_graph = App.mobile_robot.App.graphs (Rng.of_int 11) |> List.assoc "localization"
let loc_order =
  Ordering.compute Ordering.Min_degree ~vars:(Graph.variables loc_graph)
    ~factor_scopes:(Graph.factor_scopes loc_graph)
let loc_lin = Graph.linearize loc_graph

let app_graphs = App.mobile_robot.App.graphs (Rng.of_int 12)
let app_program = Compile.compile_application app_graphs
let accel = Accel.base ()

let tests =
  Test.make_grouped ~name:"orianna"
    [
      Test.make ~name:"mat-mul-8x8" (Staged.stage (fun () -> ignore (Mat.mul m8 m8)));
      Test.make ~name:"qr-24x13" (Staged.stage (fun () -> ignore (Qr.triangularize m24x13)));
      Test.make ~name:"so3-exp" (Staged.stage (fun () -> ignore (So3.exp phi)));
      Test.make ~name:"so3-log" (Staged.stage (fun () -> ignore (So3.log rot)));
      Test.make ~name:"so3-jr-inv" (Staged.stage (fun () -> ignore (So3.jr_inv phi)));
      Test.make ~name:"between-linearize"
        (Staged.stage (fun () -> ignore (Factor.linearize between between_lookup)));
      Test.make ~name:"eliminate-localization"
        (Staged.stage (fun () ->
             ignore (Elimination.solve ~order:loc_order ~dims:(Graph.dims loc_graph) loc_lin)));
      Test.make ~name:"compile-mobile-robot"
        (Staged.stage (fun () -> ignore (Compile.compile_application app_graphs)));
      Test.make ~name:"interpret-program"
        (Staged.stage (fun () -> ignore (Orianna_isa.Program.run app_program)));
      Test.make ~name:"simulate-ooo"
        (Staged.stage (fun () ->
             ignore (Schedule.run ~accel ~policy:Schedule.Ooo_full app_program)));
      Test.make ~name:"eliminate-cholesky"
        (Staged.stage (fun () ->
             ignore
               (Elimination.solve ~method_:Elimination.Cholesky ~order:loc_order
                  ~dims:(Graph.dims loc_graph) loc_lin)));
      Test.make ~name:"incremental-odometry-update"
        (Staged.stage (fun () ->
             let inc = Incremental.create () in
             Incremental.add_variable inc "a" 3;
             Incremental.add_variable inc "b" 3;
             Incremental.update inc
               [
                 {
                   Linear_system.vars = [ "a" ];
                   blocks = [ ("a", Mat.identity 3) ];
                   rhs = Vec.create 3;
                 };
                 {
                   Linear_system.vars = [ "a"; "b" ];
                   blocks = [ ("a", Mat.neg (Mat.identity 3)); ("b", Mat.identity 3) ];
                   rhs = [| 1.0; 0.0; 0.0 |];
                 };
               ]));
      Test.make ~name:"encode-program"
        (Staged.stage (fun () -> ignore (Orianna_isa.Encode.encode app_program)));
    ]

let run_micro_benchmarks () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "Micro-benchmarks (monotonic clock, ns per run):";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) -> Printf.printf "  %-38s %12.1f ns\n" name ns)
    (List.sort compare !rows);
  print_newline ()

(* Serving-runtime macro-benchmark: one fixed-seed campaign over all
   four applications, summarized to BENCH_serve.json so regressions in
   cache hit rate, latency percentiles or deadline misses diff cleanly
   across commits (the campaign is deterministic — any change in the
   file is a behaviour change, not noise). *)
let emit_serve_bench () =
  let module Serve = Orianna_serve.Serve in
  let module Request = Orianna_serve.Request in
  let trace =
    Request.generate ~rng:(Rng.of_int 42)
      ~shape:(Request.Poisson { rate_hz = 20000.0 })
      ~apps:(List.map (fun (a : App.t) -> a.App.name) App.all)
      ~deadline_s:(1e-3, 4e-3) ~n:300
  in
  let report = Serve.run ~trace () in
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc
    (Orianna_obs.Json.to_string
       (Orianna_obs.Json.Obj
          [ ("meta", bench_meta ()); ("serve", Serve.report_json report) ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "Serving campaign (seed 42, 300 requests, 4 apps) -> %s\n" path;
  Printf.printf "  completed %d/%d, cache hit rate %.3f, p99 %.3f ms, deadline misses %d\n\n"
    report.Serve.completed report.Serve.total
    (Orianna_serve.Cache.hit_rate report.Serve.cache)
    report.Serve.p99_ms report.Serve.deadline_misses

(* Fault-tolerance macro-benchmark: the fleet chaos campaign swept over
   fault intensities (fixed seed, all four applications), summarized to
   BENCH_chaos.json.  The campaign is deterministic at any job count,
   so any diff in the payload is a behaviour change; CI gates the
   fixed-seed serve smoke against ci/chaos_baseline.json separately. *)
let emit_chaos_bench () =
  let module Json = Orianna_obs.Json in
  let module FC = Orianna_fault.Fleet_chaos in
  let apps = List.map (fun (a : App.t) -> a.App.name) App.all in
  let intensities = [ 0.0; 0.05; 0.1; 0.2 ] in
  let silent = ref false in
  Printf.printf "Fleet chaos sweep (seed 42, %d runs x %d requests, 4 apps, retries 2):\n"
    FC.default_config.FC.runs FC.default_config.FC.requests;
  let entries =
    List.map
      (fun intensity ->
        let config = { FC.default_config with FC.apps; intensity } in
        let s = FC.run ~config ~rng:(Rng.of_int 42) () in
        if FC.silent_loss s then silent := true;
        Printf.printf
          "  intensity %.2f: avail %.4f/%.4f (min/mean), done %.4f, p99 %.3f/%.3f/%.3f ms, \
           retries %d, failed %d%s\n"
          intensity s.FC.availability_min s.FC.availability_mean s.FC.completion_mean
          s.FC.p99_min_ms s.FC.p99_mean_ms s.FC.p99_max_ms s.FC.total_retries s.FC.total_failed
          (if s.FC.all_conserved then "" else "  SILENT LOSS");
        (Printf.sprintf "%.2f" intensity, FC.json s))
      intensities
  in
  let path = "BENCH_chaos.json" in
  let oc = open_out path in
  output_string oc
    (Json.to_string
       (Json.Obj
          [ ("meta", bench_meta ()); ("seed", Json.int 42); ("sweep", Json.Obj entries) ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "-> %s\n" path;
  if !silent then begin
    print_endline "CHAOS BENCH: conservation violated (silent request loss)";
    exit 1
  end

(* Streaming-sessions macro-benchmark: the incremental smoother driven
   tick-by-tick over Manhattan streams of growing length, against a
   batch Gauss-Newton re-solve of the full prefix at each length.  MAC
   counts are deterministic (fixed seed, no wall clock), so the
   payload diffs byte-for-byte across commits; the headline is that
   the sliding-window smoother's per-tick cost stays flat as the
   trajectory grows while the batch re-solve cost keeps climbing
   (full-history smoothing sits in between: loop closures against old
   poses drag ever-larger affected sets back in).  Emitted to
   BENCH_sessions.json. *)
let emit_sessions_bench () =
  let module Json = Orianna_obs.Json in
  let module Stream = Orianna_apps.Stream in
  let module Datasets = Orianna_apps.Datasets in
  let lengths = [ 60; 120; 240; 480 ] in
  let feed params stream =
    let sm = Smoother.create ~params () in
    let tick_macs = ref [] and affected = ref [] in
    Array.iter
      (fun tick ->
        ignore (Stream.apply_tick sm tick);
        let (), macs = Macs.measure (fun () -> Smoother.update sm) in
        let st = Smoother.stats sm in
        tick_macs := float_of_int macs :: !tick_macs;
        if st.Smoother.total_variables > 20 then
          affected :=
            (float_of_int st.Smoother.affected_last
            /. float_of_int st.Smoother.total_variables)
            :: !affected)
      stream.Stream.ticks;
    (Array.of_list (List.rev !tick_macs), Array.of_list (List.rev !affected))
  in
  Printf.printf
    "Streaming sessions (Manhattan, seed 7): incremental (full / windowed) vs batch re-solve\n";
  let entries =
    List.map
      (fun steps ->
        let stream =
          Stream.manhattan ~cfg:{ Datasets.default_config with Datasets.steps; seed = 7 } ()
        in
        let full_macs, affected = feed Smoother.default_params stream in
        let win_macs, _ =
          feed { Smoother.default_params with Smoother.window = Some 40 } stream
        in
        let g = Stream.prefix_graph stream ~n:(Stream.length stream) in
        let _, batch_macs = Macs.measure (fun () -> ignore (Optimizer.optimize g)) in
        let med = Stats.median full_macs and wmed = Stats.median win_macs in
        Printf.printf
          "  %4d ticks: per-tick MACs median %9.0f full / %8.0f windowed(40), batch re-solve \
           %10d MACs, median affected %.3f\n"
          (Stream.length stream) med wmed batch_macs (Stats.median affected);
        ( string_of_int (Stream.length stream),
          Json.Obj
            [
              ("ticks", Json.int (Stream.length stream));
              ("incremental_total_macs", Json.Num (Stats.sum full_macs));
              ("incremental_median_tick_macs", Json.Num med);
              ("incremental_p90_tick_macs", Json.Num (Stats.percentile full_macs 90.0));
              ("windowed_total_macs", Json.Num (Stats.sum win_macs));
              ("windowed_median_tick_macs", Json.Num wmed);
              ("windowed_p90_tick_macs", Json.Num (Stats.percentile win_macs 90.0));
              ("batch_solve_macs", Json.int batch_macs);
              ("median_affected_fraction", Json.Num (Stats.median affected));
            ] ))
      lengths
  in
  let path = "BENCH_sessions.json" in
  let oc = open_out path in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("meta", bench_meta ());
            ("seed", Json.int 7);
            ("dataset", Json.Str "manhattan");
            ("lengths", Json.Obj entries);
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "-> %s\n" path

(* Instruction-stream optimizer macro-benchmark: every app compiled at
   O0 (fixed seed, so deterministic), then optimized at O1/O2/O3
   through the measured profile loop on the base accelerator and
   simulated per level, summarized to BENCH_isa_opt.json.  CI gates
   this file against ci/isa_opt_baseline.json: O3 must keep reducing
   cycles by >= 5% on at least two apps and must never schedule any
   app slower than its O0 stream. *)
let emit_isa_opt_bench () =
  let module Json = Orianna_obs.Json in
  let module Program = Orianna_isa.Program in
  let module Opt_loop = Orianna_sim.Opt_loop in
  let policy = Schedule.Ooo_full in
  let entries =
    List.map
      (fun (a : App.t) ->
        let graphs = a.App.graphs (Rng.of_int 42) in
        let p0 = Compile.compile_application ~opt_level:0 graphs in
        let runs =
          List.map
            (fun l ->
              let p = if l = 0 then p0 else Opt_loop.optimize ~accel ~policy ~level:l p0 in
              (l, p, Schedule.run ~accel ~policy p))
            [ 0; 1; 2; 3 ]
        in
        let _, _, r0 = List.nth runs 0 in
        let _, p3, r3 = List.nth runs 3 in
        let i0 = Program.length p0 and i3 = Program.length p3 in
        let instruction_reduction = 1.0 -. (float_of_int i3 /. float_of_int i0) in
        let cycle_reduction =
          1.0 -. (float_of_int r3.Schedule.cycles /. float_of_int r0.Schedule.cycles)
        in
        Printf.printf "  %-13s" a.App.name;
        List.iter
          (fun (l, p, (r : Schedule.result)) ->
            Printf.printf " | O%d %4d instrs %6d cyc %9.2e J" l (Program.length p)
              r.Schedule.cycles r.Schedule.energy_j)
          runs;
        Printf.printf " | -%.1f%% cycles\n" (100.0 *. cycle_reduction);
        ( a.App.name,
          Json.Obj
            (List.concat_map
               (fun (l, p, (r : Schedule.result)) ->
                 [
                   (Printf.sprintf "instructions_o%d" l, Json.int (Program.length p));
                   (Printf.sprintf "cycles_o%d" l, Json.int r.Schedule.cycles);
                   (Printf.sprintf "energy_o%d_j" l, Json.Num r.Schedule.energy_j);
                 ])
               runs
            @ [
                ("instruction_reduction", Json.Num instruction_reduction);
                ("cycle_reduction", Json.Num cycle_reduction);
              ]) ))
      App.all
  in
  let path = "BENCH_isa_opt.json" in
  let oc = open_out path in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("meta", bench_meta ());
            ("seed", Json.int 42);
            ("policy", Json.Str (Schedule.policy_name policy));
            ("apps", Json.Obj entries);
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "Instruction-stream optimizer bench (seed 42, 4 apps) -> %s\n\n" path

(* Multicore macro-benchmark: the three top-level fan-out sites (DSE
   candidate sweep, fault campaign, per-app x policy schedule matrix)
   timed fully sequential (jobs = 1) and on the domain pool (jobs = 4),
   with a structural-equality check that both runs produced the same
   result — the determinism contract, enforced as part of the perf
   artifact.  Emitted to BENCH_par.json.  CI gates the determinism
   check, the noise-aware wall-clock regression band, and (on runners
   with at least [par_jobs] cores) a hard speedup floor per workload —
   the work-stealing pool is expected to be genuinely fast now, so a
   sweep that stops scaling is a regression, not a known wart. *)
let par_jobs = 4

let emit_par_bench ?(repeat = 1) () =
  let module Json = Orianna_obs.Json in
  let module Pool = Orianna_par.Pool in
  let module Campaign = Orianna_fault.Campaign in
  let module Pipeline = Orianna.Pipeline in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  (* K timed runs of [f]; returns (first result, median wall clock).
     The median absorbs scheduler noise on shared CI machines. *)
  let time_median f =
    let r0, t0 = time f in
    let rest = List.init (repeat - 1) (fun _ -> snd (time f)) in
    (r0, median (t0 :: rest))
  in
  (* Each workload returns a structural digest of its full result, so
     the sequential-vs-parallel comparison is exact without keeping
     heterogeneous result types around. *)
  let digest v = Digest.to_hex (Digest.string (Marshal.to_string v [])) in
  let auto_frame = Pipeline.frame App.auto_vehicle ~seed:42 in
  let mobile_frame = Pipeline.frame App.mobile_robot ~seed:42 in
  let mobile_accel = (Pipeline.generate mobile_frame.Pipeline.program).Orianna_hw.Dse.best in
  let workloads =
    [
      ( "dse_sweep",
        fun () ->
          let r = Pipeline.generate auto_frame.Pipeline.program in
          digest (r.Orianna_hw.Dse.best, r.Orianna_hw.Dse.objective, r.Orianna_hw.Dse.trace) );
      ( "fault_campaign",
        fun () ->
          let config = { Campaign.default_config with Campaign.missions = 48 } in
          let s =
            Campaign.run ~config ~rng:(Rng.of_int 42) ~graphs:mobile_frame.Pipeline.graphs
              ~program:mobile_frame.Pipeline.program ~accel:mobile_accel ()
          in
          digest (s.Campaign.events, s.Campaign.totals, s.Campaign.worst_slowdown) );
      ( "app_matrix",
        fun () ->
          digest
            (Pool.parallel_map_list ~chunk:1
               (fun ((a : App.t), policy) ->
                 let graphs = a.App.graphs (Rng.of_int 42) in
                 let p = Compile.compile_application graphs in
                 let r = Schedule.run ~accel ~policy p in
                 (a.App.name, Schedule.policy_name policy, r.Schedule.cycles, r.Schedule.energy_j))
               (List.concat_map
                  (fun a ->
                    List.map
                      (fun pol -> (a, pol))
                      [ Schedule.Ooo_full; Schedule.Ooo_fine; Schedule.In_order ])
                  App.all)) );
    ]
  in
  Printf.printf "Parallel sweep bench (sequential vs 4-job domain pool, median of %d):\n" repeat;
  let timings = ref [] in
  let entries =
    List.map
      (fun (name, work) ->
        Pool.set_default_jobs 1;
        let seq_result, seq_s = time_median work in
        Pool.set_default_jobs par_jobs;
        let par_result, par_s = time_median work in
        Pool.set_default_jobs 1;
        let identical = String.equal seq_result par_result in
        let speedup = seq_s /. par_s in
        Printf.printf "  %-16s seq %7.3f s | par %7.3f s | %.2fx %s\n" name seq_s par_s
          speedup
          (if identical then "(identical results)" else "(RESULTS DIFFER!)");
        timings := (name, seq_s, par_s, identical) :: !timings;
        ( name,
          Json.Obj
            [
              ("sequential_s", Json.Num seq_s);
              ("parallel_s", Json.Num par_s);
              ("speedup", Json.Num speedup);
              ("identical", Json.Bool identical);
            ] ))
      workloads
  in
  let path = "BENCH_par.json" in
  let oc = open_out path in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("meta", bench_meta ());
            ("jobs", Json.int par_jobs);
            ("repeat", Json.int repeat);
            ("workloads", Json.Obj entries);
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "-> %s\n\n" path;
  List.rev !timings

(* ------------------------------------------------------------------ *)
(* Noise-aware wall-clock regression gate.

   Checked-in absolute timings are worthless across machines, so the
   baseline stores each workload normalized by a calibration kernel
   (a fixed amount of pure floating-point work timed on the same
   machine, same process).  At check time the current normalized
   medians must sit inside a tolerance band around the baseline's —
   wide enough for CI-runner noise the calibration cannot cancel,
   tight enough to catch a real 2x regression. *)

let calibrate () =
  let spin () =
    let acc = ref m8 in
    for _ = 1 to 5000 do
      acc := Mat.mul !acc m8;
      acc := m8
    done;
    ignore !acc
  in
  (* Minimum of several runs: a pure CPU kernel's true cost is its
     fastest observed time; everything above that is scheduler noise,
     which the median would smear into the normalization. *)
  spin ();
  List.fold_left
    (fun acc () ->
      let t0 = Unix.gettimeofday () in
      spin ();
      Float.min acc (Unix.gettimeofday () -. t0))
    infinity
    (List.init 9 (fun _ -> ()))

(* +100%: calibration cancels raw CPU speed but not parallel-contention
   differences between runner core counts, so the band is wide; the
   gate exists to catch the >2x accidents (quadratic blowups, lock
   convoys), not 20% drift. *)
let bench_tolerance = 1.0

(* Minimum parallel speedup the [par_jobs]-lane pool must deliver on
   every swept workload.  Enforced only on runners with at least
   [par_jobs] cores: on a smaller machine the pool cannot physically
   scale, so the floor would measure the container, not the code. *)
let bench_speedup_floor = 3.0

let record_baseline ~repeat path =
  let module Json = Orianna_obs.Json in
  let calib = calibrate () in
  let timings = emit_par_bench ~repeat () in
  let oc = open_out path in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("meta", bench_meta ());
            ("calibration_s", Json.Num calib);
            ("tolerance", Json.Num bench_tolerance);
            ("speedup_floor", Json.Num bench_speedup_floor);
            ( "workloads",
              Json.Obj
                (List.map
                   (fun (name, seq_s, par_s, _) ->
                     ( name,
                       Json.Obj
                         [ ("sequential_s", Json.Num seq_s); ("parallel_s", Json.Num par_s) ]
                     ))
                   timings) );
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "recorded bench baseline (calibration %.4f s) -> %s\n" calib path

let check_baseline ~repeat path =
  let module Json = Orianna_obs.Json in
  let contents =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let baseline = Json.parse contents in
  let num j key =
    match Json.member key j with
    | Some (Json.Num v) -> v
    | _ -> failwith (Printf.sprintf "bench baseline %s: missing numeric %S" path key)
  in
  let base_calib = num baseline "calibration_s" in
  let tolerance =
    match Json.member "tolerance" baseline with Some (Json.Num t) -> t | _ -> bench_tolerance
  in
  let floor =
    match Json.member "speedup_floor" baseline with
    | Some (Json.Num f) -> f
    | _ -> bench_speedup_floor
  in
  let calib = calibrate () in
  let timings = emit_par_bench ~repeat () in
  Printf.printf "Bench regression check vs %s (calibration %.4f s baseline / %.4f s now):\n"
    path base_calib calib;
  let cores = Domain.recommended_domain_count () in
  let gate_speedup = cores >= par_jobs in
  if not gate_speedup then
    Printf.printf "  (speedup floor %.1fx skipped: %d core(s) < %d jobs)\n" floor cores par_jobs;
  let failures = ref 0 in
  List.iter
    (fun (name, seq_s, par_s, identical) ->
      if not identical then begin
        Printf.printf "  %-16s FAIL: sequential and parallel results differ\n" name;
        incr failures
      end;
      if gate_speedup then begin
        let speedup = seq_s /. par_s in
        if speedup < floor then begin
          Printf.printf "  %-16s FAIL speedup: %.2fx below the %.1fx floor at %d jobs\n" name
            speedup floor par_jobs;
          incr failures
        end
        else Printf.printf "  %-16s ok   speedup: %.2fx >= %.1fx\n" name speedup floor
      end;
      match Json.member "workloads" baseline with
      | Some wl -> (
          match Json.member name wl with
          | None -> Printf.printf "  %-16s (not in baseline, skipped)\n" name
          | Some entry ->
              List.iter
                (fun (key, now_s) ->
                  let base_norm = num entry key /. base_calib in
                  let now_norm = now_s /. calib in
                  let limit = base_norm *. (1.0 +. tolerance) in
                  if now_norm > limit then begin
                    Printf.printf
                      "  %-16s FAIL %s: %.1f calib units exceeds baseline %.1f (+%.0f%%)\n"
                      name key now_norm base_norm (100.0 *. tolerance);
                    incr failures
                  end
                  else
                    Printf.printf "  %-16s ok   %s: %.1f calib units <= %.1f (+%.0f%%)\n" name
                      key now_norm base_norm (100.0 *. tolerance))
                [ ("sequential_s", seq_s); ("parallel_s", par_s) ])
      | None -> failwith (Printf.sprintf "bench baseline %s: no workloads section" path))
    timings;
  if !failures > 0 then begin
    Printf.printf "BENCH REGRESSION: %d check(s) outside the tolerance band\n" !failures;
    exit 1
  end
  else print_endline "bench regression check passed"

(* ------------------------------------------------------------------ *)
(* Observability overhead smoke.

   The registry's contract is that the {e disabled} entry points cost
   nothing on hot paths.  Measure the disabled per-call cost directly,
   count how many registry calls one cycle-level schedule actually
   makes (by running it once {e enabled} and reading the snapshot
   back), and require  calls x per-call-cost < 1% of the disabled
   schedule wall clock. *)
let obs_overhead_smoke () =
  let module Obs = Orianna_obs.Obs in
  Obs.disable ();
  Obs.reset ();
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let sched () = ignore (Schedule.run ~accel ~policy:Schedule.Ooo_full app_program) in
  sched ();
  let t_sched =
    let runs = List.init 5 (fun _ -> time sched) in
    let a = Array.of_list runs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  (* Disabled per-call cost, averaged over the three metric entry
     points (1M calls each). *)
  let calls = 1_000_000 in
  let t_count = time (fun () -> for _ = 1 to calls do Obs.count "smoke.c" done) in
  let t_observe = time (fun () -> for _ = 1 to calls do Obs.observe "smoke.h" 1.0 done) in
  let t_gauge = time (fun () -> for _ = 1 to calls do Obs.set_gauge "smoke.g" 1.0 done) in
  let per_call = (t_count +. t_observe +. t_gauge) /. float_of_int (3 * calls) in
  (* How many registry calls does one schedule make?  Run it enabled
     and read the snapshot: histogram samples + counter bumps + gauge
     writes (counters are bumped with ~n batching, so counting names
     under-counts; each name is still one call site per run). *)
  Obs.enable ();
  sched ();
  let n_calls =
    List.fold_left (fun acc (_, (h : Obs.histogram)) -> acc + h.Obs.samples) 0 (Obs.histograms ())
    + List.length (Obs.counters ())
    + List.length (Obs.gauges ())
    + List.length (Obs.spans ())
  in
  Obs.disable ();
  Obs.reset ();
  let overhead_s = float_of_int n_calls *. per_call in
  let frac = overhead_s /. t_sched in
  Printf.printf
    "obs overhead smoke: schedule %.4f s, %d registry calls x %.1f ns disabled = %.6f s (%.3f%%)\n"
    t_sched n_calls (per_call *. 1e9) overhead_s (100.0 *. frac);
  if frac >= 0.01 then begin
    print_endline "OBS OVERHEAD: disabled registry costs >= 1% of the schedule hot path";
    exit 1
  end
  else print_endline "obs overhead smoke passed (< 1%)"

(* Flag parsing: --par-only / --isa-opt-only / --chaos-only /
   --sessions-only / --obs-overhead select a
   sub-benchmark; --repeat K, --check FILE and --record FILE drive the
   noise-aware regression gate over the parallel sweep workloads. *)
let flag name = Array.exists (( = ) name) Sys.argv

let flag_value name =
  let n = Array.length Sys.argv in
  let rec find i =
    if i >= n - 1 then None else if Sys.argv.(i) = name then Some Sys.argv.(i + 1) else find (i + 1)
  in
  find 1

let () =
  let repeat =
    match flag_value "--repeat" with
    | Some s -> ( match int_of_string_opt s with Some k when k >= 1 -> k | _ -> 1)
    | None -> 1
  in
  if flag "--obs-overhead" then obs_overhead_smoke ()
  else
    match (flag_value "--check", flag_value "--record") with
    | Some path, _ -> check_baseline ~repeat path
    | None, Some path -> record_baseline ~repeat path
    | None, None ->
  if flag "--par-only" then ignore (emit_par_bench ~repeat ())
  else if flag "--isa-opt-only" then emit_isa_opt_bench ()
  else if flag "--chaos-only" then emit_chaos_bench ()
  else if flag "--sessions-only" then emit_sessions_bench ()
  else begin
    print_endline "=====================================================================";
    print_endline " ORIANNA evaluation reproduction (one entry per paper table/figure)";
    print_endline "=====================================================================";
    print_newline ();
    Orianna.Experiments.run_all ~missions:30 ();
    print_endline "=====================================================================";
    emit_serve_bench ();
    emit_isa_opt_bench ();
    run_micro_benchmarks ()
  end
