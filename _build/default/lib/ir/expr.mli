(** Factor error expressions over the nine ORIANNA primitive operations
    (Tbl. 3).

    Users describe a factor's error function [f(x)] as an expression
    tree; the compiler turns it into an MO-DFG, evaluates it forward to
    obtain the RHS vector [b] and differentiates it backward to obtain
    the coefficient blocks of [A] (Sec. 5.2).  A pose variable appears
    through two leaves — its orientation ([rot_var]) and its position
    ([trans_var]) — reflecting the split [<so(n), T(n)>]
    representation. *)

open Orianna_linalg

type leaf =
  | Rot_of of string  (** orientation block of the named pose variable *)
  | Trans_of of string  (** translation block of the named pose variable *)
  | Vec_of of string  (** plain vector variable (landmark, velocity, ...) *)

type t =
  | Leaf of leaf
  | Const_rot of Mat.t
  | Const_vec of Vec.t
  | Vadd of t * t  (** VP *)
  | Vsub of t * t  (** VP *)
  | Vscale of float * t  (** VP with a constant gain *)
  | Rt of t  (** rotation transpose *)
  | Rr of t * t  (** rotation-rotation product *)
  | Rv of t * t  (** rotation-vector product *)
  | Log of t  (** logarithmic mapping *)
  | Exp of t  (** exponential mapping *)

val rot_var : string -> t
val trans_var : string -> t
val vec_var : string -> t
val const_rot : Mat.t -> t
val const_vec : Vec.t -> t

val ( + ) : t -> t -> t
(** [Vadd]. *)

val ( - ) : t -> t -> t
(** [Vsub]. *)

val ( *^ ) : t -> t -> t
(** Rotation composition [Rr]. *)

val ( *> ) : t -> t -> t
(** Rotation applied to a vector [Rv]. *)

val transpose : t -> t
val log_map : t -> t
val exp_map : t -> t
val scale : float -> t -> t

val leaves : t -> leaf list
(** Distinct leaves in first-occurrence order. *)

val variables : t -> string list
(** Distinct variable names in first-occurrence order. *)

val size : t -> int
(** Number of tree nodes (before common-subexpression sharing). *)

val between_error : pose_dim:int -> x_i:string -> x_j:string -> z_rot:Mat.t -> z_trans:Vec.t -> t list
(** The constraint factor of Equ. 3/4: orientation error
    [Log(dRijᵀ Rjᵀ Ri)] and position error
    [dRijᵀ (Rjᵀ (ti - tj) - dtij)].  [pose_dim] is 2 or 3. *)

(** {2 Postfix form}

    Sec. 5.2: "ORIANNA compiler will generate the postfix expressions
    of Equ. 4 and parse the postfix expressions using a stack data
    structure to get the MO-DFG."  The tokens below are that exchange
    format; {!of_postfix} is the stack parser. *)

type token =
  | Tleaf of leaf
  | Tconst_rot of Orianna_linalg.Mat.t
  | Tconst_vec of Orianna_linalg.Vec.t
  | Tvadd
  | Tvsub
  | Tvscale of float
  | Trt
  | Trr
  | Trv
  | Tlog
  | Texp

exception Malformed_postfix of string

val to_postfix : t -> token list
(** Post-order serialization. *)

val of_postfix : token list -> t
(** Stack-based parser; inverse of {!to_postfix}.  Raises
    {!Malformed_postfix} when operands are missing or left over. *)

val compare_leaf : leaf -> leaf -> int

val pp_leaf : Format.formatter -> leaf -> unit

val pp : Format.formatter -> t -> unit
