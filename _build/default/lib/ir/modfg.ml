open Orianna_linalg
open Orianna_lie

type op =
  | In_leaf of Expr.leaf
  | In_const of Value.t
  | Op_vadd
  | Op_vsub
  | Op_vscale of float
  | Op_rt
  | Op_rr
  | Op_rv
  | Op_log
  | Op_exp

type node = { id : int; op : op; args : int array; ty : Value.ty; level : int }

type t = {
  nodes : node array;
  outputs : int array;
  out_offsets : int array;
  error_dim : int;
  leaves : (Expr.leaf * int) list;
}

let op_name = function
  | In_leaf _ -> "input"
  | In_const _ -> "const"
  | Op_vadd | Op_vsub | Op_vscale _ -> "VP"
  | Op_rt -> "RT"
  | Op_rr -> "RR"
  | Op_rv -> "RV"
  | Op_log -> "Log"
  | Op_exp -> "Exp"

let result_type op (arg_tys : Value.ty array) =
  let fail msg = invalid_arg (Printf.sprintf "Modfg.build: %s" msg) in
  let vec_dim i =
    match arg_tys.(i) with Value.Tvec n -> n | Value.Trot _ -> fail "expected a vector operand"
  in
  let rot_dim i =
    match arg_tys.(i) with Value.Trot n -> n | Value.Tvec _ -> fail "expected a rotation operand"
  in
  match op with
  | In_leaf _ | In_const _ -> fail "inputs have no operands"
  | Op_vadd | Op_vsub ->
      let n = vec_dim 0 in
      if vec_dim 1 <> n then fail "VP operands of different dimension";
      Value.Tvec n
  | Op_vscale _ -> Value.Tvec (vec_dim 0)
  | Op_rt -> Value.Trot (rot_dim 0)
  | Op_rr ->
      let n = rot_dim 0 in
      if rot_dim 1 <> n then fail "RR operands of different dimension";
      Value.Trot n
  | Op_rv ->
      let n = rot_dim 0 in
      if vec_dim 1 <> n then fail "RV vector dimension mismatch";
      Value.Tvec n
  | Op_log -> (
      match rot_dim 0 with
      | 2 -> Value.Tvec 1
      | 3 -> Value.Tvec 3
      | n -> fail (Printf.sprintf "Log of rotation in dimension %d" n))
  | Op_exp -> (
      match vec_dim 0 with
      | 1 -> Value.Trot 2
      | 3 -> Value.Trot 3
      | n -> fail (Printf.sprintf "Exp of a %d-vector" n))

let build ~dim_of exprs =
  let table : (op * int array, int) Hashtbl.t = Hashtbl.create 64 in
  let rev_nodes = ref [] in
  let count = ref 0 in
  let leaves = ref [] in
  let intern op args =
    let key = (op, args) in
    match Hashtbl.find_opt table key with
    | Some id -> id
    | None ->
        let id = !count in
        incr count;
        let level =
          Array.fold_left (fun acc a -> max acc ((List.nth !rev_nodes (id - 1 - a)).level + 1)) 0 args
        in
        let ty =
          match op with
          | In_leaf l -> dim_of l
          | In_const v -> Value.type_of v
          | _ ->
              let arg_tys =
                Array.map (fun a -> (List.nth !rev_nodes (id - 1 - a)).ty) args
              in
              result_type op arg_tys
        in
        let node = { id; op; args; ty; level } in
        rev_nodes := node :: !rev_nodes;
        Hashtbl.add table key id;
        (match op with
        | In_leaf l -> leaves := (l, id) :: !leaves
        | In_const _ | Op_vadd | Op_vsub | Op_vscale _ | Op_rt | Op_rr | Op_rv | Op_log | Op_exp ->
            ());
        id
  in
  let rec visit (e : Expr.t) =
    match e with
    | Leaf l -> intern (In_leaf l) [||]
    | Const_rot m -> intern (In_const (Value.Rot m)) [||]
    | Const_vec v -> intern (In_const (Value.Vc v)) [||]
    | Vadd (a, b) ->
        let ia = visit a in
        let ib = visit b in
        intern Op_vadd [| ia; ib |]
    | Vsub (a, b) ->
        let ia = visit a in
        let ib = visit b in
        intern Op_vsub [| ia; ib |]
    | Vscale (s, a) -> intern (Op_vscale s) [| visit a |]
    | Rt a -> intern Op_rt [| visit a |]
    | Rr (a, b) ->
        let ia = visit a in
        let ib = visit b in
        intern Op_rr [| ia; ib |]
    | Rv (a, b) ->
        let ia = visit a in
        let ib = visit b in
        intern Op_rv [| ia; ib |]
    | Log a -> intern Op_log [| visit a |]
    | Exp a -> intern Op_exp [| visit a |]
  in
  let outputs = Array.of_list (List.map visit exprs) in
  let nodes = Array.of_list (List.rev !rev_nodes) in
  (* Outputs must be vectors: they stack into the error. *)
  let out_offsets = Array.make (Array.length outputs) 0 in
  let error_dim = ref 0 in
  Array.iteri
    (fun k out ->
      match nodes.(out).ty with
      | Value.Tvec n ->
          out_offsets.(k) <- !error_dim;
          error_dim := !error_dim + n
      | Value.Trot _ -> invalid_arg "Modfg.build: error components must be vector-typed")
    outputs;
  { nodes; outputs; out_offsets; error_dim = !error_dim; leaves = List.rev !leaves }

let nodes t = t.nodes
let outputs t = t.outputs
let error_dim t = t.error_dim
let leaves t = t.leaves

let eval t ~lookup =
  let values = Array.make (Array.length t.nodes) (Value.Vc [||]) in
  Array.iter
    (fun n ->
      let arg i = values.(n.args.(i)) in
      let v =
        match n.op with
        | In_leaf l ->
            let v = lookup l in
            if Value.type_of v <> n.ty then
              invalid_arg "Modfg.eval: leaf value type does not match declaration";
            v
        | In_const v -> v
        | Op_vadd -> Value.Vc (Vec.add (Value.as_vec (arg 0)) (Value.as_vec (arg 1)))
        | Op_vsub -> Value.Vc (Vec.sub (Value.as_vec (arg 0)) (Value.as_vec (arg 1)))
        | Op_vscale s -> Value.Vc (Vec.scale s (Value.as_vec (arg 0)))
        | Op_rt -> Value.Rot (Mat.transpose (Value.as_rot (arg 0)))
        | Op_rr -> Value.Rot (Mat.mul (Value.as_rot (arg 0)) (Value.as_rot (arg 1)))
        | Op_rv -> Value.Vc (Mat.mul_vec (Value.as_rot (arg 0)) (Value.as_vec (arg 1)))
        | Op_log -> (
            let r = Value.as_rot (arg 0) in
            match n.ty with
            | Value.Tvec 1 -> Value.Vc [| So2.log r |]
            | _ -> Value.Vc (So3.log r))
        | Op_exp -> (
            let v = Value.as_vec (arg 0) in
            match n.ty with
            | Value.Trot 2 -> Value.Rot (So2.exp v.(0))
            | _ -> Value.Rot (So3.exp v))
      in
      values.(n.id) <- v)
    t.nodes;
  values

let error t ~lookup =
  let values = eval t ~lookup in
  Vec.concat (Array.to_list (Array.map (fun o -> Value.as_vec values.(o)) t.outputs))

(* Local Jacobian of node [n] with respect to operand [k], evaluated at
   the forward values.  Shapes: tangent(n) x tangent(arg k).  These are
   the backward (blue) arrows of Fig. 10. *)
let local_jacobian values n k =
  let arg i = values.(n.args.(i)) in
  let rot_dim () =
    match Value.type_of (arg 0) with Value.Trot d -> d | Value.Tvec _ -> assert false
  in
  match n.op with
  | In_leaf _ | In_const _ -> assert false
  | Op_vadd -> Mat.identity (Value.tangent_dim n.ty)
  | Op_vsub ->
      let i = Mat.identity (Value.tangent_dim n.ty) in
      if k = 0 then i else Mat.neg i
  | Op_vscale s -> Mat.scale s (Mat.identity (Value.tangent_dim n.ty))
  | Op_rt ->
      (* (R Exp(d))^T = Exp(-(R d)^) R^T: J = -R. *)
      if rot_dim () = 2 then Mat.of_rows [| [| -1.0 |] |] else Mat.neg (Value.as_rot (arg 0))
  | Op_rr ->
      if rot_dim () = 2 then Mat.identity 1
      else if k = 0 then Mat.transpose (Value.as_rot (arg 1))
      else Mat.identity 3
  | Op_rv ->
      let r = Value.as_rot (arg 0) in
      let v = Value.as_vec (arg 1) in
      if k = 1 then r
      else if rot_dim () = 2 then Mat.of_vec (Mat.mul_vec r (So2.perp v))
      else Mat.neg (Mat.mul r (So3.hat v))
  | Op_log ->
      (* d Log(R Exp(d)) = Jr_inv(Log R) d. *)
      if Value.tangent_dim n.ty = 1 then Mat.identity 1
      else So3.jr_inv (Value.as_vec values.(n.id))
  | Op_exp ->
      (* Exp(v + d) = Exp(v) Exp(Jr(v) d). *)
      if Value.tangent_dim n.ty = 1 then Mat.identity 1
      else So3.jr (Value.as_vec (arg 0))

let jacobians t ~values =
  let n = Array.length t.nodes in
  let adj : Mat.t option array = Array.make n None in
  let accumulate id m =
    match adj.(id) with None -> adj.(id) <- Some m | Some old -> adj.(id) <- Some (Mat.add old m)
  in
  (* Seed: output k occupies rows [offset, offset + dim). *)
  Array.iteri
    (fun k out ->
      let dim = Value.tangent_dim t.nodes.(out).ty in
      let seed = Mat.create t.error_dim dim in
      Mat.set_block seed t.out_offsets.(k) 0 (Mat.identity dim);
      accumulate out seed)
    t.outputs;
  for i = n - 1 downto 0 do
    let node = t.nodes.(i) in
    match (adj.(i), node.op) with
    | None, _ | Some _, (In_leaf _ | In_const _) -> ()
    | Some a, (Op_vadd | Op_vsub | Op_vscale _ | Op_rt | Op_rr | Op_rv | Op_log | Op_exp) ->
        Array.iteri
          (fun k argid -> accumulate argid (Mat.mul a (local_jacobian values node k)))
          node.args
  done;
  List.filter_map
    (fun (leaf, id) ->
      match adj.(id) with
      | Some m -> Some (leaf, m)
      | None ->
          (* Leaf not reachable from any output: zero block. *)
          Some (leaf, Mat.create t.error_dim (Value.tangent_dim t.nodes.(id).ty)))
    t.leaves

let linearize t ~lookup =
  let values = eval t ~lookup in
  let err =
    Vec.concat (Array.to_list (Array.map (fun o -> Value.as_vec values.(o)) t.outputs))
  in
  (err, jacobians t ~values)

let depth t = Array.fold_left (fun acc n -> max acc (n.level + 1)) 0 t.nodes

let level_sizes t =
  let d = depth t in
  let sizes = Array.make d 0 in
  Array.iter (fun n -> sizes.(n.level) <- sizes.(n.level) + 1) t.nodes;
  sizes

let op_census t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun n ->
      let name = op_name n.op in
      Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
    t.nodes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let pp ppf t =
  Format.fprintf ppf "@[<v>MO-DFG: %d nodes, %d levels, error dim %d@," (Array.length t.nodes)
    (depth t) t.error_dim;
  Array.iter
    (fun n ->
      Format.fprintf ppf "  n%d [L%d] %s%a <- %s@," n.id n.level (op_name n.op)
        (fun ppf -> function
          | In_leaf l -> Format.fprintf ppf "(%a)" Expr.pp_leaf l
          | _ -> ())
        n.op
        (String.concat "," (Array.to_list (Array.map (Printf.sprintf "n%d") n.args))))
    t.nodes;
  Format.fprintf ppf "@]"
