(** Matrix-operation data flow graphs (MO-DFGs, Sec. 5.2).

    An MO-DFG is the hash-consed DAG of primitive matrix operations
    underlying one factor's error expression (Fig. 11).  Forward
    traversal computes the error (the factor's rows of the RHS vector
    [b]); backward propagation computes Jacobian blocks with respect to
    every leaf (the factor's blocks of the coefficient matrix [A]) by
    the chain rule over manifold-aware local Jacobians (Fig. 10).
    Nodes carry BFS levels: nodes of equal level have no data
    dependencies and may execute in parallel. *)

open Orianna_linalg

type op =
  | In_leaf of Expr.leaf
  | In_const of Value.t
  | Op_vadd
  | Op_vsub
  | Op_vscale of float
  | Op_rt
  | Op_rr
  | Op_rv
  | Op_log
  | Op_exp

type node = { id : int; op : op; args : int array; ty : Value.ty; level : int }

type t

val build : dim_of:(Expr.leaf -> Value.ty) -> Expr.t list -> t
(** Construct the MO-DFG of a factor from its list of error-component
    expressions (each must be vector-typed).  Common subexpressions are
    shared.  Raises [Invalid_argument] on type errors. *)

val nodes : t -> node array
(** Topologically ordered: a node's arguments have smaller ids. *)

val outputs : t -> int array
(** Node ids of the error components, in declaration order. *)

val error_dim : t -> int
(** Total stacked error dimension. *)

val leaves : t -> (Expr.leaf * int) list
(** Leaf to node-id mapping, in first-occurrence order. *)

val eval : t -> lookup:(Expr.leaf -> Value.t) -> Value.t array
(** Forward traversal: the value of every node. *)

val error : t -> lookup:(Expr.leaf -> Value.t) -> Vec.t
(** Stacked error vector (forward traversal of the outputs). *)

val jacobians : t -> values:Value.t array -> (Expr.leaf * Mat.t) list
(** Backward propagation from the forward [values] of {!eval}: for
    each leaf, the [error_dim x tangent_dim(leaf)] Jacobian block under
    the retraction [R <- R Exp(d)] for rotation leaves and [v <- v + d]
    for vector leaves. *)

val linearize : t -> lookup:(Expr.leaf -> Value.t) -> Vec.t * (Expr.leaf * Mat.t) list
(** Error and Jacobians in one pass. *)

val depth : t -> int
(** Number of BFS levels. *)

val level_sizes : t -> int array
(** Operation count per level — the parallelism profile of Fig. 11. *)

val op_census : t -> (string * int) list
(** Primitive-operation histogram (by Tbl. 3 name). *)

val op_name : op -> string

val pp : Format.formatter -> t -> unit
