(** Runtime values flowing through a matrix-operation data flow graph.

    MO-DFG nodes produce either a rotation matrix (an element of SO(2)
    or SO(3)) or a plain vector.  Tangent dimensions drive the shapes
    of Jacobian blocks during backward propagation. *)

open Orianna_linalg

type t =
  | Rot of Mat.t  (** 2x2 or 3x3 rotation matrix *)
  | Vc of Vec.t  (** vector, including so(n) coordinates *)

type ty =
  | Trot of int  (** rotation in dimension [n] (2 or 3) *)
  | Tvec of int  (** vector of length [n] *)

val type_of : t -> ty

val tangent_dim : ty -> int
(** [Trot 2 -> 1], [Trot 3 -> 3], [Tvec n -> n]. *)

val as_rot : t -> Mat.t
(** Raises [Invalid_argument] on a vector. *)

val as_vec : t -> Vec.t
(** Raises [Invalid_argument] on a rotation. *)

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit

val pp_ty : Format.formatter -> ty -> unit
