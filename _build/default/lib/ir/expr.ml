open Orianna_linalg

type leaf = Rot_of of string | Trans_of of string | Vec_of of string

type t =
  | Leaf of leaf
  | Const_rot of Mat.t
  | Const_vec of Vec.t
  | Vadd of t * t
  | Vsub of t * t
  | Vscale of float * t
  | Rt of t
  | Rr of t * t
  | Rv of t * t
  | Log of t
  | Exp of t

let rot_var name = Leaf (Rot_of name)
let trans_var name = Leaf (Trans_of name)
let vec_var name = Leaf (Vec_of name)
let const_rot m = Const_rot m
let const_vec v = Const_vec v

let ( + ) a b = Vadd (a, b)
let ( - ) a b = Vsub (a, b)
let ( *^ ) a b = Rr (a, b)
let ( *> ) r v = Rv (r, v)
let transpose r = Rt r
let log_map r = Log r
let exp_map v = Exp v
let scale s e = Vscale (s, e)

let leaves expr =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Leaf l ->
        if not (Hashtbl.mem seen l) then begin
          Hashtbl.add seen l ();
          out := l :: !out
        end
    | Const_rot _ | Const_vec _ -> ()
    | Vadd (a, b) | Vsub (a, b) | Rr (a, b) | Rv (a, b) ->
        go a;
        go b
    | Vscale (_, a) | Rt a | Log a | Exp a -> go a
  in
  go expr;
  List.rev !out

let leaf_var = function Rot_of n | Trans_of n | Vec_of n -> n

let variables expr =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun l ->
      let v = leaf_var l in
      if Hashtbl.mem seen v then None
      else begin
        Hashtbl.add seen v ();
        Some v
      end)
    (leaves expr)

let rec size = function
  | Leaf _ | Const_rot _ | Const_vec _ -> 1
  | Vadd (a, b) | Vsub (a, b) | Rr (a, b) | Rv (a, b) -> Stdlib.( + ) 1 (Stdlib.( + ) (size a) (size b))
  | Vscale (_, a) | Rt a | Log a | Exp a -> Stdlib.( + ) 1 (size a)

let between_error ~pose_dim ~x_i ~x_j ~z_rot ~z_trans =
  let zr, zc = Mat.dims z_rot in
  if zr <> pose_dim || zc <> pose_dim then invalid_arg "Expr.between_error: z_rot dimension";
  if Vec.dim z_trans <> pose_dim then invalid_arg "Expr.between_error: z_trans dimension";
  let ri = rot_var x_i and rj = rot_var x_j in
  let ti = trans_var x_i and tj = trans_var x_j in
  let dz_rot_t = const_rot (Mat.transpose z_rot) in
  (* e_o = Log(dRijT RjT Ri);  e_p = dRijT (RjT (ti - tj) - dtij). *)
  let e_o = log_map (dz_rot_t *^ (transpose rj *^ ri)) in
  let e_p = dz_rot_t *> ((transpose rj *> (ti - tj)) - const_vec z_trans) in
  [ e_o; e_p ]

type token =
  | Tleaf of leaf
  | Tconst_rot of Mat.t
  | Tconst_vec of Vec.t
  | Tvadd
  | Tvsub
  | Tvscale of float
  | Trt
  | Trr
  | Trv
  | Tlog
  | Texp

exception Malformed_postfix of string

let to_postfix expr =
  let rec go acc = function
    | Leaf l -> Tleaf l :: acc
    | Const_rot m -> Tconst_rot m :: acc
    | Const_vec v -> Tconst_vec v :: acc
    | Vadd (a, b) -> Tvadd :: go (go acc a) b
    | Vsub (a, b) -> Tvsub :: go (go acc a) b
    | Vscale (s, a) -> Tvscale s :: go acc a
    | Rt a -> Trt :: go acc a
    | Rr (a, b) -> Trr :: go (go acc a) b
    | Rv (a, b) -> Trv :: go (go acc a) b
    | Log a -> Tlog :: go acc a
    | Exp a -> Texp :: go acc a
  in
  List.rev (go [] expr)

let of_postfix tokens =
  let pop1 name = function
    | a :: rest -> (a, rest)
    | [] -> raise (Malformed_postfix (name ^ ": missing operand"))
  in
  let pop2 name = function
    | b :: a :: rest -> (a, b, rest)
    | _ -> raise (Malformed_postfix (name ^ ": missing operands"))
  in
  let stack =
    List.fold_left
      (fun stack token ->
        match token with
        | Tleaf l -> Leaf l :: stack
        | Tconst_rot m -> Const_rot m :: stack
        | Tconst_vec v -> Const_vec v :: stack
        | Tvadd ->
            let a, b, rest = pop2 "VP+" stack in
            Vadd (a, b) :: rest
        | Tvsub ->
            let a, b, rest = pop2 "VP-" stack in
            Vsub (a, b) :: rest
        | Tvscale s ->
            let a, rest = pop1 "VP*" stack in
            Vscale (s, a) :: rest
        | Trt ->
            let a, rest = pop1 "RT" stack in
            Rt a :: rest
        | Trr ->
            let a, b, rest = pop2 "RR" stack in
            Rr (a, b) :: rest
        | Trv ->
            let a, b, rest = pop2 "RV" stack in
            Rv (a, b) :: rest
        | Tlog ->
            let a, rest = pop1 "Log" stack in
            Log a :: rest
        | Texp ->
            let a, rest = pop1 "Exp" stack in
            Exp a :: rest)
      [] tokens
  in
  match stack with
  | [ e ] -> e
  | [] -> raise (Malformed_postfix "empty token stream")
  | _ -> raise (Malformed_postfix "leftover operands")

let compare_leaf a b =
  let rank = function Rot_of _ -> 0 | Trans_of _ -> 1 | Vec_of _ -> 2 in
  match compare (rank a) (rank b) with 0 -> compare (leaf_var a) (leaf_var b) | c -> c

let pp_leaf ppf = function
  | Rot_of n -> Format.fprintf ppf "R(%s)" n
  | Trans_of n -> Format.fprintf ppf "t(%s)" n
  | Vec_of n -> Format.fprintf ppf "v(%s)" n

let rec pp ppf = function
  | Leaf l -> pp_leaf ppf l
  | Const_rot _ -> Format.fprintf ppf "constR"
  | Const_vec v -> Format.fprintf ppf "const%a" Vec.pp v
  | Vadd (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Vsub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Vscale (s, a) -> Format.fprintf ppf "(%g * %a)" s pp a
  | Rt a -> Format.fprintf ppf "%a^T" pp a
  | Rr (a, b) -> Format.fprintf ppf "(%a . %a)" pp a pp b
  | Rv (a, b) -> Format.fprintf ppf "(%a @@ %a)" pp a pp b
  | Log a -> Format.fprintf ppf "Log(%a)" pp a
  | Exp a -> Format.fprintf ppf "Exp(%a)" pp a
