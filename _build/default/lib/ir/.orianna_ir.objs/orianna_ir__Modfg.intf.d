lib/ir/modfg.mli: Expr Format Mat Orianna_linalg Value Vec
