lib/ir/modfg.ml: Array Expr Format Hashtbl List Mat Option Orianna_lie Orianna_linalg Printf So2 So3 String Value Vec
