lib/ir/expr.mli: Format Mat Orianna_linalg Vec
