lib/ir/value.mli: Format Mat Orianna_linalg Vec
