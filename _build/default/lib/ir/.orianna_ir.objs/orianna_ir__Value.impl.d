lib/ir/value.ml: Format Mat Orianna_linalg Printf Vec
