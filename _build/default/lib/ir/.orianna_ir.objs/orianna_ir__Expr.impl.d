lib/ir/expr.ml: Format Hashtbl List Mat Orianna_linalg Stdlib Vec
