open Orianna_linalg

type t = Rot of Mat.t | Vc of Vec.t
type ty = Trot of int | Tvec of int

let type_of = function
  | Rot m ->
      let n, _ = Mat.dims m in
      Trot n
  | Vc v -> Tvec (Vec.dim v)

let tangent_dim = function
  | Trot 2 -> 1
  | Trot 3 -> 3
  | Trot n -> invalid_arg (Printf.sprintf "Value.tangent_dim: unsupported rotation dim %d" n)
  | Tvec n -> n

let as_rot = function
  | Rot m -> m
  | Vc _ -> invalid_arg "Value.as_rot: value is a vector"

let as_vec = function
  | Vc v -> v
  | Rot _ -> invalid_arg "Value.as_vec: value is a rotation"

let equal ?eps a b =
  match (a, b) with
  | Rot x, Rot y -> Mat.equal ?eps x y
  | Vc x, Vc y -> Vec.equal ?eps x y
  | Rot _, Vc _ | Vc _, Rot _ -> false

let pp ppf = function
  | Rot m -> Format.fprintf ppf "Rot@,%a" Mat.pp m
  | Vc v -> Format.fprintf ppf "Vec %a" Vec.pp v

let pp_ty ppf = function
  | Trot n -> Format.fprintf ppf "rot%d" n
  | Tvec n -> Format.fprintf ppf "vec%d" n
