(** Cholesky factorization of symmetric positive-definite matrices. *)

val factor : Mat.t -> Mat.t
(** [factor a] returns lower-triangular [l] with [a = l lᵀ].  Raises
    [Failure] if [a] is not positive definite. *)

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] solves [a x = b] for SPD [a] via {!factor}. *)

val solve_normal_equations : Mat.t -> Vec.t -> Vec.t
(** [solve_normal_equations a b] solves the least-squares problem
    [min |a x - b|] through the normal equations [aᵀa x = aᵀb];
    used by baselines that do not exploit QR. *)
