type t = float array

let create n = Array.make n 0.0
let init = Array.init
let of_list = Array.of_list
let dim = Array.length
let copy = Array.copy
let get = Array.get
let set = Array.set

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch %d vs %d" name (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale alpha a =
  Macs.add (Array.length a);
  Array.map (fun x -> alpha *. x) a

let neg a = Array.map (fun x -> -.x) a

let dot a b =
  check_dims "dot" a b;
  Macs.add (Array.length a);
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm_sq a = dot a a
let norm a = sqrt (norm_sq a)
let dist a b = norm (sub a b)

let concat vs =
  let total = List.fold_left (fun acc v -> acc + dim v) 0 vs in
  let out = create total in
  let pos = ref 0 in
  List.iter
    (fun v ->
      Array.blit v 0 out !pos (dim v);
      pos := !pos + dim v)
    vs;
  out

let slice v ~pos ~len =
  if pos < 0 || len < 0 || pos + len > dim v then invalid_arg "Vec.slice: out of bounds";
  Array.sub v pos len

let axpy ~alpha ~x ~y =
  check_dims "axpy" x y;
  Macs.add (Array.length x);
  for i = 0 to Array.length x - 1 do
    y.(i) <- (alpha *. x.(i)) +. y.(i)
  done

let equal ?(eps = 1e-9) a b =
  dim a = dim b
  &&
  let ok = ref true in
  for i = 0 to dim a - 1 do
    if Float.abs (a.(i) -. b.(i)) > eps then ok := false
  done;
  !ok

let pp ppf v =
  Format.fprintf ppf "[@[";
  Array.iteri (fun i x -> Format.fprintf ppf "%s%.4g" (if i > 0 then "; " else "") x) v;
  Format.fprintf ppf "@]]"
