let counter = ref 0

let reset () = counter := 0
let add n = counter := !counter + n
let count () = !counter

let measure f =
  let before = !counter in
  let result = f () in
  let spent = !counter - before in
  (result, spent)
