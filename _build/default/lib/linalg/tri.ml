let check_square name r =
  let m, n = Mat.dims r in
  if m <> n then invalid_arg (Printf.sprintf "Tri.%s: matrix is %dx%d, not square" name m n);
  m

let pivot_check name x =
  if Float.abs x < 1e-12 then failwith (Printf.sprintf "Tri.%s: singular pivot %g" name x)

let solve_upper r d =
  let n = check_square "solve_upper" r in
  if Vec.dim d <> n then invalid_arg "Tri.solve_upper: rhs dimension mismatch";
  let x = Vec.create n in
  for i = n - 1 downto 0 do
    let acc = ref d.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get r i j *. x.(j))
    done;
    let rii = Mat.get r i i in
    pivot_check "solve_upper" rii;
    x.(i) <- !acc /. rii
  done;
  Macs.add (n * (n + 1) / 2);
  x

let solve_lower l d =
  let n = check_square "solve_lower" l in
  if Vec.dim d <> n then invalid_arg "Tri.solve_lower: rhs dimension mismatch";
  let x = Vec.create n in
  for i = 0 to n - 1 do
    let acc = ref d.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get l i j *. x.(j))
    done;
    let lii = Mat.get l i i in
    pivot_check "solve_lower" lii;
    x.(i) <- !acc /. lii
  done;
  Macs.add (n * (n + 1) / 2);
  x

let solve_upper_mat r d =
  let n = check_square "solve_upper_mat" r in
  let dm, dn = Mat.dims d in
  if dm <> n then invalid_arg "Tri.solve_upper_mat: rhs row mismatch";
  let out = Mat.create n dn in
  for j = 0 to dn - 1 do
    let x = solve_upper r (Mat.col d j) in
    for i = 0 to n - 1 do
      Mat.set out i j x.(i)
    done
  done;
  out
