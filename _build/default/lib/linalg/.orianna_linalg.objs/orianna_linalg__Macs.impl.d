lib/linalg/macs.ml:
