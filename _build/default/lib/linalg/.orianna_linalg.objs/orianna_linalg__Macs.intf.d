lib/linalg/macs.mli:
