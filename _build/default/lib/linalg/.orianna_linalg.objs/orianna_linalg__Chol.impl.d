lib/linalg/chol.ml: Macs Mat Tri
