lib/linalg/mat.mli: Format Orianna_util Vec
