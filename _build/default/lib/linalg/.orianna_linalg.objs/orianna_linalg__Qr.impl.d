lib/linalg/qr.ml: Array Float Macs Mat Tri Vec
