lib/linalg/assembly.ml: Array List Mat Printf Vec
