lib/linalg/assembly.mli: Mat Vec
