lib/linalg/mat.ml: Array Float Format List Macs Orianna_util Printf Vec
