lib/linalg/tri.ml: Array Float Macs Mat Printf Vec
