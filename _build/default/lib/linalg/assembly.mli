(** Block-sparse assembly of the linearized system [A Δ = b].

    A factor graph linearizes into a block-sparse coefficient matrix:
    each factor contributes one block row, each variable owns one block
    column (Fig. 4).  This module stores the block structure and can
    materialize the dense system — which is exactly what the
    VANILLA-HLS baseline operates on — and report the sparsity census
    used by Figs. 17/18. *)

type t

val create : col_dims:int array -> t
(** One block column per variable, with the given tangent dimensions. *)

val col_offset : t -> int -> int
(** Scalar column offset of a block column. *)

val total_cols : t -> int

val total_rows : t -> int
(** Scalar rows appended so far. *)

val add_row : t -> blocks:(int * Mat.t) list -> rhs:Vec.t -> unit
(** Append one block row.  Each [(var, jac)] pair places [jac] in the
    block column of [var]; all blocks and [rhs] must have the same row
    count.  Raises [Invalid_argument] on dimension mismatch. *)

val to_dense : t -> Mat.t * Vec.t
(** Materialize the full [A] and [b]. *)

val nnz : t -> int
(** Structural non-zeros: total entries of all stored blocks. *)

val density : t -> float
(** [nnz] over the dense footprint. *)

val row_blocks : t -> ((int * Mat.t) list * Vec.t) list
(** The stored block rows, oldest first. *)
