(** Dense row-major matrices.

    This is the numeric workhorse under the factor-graph solver, the
    instruction-set interpreter and the baselines.  Multiplications
    charge their MAC cost to {!Macs}. *)

type t = private {
  rows : int;
  cols : int;
  data : float array; (* row-major, length rows * cols *)
}

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val of_rows : float array array -> t
(** Rows must all have the same length; the input is copied. *)

val of_vec : Vec.t -> t
(** Column vector as an [n x 1] matrix. *)

val to_vec : t -> Vec.t
(** Flatten a matrix with a single row or a single column. Raises
    [Invalid_argument] otherwise. *)

val dims : t -> int * int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val map : (float -> float) -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val neg : t -> t

val mul : t -> t -> t
(** Matrix product; charges [m*n*k] MACs. *)

val mul_vec : t -> Vec.t -> Vec.t
(** Matrix-vector product; charges [m*n] MACs. *)

val transpose : t -> t

val trace : t -> float

val frobenius : t -> float

val set_block : t -> int -> int -> t -> unit
(** [set_block m i j b] writes [b] with upper-left corner at (i,j). *)

val block : t -> int -> int -> int -> int -> t
(** [block m i j h w] copies the [h x w] sub-matrix at (i,j). *)

val hcat : t list -> t
(** Horizontal concatenation (equal row counts). *)

val vcat : t list -> t
(** Vertical concatenation (equal column counts). *)

val nnz : ?eps:float -> t -> int
(** Number of entries with magnitude above [eps] (default 1e-12). *)

val density : ?eps:float -> t -> float
(** [nnz / (rows * cols)]. *)

val is_upper_triangular : ?eps:float -> t -> bool

val equal : ?eps:float -> t -> t -> bool

val random : Orianna_util.Rng.t -> int -> int -> t
(** Entries uniform in [[-1, 1)]. *)

val pp : Format.formatter -> t -> unit
