(** QR decompositions.

    Two triangularization kernels are provided: Householder reflections
    (the software reference) and Givens rotations (the algorithm the
    generated QR hardware unit implements, Sec. 6.1).  Both charge MAC
    costs to {!Macs}. *)

val triangularize : Mat.t -> Mat.t
(** [triangularize a] returns [r = Qᵀ a] where [r] is
    upper-trapezoidal (entries below the main diagonal are zero).  The
    input is not modified.  This is the "partial QR" of the variable
    elimination step (Fig. 5): applied to an augmented matrix [[A | b]]
    it yields [[R | Qᵀb]] without forming [Q]. *)

val givens_triangularize : Mat.t -> Mat.t
(** Same contract as {!triangularize} but via Givens rotations. *)

val qr : Mat.t -> Mat.t * Mat.t
(** [qr a] returns [(q, r)] with [a = q r], [q] orthogonal [m x m] and
    [r] upper-trapezoidal [m x n].  Used by tests; the solvers use
    {!triangularize}. *)

val solve_ls : Mat.t -> Vec.t -> Vec.t
(** [solve_ls a b] is the least-squares solution of [a x = b] via
    Householder QR.  Requires [rows a >= cols a] and full column
    rank. *)

val flops_estimate : rows:int -> cols:int -> int
(** Analytic Householder MAC estimate [n^2 (m - n/3)] used by the
    hardware latency models. *)
