(** Triangular solves. *)

val solve_upper : Mat.t -> Vec.t -> Vec.t
(** [solve_upper r d] solves the square upper-triangular system
    [r x = d] by back substitution.  Raises [Failure] on a (near-)zero
    diagonal pivot. *)

val solve_lower : Mat.t -> Vec.t -> Vec.t
(** Forward substitution for square lower-triangular systems. *)

val solve_upper_mat : Mat.t -> Mat.t -> Mat.t
(** Column-wise {!solve_upper}: solves [r x = d] for a matrix rhs. *)
