type t = {
  col_dims : int array;
  col_offsets : int array;
  total_cols : int;
  mutable rows : ((int * Mat.t) list * Vec.t) list; (* newest first *)
  mutable total_rows : int;
  mutable nnz : int;
}

let create ~col_dims =
  let n = Array.length col_dims in
  let col_offsets = Array.make n 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    col_offsets.(i) <- !acc;
    acc := !acc + col_dims.(i)
  done;
  { col_dims; col_offsets; total_cols = !acc; rows = []; total_rows = 0; nnz = 0 }

let col_offset t i = t.col_offsets.(i)
let total_cols t = t.total_cols
let total_rows t = t.total_rows

let add_row t ~blocks ~rhs =
  let nrows = Vec.dim rhs in
  List.iter
    (fun (var, jac) ->
      if var < 0 || var >= Array.length t.col_dims then
        invalid_arg "Assembly.add_row: variable index out of range";
      let r, c = Mat.dims jac in
      if r <> nrows then invalid_arg "Assembly.add_row: block row count mismatch";
      if c <> t.col_dims.(var) then
        invalid_arg
          (Printf.sprintf "Assembly.add_row: block for var %d is %dx%d, expected %d cols" var r c
             t.col_dims.(var)))
    blocks;
  t.rows <- (blocks, rhs) :: t.rows;
  t.total_rows <- t.total_rows + nrows;
  List.iter
    (fun (_, jac) ->
      let r, c = Mat.dims jac in
      t.nnz <- t.nnz + (r * c))
    blocks

let to_dense t =
  let a = Mat.create t.total_rows t.total_cols in
  let b = Vec.create t.total_rows in
  let row_pos = ref 0 in
  List.iter
    (fun (blocks, rhs) ->
      List.iter (fun (var, jac) -> Mat.set_block a !row_pos t.col_offsets.(var) jac) blocks;
      Array.blit rhs 0 b !row_pos (Vec.dim rhs);
      row_pos := !row_pos + Vec.dim rhs)
    (List.rev t.rows);
  (a, b)

let nnz t = t.nnz

let density t =
  let cells = t.total_rows * t.total_cols in
  if cells = 0 then 0.0 else float_of_int t.nnz /. float_of_int cells

let row_blocks t = List.rev t.rows
