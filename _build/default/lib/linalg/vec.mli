(** Dense vectors over floats.

    A vector is a plain [float array]; the module provides the pure
    operations the rest of the library needs and charges MAC costs to
    {!Macs}. *)

type t = float array

val create : int -> t
(** Zero vector of the given dimension. *)

val init : int -> (int -> float) -> t

val of_list : float list -> t

val dim : t -> int

val copy : t -> t

val get : t -> int -> float

val set : t -> int -> float -> unit

val add : t -> t -> t
(** Elementwise sum. Dimensions must agree. *)

val sub : t -> t -> t
(** Elementwise difference. Dimensions must agree. *)

val scale : float -> t -> t

val neg : t -> t

val dot : t -> t -> float
(** Inner product; charges [dim] MACs. *)

val norm : t -> float
(** Euclidean norm. *)

val norm_sq : t -> float
(** Squared Euclidean norm. *)

val dist : t -> t -> float
(** [dist a b] is [norm (sub a b)]. *)

val concat : t list -> t
(** Stack vectors end to end. *)

val slice : t -> pos:int -> len:int -> t
(** Contiguous sub-vector copy. *)

val axpy : alpha:float -> x:t -> y:t -> unit
(** [y <- alpha * x + y] in place; charges [dim] MACs. *)

val equal : ?eps:float -> t -> t -> bool
(** Componentwise comparison with tolerance (default 1e-9). *)

val pp : Format.formatter -> t -> unit
