type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then create 0 0
  else begin
    let cols = Array.length rows_arr.(0) in
    Array.iter
      (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
      rows_arr;
    init rows cols (fun i j -> rows_arr.(i).(j))
  end

let of_vec v = init (Vec.dim v) 1 (fun i _ -> v.(i))

let dims m = (m.rows, m.cols)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.get: out of bounds";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.set: out of bounds";
  m.data.((i * m.cols) + j) <- x

let to_vec m =
  if m.cols = 1 then Array.init m.rows (fun i -> m.data.(i * m.cols))
  else if m.rows = 1 then Array.copy m.data
  else invalid_arg "Mat.to_vec: not a vector shape"

let copy m = { m with data = Array.copy m.data }

let row m i = Array.init m.cols (fun j -> get m i j)
let col m j = Array.init m.rows (fun i -> get m i j)

let map f m = { m with data = Array.map f m.data }

let zip name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: shape mismatch %dx%d vs %dx%d" name a.rows a.cols b.rows b.cols);
  { a with data = Array.mapi (fun i x -> f x b.data.(i)) a.data }

let add a b = zip "add" ( +. ) a b
let sub a b = zip "sub" ( -. ) a b

let scale alpha m =
  Macs.add (m.rows * m.cols);
  map (fun x -> alpha *. x) m

let neg m = map (fun x -> -.x) m

let mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.mul: inner dimension mismatch %dx%d * %dx%d" a.rows a.cols b.rows b.cols);
  let out = create a.rows b.cols in
  (* Effective MACs: multiplications against structural zeros are
     skipped and not charged — padding with zeros and ones is exactly
     the waste the paper's representation study quantifies. *)
  let macs = ref 0 in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then begin
        macs := !macs + b.cols;
        for j = 0 to b.cols - 1 do
          out.data.((i * b.cols) + j) <-
            out.data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
      end
    done
  done;
  Macs.add !macs;
  out

let mul_vec m v =
  if m.cols <> Vec.dim v then invalid_arg "Mat.mul_vec: dimension mismatch";
  let macs = ref 0 in
  let out =
    Array.init m.rows (fun i ->
        let acc = ref 0.0 in
        for j = 0 to m.cols - 1 do
          let x = m.data.((i * m.cols) + j) in
          if x <> 0.0 then begin
            incr macs;
            acc := !acc +. (x *. v.(j))
          end
        done;
        !acc)
  in
  Macs.add !macs;
  out

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let trace m =
  let n = min m.rows m.cols in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. get m i i
  done;
  !acc

let frobenius m =
  let acc = ref 0.0 in
  Array.iter (fun x -> acc := !acc +. (x *. x)) m.data;
  sqrt !acc

let set_block m i j b =
  if i + b.rows > m.rows || j + b.cols > m.cols || i < 0 || j < 0 then
    invalid_arg "Mat.set_block: block does not fit";
  for bi = 0 to b.rows - 1 do
    Array.blit b.data (bi * b.cols) m.data (((i + bi) * m.cols) + j) b.cols
  done

let block m i j h w =
  if i + h > m.rows || j + w > m.cols || i < 0 || j < 0 || h < 0 || w < 0 then
    invalid_arg "Mat.block: out of bounds";
  init h w (fun bi bj -> get m (i + bi) (j + bj))

let hcat ms =
  match ms with
  | [] -> create 0 0
  | first :: _ ->
      let rows = first.rows in
      List.iter (fun m -> if m.rows <> rows then invalid_arg "Mat.hcat: row mismatch") ms;
      let cols = List.fold_left (fun acc m -> acc + m.cols) 0 ms in
      let out = create rows cols in
      let pos = ref 0 in
      List.iter
        (fun m ->
          set_block out 0 !pos m;
          pos := !pos + m.cols)
        ms;
      out

let vcat ms =
  match ms with
  | [] -> create 0 0
  | first :: _ ->
      let cols = first.cols in
      List.iter (fun m -> if m.cols <> cols then invalid_arg "Mat.vcat: column mismatch") ms;
      let rows = List.fold_left (fun acc m -> acc + m.rows) 0 ms in
      let out = create rows cols in
      let pos = ref 0 in
      List.iter
        (fun m ->
          set_block out !pos 0 m;
          pos := !pos + m.rows)
        ms;
      out

let nnz ?(eps = 1e-12) m =
  Array.fold_left (fun acc x -> if Float.abs x > eps then acc + 1 else acc) 0 m.data

let density ?eps m =
  if m.rows * m.cols = 0 then 0.0
  else float_of_int (nnz ?eps m) /. float_of_int (m.rows * m.cols)

let is_upper_triangular ?(eps = 1e-9) m =
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = 0 to min (i - 1) (m.cols - 1) do
      if Float.abs (get m i j) > eps then ok := false
    done
  done;
  !ok

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if Float.abs (x -. b.data.(i)) > eps then ok := false) a.data;
  !ok

let random rng rows cols =
  init rows cols (fun _ _ -> Orianna_util.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%s%9.4g" (if j > 0 then " " else "") (get m i j)
    done;
    Format.fprintf ppf "]@,"
  done;
  Format.fprintf ppf "@]"
