let factor a =
  let m, n = Mat.dims a in
  if m <> n then invalid_arg "Chol.factor: matrix not square";
  let l = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.get l i k *. Mat.get l j k)
      done;
      if i = j then begin
        if !acc <= 0.0 then failwith "Chol.factor: matrix not positive definite";
        Mat.set l i j (sqrt !acc)
      end
      else Mat.set l i j (!acc /. Mat.get l j j)
    done
  done;
  Macs.add (n * n * n / 6);
  l

let solve a b =
  let l = factor a in
  let y = Tri.solve_lower l b in
  Tri.solve_upper (Mat.transpose l) y

let solve_normal_equations a b =
  let at = Mat.transpose a in
  let ata = Mat.mul at a in
  let atb = Mat.mul_vec at b in
  solve ata atb
