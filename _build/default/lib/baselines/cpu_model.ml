open Orianna_isa

type model = {
  mname : string;
  freq_hz : float;
  effective_flops_per_cycle : float;
  op_overhead_s : float;
  mem_bandwidth_gbs : float;
  active_power_w : float;
}

(* Power figures are per-workload active power of the parts actually
   busy: one desktop core + uncore for Intel, one mobile core for the
   ARM cluster — the paper's energy ratios (15.1x vs Intel, 3.4x vs
   ARM for a board-level FPGA measurement) pin these down. *)
let intel =
  {
    mname = "Intel i7-11700";
    freq_hz = 2.5e9;
    effective_flops_per_cycle = 4.0;
    op_overhead_s = 100e-9;
    mem_bandwidth_gbs = 18.0;
    active_power_w = 35.0;
  }

let arm =
  {
    mname = "ARM Cortex-A57";
    freq_hz = 1.9e9;
    effective_flops_per_cycle = 1.0;
    op_overhead_s = 1000e-9;
    mem_bandwidth_gbs = 6.0;
    active_power_w = 1.2;
  }

type result = {
  seconds : float;
  energy_j : float;
  construct_seconds : float;
  solve_seconds : float;
}

let run model ?(construct_flop_scale = 1.0) (p : Program.t) =
  let src_shape id = (p.Program.instrs.(id).Instr.rows, p.Program.instrs.(id).Instr.cols) in
  let construct = ref 0.0 and solve = ref 0.0 in
  Array.iter
    (fun (ins : Instr.t) ->
      let flops = float_of_int (Instr.flops ins ~src_shape) in
      let flops =
        match ins.Instr.phase with
        | Instr.Construct -> flops *. construct_flop_scale
        | Instr.Decompose | Instr.Backsub -> flops
      in
      let words = float_of_int (ins.Instr.rows * ins.Instr.cols) in
      let arithmetic = flops /. (model.effective_flops_per_cycle *. model.freq_hz) in
      let memory = words *. 8.0 /. (model.mem_bandwidth_gbs *. 1e9) in
      (* Pure data movement between on-chip buffers does not exist on a
         CPU as a separate operation, but the gather/scatter of sparse
         blocks does cost the overhead + copy time. *)
      let t = model.op_overhead_s +. arithmetic +. memory in
      match ins.Instr.phase with
      | Instr.Construct -> construct := !construct +. t
      | Instr.Decompose | Instr.Backsub -> solve := !solve +. t)
    p.Program.instrs;
  let seconds = !construct +. !solve in
  {
    seconds;
    energy_j = seconds *. model.active_power_w;
    construct_seconds = !construct;
    solve_seconds = !solve;
  }

let pp_result ppf r =
  Format.fprintf ppf "%.3f ms (construct %.3f + solve %.3f), %.3f mJ" (r.seconds *. 1e3)
    (r.construct_seconds *. 1e3) (r.solve_seconds *. 1e3) (r.energy_j *. 1e3)
