(** Embedded GPU execution model (the Jetson TX1 Maxwell baseline).

    The paper implements this baseline with cuBLAS (batched small
    GEMMs during construction) and cuSolverSP (sparse QR during
    solving) and observes only ~2x over the ARM CPU: construction
    batches well (up to 4.8x) but decomposition and back substitution
    are sequential chains of tiny kernels whose launch overhead
    dominates (Sec. 7.3).  The model captures exactly that:
    construction instructions amortize one launch per batch, solve
    instructions pay a launch each because of their dependency
    chain. *)

open Orianna_isa

type model = {
  gname : string;
  flops_per_second : float;  (** sustained throughput on batched small ops *)
  kernel_launch_s : float;
  construct_batch : int;  (** independent ops batched per launch *)
  mem_bandwidth_gbs : float;
  active_power_w : float;
}

val jetson_maxwell : model

type result = {
  seconds : float;
  energy_j : float;
  construct_seconds : float;
  solve_seconds : float;
}

val run : model -> Program.t -> result
