(** CPU execution models (Sec. 7.1 baselines).

    A CPU executes the same logical matrix-operation workload the
    accelerator does, but sequentially: every operation pays a fixed
    software overhead (dynamic dispatch over sparse structures,
    pointer chasing, cache misses on tiny irregular blocks) plus its
    arithmetic at the core's effective small-matrix FLOP rate.  The
    overhead term dominating on tiny blocks is exactly why the paper's
    desktop CPU runs LIO-SAM-class workloads at a few Hz.

    The [construct_flop_scale] knob inflates construction-phase
    arithmetic to model a pose representation other than
    [<so(n),T(n)>] (the stock GTSAM-style baseline pays the SE(3)
    padding; ORIANNA-SW sets the scale to 1). *)

open Orianna_isa

type model = {
  mname : string;
  freq_hz : float;
  effective_flops_per_cycle : float;  (** sustained on small dense blocks *)
  op_overhead_s : float;  (** per-operation software overhead *)
  mem_bandwidth_gbs : float;
  active_power_w : float;
}

val intel : model
(** Intel i7-11700 class desktop CPU. *)

val arm : model
(** ARM Cortex-A57 class mobile CPU (Jetson TX1). *)

type result = {
  seconds : float;
  energy_j : float;
  construct_seconds : float;
  solve_seconds : float;  (** decomposition + back substitution *)
}

val run : model -> ?construct_flop_scale:float -> Program.t -> result
(** Sequential replay of the instruction stream. *)

val pp_result : Format.formatter -> result -> unit
