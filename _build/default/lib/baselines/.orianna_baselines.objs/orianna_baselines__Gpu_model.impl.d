lib/baselines/gpu_model.ml: Array Instr Orianna_isa Program
