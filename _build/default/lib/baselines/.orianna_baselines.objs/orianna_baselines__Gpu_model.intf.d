lib/baselines/gpu_model.mli: Orianna_isa Program
