lib/baselines/cpu_model.ml: Array Format Instr Orianna_isa Program
