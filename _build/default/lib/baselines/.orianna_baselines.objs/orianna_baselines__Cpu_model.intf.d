lib/baselines/cpu_model.mli: Format Orianna_isa Program
