open Orianna_isa

type model = {
  gname : string;
  flops_per_second : float;
  kernel_launch_s : float;
  construct_batch : int;
  mem_bandwidth_gbs : float;
  active_power_w : float;
}

let jetson_maxwell =
  {
    gname = "Jetson TX1 Maxwell";
    flops_per_second = 120.0e9;
    kernel_launch_s = 4e-6;
    construct_batch = 64;
    mem_bandwidth_gbs = 25.0;
    active_power_w = 6.5;
  }

type result = {
  seconds : float;
  energy_j : float;
  construct_seconds : float;
  solve_seconds : float;
}

let run model (p : Program.t) =
  let src_shape id = (p.Program.instrs.(id).Instr.rows, p.Program.instrs.(id).Instr.cols) in
  let construct_ops = ref 0 in
  let construct_flops = ref 0.0 and construct_words = ref 0.0 in
  let solve = ref 0.0 in
  Array.iter
    (fun (ins : Instr.t) ->
      let flops = float_of_int (Instr.flops ins ~src_shape) in
      let words = float_of_int (ins.Instr.rows * ins.Instr.cols) in
      match ins.Instr.phase with
      | Instr.Construct ->
          incr construct_ops;
          construct_flops := !construct_flops +. flops;
          construct_words := !construct_words +. words
      | Instr.Decompose | Instr.Backsub ->
          (* Sparse-solver path: a dependency chain of small kernels.
             Data movement folds into the kernels (bandwidth only);
             each arithmetic step pays a launch. *)
          let launch =
            if Instr.is_data_movement ins.Instr.op then 0.0 else model.kernel_launch_s
          in
          let t =
            launch
            +. (flops /. model.flops_per_second)
            +. (words *. 8.0 /. (model.mem_bandwidth_gbs *. 1e9))
          in
          solve := !solve +. t)
    p.Program.instrs;
  let batches = ( !construct_ops + model.construct_batch - 1 ) / model.construct_batch in
  let construct =
    (float_of_int batches *. model.kernel_launch_s)
    +. (!construct_flops /. model.flops_per_second)
    +. (!construct_words *. 8.0 /. (model.mem_bandwidth_gbs *. 1e9))
  in
  let seconds = construct +. !solve in
  {
    seconds;
    energy_j = seconds *. model.active_power_w;
    construct_seconds = construct;
    solve_seconds = !solve;
  }
