open Orianna_linalg

type phase = Construct | Decompose | Backsub

type kernel = { kname : string; flops : int; apply : Mat.t array -> Mat.t }

type opcode =
  | Load of Mat.t
  | Vadd
  | Vsub
  | Scale of float
  | Neg
  | Transpose
  | Gemm
  | Gemv
  | Logm
  | Expm
  | Skew
  | Jr
  | Jrinv
  | Assemble of (int * int) list
  | Extract of { row : int; col : int; rows : int; cols : int }
  | Qr
  | Backsolve
  | Kernel of kernel

type t = {
  id : int;
  op : opcode;
  srcs : int array;
  rows : int;
  cols : int;
  phase : phase;
  algo : int;
  tag : string;
}

let opcode_name = function
  | Load _ -> "LOAD"
  | Vadd -> "VADD"
  | Vsub -> "VSUB"
  | Scale _ -> "SCALE"
  | Neg -> "NEG"
  | Transpose -> "RT"
  | Gemm -> "RR"
  | Gemv -> "RV"
  | Logm -> "LOG"
  | Expm -> "EXP"
  | Skew -> "SKEW"
  | Jr -> "JR"
  | Jrinv -> "JRINV"
  | Assemble _ -> "ASSEMBLE"
  | Extract _ -> "EXTRACT"
  | Qr -> "QR"
  | Backsolve -> "BACKSUB"
  | Kernel k -> "KERNEL:" ^ k.kname

let phase_name = function
  | Construct -> "construct"
  | Decompose -> "decompose"
  | Backsub -> "backsub"

let is_data_movement = function
  | Load _ | Assemble _ | Extract _ -> true
  | Vadd | Vsub | Scale _ | Neg | Transpose | Gemm | Gemv | Logm | Expm | Skew | Jr | Jrinv | Qr
  | Backsolve | Kernel _ ->
      false

let flops t ~src_shape =
  let out = t.rows * t.cols in
  match t.op with
  | Load _ | Assemble _ | Extract _ -> 0
  | Vadd | Vsub | Scale _ | Neg -> out
  | Transpose -> out
  | Gemm ->
      let _, k = src_shape t.srcs.(0) in
      t.rows * k * t.cols
  | Gemv ->
      let m, k = src_shape t.srcs.(0) in
      m * k
  | Logm | Expm -> 30 (* fixed small-kernel cost (Rodrigues / trace + axis) *)
  | Skew -> 9
  | Jr | Jrinv -> 40
  | Qr ->
      let m, n = src_shape t.srcs.(0) in
      Qr.flops_estimate ~rows:m ~cols:n
  | Backsolve ->
      let n, _ = src_shape t.srcs.(0) in
      n * (n + 1) / 2
  | Kernel k -> k.flops

let pp ppf t =
  Format.fprintf ppf "i%d: %s [%dx%d] <- %s {%s, algo %d}%s" t.id (opcode_name t.op) t.rows t.cols
    (String.concat "," (Array.to_list (Array.map (Printf.sprintf "i%d") t.srcs)))
    (phase_name t.phase) t.algo
    (if t.tag = "" then "" else " ; " ^ t.tag)
