(** The ORIANNA instruction set (Sec. 5.2 / Tbl. 3).

    Instructions operate on matrix registers in SSA form: every
    instruction defines exactly one register, whose id {e is} the
    instruction id, and reads the registers listed in [srcs] — the
    dependency graph the out-of-order controller schedules against is
    therefore explicit.  Vectors are stored as [n x 1] matrices.

    The first group mirrors the nine primitive operations of Tbl. 3;
    [Qr] and [Backsub] drive the factor-graph inference block;
    [Assemble]/[Extract] are the buffer gather/scatter moves that feed
    the decomposition unit; [Kernel] wraps a native factor's
    linearization (an opaque fixed-function block with a declared flop
    cost). *)

open Orianna_linalg

type phase =
  | Construct  (** linear-equation construction: errors + Jacobians *)
  | Decompose  (** variable elimination: partial QR steps *)
  | Backsub  (** back substitution *)

type kernel = {
  kname : string;
  flops : int;  (** declared cost, used by hardware latency models *)
  apply : Mat.t array -> Mat.t;  (** functional semantics *)
}

type opcode =
  | Load of Mat.t  (** constant / measurement / current-value input *)
  | Vadd  (** VP: elementwise add *)
  | Vsub  (** VP: elementwise subtract *)
  | Scale of float  (** VP with constant gain *)
  | Neg  (** VP negation *)
  | Transpose  (** RT *)
  | Gemm  (** RR and general matrix products *)
  | Gemv  (** RV and general matrix-vector products *)
  | Logm  (** Log: rotation to tangent coordinates *)
  | Expm  (** Exp: tangent coordinates to rotation *)
  | Skew  (** (.)^ *)
  | Jr  (** right Jacobian *)
  | Jrinv  (** inverse right Jacobian *)
  | Assemble of (int * int) list  (** gather source blocks at (row, col) offsets *)
  | Extract of { row : int; col : int; rows : int; cols : int }  (** block read *)
  | Qr  (** triangularize (partial QR of Fig. 5) *)
  | Backsolve  (** upper-triangular solve: srcs = [r; d] *)
  | Kernel of kernel  (** opaque native-factor linearization *)

type t = {
  id : int;
  op : opcode;
  srcs : int array;
  rows : int;  (** output shape *)
  cols : int;
  phase : phase;
  algo : int;  (** owning algorithm, for coarse-grained OoO *)
  tag : string;  (** human-readable provenance *)
}

val opcode_name : opcode -> string

val phase_name : phase -> string

val is_data_movement : opcode -> bool
(** [Load], [Assemble], [Extract]: buffer traffic, not arithmetic. *)

val flops : t -> src_shape:(int -> int * int) -> int
(** Arithmetic cost estimate of one instruction (MAC-equivalents),
    derived from the opcode, the output shape and the source shapes
    ([src_shape] maps a register id to its dimensions). *)

val pp : Format.formatter -> t -> unit
