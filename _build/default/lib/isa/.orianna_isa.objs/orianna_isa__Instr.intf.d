lib/isa/instr.mli: Format Mat Orianna_linalg
