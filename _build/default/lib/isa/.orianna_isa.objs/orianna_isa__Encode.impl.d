lib/isa/encode.ml: Array Buffer Char Hashtbl Instr Int64 List Mat Orianna_linalg Printf Program String
