lib/isa/instr.ml: Array Format Mat Orianna_linalg Printf Qr String
