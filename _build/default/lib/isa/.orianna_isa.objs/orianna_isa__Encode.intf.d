lib/isa/encode.mli: Instr Program
