lib/isa/program.mli: Format Instr Mat Orianna_linalg Vec
