lib/isa/program.ml: Array Format Hashtbl Instr List Mat Option Orianna_lie Orianna_linalg Printf Qr So2 So3 Tri
