open Orianna_linalg
open Orianna_lie
module Value = Orianna_ir.Value
module Expr = Orianna_ir.Expr

type t = Pose2 of Pose2.t | Pose3 of Pose3.t | Se3 of Se3.t | Vector of Vec.t

let dim = function
  | Pose2 _ -> Pose2.tangent_dim
  | Pose3 _ -> Pose3.tangent_dim
  | Se3 _ -> Se3.tangent_dim
  | Vector v -> Vec.dim v

let retract value delta =
  if Vec.dim delta <> dim value then invalid_arg "Var.retract: tangent dimension mismatch";
  match value with
  | Pose2 p -> Pose2 (Pose2.retract p delta)
  | Pose3 p -> Pose3 (Pose3.retract p delta)
  | Se3 x -> Se3 (Se3.retract x delta)
  | Vector v -> Vector (Vec.add v delta)

let local a b =
  match (a, b) with
  | Pose2 p, Pose2 q -> Pose2.local p q
  | Pose3 p, Pose3 q -> Pose3.local p q
  | Se3 x, Se3 y -> Se3.local x y
  | Vector v, Vector w -> Vec.sub w v
  | (Pose2 _ | Pose3 _ | Se3 _ | Vector _), _ -> invalid_arg "Var.local: kind mismatch"

let leaf_type value leaf =
  match (value, leaf) with
  | Pose2 _, Expr.Rot_of _ -> Value.Trot 2
  | Pose2 _, Expr.Trans_of _ -> Value.Tvec 2
  | Pose3 _, Expr.Rot_of _ -> Value.Trot 3
  | Pose3 _, Expr.Trans_of _ -> Value.Tvec 3
  | Vector v, Expr.Vec_of _ -> Value.Tvec (Vec.dim v)
  | Vector _, (Expr.Rot_of _ | Expr.Trans_of _) ->
      invalid_arg "Var.leaf_type: pose leaf refers to a vector variable"
  | Se3 _, (Expr.Rot_of _ | Expr.Trans_of _ | Expr.Vec_of _) ->
      invalid_arg "Var.leaf_type: SE(3) variables have no unified-representation leaves"
  | (Pose2 _ | Pose3 _), Expr.Vec_of _ ->
      invalid_arg "Var.leaf_type: vector leaf refers to a pose variable"

let leaf_value value leaf =
  match (value, leaf) with
  | Pose2 p, Expr.Rot_of _ -> Value.Rot (Pose2.rotation p)
  | Pose2 p, Expr.Trans_of _ -> Value.Vc (Pose2.translation p)
  | Pose3 p, Expr.Rot_of _ -> Value.Rot (Pose3.rotation p)
  | Pose3 p, Expr.Trans_of _ -> Value.Vc (Pose3.translation p)
  | Vector v, Expr.Vec_of _ -> Value.Vc v
  | Vector _, (Expr.Rot_of _ | Expr.Trans_of _) ->
      invalid_arg "Var.leaf_value: pose leaf refers to a vector variable"
  | Se3 _, (Expr.Rot_of _ | Expr.Trans_of _ | Expr.Vec_of _) ->
      invalid_arg "Var.leaf_value: SE(3) variables have no unified-representation leaves"
  | (Pose2 _ | Pose3 _), Expr.Vec_of _ ->
      invalid_arg "Var.leaf_value: vector leaf refers to a pose variable"

let rot_dim = function Pose2 _ -> 1 | Pose3 _ -> 3 | Se3 _ -> 0 | Vector _ -> 0

let distance a b =
  match (a, b) with
  | Pose2 p, Pose2 q -> Pose2.distance p q
  | Pose3 p, Pose3 q -> Pose3.distance p q
  | Se3 x, Se3 y -> Vec.dist (Se3.translation x) (Se3.translation y)
  | Vector v, Vector w -> Vec.dist v w
  | (Pose2 _ | Pose3 _ | Se3 _ | Vector _), _ -> invalid_arg "Var.distance: kind mismatch"

let equal ?eps a b =
  match (a, b) with
  | Pose2 p, Pose2 q -> Pose2.equal ?eps p q
  | Pose3 p, Pose3 q -> Pose3.equal ?eps p q
  | Se3 x, Se3 y -> Se3.equal ?eps x y
  | Vector v, Vector w -> Vec.equal ?eps v w
  | (Pose2 _ | Pose3 _ | Se3 _ | Vector _), _ -> false

let pp ppf = function
  | Pose2 p -> Pose2.pp ppf p
  | Pose3 p -> Pose3.pp ppf p
  | Se3 x -> Se3.pp ppf x
  | Vector v -> Format.fprintf ppf "vector %a" Vec.pp v
