open Orianna_linalg
module Expr = Orianna_ir.Expr
module Modfg = Orianna_ir.Modfg

type lookup = string -> Var.t

type kind =
  | Symbolic of Expr.t list
  | Native of int * (lookup -> Vec.t * (string * Mat.t) list)

type t = {
  name : string;
  vars : string list;
  sigmas : Vec.t;
  kind : kind;
  mutable cached : Modfg.t option;
}

let check_distinct vars =
  let seen = Hashtbl.create 4 in
  List.iter
    (fun v ->
      if Hashtbl.mem seen v then invalid_arg ("Factor: duplicate variable " ^ v);
      Hashtbl.add seen v ())
    vars

let symbolic ~name ~vars ~sigmas exprs =
  check_distinct vars;
  if exprs = [] then invalid_arg "Factor.symbolic: no error expressions";
  let mentioned = List.concat_map Expr.variables exprs in
  List.iter
    (fun m ->
      if not (List.mem m vars) then
        invalid_arg (Printf.sprintf "Factor.symbolic %s: expression mentions undeclared %s" name m))
    mentioned;
  { name; vars; sigmas; kind = Symbolic exprs; cached = None }

let native ~name ~vars ~sigmas ~error_dim f =
  check_distinct vars;
  if Vec.dim sigmas <> error_dim then
    invalid_arg (Printf.sprintf "Factor.native %s: %d sigmas for error dim %d" name (Vec.dim sigmas) error_dim);
  { name; vars; sigmas; kind = Native (error_dim, f); cached = None }

let name t = t.name
let vars t = t.vars
let sigmas t = t.sigmas
let is_symbolic t = match t.kind with Symbolic _ -> true | Native _ -> false

let leaf_var = function Expr.Rot_of v | Expr.Trans_of v | Expr.Vec_of v -> v

let modfg t lookup =
  match t.kind with
  | Native _ -> None
  | Symbolic exprs -> (
      match t.cached with
      | Some g -> Some g
      | None ->
          let dim_of leaf = Var.leaf_type (lookup (leaf_var leaf)) leaf in
          let g = Modfg.build ~dim_of exprs in
          if Modfg.error_dim g <> Vec.dim t.sigmas then
            invalid_arg
              (Printf.sprintf "Factor %s: %d sigmas for error dim %d" t.name (Vec.dim t.sigmas)
                 (Modfg.error_dim g));
          t.cached <- Some g;
          Some g)

let error_dim t =
  match t.kind with
  | Native (d, _) -> d
  | Symbolic _ -> Vec.dim t.sigmas

let ir_lookup lookup leaf = Var.leaf_value (lookup (leaf_var leaf)) leaf

let whiten t err = Array.mapi (fun i e -> e /. t.sigmas.(i)) err

let raw_error t lookup =
  match t.kind with
  | Symbolic _ ->
      let g = Option.get (modfg t lookup) in
      Modfg.error g ~lookup:(ir_lookup lookup)
  | Native (_, f) -> fst (f lookup)

let error t lookup = whiten t (raw_error t lookup)

let error_norm_sq t lookup = Vec.norm_sq (error t lookup)

(* Combine per-leaf MO-DFG Jacobians into one block per variable, in
   the variable's tangent order: orientation columns first, then
   translation. *)
let combine_blocks t lookup err_dim leaf_jacs =
  List.map
    (fun v ->
      let value = lookup v in
      let vdim = Var.dim value in
      let block = Mat.create err_dim vdim in
      let rdim = Var.rot_dim value in
      List.iter
        (fun (leaf, jac) ->
          if leaf_var leaf = v then
            match leaf with
            | Expr.Rot_of _ -> Mat.set_block block 0 0 jac
            | Expr.Trans_of _ -> Mat.set_block block 0 rdim jac
            | Expr.Vec_of _ -> Mat.set_block block 0 0 jac)
        leaf_jacs;
      (v, block))
    t.vars

let whiten_blocks t blocks =
  List.map
    (fun (v, b) ->
      let rows, cols = Mat.dims b in
      let w = Mat.init rows cols (fun i j -> Mat.get b i j /. t.sigmas.(i)) in
      (v, w))
    blocks

let linearize t lookup =
  match t.kind with
  | Symbolic _ ->
      let g = Option.get (modfg t lookup) in
      let err, leaf_jacs = Modfg.linearize g ~lookup:(ir_lookup lookup) in
      let blocks = combine_blocks t lookup (Vec.dim err) leaf_jacs in
      (whiten t err, whiten_blocks t blocks)
  | Native (d, f) ->
      let err, named = f lookup in
      if Vec.dim err <> d then
        invalid_arg (Printf.sprintf "Factor %s: native error dim %d, declared %d" t.name (Vec.dim err) d);
      let blocks =
        List.map
          (fun v ->
            match List.assoc_opt v named with
            | Some b ->
                let rows, cols = Mat.dims b in
                if rows <> d || cols <> Var.dim (lookup v) then
                  invalid_arg (Printf.sprintf "Factor %s: bad Jacobian shape for %s" t.name v);
                (v, b)
            | None -> (v, Mat.create d (Var.dim (lookup v))))
          t.vars
      in
      (whiten t err, whiten_blocks t blocks)
