open Orianna_linalg

type t = {
  vars : string list;
  blocks : (string * Mat.t) list;
  rhs : Vec.t;
}

let of_factor factor lookup =
  let err, blocks = Factor.linearize factor lookup in
  { vars = Factor.vars factor; blocks; rhs = Vec.neg err }

let rows t = Vec.dim t.rhs

let involves t v = List.mem v t.vars

let block t v = List.assoc_opt v t.blocks

let assemble ~var_order ~dims factors =
  let col_dims = Array.of_list (List.map dims var_order) in
  let index = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.add index v i) var_order;
  let asm = Assembly.create ~col_dims in
  List.iter
    (fun f ->
      let blocks =
        List.map
          (fun (v, b) ->
            match Hashtbl.find_opt index v with
            | Some i -> (i, b)
            | None -> invalid_arg ("Linear_system.assemble: unknown variable " ^ v))
          f.blocks
      in
      Assembly.add_row asm ~blocks ~rhs:f.rhs)
    factors;
  asm

let dense_solve ~var_order ~dims factors =
  let asm = assemble ~var_order ~dims factors in
  let a, b = Assembly.to_dense asm in
  let x = Qr.solve_ls a b in
  let pos = ref 0 in
  List.map
    (fun v ->
      let d = dims v in
      let sol = Vec.slice x ~pos:!pos ~len:d in
      pos := !pos + d;
      (v, sol))
    var_order

let pp ppf t =
  Format.fprintf ppf "@[<v>lin-factor on [%s], %d rows@]" (String.concat "," t.vars) (rows t)
