(** Variable elimination orderings.

    The fill-in of sequential QR elimination — and hence the shapes of
    the small dense matrices of Fig. 5 — depends on the order in which
    variables are eliminated.  [Min_degree] is the greedy
    minimum-degree heuristic (the spirit of COLAMD, which GTSAM uses);
    [Natural] and [Reverse] follow insertion order. *)

type strategy = Natural | Reverse | Min_degree

val compute : strategy -> vars:string list -> factor_scopes:string list list -> string list
(** [compute s ~vars ~factor_scopes] returns a permutation of [vars].
    [factor_scopes] lists, for every factor, the variables it touches.
    Ties in [Min_degree] break by insertion position, so the result is
    deterministic. *)

val strategy_name : strategy -> string
