(** Robust loss functions (M-estimators).

    Real sensor pipelines contain outliers (bad loop closures, wrong
    data associations); production factor-graph solvers wrap factors
    in a robust loss that down-weights large residuals.  This module
    implements the standard IRLS treatment: at each linearization the
    whitened error and Jacobians are rescaled by [sqrt w(|e|)], which
    makes Gauss-Newton on the wrapped factor equal to iteratively
    reweighted least squares on the robust objective. *)

type loss =
  | Trivial  (** plain least squares: w = 1 *)
  | Huber of float  (** quadratic near 0, linear beyond [k] *)
  | Cauchy of float  (** heavy-tailed: w = 1 / (1 + (e/k)^2) *)
  | Tukey of float  (** hard redescending: zero weight beyond [k] *)

val weight : loss -> float -> float
(** [weight loss residual_norm] is the IRLS weight [w] in [[0, 1]]. *)

val robustify : loss -> Factor.t -> Factor.t
(** Wrap a factor: same variables and dimensions, error and Jacobians
    rescaled by [sqrt (weight loss |e|)] at every evaluation.
    [Trivial] returns the factor unchanged. *)
