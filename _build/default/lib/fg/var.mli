(** Variable values of a factor graph.

    A variable is either a unified pose ([<so(2),T(2)>] or
    [<so(3),T(3)>]) or a plain vector (landmark position, velocity,
    control input, ...).  Each value knows its tangent dimension, how
    to apply an optimization update ({!retract}) and how to measure a
    difference ({!local}). *)

open Orianna_linalg
open Orianna_lie

type t =
  | Pose2 of Pose2.t
  | Pose3 of Pose3.t
  | Se3 of Se3.t
      (** Baseline representation for the Sec. 4.3 comparison: a padded
          4x4 transform with a joint 6-dimensional se(3) tangent.  SE(3)
          variables work only with native factors — they have no
          [<so(n),T(n)>] leaves, which is precisely the compatibility
          limitation the paper argues motivates the unified
          representation. *)
  | Vector of Vec.t

val dim : t -> int
(** Tangent dimension: 3, 6 or the vector length. *)

val retract : t -> Vec.t -> t
(** Apply a tangent update.  Raises [Invalid_argument] on dimension
    mismatch. *)

val local : t -> t -> Vec.t
(** [local a b] is the tangent [d] with [retract a d = b]; raises
    [Invalid_argument] on kind mismatch. *)

val leaf_type : t -> Orianna_ir.Expr.leaf -> Orianna_ir.Value.ty
(** Declared IR type of a leaf referring to this variable: rotation
    and translation blocks for poses, the whole vector otherwise.
    Raises [Invalid_argument] if the leaf kind does not apply (e.g.
    [Rot_of] of a plain vector). *)

val leaf_value : t -> Orianna_ir.Expr.leaf -> Orianna_ir.Value.t
(** Runtime IR value of a leaf referring to this variable. *)

val rot_dim : t -> int
(** Tangent dimension of the orientation block (0 for vectors). *)

val distance : t -> t -> float
(** Translation / Euclidean distance between two values of the same
    kind. *)

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
