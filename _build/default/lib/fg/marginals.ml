open Orianna_linalg

type t = {
  offsets : (string, int) Hashtbl.t;
  dims : (string, int) Hashtbl.t;
  sigma : Mat.t Lazy.t;
}

let of_result ~order ~dims result =
  let offsets = Hashtbl.create 16 in
  let dim_tbl = Hashtbl.create 16 in
  let width = ref 0 in
  List.iter
    (fun v ->
      Hashtbl.add offsets v !width;
      Hashtbl.add dim_tbl v (dims v);
      width := !width + dims v)
    order;
  let w = !width in
  let sigma =
    lazy
      (let r = Elimination.r_matrix ~order ~dims result in
       (* Sigma = R^-1 R^-T: solve R x = e_i for every column, then
          Sigma = X Xᵀ with X = R^-1. *)
       let rinv = Mat.create w w in
       for j = 0 to w - 1 do
         let e = Vec.create w in
         e.(j) <- 1.0;
         let x = Tri.solve_upper r e in
         for i = 0 to w - 1 do
           Mat.set rinv i j x.(i)
         done
       done;
       Mat.mul rinv (Mat.transpose rinv))
  in
  { offsets; dims = dim_tbl; sigma }

let find_var t v =
  match (Hashtbl.find_opt t.offsets v, Hashtbl.find_opt t.dims v) with
  | Some off, Some d -> (off, d)
  | _ -> raise Not_found

let joint t a b =
  let oa, da = find_var t a in
  let ob, db = find_var t b in
  Mat.block (Lazy.force t.sigma) oa ob da db

let marginal t v = joint t v v

let full t = Lazy.force t.sigma
