open Orianna_linalg

type loss = Trivial | Huber of float | Cauchy of float | Tukey of float

let check_k what k = if k <= 0.0 then invalid_arg ("Robust." ^ what ^ ": threshold must be positive")

let weight loss e =
  let e = Float.abs e in
  match loss with
  | Trivial -> 1.0
  | Huber k ->
      check_k "huber" k;
      if e <= k then 1.0 else k /. e
  | Cauchy k ->
      check_k "cauchy" k;
      1.0 /. (1.0 +. ((e /. k) *. (e /. k)))
  | Tukey k ->
      check_k "tukey" k;
      if e >= k then 0.0
      else begin
        let r = 1.0 -. ((e /. k) *. (e /. k)) in
        r *. r
      end

let robustify loss factor =
  match loss with
  | Trivial -> factor
  | Huber _ | Cauchy _ | Tukey _ ->
      let dim = Factor.error_dim factor in
      Factor.native
        ~name:(Factor.name factor ^ "!robust")
        ~vars:(Factor.vars factor)
        ~sigmas:(Array.make dim 1.0) (* inner factor already whitens *)
        ~error_dim:dim
        (fun lookup ->
          let err, blocks = Factor.linearize factor lookup in
          let s = sqrt (weight loss (Vec.norm err)) in
          (Vec.scale s err, List.map (fun (v, b) -> (v, Mat.scale s b)) blocks))
