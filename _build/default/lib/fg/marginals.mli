(** Marginal covariance recovery from the square-root information
    factor.

    After elimination, [R] satisfies [RᵀR = AᵀA] (the information
    matrix), so the posterior covariance is [Sigma = R⁻¹ R⁻ᵀ].  The
    per-variable marginal is the corresponding diagonal block —
    localization stacks report it as the pose uncertainty.  Recovery
    works column by column through triangular solves on the assembled
    [R], which is exact and adequate at the problem sizes the
    applications use. *)

open Orianna_linalg

type t

val of_result :
  order:string list -> dims:(string -> int) -> Elimination.result -> t
(** Build the recovery context from an elimination result. *)

val marginal : t -> string -> Mat.t
(** [marginal t v] is the [dim(v) x dim(v)] covariance block of [v].
    Raises [Not_found] for unknown variables. *)

val joint : t -> string -> string -> Mat.t
(** [joint t a b] is the [dim(a) x dim(b)] cross-covariance block. *)

val full : t -> Mat.t
(** The complete covariance matrix in elimination order (for tests
    and small problems). *)
