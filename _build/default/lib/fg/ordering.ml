type strategy = Natural | Reverse | Min_degree

let strategy_name = function
  | Natural -> "natural"
  | Reverse -> "reverse"
  | Min_degree -> "min-degree"

module Sset = Set.Make (String)

let min_degree ~vars ~factor_scopes =
  (* Adjacency via shared factors; eliminating a variable connects its
     remaining neighbors into a clique (simulating the new factor f7
     of Fig. 5).  The adjacency sets hold live variables only, so
     degrees are their cardinalities and each elimination updates only
     the eliminated variable's neighborhood. *)
  let position = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.add position v i) vars;
  let adj : (string, Sset.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace adj v Sset.empty) vars;
  List.iter
    (fun scope ->
      List.iter
        (fun v ->
          List.iter
            (fun w ->
              if v <> w then
                Hashtbl.replace adj v (Sset.add w (Hashtbl.find adj v)))
            scope)
        scope)
    factor_scopes;
  let remaining = ref (Sset.of_list vars) in
  let order = ref [] in
  while not (Sset.is_empty !remaining) do
    let best =
      Sset.fold
        (fun v acc ->
          let dv = Sset.cardinal (Hashtbl.find adj v) in
          match acc with
          | None -> Some (v, dv)
          | Some (b, db) ->
              if dv < db || (dv = db && Hashtbl.find position v < Hashtbl.find position b) then
                Some (v, dv)
              else acc)
        !remaining None
    in
    let v, _ = Option.get best in
    let neighbors = Hashtbl.find adj v in
    (* Clique the neighbors and drop the eliminated variable. *)
    Sset.iter
      (fun a ->
        let updated = Sset.remove v (Sset.union (Hashtbl.find adj a) (Sset.remove a neighbors)) in
        Hashtbl.replace adj a updated)
      neighbors;
    Hashtbl.remove adj v;
    remaining := Sset.remove v !remaining;
    order := v :: !order
  done;
  List.rev !order

let compute strategy ~vars ~factor_scopes =
  match strategy with
  | Natural -> vars
  | Reverse -> List.rev vars
  | Min_degree -> min_degree ~vars ~factor_scopes
