lib/fg/graph.ml: Factor Hashtbl Linear_system List Orianna_linalg Printf Var
