lib/fg/ordering.ml: Hashtbl List Option Set String
