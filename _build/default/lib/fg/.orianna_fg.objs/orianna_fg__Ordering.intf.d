lib/fg/ordering.mli:
