lib/fg/graph.mli: Factor Linear_system Var
