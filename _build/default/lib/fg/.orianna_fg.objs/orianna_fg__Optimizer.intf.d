lib/fg/optimizer.mli: Elimination Format Graph Ordering Orianna_linalg
