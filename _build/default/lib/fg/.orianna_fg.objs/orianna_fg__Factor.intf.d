lib/fg/factor.mli: Mat Orianna_ir Orianna_linalg Var Vec
