lib/fg/linear_system.ml: Array Assembly Factor Format Hashtbl List Mat Orianna_linalg Qr String Vec
