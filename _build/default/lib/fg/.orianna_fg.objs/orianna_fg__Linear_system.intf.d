lib/fg/linear_system.mli: Assembly Factor Format Mat Orianna_linalg Vec
