lib/fg/elimination.ml: Array Chol Hashtbl Linear_system List Mat Option Orianna_linalg Qr Tri Vec
