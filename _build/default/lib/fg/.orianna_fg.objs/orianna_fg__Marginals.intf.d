lib/fg/marginals.mli: Elimination Mat Orianna_linalg
