lib/fg/factor.ml: Array Hashtbl List Mat Option Orianna_ir Orianna_linalg Printf Var Vec
