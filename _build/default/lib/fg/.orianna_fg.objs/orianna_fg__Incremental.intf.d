lib/fg/incremental.mli: Linear_system Orianna_linalg Vec
