lib/fg/incremental.ml: Elimination Hashtbl Linear_system List Set String
