lib/fg/optimizer.ml: Array Elimination Float Format Graph Linear_system List Logs Macs Mat Ordering Orianna_linalg Var Vec
