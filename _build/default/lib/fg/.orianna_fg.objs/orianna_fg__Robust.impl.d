lib/fg/robust.ml: Array Factor Float List Mat Orianna_linalg Vec
