lib/fg/robust.mli: Factor
