lib/fg/var.ml: Format Orianna_ir Orianna_lie Orianna_linalg Pose2 Pose3 Se3 Vec
