lib/fg/elimination.mli: Linear_system Mat Orianna_linalg Vec
