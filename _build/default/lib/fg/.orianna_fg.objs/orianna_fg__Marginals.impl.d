lib/fg/marginals.ml: Array Elimination Hashtbl Lazy List Mat Orianna_linalg Tri Vec
