(** Incremental smoothing (iSAM-style) over the square-root factor.

    Localization runs as a stream: every frame appends new poses and
    measurements.  Re-eliminating the whole graph each frame wastes
    work — the structure of sequential QR makes the update local:
    the stored conditionals of a variable are themselves valid linear
    factors (the rows of [R]), so adding information only requires
    re-eliminating the variables the new factors touch plus their
    ancestors toward the root of the elimination order.

    This is the linear-incremental core (iSAM without periodic
    relinearization): updates take {e linearized} factors and the
    solution is exact — identical to a batch elimination over all
    factors seen so far, which the test suite checks.  Nonlinear
    streams relinearize by rebuilding (the [Optimizer] path). *)

open Orianna_linalg

type t

val create : unit -> t

type stats = {
  total_variables : int;
  affected_last : int;  (** variables re-eliminated by the last update *)
  updates : int;
}

val add_variable : t -> string -> int -> unit
(** Declare a new variable with its tangent dimension.  New variables
    are appended to the elimination order.  Raises
    [Invalid_argument] on duplicates. *)

val update : t -> Linear_system.t list -> unit
(** Incorporate new linear factors.  Every variable they mention must
    have been declared.  Only the affected sub-problem is
    re-eliminated. *)

val solution : t -> (string * Vec.t) list
(** Current solution (back substitution over all conditionals). *)

val stats : t -> stats

val batch_equivalent : t -> Linear_system.t list -> (string * Vec.t) list
(** Reference: batch-eliminate the given full factor list under this
    smoother's ordering (for equivalence tests). *)
