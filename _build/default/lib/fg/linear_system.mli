(** Linearized factors: the block rows of [A Δ = b] (Fig. 4).

    Produced by linearizing every factor of a graph at the current
    estimate; consumed by {!Elimination} (the factor-graph path) or
    assembled densely (the VANILLA-HLS baseline path). *)

open Orianna_linalg

type t = {
  vars : string list;  (** involved variables, block order *)
  blocks : (string * Mat.t) list;  (** Jacobian block per variable *)
  rhs : Vec.t;  (** right-hand side rows: [-whitened_error] *)
}

val of_factor : Factor.t -> Factor.lookup -> t
(** Linearize one factor (negating the error into the RHS). *)

val rows : t -> int

val involves : t -> string -> bool

val block : t -> string -> Mat.t option

val assemble : var_order:string list -> dims:(string -> int) -> t list -> Assembly.t
(** Stack all block rows into a block-sparse assembly whose columns
    follow [var_order]. *)

val dense_solve : var_order:string list -> dims:(string -> int) -> t list -> (string * Vec.t) list
(** Reference path: materialize the dense [A, b] and solve the
    least-squares problem with one big QR — what a solver without the
    factor-graph abstraction does.  Returns the update per variable. *)

val pp : Format.formatter -> t -> unit
