(** Factors: the constraints of a factor graph (Tbl. 2).

    A factor relates a set of variables through an error function and
    a diagonal Gaussian noise model.  Two flavours exist:

    - {e symbolic} factors carry their error as expressions over the
      nine primitive operations; the MO-DFG machinery evaluates and
      differentiates them automatically — this is the path the
      ORIANNA compiler understands (Sec. 5.2);
    - {e native} factors provide error and analytic Jacobians as OCaml
      code, for models that fall outside the primitive algebra (e.g.
      the perspective division of a pinhole camera).  The paper's
      "customized factors" facility covers both.

    Linearization whitens rows by [1 / sigma]. *)

open Orianna_linalg
module Expr = Orianna_ir.Expr
module Modfg = Orianna_ir.Modfg

type lookup = string -> Var.t
(** Current value of a variable by name. *)

type t

val symbolic : name:string -> vars:string list -> sigmas:Vec.t -> Expr.t list -> t
(** [vars] must list every variable mentioned by the expressions (it
    fixes the block order); [sigmas] has one entry per error row. *)

val native :
  name:string ->
  vars:string list ->
  sigmas:Vec.t ->
  error_dim:int ->
  (lookup -> Vec.t * (string * Mat.t) list) ->
  t
(** The callback returns the raw (unwhitened) error and one Jacobian
    block per variable it involves; omitted variables get zero
    blocks. *)

val name : t -> string

val vars : t -> string list

val error_dim : t -> int

val sigmas : t -> Vec.t

val is_symbolic : t -> bool

val modfg : t -> lookup -> Modfg.t option
(** The factor's MO-DFG ([None] for native factors).  Built on first
    use and cached. *)

val error : t -> lookup -> Vec.t
(** Whitened error at the current values. *)

val error_norm_sq : t -> lookup -> float
(** Squared norm of the whitened error (the factor's contribution to
    the objective of Equ. 1). *)

val linearize : t -> lookup -> Vec.t * (string * Mat.t) list
(** Whitened error and whitened Jacobian blocks, one per entry of
    {!vars} (in that order), each [error_dim x dim(var)]. *)
