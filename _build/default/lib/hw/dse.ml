let src = Logs.Src.create "orianna.dse" ~doc:"Hardware design-space exploration"

module Log = (val Logs.src_log src : Logs.LOG)

type move = Add_unit of Unit_model.unit_class | Widen_qr

type step = {
  added : move option;
  accel : Accel.t;
  objective : float;
  resources : Resource.t;
}

type result = { best : Accel.t; objective : float; trace : step list }

let optimize ~budget ~evaluate ?(classes = Unit_model.all_classes) ?init ?(min_gain = 0.005) () =
  let current = ref (match init with Some a -> a | None -> Accel.base ()) in
  if not (Accel.fits !current ~budget) then
    invalid_arg "Dse.optimize: initial configuration exceeds the budget";
  let objective = ref (evaluate !current) in
  let trace =
    ref [ { added = None; accel = !current; objective = !objective; resources = Accel.resources !current } ]
  in
  let improved = ref true in
  while !improved do
    improved := false;
    (* Try one replication of every class; keep the best that fits. *)
    let moves =
      Widen_qr :: List.map (fun cls -> Add_unit cls) classes
    in
    let candidates =
      List.filter_map
        (fun move ->
          let candidate =
            match move with
            | Add_unit cls -> Accel.with_extra !current cls
            | Widen_qr -> Accel.with_wider_qr !current
          in
          if Accel.fits candidate ~budget then Some (move, candidate, evaluate candidate) else None)
        moves
    in
    match candidates with
    | [] -> ()
    | _ ->
        let move, best, score =
          List.fold_left
            (fun (bc, ba, bs) (c, a, s) -> if s < bs then (c, a, s) else (bc, ba, bs))
            (let c, a, s = List.hd candidates in
             (c, a, s))
            (List.tl candidates)
        in
        if score < !objective *. (1.0 -. min_gain) then begin
          Log.info (fun m ->
              m "accepted %s: objective %.4g -> %.4g"
                (match move with
                | Add_unit c -> "+" ^ Unit_model.class_name c
                | Widen_qr -> "widen-qr")
                !objective score);
          current := best;
          objective := score;
          trace :=
            { added = Some move; accel = best; objective = score; resources = Accel.resources best }
            :: !trace;
          improved := true
        end
  done;
  { best = !current; objective = !objective; trace = List.rev !trace }
