open Orianna_isa

type link = {
  src : Unit_model.unit_class;
  dst : Unit_model.unit_class;
  transfers : int;
  words : int;
  fifo_depth : int;
}

type t = { links : link list; total_words : int }

let rec next_pow2 n = if n <= 1 then 1 else 2 * next_pow2 ((n + 1) / 2)

let generate (p : Program.t) =
  let table : (Unit_model.unit_class * Unit_model.unit_class, int * int * int) Hashtbl.t =
    Hashtbl.create 36
  in
  let total = ref 0 in
  Array.iter
    (fun (ins : Instr.t) ->
      let dst = Unit_model.class_of_op ins.Instr.op in
      Array.iter
        (fun s ->
          let producer = p.Program.instrs.(s) in
          let src = Unit_model.class_of_op producer.Instr.op in
          let words = producer.Instr.rows * producer.Instr.cols in
          total := !total + words;
          let t, w, mx = Option.value ~default:(0, 0, 0) (Hashtbl.find_opt table (src, dst)) in
          Hashtbl.replace table (src, dst) (t + 1, w + words, max mx words))
        ins.Instr.srcs)
    p.Program.instrs;
  let links =
    Hashtbl.fold
      (fun (src, dst) (transfers, words, widest) acc ->
        { src; dst; transfers; words; fifo_depth = next_pow2 widest } :: acc)
      table []
    |> List.sort (fun a b -> compare (b.words, a.src) (a.words, b.src))
  in
  { links; total_words = !total }

let link_count t = List.length t.links

let crossbar_link_count =
  let n = List.length Unit_model.all_classes in
  n * n

let resources t =
  List.fold_left
    (fun acc l ->
      Resource.add acc
        { Resource.lut = 120 + (2 * l.fifo_depth); ff = 150 + (4 * l.fifo_depth); bram = 0; dsp = 0 })
    Resource.zero t.links

let pp ppf t =
  Format.fprintf ppf "@[<v>datapath: %d links (crossbar would need %d), %d words total@,"
    (link_count t) crossbar_link_count t.total_words;
  List.iter
    (fun l ->
      Format.fprintf ppf "  %-8s -> %-8s : %6d transfers %8d words fifo %d@,"
        (Unit_model.class_name l.src) (Unit_model.class_name l.dst) l.transfers l.words l.fifo_depth)
    t.links;
  Format.fprintf ppf "@]"
