(** Hardware unit templates (Sec. 6.1).

    Every matrix instruction executes on one of six unit classes.
    Templates carry analytic latency (cycles), dynamic energy (nJ) and
    FPGA resource models, calibrated to be plausible for the ZC706 at
    167 MHz.  The absolute constants matter less than their relative
    shape: the evaluation reproduces ratios, not the authors' exact
    wall clock. *)

type unit_class =
  | Matmul  (** systolic GEMM/GEMV array *)
  | Vector_alu  (** elementwise VP ops and transposition network *)
  | Special  (** CORDIC Exp/Log/Skew/Jr/Jr⁻¹ function unit *)
  | Qr_unit  (** Givens-rotation triangularization array *)
  | Backsub_unit  (** triangular solver *)
  | Dma  (** buffer gather/scatter and input loads *)

val all_classes : unit_class list

val class_name : unit_class -> string

val class_of_op : Orianna_isa.Instr.opcode -> unit_class
(** Which unit executes which instruction. *)

val default_qr_rotators : int
(** Rotator groups of the base QR template (8). *)

val latency :
  unit_class -> qr_rotators:int -> Orianna_isa.Instr.t -> src_shape:(int -> int * int) -> int
(** Execution cycles of one instruction on one unit instance.
    [qr_rotators] is the width of the Givens array — the per-design
    parameter the generator tunes for decomposition-heavy workloads
    (Sec. 6.2). *)

val dynamic_energy_nj : unit_class -> Orianna_isa.Instr.t -> src_shape:(int -> int * int) -> float
(** Dynamic (switching) energy of one instruction. *)

val resources : unit_class -> qr_rotators:int -> Resource.t
(** Cost of instantiating one unit of the class; QR units scale with
    the rotator count. *)

val static_power_w : unit_class -> qr_rotators:int -> float
(** Leakage + clocking power of an instantiated unit. *)

val base_static_power_w : float
(** Controller, buffers, PS-side overhead present in any
    configuration. *)
