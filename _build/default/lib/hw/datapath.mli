(** Automatic datapath generation (Sec. 6, "the connections between
    different circuit blocks are automatically generated based on the
    dedicated data flow of the matrix operations").

    From a compiled program, derive which unit-class-to-unit-class
    links its dataflow actually exercises, how many words cross each
    link, and size a FIFO per link.  Links that no instruction uses
    are not instantiated — that is the resource saving over a
    full crossbar. *)

type link = {
  src : Unit_model.unit_class;
  dst : Unit_model.unit_class;
  transfers : int;  (** number of operand hand-offs *)
  words : int;  (** total words moved across the link *)
  fifo_depth : int;  (** power-of-two sizing of the widest single transfer *)
}

type t = { links : link list; total_words : int }

val generate : Orianna_isa.Program.t -> t

val link_count : t -> int

val crossbar_link_count : int
(** Links a naive all-to-all interconnect would instantiate. *)

val resources : t -> Resource.t
(** Interconnect cost: LUT/FF per link scaled by FIFO depth. *)

val pp : Format.formatter -> t -> unit
