(** Constraint-driven hardware generation (Sec. 6.2, Equ. 5).

    Solves [argmin L(p1..pn) s.t. R(p1..pn) <= R*] with the paper's
    greedy procedure: start from one unit per class, repeatedly add
    the unit whose replication best improves the objective, stop when
    the budget is exhausted or no replication helps.  The objective is
    supplied as a callback (the cycle-level simulator in
    [orianna_sim]), so latency- and energy-targeted generation share
    this module. *)

type move = Add_unit of Unit_model.unit_class | Widen_qr

type step = {
  added : move option;  (** [None] on the initial point *)
  accel : Accel.t;
  objective : float;
  resources : Resource.t;
}

type result = { best : Accel.t; objective : float; trace : step list }

val optimize :
  budget:Resource.t ->
  evaluate:(Accel.t -> float) ->
  ?classes:Unit_model.unit_class list ->
  ?init:Accel.t ->
  ?min_gain:float ->
  unit ->
  result
(** [optimize ~budget ~evaluate ()] greedily replicates units.
    [classes] restricts which templates may be replicated (default:
    all); [min_gain] is the relative improvement below which the
    search stops (default 0.5 %).  The initial configuration must fit
    the budget; raises [Invalid_argument] otherwise. *)
