(** FPGA resource vectors: LUT / FF / BRAM / DSP (Fig. 16c).

    Calibrated against the Xilinx Zynq-7000 ZC706 the paper prototypes
    on. *)

type t = { lut : int; ff : int; bram : int; dsp : int }

val zero : t

val add : t -> t -> t

val scale : int -> t -> t

val fits : t -> budget:t -> bool
(** Componentwise comparison. *)

val zc706 : t
(** The full ZC706 budget: 218600 LUT, 437200 FF, 545 BRAM36, 900
    DSP48. *)

val utilization : t -> budget:t -> float
(** Largest component ratio (the binding constraint). *)

val pp : Format.formatter -> t -> unit
