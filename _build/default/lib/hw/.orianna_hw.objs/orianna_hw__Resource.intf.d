lib/hw/resource.mli: Format
