lib/hw/unit_model.mli: Orianna_isa Resource
