lib/hw/dse.mli: Accel Resource Unit_model
