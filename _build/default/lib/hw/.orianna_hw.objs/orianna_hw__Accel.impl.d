lib/hw/accel.ml: Format List Resource Unit_model
