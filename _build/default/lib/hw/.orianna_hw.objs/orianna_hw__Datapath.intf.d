lib/hw/datapath.mli: Format Orianna_isa Resource Unit_model
