lib/hw/resource.ml: Float Format List
