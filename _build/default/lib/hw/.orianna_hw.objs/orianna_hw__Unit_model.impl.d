lib/hw/unit_model.ml: Array Instr Orianna_isa Resource
