lib/hw/accel.mli: Format Resource Unit_model
