lib/hw/dse.ml: Accel List Logs Resource Unit_model
