lib/hw/datapath.ml: Array Format Hashtbl Instr List Option Orianna_isa Program Resource Unit_model
