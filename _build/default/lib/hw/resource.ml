type t = { lut : int; ff : int; bram : int; dsp : int }

let zero = { lut = 0; ff = 0; bram = 0; dsp = 0 }

let add a b = { lut = a.lut + b.lut; ff = a.ff + b.ff; bram = a.bram + b.bram; dsp = a.dsp + b.dsp }

let scale k r = { lut = k * r.lut; ff = k * r.ff; bram = k * r.bram; dsp = k * r.dsp }

let fits r ~budget =
  r.lut <= budget.lut && r.ff <= budget.ff && r.bram <= budget.bram && r.dsp <= budget.dsp

let zc706 = { lut = 218600; ff = 437200; bram = 545; dsp = 900 }

let utilization r ~budget =
  let frac a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  List.fold_left Float.max 0.0
    [ frac r.lut budget.lut; frac r.ff budget.ff; frac r.bram budget.bram; frac r.dsp budget.dsp ]

let pp ppf r = Format.fprintf ppf "LUT %d / FF %d / BRAM %d / DSP %d" r.lut r.ff r.bram r.dsp
