open Orianna_isa

type unit_class = Matmul | Vector_alu | Special | Qr_unit | Backsub_unit | Dma

let all_classes = [ Matmul; Vector_alu; Special; Qr_unit; Backsub_unit; Dma ]

let class_name = function
  | Matmul -> "matmul"
  | Vector_alu -> "vector"
  | Special -> "special"
  | Qr_unit -> "qr"
  | Backsub_unit -> "backsub"
  | Dma -> "dma"

let class_of_op = function
  | Instr.Gemm | Instr.Gemv | Instr.Kernel _ -> Matmul
  | Instr.Vadd | Instr.Vsub | Instr.Scale _ | Instr.Neg | Instr.Transpose -> Vector_alu
  | Instr.Logm | Instr.Expm | Instr.Skew | Instr.Jr | Instr.Jrinv -> Special
  | Instr.Qr -> Qr_unit
  | Instr.Backsolve -> Backsub_unit
  | Instr.Load _ | Instr.Assemble _ | Instr.Extract _ -> Dma

(* Template micro-architecture parameters. *)
let systolic_dim = 8 (* matmul array is systolic_dim x systolic_dim PEs *)
let vector_lanes = 16
let cordic_cycles = 18
let default_qr_rotators = 8
let backsub_lanes = 4
let dma_words_per_cycle = 8

let ceil_div a b = (a + b - 1) / b

let latency cls ~qr_rotators (ins : Instr.t) ~src_shape =
  let issue = 2 in
  match cls with
  | Matmul -> (
      match ins.Instr.op with
      | Instr.Kernel k -> issue + ceil_div k.Instr.flops (systolic_dim * systolic_dim)
      | Instr.Gemm | Instr.Gemv | Instr.Vadd | Instr.Vsub | Instr.Scale _ | Instr.Neg
      | Instr.Transpose | Instr.Logm | Instr.Expm | Instr.Skew | Instr.Jr | Instr.Jrinv
      | Instr.Assemble _ | Instr.Extract _ | Instr.Qr | Instr.Backsolve | Instr.Load _ ->
          let _, k = src_shape ins.Instr.srcs.(0) in
          let tiles = ceil_div ins.Instr.rows systolic_dim * ceil_div ins.Instr.cols systolic_dim in
          issue + (tiles * (k + systolic_dim)))
  | Vector_alu -> issue + ceil_div (ins.Instr.rows * ins.Instr.cols) vector_lanes
  | Special -> issue + cordic_cycles
  | Qr_unit ->
      let m, n = src_shape ins.Instr.srcs.(0) in
      (* Givens array: n pivot columns, each sweeping the rows below
         with [qr_parallel_rotations] concurrent rotations. *)
      let cols = min m n in
      let work = ref 0 in
      for k = 0 to cols - 1 do
        work := !work + (ceil_div (max 0 (m - k - 1)) qr_rotators * (n - k))
      done;
      issue + 4 + !work
  | Backsub_unit ->
      let n, _ = src_shape ins.Instr.srcs.(0) in
      issue + (n * ceil_div n backsub_lanes) + n
  | Dma -> issue + ceil_div (ins.Instr.rows * ins.Instr.cols) dma_words_per_cycle

(* Energy constants (nJ): MACs on DSP slices, word moves on BRAM. *)
let nj_per_mac = 0.012
let nj_per_word_moved = 0.006

let dynamic_energy_nj cls (ins : Instr.t) ~src_shape =
  let words = float_of_int (ins.Instr.rows * ins.Instr.cols) in
  match cls with
  | Dma -> words *. nj_per_word_moved
  | Matmul | Vector_alu | Special | Qr_unit | Backsub_unit ->
      let f = float_of_int (Instr.flops ins ~src_shape) in
      (f *. nj_per_mac) +. (words *. nj_per_word_moved)

let resources cls ~qr_rotators =
  match cls with
  | Matmul -> { Resource.lut = 14500; ff = 19800; bram = 24; dsp = 160 }
  | Vector_alu -> { Resource.lut = 4200; ff = 5100; bram = 6; dsp = 32 }
  | Special -> { Resource.lut = 7800; ff = 8400; bram = 4; dsp = 20 }
  | Qr_unit ->
      (* Rotator groups dominate: LUT/FF/DSP scale with the array
         width, the control skeleton is fixed. *)
      let scale x = x * qr_rotators / default_qr_rotators in
      { Resource.lut = 3000 + scale 9600; ff = 4200 + scale 12000; bram = 8 + scale 12; dsp = scale 96 }
  | Backsub_unit -> { Resource.lut = 5200; ff = 6800; bram = 10; dsp = 28 }
  | Dma -> { Resource.lut = 2900; ff = 3600; bram = 18; dsp = 0 }

let static_power_w cls ~qr_rotators =
  match cls with
  | Matmul -> 0.55
  | Vector_alu -> 0.12
  | Special -> 0.18
  | Qr_unit -> 0.12 +. (0.30 *. float_of_int qr_rotators /. float_of_int default_qr_rotators)
  | Backsub_unit -> 0.15
  | Dma -> 0.10

(* Board-level overhead: PS subsystem, DDR, clocking — the paper's
   power numbers are Vivado board-level estimates. *)
let base_static_power_w = 12.0
