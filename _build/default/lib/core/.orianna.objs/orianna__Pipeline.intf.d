lib/core/pipeline.mli: Accel Cpu_model Dse Gpu_model Graph Orianna_apps Orianna_baselines Orianna_fg Orianna_hw Orianna_isa Orianna_sim Program Resource Schedule
