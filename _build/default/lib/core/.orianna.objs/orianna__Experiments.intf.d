lib/core/experiments.mli:
