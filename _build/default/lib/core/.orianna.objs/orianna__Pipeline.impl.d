lib/core/pipeline.ml: Accel Cpu_model Dse Float Gpu_model List Orianna_apps Orianna_baselines Orianna_compiler Orianna_fg Orianna_hw Orianna_isa Orianna_sim Orianna_util Program Resource Rng Schedule
