lib/util/texttable.mli:
