lib/util/heap.mli:
