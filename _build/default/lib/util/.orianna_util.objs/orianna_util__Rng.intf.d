lib/util/rng.mli:
