(** Plain-text table rendering for the experiment harness.

    Tables are built row by row and rendered with aligned columns, in
    the spirit of the tables in the paper's evaluation section. *)

type t

val create : title:string -> headers:string list -> t
(** A fresh table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append one row. Rows shorter than the header are padded, longer
    rows raise [Invalid_argument]. *)

val add_float_row : t -> string -> float list -> t
(** [add_float_row t label xs] appends a row whose first cell is
    [label] and remaining cells are [xs] printed with 3 decimals.
    Returns [t] to allow chaining. *)

val render : t -> string
(** Render the whole table with box-drawing rules. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_f : float -> string
(** Canonical float cell formatting (3 decimals, trailing zeros kept). *)

val cell_fx : ?decimals:int -> float -> string
(** Float cell with a chosen number of decimals. *)
