(** A minimal binary min-heap, used by the cycle-level scheduler. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Smallest-first with respect to [cmp]. *)

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum. *)

val peek : 'a t -> 'a option
