type t = {
  title : string;
  headers : string list;
  mutable rows : string list list; (* newest first *)
}

let create ~title ~headers = { title; headers; rows = [] }

let add_row t row =
  let ncols = List.length t.headers in
  let len = List.length row in
  if len > ncols then invalid_arg "Texttable.add_row: row wider than header";
  let padded =
    if len = ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  t.rows <- padded :: t.rows

let cell_fx ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x
let cell_f x = cell_fx ~decimals:3 x

let add_float_row t label xs =
  add_row t (label :: List.map cell_f xs);
  t

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let note_row row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_row all;
  let buf = Buffer.create 256 in
  let pad cell width = cell ^ String.make (width - String.length cell) ' ' in
  let emit_row row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (pad cell widths.(i));
        Buffer.add_string buf (if i = ncols - 1 then " |" else " | "))
      row;
    Buffer.add_char buf '\n'
  in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  if t.title <> "" then begin
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n'
  end;
  rule ();
  emit_row t.headers;
  rule ();
  List.iter emit_row rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)
