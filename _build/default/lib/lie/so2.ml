open Orianna_linalg

let exp theta =
  Macs.add 4;
  let c = cos theta and s = sin theta in
  Mat.of_rows [| [| c; -.s |]; [| s; c |] |]

let log r =
  Macs.add 2;
  atan2 (Mat.get r 1 0) (Mat.get r 0 0)

let hat theta = Mat.of_rows [| [| 0.0; -.theta |]; [| theta; 0.0 |] |]
let vee m = Mat.get m 1 0
let jr (_ : float) = 1.0
let jr_inv (_ : float) = 1.0

let perp v =
  if Vec.dim v <> 2 then invalid_arg "So2.perp: expected a 2-vector";
  [| -.v.(1); v.(0) |]

let wrap_angle theta =
  let two_pi = 2.0 *. Float.pi in
  let t = Float.rem theta two_pi in
  if t > Float.pi then t -. two_pi else if t <= -.Float.pi then t +. two_pi else t

let random rng = exp (Orianna_util.Rng.uniform rng ~lo:(-.Float.pi) ~hi:Float.pi)
