(** The planar rotation group SO(2) and its Lie algebra so(2).

    so(2) is one-dimensional: a rotation is an angle.  The group is
    commutative, so all Jacobians of the exponential map are 1. *)

open Orianna_linalg

val exp : float -> Mat.t
(** [exp theta] is the 2x2 rotation matrix of angle [theta]. *)

val log : Mat.t -> float
(** Angle of a 2x2 rotation matrix, in (-pi, pi]. *)

val hat : float -> Mat.t
(** [hat theta] is [[0, -theta], [theta, 0]]. *)

val vee : Mat.t -> float
(** Inverse of {!hat} (reads the (1,0) entry). *)

val jr : float -> float
(** Right Jacobian — identically 1 in SO(2). *)

val jr_inv : float -> float
(** Inverse right Jacobian — identically 1. *)

val perp : Vec.t -> Vec.t
(** [perp v] is the 90-degree rotation of a 2-vector: [(-v1, v0)].
    [d(R v)/d theta = R (perp v)]. *)

val wrap_angle : float -> float
(** Wrap to (-pi, pi]. *)

val random : Orianna_util.Rng.t -> Mat.t
(** Uniform random rotation. *)
