(** Unit quaternions — the third pose representation discussed in
    Sec. 4.1 (the [q + T(3)] combination used by VINS-Mono-style
    localization).  Provided for the representation-equivalence story
    of Fig. 8 and for conversion tests. *)

open Orianna_linalg

type t = { w : float; x : float; y : float; z : float }

val identity : t

val normalize : t -> t

val mul : t -> t -> t
(** Hamilton product. *)

val conjugate : t -> t

val of_rotation : Mat.t -> t
(** Shepperd's method: stable for all rotation matrices. *)

val to_rotation : t -> Mat.t

val of_axis_angle : Vec.t -> float -> t

val rotate : t -> Vec.t -> Vec.t
(** Rotate a 3-vector: [q v q*]. *)

val dot : t -> t -> float

val slerp : t -> t -> float -> t
(** Spherical linear interpolation; [slerp a b 0 = a]. *)

val equal_up_to_sign : ?eps:float -> t -> t -> bool
(** Quaternions double-cover SO(3): [q] and [-q] are the same
    rotation. *)
