(** The unified planar pose representation [<so(2), T(2)>].

    Same layout as {!Pose3} but in the plane: the orientation is an
    angle, the tangent space is 3-dimensional and split
    [[dtheta; dtx; dty]]. *)

open Orianna_linalg

type t = private { theta : float; t : Vec.t }

val create : theta:float -> t:Vec.t -> t
(** [t] must be a 2-vector; [theta] is wrapped to (-pi, pi]. *)

val identity : t

val theta : t -> float

val rotation : t -> Mat.t
(** The 2x2 rotation matrix [Exp theta]. *)

val translation : t -> Vec.t

val oplus : t -> t -> t
(** Planar instance of Equ. 2 composition. *)

val ominus : t -> t -> t
(** Planar instance of Equ. 2 subtraction. *)

val inverse : t -> t

val act : t -> Vec.t -> Vec.t
(** [R x + t]. *)

val retract : t -> Vec.t -> t
(** [retract p [dth; dx; dy]]. *)

val local : t -> t -> Vec.t
(** Inverse of {!retract}: [[wrap(thb - tha); tb - ta]]. *)

val tangent_dim : int
(** 3. *)

val distance : t -> t -> float

val angular_distance : t -> t -> float

val equal : ?eps:float -> t -> t -> bool

val random : Orianna_util.Rng.t -> scale:float -> t

val pp : Format.formatter -> t -> unit
