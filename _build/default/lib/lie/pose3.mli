(** The unified 3D pose representation [<so(3), T(3)>] (Sec. 4.2).

    A pose is an orientation plus a position kept as {e separate}
    blocks: the orientation lives on SO(3) (internally cached as a
    rotation matrix; its canonical coordinates are the so(3) vector
    [phi]), the position is a plain 3-vector.  The group operations
    [oplus]/[ominus] implement Equ. 2 of the paper.

    The tangent space is 6-dimensional and split: a perturbation is
    [[dphi; dt]] applied as [R <- R Exp(dphi)], [t <- t + dt].  Keeping
    the two blocks separate — instead of the joint se(3) tangent — is
    what removes the padded 4x4 products and the 6-dimensional
    exponential maps, and is the source of the MAC savings reported in
    Sec. 4.3. *)

open Orianna_linalg

type t = private { r : Mat.t; (* 3x3 rotation *) t : Vec.t (* position *) }

val create : r:Mat.t -> t:Vec.t -> t
(** Raises [Invalid_argument] if [r] is not 3x3 or [t] not length 3.
    [r] is trusted to be orthonormal. *)

val of_phi_t : Vec.t -> Vec.t -> t
(** Build from canonical coordinates [(phi, t)]. *)

val identity : t

val rotation : t -> Mat.t

val translation : t -> Vec.t

val phi : t -> Vec.t
(** Canonical so(3) coordinates of the orientation ([Log r]). *)

val oplus : t -> t -> t
(** [oplus a b = <Log(Ra Rb), ta + Ra tb>] — pose composition
    (Equ. 2).  Used by planning to chain link transforms. *)

val ominus : t -> t -> t
(** [ominus a b = <Log(Rbᵀ Ra), Rbᵀ (ta - tb)>] — relative pose of [a]
    expressed in [b]'s frame (Equ. 2).  Used by localization and
    control error terms. *)

val inverse : t -> t

val act : t -> Vec.t -> Vec.t
(** [act p x] transforms the point [x] into the world frame:
    [R x + t]. *)

val retract : t -> Vec.t -> t
(** [retract p d] with [d = [dphi; dt]] (length 6) applies the
    optimization update [R Exp(dphi), t + dt]. *)

val local : t -> t -> Vec.t
(** [local a b] is the tangent [d] with [retract a d = b]:
    [[Log(Raᵀ Rb); tb - ta]]. *)

val tangent_dim : int
(** 6. *)

val distance : t -> t -> float
(** Euclidean distance between positions (the ATE building block). *)

val angular_distance : t -> t -> float
(** Geodesic distance between orientations. *)

val equal : ?eps:float -> t -> t -> bool

val random : Orianna_util.Rng.t -> scale:float -> t
(** Random pose with positions in a cube of half-width [scale]. *)

val pp : Format.formatter -> t -> unit
