(** The rotation group SO(3) and its Lie algebra so(3).

    Rotations are 3x3 orthonormal matrices; tangent vectors are
    3-vectors (axis * angle).  Conventions follow Sola et al., "A micro
    Lie theory for state estimation in robotics" [55]: {!exp} is the
    Rodrigues formula, {!jr}/{!jr_inv} are the right Jacobian of the
    exponential and its inverse — two of the nine ORIANNA primitive
    operations (Tbl. 3). *)

open Orianna_linalg

val hat : Vec.t -> Mat.t
(** Skew-symmetric matrix of a 3-vector (the [(.)^] primitive). *)

val vee : Mat.t -> Vec.t
(** Inverse of {!hat}. *)

val exp : Vec.t -> Mat.t
(** Rodrigues formula, numerically safe near the identity. *)

val log : Mat.t -> Vec.t
(** Logarithm map, with dedicated branches near 0 and near pi. *)

val jr : Vec.t -> Mat.t
(** Right Jacobian of the exponential:
    [Exp(phi + d) ~ Exp(phi) Exp(jr(phi) d)]. *)

val jr_inv : Vec.t -> Mat.t
(** Inverse of {!jr}:
    [Log(Exp(phi) Exp(d)) ~ phi + jr_inv(phi) d]. *)

val jl : Vec.t -> Mat.t
(** Left Jacobian: [jl phi = jr (-phi)]. *)

val jl_inv : Vec.t -> Mat.t
(** Inverse left Jacobian. *)

val normalize : Mat.t -> Mat.t
(** Re-orthonormalize a drifting rotation matrix (Gram-Schmidt). *)

val is_rotation : ?eps:float -> Mat.t -> bool
(** Orthonormality and unit-determinant check. *)

val random : Orianna_util.Rng.t -> Mat.t
(** Uniform random rotation (via random axis-angle). *)

val angle_between : Mat.t -> Mat.t -> float
(** Geodesic distance: [|Log (R1ᵀ R2)|]. *)
