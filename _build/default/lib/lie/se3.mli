(** The special Euclidean group SE(3) — the baseline representation the
    paper compares against (Secs. 4.1 and 4.3).

    Elements are kept as padded 4x4 homogeneous matrices, exactly the
    costly representation the paper describes: composition is a 4x4
    product, tangent vectors are joint 6-vectors [[rho; phi]]
    (translation part first, Barfoot's convention), and the exponential
    / logarithm are the full 6-dimensional maps with the coupled
    [V = Jl(phi)] block.  Jacobians of the exponential include the
    Barfoot Q-block, so SE(3) Gauss-Newton here is the honest reference
    implementation, not a strawman. *)

open Orianna_linalg

type t = private Mat.t
(** A 4x4 homogeneous transform. *)

val of_matrix : Mat.t -> t
(** Checks the shape and the [0 0 0 1] bottom row. *)

val to_matrix : t -> Mat.t

val of_rt : Mat.t -> Vec.t -> t

val rotation : t -> Mat.t

val translation : t -> Vec.t

val identity : t

val compose : t -> t -> t
(** Full padded 4x4 matrix product (charges 64 MACs). *)

val inverse : t -> t

val act : t -> Vec.t -> Vec.t
(** Homogeneous transform of a 3D point (padded 4x4 * 4 product). *)

val exp : Vec.t -> t
(** [exp [rho; phi]] — 6-dimensional exponential map. *)

val log : t -> Vec.t
(** 6-dimensional logarithm map. *)

val adjoint : t -> Mat.t
(** 6x6 adjoint [[R, p^R], [0, R]]. *)

val jl : Vec.t -> Mat.t
(** Left Jacobian of the SE(3) exponential (6x6, with Q block). *)

val jr : Vec.t -> Mat.t
(** Right Jacobian: [jr xi = jl (-xi)]. *)

val jr_inv : Vec.t -> Mat.t
(** Inverse right Jacobian (block inverse). *)

val jl_inv : Vec.t -> Mat.t

val retract : t -> Vec.t -> t
(** [retract x d = compose x (exp d)]. *)

val local : t -> t -> Vec.t
(** [local a b = log (inverse a * b)]. *)

val tangent_dim : int
(** 6. *)

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
