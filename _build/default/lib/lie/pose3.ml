open Orianna_linalg

type t = { r : Mat.t; t : Vec.t }

let create ~r ~t =
  let m, n = Mat.dims r in
  if m <> 3 || n <> 3 then invalid_arg "Pose3.create: rotation must be 3x3";
  if Vec.dim t <> 3 then invalid_arg "Pose3.create: translation must be a 3-vector";
  { r; t }

let of_phi_t phi t = create ~r:(So3.exp phi) ~t

let identity = { r = Mat.identity 3; t = Vec.create 3 }

let rotation p = p.r
let translation p = p.t
let phi p = So3.log p.r

let oplus a b =
  { r = Mat.mul a.r b.r; t = Vec.add a.t (Mat.mul_vec a.r b.t) }

let ominus a b =
  let rbt = Mat.transpose b.r in
  { r = Mat.mul rbt a.r; t = Mat.mul_vec rbt (Vec.sub a.t b.t) }

let inverse p =
  let rt = Mat.transpose p.r in
  { r = rt; t = Vec.neg (Mat.mul_vec rt p.t) }

let act p x = Vec.add (Mat.mul_vec p.r x) p.t

let retract p d =
  if Vec.dim d <> 6 then invalid_arg "Pose3.retract: expected a 6-vector";
  let dphi = Vec.slice d ~pos:0 ~len:3 in
  let dt = Vec.slice d ~pos:3 ~len:3 in
  { r = Mat.mul p.r (So3.exp dphi); t = Vec.add p.t dt }

let local a b =
  let dphi = So3.log (Mat.mul (Mat.transpose a.r) b.r) in
  Vec.concat [ dphi; Vec.sub b.t a.t ]

let tangent_dim = 6

let distance a b = Vec.dist a.t b.t
let angular_distance a b = So3.angle_between a.r b.r

let equal ?(eps = 1e-9) a b = Mat.equal ~eps a.r b.r && Vec.equal ~eps a.t b.t

let random rng ~scale =
  let open Orianna_util in
  let t = Array.init 3 (fun _ -> Rng.uniform rng ~lo:(-.scale) ~hi:scale) in
  { r = So3.random rng; t }

let pp ppf p =
  Format.fprintf ppf "@[<v>pose3 phi=%a t=%a@]" Vec.pp (phi p) Vec.pp p.t
