lib/lie/pose3.mli: Format Mat Orianna_linalg Orianna_util Vec
