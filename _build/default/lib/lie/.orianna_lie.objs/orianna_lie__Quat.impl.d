lib/lie/quat.ml: Array Float Macs Mat Orianna_linalg Vec
