lib/lie/so3.ml: Array Float Macs Mat Orianna_linalg Orianna_util Rng Vec
