lib/lie/so2.mli: Mat Orianna_linalg Orianna_util Vec
