lib/lie/quat.mli: Mat Orianna_linalg Vec
