lib/lie/se3.ml: Array Float Format Macs Mat Orianna_linalg So3 Vec
