lib/lie/pose2.mli: Format Mat Orianna_linalg Orianna_util Vec
