lib/lie/convert.mli: Orianna_linalg Pose2 Pose3 Quat Se3 Vec
