lib/lie/pose3.ml: Array Format Mat Orianna_linalg Orianna_util Rng So3 Vec
