lib/lie/convert.ml: Array Mat Orianna_linalg Pose2 Pose3 Quat Se3
