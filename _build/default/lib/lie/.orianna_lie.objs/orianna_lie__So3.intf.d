lib/lie/so3.mli: Mat Orianna_linalg Orianna_util Vec
