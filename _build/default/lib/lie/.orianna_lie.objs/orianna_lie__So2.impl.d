lib/lie/so2.ml: Array Float Macs Mat Orianna_linalg Orianna_util Vec
