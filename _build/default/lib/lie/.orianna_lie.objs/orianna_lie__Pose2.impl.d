lib/lie/pose2.ml: Array Float Format Mat Orianna_linalg Orianna_util Rng So2 Vec
