lib/lie/se3.mli: Format Mat Orianna_linalg Vec
