open Orianna_linalg

type t = { theta : float; t : Vec.t }

let create ~theta ~t =
  if Vec.dim t <> 2 then invalid_arg "Pose2.create: translation must be a 2-vector";
  { theta = So2.wrap_angle theta; t }

let identity = { theta = 0.0; t = Vec.create 2 }

let theta p = p.theta
let rotation p = So2.exp p.theta
let translation p = p.t

let oplus a b =
  create ~theta:(a.theta +. b.theta) ~t:(Vec.add a.t (Mat.mul_vec (rotation a) b.t))

let ominus a b =
  let rbt = Mat.transpose (rotation b) in
  create ~theta:(a.theta -. b.theta) ~t:(Mat.mul_vec rbt (Vec.sub a.t b.t))

let inverse p =
  let rt = Mat.transpose (rotation p) in
  create ~theta:(-.p.theta) ~t:(Vec.neg (Mat.mul_vec rt p.t))

let act p x = Vec.add (Mat.mul_vec (rotation p) x) p.t

let retract p d =
  if Vec.dim d <> 3 then invalid_arg "Pose2.retract: expected a 3-vector";
  create ~theta:(p.theta +. d.(0)) ~t:(Vec.add p.t [| d.(1); d.(2) |])

let local a b =
  [| So2.wrap_angle (b.theta -. a.theta); b.t.(0) -. a.t.(0); b.t.(1) -. a.t.(1) |]

let tangent_dim = 3

let distance a b = Vec.dist a.t b.t
let angular_distance a b = Float.abs (So2.wrap_angle (b.theta -. a.theta))

let equal ?(eps = 1e-9) a b =
  Float.abs (So2.wrap_angle (a.theta -. b.theta)) < eps && Vec.equal ~eps a.t b.t

let random rng ~scale =
  let open Orianna_util in
  create
    ~theta:(Rng.uniform rng ~lo:(-.Float.pi) ~hi:Float.pi)
    ~t:(Array.init 2 (fun _ -> Rng.uniform rng ~lo:(-.scale) ~hi:scale))

let pp ppf p =
  Format.fprintf ppf "pose2 theta=%.4f t=%a" p.theta Vec.pp p.t
