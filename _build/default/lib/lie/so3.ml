open Orianna_linalg

let small = 1e-8

let hat v =
  if Vec.dim v <> 3 then invalid_arg "So3.hat: expected a 3-vector";
  Mat.of_rows
    [|
      [| 0.0; -.v.(2); v.(1) |];
      [| v.(2); 0.0; -.v.(0) |];
      [| -.v.(1); v.(0); 0.0 |];
    |]

let vee m =
  let r, c = Mat.dims m in
  if r <> 3 || c <> 3 then invalid_arg "So3.vee: expected a 3x3 matrix";
  [| Mat.get m 2 1; Mat.get m 0 2; Mat.get m 1 0 |]

(* I + a * W + b * W^2, the shape shared by exp, jr and jr_inv. *)
let rodrigues_combination ~a ~b w =
  let w2 = Mat.mul w w in
  Mat.add (Mat.identity 3) (Mat.add (Mat.scale a w) (Mat.scale b w2))

let exp phi =
  if Vec.dim phi <> 3 then invalid_arg "So3.exp: expected a 3-vector";
  Macs.add 12;
  let theta = Vec.norm phi in
  let w = hat phi in
  if theta < small then
    (* Second-order Taylor expansion. *)
    rodrigues_combination ~a:1.0 ~b:0.5 w
  else begin
    let a = sin theta /. theta in
    let b = (1.0 -. cos theta) /. (theta *. theta) in
    rodrigues_combination ~a ~b w
  end

let log r =
  let m, n = Mat.dims r in
  if m <> 3 || n <> 3 then invalid_arg "So3.log: expected a 3x3 matrix";
  Macs.add 15;
  let tr = Mat.trace r in
  let cos_theta = Float.max (-1.0) (Float.min 1.0 ((tr -. 1.0) /. 2.0)) in
  let theta = acos cos_theta in
  if theta < small then
    (* phi ~ vee(R - Rᵀ) / 2 near identity. *)
    Vec.scale 0.5 (vee (Mat.sub r (Mat.transpose r)))
  else if Float.pi -. theta < 1e-4 then begin
    (* Near pi the antisymmetric part vanishes; recover the axis from
       the symmetric part (R + I) / 2 = I + (1 - cos) axis axisᵀ + ... *)
    let b = Mat.scale 0.5 (Mat.add r (Mat.identity 3)) in
    (* Pick the column with the largest diagonal entry for stability. *)
    let k = ref 0 in
    for i = 1 to 2 do
      if Mat.get b i i > Mat.get b !k !k then k := i
    done;
    let axis = Array.init 3 (fun i -> Mat.get b i !k) in
    let axis = Vec.scale (1.0 /. sqrt (Mat.get b !k !k)) axis in
    (* Fix the sign using the antisymmetric part when it is nonzero. *)
    let anti = vee (Mat.sub r (Mat.transpose r)) in
    let sign = if Vec.dot anti axis < 0.0 then -1.0 else 1.0 in
    Vec.scale (sign *. theta) axis
  end
  else begin
    let scale = theta /. (2.0 *. sin theta) in
    Vec.scale scale (vee (Mat.sub r (Mat.transpose r)))
  end

let jr phi =
  Macs.add 10;
  let theta = Vec.norm phi in
  let w = hat phi in
  if theta < small then rodrigues_combination ~a:(-0.5) ~b:(1.0 /. 6.0) w
  else begin
    let t2 = theta *. theta in
    let a = -.(1.0 -. cos theta) /. t2 in
    let b = (theta -. sin theta) /. (t2 *. theta) in
    rodrigues_combination ~a ~b w
  end

let jr_inv phi =
  Macs.add 10;
  let theta = Vec.norm phi in
  let w = hat phi in
  if theta < small then rodrigues_combination ~a:0.5 ~b:(1.0 /. 12.0) w
  else begin
    let t2 = theta *. theta in
    let b = (1.0 /. t2) -. ((1.0 +. cos theta) /. (2.0 *. theta *. sin theta)) in
    rodrigues_combination ~a:0.5 ~b w
  end

let jl phi = jr (Vec.neg phi)
let jl_inv phi = jr_inv (Vec.neg phi)

let normalize r =
  (* Modified Gram-Schmidt on the columns, then rebuild. *)
  let c0 = Mat.col r 0 in
  let c0 = Vec.scale (1.0 /. Vec.norm c0) c0 in
  let c1 = Mat.col r 1 in
  let c1 = Vec.sub c1 (Vec.scale (Vec.dot c0 c1) c0) in
  let c1 = Vec.scale (1.0 /. Vec.norm c1) c1 in
  (* c2 = c0 x c1 guarantees det = +1. *)
  let c2 =
    [|
      (c0.(1) *. c1.(2)) -. (c0.(2) *. c1.(1));
      (c0.(2) *. c1.(0)) -. (c0.(0) *. c1.(2));
      (c0.(0) *. c1.(1)) -. (c0.(1) *. c1.(0));
    |]
  in
  Mat.init 3 3 (fun i j -> match j with 0 -> c0.(i) | 1 -> c1.(i) | _ -> c2.(i))

let is_rotation ?(eps = 1e-6) r =
  let m, n = Mat.dims r in
  m = 3 && n = 3
  && Mat.equal ~eps (Mat.mul (Mat.transpose r) r) (Mat.identity 3)
  &&
  (* det = +1: use the scalar triple product of the columns. *)
  let c0 = Mat.col r 0 and c1 = Mat.col r 1 and c2 = Mat.col r 2 in
  let cross =
    [|
      (c0.(1) *. c1.(2)) -. (c0.(2) *. c1.(1));
      (c0.(2) *. c1.(0)) -. (c0.(0) *. c1.(2));
      (c0.(0) *. c1.(1)) -. (c0.(1) *. c1.(0));
    |]
  in
  Float.abs (Vec.dot cross c2 -. 1.0) < eps

let random rng =
  let open Orianna_util in
  let axis = [| Rng.gaussian rng; Rng.gaussian rng; Rng.gaussian rng |] in
  let norm = Vec.norm axis in
  if norm < 1e-9 then Mat.identity 3
  else begin
    let angle = Rng.uniform rng ~lo:(-.Float.pi) ~hi:Float.pi in
    exp (Vec.scale (angle /. norm) axis)
  end

let angle_between r1 r2 = Vec.norm (log (Mat.mul (Mat.transpose r1) r2))
