open Orianna_linalg

let se3_of_pose3 p = Se3.of_rt (Pose3.rotation p) (Pose3.translation p)

let pose3_of_se3 m = Pose3.create ~r:(Se3.rotation m) ~t:(Se3.translation m)

let se3_vec_of_pose3 p = Se3.log (se3_of_pose3 p)

let pose3_of_se3_vec xi = pose3_of_se3 (Se3.exp xi)

let quat_of_pose3 p = (Quat.of_rotation (Pose3.rotation p), Pose3.translation p)

let pose3_of_quat q t = Pose3.create ~r:(Quat.to_rotation q) ~t

let pose2_of_pose3 p =
  let r = Pose3.rotation p in
  let yaw = atan2 (Mat.get r 1 0) (Mat.get r 0 0) in
  let t = Pose3.translation p in
  Pose2.create ~theta:yaw ~t:[| t.(0); t.(1) |]

let pose3_of_pose2 p =
  let t2 = Pose2.translation p in
  Pose3.of_phi_t [| 0.0; 0.0; Pose2.theta p |] [| t2.(0); t2.(1); 0.0 |]
