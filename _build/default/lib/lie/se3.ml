open Orianna_linalg

type t = Mat.t

let of_matrix m =
  let r, c = Mat.dims m in
  if r <> 4 || c <> 4 then invalid_arg "Se3.of_matrix: expected 4x4";
  let bottom_ok =
    Float.abs (Mat.get m 3 0) < 1e-9
    && Float.abs (Mat.get m 3 1) < 1e-9
    && Float.abs (Mat.get m 3 2) < 1e-9
    && Float.abs (Mat.get m 3 3 -. 1.0) < 1e-9
  in
  if not bottom_ok then invalid_arg "Se3.of_matrix: bottom row is not [0 0 0 1]";
  m

let to_matrix m = m

let of_rt r t =
  let m = Mat.identity 4 in
  Mat.set_block m 0 0 r;
  for i = 0 to 2 do
    Mat.set m i 3 t.(i)
  done;
  m

let rotation m = Mat.block m 0 0 3 3
let translation m = [| Mat.get m 0 3; Mat.get m 1 3; Mat.get m 2 3 |]

let identity = Mat.identity 4

let compose a b = Mat.mul a b

let inverse m =
  let rt = Mat.transpose (rotation m) in
  of_rt rt (Vec.neg (Mat.mul_vec rt (translation m)))

let act m x =
  if Vec.dim x <> 3 then invalid_arg "Se3.act: expected a 3D point";
  let h = Mat.mul_vec m [| x.(0); x.(1); x.(2); 1.0 |] in
  [| h.(0); h.(1); h.(2) |]

let split xi =
  if Vec.dim xi <> 6 then invalid_arg "Se3: tangent vectors have dimension 6";
  (Vec.slice xi ~pos:0 ~len:3, Vec.slice xi ~pos:3 ~len:3)

let exp xi =
  let rho, phi = split xi in
  let r = So3.exp phi in
  let v = So3.jl phi in
  of_rt r (Mat.mul_vec v rho)

let log m =
  let phi = So3.log (rotation m) in
  let rho = Mat.mul_vec (So3.jl_inv phi) (translation m) in
  Vec.concat [ rho; phi ]

let adjoint m =
  let r = rotation m and p = translation m in
  let out = Mat.create 6 6 in
  Mat.set_block out 0 0 r;
  Mat.set_block out 0 3 (Mat.mul (So3.hat p) r);
  Mat.set_block out 3 3 r;
  out

(* Barfoot, "State Estimation for Robotics", eq. 7.86: the Q block of
   the left Jacobian of SE(3), with xi = (rho, phi). *)
let q_block rho phi =
  Macs.add 60;
  let rx = So3.hat rho and px = So3.hat phi in
  let theta = Vec.norm phi in
  let m1 = rx in
  let m2 = Mat.add (Mat.mul px rx) (Mat.add (Mat.mul rx px) (Mat.mul px (Mat.mul rx px))) in
  let pxpx = Mat.mul px px in
  let m3 =
    Mat.add (Mat.mul pxpx rx)
      (Mat.sub (Mat.mul rx pxpx) (Mat.scale 3.0 (Mat.mul px (Mat.mul rx px))))
  in
  let m4 =
    Mat.add (Mat.mul px (Mat.mul rx pxpx)) (Mat.mul pxpx (Mat.mul rx px))
  in
  let c1, c2, c3, c4 =
    if theta < 1e-5 then
      (* Taylor expansions around theta = 0. *)
      (0.5, 1.0 /. 6.0, -1.0 /. 24.0, -0.5 *. ((1.0 /. 24.0) -. (3.0 /. 120.0)))
    else begin
      let t2 = theta *. theta in
      let t3 = t2 *. theta in
      let t4 = t3 *. theta in
      let t5 = t4 *. theta in
      let st = sin theta and ct = cos theta in
      let c2 = (theta -. st) /. t3 in
      let c3 = -.(1.0 -. (t2 /. 2.0) -. ct) /. t4 in
      let c4 = -0.5 *. ((-.c3) -. (3.0 *. ((theta -. st -. (t3 /. 6.0)) /. t5))) in
      (0.5, c2, c3, c4)
    end
  in
  Mat.add
    (Mat.scale c1 m1)
    (Mat.add (Mat.scale c2 m2) (Mat.add (Mat.scale c3 m3) (Mat.scale c4 m4)))

let jl xi =
  let rho, phi = split xi in
  let j = So3.jl phi in
  let q = q_block rho phi in
  let out = Mat.create 6 6 in
  Mat.set_block out 0 0 j;
  Mat.set_block out 0 3 q;
  Mat.set_block out 3 3 j;
  out

let jr xi = jl (Vec.neg xi)

let jl_inv xi =
  let rho, phi = split xi in
  let ji = So3.jl_inv phi in
  let q = q_block rho phi in
  let out = Mat.create 6 6 in
  Mat.set_block out 0 0 ji;
  Mat.set_block out 0 3 (Mat.neg (Mat.mul ji (Mat.mul q ji)));
  Mat.set_block out 3 3 ji;
  out

let jr_inv xi = jl_inv (Vec.neg xi)

let retract x d = compose x (exp d)
let local a b = log (compose (inverse a) b)

let tangent_dim = 6

let equal ?(eps = 1e-9) a b = Mat.equal ~eps a b

let pp ppf m = Format.fprintf ppf "@[<v>se3@,%a@]" Mat.pp m
