open Orianna_linalg

type t = { w : float; x : float; y : float; z : float }

let identity = { w = 1.0; x = 0.0; y = 0.0; z = 0.0 }

let norm q = sqrt ((q.w *. q.w) +. (q.x *. q.x) +. (q.y *. q.y) +. (q.z *. q.z))

let normalize q =
  let n = norm q in
  if n < 1e-12 then invalid_arg "Quat.normalize: zero quaternion";
  { w = q.w /. n; x = q.x /. n; y = q.y /. n; z = q.z /. n }

let mul a b =
  Macs.add 16;
  {
    w = (a.w *. b.w) -. (a.x *. b.x) -. (a.y *. b.y) -. (a.z *. b.z);
    x = (a.w *. b.x) +. (a.x *. b.w) +. (a.y *. b.z) -. (a.z *. b.y);
    y = (a.w *. b.y) -. (a.x *. b.z) +. (a.y *. b.w) +. (a.z *. b.x);
    z = (a.w *. b.z) +. (a.x *. b.y) -. (a.y *. b.x) +. (a.z *. b.w);
  }

let conjugate q = { q with x = -.q.x; y = -.q.y; z = -.q.z }

let of_rotation r =
  let m, n = Mat.dims r in
  if m <> 3 || n <> 3 then invalid_arg "Quat.of_rotation: expected 3x3";
  let g i j = Mat.get r i j in
  let tr = Mat.trace r in
  let q =
    if tr > 0.0 then begin
      let s = sqrt (tr +. 1.0) *. 2.0 in
      { w = 0.25 *. s; x = (g 2 1 -. g 1 2) /. s; y = (g 0 2 -. g 2 0) /. s; z = (g 1 0 -. g 0 1) /. s }
    end
    else if g 0 0 > g 1 1 && g 0 0 > g 2 2 then begin
      let s = sqrt (1.0 +. g 0 0 -. g 1 1 -. g 2 2) *. 2.0 in
      { w = (g 2 1 -. g 1 2) /. s; x = 0.25 *. s; y = (g 0 1 +. g 1 0) /. s; z = (g 0 2 +. g 2 0) /. s }
    end
    else if g 1 1 > g 2 2 then begin
      let s = sqrt (1.0 +. g 1 1 -. g 0 0 -. g 2 2) *. 2.0 in
      { w = (g 0 2 -. g 2 0) /. s; x = (g 0 1 +. g 1 0) /. s; y = 0.25 *. s; z = (g 1 2 +. g 2 1) /. s }
    end
    else begin
      let s = sqrt (1.0 +. g 2 2 -. g 0 0 -. g 1 1) *. 2.0 in
      { w = (g 1 0 -. g 0 1) /. s; x = (g 0 2 +. g 2 0) /. s; y = (g 1 2 +. g 2 1) /. s; z = 0.25 *. s }
    end
  in
  normalize q

let to_rotation q =
  Macs.add 24;
  let { w; x; y; z } = normalize q in
  Mat.of_rows
    [|
      [|
        1.0 -. (2.0 *. ((y *. y) +. (z *. z)));
        2.0 *. ((x *. y) -. (w *. z));
        2.0 *. ((x *. z) +. (w *. y));
      |];
      [|
        2.0 *. ((x *. y) +. (w *. z));
        1.0 -. (2.0 *. ((x *. x) +. (z *. z)));
        2.0 *. ((y *. z) -. (w *. x));
      |];
      [|
        2.0 *. ((x *. z) -. (w *. y));
        2.0 *. ((y *. z) +. (w *. x));
        1.0 -. (2.0 *. ((x *. x) +. (y *. y)));
      |];
    |]

let of_axis_angle axis angle =
  let n = Vec.norm axis in
  if n < 1e-12 then identity
  else begin
    let half = angle /. 2.0 in
    let s = sin half /. n in
    { w = cos half; x = s *. axis.(0); y = s *. axis.(1); z = s *. axis.(2) }
  end

let rotate q v =
  let p = { w = 0.0; x = v.(0); y = v.(1); z = v.(2) } in
  let r = mul (mul q p) (conjugate q) in
  [| r.x; r.y; r.z |]

let dot a b = (a.w *. b.w) +. (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

let slerp a b t =
  let a = normalize a and b = normalize b in
  (* Take the short arc. *)
  let d = dot a b in
  let b, d = if d < 0.0 then ({ w = -.b.w; x = -.b.x; y = -.b.y; z = -.b.z }, -.d) else (b, d) in
  if d > 0.9995 then
    normalize
      {
        w = a.w +. (t *. (b.w -. a.w));
        x = a.x +. (t *. (b.x -. a.x));
        y = a.y +. (t *. (b.y -. a.y));
        z = a.z +. (t *. (b.z -. a.z));
      }
  else begin
    let theta = acos (Float.max (-1.0) (Float.min 1.0 d)) in
    let s = sin theta in
    let wa = sin ((1.0 -. t) *. theta) /. s in
    let wb = sin (t *. theta) /. s in
    normalize
      {
        w = (wa *. a.w) +. (wb *. b.w);
        x = (wa *. a.x) +. (wb *. b.x);
        y = (wa *. a.y) +. (wb *. b.y);
        z = (wa *. a.z) +. (wb *. b.z);
      }
  end

let equal_up_to_sign ?(eps = 1e-9) a b =
  let close p q =
    Float.abs (p.w -. q.w) < eps
    && Float.abs (p.x -. q.x) < eps
    && Float.abs (p.y -. q.y) < eps
    && Float.abs (p.z -. q.z) < eps
  in
  close a b || close a { w = -.b.w; x = -.b.x; y = -.b.y; z = -.b.z }
