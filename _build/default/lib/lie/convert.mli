(** Conversions among the three pose representations of Fig. 8:
    the unified [<so(3), T(3)>] ({!Pose3}), the special Euclidean group
    SE(3) ({!Se3}), and its Lie algebra se(3) (a 6-vector), plus the
    quaternion form of Sec. 4.1.  All round trips are exercised by the
    test suite. *)

open Orianna_linalg

val se3_of_pose3 : Pose3.t -> Se3.t
(** Exponential map of the orientation then padding (top-right arrow
    of Fig. 8). *)

val pose3_of_se3 : Se3.t -> Pose3.t
(** Strip the padding, logarithm of the rotation block. *)

val se3_vec_of_pose3 : Pose3.t -> Vec.t
(** To se(3) coordinates: [rho = Jl(phi)^-1 t] (the linear mapping J of
    Sec. 4.3). *)

val pose3_of_se3_vec : Vec.t -> Pose3.t
(** From se(3) coordinates. *)

val quat_of_pose3 : Pose3.t -> Quat.t * Vec.t
(** The [(q, T(3))] representation used by VINS-Mono-style stacks. *)

val pose3_of_quat : Quat.t -> Vec.t -> Pose3.t

val pose2_of_pose3 : Pose3.t -> Pose2.t
(** Project onto the plane (yaw + xy); used by 2D visualizations. *)

val pose3_of_pose2 : Pose2.t -> Pose3.t
(** Embed a planar pose in 3D (rotation about z, zero altitude). *)
