(** Measurement factors on poses (localization row of Tbl. 2).

    All factors here are {e symbolic}: their error functions are
    expressed over the nine primitive operations, so the ORIANNA
    compiler can lower them to MO-DFG instruction streams and the
    backward pass derives their Jacobians automatically. *)

open Orianna_linalg
open Orianna_lie
open Orianna_fg

val prior2 : name:string -> var:string -> z:Pose2.t -> sigma:float -> Factor.t
(** Unary anchor on a planar pose: [e_o = Log(Rzᵀ R)],
    [e_p = t - tz]. *)

val prior3 : name:string -> var:string -> z:Pose3.t -> sigma:float -> Factor.t
(** Unary anchor on a 3D pose. *)

val between2 : name:string -> a:string -> b:string -> z:Pose2.t -> sigma:float -> Factor.t
(** Relative-pose constraint (Equ. 3/4): the measured value of
    [b ominus a].  This is the odometry / IMU-preintegration / LiDAR
    scan-matching factor shape. *)

val between3 : name:string -> a:string -> b:string -> z:Pose3.t -> sigma:float -> Factor.t

val between3_sigmas : name:string -> a:string -> b:string -> z:Pose3.t -> sigmas:Vec.t -> Factor.t
(** {!between3} with per-row noise (rows ordered [rot3; trans3]) — the
    shape g2o information matrices map onto. *)

val between2_sigmas : name:string -> a:string -> b:string -> z:Pose2.t -> sigmas:Vec.t -> Factor.t

val gps2 : name:string -> var:string -> z:Vec.t -> sigma:float -> Factor.t
(** Position-only observation: [e = t - z] (2-vector). *)

val gps3 : name:string -> var:string -> z:Vec.t -> sigma:float -> Factor.t

val lidar_landmark2 :
  name:string -> pose:string -> landmark:string -> z:Vec.t -> sigma:float -> Factor.t
(** Body-frame point observation of a landmark (the LiDAR factor):
    [e = Rᵀ (l - t) - z], with the landmark a 2-vector variable. *)

val lidar_landmark3 :
  name:string -> pose:string -> landmark:string -> z:Vec.t -> sigma:float -> Factor.t
(** 3D variant; [z] is the measured point in the sensor frame. *)

val pose_anchor3 : name:string -> var:string -> z:Pose3.t -> sigmas:Vec.t -> Factor.t
(** {!prior3} with per-row sigmas (tight orientation, loose position
    or vice versa). *)
