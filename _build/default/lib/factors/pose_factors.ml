open Orianna_linalg
open Orianna_lie
open Orianna_fg
module Expr = Orianna_ir.Expr

let prior_exprs ~rot ~trans ~z_rot ~z_trans =
  let e_o = Expr.(log_map (const_rot (Mat.transpose z_rot) *^ rot)) in
  let e_p = Expr.(trans - const_vec z_trans) in
  [ e_o; e_p ]

let prior2 ~name ~var ~z ~sigma =
  let exprs =
    prior_exprs ~rot:(Expr.rot_var var) ~trans:(Expr.trans_var var) ~z_rot:(Pose2.rotation z)
      ~z_trans:(Pose2.translation z)
  in
  Factor.symbolic ~name ~vars:[ var ] ~sigmas:(Array.make 3 sigma) exprs

let prior3 ~name ~var ~z ~sigma =
  let exprs =
    prior_exprs ~rot:(Expr.rot_var var) ~trans:(Expr.trans_var var) ~z_rot:(Pose3.rotation z)
      ~z_trans:(Pose3.translation z)
  in
  Factor.symbolic ~name ~vars:[ var ] ~sigmas:(Array.make 6 sigma) exprs

let pose_anchor3 ~name ~var ~z ~sigmas =
  let exprs =
    prior_exprs ~rot:(Expr.rot_var var) ~trans:(Expr.trans_var var) ~z_rot:(Pose3.rotation z)
      ~z_trans:(Pose3.translation z)
  in
  Factor.symbolic ~name ~vars:[ var ] ~sigmas exprs

let between2 ~name ~a ~b ~z ~sigma =
  (* The measurement predicts b ominus a, so x_i = b and x_j = a in
     the Equ. 4 error. *)
  let exprs =
    Expr.between_error ~pose_dim:2 ~x_i:b ~x_j:a ~z_rot:(Pose2.rotation z)
      ~z_trans:(Pose2.translation z)
  in
  Factor.symbolic ~name ~vars:[ a; b ] ~sigmas:(Array.make 3 sigma) exprs

let between3 ~name ~a ~b ~z ~sigma =
  let exprs =
    Expr.between_error ~pose_dim:3 ~x_i:b ~x_j:a ~z_rot:(Pose3.rotation z)
      ~z_trans:(Pose3.translation z)
  in
  Factor.symbolic ~name ~vars:[ a; b ] ~sigmas:(Array.make 6 sigma) exprs

let between3_sigmas ~name ~a ~b ~z ~sigmas =
  let exprs =
    Expr.between_error ~pose_dim:3 ~x_i:b ~x_j:a ~z_rot:(Pose3.rotation z)
      ~z_trans:(Pose3.translation z)
  in
  Factor.symbolic ~name ~vars:[ a; b ] ~sigmas exprs

let between2_sigmas ~name ~a ~b ~z ~sigmas =
  let exprs =
    Expr.between_error ~pose_dim:2 ~x_i:b ~x_j:a ~z_rot:(Pose2.rotation z)
      ~z_trans:(Pose2.translation z)
  in
  Factor.symbolic ~name ~vars:[ a; b ] ~sigmas exprs

let gps ~dim ~name ~var ~z ~sigma =
  if Vec.dim z <> dim then invalid_arg ("Pose_factors.gps: measurement must have dim " ^ string_of_int dim);
  Factor.symbolic ~name ~vars:[ var ]
    ~sigmas:(Array.make dim sigma)
    [ Expr.(trans_var var - const_vec z) ]

let gps2 ~name ~var ~z ~sigma = gps ~dim:2 ~name ~var ~z ~sigma
let gps3 ~name ~var ~z ~sigma = gps ~dim:3 ~name ~var ~z ~sigma

let lidar_landmark ~dim ~name ~pose ~landmark ~z ~sigma =
  if Vec.dim z <> dim then
    invalid_arg ("Pose_factors.lidar_landmark: measurement must have dim " ^ string_of_int dim);
  let e =
    Expr.(transpose (rot_var pose) *> (vec_var landmark - trans_var pose) - const_vec z)
  in
  Factor.symbolic ~name ~vars:[ pose; landmark ] ~sigmas:(Array.make dim sigma) [ e ]

let lidar_landmark2 ~name ~pose ~landmark ~z ~sigma =
  lidar_landmark ~dim:2 ~name ~pose ~landmark ~z ~sigma

let lidar_landmark3 ~name ~pose ~landmark ~z ~sigma =
  lidar_landmark ~dim:3 ~name ~pose ~landmark ~z ~sigma
