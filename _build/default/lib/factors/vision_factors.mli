(** Camera measurement factors.

    The pinhole projection contains a perspective division, which
    falls outside the nine-primitive algebra, so these factors are
    {e native}: error and analytic Jacobians are provided directly —
    the "customized factor" escape hatch of Sec. 5.1.  The Jacobian
    block shapes (2 rows; 6 columns on the pose, 3 on the landmark)
    are exactly the ones the paper quotes for its camera factor. *)

open Orianna_linalg
open Orianna_fg

type intrinsics = { fx : float; fy : float; cx : float; cy : float }
(** Pinhole camera intrinsics (pixels). *)

val default_intrinsics : intrinsics
(** fx = fy = 500, cx = 320, cy = 240. *)

val project : intrinsics -> Vec.t -> Vec.t
(** [project k p] maps a camera-frame point (z > 0) to pixel
    coordinates.  Raises [Invalid_argument] on non-positive depth. *)

exception Behind_camera of string
(** Raised during linearization when a landmark estimate falls behind
    the image plane. *)

val camera :
  name:string ->
  ?k:intrinsics ->
  pose:string ->
  landmark:string ->
  z:Vec.t ->
  sigma:float ->
  unit ->
  Factor.t
(** Reprojection factor: [e = project(Rᵀ (l - t)) - z] with the
    world-to-camera convention used throughout (pose rotation maps
    camera to world). *)

val bearing_range2 :
  name:string -> pose:string -> landmark:string -> bearing:float -> range:float -> sigma:float -> Factor.t
(** Planar bearing-range observation (2D LiDAR style):
    [e = [atan2 of body-frame point - bearing (wrapped); |l - t| - range]]. *)
