(** Constraint factors for planning and control (Tbl. 2, second row).

    Trajectory states are vector variables [x = [p; v]] (position and
    velocity, [d] spatial dimensions each); control inputs are vector
    variables of their own.  Factors follow the GPMP2-style planning
    graph (Fig. 7a) and the LQR-style control graph (Fig. 7b). *)

open Orianna_linalg
open Orianna_fg

type obstacle = { center : Vec.t; radius : float }
(** Spherical obstacle in workspace coordinates. *)

val smooth : name:string -> a:string -> b:string -> dt:float -> d:int -> sigma:float -> Factor.t
(** GP / constant-velocity prior between consecutive states:
    [e = x_b - Phi x_a] with [Phi = [[I, dt I]; [0, I]]].  Penalizes
    jerky trajectories (the "smooth factor" of Sec. 2.3). *)

val collision_free :
  name:string -> var:string -> obstacle:obstacle -> safety:float -> sigma:float -> Factor.t
(** Hinge obstacle cost on the position part of a state:
    [e = max(0, safety - (|p - c| - radius))].  The workspace is the
    first [dim center] entries of the state. *)

val component_limit :
  name:string -> var:string -> index:int -> max_abs:float -> sigma:float -> Factor.t
(** Hinge on the magnitude of one state component:
    [e = max(0, |x_index| - max_abs)] — the control-side kinematics
    constraint (e.g. the speed entry of a vehicle state). *)

val speed_limit : name:string -> var:string -> d:int -> vmax:float -> sigma:float -> Factor.t
(** Kinematics constraint: [e = max(0, |v| - vmax)] on the velocity
    part of a state. *)

val dynamics :
  name:string ->
  x_prev:string ->
  u:string ->
  x_next:string ->
  a_mat:Mat.t ->
  b_mat:Mat.t ->
  sigma:float ->
  Factor.t
(** Discrete linear dynamics [x_next = A x_prev + B u]:
    [e = x_next - A x_prev - B u] (the "dynamics factor" of
    Fig. 7b). *)

val state_cost : name:string -> var:string -> target:Vec.t -> sigmas:Vec.t -> Factor.t
(** Quadratic state cost towards a reference: [e = x - target], row
    weights via [sigmas]. *)

val input_cost : name:string -> var:string -> sigmas:Vec.t -> Factor.t
(** Quadratic control-effort cost: [e = u]. *)

val goal : name:string -> var:string -> target:Vec.t -> sigma:float -> Factor.t
(** Hard-ish terminal constraint: {!state_cost} with a uniform tight
    sigma. *)

val double_integrator : d:int -> dt:float -> Mat.t * Mat.t
(** The canonical [A], [B] pair of a [d]-dimensional double
    integrator with step [dt] (state [[p; v]], input = acceleration). *)

val unicycle_linearized : v0:float -> theta0:float -> dt:float -> Mat.t * Mat.t
(** Constant-linearization of unicycle car dynamics around a nominal
    speed and heading: state [[x; y; theta; v; omega]]... returns the
    5x5 [A] and 5x2 [B] used by the AutoVehicle control stack. *)
