open Orianna_linalg
open Orianna_lie
open Orianna_fg

let as_se3 what lookup var =
  match lookup var with
  | Var.Se3 x -> x
  | Var.Pose2 _ | Var.Pose3 _ | Var.Vector _ ->
      invalid_arg (what ^ ": expects an SE(3) variable " ^ var)

let prior ~name ~var ~z ~sigma =
  let z_inv = Se3.inverse z in
  Factor.native ~name ~vars:[ var ] ~sigmas:(Array.make 6 sigma) ~error_dim:6 (fun lookup ->
      let x = as_se3 "Se3_factors.prior" lookup var in
      let e = Se3.log (Se3.compose z_inv x) in
      (e, [ (var, Se3.jr_inv e) ]))

let between ~name ~a ~b ~z ~sigma =
  let z_inv = Se3.inverse z in
  Factor.native ~name ~vars:[ a; b ] ~sigmas:(Array.make 6 sigma) ~error_dim:6 (fun lookup ->
      let xa = as_se3 "Se3_factors.between" lookup a in
      let xb = as_se3 "Se3_factors.between" lookup b in
      let e = Se3.log (Se3.compose z_inv (Se3.compose (Se3.inverse xa) xb)) in
      let jri = Se3.jr_inv e in
      let j_b = jri in
      let j_a = Mat.neg (Mat.mul jri (Se3.adjoint (Se3.compose (Se3.inverse xb) xa))) in
      (e, [ (a, j_a); (b, j_b) ]))
