(** Factors over SE(3) variables — the baseline pose representation of
    Sec. 4.3.

    These are native factors: the SE(3) tangent is the joint 6-vector
    [[rho; phi]], the error lives in se(3), and the Jacobians involve
    the full 6x6 inverse right Jacobian (Q-block included) and the
    adjoint — all the coupled machinery the unified [<so(n), T(n)>]
    representation avoids.  Used by the sphere benchmark to reproduce
    Tbl. 1 and the MAC-saving claim. *)

open Orianna_lie
open Orianna_fg

val prior : name:string -> var:string -> z:Se3.t -> sigma:float -> Factor.t
(** [e = Log(z^-1 x)], [J = Jr^-1(e)]. *)

val between : name:string -> a:string -> b:string -> z:Se3.t -> sigma:float -> Factor.t
(** [e = Log(z^-1 a^-1 b)]; [J_b = Jr^-1(e)],
    [J_a = -Jr^-1(e) Ad(b^-1 a)]. *)
