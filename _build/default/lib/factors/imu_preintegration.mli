(** IMU preintegration (Forster et al.-style, bias-free).

    Visual-inertial stacks like VINS-Mono integrate the IMU samples
    between two keyframes once, into a relative orientation / velocity
    / position triplet, and constrain {e pose and velocity} states of
    both keyframes with a single factor.  States: keyframe poses are
    [Var.Pose3], keyframe velocities are 3-dimensional [Var.Vector]s.

    Residuals (gravity [g], total time [dt]):

    - [rR = Log(dRijT RiT Rj)]
    - [rv = RiT (vj - vi - g dt) - dvij]
    - [rp = RiT (pj - pi - vi dt - 1/2 g dt^2) - dpij]

    with analytic right-perturbation Jacobians, checked against
    numeric differentiation in the tests. *)

open Orianna_linalg
open Orianna_fg

type t
(** Accumulated preintegrated measurement. *)

val create : ?gravity:Vec.t -> unit -> t
(** Fresh accumulator; gravity defaults to [(0, 0, -9.81)]. *)

val integrate : t -> dt:float -> gyro:Vec.t -> accel:Vec.t -> t
(** Fold one IMU sample (body-frame angular velocity rad/s and
    specific force m/s²) over [dt] seconds.  Pure: returns the
    extended accumulator. *)

val delta_t : t -> float

val delta_rot : t -> Mat.t

val delta_vel : t -> Vec.t

val delta_pos : t -> Vec.t

val factor :
  name:string ->
  pose_i:string ->
  vel_i:string ->
  pose_j:string ->
  vel_j:string ->
  preintegrated:t ->
  rot_sigma:float ->
  vel_sigma:float ->
  pos_sigma:float ->
  Factor.t
(** The 9-row preintegration factor over (pose_i, vel_i, pose_j,
    vel_j). *)

val simulate :
  rng:Orianna_util.Rng.t ->
  gravity:Vec.t ->
  pose_i:Orianna_lie.Pose3.t ->
  vel_i:Vec.t ->
  samples:(float * Vec.t * Vec.t) list ->
  gyro_noise:float ->
  accel_noise:float ->
  t * Orianna_lie.Pose3.t * Vec.t
(** Test/workload helper: integrate ideal samples
    [(dt, gyro, accel)] to get the true end state (pose_j, vel_j),
    while accumulating a noise-corrupted preintegrated measurement. *)
