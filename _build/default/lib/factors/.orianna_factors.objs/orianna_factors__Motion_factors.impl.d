lib/factors/motion_factors.ml: Array Factor Float Mat Orianna_fg Orianna_linalg Printf Var Vec
