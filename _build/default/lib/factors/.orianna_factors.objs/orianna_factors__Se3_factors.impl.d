lib/factors/se3_factors.ml: Array Factor Mat Orianna_fg Orianna_lie Orianna_linalg Se3 Var
