lib/factors/imu_preintegration.mli: Factor Mat Orianna_fg Orianna_lie Orianna_linalg Orianna_util Vec
