lib/factors/imu_preintegration.ml: Array Factor List Mat Orianna_fg Orianna_lie Orianna_linalg Orianna_util Pose3 Rng So3 Var Vec
