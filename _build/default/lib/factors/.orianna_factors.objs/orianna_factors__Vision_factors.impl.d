lib/factors/vision_factors.ml: Array Factor Mat Orianna_fg Orianna_lie Orianna_linalg Pose2 Pose3 So2 So3 Var Vec
