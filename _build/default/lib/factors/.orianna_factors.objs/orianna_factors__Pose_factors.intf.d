lib/factors/pose_factors.mli: Factor Orianna_fg Orianna_lie Orianna_linalg Pose2 Pose3 Vec
