lib/factors/se3_factors.mli: Factor Orianna_fg Orianna_lie Se3
