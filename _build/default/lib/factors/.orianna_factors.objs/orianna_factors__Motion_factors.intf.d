lib/factors/motion_factors.mli: Factor Mat Orianna_fg Orianna_linalg Vec
