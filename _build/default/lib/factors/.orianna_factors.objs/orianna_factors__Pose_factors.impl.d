lib/factors/pose_factors.ml: Array Factor Mat Orianna_fg Orianna_ir Orianna_lie Orianna_linalg Pose2 Pose3 Vec
