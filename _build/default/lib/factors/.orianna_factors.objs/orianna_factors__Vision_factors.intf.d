lib/factors/vision_factors.mli: Factor Orianna_fg Orianna_linalg Vec
