open Orianna_linalg
open Orianna_lie
open Orianna_fg

type t = {
  gravity : Vec.t;
  dt : float;
  d_rot : Mat.t;  (* body-frame rotation from keyframe i to current *)
  d_vel : Vec.t;
  d_pos : Vec.t;
}

let create ?(gravity = [| 0.0; 0.0; -9.81 |]) () =
  if Vec.dim gravity <> 3 then invalid_arg "Imu_preintegration.create: gravity must be 3D";
  { gravity; dt = 0.0; d_rot = Mat.identity 3; d_vel = Vec.create 3; d_pos = Vec.create 3 }

let integrate t ~dt ~gyro ~accel =
  if dt <= 0.0 then invalid_arg "Imu_preintegration.integrate: dt must be positive";
  if Vec.dim gyro <> 3 || Vec.dim accel <> 3 then
    invalid_arg "Imu_preintegration.integrate: samples must be 3D";
  let a_world = Mat.mul_vec t.d_rot accel in
  {
    t with
    dt = t.dt +. dt;
    d_pos = Vec.add t.d_pos (Vec.add (Vec.scale dt t.d_vel) (Vec.scale (0.5 *. dt *. dt) a_world));
    d_vel = Vec.add t.d_vel (Vec.scale dt a_world);
    d_rot = Mat.mul t.d_rot (So3.exp (Vec.scale dt gyro));
  }

let delta_t t = t.dt
let delta_rot t = t.d_rot
let delta_vel t = t.d_vel
let delta_pos t = t.d_pos

let as_pose3 what lookup v =
  match lookup v with
  | Var.Pose3 p -> p
  | Var.Pose2 _ | Var.Se3 _ | Var.Vector _ -> invalid_arg (what ^ ": expects a Pose3 " ^ v)

let as_vec3 what lookup v =
  match lookup v with
  | Var.Vector x when Vec.dim x = 3 -> x
  | Var.Vector _ | Var.Pose2 _ | Var.Pose3 _ | Var.Se3 _ ->
      invalid_arg (what ^ ": expects a 3-vector " ^ v)

let factor ~name ~pose_i ~vel_i ~pose_j ~vel_j ~preintegrated ~rot_sigma ~vel_sigma ~pos_sigma =
  let pre = preintegrated in
  let sigmas =
    Array.init 9 (fun k -> if k < 3 then rot_sigma else if k < 6 then vel_sigma else pos_sigma)
  in
  Factor.native ~name
    ~vars:[ pose_i; vel_i; pose_j; vel_j ]
    ~sigmas ~error_dim:9
    (fun lookup ->
      let pi = as_pose3 name lookup pose_i in
      let pj = as_pose3 name lookup pose_j in
      let vi = as_vec3 name lookup vel_i in
      let vj = as_vec3 name lookup vel_j in
      let ri = Pose3.rotation pi and rj = Pose3.rotation pj in
      let rit = Mat.transpose ri in
      let dt = pre.dt in
      let g = pre.gravity in
      (* Residuals. *)
      let r_rot = So3.log (Mat.mul (Mat.transpose pre.d_rot) (Mat.mul rit rj)) in
      let u_vel = Vec.sub (Vec.sub vj vi) (Vec.scale dt g) in
      let r_vel = Vec.sub (Mat.mul_vec rit u_vel) pre.d_vel in
      let u_pos =
        Vec.sub
          (Vec.sub (Vec.sub (Pose3.translation pj) (Pose3.translation pi)) (Vec.scale dt vi))
          (Vec.scale (0.5 *. dt *. dt) g)
      in
      let r_pos = Vec.sub (Mat.mul_vec rit u_pos) pre.d_pos in
      (* Jacobians (right perturbation). *)
      let jr_inv_r = So3.jr_inv r_rot in
      let rjt_ri = Mat.mul (Mat.transpose rj) ri in
      let j_pose_i = Mat.create 9 6 in
      Mat.set_block j_pose_i 0 0 (Mat.neg (Mat.mul jr_inv_r rjt_ri));
      Mat.set_block j_pose_i 3 0 (So3.hat (Mat.mul_vec rit u_vel));
      Mat.set_block j_pose_i 6 0 (So3.hat (Mat.mul_vec rit u_pos));
      Mat.set_block j_pose_i 6 3 (Mat.neg rit);
      let j_pose_j = Mat.create 9 6 in
      Mat.set_block j_pose_j 0 0 jr_inv_r;
      Mat.set_block j_pose_j 6 3 rit;
      let j_vel_i = Mat.create 9 3 in
      Mat.set_block j_vel_i 3 0 (Mat.neg rit);
      Mat.set_block j_vel_i 6 0 (Mat.scale (-.dt) rit);
      let j_vel_j = Mat.create 9 3 in
      Mat.set_block j_vel_j 3 0 rit;
      ( Vec.concat [ r_rot; r_vel; r_pos ],
        [ (pose_i, j_pose_i); (vel_i, j_vel_i); (pose_j, j_pose_j); (vel_j, j_vel_j) ] ))

let simulate ~rng ~gravity ~pose_i ~vel_i ~samples ~gyro_noise ~accel_noise =
  let open Orianna_util in
  let noisy = ref (create ~gravity ()) in
  (* Ground truth integrates in the world frame. *)
  let r = ref (Pose3.rotation pose_i) in
  let v = ref (Vec.copy vel_i) in
  let p = ref (Vec.copy (Pose3.translation pose_i)) in
  List.iter
    (fun (dt, gyro, accel) ->
      let a_world = Vec.add (Mat.mul_vec !r accel) gravity in
      p := Vec.add !p (Vec.add (Vec.scale dt !v) (Vec.scale (0.5 *. dt *. dt) a_world));
      v := Vec.add !v (Vec.scale dt a_world);
      r := Mat.mul !r (So3.exp (Vec.scale dt gyro));
      let gyro_n = Vec.add gyro (Array.init 3 (fun _ -> Rng.gaussian_sigma rng ~sigma:gyro_noise)) in
      let accel_n =
        Vec.add accel (Array.init 3 (fun _ -> Rng.gaussian_sigma rng ~sigma:accel_noise))
      in
      noisy := integrate !noisy ~dt ~gyro:gyro_n ~accel:accel_n)
    samples;
  (!noisy, Pose3.create ~r:(So3.normalize !r) ~t:!p, !v)
