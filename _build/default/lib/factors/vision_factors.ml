open Orianna_linalg
open Orianna_lie
open Orianna_fg

type intrinsics = { fx : float; fy : float; cx : float; cy : float }

let default_intrinsics = { fx = 500.0; fy = 500.0; cx = 320.0; cy = 240.0 }

exception Behind_camera of string

let project k p =
  if Vec.dim p <> 3 then invalid_arg "Vision_factors.project: expected a 3D point";
  if p.(2) <= 1e-9 then invalid_arg "Vision_factors.project: non-positive depth";
  [| (k.fx *. p.(0) /. p.(2)) +. k.cx; (k.fy *. p.(1) /. p.(2)) +. k.cy |]

(* d project / d p: the 2x3 pinhole Jacobian. *)
let projection_jacobian k p =
  let z = p.(2) in
  Mat.of_rows
    [|
      [| k.fx /. z; 0.0; -.(k.fx *. p.(0)) /. (z *. z) |];
      [| 0.0; k.fy /. z; -.(k.fy *. p.(1)) /. (z *. z) |];
    |]

let camera ~name ?(k = default_intrinsics) ~pose ~landmark ~z ~sigma () =
  if Vec.dim z <> 2 then invalid_arg "Vision_factors.camera: pixel measurement must be 2D";
  Factor.native ~name ~vars:[ pose; landmark ] ~sigmas:(Array.make 2 sigma) ~error_dim:2
    (fun lookup ->
      match (lookup pose, lookup landmark) with
      | Var.Pose3 p, Var.Vector l ->
          let rt = Mat.transpose (Pose3.rotation p) in
          let p_cam = Mat.mul_vec rt (Vec.sub l (Pose3.translation p)) in
          if p_cam.(2) <= 1e-9 then raise (Behind_camera name);
          let err = Vec.sub (project k p_cam) z in
          let jp = projection_jacobian k p_cam in
          (* Right perturbation of the rotation: d p_cam / d phi = hat(p_cam). *)
          let j_pose = Mat.hcat [ Mat.mul jp (So3.hat p_cam); Mat.neg (Mat.mul jp rt) ] in
          let j_lm = Mat.mul jp rt in
          (err, [ (pose, j_pose); (landmark, j_lm) ])
      | (Var.Pose2 _ | Var.Pose3 _ | Var.Se3 _ | Var.Vector _), _ ->
          invalid_arg "Vision_factors.camera: expects (Pose3, Vector) variables")

let bearing_range2 ~name ~pose ~landmark ~bearing ~range ~sigma =
  Factor.native ~name ~vars:[ pose; landmark ] ~sigmas:[| sigma; sigma |] ~error_dim:2
    (fun lookup ->
      match (lookup pose, lookup landmark) with
      | Var.Pose2 p, Var.Vector l ->
          let t = Pose2.translation p in
          let d = Vec.sub l t in
          let r = Vec.norm d in
          if r < 1e-9 then invalid_arg "bearing_range2: landmark coincides with robot";
          let body = Mat.mul_vec (Mat.transpose (Pose2.rotation p)) d in
          let predicted_bearing = atan2 body.(1) body.(0) in
          let e_bearing = So2.wrap_angle (predicted_bearing -. bearing) in
          let e_range = r -. range in
          (* Bearing w.r.t. theta: rotating the robot by dth decreases
             the body-frame bearing by dth. *)
          let r2 = r *. r in
          let db_dl = [| -.d.(1) /. r2; d.(0) /. r2 |] in
          let dr_dl = [| d.(0) /. r; d.(1) /. r |] in
          let j_pose =
            Mat.of_rows
              [|
                [| -1.0; -.db_dl.(0); -.db_dl.(1) |];
                [| 0.0; -.dr_dl.(0); -.dr_dl.(1) |];
              |]
          in
          let j_lm = Mat.of_rows [| [| db_dl.(0); db_dl.(1) |]; [| dr_dl.(0); dr_dl.(1) |] |] in
          ([| e_bearing; e_range |], [ (pose, j_pose); (landmark, j_lm) ])
      | (Var.Pose2 _ | Var.Pose3 _ | Var.Se3 _ | Var.Vector _), _ ->
          invalid_arg "Vision_factors.bearing_range2: expects (Pose2, Vector) variables")
