open Orianna_linalg
open Orianna_fg

type obstacle = { center : Vec.t; radius : float }

let as_vector what lookup var =
  match lookup var with
  | Var.Vector v -> v
  | Var.Pose2 _ | Var.Pose3 _ | Var.Se3 _ ->
      invalid_arg (what ^ ": expects a vector variable " ^ var)

let transition_matrix ~dt ~d =
  let phi = Mat.identity (2 * d) in
  for i = 0 to d - 1 do
    Mat.set phi i (d + i) dt
  done;
  phi

let smooth ~name ~a ~b ~dt ~d ~sigma =
  let dim = 2 * d in
  let phi = transition_matrix ~dt ~d in
  Factor.native ~name ~vars:[ a; b ] ~sigmas:(Array.make dim sigma) ~error_dim:dim (fun lookup ->
      let xa = as_vector "smooth" lookup a in
      let xb = as_vector "smooth" lookup b in
      if Vec.dim xa <> dim || Vec.dim xb <> dim then
        invalid_arg (Printf.sprintf "smooth %s: states must have dim %d" name dim);
      let err = Vec.sub xb (Mat.mul_vec phi xa) in
      (err, [ (a, Mat.neg phi); (b, Mat.identity dim) ]))

let collision_free ~name ~var ~obstacle ~safety ~sigma =
  (* The obstacle lives in the first [w] state dimensions, where [w]
     is the workspace dimension (the obstacle center's length). *)
  let w = Vec.dim obstacle.center in
  Factor.native ~name ~vars:[ var ] ~sigmas:[| sigma |] ~error_dim:1 (fun lookup ->
      let x = as_vector "collision_free" lookup var in
      if Vec.dim x < w then invalid_arg ("collision_free " ^ name ^ ": state narrower than workspace");
      let p = Vec.slice x ~pos:0 ~len:w in
      let diff = Vec.sub p obstacle.center in
      let dist = Vec.norm diff in
      let clearance = dist -. obstacle.radius in
      if clearance >= safety then ([| 0.0 |], [ (var, Mat.create 1 (Vec.dim x)) ])
      else begin
        let err = [| safety -. clearance |] in
        let j = Mat.create 1 (Vec.dim x) in
        if dist > 1e-9 then
          for i = 0 to w - 1 do
            Mat.set j 0 i (-.diff.(i) /. dist)
          done;
        (err, [ (var, j) ])
      end)

let component_limit ~name ~var ~index ~max_abs ~sigma =
  Factor.native ~name ~vars:[ var ] ~sigmas:[| sigma |] ~error_dim:1 (fun lookup ->
      let x = as_vector "component_limit" lookup var in
      let v = x.(index) in
      let excess = Float.abs v -. max_abs in
      if excess <= 0.0 then ([| 0.0 |], [ (var, Mat.create 1 (Vec.dim x)) ])
      else begin
        let j = Mat.create 1 (Vec.dim x) in
        Mat.set j 0 index (if v >= 0.0 then 1.0 else -1.0);
        ([| excess |], [ (var, j) ])
      end)

let speed_limit ~name ~var ~d ~vmax ~sigma =
  Factor.native ~name ~vars:[ var ] ~sigmas:[| sigma |] ~error_dim:1 (fun lookup ->
      let x = as_vector "speed_limit" lookup var in
      let v = Vec.slice x ~pos:d ~len:d in
      let speed = Vec.norm v in
      if speed <= vmax || speed < 1e-9 then ([| 0.0 |], [ (var, Mat.create 1 (Vec.dim x)) ])
      else begin
        let j = Mat.create 1 (Vec.dim x) in
        for i = 0 to d - 1 do
          Mat.set j 0 (d + i) (v.(i) /. speed)
        done;
        ([| speed -. vmax |], [ (var, j) ])
      end)

let dynamics ~name ~x_prev ~u ~x_next ~a_mat ~b_mat ~sigma =
  let n, na = Mat.dims a_mat in
  let nb, _m = Mat.dims b_mat in
  if n <> na || n <> nb then invalid_arg "dynamics: A must be square and B row-compatible";
  Factor.native ~name ~vars:[ x_prev; u; x_next ] ~sigmas:(Array.make n sigma) ~error_dim:n
    (fun lookup ->
      let xp = as_vector "dynamics" lookup x_prev in
      let uu = as_vector "dynamics" lookup u in
      let xn = as_vector "dynamics" lookup x_next in
      let predicted = Vec.add (Mat.mul_vec a_mat xp) (Mat.mul_vec b_mat uu) in
      let err = Vec.sub xn predicted in
      (err, [ (x_prev, Mat.neg a_mat); (u, Mat.neg b_mat); (x_next, Mat.identity n) ]))

let state_cost ~name ~var ~target ~sigmas =
  let n = Vec.dim target in
  Factor.native ~name ~vars:[ var ] ~sigmas ~error_dim:n (fun lookup ->
      let x = as_vector "state_cost" lookup var in
      (Vec.sub x target, [ (var, Mat.identity n) ]))

let input_cost ~name ~var ~sigmas =
  let n = Vec.dim sigmas in
  Factor.native ~name ~vars:[ var ] ~sigmas ~error_dim:n (fun lookup ->
      let u = as_vector "input_cost" lookup var in
      (Vec.copy u, [ (var, Mat.identity n) ]))

let goal ~name ~var ~target ~sigma =
  state_cost ~name ~var ~target ~sigmas:(Array.make (Vec.dim target) sigma)

let double_integrator ~d ~dt =
  let a = transition_matrix ~dt ~d in
  let b = Mat.create (2 * d) d in
  for i = 0 to d - 1 do
    Mat.set b i i (0.5 *. dt *. dt);
    Mat.set b (d + i) i dt
  done;
  (a, b)

let unicycle_linearized ~v0 ~theta0 ~dt =
  (* State [x; y; theta; v; omega], input [a; alpha]; linearized about
     the nominal (v0, theta0). *)
  let a = Mat.identity 5 in
  Mat.set a 0 2 (-.v0 *. sin theta0 *. dt);
  Mat.set a 0 3 (cos theta0 *. dt);
  Mat.set a 1 2 (v0 *. cos theta0 *. dt);
  Mat.set a 1 3 (sin theta0 *. dt);
  Mat.set a 2 4 dt;
  let b = Mat.create 5 2 in
  Mat.set b 3 0 dt;
  Mat.set b 4 1 dt;
  (a, b)
