open Orianna_isa

type occupancy = {
  peak_words : int;
  peak_cycle : int;
  average_words : float;
  total_words_produced : int;
}

(* Live interval per register: [finish(producer), max finish(consumer)),
   extended to the makespan for program outputs. *)
let live_intervals (p : Program.t) (r : Schedule.result) =
  let n = Array.length p.Program.instrs in
  let last_use = Array.make n (-1) in
  Array.iter
    (fun (ins : Instr.t) ->
      Array.iter
        (fun s -> last_use.(s) <- max last_use.(s) r.Schedule.finishes.(ins.Instr.id))
        ins.Instr.srcs)
    p.Program.instrs;
  List.iter (fun (_, reg) -> last_use.(reg) <- max last_use.(reg) r.Schedule.cycles) p.Program.outputs;
  Array.to_list p.Program.instrs
  |> List.filter_map (fun (ins : Instr.t) ->
         let id = ins.Instr.id in
         if last_use.(id) < 0 then None (* dead value: never read *)
         else Some (r.Schedule.finishes.(id), last_use.(id), ins.Instr.rows * ins.Instr.cols))

(* Event sweep over (time, delta-words). *)
let sweep intervals =
  let events =
    List.concat_map (fun (s, f, w) -> [ (s, w); (f, -w) ]) intervals
    |> List.sort (fun (ta, da) (tb, db) -> compare (ta, da) (tb, db))
  in
  let live = ref 0 in
  let peak = ref 0 and peak_cycle = ref 0 in
  let weighted = ref 0.0 in
  let last_t = ref 0 in
  List.iter
    (fun (t, d) ->
      weighted := !weighted +. (float_of_int !live *. float_of_int (t - !last_t));
      last_t := t;
      live := !live + d;
      if !live > !peak then begin
        peak := !live;
        peak_cycle := t
      end)
    events;
  (!peak, !peak_cycle, !weighted)

let analyze (p : Program.t) (r : Schedule.result) =
  let intervals = live_intervals p r in
  let peak, peak_cycle, weighted = sweep intervals in
  let total = List.fold_left (fun acc (_, _, w) -> acc + w) 0 intervals in
  {
    peak_words = peak;
    peak_cycle;
    average_words = (if r.Schedule.cycles = 0 then 0.0 else weighted /. float_of_int r.Schedule.cycles);
    total_words_produced = total;
  }

let words_per_bram = 512

let capacity_words accel =
  let res = Orianna_hw.Accel.resources accel in
  res.Orianna_hw.Resource.bram * words_per_bram

let fits accel p r = (analyze p r).peak_words <= capacity_words accel

let spill_words ~capacity (p : Program.t) (r : Schedule.result) =
  let intervals = live_intervals p r in
  let events =
    List.concat_map (fun (s, f, w) -> [ (s, w); (f, -w) ]) intervals
    |> List.sort (fun (ta, da) (tb, db) -> compare (ta, da) (tb, db))
  in
  let live = ref 0 in
  let spilled = ref 0 in
  let last_t = ref 0 in
  List.iter
    (fun (t, d) ->
      (* Integrate excess words over the elapsed interval. *)
      let excess = max 0 (!live - capacity) in
      spilled := !spilled + (excess * (t - !last_t));
      last_t := t;
      live := !live + d)
    events;
  !spilled

let pp ppf o =
  Format.fprintf ppf "peak %d words at cycle %d, average %.1f, produced %d" o.peak_words
    o.peak_cycle o.average_words o.total_words_produced
