lib/sim/schedule.ml: Accel Array Format Fun Hashtbl Instr List Option Orianna_hw Orianna_isa Orianna_util Program Unit_model
