lib/sim/trace.ml: Array Buffer Char Float Instr List Orianna_hw Orianna_isa Printf Program Schedule Unit_model
