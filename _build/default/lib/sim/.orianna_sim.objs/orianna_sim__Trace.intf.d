lib/sim/trace.mli: Orianna_isa Program Schedule
