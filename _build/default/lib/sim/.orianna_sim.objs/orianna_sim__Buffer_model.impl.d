lib/sim/buffer_model.ml: Array Format Instr List Orianna_hw Orianna_isa Program Schedule
