lib/sim/buffer_model.mli: Format Orianna_hw Orianna_isa Program Schedule
