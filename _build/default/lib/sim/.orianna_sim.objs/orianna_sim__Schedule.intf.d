lib/sim/schedule.mli: Accel Format Instr Orianna_hw Orianna_isa Program Unit_model
