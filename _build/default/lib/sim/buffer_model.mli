(** On-chip buffer occupancy analysis.

    The accelerator keeps intermediate matrices in an on-chip buffer
    (Fig. 12's "error and derivative terms are stored in an on-chip
    buffer").  A register is live from the cycle its producer finishes
    until its last consumer finishes; program outputs stay live to the
    end.  Sweeping the schedule gives the peak working set, which must
    fit the BRAM the design instantiates — the check this module
    implements, plus the spill traffic a too-small buffer would
    incur. *)

open Orianna_isa

type occupancy = {
  peak_words : int;  (** maximum simultaneously-live words *)
  peak_cycle : int;  (** when the peak occurs *)
  average_words : float;  (** time-averaged occupancy *)
  total_words_produced : int;
}

val analyze : Program.t -> Schedule.result -> occupancy

val words_per_bram : int
(** Capacity of one BRAM36 in 64-bit words (512). *)

val capacity_words : Orianna_hw.Accel.t -> int
(** Buffer capacity of a design: its BRAM budget in words. *)

val fits : Orianna_hw.Accel.t -> Program.t -> Schedule.result -> bool
(** Peak working set within the design's buffer capacity. *)

val spill_words : capacity:int -> Program.t -> Schedule.result -> int
(** Cycle-integrated word-overflow above [capacity] — proportional to
    the DRAM traffic a smaller buffer would cause. 0 when it fits. *)

val pp : Format.formatter -> occupancy -> unit
