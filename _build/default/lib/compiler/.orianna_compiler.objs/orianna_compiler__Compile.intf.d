lib/compiler/compile.mli: Graph Ordering Orianna_fg Orianna_isa Program
