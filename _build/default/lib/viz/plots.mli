(** Ready-made plots: the Fig. 9 trajectory comparison and a schedule
    Gantt chart. *)

open Orianna_lie
open Orianna_isa

val trajectory_svg :
  ?width:int ->
  ?height:int ->
  truth:Pose3.t array ->
  initial:Pose3.t array ->
  estimate:Pose3.t array ->
  unit ->
  string
(** XY projection of the three trajectories: ground truth dashed gray,
    initial red, estimate blue — the layout of Figs. 9a/9b. *)

val gantt_svg :
  ?width:int -> ?height:int -> Program.t -> Orianna_sim.Schedule.result -> string
(** One horizontal lane per unit class, each instruction a colored box
    from start to finish cycle (colors by phase). *)
