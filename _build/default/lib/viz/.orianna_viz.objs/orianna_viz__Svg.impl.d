lib/viz/svg.ml: Float List Printf String
