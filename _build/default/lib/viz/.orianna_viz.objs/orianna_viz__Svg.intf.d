lib/viz/svg.mli:
