lib/viz/plots.mli: Orianna_isa Orianna_lie Orianna_sim Pose3 Program
