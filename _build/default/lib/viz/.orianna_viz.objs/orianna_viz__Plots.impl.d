lib/viz/plots.ml: Array Float Instr List Orianna_hw Orianna_isa Orianna_lie Orianna_sim Pose3 Printf Program Svg Unit_model
