type t = { width : int; height : int; mutable rev_body : string list }

let create ~width ~height =
  {
    width;
    height;
    rev_body =
      [ Printf.sprintf "<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"white\"/>" width height ];
  }

let push t s = t.rev_body <- s :: t.rev_body

let polyline t ?(width = 1.5) ~color points =
  let pts =
    String.concat " " (List.map (fun (x, y) -> Printf.sprintf "%.2f,%.2f" x y) points)
  in
  push t
    (Printf.sprintf "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"%.2f\"/>"
       pts color width)

let circle t ~color ~cx ~cy ~r =
  push t (Printf.sprintf "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.2f\" fill=\"%s\"/>" cx cy r color)

let rect ?stroke t ~color ~x ~y ~w ~h =
  let stroke_attr =
    match stroke with None -> "" | Some s -> Printf.sprintf " stroke=\"%s\" stroke-width=\"0.5\"" s
  in
  push t
    (Printf.sprintf "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"%s\"%s/>" x y
       w h color stroke_attr)

let text t ?(size = 12) ?(color = "black") ~x ~y s =
  push t
    (Printf.sprintf "<text x=\"%.2f\" y=\"%.2f\" font-size=\"%d\" fill=\"%s\" font-family=\"monospace\">%s</text>"
       x y size color s)

let line ?(width = 1.0) t ~color ~x1 ~y1 ~x2 ~y2 =
  push t
    (Printf.sprintf
       "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" stroke=\"%s\" stroke-width=\"%.2f\"/>"
       x1 y1 x2 y2 color width)

let render t =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n%s\n</svg>\n"
    t.width t.height t.width t.height
    (String.concat "\n" (List.rev t.rev_body))

type mapping = { scale : float; x0 : float; y0 : float; px : float; py : float; flip_h : float }

let fit ~width ~height ~margin points =
  if points = [] then invalid_arg "Svg.fit: no points";
  let xs = List.map fst points and ys = List.map snd points in
  let min_x = List.fold_left Float.min (List.hd xs) xs in
  let max_x = List.fold_left Float.max (List.hd xs) xs in
  let min_y = List.fold_left Float.min (List.hd ys) ys in
  let max_y = List.fold_left Float.max (List.hd ys) ys in
  let span_x = Float.max 1e-9 (max_x -. min_x) in
  let span_y = Float.max 1e-9 (max_y -. min_y) in
  let avail_x = float_of_int width -. (2.0 *. margin) in
  let avail_y = float_of_int height -. (2.0 *. margin) in
  let scale = Float.min (avail_x /. span_x) (avail_y /. span_y) in
  (* Center the drawing. *)
  let px = margin +. ((avail_x -. (span_x *. scale)) /. 2.0) in
  let py = margin +. ((avail_y -. (span_y *. scale)) /. 2.0) in
  { scale; x0 = min_x; y0 = min_y; px; py; flip_h = span_y *. scale }

let apply m (x, y) =
  (m.px +. ((x -. m.x0) *. m.scale), m.py +. (m.flip_h -. ((y -. m.y0) *. m.scale)))
