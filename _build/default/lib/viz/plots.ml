open Orianna_lie
open Orianna_isa
open Orianna_hw
module Schedule = Orianna_sim.Schedule

let xy poses =
  Array.to_list (Array.map (fun p -> let t = Pose3.translation p in (t.(0), t.(1))) poses)

let trajectory_svg ?(width = 640) ?(height = 640) ~truth ~initial ~estimate () =
  let svg = Svg.create ~width ~height in
  let all = xy truth @ xy initial @ xy estimate in
  let m = Svg.fit ~width ~height ~margin:30.0 all in
  let plot color ?(w = 1.5) pts = Svg.polyline svg ~width:w ~color (List.map (Svg.apply m) pts) in
  plot "#bbbbbb" ~w:1.0 (xy truth);
  plot "#cc3333" (xy initial);
  plot "#3355cc" (xy estimate);
  Svg.text svg ~x:12.0 ~y:18.0 ~color:"#888888" "truth";
  Svg.text svg ~x:70.0 ~y:18.0 ~color:"#cc3333" "initial";
  Svg.text svg ~x:140.0 ~y:18.0 ~color:"#3355cc" "optimized";
  Svg.render svg

let phase_color = function
  | Instr.Construct -> "#7fa8d9"
  | Instr.Decompose -> "#e8925a"
  | Instr.Backsub -> "#7fc97f"

let gantt_svg ?(width = 900) ?(height = 260) (p : Program.t) (r : Schedule.result) =
  let svg = Svg.create ~width ~height in
  let classes = Unit_model.all_classes in
  let lanes = List.length classes in
  let label_w = 70.0 in
  let lane_h = (float_of_int height -. 30.0) /. float_of_int lanes in
  let span = Float.max 1.0 (float_of_int r.Schedule.cycles) in
  let x_of c = label_w +. (float_of_int c /. span *. (float_of_int width -. label_w -. 10.0)) in
  List.iteri
    (fun i cls ->
      let y = 10.0 +. (float_of_int i *. lane_h) in
      Svg.text svg ~x:4.0 ~y:(y +. (lane_h /. 2.0)) ~size:11 (Unit_model.class_name cls);
      Svg.line svg ~color:"#eeeeee" ~x1:label_w ~y1:(y +. lane_h) ~x2:(float_of_int width -. 10.0)
        ~y2:(y +. lane_h))
    classes;
  Array.iter
    (fun (ins : Instr.t) ->
      let cls = Unit_model.class_of_op ins.Instr.op in
      let lane =
        let rec idx k = function
          | [] -> 0
          | c :: rest -> if c = cls then k else idx (k + 1) rest
        in
        idx 0 classes
      in
      let y = 12.0 +. (float_of_int lane *. lane_h) in
      let s = r.Schedule.starts.(ins.Instr.id) and f = r.Schedule.finishes.(ins.Instr.id) in
      let x = x_of s in
      let w = Float.max 0.8 (x_of f -. x) in
      Svg.rect ~stroke:"#666666" svg ~color:(phase_color ins.Instr.phase) ~x ~y ~w
        ~h:(lane_h -. 6.0))
    p.Program.instrs;
  Svg.text svg ~x:label_w ~y:(float_of_int height -. 6.0) ~size:11
    (Printf.sprintf "0 .. %d cycles" r.Schedule.cycles);
  Svg.render svg
