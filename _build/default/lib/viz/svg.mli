(** A minimal SVG writer — enough to plot trajectories and schedules
    without external dependencies. *)

type t

val create : width:int -> height:int -> t
(** Canvas in pixels; a white background is emitted. *)

val polyline : t -> ?width:float -> color:string -> (float * float) list -> unit
(** Points in pixel coordinates. *)

val circle : t -> color:string -> cx:float -> cy:float -> r:float -> unit

val rect : ?stroke:string -> t -> color:string -> x:float -> y:float -> w:float -> h:float -> unit

val text : t -> ?size:int -> ?color:string -> x:float -> y:float -> string -> unit

val line : ?width:float -> t -> color:string -> x1:float -> y1:float -> x2:float -> y2:float -> unit

val render : t -> string
(** The complete SVG document. *)

type mapping

val fit : width:int -> height:int -> margin:float -> (float * float) list -> mapping
(** Affine data-to-pixel mapping covering the given points (aspect
    preserved, y flipped so data-up is screen-up).  Raises
    [Invalid_argument] on an empty point list. *)

val apply : mapping -> float * float -> float * float
