open Orianna_linalg
open Orianna_fg
open Orianna_util

let noise_vec rng ~sigma n = Array.init n (fun _ -> Rng.gaussian_sigma rng ~sigma)

let noise_pose_vec rng ~rot_sigma ~trans_sigma ~rot_dim ~trans_dim =
  Array.init (rot_dim + trans_dim) (fun k ->
      if k < rot_dim then Rng.gaussian_sigma rng ~sigma:rot_sigma
      else Rng.gaussian_sigma rng ~sigma:trans_sigma)

let lerp_states ~start ~goal ~steps ~dt =
  let d = Vec.dim start in
  if Vec.dim goal <> d then invalid_arg "Scenario.lerp_states: dimension mismatch";
  let total_time = float_of_int steps *. dt in
  let rate = Vec.scale (1.0 /. total_time) (Vec.sub goal start) in
  Array.init (steps + 1) (fun k ->
      let alpha = float_of_int k /. float_of_int steps in
      let p = Vec.add start (Vec.scale alpha (Vec.sub goal start)) in
      Vec.concat [ p; rate ])

let min_clearance ~states ~obstacles =
  let clearance state (o : Orianna_factors.Motion_factors.obstacle) =
    let w = Vec.dim o.center in
    let p = Vec.slice state ~pos:0 ~len:w in
    Vec.dist p o.center -. o.radius
  in
  Array.fold_left
    (fun acc s -> List.fold_left (fun acc o -> Float.min acc (clearance s o)) acc obstacles)
    infinity states

let vector_value g name =
  match Graph.value g name with
  | Var.Vector v -> v
  | Var.Pose2 _ | Var.Pose3 _ | Var.Se3 _ ->
      invalid_arg ("Scenario.vector_value: " ^ name ^ " is not a vector")

let solve path g =
  match path with
  | `Software ->
      let params = { Optimizer.default_params with max_iterations = 25 } in
      ignore (Optimizer.optimize ~params g)
  | `Compiled -> ignore (Orianna_compiler.Compile.iterate ~max_iterations:25 g)
