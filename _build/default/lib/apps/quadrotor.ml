open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_factors
open Orianna_util

let window = 8
let landmark_count = 6
let horizon = 12
let dt = 0.2

let pose_name i = Printf.sprintf "x%d" i
let lm_name i = Printf.sprintf "l%d" i
let state_name k = Printf.sprintf "s%d" k
let ctrl_name k = Printf.sprintf "e%d" k
let input_name k = Printf.sprintf "u%d" k

(* Ground truth: a climbing helix, camera looking forward (+z in the
   body frame pointing along the motion). *)
let truth_poses () =
  Array.init window (fun i ->
      let t = float_of_int i *. 0.3 in
      let pos = [| 2.0 *. cos t; 2.0 *. sin t; 0.5 +. (0.2 *. t) |] in
      (* Yaw following the tangent, mild roll. *)
      let yaw = t +. (Float.pi /. 2.0) in
      Pose3.of_phi_t [| 0.02 *. sin t; 0.02 *. cos t; yaw |] pos)

(* Landmarks ahead of the helix, a few meters out. *)
let truth_landmarks () =
  Array.init landmark_count (fun i ->
      let a = 2.0 *. Float.pi *. float_of_int i /. float_of_int landmark_count in
      [| 6.0 *. cos a; 6.0 *. sin a; 3.0 +. (0.5 *. float_of_int i) |])

type loc_scene = { graph : Graph.t; truth : Pose3.t array }

let localization_scene rng =
  let truth = truth_poses () in
  let landmarks = truth_landmarks () in
  let g = Graph.create () in
  Array.iteri
    (fun i p ->
      let n = Scenario.noise_pose_vec rng ~rot_sigma:0.02 ~trans_sigma:0.06 ~rot_dim:3 ~trans_dim:3 in
      Graph.add_variable g (pose_name i) (Var.Pose3 (Pose3.retract p n)))
    truth;
  Array.iteri
    (fun i l ->
      Graph.add_variable g (lm_name i) (Var.Vector (Vec.add l (Scenario.noise_vec rng ~sigma:0.15 3))))
    landmarks;
  Graph.add_factor g
    (Pose_factors.prior3 ~name:"PriorFactor" ~var:(pose_name 0) ~z:truth.(0) ~sigma:0.01);
  (* IMU preintegration between consecutive keyframes. *)
  for i = 0 to window - 2 do
    let rel = Pose3.ominus truth.(i + 1) truth.(i) in
    let z =
      Pose3.retract rel
        (Scenario.noise_pose_vec rng ~rot_sigma:0.004 ~trans_sigma:0.01 ~rot_dim:3 ~trans_dim:3)
    in
    Graph.add_factor g
      (Pose_factors.between3 ~name:(Printf.sprintf "IMUFactor%d" i) ~a:(pose_name i)
         ~b:(pose_name (i + 1)) ~z ~sigma:0.01)
  done;
  (* Camera observations of landmarks with positive depth. *)
  let k = Vision_factors.default_intrinsics in
  Array.iteri
    (fun pi p ->
      Array.iteri
        (fun li l ->
          let p_cam =
            Mat.mul_vec (Mat.transpose (Pose3.rotation p)) (Vec.sub l (Pose3.translation p))
          in
          if p_cam.(2) > 0.5 then begin
            let z = Vec.add (Vision_factors.project k p_cam) (Scenario.noise_vec rng ~sigma:1.0 2) in
            Graph.add_factor g
              (Vision_factors.camera
                 ~name:(Printf.sprintf "CameraFactor%d-%d" pi li)
                 ~pose:(pose_name pi) ~landmark:(lm_name li) ~z ~sigma:1.0 ())
          end)
        landmarks)
    truth;
  { graph = g; truth }

let localization rng = (localization_scene rng).graph

(* ---------- planning: 12-dimensional flight corridor ---------- *)

let obstacles =
  [
    { Motion_factors.center = [| 2.0; 1.5; 1.2 |]; radius = 0.6 };
    { Motion_factors.center = [| 4.0; 3.0; 1.6 |]; radius = 0.7 };
  ]

(* Planning "position" block: [x y z yaw_x yaw_y yaw_z] (pose-like),
   velocity block: the 6 rates. *)
let plan_start = Vec.create 6
let plan_goal = [| 6.0; 4.5; 2.0; 0.0; 0.0; 0.6 |]
let v_max = 3.0

type plan_scene = { pgraph : Graph.t }

let planning_scene rng =
  let g = Graph.create () in
  let states = Scenario.lerp_states ~start:plan_start ~goal:plan_goal ~steps:horizon ~dt in
  Array.iteri
    (fun k s ->
      let s = Vec.add s (Scenario.noise_vec rng ~sigma:0.02 12) in
      Graph.add_variable g (state_name k) (Var.Vector s))
    states;
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"start" ~var:(state_name 0) ~target:states.(0)
       ~sigmas:(Array.make 12 0.01));
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"goal" ~var:(state_name horizon)
       ~target:(Vec.concat [ plan_goal; Vec.create 6 ])
       ~sigmas:(Array.append (Array.make 6 0.05) (Array.make 6 0.5)));
  for k = 0 to horizon - 1 do
    Graph.add_factor g
      (Motion_factors.smooth ~name:(Printf.sprintf "KinematicsFactor%d" k) ~a:(state_name k)
         ~b:(state_name (k + 1)) ~dt ~d:6 ~sigma:0.1)
  done;
  for k = 1 to horizon - 1 do
    Graph.add_factor g
      (Motion_factors.speed_limit ~name:(Printf.sprintf "SpeedLimit%d" k) ~var:(state_name k) ~d:6
         ~vmax:v_max ~sigma:0.05)
  done;
  List.iteri
    (fun oi obstacle ->
      for k = 1 to horizon - 1 do
        Graph.add_factor g
          (Motion_factors.collision_free
             ~name:(Printf.sprintf "CollisionFactor%d-%d" oi k)
             ~var:(state_name k) ~obstacle ~safety:0.4 ~sigma:0.03)
      done)
    obstacles;
  { pgraph = g }

let planning rng = (planning_scene rng).pgraph

(* ---------- control: 12-state, 5-input MPC step ---------- *)

let ctrl_horizon = 14

(* Input allocation: [thrust; tau_x; tau_y; tau_z; aux] onto the six
   accelerations of the double-integrator model. *)
let allocation =
  Mat.of_rows
    [|
      [| 0.8; 0.0; 0.0; 0.0; 0.3 |];
      [| 0.0; 0.0; 0.0; 0.0; 0.8 |];
      [| 1.0; 0.0; 0.0; 0.0; 0.0 |];
      [| 0.0; 1.0; 0.0; 0.0; 0.0 |];
      [| 0.0; 0.0; 1.0; 0.0; 0.0 |];
      [| 0.0; 0.0; 0.0; 1.0; 0.0 |];
    |]

let control_ab ~dt =
  let a, b6 = Motion_factors.double_integrator ~d:6 ~dt in
  (* b6 maps 6 accelerations; compose with the 6x5 allocation. *)
  (a, Mat.mul b6 allocation)

type ctrl_scene = { cgraph : Graph.t }

let control_scene rng =
  let g = Graph.create () in
  let a_mat, b_mat = control_ab ~dt:0.1 in
  let e0 =
    Vec.add
      [| 0.5; -0.4; 0.3; 0.05; -0.05; 0.1; 0.2; -0.2; 0.1; 0.0; 0.0; 0.05 |]
      (Scenario.noise_vec rng ~sigma:0.05 12)
  in
  for k = 0 to ctrl_horizon do
    Graph.add_variable g (ctrl_name k) (Var.Vector (Vec.create 12))
  done;
  for k = 0 to ctrl_horizon - 1 do
    Graph.add_variable g (input_name k) (Var.Vector (Vec.create 5))
  done;
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"current" ~var:(ctrl_name 0) ~target:e0
       ~sigmas:(Array.make 12 0.001));
  for k = 0 to ctrl_horizon - 1 do
    Graph.add_factor g
      (Motion_factors.dynamics ~name:(Printf.sprintf "DynamicsFactor%d" k) ~x_prev:(ctrl_name k)
         ~u:(input_name k) ~x_next:(ctrl_name (k + 1)) ~a_mat ~b_mat ~sigma:0.01);
    Graph.add_factor g
      (Motion_factors.speed_limit ~name:(Printf.sprintf "KinematicsFactor%d" k)
         ~var:(ctrl_name (k + 1)) ~d:6 ~vmax:4.0 ~sigma:0.1);
    Graph.add_factor g
      (Motion_factors.state_cost ~name:(Printf.sprintf "StateCost%d" k) ~var:(ctrl_name (k + 1))
         ~target:(Vec.create 12) ~sigmas:(Array.make 12 0.5));
    Graph.add_factor g
      (Motion_factors.input_cost ~name:(Printf.sprintf "InputCost%d" k) ~var:(input_name k)
         ~sigmas:(Array.make 5 4.0))
  done;
  Graph.add_factor g
    (Motion_factors.goal ~name:"terminal" ~var:(ctrl_name ctrl_horizon) ~target:(Vec.create 12)
       ~sigma:0.05);
  { cgraph = g }

let control rng = (control_scene rng).cgraph

let graphs rng =
  [ ("localization", localization rng); ("planning", planning rng); ("control", control rng) ]

(* ---------- mission ---------- *)

let mission ~seed ~solver =
  let rng = Rng.of_int seed in
  let loc = localization_scene (Rng.split rng) in
  Scenario.solve solver loc.graph;
  let errs =
    Array.mapi
      (fun i p ->
        match Graph.value loc.graph (pose_name i) with
        | Var.Pose3 q -> Pose3.distance p q
        | Var.Pose2 _ | Var.Se3 _ | Var.Vector _ -> infinity)
      loc.truth
  in
  let loc_ok = Stats.mean errs < 0.06 in
  let plan = planning_scene (Rng.split rng) in
  Scenario.solve solver plan.pgraph;
  let states = Array.init (horizon + 1) (fun k -> Scenario.vector_value plan.pgraph (state_name k)) in
  let clearance =
    (* Workspace is the first 3 dimensions. *)
    Scenario.min_clearance ~states ~obstacles
  in
  let final = states.(horizon) in
  let goal_dist = Vec.dist (Vec.slice final ~pos:0 ~len:3) (Vec.slice plan_goal ~pos:0 ~len:3) in
  let plan_ok = clearance > 0.0 && goal_dist < 0.5 in
  let ctrl = control_scene (Rng.split rng) in
  Scenario.solve solver ctrl.cgraph;
  let ctrl_ok = Vec.norm (Scenario.vector_value ctrl.cgraph (ctrl_name ctrl_horizon)) < 0.331 in
  loc_ok && plan_ok && ctrl_ok
