(** Shared helpers for building application workloads (Tbl. 4). *)

open Orianna_linalg
open Orianna_fg
open Orianna_util

val noise_vec : Rng.t -> sigma:float -> int -> Vec.t
(** i.i.d. Gaussian vector. *)

val noise_pose_vec : Rng.t -> rot_sigma:float -> trans_sigma:float -> rot_dim:int -> trans_dim:int -> Vec.t
(** Tangent noise with separate orientation / position sigmas. *)

val lerp_states : start:Vec.t -> goal:Vec.t -> steps:int -> dt:float -> Vec.t array
(** Straight-line initialization of [[p; v]] trajectory states:
    positions interpolate from [start] to [goal], velocities are the
    constant rate.  [start]/[goal] are positions (d-dimensional); the
    result has [steps + 1] states of dimension [2 d]. *)

val min_clearance : states:Vec.t array -> obstacles:Orianna_factors.Motion_factors.obstacle list -> float
(** Smallest distance-to-surface over every state and obstacle
    (positive = collision-free), measured in the obstacle's workspace
    dimensions. *)

val vector_value : Graph.t -> string -> Vec.t
(** Fetch a vector variable (raises on other kinds). *)

val solve : [ `Software | `Compiled ] -> Graph.t -> unit
(** Run Gauss-Newton to convergence through the chosen path: the
    software solver or the ORIANNA compiled-program semantics.  Both
    paths must land on the same optimum — Tbl. 5 rests on that. *)
