(** The sphere localization benchmark of Sec. 4.3 (Fig. 9 / Tbl. 1).

    The ground-truth trajectory is a sphere made of stacked rings;
    odometry follows the spiral and loop closures tie vertically
    adjacent rings together.  Sensor noise corrupts the relative-pose
    measurements, and integrating them produces the drifting initial
    trajectory of Fig. 9a.  The benchmark optimizes the pose graph
    twice — once over the unified [<so(3), T(3)>] representation and
    once over SE(3) — and reports absolute trajectory errors and MAC
    counts for both. *)

open Orianna_lie

type config = {
  rings : int;
  poses_per_ring : int;
  radius : float;
  odo_rot_sigma : float;  (** rad, noise on relative-orientation measurements *)
  odo_trans_sigma : float;  (** m, noise on relative-position measurements *)
  init_rot_sigma : float;  (** extra orientation noise integrated into the initial guess *)
  init_trans_sigma : float;  (** extra position noise integrated into the initial guess *)
  seed : int;
}

val default_config : config
(** 8 rings x 24 poses on a 10 m sphere — small enough to optimize in
    seconds, large enough to drift visibly. *)

type dataset = {
  truth : Pose3.t array;
  initial : Pose3.t array;  (** integrated noisy odometry *)
  odometry : (int * int * Pose3.t) array;  (** (i, j, measured j-minus-i) *)
  loops : (int * int * Pose3.t) array;  (** vertical loop closures *)
}

val generate : config -> dataset

type errors = { max : float; mean : float; min : float; std : float }
(** Absolute trajectory error statistics (Tbl. 1 columns). *)

val ate : truth:Pose3.t array -> estimate:Pose3.t array -> errors

type run = {
  errors : errors;
  macs : int;  (** MACs spent in the whole optimization *)
  construct_macs : int;  (** MACs of one linear-equation construction pass *)
  iterations : int;
  converged : bool;
}

type report = {
  initial_errors : errors;
  unified : run;  (** optimized with <so(3), T(3)> *)
  se3 : run;  (** optimized with SE(3) *)
  mac_saving : float;
      (** construction-phase saving: [1 - unified/se3] — elimination
          costs are identical for both representations, so the
          representation's effect shows in the construction pass
          (Sec. 4.3's 52.7 % claim) *)
}

val run : ?config:config -> unit -> report
(** Reproduce Tbl. 1 and the 52.7 % MAC-saving measurement. *)

type robust_report = {
  outliers : int;  (** corrupted loop closures injected *)
  plain : errors;  (** least-squares ATE under corruption *)
  robust : errors;  (** Cauchy-robustified ATE under corruption *)
  clean : errors;  (** reference ATE without corruption *)
}

val run_robust : ?config:config -> ?outlier_fraction:float -> unit -> robust_report
(** Extension experiment: corrupt a fraction of the loop closures
    with wild measurements and optimize with plain least squares vs a
    Cauchy robust loss (see {!Orianna_fg.Robust}). *)

val unified_estimate : dataset -> Pose3.t array
(** Optimize with the unified representation and return the estimated
    trajectory (for plotting / CSV dumps). *)

val trajectory_csv : dataset -> estimate:Pose3.t array -> string
(** CSV of ground truth / initial / estimated positions per pose —
    the raw data behind Fig. 9's trajectory plots. *)

val pp_errors : Format.formatter -> errors -> unit
