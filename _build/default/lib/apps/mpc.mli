(** Closed-loop receding-horizon control.

    The control factor graphs (Fig. 7b) solve one horizon; a real
    controller re-solves every tick from the measured state and applies
    only the first input.  This module closes that loop around a
    {e nonlinear} unicycle plant tracking a constant-velocity
    reference: each tick builds the tracking-error graph, optimizes it
    (through either execution path), applies [u0] to the plant and
    advances the reference — the linearized factor-graph LQR
    stabilizing the true nonlinear system. *)

open Orianna_linalg

type config = {
  steps : int;  (** closed-loop ticks *)
  horizon : int;  (** optimization horizon per tick *)
  dt : float;
  v_ref : float;  (** reference forward speed *)
}

val default_config : config
(** 40 ticks, horizon 8, dt 0.1, 0.8 m/s. *)

type result = {
  initial_error : float;  (** |e| at the first tick *)
  final_error : float;  (** |e| after the last tick *)
  max_input : float;  (** largest applied input magnitude *)
  error_trace : float array;  (** |e| per tick *)
}

val track_unicycle :
  ?config:config -> solver:[ `Software | `Compiled ] -> e0:Vec.t -> unit -> result
(** Run the loop from initial tracking error [e0 = [ex; ey; etheta]].
    Raises [Invalid_argument] unless [e0] has dimension 3. *)

val converges : result -> bool
(** Final error below 5 cm and monotone-ish decay (no blow-up). *)
