lib/apps/auto_vehicle.mli: Graph Orianna_fg Orianna_util Rng
