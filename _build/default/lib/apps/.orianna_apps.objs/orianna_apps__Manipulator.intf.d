lib/apps/manipulator.mli: Graph Orianna_fg Orianna_linalg Orianna_util Rng
