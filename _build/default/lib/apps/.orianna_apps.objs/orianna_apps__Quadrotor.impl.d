lib/apps/quadrotor.ml: Array Float Graph List Mat Motion_factors Orianna_factors Orianna_fg Orianna_lie Orianna_linalg Orianna_util Pose3 Pose_factors Printf Rng Scenario Stats Var Vec Vision_factors
