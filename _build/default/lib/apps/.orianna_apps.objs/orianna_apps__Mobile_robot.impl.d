lib/apps/mobile_robot.ml: Array Graph List Mat Motion_factors Orianna_factors Orianna_fg Orianna_lie Orianna_linalg Orianna_util Pose2 Pose_factors Printf Rng Scenario Var Vec
