lib/apps/quadrotor.mli: Graph Orianna_fg Orianna_util Rng
