lib/apps/mpc.ml: Array Float Graph Mat Motion_factors Orianna_factors Orianna_fg Orianna_linalg Printf Scenario Var Vec
