lib/apps/g2o.mli: Graph Orianna_fg Orianna_lie Pose2 Pose3 Sphere
