lib/apps/datasets.ml: Array Float G2o Graph Hashtbl List Orianna_factors Orianna_fg Orianna_lie Orianna_util Pose2 Pose_factors Printf Rng Sphere Stats Var
