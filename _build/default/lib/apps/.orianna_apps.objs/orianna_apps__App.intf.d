lib/apps/app.mli: Graph Orianna_fg Orianna_util Rng
