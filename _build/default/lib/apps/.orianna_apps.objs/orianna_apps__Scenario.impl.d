lib/apps/scenario.ml: Array Float Graph List Optimizer Orianna_compiler Orianna_factors Orianna_fg Orianna_linalg Orianna_util Rng Var Vec
