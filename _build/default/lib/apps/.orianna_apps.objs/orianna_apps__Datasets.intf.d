lib/apps/datasets.mli: G2o Graph Orianna_fg Orianna_lie Pose2 Sphere
