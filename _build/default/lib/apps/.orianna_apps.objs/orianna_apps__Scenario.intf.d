lib/apps/scenario.mli: Graph Orianna_factors Orianna_fg Orianna_linalg Orianna_util Rng Vec
