lib/apps/manipulator.ml: Array Factor Graph Mat Motion_factors Orianna_factors Orianna_fg Orianna_linalg Orianna_util Printf Rng Scenario Stats Var Vec
