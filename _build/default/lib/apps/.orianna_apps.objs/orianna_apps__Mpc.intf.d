lib/apps/mpc.mli: Orianna_linalg Vec
