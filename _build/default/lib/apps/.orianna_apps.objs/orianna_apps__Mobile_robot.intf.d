lib/apps/mobile_robot.mli: Graph Orianna_fg Orianna_util Rng
