lib/apps/g2o.ml: Array Buffer Fun Graph List Optimizer Orianna_factors Orianna_fg Orianna_lie Pose2 Pose3 Pose_factors Printf Quat Sphere String Var
