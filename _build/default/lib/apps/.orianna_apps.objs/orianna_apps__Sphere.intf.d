lib/apps/sphere.mli: Format Orianna_lie Pose3
