lib/apps/app.ml: Auto_vehicle Graph List Manipulator Mobile_robot Orianna_fg Orianna_util Quadrotor Rng String
