(** The AutoVehicle application (Tbl. 4): a four-wheeled autonomous
    vehicle with car dynamics.

    - localization: 3-dimensional planar poses over a long highway
      arc, LiDAR + GPS factors;
    - planning: 6-dimensional states, collision-free + kinematics
      (motion-model and speed-limit) factors;
    - control: 5-dimensional state [[x; y; theta; v; omega]],
      2-dimensional input, kinematics + dynamics factors. *)

open Orianna_fg
open Orianna_util

val localization : Rng.t -> Graph.t
val planning : Rng.t -> Graph.t
val control : Rng.t -> Graph.t
val graphs : Rng.t -> (string * Graph.t) list
val mission : seed:int -> solver:[ `Software | `Compiled ] -> bool
