(** Registry of the four benchmark applications (Tbl. 4). *)

open Orianna_fg
open Orianna_util

type t = {
  name : string;
  description : string;
  variable_dims : string * string * string;
      (** localization / planning / control variable dimensions, as
          printed in Tbl. 4 *)
  factor_kinds : string * string * string;  (** factor types per algorithm *)
  graphs : Rng.t -> (string * Graph.t) list;
      (** one frame: the localization, planning and control graphs *)
  mission : seed:int -> solver:[ `Software | `Compiled ] -> bool;
}

val mobile_robot : t
val manipulator : t
val auto_vehicle : t
val quadrotor : t

val all : t list

val find : string -> t
(** Case-insensitive lookup; raises [Not_found]. *)

val success_rate : t -> solver:[ `Software | `Compiled ] -> missions:int -> float
(** Fraction of successful missions over seeds 1..missions (Tbl. 5). *)
