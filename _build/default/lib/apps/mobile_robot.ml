open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_factors
open Orianna_util

let window = 10
let horizon = 12
let dt = 0.2

(* Ground truth: an arc of forward motion with a constant turn rate. *)
let truth_poses () =
  let poses = Array.make window Pose2.identity in
  for i = 1 to window - 1 do
    let step = Pose2.create ~theta:0.12 ~t:[| 0.5; 0.0 |] in
    poses.(i) <- Pose2.oplus poses.(i - 1) step
  done;
  poses

let truth_landmarks () =
  [|
    [| 1.0; 2.0 |]; [| 2.5; -1.5 |]; [| 4.0; 2.5 |]; [| 3.0; 1.0 |]; [| 0.5; -1.0 |];
  |]

let pose_name i = Printf.sprintf "x%d" i
let lm_name i = Printf.sprintf "l%d" i

type loc_scene = { graph : Graph.t; truth : Pose2.t array }

let localization_scene rng =
  let truth = truth_poses () in
  let landmarks = truth_landmarks () in
  let g = Graph.create () in
  Array.iteri
    (fun i p ->
      let n = Scenario.noise_pose_vec rng ~rot_sigma:0.05 ~trans_sigma:0.08 ~rot_dim:1 ~trans_dim:2 in
      Graph.add_variable g (pose_name i) (Var.Pose2 (Pose2.retract p n)))
    truth;
  Array.iteri
    (fun i l ->
      Graph.add_variable g (lm_name i) (Var.Vector (Vec.add l (Scenario.noise_vec rng ~sigma:0.1 2))))
    landmarks;
  Graph.add_factor g (Pose_factors.prior2 ~name:"PriorFactor" ~var:(pose_name 0) ~z:truth.(0) ~sigma:0.01);
  (* LiDAR odometry between consecutive poses. *)
  for i = 0 to window - 2 do
    let rel = Pose2.ominus truth.(i + 1) truth.(i) in
    let z = Pose2.retract rel (Scenario.noise_pose_vec rng ~rot_sigma:0.008 ~trans_sigma:0.015 ~rot_dim:1 ~trans_dim:2) in
    Graph.add_factor g
      (Pose_factors.between2 ~name:(Printf.sprintf "LidarOdom%d" i) ~a:(pose_name i)
         ~b:(pose_name (i + 1)) ~z ~sigma:0.015)
  done;
  (* LiDAR landmark observations within range. *)
  Array.iteri
    (fun pi p ->
      Array.iteri
        (fun li l ->
          if Pose2.distance p (Pose2.create ~theta:0.0 ~t:l) < 5.0 then begin
            let body = Mat.mul_vec (Mat.transpose (Pose2.rotation p)) (Vec.sub l (Pose2.translation p)) in
            let z = Vec.add body (Scenario.noise_vec rng ~sigma:0.02 2) in
            Graph.add_factor g
              (Pose_factors.lidar_landmark2
                 ~name:(Printf.sprintf "LidarFactor%d-%d" pi li)
                 ~pose:(pose_name pi) ~landmark:(lm_name li) ~z ~sigma:0.02)
          end)
        landmarks)
    truth;
  (* GPS fixes on every third pose. *)
  Array.iteri
    (fun i p ->
      if i mod 3 = 0 then begin
        let z = Vec.add (Pose2.translation p) (Scenario.noise_vec rng ~sigma:0.05 2) in
        Graph.add_factor g
          (Pose_factors.gps2 ~name:(Printf.sprintf "GPSFactor%d" i) ~var:(pose_name i) ~z ~sigma:0.05)
      end)
    truth;
  { graph = g; truth }

let localization rng = (localization_scene rng).graph

(* ---------- planning ---------- *)

let obstacles =
  [
    { Motion_factors.center = [| 2.0; 1.0 |]; radius = 0.6 };
    { Motion_factors.center = [| 4.0; 2.6 |]; radius = 0.5 };
  ]

let plan_start = [| 0.0; 0.0; 0.0 |] (* x, y, theta *)
let plan_goal = [| 6.0; 3.5; 0.5 |]

let state_name k = Printf.sprintf "s%d" k

type plan_scene = { pgraph : Graph.t; goal : Vec.t }

let planning_scene rng =
  let g = Graph.create () in
  let states = Scenario.lerp_states ~start:plan_start ~goal:plan_goal ~steps:horizon ~dt in
  Array.iteri
    (fun k s ->
      let s = Vec.add s (Scenario.noise_vec rng ~sigma:0.03 (Vec.dim s)) in
      Graph.add_variable g (state_name k) (Var.Vector s))
    states;
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"start" ~var:(state_name 0) ~target:states.(0)
       ~sigmas:(Array.make 6 0.01));
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"goal" ~var:(state_name horizon)
       ~target:(Vec.concat [ plan_goal; Vec.create 3 ])
       ~sigmas:[| 0.05; 0.05; 0.05; 0.5; 0.5; 0.5 |]);
  for k = 0 to horizon - 1 do
    Graph.add_factor g
      (Motion_factors.smooth ~name:(Printf.sprintf "SmoothFactor%d" k) ~a:(state_name k)
         ~b:(state_name (k + 1)) ~dt ~d:3 ~sigma:0.1)
  done;
  List.iteri
    (fun oi obstacle ->
      for k = 1 to horizon - 1 do
        Graph.add_factor g
          (Motion_factors.collision_free
             ~name:(Printf.sprintf "CollisionFactor%d-%d" oi k)
             ~var:(state_name k) ~obstacle ~safety:0.35 ~sigma:0.02)
      done)
    obstacles;
  { pgraph = g; goal = plan_goal }

let planning rng = (planning_scene rng).pgraph

(* ---------- control ---------- *)

(* Tracking-error dynamics of a differential-drive robot linearized
   about a nominal forward speed. *)
let control_ab ~v0 ~dt =
  let a = Mat.identity 3 in
  Mat.set a 0 2 (-.v0 *. dt *. 0.5);
  Mat.set a 1 2 (v0 *. dt);
  let b = Mat.of_rows [| [| dt; 0.0 |]; [| 0.0; 0.0 |]; [| 0.0; dt |] |] in
  (a, b)

let ctrl_horizon = 8
let ctrl_name k = Printf.sprintf "e%d" k
let input_name k = Printf.sprintf "u%d" k

type ctrl_scene = { cgraph : Graph.t }

let control_scene rng =
  let g = Graph.create () in
  let a_mat, b_mat = control_ab ~v0:0.8 ~dt in
  let e0 = Vec.add [| 0.4; -0.3; 0.2 |] (Scenario.noise_vec rng ~sigma:0.05 3) in
  for k = 0 to ctrl_horizon do
    Graph.add_variable g (ctrl_name k) (Var.Vector (Vec.create 3))
  done;
  for k = 0 to ctrl_horizon - 1 do
    Graph.add_variable g (input_name k) (Var.Vector (Vec.create 2))
  done;
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"current" ~var:(ctrl_name 0) ~target:e0
       ~sigmas:(Array.make 3 0.001));
  for k = 0 to ctrl_horizon - 1 do
    Graph.add_factor g
      (Motion_factors.dynamics ~name:(Printf.sprintf "DynamicsFactor%d" k) ~x_prev:(ctrl_name k)
         ~u:(input_name k) ~x_next:(ctrl_name (k + 1)) ~a_mat ~b_mat ~sigma:0.01);
    Graph.add_factor g
      (Motion_factors.state_cost ~name:(Printf.sprintf "StateCost%d" k) ~var:(ctrl_name (k + 1))
         ~target:(Vec.create 3) ~sigmas:(Array.make 3 0.8));
    Graph.add_factor g
      (Motion_factors.input_cost ~name:(Printf.sprintf "InputCost%d" k) ~var:(input_name k)
         ~sigmas:(Array.make 2 2.0))
  done;
  Graph.add_factor g
    (Motion_factors.goal ~name:"terminal" ~var:(ctrl_name ctrl_horizon) ~target:(Vec.create 3)
       ~sigma:0.05);
  { cgraph = g }

let control rng = (control_scene rng).cgraph

let graphs rng =
  [ ("localization", localization rng); ("planning", planning rng); ("control", control rng) ]

(* ---------- mission (Tbl. 5) ---------- *)

let mission ~seed ~solver =
  let rng = Rng.of_int seed in
  (* Localization: average pose error under 10 cm. *)
  let loc = localization_scene (Rng.split rng) in
  Scenario.solve solver loc.graph;
  let ate =
    Array.to_list
      (Array.mapi
         (fun i p ->
           match Graph.value loc.graph (pose_name i) with
           | Var.Pose2 q -> Pose2.distance p q
           | Var.Pose3 _ | Var.Se3 _ | Var.Vector _ -> infinity)
         loc.truth)
  in
  let loc_ok = Orianna_util.Stats.mean (Array.of_list ate) < 0.10 in
  (* Planning: collision-free and reaches the goal region. *)
  let plan = planning_scene (Rng.split rng) in
  Scenario.solve solver plan.pgraph;
  let states = Array.init (horizon + 1) (fun k -> Scenario.vector_value plan.pgraph (state_name k)) in
  let clearance = Scenario.min_clearance ~states ~obstacles in
  let final = states.(horizon) in
  let goal_dist = Vec.dist (Vec.slice final ~pos:0 ~len:2) (Vec.slice plan.goal ~pos:0 ~len:2) in
  let plan_ok = clearance > 0.0 && goal_dist < 0.5 in
  (* Control: tracking error driven to (near) zero. *)
  let ctrl = control_scene (Rng.split rng) in
  Scenario.solve solver ctrl.cgraph;
  let final_err = Vec.norm (Scenario.vector_value ctrl.cgraph (ctrl_name ctrl_horizon)) in
  let ctrl_ok = final_err < 0.15 in
  loc_ok && plan_ok && ctrl_ok
