open Orianna_fg
open Orianna_util

type t = {
  name : string;
  description : string;
  variable_dims : string * string * string;
  factor_kinds : string * string * string;
  graphs : Rng.t -> (string * Graph.t) list;
  mission : seed:int -> solver:[ `Software | `Compiled ] -> bool;
}

let mobile_robot =
  {
    name = "MobileRobot";
    description = "two-wheeled robot on a plane";
    variable_dims = ("3", "6", "3, 2");
    factor_kinds = ("LiDAR, GPS", "Collision-free, Smooth", "Dynamics");
    graphs = Mobile_robot.graphs;
    mission = Mobile_robot.mission;
  }

let manipulator =
  {
    name = "Manipulator";
    description = "two-link robot arm";
    variable_dims = ("2", "4", "2, 2");
    factor_kinds = ("Prior", "Collision-free, Smooth", "Dynamics");
    graphs = Manipulator.graphs;
    mission = Manipulator.mission;
  }

let auto_vehicle =
  {
    name = "AutoVehicle";
    description = "four-wheeled unmanned vehicle";
    variable_dims = ("3", "6", "5, 2");
    factor_kinds = ("LiDAR, GPS", "Collision-free, Kinematics", "Kinematics, Dynamics");
    graphs = Auto_vehicle.graphs;
    mission = Auto_vehicle.mission;
  }

let quadrotor =
  {
    name = "Quadrotor";
    description = "four-rotor micro drone";
    variable_dims = ("6", "12", "12, 5");
    factor_kinds = ("Camera, IMU", "Collision-free, Kinematics", "Kinematics, Dynamics");
    graphs = Quadrotor.graphs;
    mission = Quadrotor.mission;
  }

let all = [ mobile_robot; manipulator; auto_vehicle; quadrotor ]

let find name =
  let target = String.lowercase_ascii name in
  match List.find_opt (fun a -> String.lowercase_ascii a.name = target) all with
  | Some a -> a
  | None -> raise Not_found

let success_rate app ~solver ~missions =
  let ok = ref 0 in
  for seed = 1 to missions do
    if app.mission ~seed ~solver then incr ok
  done;
  float_of_int !ok /. float_of_int missions
