(** The Manipulator application (Tbl. 4): a two-link robot arm.

    - localization (joint-state estimation): 2-dimensional joint
      vectors with Prior factors from noisy encoders;
    - planning: 4-dimensional states [[q1; q2; dq1; dq2]],
      collision-free (via forward kinematics — a {e customized}
      factor in the Sec. 5.1 sense) + smooth factors;
    - control: 2-dimensional joint state, 2-dimensional input,
      dynamics factors. *)

open Orianna_fg
open Orianna_util

val link_lengths : float * float

val forward_kinematics : Orianna_linalg.Vec.t -> Orianna_linalg.Vec.t
(** End-effector position of joint configuration [[q1; q2]]. *)

val localization : Rng.t -> Graph.t
val planning : Rng.t -> Graph.t
val control : Rng.t -> Graph.t
val graphs : Rng.t -> (string * Graph.t) list
val mission : seed:int -> solver:[ `Software | `Compiled ] -> bool
