(** The Quadrotor application (Tbl. 4): a four-rotor micro drone.

    - localization: 6-dimensional 3D poses, Camera + IMU factors
      (visual-inertial odometry over a sliding window with
      landmarks);
    - planning: 12-dimensional states [[p3; ori3; v3; w3]],
      collision-free + kinematics factors;
    - control: 12-dimensional state, 5-dimensional input,
      kinematics + dynamics factors. *)

open Orianna_fg
open Orianna_util

val localization : Rng.t -> Graph.t
val planning : Rng.t -> Graph.t
val control : Rng.t -> Graph.t
val graphs : Rng.t -> (string * Graph.t) list
val mission : seed:int -> solver:[ `Software | `Compiled ] -> bool
