(** The MobileRobot application (Tbl. 4): a two-wheeled robot on a
    plane.

    - localization: 3-dimensional planar poses, LiDAR (landmark and
      odometry) + GPS factors;
    - planning: 6-dimensional states [[x; y; theta; vx; vy; omega]],
      collision-free + smooth factors;
    - control: 3-dimensional tracking-error state, 2-dimensional
      input [[v; omega]], dynamics factors. *)

open Orianna_fg
open Orianna_util

val localization : Rng.t -> Graph.t
val planning : Rng.t -> Graph.t
val control : Rng.t -> Graph.t

val graphs : Rng.t -> (string * Graph.t) list
(** [("localization", g); ("planning", g); ("control", g)]. *)

val mission : seed:int -> solver:[ `Software | `Compiled ] -> bool
(** Full-stack mission (Tbl. 5): localize within tolerance, plan a
    collision-free path that reaches the goal, drive the tracking
    error to zero. *)
