open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_factors
open Orianna_util

let window = 12
let horizon = 14
let dt = 0.25

let pose_name i = Printf.sprintf "x%d" i
let lm_name i = Printf.sprintf "l%d" i
let state_name k = Printf.sprintf "s%d" k
let ctrl_name k = Printf.sprintf "e%d" k
let input_name k = Printf.sprintf "u%d" k

(* Ground truth: a gentle highway curve at ~15 m/s. *)
let truth_poses () =
  let poses = Array.make window Pose2.identity in
  for i = 1 to window - 1 do
    let step = Pose2.create ~theta:0.04 ~t:[| 3.5; 0.0 |] in
    poses.(i) <- Pose2.oplus poses.(i - 1) step
  done;
  poses

let truth_landmarks () =
  Array.init 6 (fun i ->
      let s = float_of_int i in
      [| (s *. 6.0) +. 2.0; (if i mod 2 = 0 then 6.0 else -5.0) +. s |])

type loc_scene = { graph : Graph.t; truth : Pose2.t array }

let localization_scene rng =
  let truth = truth_poses () in
  let landmarks = truth_landmarks () in
  let g = Graph.create () in
  Array.iteri
    (fun i p ->
      let n = Scenario.noise_pose_vec rng ~rot_sigma:0.03 ~trans_sigma:0.25 ~rot_dim:1 ~trans_dim:2 in
      Graph.add_variable g (pose_name i) (Var.Pose2 (Pose2.retract p n)))
    truth;
  Array.iteri
    (fun i l ->
      Graph.add_variable g (lm_name i) (Var.Vector (Vec.add l (Scenario.noise_vec rng ~sigma:0.3 2))))
    landmarks;
  Graph.add_factor g
    (Pose_factors.prior2 ~name:"PriorFactor" ~var:(pose_name 0) ~z:truth.(0) ~sigma:0.02);
  for i = 0 to window - 2 do
    let rel = Pose2.ominus truth.(i + 1) truth.(i) in
    let z =
      Pose2.retract rel
        (Scenario.noise_pose_vec rng ~rot_sigma:0.005 ~trans_sigma:0.05 ~rot_dim:1 ~trans_dim:2)
    in
    Graph.add_factor g
      (Pose_factors.between2 ~name:(Printf.sprintf "LidarOdom%d" i) ~a:(pose_name i)
         ~b:(pose_name (i + 1)) ~z ~sigma:0.05)
  done;
  Array.iteri
    (fun pi p ->
      Array.iteri
        (fun li l ->
          if Vec.dist (Pose2.translation p) l < 25.0 then begin
            let body =
              Mat.mul_vec (Mat.transpose (Pose2.rotation p)) (Vec.sub l (Pose2.translation p))
            in
            let z = Vec.add body (Scenario.noise_vec rng ~sigma:0.08 2) in
            Graph.add_factor g
              (Pose_factors.lidar_landmark2
                 ~name:(Printf.sprintf "LidarFactor%d-%d" pi li)
                 ~pose:(pose_name pi) ~landmark:(lm_name li) ~z ~sigma:0.08)
          end)
        landmarks)
    truth;
  Array.iteri
    (fun i p ->
      if i mod 2 = 0 then begin
        let z = Vec.add (Pose2.translation p) (Scenario.noise_vec rng ~sigma:0.3 2) in
        Graph.add_factor g
          (Pose_factors.gps2 ~name:(Printf.sprintf "GPSFactor%d" i) ~var:(pose_name i) ~z ~sigma:0.3)
      end)
    truth;
  { graph = g; truth }

let localization rng = (localization_scene rng).graph

(* ---------- planning: lane change around obstacles ---------- *)

let obstacles =
  [
    { Motion_factors.center = [| 18.0; 0.5 |]; radius = 2.0 };
    { Motion_factors.center = [| 34.0; -1.0 |]; radius = 1.8 };
  ]

let plan_start = [| 0.0; 0.0; 0.0 |]
let plan_goal = [| 50.0; 2.0; 0.0 |]
let v_max = 20.0

type plan_scene = { pgraph : Graph.t }

let planning_scene rng =
  let g = Graph.create () in
  let states = Scenario.lerp_states ~start:plan_start ~goal:plan_goal ~steps:horizon ~dt in
  Array.iteri
    (fun k s ->
      let s = Vec.add s (Scenario.noise_vec rng ~sigma:0.05 6) in
      Graph.add_variable g (state_name k) (Var.Vector s))
    states;
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"start" ~var:(state_name 0) ~target:states.(0)
       ~sigmas:(Array.make 6 0.01));
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"goal" ~var:(state_name horizon)
       ~target:(Vec.concat [ plan_goal; Vec.create 3 ])
       ~sigmas:[| 0.2; 0.2; 0.1; 1.0; 1.0; 1.0 |]);
  for k = 0 to horizon - 1 do
    (* The vehicle "kinematics" factor is the motion-model transition. *)
    Graph.add_factor g
      (Motion_factors.smooth ~name:(Printf.sprintf "KinematicsFactor%d" k) ~a:(state_name k)
         ~b:(state_name (k + 1)) ~dt ~d:3 ~sigma:0.3)
  done;
  for k = 1 to horizon - 1 do
    Graph.add_factor g
      (Motion_factors.speed_limit ~name:(Printf.sprintf "SpeedLimit%d" k) ~var:(state_name k) ~d:3
         ~vmax:v_max ~sigma:0.1)
  done;
  List.iteri
    (fun oi obstacle ->
      for k = 1 to horizon - 1 do
        Graph.add_factor g
          (Motion_factors.collision_free
             ~name:(Printf.sprintf "CollisionFactor%d-%d" oi k)
             ~var:(state_name k) ~obstacle ~safety:1.4 ~sigma:0.015)
      done)
    obstacles;
  { pgraph = g }

let planning rng = (planning_scene rng).pgraph

(* ---------- control: 5-state car tracking ---------- *)

let ctrl_horizon = 10

type ctrl_scene = { cgraph : Graph.t }

let control_scene rng =
  let g = Graph.create () in
  let a_mat, b_mat = Motion_factors.unicycle_linearized ~v0:15.0 ~theta0:0.0 ~dt:0.1 in
  let e0 =
    Vec.add [| 1.2; -0.8; 0.1; -1.5; 0.05 |] (Scenario.noise_vec rng ~sigma:0.1 5)
  in
  for k = 0 to ctrl_horizon do
    Graph.add_variable g (ctrl_name k) (Var.Vector (Vec.create 5))
  done;
  for k = 0 to ctrl_horizon - 1 do
    Graph.add_variable g (input_name k) (Var.Vector (Vec.create 2))
  done;
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"current" ~var:(ctrl_name 0) ~target:e0
       ~sigmas:(Array.make 5 0.001));
  for k = 0 to ctrl_horizon - 1 do
    Graph.add_factor g
      (Motion_factors.dynamics ~name:(Printf.sprintf "DynamicsFactor%d" k) ~x_prev:(ctrl_name k)
         ~u:(input_name k) ~x_next:(ctrl_name (k + 1)) ~a_mat ~b_mat ~sigma:0.01);
    (* Control-side kinematics: bound the speed-error component. *)
    Graph.add_factor g
      (Motion_factors.component_limit ~name:(Printf.sprintf "KinematicsFactor%d" k)
         ~var:(ctrl_name (k + 1)) ~index:3 ~max_abs:3.0 ~sigma:0.1);
    Graph.add_factor g
      (Motion_factors.state_cost ~name:(Printf.sprintf "StateCost%d" k) ~var:(ctrl_name (k + 1))
         ~target:(Vec.create 5) ~sigmas:(Array.make 5 1.0));
    Graph.add_factor g
      (Motion_factors.input_cost ~name:(Printf.sprintf "InputCost%d" k) ~var:(input_name k)
         ~sigmas:(Array.make 2 2.0))
  done;
  Graph.add_factor g
    (Motion_factors.goal ~name:"terminal" ~var:(ctrl_name ctrl_horizon) ~target:(Vec.create 5)
       ~sigma:0.05);
  { cgraph = g }

let control rng = (control_scene rng).cgraph

let graphs rng =
  [ ("localization", localization rng); ("planning", planning rng); ("control", control rng) ]

(* ---------- mission ---------- *)

let mission ~seed ~solver =
  let rng = Rng.of_int seed in
  let loc = localization_scene (Rng.split rng) in
  Scenario.solve solver loc.graph;
  let errs =
    Array.mapi
      (fun i p ->
        match Graph.value loc.graph (pose_name i) with
        | Var.Pose2 q -> Pose2.distance p q
        | Var.Pose3 _ | Var.Se3 _ | Var.Vector _ -> infinity)
      loc.truth
  in
  let loc_ok = Stats.mean errs < 0.30 in
  let plan = planning_scene (Rng.split rng) in
  Scenario.solve solver plan.pgraph;
  let states = Array.init (horizon + 1) (fun k -> Scenario.vector_value plan.pgraph (state_name k)) in
  let clearance = Scenario.min_clearance ~states ~obstacles in
  let final = states.(horizon) in
  let goal_dist = Vec.dist (Vec.slice final ~pos:0 ~len:2) (Vec.slice plan_goal ~pos:0 ~len:2) in
  let plan_ok = clearance > 0.0 && goal_dist < 2.5 in
  let ctrl = control_scene (Rng.split rng) in
  Scenario.solve solver ctrl.cgraph;
  let ctrl_ok = Vec.norm (Scenario.vector_value ctrl.cgraph (ctrl_name ctrl_horizon)) < 0.8 in
  loc_ok && plan_ok && ctrl_ok
