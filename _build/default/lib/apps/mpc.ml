open Orianna_linalg
open Orianna_fg
open Orianna_factors

type config = { steps : int; horizon : int; dt : float; v_ref : float }

let default_config = { steps = 40; horizon = 8; dt = 0.1; v_ref = 0.8 }

type result = {
  initial_error : float;
  final_error : float;
  max_input : float;
  error_trace : float array;
}

let ctrl_name k = Printf.sprintf "e%d" k
let input_name k = Printf.sprintf "u%d" k

(* Linearized tracking-error model about the reference (heading 0,
   speed v_ref): the same shape the MobileRobot control stack uses. *)
let error_ab ~v0 ~dt =
  let a = Mat.identity 3 in
  Mat.set a 0 2 (-.v0 *. dt *. 0.5);
  Mat.set a 1 2 (v0 *. dt);
  let b = Mat.of_rows [| [| dt; 0.0 |]; [| 0.0; 0.0 |]; [| 0.0; dt |] |] in
  (a, b)

let build_graph cfg e0 =
  let g = Graph.create () in
  let a_mat, b_mat = error_ab ~v0:cfg.v_ref ~dt:cfg.dt in
  for k = 0 to cfg.horizon do
    Graph.add_variable g (ctrl_name k) (Var.Vector (Vec.create 3))
  done;
  for k = 0 to cfg.horizon - 1 do
    Graph.add_variable g (input_name k) (Var.Vector (Vec.create 2))
  done;
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"current" ~var:(ctrl_name 0) ~target:e0
       ~sigmas:(Array.make 3 0.001));
  for k = 0 to cfg.horizon - 1 do
    Graph.add_factor g
      (Motion_factors.dynamics ~name:(Printf.sprintf "dyn%d" k) ~x_prev:(ctrl_name k)
         ~u:(input_name k) ~x_next:(ctrl_name (k + 1)) ~a_mat ~b_mat ~sigma:0.01);
    Graph.add_factor g
      (Motion_factors.state_cost ~name:(Printf.sprintf "cost%d" k) ~var:(ctrl_name (k + 1))
         ~target:(Vec.create 3) ~sigmas:(Array.make 3 0.8));
    Graph.add_factor g
      (Motion_factors.input_cost ~name:(Printf.sprintf "ucost%d" k) ~var:(input_name k)
         ~sigmas:(Array.make 2 2.0))
  done;
  Graph.add_factor g
    (Motion_factors.goal ~name:"terminal" ~var:(ctrl_name cfg.horizon) ~target:(Vec.create 3)
       ~sigma:0.05);
  g

(* Nonlinear unicycle plant, world frame. *)
let step_plant cfg (x, y, theta) (uv, uw) =
  let v = cfg.v_ref +. uv in
  ( x +. (cfg.dt *. v *. cos theta),
    y +. (cfg.dt *. v *. sin theta),
    theta +. (cfg.dt *. uw) )

let track_unicycle ?(config = default_config) ~solver ~e0 () =
  if Vec.dim e0 <> 3 then invalid_arg "Mpc.track_unicycle: e0 must be [ex; ey; etheta]";
  (* Plant starts displaced from the reference by e0. *)
  let plant = ref (e0.(0), e0.(1), e0.(2)) in
  let ref_x = ref 0.0 in
  let traces = Array.make config.steps 0.0 in
  let max_input = ref 0.0 in
  for k = 0 to config.steps - 1 do
    let x, y, theta = !plant in
    let e = [| x -. !ref_x; y; theta |] in
    traces.(k) <- Vec.norm e;
    let g = build_graph config e in
    Scenario.solve solver g;
    let u = Scenario.vector_value g (input_name 0) in
    max_input := Float.max !max_input (Vec.norm u);
    plant := step_plant config !plant (u.(0), u.(1));
    ref_x := !ref_x +. (config.dt *. config.v_ref)
  done;
  {
    initial_error = traces.(0);
    final_error = traces.(config.steps - 1);
    max_input = !max_input;
    error_trace = traces;
  }

let converges r =
  r.final_error < 0.05
  && Array.for_all (fun e -> e < 3.0 *. Float.max r.initial_error 0.1) r.error_trace
