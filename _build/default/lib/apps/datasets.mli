(** Synthetic standard-form datasets beyond the sphere: a
    Manhattan-world 2D pose graph in the style of the classic M3500
    benchmark (grid random walk with revisit loop closures). *)

open Orianna_lie
open Orianna_fg

type t = {
  truth : Pose2.t array;
  initial : Pose2.t array;  (** integrated noisy odometry *)
  odometry : (int * int * Pose2.t) array;
  loops : (int * int * Pose2.t) array;  (** revisit closures *)
}

type config = {
  steps : int;
  grid : float;  (** cell size, meters *)
  odo_rot_sigma : float;
  odo_trans_sigma : float;
  init_rot_sigma : float;
  init_trans_sigma : float;
  seed : int;
}

val default_config : config
(** 300 steps on a 1 m grid. *)

val manhattan : config -> t

val to_graph : t -> Graph.t
(** Pose2 graph with an anchor prior and measurement-matched sigmas. *)

val to_g2o : t -> G2o.t
(** Standard-format export. *)

val ate : truth:Pose2.t array -> estimate:Pose2.t array -> Sphere.errors

val estimate_of : Graph.t -> n:int -> Pose2.t array
(** Read back poses ["x0"..] after optimization. *)
