open Orianna_linalg
open Orianna_fg
open Orianna_factors
open Orianna_util

let link_lengths = (1.0, 0.7)
let window = 8
let horizon = 10
let dt = 0.15

let l1, l2 = link_lengths

let forward_kinematics q =
  if Vec.dim q < 2 then invalid_arg "Manipulator.forward_kinematics: need two joints";
  let c1 = cos q.(0) and s1 = sin q.(0) in
  let c12 = cos (q.(0) +. q.(1)) and s12 = sin (q.(0) +. q.(1)) in
  [| (l1 *. c1) +. (l2 *. c12); (l1 *. s1) +. (l2 *. s12) |]

(* d fk / d q: the 2x2 manipulator Jacobian. *)
let fk_jacobian q =
  let s1 = sin q.(0) and c1 = cos q.(0) in
  let s12 = sin (q.(0) +. q.(1)) and c12 = cos (q.(0) +. q.(1)) in
  Mat.of_rows
    [|
      [| (-.l1 *. s1) -. (l2 *. s12); -.l2 *. s12 |];
      [| (l1 *. c1) +. (l2 *. c12); l2 *. c12 |];
    |]

(* Customized collision factor (Sec. 5.1): hinge on the end-effector's
   distance to a workspace obstacle, differentiated through the
   forward kinematics. *)
let ee_collision ~name ~var ~obstacle ~safety ~sigma =
  let { Motion_factors.center; radius } = obstacle in
  Factor.native ~name ~vars:[ var ] ~sigmas:[| sigma |] ~error_dim:1 (fun lookup ->
      match lookup var with
      | Var.Vector x ->
          let q = Vec.slice x ~pos:0 ~len:2 in
          let ee = forward_kinematics q in
          let diff = Vec.sub ee center in
          let dist = Vec.norm diff in
          let clearance = dist -. radius in
          if clearance >= safety || dist < 1e-9 then
            ([| 0.0 |], [ (var, Mat.create 1 (Vec.dim x)) ])
          else begin
            let jfk = fk_jacobian q in
            let ddist = Vec.scale (1.0 /. dist) diff in
            let grad = Mat.mul_vec (Mat.transpose jfk) ddist in
            let j = Mat.create 1 (Vec.dim x) in
            Mat.set j 0 0 (-.grad.(0));
            Mat.set j 0 1 (-.grad.(1));
            ([| safety -. clearance |], [ (var, j) ])
          end
      | Var.Pose2 _ | Var.Pose3 _ | Var.Se3 _ -> invalid_arg "ee_collision: expects joints")

let joint_name i = Printf.sprintf "q%d" i
let state_name k = Printf.sprintf "s%d" k
let ctrl_name k = Printf.sprintf "e%d" k
let input_name k = Printf.sprintf "u%d" k

(* ---------- localization: encoder denoising over a time window ---------- *)

let truth_joints () =
  Array.init window (fun i ->
      let t = float_of_int i *. 0.1 in
      [| 0.4 +. (0.5 *. sin t); -0.3 +. (0.4 *. cos t) |])

type loc_scene = { graph : Graph.t; truth : Vec.t array }

let localization_scene rng =
  let truth = truth_joints () in
  let g = Graph.create () in
  Array.iteri
    (fun i q ->
      Graph.add_variable g (joint_name i)
        (Var.Vector (Vec.add q (Scenario.noise_vec rng ~sigma:0.2 2))))
    truth;
  (* Encoder priors (the Tbl. 4 "Prior" factors): two redundant,
     noisy encoder readings per step. *)
  Array.iteri
    (fun i q ->
      for e = 0 to 1 do
        let z = Vec.add q (Scenario.noise_vec rng ~sigma:0.055 2) in
        Graph.add_factor g
          (Motion_factors.state_cost
             ~name:(Printf.sprintf "PriorFactor%d-%d" i e)
             ~var:(joint_name i) ~target:z ~sigmas:(Array.make 2 0.055))
      done)
    truth;
  (* Joint motion smoothness between steps ties the window together. *)
  for i = 0 to window - 2 do
    Graph.add_factor g
      (Factor.native
         ~name:(Printf.sprintf "MotionPrior%d" i)
         ~vars:[ joint_name i; joint_name (i + 1) ]
         ~sigmas:(Array.make 2 0.05) ~error_dim:2
         (fun lookup ->
           match (lookup (joint_name i), lookup (joint_name (i + 1))) with
           | Var.Vector a, Var.Vector b ->
               ( Vec.sub b a,
                 [
                   (joint_name i, Mat.neg (Mat.identity 2));
                   (joint_name (i + 1), Mat.identity 2);
                 ] )
           | (Var.Pose2 _ | Var.Pose3 _ | Var.Se3 _ | Var.Vector _), _ ->
               invalid_arg "MotionPrior: joints"))
  done;
  { graph = g; truth }

let localization rng = (localization_scene rng).graph

(* ---------- planning in joint space with workspace obstacle ---------- *)

let obstacle = { Motion_factors.center = [| 1.2; 0.7 |]; radius = 0.25 }
let q_start = [| -0.4; 0.6 |]
let q_goal = [| 1.1; -0.5 |]

type plan_scene = { pgraph : Graph.t }

let planning_scene rng =
  let g = Graph.create () in
  let states = Scenario.lerp_states ~start:q_start ~goal:q_goal ~steps:horizon ~dt in
  Array.iteri
    (fun k s ->
      let s = Vec.add s (Scenario.noise_vec rng ~sigma:0.02 4) in
      Graph.add_variable g (state_name k) (Var.Vector s))
    states;
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"start" ~var:(state_name 0) ~target:states.(0)
       ~sigmas:(Array.make 4 0.01));
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"goal" ~var:(state_name horizon)
       ~target:(Vec.concat [ q_goal; Vec.create 2 ])
       ~sigmas:[| 0.02; 0.02; 0.3; 0.3 |]);
  for k = 0 to horizon - 1 do
    Graph.add_factor g
      (Motion_factors.smooth ~name:(Printf.sprintf "SmoothFactor%d" k) ~a:(state_name k)
         ~b:(state_name (k + 1)) ~dt ~d:2 ~sigma:0.08)
  done;
  for k = 1 to horizon - 1 do
    Graph.add_factor g
      (ee_collision ~name:(Printf.sprintf "CollisionFactor%d" k) ~var:(state_name k) ~obstacle
         ~safety:0.1 ~sigma:0.02)
  done;
  { pgraph = g }

let planning rng = (planning_scene rng).pgraph

(* ---------- control: kinematic joint control ---------- *)

let ctrl_horizon = 8

type ctrl_scene = { cgraph : Graph.t }

let control_scene rng =
  let g = Graph.create () in
  let a_mat = Mat.identity 2 in
  let b_mat = Mat.scale dt (Mat.identity 2) in
  let e0 = Vec.add [| 0.5; -0.4 |] (Scenario.noise_vec rng ~sigma:0.05 2) in
  for k = 0 to ctrl_horizon do
    Graph.add_variable g (ctrl_name k) (Var.Vector (Vec.create 2))
  done;
  for k = 0 to ctrl_horizon - 1 do
    Graph.add_variable g (input_name k) (Var.Vector (Vec.create 2))
  done;
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"current" ~var:(ctrl_name 0) ~target:e0
       ~sigmas:(Array.make 2 0.001));
  for k = 0 to ctrl_horizon - 1 do
    Graph.add_factor g
      (Motion_factors.dynamics ~name:(Printf.sprintf "DynamicsFactor%d" k) ~x_prev:(ctrl_name k)
         ~u:(input_name k) ~x_next:(ctrl_name (k + 1)) ~a_mat ~b_mat ~sigma:0.01);
    Graph.add_factor g
      (Motion_factors.state_cost ~name:(Printf.sprintf "StateCost%d" k) ~var:(ctrl_name (k + 1))
         ~target:(Vec.create 2) ~sigmas:(Array.make 2 0.6));
    Graph.add_factor g
      (Motion_factors.input_cost ~name:(Printf.sprintf "InputCost%d" k) ~var:(input_name k)
         ~sigmas:(Array.make 2 1.5))
  done;
  Graph.add_factor g
    (Motion_factors.goal ~name:"terminal" ~var:(ctrl_name ctrl_horizon) ~target:(Vec.create 2)
       ~sigma:0.05);
  { cgraph = g }

let control rng = (control_scene rng).cgraph

let graphs rng =
  [ ("localization", localization rng); ("planning", planning rng); ("control", control rng) ]

(* ---------- mission ---------- *)

let mission ~seed ~solver =
  let rng = Rng.of_int seed in
  let loc = localization_scene (Rng.split rng) in
  Scenario.solve solver loc.graph;
  let errs =
    Array.mapi (fun i q -> Vec.dist q (Scenario.vector_value loc.graph (joint_name i))) loc.truth
  in
  let loc_ok = Stats.mean errs < 0.0478 in
  let plan = planning_scene (Rng.split rng) in
  Scenario.solve solver plan.pgraph;
  let plan_ok =
    let clear = ref true in
    for k = 0 to horizon do
      let s = Scenario.vector_value plan.pgraph (state_name k) in
      let ee = forward_kinematics (Vec.slice s ~pos:0 ~len:2) in
      if Vec.dist ee obstacle.Motion_factors.center < obstacle.Motion_factors.radius then
        clear := false
    done;
    let final = Scenario.vector_value plan.pgraph (state_name horizon) in
    !clear && Vec.dist (Vec.slice final ~pos:0 ~len:2) q_goal < 0.15
  in
  let ctrl = control_scene (Rng.split rng) in
  Scenario.solve solver ctrl.cgraph;
  let ctrl_ok = Vec.norm (Scenario.vector_value ctrl.cgraph (ctrl_name ctrl_horizon)) < 0.12 in
  loc_ok && plan_ok && ctrl_ok
