(* End-to-end tests of the top-level library: pipeline and experiment
   harness. *)

open Orianna
open Orianna_hw
open Orianna_sim
open Orianna_baselines
module App = Orianna_apps.App

let evaluation = lazy (Pipeline.evaluate App.mobile_robot ~seed:3)

let test_frame_compiles_all_parts () =
  let f = Pipeline.frame App.mobile_robot ~seed:3 in
  Alcotest.(check int) "three algo programs" 3 (List.length f.Pipeline.algo_programs);
  Alcotest.(check bool) "merged stream bigger than any part" true
    (Orianna_isa.Program.length f.Pipeline.program
    > List.fold_left
        (fun acc (_, p) -> max acc (Orianna_isa.Program.length p))
        0 f.Pipeline.algo_programs)

let test_generated_fits_budget () =
  let e = Lazy.force evaluation in
  Alcotest.(check bool) "orianna fits" true (Accel.fits e.Pipeline.accel ~budget:Resource.zc706);
  Alcotest.(check bool) "vanilla fits" true
    (Accel.fits e.Pipeline.vanilla_accel ~budget:Resource.zc706)

let test_generation_improves_over_base () =
  let e = Lazy.force evaluation in
  let base_run =
    Schedule.run ~accel:(Accel.base ()) ~policy:Schedule.Ooo_full e.Pipeline.eframe.Pipeline.program
  in
  Alcotest.(check bool) "generated faster than base" true
    (e.Pipeline.ooo.Schedule.seconds <= base_run.Schedule.seconds)

let test_paper_ordering_of_designs () =
  (* The headline shape: OoO beats IO, Intel, GPU, ARM and
     VANILLA-HLS; STACK is comparable; ORIANNA uses far fewer
     resources than STACK. *)
  let e = Lazy.force evaluation in
  let ooo = e.Pipeline.ooo.Schedule.seconds in
  Alcotest.(check bool) "ooo < io" true (ooo < e.Pipeline.io.Schedule.seconds);
  Alcotest.(check bool) "ooo < intel" true (ooo < e.Pipeline.intel.Cpu_model.seconds);
  Alcotest.(check bool) "ooo < gpu" true (ooo < e.Pipeline.gpu.Gpu_model.seconds);
  Alcotest.(check bool) "ooo < arm" true (ooo < e.Pipeline.arm.Cpu_model.seconds);
  Alcotest.(check bool) "ooo < vanilla" true (ooo < e.Pipeline.vanilla.Schedule.seconds);
  Alcotest.(check bool) "intel < arm" true
    (e.Pipeline.intel.Cpu_model.seconds < e.Pipeline.arm.Cpu_model.seconds);
  Alcotest.(check bool) "gpu < arm" true
    (e.Pipeline.gpu.Gpu_model.seconds < e.Pipeline.arm.Cpu_model.seconds);
  let stack_r = Pipeline.stack_resources e in
  let orianna_r = Accel.resources e.Pipeline.accel in
  Alcotest.(check bool) "stack uses ~2-4x resources" true
    (stack_r.Resource.lut > orianna_r.Resource.lut * 3 / 2);
  (* STACK is at most moderately faster (dedicated, parallel hw). *)
  Alcotest.(check bool) "stack comparable" true (Pipeline.stack_latency e < ooo *. 1.05)

let test_energy_shape () =
  let e = Lazy.force evaluation in
  Alcotest.(check bool) "ooo energy < intel energy" true
    (e.Pipeline.ooo.Schedule.energy_j < e.Pipeline.intel.Cpu_model.energy_j);
  Alcotest.(check bool) "ooo energy < io energy" true
    (e.Pipeline.ooo.Schedule.energy_j < e.Pipeline.io.Schedule.energy_j);
  Alcotest.(check bool) "ooo energy < stack energy" true
    (e.Pipeline.ooo.Schedule.energy_j < Pipeline.stack_energy e)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_experiment_tables_render () =
  (* Cheap experiments render to non-empty tables with sane content. *)
  let t4 = Experiments.table4 () in
  Alcotest.(check bool) "table4 lists quadrotor" true (contains ~sub:"Quadrotor" t4);
  Alcotest.(check bool) "table4 nonempty" true (String.length t4 > 100)

let test_generate_multi_tail () =
  (* Tail-latency generation optimizes the worst frame across seeds. *)
  let programs =
    List.map
      (fun seed -> (Pipeline.frame App.manipulator ~seed).Pipeline.program)
      [ 1; 2; 3 ]
  in
  let r = Pipeline.generate_multi ~objective:`Tail_latency programs in
  Alcotest.(check bool) "fits" true (Accel.fits r.Orianna_hw.Dse.best ~budget:Resource.zc706);
  let worst accel =
    List.fold_left
      (fun acc p -> Float.max acc (Schedule.run ~accel ~policy:Schedule.Ooo_full p).Schedule.seconds)
      0.0 programs
  in
  Alcotest.(check bool) "tail improved over base" true
    (worst r.Orianna_hw.Dse.best <= worst (Accel.base ()));
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Pipeline.generate_multi: no programs") (fun () ->
      ignore (Pipeline.generate_multi ~objective:`Tail_latency []))

let test_table5_small () =
  let t5 = Experiments.table5 ~missions:3 () in
  Alcotest.(check bool) "table5 nonempty" true (String.length t5 > 100)

let () =
  Alcotest.run "orianna"
    [
      ( "pipeline",
        [
          Alcotest.test_case "frame compiles" `Quick test_frame_compiles_all_parts;
          Alcotest.test_case "fits budget" `Slow test_generated_fits_budget;
          Alcotest.test_case "generation improves" `Slow test_generation_improves_over_base;
          Alcotest.test_case "design ordering" `Slow test_paper_ordering_of_designs;
          Alcotest.test_case "energy shape" `Slow test_energy_shape;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table4 renders" `Quick test_experiment_tables_render;
          Alcotest.test_case "generate multi tail" `Slow test_generate_multi_tail;
          Alcotest.test_case "table5 small" `Slow test_table5_small;
        ] );
    ]
