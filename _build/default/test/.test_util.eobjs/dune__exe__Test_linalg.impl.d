test/test_linalg.ml: Alcotest Array Assembly Chol Float List Macs Mat Orianna_linalg Orianna_util Printf QCheck QCheck_alcotest Qr Rng Tri Vec
