test/test_fg.mli:
