test/test_hw.ml: Accel Alcotest Datapath Dse Instr List Orianna_hw Orianna_isa Orianna_linalg Printf Program Resource Unit_model
