test/test_util.ml: Alcotest Array Float Fun Orianna_util Rng Stats String Texttable
