test/test_baselines.ml: Alcotest Cpu_model Gpu_model List Orianna_apps Orianna_baselines Orianna_compiler Orianna_isa Orianna_linalg Orianna_util Printf Rng
