test/test_lie.mli:
