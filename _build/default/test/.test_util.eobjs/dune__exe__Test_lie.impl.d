test/test_lie.ml: Alcotest Array Convert Float List Macs Mat Orianna_lie Orianna_linalg Orianna_util Pose2 Pose3 Printf Quat Rng Se3 So2 So3 Vec
