test/test_factors.mli:
