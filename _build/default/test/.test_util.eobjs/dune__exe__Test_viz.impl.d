test/test_viz.ml: Alcotest Array Float List Orianna_apps Orianna_compiler Orianna_fg Orianna_hw Orianna_isa Orianna_lie Orianna_sim Orianna_util Orianna_viz Plots Printf Rng String Svg
