test/test_orianna.ml: Accel Alcotest Cpu_model Experiments Float Gpu_model Lazy List Orianna Orianna_apps Orianna_baselines Orianna_hw Orianna_isa Orianna_sim Pipeline Resource Schedule String
