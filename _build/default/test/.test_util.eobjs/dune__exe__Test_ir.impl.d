test/test_ir.ml: Alcotest Array Expr Format List Mat Modfg Orianna_ir Orianna_lie Orianna_linalg Orianna_util Pose3 Printf Rng So2 So3 Value Vec
