test/test_orianna.mli:
