open Orianna_util

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.of_int 7 in
  let b = Rng.split a in
  let xa = Rng.int64 a and xb = Rng.int64 b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let test_rng_float_range () =
  let rng = Rng.of_int 1 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_range () =
  let rng = Rng.of_int 2 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (x >= 0 && x < 17)
  done

let test_gaussian_moments () =
  let rng = Rng.of_int 3 in
  let xs = Array.init 20000 (fun _ -> Rng.gaussian rng) in
  Alcotest.(check bool) "mean near 0" true (Float.abs (Stats.mean xs) < 0.05);
  Alcotest.(check bool) "std near 1" true (Float.abs (Stats.stddev xs -. 1.0) < 0.05)

let test_uniform_bounds () =
  let rng = Rng.of_int 4 in
  for _ = 1 to 100 do
    let x = Rng.uniform rng ~lo:(-3.0) ~hi:5.0 in
    Alcotest.(check bool) "in range" true (x >= -3.0 && x < 5.0)
  done

let test_shuffle_permutation () =
  let rng = Rng.of_int 5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "min" 1.0 (Stats.min xs);
  check_float "max" 4.0 (Stats.max xs);
  check_float "sum" 10.0 (Stats.sum xs);
  check_float "median" 2.5 (Stats.median xs);
  check_float "std" (sqrt 1.25) (Stats.stddev xs)

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p50" 30.0 (Stats.percentile xs 50.0);
  check_float "p100" 50.0 (Stats.percentile xs 100.0);
  check_float "p25" 20.0 (Stats.percentile xs 25.0)

let test_stats_rms () =
  check_float "rms of constant" 2.0 (Stats.rms [| 2.0; 2.0; 2.0 |]);
  check_float "rms 3-4" (sqrt 12.5) (Stats.rms [| 3.0; 4.0 |]);
  check_float "rms empty" 0.0 (Stats.rms [||])

let test_stats_empty () =
  check_float "mean empty" 0.0 (Stats.mean [||]);
  Alcotest.check_raises "min empty" (Invalid_argument "Stats.min: empty array") (fun () ->
      ignore (Stats.min [||]))

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 3.0 |] in
  Alcotest.(check int) "count" 2 s.Stats.count;
  check_float "mean" 2.0 s.Stats.mean

let test_table_render () =
  let t = Texttable.create ~title:"T" ~headers:[ "a"; "bb" ] in
  Texttable.add_row t [ "1"; "2" ];
  Texttable.add_row t [ "3" ];
  let s = Texttable.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains cell" true (String.length s > 10)

let test_table_too_wide () =
  let t = Texttable.create ~title:"" ~headers:[ "a" ] in
  Alcotest.check_raises "wide row rejected"
    (Invalid_argument "Texttable.add_row: row wider than header") (fun () ->
      Texttable.add_row t [ "1"; "2" ])

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "rms" `Quick test_stats_rms;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      ( "texttable",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "too wide" `Quick test_table_too_wide;
        ] );
    ]
