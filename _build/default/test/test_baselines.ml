open Orianna_baselines
open Orianna_util
module Compile = Orianna_compiler.Compile
module App = Orianna_apps.App

let program () = Compile.compile_application (App.mobile_robot.App.graphs (Rng.of_int 5))
let dense () = Compile.compile_dense_application (App.mobile_robot.App.graphs (Rng.of_int 5))

let test_cpu_time_positive_and_decomposed () =
  let p = program () in
  let r = Cpu_model.run Cpu_model.intel p in
  Alcotest.(check bool) "positive" true (r.Cpu_model.seconds > 0.0);
  Alcotest.(check (float 1e-15)) "construct + solve = total" r.Cpu_model.seconds
    (r.Cpu_model.construct_seconds +. r.Cpu_model.solve_seconds)

let test_intel_faster_than_arm () =
  let p = program () in
  let intel = Cpu_model.run Cpu_model.intel p in
  let arm = Cpu_model.run Cpu_model.arm p in
  let ratio = arm.Cpu_model.seconds /. intel.Cpu_model.seconds in
  Alcotest.(check bool) (Printf.sprintf "ratio %.1f in [4, 15]" ratio) true
    (ratio > 4.0 && ratio < 15.0)

let test_construct_scale_only_affects_construct () =
  let p = program () in
  let base = Cpu_model.run Cpu_model.intel p in
  let scaled = Cpu_model.run Cpu_model.intel ~construct_flop_scale:2.0 p in
  Alcotest.(check (float 1e-15)) "solve unchanged" base.Cpu_model.solve_seconds
    scaled.Cpu_model.solve_seconds;
  Alcotest.(check bool) "construct grows" true
    (scaled.Cpu_model.construct_seconds > base.Cpu_model.construct_seconds);
  (* The SE(3) penalty is bounded: construction is a fraction of total
     CPU time, so the end-to-end gain of the unified representation in
     software is small (the ORIANNA-SW observation, Sec. 7.3). *)
  let gain = scaled.Cpu_model.seconds /. base.Cpu_model.seconds in
  Alcotest.(check bool) (Printf.sprintf "software-only gain %.3f < 1.15" gain) true (gain < 1.15)

let test_cpu_energy_consistent () =
  let p = program () in
  let r = Cpu_model.run Cpu_model.arm p in
  Alcotest.(check (float 1e-12)) "E = P * t"
    (r.Cpu_model.seconds *. Cpu_model.arm.Cpu_model.active_power_w)
    r.Cpu_model.energy_j

let test_gpu_between_arm_and_intel () =
  (* The paper: the embedded GPU is ~2x the ARM CPU, far from Intel. *)
  let p = program () in
  let gpu = Gpu_model.run Gpu_model.jetson_maxwell p in
  let arm = Cpu_model.run Cpu_model.arm ~construct_flop_scale:1.64 p in
  let intel = Cpu_model.run Cpu_model.intel ~construct_flop_scale:1.64 p in
  Alcotest.(check bool) "faster than ARM" true (gpu.Gpu_model.seconds < arm.Cpu_model.seconds);
  Alcotest.(check bool) "slower than Intel" true (gpu.Gpu_model.seconds > intel.Cpu_model.seconds)

let test_gpu_solve_dominates () =
  (* Launch-bound sparse solving is the GPU's bottleneck (Sec. 7.3). *)
  let p = program () in
  let gpu = Gpu_model.run Gpu_model.jetson_maxwell p in
  Alcotest.(check bool) "solve >> construct" true
    (gpu.Gpu_model.solve_seconds > 3.0 *. gpu.Gpu_model.construct_seconds)

let test_dense_program_slower_on_cpu_too () =
  (* Even on a CPU the dense lowering does more arithmetic. *)
  let sparse = Cpu_model.run Cpu_model.intel (program ()) in
  let dense_r = Cpu_model.run Cpu_model.intel (dense ()) in
  Alcotest.(check bool) "dense arithmetic costs more" true
    (dense_r.Cpu_model.solve_seconds > sparse.Cpu_model.solve_seconds)

let test_dense_program_same_solution () =
  (* The dense lowering computes the same update as the factor-graph
     lowering. *)
  let p = program () in
  let d = dense () in
  let a = Orianna_isa.Program.run p in
  let b = Orianna_isa.Program.run d in
  List.iter
    (fun (name, va) ->
      let vb = List.assoc name b in
      if not (Orianna_linalg.Vec.equal ~eps:1e-6 va vb) then
        Alcotest.failf "dense/sparse solution mismatch at %s" name)
    a

let () =
  Alcotest.run "baselines"
    [
      ( "cpu",
        [
          Alcotest.test_case "time decomposition" `Quick test_cpu_time_positive_and_decomposed;
          Alcotest.test_case "intel vs arm" `Quick test_intel_faster_than_arm;
          Alcotest.test_case "construct scale" `Quick test_construct_scale_only_affects_construct;
          Alcotest.test_case "energy" `Quick test_cpu_energy_consistent;
        ] );
      ( "gpu",
        [
          Alcotest.test_case "between arm and intel" `Quick test_gpu_between_arm_and_intel;
          Alcotest.test_case "solve dominates" `Quick test_gpu_solve_dominates;
        ] );
      ( "vanilla",
        [
          Alcotest.test_case "dense slower" `Quick test_dense_program_slower_on_cpu_too;
          Alcotest.test_case "dense same solution" `Quick test_dense_program_same_solution;
        ] );
    ]
