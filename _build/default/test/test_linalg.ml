open Orianna_linalg
open Orianna_util

let rng () = Rng.of_int 12345

let check_mat msg ?(eps = 1e-9) a b =
  if not (Mat.equal ~eps a b) then
    Alcotest.failf "%s:@.%a@.vs@.%a" msg (fun ppf -> Mat.pp ppf) a (fun ppf -> Mat.pp ppf) b

let check_vec msg ?(eps = 1e-9) a b =
  if not (Vec.equal ~eps a b) then
    Alcotest.failf "%s: %a vs %a" msg (fun ppf -> Vec.pp ppf) a (fun ppf -> Vec.pp ppf) b

(* ---------- Vec ---------- *)

let test_vec_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  check_vec "add" [| 5.0; 7.0; 9.0 |] (Vec.add a b);
  check_vec "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub a b);
  check_vec "scale" [| 2.0; 4.0; 6.0 |] (Vec.scale 2.0 a);
  check_vec "neg" [| -1.0; -2.0; -3.0 |] (Vec.neg a);
  Alcotest.(check (float 1e-12)) "dot" 32.0 (Vec.dot a b);
  Alcotest.(check (float 1e-12)) "norm" (sqrt 14.0) (Vec.norm a)

let test_vec_concat_slice () =
  let v = Vec.concat [ [| 1.0 |]; [| 2.0; 3.0 |]; [||] ] in
  check_vec "concat" [| 1.0; 2.0; 3.0 |] v;
  check_vec "slice" [| 2.0; 3.0 |] (Vec.slice v ~pos:1 ~len:2);
  Alcotest.check_raises "slice oob" (Invalid_argument "Vec.slice: out of bounds") (fun () ->
      ignore (Vec.slice v ~pos:2 ~len:2))

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Vec.axpy ~alpha:2.0 ~x:[| 3.0; 4.0 |] ~y;
  check_vec "axpy" [| 7.0; 9.0 |] y

let test_vec_mismatch () =
  Alcotest.check_raises "add mismatch" (Invalid_argument "Vec.add: dimension mismatch 2 vs 3")
    (fun () -> ignore (Vec.add [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

(* ---------- Mat ---------- *)

let test_mat_mul () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_rows [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  check_mat "mul" (Mat.of_rows [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |]) (Mat.mul a b);
  check_mat "identity mul" a (Mat.mul a (Mat.identity 2));
  check_vec "mul_vec" [| 5.0; 11.0 |] (Mat.mul_vec a [| 1.0; 2.0 |])

let test_mat_transpose () =
  let r = rng () in
  let a = Mat.random r 4 3 in
  check_mat "double transpose" a (Mat.transpose (Mat.transpose a));
  let b = Mat.random r 3 5 in
  check_mat "transpose of product" (Mat.transpose (Mat.mul a b))
    (Mat.mul (Mat.transpose b) (Mat.transpose a))

let test_mat_blocks () =
  let m = Mat.create 4 4 in
  Mat.set_block m 1 2 (Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]);
  Alcotest.(check (float 0.0)) "corner" 4.0 (Mat.get m 2 3);
  check_mat "roundtrip" (Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]) (Mat.block m 1 2 2 2)

let test_mat_cat () =
  let a = Mat.of_rows [| [| 1.0 |]; [| 2.0 |] |] in
  let b = Mat.of_rows [| [| 3.0 |]; [| 4.0 |] |] in
  check_mat "hcat" (Mat.of_rows [| [| 1.0; 3.0 |]; [| 2.0; 4.0 |] |]) (Mat.hcat [ a; b ]);
  check_mat "vcat" (Mat.of_rows [| [| 1.0 |]; [| 2.0 |]; [| 3.0 |]; [| 4.0 |] |]) (Mat.vcat [ a; b ])

let test_mat_density () =
  let m = Mat.create 2 5 in
  Mat.set m 0 0 1.0;
  Alcotest.(check int) "nnz" 1 (Mat.nnz m);
  Alcotest.(check (float 1e-12)) "density" 0.1 (Mat.density m)

let test_mat_trace_frobenius () =
  let a = Mat.of_rows [| [| 3.0; 0.0 |]; [| 4.0; 5.0 |] |] in
  Alcotest.(check (float 1e-12)) "trace" 8.0 (Mat.trace a);
  Alcotest.(check (float 1e-12)) "frobenius" (sqrt 50.0) (Mat.frobenius a)

let test_mat_shape_errors () =
  let a = Mat.create 2 3 and b = Mat.create 3 3 in
  Alcotest.check_raises "add mismatch" (Invalid_argument "Mat.add: shape mismatch 2x3 vs 3x3")
    (fun () -> ignore (Mat.add a b));
  Alcotest.check_raises "mul mismatch" (Invalid_argument "Mat.mul: inner dimension mismatch 3x3 * 2x3")
    (fun () -> ignore (Mat.mul b a))

(* ---------- QR ---------- *)

let test_qr_factorization () =
  let r = rng () in
  List.iter
    (fun (m, n) ->
      let a = Mat.random r m n in
      let q, rr = Qr.qr a in
      check_mat "A = QR" ~eps:1e-8 a (Mat.mul q rr);
      check_mat "Q orthogonal" ~eps:1e-8 (Mat.identity m) (Mat.mul (Mat.transpose q) q);
      Alcotest.(check bool) "R upper" true (Mat.is_upper_triangular ~eps:1e-8 rr))
    [ (3, 3); (5, 3); (8, 8); (10, 4) ]

let test_triangularize_zeroes () =
  let r = rng () in
  let a = Mat.random r 7 4 in
  let t = Qr.triangularize a in
  Alcotest.(check bool) "upper" true (Mat.is_upper_triangular ~eps:1e-9 t)

let test_triangularize_preserves_gram () =
  (* QᵀA has the same Gram matrix AᵀA = RᵀR. *)
  let r = rng () in
  let a = Mat.random r 6 4 in
  let t = Qr.triangularize a in
  check_mat "gram preserved" ~eps:1e-8
    (Mat.mul (Mat.transpose a) a)
    (Mat.mul (Mat.transpose t) t)

let test_givens_matches_householder () =
  let r = rng () in
  let a = Mat.random r 6 4 in
  let h = Qr.triangularize a in
  let g = Qr.givens_triangularize a in
  (* R factors agree up to row signs; compare RᵀR. *)
  check_mat "same gram" ~eps:1e-8 (Mat.mul (Mat.transpose h) h) (Mat.mul (Mat.transpose g) g);
  Alcotest.(check bool) "givens upper" true (Mat.is_upper_triangular ~eps:1e-9 g)

let test_solve_ls_exact () =
  (* Square well-conditioned system: exact solve. *)
  let a = Mat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = [| 1.0; -2.0 |] in
  let b = Mat.mul_vec a x in
  check_vec "exact" ~eps:1e-10 x (Qr.solve_ls a b)

let test_solve_ls_overdetermined () =
  (* Least squares must match the normal equations solution. *)
  let r = rng () in
  let a = Mat.random r 10 4 in
  let b = Array.init 10 (fun _ -> Rng.uniform r ~lo:(-1.0) ~hi:1.0) in
  let x_qr = Qr.solve_ls a b in
  let x_ne = Chol.solve_normal_equations a b in
  check_vec "qr = normal equations" ~eps:1e-6 x_ne x_qr

(* ---------- Tri / Chol ---------- *)

let test_tri_solves () =
  let r = Mat.of_rows [| [| 2.0; 1.0; 3.0 |]; [| 0.0; 4.0; 1.0 |]; [| 0.0; 0.0; 5.0 |] |] in
  let x = [| 1.0; 2.0; 3.0 |] in
  check_vec "upper" ~eps:1e-10 x (Tri.solve_upper r (Mat.mul_vec r x));
  let l = Mat.transpose r in
  check_vec "lower" ~eps:1e-10 x (Tri.solve_lower l (Mat.mul_vec l x))

let test_tri_singular () =
  let r = Mat.of_rows [| [| 1.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Tri.solve_upper: singular pivot 0") (fun () ->
      ignore (Tri.solve_upper r [| 1.0; 1.0 |]))

let test_chol () =
  let r = rng () in
  let a = Mat.random r 5 5 in
  let spd = Mat.add (Mat.mul (Mat.transpose a) a) (Mat.scale 0.5 (Mat.identity 5)) in
  let l = Chol.factor spd in
  check_mat "LLt" ~eps:1e-8 spd (Mat.mul l (Mat.transpose l));
  let x = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_vec "solve" ~eps:1e-7 x (Chol.solve spd (Mat.mul_vec spd x))

let test_chol_not_spd () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check_raises "not spd" (Failure "Chol.factor: matrix not positive definite") (fun () ->
      ignore (Chol.factor a))

(* ---------- Assembly ---------- *)

let test_assembly_dense () =
  let asm = Assembly.create ~col_dims:[| 2; 1 |] in
  Assembly.add_row asm
    ~blocks:[ (0, Mat.of_rows [| [| 1.0; 2.0 |] |]) ]
    ~rhs:[| 5.0 |];
  Assembly.add_row asm
    ~blocks:[ (0, Mat.of_rows [| [| 3.0; 4.0 |] |]); (1, Mat.of_rows [| [| 7.0 |] |]) ]
    ~rhs:[| 6.0 |];
  let a, b = Assembly.to_dense asm in
  check_mat "dense A" (Mat.of_rows [| [| 1.0; 2.0; 0.0 |]; [| 3.0; 4.0; 7.0 |] |]) a;
  check_vec "dense b" [| 5.0; 6.0 |] b;
  (* Structural non-zeros count whole stored blocks: 2 + 2 + 1. *)
  Alcotest.(check int) "nnz" 5 (Assembly.nnz asm);
  Alcotest.(check (float 1e-12)) "density" (5.0 /. 6.0) (Assembly.density asm)

let test_assembly_errors () =
  let asm = Assembly.create ~col_dims:[| 2 |] in
  Alcotest.check_raises "bad width"
    (Invalid_argument "Assembly.add_row: block for var 0 is 1x3, expected 2 cols") (fun () ->
      Assembly.add_row asm ~blocks:[ (0, Mat.create 1 3) ] ~rhs:[| 0.0 |])

(* ---------- MAC counting ---------- *)

let test_macs_matmul () =
  Macs.reset ();
  let a = Mat.map (fun _ -> 1.0) (Mat.create 3 4) and b = Mat.create 4 5 in
  let _ = Mat.mul a b in
  Alcotest.(check int) "dense 3*4*5 macs" 60 (Macs.count ());
  (* Structural zeros are not charged. *)
  Macs.reset ();
  let _ = Mat.mul (Mat.create 3 4) b in
  Alcotest.(check int) "zero matrix free" 0 (Macs.count ())

let test_macs_measure () =
  Macs.reset ();
  Macs.add 5;
  let (), spent = Macs.measure (fun () -> Macs.add 7) in
  Alcotest.(check int) "measured" 7 spent;
  Alcotest.(check int) "outer preserved" 12 (Macs.count ())

(* ---------- QCheck properties ---------- *)

let mat_gen =
  QCheck.Gen.(
    let* m = int_range 1 8 in
    let* n = int_range 1 8 in
    let* seed = int_range 0 1_000_000 in
    return (m, n, seed))

let arbitrary_mat = QCheck.make mat_gen ~print:(fun (m, n, s) -> Printf.sprintf "%dx%d seed=%d" m n s)

let prop_qr_reconstructs =
  QCheck.Test.make ~name:"qr reconstructs A" ~count:60 arbitrary_mat (fun (m, n, seed) ->
      let a = Mat.random (Rng.of_int seed) m n in
      let q, r = Qr.qr a in
      Mat.equal ~eps:1e-7 a (Mat.mul q r))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose involution" ~count:60 arbitrary_mat (fun (m, n, seed) ->
      let a = Mat.random (Rng.of_int seed) m n in
      Mat.equal a (Mat.transpose (Mat.transpose a)))

let prop_upper_solve =
  QCheck.Test.make ~name:"upper solve inverts" ~count:60
    QCheck.(make QCheck.Gen.(pair (int_range 1 8) (int_range 0 1_000_000)))
    (fun (n, seed) ->
      let r = Rng.of_int seed in
      let a = Mat.random r n n in
      (* Make an upper-triangular, well conditioned matrix. *)
      let u = Mat.init n n (fun i j -> if j > i then Mat.get a i j else if i = j then 2.0 +. Float.abs (Mat.get a i j) else 0.0) in
      let x = Array.init n (fun i -> float_of_int (i + 1)) in
      Vec.equal ~eps:1e-7 x (Tri.solve_upper u (Mat.mul_vec u x)))

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_qr_reconstructs; prop_transpose_involution; prop_upper_solve ] in
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "ops" `Quick test_vec_ops;
          Alcotest.test_case "concat/slice" `Quick test_vec_concat_slice;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "mismatch" `Quick test_vec_mismatch;
        ] );
      ( "mat",
        [
          Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "blocks" `Quick test_mat_blocks;
          Alcotest.test_case "cat" `Quick test_mat_cat;
          Alcotest.test_case "density" `Quick test_mat_density;
          Alcotest.test_case "trace/frobenius" `Quick test_mat_trace_frobenius;
          Alcotest.test_case "shape errors" `Quick test_mat_shape_errors;
        ] );
      ( "qr",
        [
          Alcotest.test_case "factorization" `Quick test_qr_factorization;
          Alcotest.test_case "triangularize zeroes" `Quick test_triangularize_zeroes;
          Alcotest.test_case "gram preserved" `Quick test_triangularize_preserves_gram;
          Alcotest.test_case "givens = householder" `Quick test_givens_matches_householder;
          Alcotest.test_case "solve exact" `Quick test_solve_ls_exact;
          Alcotest.test_case "solve overdetermined" `Quick test_solve_ls_overdetermined;
        ] );
      ( "tri-chol",
        [
          Alcotest.test_case "tri solves" `Quick test_tri_solves;
          Alcotest.test_case "tri singular" `Quick test_tri_singular;
          Alcotest.test_case "chol" `Quick test_chol;
          Alcotest.test_case "chol not spd" `Quick test_chol_not_spd;
        ] );
      ( "assembly",
        [
          Alcotest.test_case "dense" `Quick test_assembly_dense;
          Alcotest.test_case "errors" `Quick test_assembly_errors;
        ] );
      ( "macs",
        [
          Alcotest.test_case "matmul count" `Quick test_macs_matmul;
          Alcotest.test_case "measure" `Quick test_macs_measure;
        ] );
      ("properties", qsuite);
    ]
