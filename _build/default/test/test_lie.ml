open Orianna_linalg
open Orianna_lie
open Orianna_util

let check_mat msg ?(eps = 1e-8) a b =
  if not (Mat.equal ~eps a b) then
    Alcotest.failf "%s:@.%a@.vs@.%a" msg (fun ppf -> Mat.pp ppf) a (fun ppf -> Mat.pp ppf) b

let check_vec msg ?(eps = 1e-8) a b =
  if not (Vec.equal ~eps a b) then
    Alcotest.failf "%s: %a vs %a" msg (fun ppf -> Vec.pp ppf) a (fun ppf -> Vec.pp ppf) b

let check_float = Alcotest.(check (float 1e-9))

(* ---------- SO(2) ---------- *)

let test_so2_roundtrip () =
  List.iter
    (fun theta -> check_float "log(exp)" theta (So2.log (So2.exp theta)))
    [ 0.0; 0.5; -1.2; 3.0; -3.0 ]

let test_so2_wrap () =
  check_float "wrap 2pi+1" 1.0 (So2.wrap_angle ((2.0 *. Float.pi) +. 1.0));
  check_float "wrap -2pi-1" (-1.0) (So2.wrap_angle ((-2.0 *. Float.pi) -. 1.0));
  check_float "wrap pi" Float.pi (So2.wrap_angle Float.pi)

let test_so2_hat_vee () =
  check_float "vee(hat)" 0.7 (So2.vee (So2.hat 0.7))

let test_so2_perp () =
  (* d(R v)/dtheta = R perp(v): finite differences. *)
  let theta = 0.8 and v = [| 1.5; -0.3 |] in
  let eps = 1e-6 in
  let f t = Mat.mul_vec (So2.exp t) v in
  let numeric = Vec.scale (1.0 /. (2.0 *. eps)) (Vec.sub (f (theta +. eps)) (f (theta -. eps))) in
  check_vec "perp derivative" ~eps:1e-6 numeric (Mat.mul_vec (So2.exp theta) (So2.perp v))

(* ---------- SO(3) ---------- *)

let rng () = Rng.of_int 99

let test_so3_hat_vee () =
  let v = [| 1.0; -2.0; 3.0 |] in
  check_vec "vee(hat)" v (So3.vee (So3.hat v));
  let h = So3.hat v in
  check_mat "antisymmetric" (Mat.neg h) (Mat.transpose h)

let test_so3_exp_is_rotation () =
  let r = rng () in
  for _ = 1 to 20 do
    let phi = Array.init 3 (fun _ -> Rng.uniform r ~lo:(-3.0) ~hi:3.0) in
    Alcotest.(check bool) "is rotation" true (So3.is_rotation (So3.exp phi))
  done

let test_so3_exp_log_roundtrip () =
  let r = rng () in
  for _ = 1 to 50 do
    (* Keep |phi| < pi so the log is unique. *)
    let phi = Array.init 3 (fun _ -> Rng.uniform r ~lo:(-1.7) ~hi:1.7) in
    let phi = if Vec.norm phi >= Float.pi then Vec.scale (3.0 /. Vec.norm phi) phi else phi in
    check_vec "log(exp)" ~eps:1e-7 phi (So3.log (So3.exp phi))
  done

let test_so3_log_exp_roundtrip () =
  let r = rng () in
  for _ = 1 to 50 do
    let rot = So3.random r in
    check_mat "exp(log)" ~eps:1e-7 rot (So3.exp (So3.log rot))
  done

let test_so3_log_small_angle () =
  let phi = [| 1e-10; -2e-10; 5e-11 |] in
  check_vec "tiny angle" ~eps:1e-15 phi (So3.log (So3.exp phi))

let test_so3_log_near_pi () =
  List.iter
    (fun axis ->
      let a = Vec.scale (1.0 /. Vec.norm axis) axis in
      let phi = Vec.scale (Float.pi -. 1e-7) a in
      let back = So3.log (So3.exp phi) in
      (* Near pi the sign of the axis may flip; compare rotations. *)
      check_mat "rotation preserved" ~eps:1e-5 (So3.exp phi) (So3.exp back))
    [ [| 1.0; 0.0; 0.0 |]; [| 0.0; 1.0; 0.0 |]; [| 1.0; 1.0; 1.0 |]; [| -0.3; 0.4; 0.86 |] ]

let test_so3_jr_numeric () =
  (* Exp(phi + d) ~ Exp(phi) Exp(Jr(phi) d). *)
  let r = rng () in
  for _ = 1 to 20 do
    let phi = Array.init 3 (fun _ -> Rng.uniform r ~lo:(-1.5) ~hi:1.5) in
    let jr = So3.jr phi in
    let eps = 1e-6 in
    for k = 0 to 2 do
      let d = Vec.create 3 in
      d.(k) <- eps;
      let lhs = So3.exp (Vec.add phi d) in
      let rhs = Mat.mul (So3.exp phi) (So3.exp (Mat.mul_vec jr d)) in
      check_mat "jr column" ~eps:1e-9 lhs rhs
    done
  done

let test_so3_jr_inv () =
  let r = rng () in
  for _ = 1 to 20 do
    let phi = Array.init 3 (fun _ -> Rng.uniform r ~lo:(-1.5) ~hi:1.5) in
    check_mat "jr_inv * jr = I" ~eps:1e-9 (Mat.identity 3) (Mat.mul (So3.jr_inv phi) (So3.jr phi))
  done

let test_so3_jl_identities () =
  let r = rng () in
  for _ = 1 to 20 do
    let phi = Array.init 3 (fun _ -> Rng.uniform r ~lo:(-1.5) ~hi:1.5) in
    (* Jl(phi) = Jr(phi)^T = Jr(-phi). *)
    check_mat "jl = jr^T" (Mat.transpose (So3.jr phi)) (So3.jl phi);
    check_mat "jl_inv inverts" ~eps:1e-9 (Mat.identity 3) (Mat.mul (So3.jl_inv phi) (So3.jl phi))
  done

let test_so3_normalize () =
  let r = rng () in
  let rot = So3.random r in
  let drifted = Mat.map (fun x -> x +. 1e-4) rot in
  let fixed = So3.normalize drifted in
  Alcotest.(check bool) "normalized is rotation" true (So3.is_rotation ~eps:1e-9 fixed)

(* ---------- Pose3 <so(3), T(3)> ---------- *)

let random_pose3 r = Pose3.random r ~scale:2.0

let test_pose3_group_laws () =
  let r = rng () in
  for _ = 1 to 20 do
    let a = random_pose3 r and b = random_pose3 r in
    (* (a + b) - a = b  (Equ. 2 consistency). *)
    Alcotest.(check bool) "oplus/ominus" true
      (Pose3.equal ~eps:1e-9 b (Pose3.ominus (Pose3.oplus a b) a));
    (* a + a^-1 = identity. *)
    Alcotest.(check bool) "inverse" true
      (Pose3.equal ~eps:1e-9 Pose3.identity (Pose3.oplus a (Pose3.inverse a)));
    (* identity is neutral. *)
    Alcotest.(check bool) "neutral" true (Pose3.equal ~eps:1e-12 a (Pose3.oplus a Pose3.identity))
  done

let test_pose3_associativity () =
  let r = rng () in
  let a = random_pose3 r and b = random_pose3 r and c = random_pose3 r in
  Alcotest.(check bool) "assoc" true
    (Pose3.equal ~eps:1e-9 (Pose3.oplus (Pose3.oplus a b) c) (Pose3.oplus a (Pose3.oplus b c)))

let test_pose3_retract_local () =
  let r = rng () in
  for _ = 1 to 20 do
    let a = random_pose3 r and b = random_pose3 r in
    Alcotest.(check bool) "retract(local)" true
      (Pose3.equal ~eps:1e-8 b (Pose3.retract a (Pose3.local a b)))
  done

let test_pose3_act_matches_se3 () =
  let r = rng () in
  let p = random_pose3 r in
  let x = [| 0.3; -1.2; 2.0 |] in
  check_vec "act" (Se3.act (Convert.se3_of_pose3 p) x) (Pose3.act p x)

let test_pose3_compose_matches_se3 () =
  let r = rng () in
  let a = random_pose3 r and b = random_pose3 r in
  let via_se3 = Convert.pose3_of_se3 (Se3.compose (Convert.se3_of_pose3 a) (Convert.se3_of_pose3 b)) in
  Alcotest.(check bool) "compose matches" true (Pose3.equal ~eps:1e-9 via_se3 (Pose3.oplus a b))

(* ---------- Pose2 ---------- *)

let test_pose2_group_laws () =
  let r = rng () in
  for _ = 1 to 20 do
    let a = Pose2.random r ~scale:3.0 and b = Pose2.random r ~scale:3.0 in
    Alcotest.(check bool) "oplus/ominus" true
      (Pose2.equal ~eps:1e-9 b (Pose2.ominus (Pose2.oplus a b) a));
    Alcotest.(check bool) "inverse" true
      (Pose2.equal ~eps:1e-9 Pose2.identity (Pose2.oplus a (Pose2.inverse a)))
  done

let test_pose2_retract_local () =
  let r = rng () in
  for _ = 1 to 20 do
    let a = Pose2.random r ~scale:3.0 and b = Pose2.random r ~scale:3.0 in
    Alcotest.(check bool) "retract(local)" true
      (Pose2.equal ~eps:1e-9 b (Pose2.retract a (Pose2.local a b)))
  done

(* ---------- SE(3) ---------- *)

let random_xi r = Array.init 6 (fun _ -> Rng.uniform r ~lo:(-1.0) ~hi:1.0)

let test_se3_exp_log () =
  let r = rng () in
  for _ = 1 to 30 do
    let xi = random_xi r in
    check_vec "log(exp)" ~eps:1e-7 xi (Se3.log (Se3.exp xi))
  done

let test_se3_compose_inverse () =
  let r = rng () in
  let a = Se3.exp (random_xi r) and b = Se3.exp (random_xi r) in
  Alcotest.(check bool) "assoc identity" true
    (Se3.equal ~eps:1e-9 Se3.identity (Se3.compose a (Se3.inverse a)));
  let c = Se3.compose a b in
  Alcotest.(check bool) "inverse of product" true
    (Se3.equal ~eps:1e-8 (Se3.inverse c) (Se3.compose (Se3.inverse b) (Se3.inverse a)))

let test_se3_adjoint () =
  (* T Exp(xi) T^-1 = Exp(Ad_T xi). *)
  let r = rng () in
  for _ = 1 to 10 do
    let t = Se3.exp (random_xi r) in
    let xi = Vec.scale 0.3 (random_xi r) in
    let lhs = Se3.compose (Se3.compose t (Se3.exp xi)) (Se3.inverse t) in
    let rhs = Se3.exp (Mat.mul_vec (Se3.adjoint t) xi) in
    check_mat "adjoint" ~eps:1e-7 (Se3.to_matrix lhs) (Se3.to_matrix rhs)
  done

let test_se3_jacobians_numeric () =
  (* Exp(xi + d) ~ Exp(xi) Exp(Jr(xi) d): check all 6 columns. *)
  let r = rng () in
  for _ = 1 to 5 do
    let xi = Vec.scale 0.8 (random_xi r) in
    let jr = Se3.jr xi in
    let eps = 1e-6 in
    for k = 0 to 5 do
      let d = Vec.create 6 in
      d.(k) <- eps;
      let lhs = Se3.exp (Vec.add xi d) in
      let rhs = Se3.compose (Se3.exp xi) (Se3.exp (Mat.mul_vec jr d)) in
      check_mat "jr column" ~eps:1e-8 (Se3.to_matrix lhs) (Se3.to_matrix rhs)
    done
  done

let test_se3_jr_inv () =
  let r = rng () in
  for _ = 1 to 10 do
    let xi = random_xi r in
    check_mat "jr_inv * jr" ~eps:1e-8 (Mat.identity 6) (Mat.mul (Se3.jr_inv xi) (Se3.jr xi));
    check_mat "jl_inv * jl" ~eps:1e-8 (Mat.identity 6) (Mat.mul (Se3.jl_inv xi) (Se3.jl xi))
  done

let test_se3_retract_local () =
  let r = rng () in
  for _ = 1 to 10 do
    let a = Se3.exp (random_xi r) and b = Se3.exp (random_xi r) in
    check_mat "retract(local)" ~eps:1e-7 (Se3.to_matrix b)
      (Se3.to_matrix (Se3.retract a (Se3.local a b)))
  done

let test_se3_bad_matrix () =
  Alcotest.check_raises "bad bottom row"
    (Invalid_argument "Se3.of_matrix: bottom row is not [0 0 0 1]") (fun () ->
      ignore (Se3.of_matrix (Mat.create 4 4)))

(* ---------- Quaternions ---------- *)

let test_quat_roundtrip () =
  let r = rng () in
  for _ = 1 to 30 do
    let rot = So3.random r in
    check_mat "to_rotation(of_rotation)" ~eps:1e-9 rot (Quat.to_rotation (Quat.of_rotation rot))
  done

let test_quat_mul_matches_matrix () =
  let r = rng () in
  let r1 = So3.random r and r2 = So3.random r in
  let q = Quat.mul (Quat.of_rotation r1) (Quat.of_rotation r2) in
  check_mat "product" ~eps:1e-9 (Mat.mul r1 r2) (Quat.to_rotation q)

let test_quat_rotate () =
  let r = rng () in
  let rot = So3.random r in
  let v = [| 0.3; -0.7; 1.1 |] in
  check_vec "rotate" ~eps:1e-9 (Mat.mul_vec rot v) (Quat.rotate (Quat.of_rotation rot) v)

let test_quat_slerp_endpoints () =
  let r = rng () in
  let a = Quat.of_rotation (So3.random r) and b = Quat.of_rotation (So3.random r) in
  Alcotest.(check bool) "slerp 0 = a" true (Quat.equal_up_to_sign ~eps:1e-9 a (Quat.slerp a b 0.0));
  Alcotest.(check bool) "slerp 1 = b" true (Quat.equal_up_to_sign ~eps:1e-6 b (Quat.slerp a b 1.0))

(* ---------- Conversions (Fig. 8) ---------- *)

let test_convert_roundtrips () =
  let r = rng () in
  for _ = 1 to 20 do
    let p = random_pose3 r in
    Alcotest.(check bool) "se3 roundtrip" true
      (Pose3.equal ~eps:1e-9 p (Convert.pose3_of_se3 (Convert.se3_of_pose3 p)));
    Alcotest.(check bool) "se3-vec roundtrip" true
      (Pose3.equal ~eps:1e-7 p (Convert.pose3_of_se3_vec (Convert.se3_vec_of_pose3 p)));
    let q, t = Convert.quat_of_pose3 p in
    Alcotest.(check bool) "quat roundtrip" true
      (Pose3.equal ~eps:1e-9 p (Convert.pose3_of_quat q t))
  done

let test_convert_pose2_embed () =
  let r = rng () in
  let p2 = Pose2.random r ~scale:2.0 in
  let p3 = Convert.pose3_of_pose2 p2 in
  let back = Convert.pose2_of_pose3 p3 in
  Alcotest.(check bool) "pose2 embed roundtrip" true (Pose2.equal ~eps:1e-9 p2 back)

(* ---------- MAC comparison teaser (Sec. 4.3) ---------- *)

let test_pose_cheaper_than_se3 () =
  let r = rng () in
  let a = random_pose3 r and b = random_pose3 r in
  let sa = Convert.se3_of_pose3 a and sb = Convert.se3_of_pose3 b in
  Macs.reset ();
  let _ = Pose3.oplus a b in
  let unified = Macs.count () in
  Macs.reset ();
  let _ = Se3.compose sa sb in
  let se3 = Macs.count () in
  Alcotest.(check bool)
    (Printf.sprintf "compose: unified %d <= se3 %d MACs" unified se3)
    true (unified <= se3)

let () =
  Alcotest.run "lie"
    [
      ( "so2",
        [
          Alcotest.test_case "roundtrip" `Quick test_so2_roundtrip;
          Alcotest.test_case "wrap" `Quick test_so2_wrap;
          Alcotest.test_case "hat/vee" `Quick test_so2_hat_vee;
          Alcotest.test_case "perp derivative" `Quick test_so2_perp;
        ] );
      ( "so3",
        [
          Alcotest.test_case "hat/vee" `Quick test_so3_hat_vee;
          Alcotest.test_case "exp is rotation" `Quick test_so3_exp_is_rotation;
          Alcotest.test_case "exp-log roundtrip" `Quick test_so3_exp_log_roundtrip;
          Alcotest.test_case "log-exp roundtrip" `Quick test_so3_log_exp_roundtrip;
          Alcotest.test_case "log small angle" `Quick test_so3_log_small_angle;
          Alcotest.test_case "log near pi" `Quick test_so3_log_near_pi;
          Alcotest.test_case "jr numeric" `Quick test_so3_jr_numeric;
          Alcotest.test_case "jr_inv" `Quick test_so3_jr_inv;
          Alcotest.test_case "jl identities" `Quick test_so3_jl_identities;
          Alcotest.test_case "normalize" `Quick test_so3_normalize;
        ] );
      ( "pose3",
        [
          Alcotest.test_case "group laws" `Quick test_pose3_group_laws;
          Alcotest.test_case "associativity" `Quick test_pose3_associativity;
          Alcotest.test_case "retract/local" `Quick test_pose3_retract_local;
          Alcotest.test_case "act matches se3" `Quick test_pose3_act_matches_se3;
          Alcotest.test_case "compose matches se3" `Quick test_pose3_compose_matches_se3;
        ] );
      ( "pose2",
        [
          Alcotest.test_case "group laws" `Quick test_pose2_group_laws;
          Alcotest.test_case "retract/local" `Quick test_pose2_retract_local;
        ] );
      ( "se3",
        [
          Alcotest.test_case "exp-log" `Quick test_se3_exp_log;
          Alcotest.test_case "compose/inverse" `Quick test_se3_compose_inverse;
          Alcotest.test_case "adjoint" `Quick test_se3_adjoint;
          Alcotest.test_case "jacobians numeric" `Quick test_se3_jacobians_numeric;
          Alcotest.test_case "jr_inv/jl_inv" `Quick test_se3_jr_inv;
          Alcotest.test_case "retract/local" `Quick test_se3_retract_local;
          Alcotest.test_case "bad matrix" `Quick test_se3_bad_matrix;
        ] );
      ( "quat",
        [
          Alcotest.test_case "roundtrip" `Quick test_quat_roundtrip;
          Alcotest.test_case "mul" `Quick test_quat_mul_matches_matrix;
          Alcotest.test_case "rotate" `Quick test_quat_rotate;
          Alcotest.test_case "slerp endpoints" `Quick test_quat_slerp_endpoints;
        ] );
      ( "convert",
        [
          Alcotest.test_case "roundtrips" `Quick test_convert_roundtrips;
          Alcotest.test_case "pose2 embed" `Quick test_convert_pose2_embed;
        ] );
      ("macs", [ Alcotest.test_case "unified cheaper" `Quick test_pose_cheaper_than_se3 ]);
    ]
