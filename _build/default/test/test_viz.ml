open Orianna_viz
open Orianna_util
module App = Orianna_apps.App
module Sphere = Orianna_apps.Sphere
module Datasets = Orianna_apps.Datasets
module Compile = Orianna_compiler.Compile
module Schedule = Orianna_sim.Schedule
module Accel = Orianna_hw.Accel

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let count_sub ~sub s =
  let n = String.length sub in
  let rec go i acc =
    if i + n > String.length s then acc
    else if String.sub s i n = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* ---------- Svg primitives ---------- *)

let test_svg_document () =
  let svg = Svg.create ~width:100 ~height:80 in
  Svg.polyline svg ~color:"red" [ (0.0, 0.0); (10.0, 10.0) ];
  Svg.circle svg ~color:"blue" ~cx:5.0 ~cy:5.0 ~r:2.0;
  Svg.rect svg ~color:"green" ~x:1.0 ~y:1.0 ~w:3.0 ~h:4.0;
  Svg.text svg ~x:2.0 ~y:9.0 "hi";
  Svg.line svg ~color:"black" ~x1:0.0 ~y1:0.0 ~x2:1.0 ~y2:1.0;
  let doc = Svg.render svg in
  List.iter
    (fun tag -> Alcotest.(check bool) ("has " ^ tag) true (contains ~sub:tag doc))
    [ "<svg"; "</svg>"; "<polyline"; "<circle"; "<rect"; "<text"; "<line"; "width=\"100\"" ]

let test_svg_fit_mapping () =
  let m = Svg.fit ~width:100 ~height:100 ~margin:10.0 [ (0.0, 0.0); (10.0, 10.0) ] in
  let x0, y0 = Svg.apply m (0.0, 0.0) in
  let x1, y1 = Svg.apply m (10.0, 10.0) in
  (* Corners inside the margins; y axis flipped. *)
  Alcotest.(check bool) "in bounds" true (x0 >= 10.0 && x1 <= 90.0 && y1 >= 10.0 && y0 <= 90.0);
  Alcotest.(check bool) "y flipped" true (y0 > y1);
  Alcotest.(check bool) "x increasing" true (x1 > x0)

let test_svg_fit_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Svg.fit: no points") (fun () ->
      ignore (Svg.fit ~width:10 ~height:10 ~margin:1.0 []))

(* ---------- Plots ---------- *)

let test_trajectory_svg () =
  let ds = Sphere.generate { Sphere.default_config with Sphere.rings = 3; poses_per_ring = 8 } in
  let doc =
    Plots.trajectory_svg ~truth:ds.Sphere.truth ~initial:ds.Sphere.initial
      ~estimate:ds.Sphere.initial ()
  in
  Alcotest.(check int) "three polylines" 3 (count_sub ~sub:"<polyline" doc);
  Alcotest.(check bool) "legend" true (contains ~sub:"optimized" doc)

let test_gantt_svg () =
  let p = Compile.compile_application (App.manipulator.App.graphs (Rng.of_int 2)) in
  let r = Schedule.run ~accel:(Accel.base ()) ~policy:Schedule.Ooo_full p in
  let doc = Plots.gantt_svg p r in
  (* One rect per instruction plus the background. *)
  Alcotest.(check int) "rect count" (Orianna_isa.Program.length p + 1) (count_sub ~sub:"<rect" doc);
  Alcotest.(check bool) "cycles label" true (contains ~sub:"cycles" doc)

(* ---------- Manhattan dataset ---------- *)

let test_manhattan_shape () =
  let ds = Datasets.manhattan Datasets.default_config in
  Alcotest.(check int) "poses" 301 (Array.length ds.Datasets.truth);
  Alcotest.(check int) "odometry" 300 (Array.length ds.Datasets.odometry);
  Alcotest.(check bool) "has loop closures" true (Array.length ds.Datasets.loops > 20);
  (* Axis-aligned positions on the grid. *)
  Array.iter
    (fun p ->
      let t = Orianna_lie.Pose2.translation p in
      let on_grid x = Float.abs (x -. Float.round x) < 1e-6 in
      Alcotest.(check bool) "on grid" true (on_grid t.(0) && on_grid t.(1)))
    ds.Datasets.truth

let test_manhattan_solves () =
  let ds = Datasets.manhattan { Datasets.default_config with Datasets.steps = 150 } in
  let init = Datasets.ate ~truth:ds.Datasets.truth ~estimate:ds.Datasets.initial in
  let g = Datasets.to_graph ds in
  let params =
    { Orianna_fg.Optimizer.default_params with
      method_ = Orianna_fg.Optimizer.Levenberg_marquardt }
  in
  let report = Orianna_fg.Optimizer.optimize ~params g in
  Alcotest.(check bool) "converged" true report.Orianna_fg.Optimizer.converged;
  let est = Datasets.estimate_of g ~n:(Array.length ds.Datasets.truth) in
  let final = Datasets.ate ~truth:ds.Datasets.truth ~estimate:est in
  Alcotest.(check bool)
    (Printf.sprintf "improves 5x (%.3f -> %.3f)" init.Sphere.mean final.Sphere.mean)
    true
    (final.Sphere.mean < init.Sphere.mean /. 5.0)

let test_manhattan_g2o_roundtrip () =
  let ds = Datasets.manhattan { Datasets.default_config with Datasets.steps = 60 } in
  let entries = Datasets.to_g2o ds in
  let reparsed = Orianna_apps.G2o.parse (Orianna_apps.G2o.to_string entries) in
  Alcotest.(check int) "entries" (List.length entries) (List.length reparsed);
  (* And the exported file solves. *)
  let _, report = Orianna_apps.G2o.solve_file (Orianna_apps.G2o.to_string entries) in
  Alcotest.(check bool) "solves" true
    (report.Orianna_fg.Optimizer.final_error < report.Orianna_fg.Optimizer.initial_error)

let () =
  Alcotest.run "viz"
    [
      ( "svg",
        [
          Alcotest.test_case "document" `Quick test_svg_document;
          Alcotest.test_case "fit mapping" `Quick test_svg_fit_mapping;
          Alcotest.test_case "fit empty" `Quick test_svg_fit_empty;
        ] );
      ( "plots",
        [
          Alcotest.test_case "trajectory" `Quick test_trajectory_svg;
          Alcotest.test_case "gantt" `Quick test_gantt_svg;
        ] );
      ( "manhattan",
        [
          Alcotest.test_case "shape" `Quick test_manhattan_shape;
          Alcotest.test_case "solves" `Quick test_manhattan_solves;
          Alcotest.test_case "g2o roundtrip" `Quick test_manhattan_g2o_roundtrip;
        ] );
    ]
