open Orianna_hw
open Orianna_isa

let mk_instr ?(id = 0) ?(srcs = [||]) ~op ~rows ~cols () =
  { Instr.id; op; srcs; rows; cols; phase = Instr.Construct; algo = 0; tag = "" }

(* ---------- Resource ---------- *)

let test_resource_arith () =
  let a = { Resource.lut = 1; ff = 2; bram = 3; dsp = 4 } in
  let b = { Resource.lut = 10; ff = 20; bram = 30; dsp = 40 } in
  Alcotest.(check bool) "add" true (Resource.add a b = { Resource.lut = 11; ff = 22; bram = 33; dsp = 44 });
  Alcotest.(check bool) "scale" true (Resource.scale 3 a = { Resource.lut = 3; ff = 6; bram = 9; dsp = 12 })

let test_resource_fits () =
  let b = { Resource.lut = 10; ff = 10; bram = 10; dsp = 10 } in
  Alcotest.(check bool) "fits" true (Resource.fits { Resource.lut = 10; ff = 9; bram = 0; dsp = 1 } ~budget:b);
  Alcotest.(check bool) "one over" false
    (Resource.fits { Resource.lut = 11; ff = 0; bram = 0; dsp = 0 } ~budget:b)

let test_resource_utilization () =
  let b = { Resource.lut = 100; ff = 100; bram = 100; dsp = 100 } in
  Alcotest.(check (float 1e-9)) "max component" 0.7
    (Resource.utilization { Resource.lut = 10; ff = 70; bram = 20; dsp = 5 } ~budget:b)

(* ---------- Unit model ---------- *)

let test_op_unit_mapping () =
  Alcotest.(check bool) "gemm on matmul" true (Unit_model.class_of_op Instr.Gemm = Unit_model.Matmul);
  Alcotest.(check bool) "qr on qr" true (Unit_model.class_of_op Instr.Qr = Unit_model.Qr_unit);
  Alcotest.(check bool) "vadd on vector" true (Unit_model.class_of_op Instr.Vadd = Unit_model.Vector_alu);
  Alcotest.(check bool) "log on special" true (Unit_model.class_of_op Instr.Logm = Unit_model.Special);
  Alcotest.(check bool) "load on dma" true (Unit_model.class_of_op (Instr.Load (Orianna_linalg.Mat.create 1 1)) = Unit_model.Dma)

let test_latency_monotone_in_size () =
  (* Bigger QR, more cycles. *)
  let src_small _ = (8, 9) and src_big _ = (40, 21) in
  let small = mk_instr ~op:Instr.Qr ~rows:8 ~cols:9 ~srcs:[| 0 |] () in
  let big = mk_instr ~op:Instr.Qr ~rows:40 ~cols:21 ~srcs:[| 0 |] () in
  let l_small = Unit_model.latency Unit_model.Qr_unit ~qr_rotators:8 small ~src_shape:src_small in
  let l_big = Unit_model.latency Unit_model.Qr_unit ~qr_rotators:8 big ~src_shape:src_big in
  Alcotest.(check bool) (Printf.sprintf "monotone (%d < %d)" l_small l_big) true (l_small < l_big)

let test_wider_qr_is_faster_on_big_matrices () =
  let src _ = (120, 80) in
  let i = mk_instr ~op:Instr.Qr ~rows:120 ~cols:80 ~srcs:[| 0 |] () in
  let narrow = Unit_model.latency Unit_model.Qr_unit ~qr_rotators:8 i ~src_shape:src in
  let wide = Unit_model.latency Unit_model.Qr_unit ~qr_rotators:32 i ~src_shape:src in
  Alcotest.(check bool) "wide is faster" true (wide < narrow);
  (* But wide costs more resources. *)
  let rn = Unit_model.resources Unit_model.Qr_unit ~qr_rotators:8 in
  let rw = Unit_model.resources Unit_model.Qr_unit ~qr_rotators:32 in
  Alcotest.(check bool) "wide costs more" true (rw.Resource.dsp > rn.Resource.dsp)

let test_energy_positive () =
  let src _ = (3, 3) in
  let i = mk_instr ~op:Instr.Gemm ~rows:3 ~cols:3 ~srcs:[| 0; 0 |] () in
  Alcotest.(check bool) "positive" true
    (Unit_model.dynamic_energy_nj Unit_model.Matmul i ~src_shape:src > 0.0)

(* ---------- Accel ---------- *)

let test_accel_base () =
  let a = Accel.base () in
  List.iter
    (fun cls -> Alcotest.(check int) (Unit_model.class_name cls) 1 (Accel.count a cls))
    Unit_model.all_classes;
  Alcotest.(check bool) "fits zc706" true (Accel.fits a ~budget:Resource.zc706)

let test_accel_with_extra () =
  let a = Accel.with_extra (Accel.base ()) Unit_model.Matmul in
  Alcotest.(check int) "two matmuls" 2 (Accel.count a Unit_model.Matmul);
  Alcotest.(check int) "one qr" 1 (Accel.count a Unit_model.Qr_unit);
  let r1 = Accel.resources (Accel.base ()) and r2 = Accel.resources a in
  Alcotest.(check bool) "more resources" true (r2.Resource.dsp > r1.Resource.dsp)

let test_accel_wider_qr () =
  let a = Accel.with_wider_qr (Accel.base ()) in
  Alcotest.(check int) "rotators doubled" (2 * Unit_model.default_qr_rotators) a.Accel.qr_rotators

let test_accel_rejects_bad_counts () =
  Alcotest.check_raises "zero count" (Invalid_argument "Accel: unit counts must be positive")
    (fun () -> ignore (Accel.make ~name:"bad" ~counts:[ (Unit_model.Matmul, 0) ] ()))

let test_static_power_grows () =
  let base = Accel.base () in
  let bigger = Accel.with_extra base Unit_model.Matmul in
  Alcotest.(check bool) "power grows" true (Accel.static_power_w bigger > Accel.static_power_w base)

(* ---------- DSE ---------- *)

(* Synthetic objective: more matmuls help with diminishing returns;
   everything else is neutral. *)
let synthetic_objective accel =
  100.0 /. (1.0 +. float_of_int (Accel.count accel Unit_model.Matmul))

let test_dse_improves () =
  let r = Dse.optimize ~budget:Resource.zc706 ~evaluate:synthetic_objective () in
  Alcotest.(check bool) "objective improved" true
    (r.Dse.objective < synthetic_objective (Accel.base ()));
  Alcotest.(check bool) "added matmuls" true (Accel.count r.Dse.best Unit_model.Matmul > 1);
  Alcotest.(check bool) "still fits" true (Accel.fits r.Dse.best ~budget:Resource.zc706)

let test_dse_respects_budget () =
  (* A budget that allows the base config and one more matmul only. *)
  let base_r = Accel.resources (Accel.base ()) in
  let matmul_r = Unit_model.resources Unit_model.Matmul ~qr_rotators:8 in
  let budget =
    {
      Resource.lut = base_r.Resource.lut + matmul_r.Resource.lut;
      ff = base_r.Resource.ff + matmul_r.Resource.ff;
      bram = base_r.Resource.bram + matmul_r.Resource.bram;
      dsp = base_r.Resource.dsp + matmul_r.Resource.dsp;
    }
  in
  let r = Dse.optimize ~budget ~evaluate:synthetic_objective () in
  Alcotest.(check int) "stopped at two matmuls" 2 (Accel.count r.Dse.best Unit_model.Matmul);
  Alcotest.(check bool) "fits" true (Accel.fits r.Dse.best ~budget)

let test_dse_rejects_oversized_init () =
  let tiny = { Resource.lut = 1; ff = 1; bram = 1; dsp = 1 } in
  Alcotest.check_raises "oversized init"
    (Invalid_argument "Dse.optimize: initial configuration exceeds the budget") (fun () ->
      ignore (Dse.optimize ~budget:tiny ~evaluate:synthetic_objective ()))

let test_dse_trace_monotone () =
  let r = Dse.optimize ~budget:Resource.zc706 ~evaluate:synthetic_objective () in
  let objectives = List.map (fun (s : Dse.step) -> s.Dse.objective) r.Dse.trace in
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "trace strictly improves" true (strictly_decreasing objectives)

(* ---------- Datapath ---------- *)

let test_datapath_links () =
  (* Load -> Gemm -> Qr: DMA->matmul and matmul->qr links only. *)
  let b = Program.Builder.create () in
  let l1 =
    Program.Builder.emit b ~op:(Instr.Load (Orianna_linalg.Mat.identity 3)) ~srcs:[||] ~rows:3
      ~cols:3 ~phase:Instr.Construct ~algo:0 ~tag:""
  in
  let g =
    Program.Builder.emit b ~op:Instr.Gemm ~srcs:[| l1; l1 |] ~rows:3 ~cols:3
      ~phase:Instr.Construct ~algo:0 ~tag:""
  in
  let _ =
    Program.Builder.emit b ~op:Instr.Qr ~srcs:[| g |] ~rows:3 ~cols:3 ~phase:Instr.Decompose
      ~algo:0 ~tag:""
  in
  let p = Program.Builder.finish b ~outputs:[] in
  let dp = Datapath.generate p in
  Alcotest.(check int) "two links" 2 (Datapath.link_count dp);
  Alcotest.(check bool) "fewer than crossbar" true
    (Datapath.link_count dp < Datapath.crossbar_link_count);
  let has src dst =
    List.exists (fun (l : Datapath.link) -> l.Datapath.src = src && l.Datapath.dst = dst) dp.Datapath.links
  in
  Alcotest.(check bool) "dma->matmul" true (has Unit_model.Dma Unit_model.Matmul);
  Alcotest.(check bool) "matmul->qr" true (has Unit_model.Matmul Unit_model.Qr_unit);
  Alcotest.(check bool) "dma->matmul carries 2 transfers" true
    (List.exists
       (fun (l : Datapath.link) -> l.Datapath.src = Unit_model.Dma && l.Datapath.transfers = 2)
       dp.Datapath.links)

let () =
  Alcotest.run "hw"
    [
      ( "resource",
        [
          Alcotest.test_case "arith" `Quick test_resource_arith;
          Alcotest.test_case "fits" `Quick test_resource_fits;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
        ] );
      ( "unit-model",
        [
          Alcotest.test_case "op mapping" `Quick test_op_unit_mapping;
          Alcotest.test_case "latency monotone" `Quick test_latency_monotone_in_size;
          Alcotest.test_case "wider qr" `Quick test_wider_qr_is_faster_on_big_matrices;
          Alcotest.test_case "energy positive" `Quick test_energy_positive;
        ] );
      ( "accel",
        [
          Alcotest.test_case "base" `Quick test_accel_base;
          Alcotest.test_case "with extra" `Quick test_accel_with_extra;
          Alcotest.test_case "wider qr" `Quick test_accel_wider_qr;
          Alcotest.test_case "bad counts" `Quick test_accel_rejects_bad_counts;
          Alcotest.test_case "static power" `Quick test_static_power_grows;
        ] );
      ( "dse",
        [
          Alcotest.test_case "improves" `Quick test_dse_improves;
          Alcotest.test_case "respects budget" `Quick test_dse_respects_budget;
          Alcotest.test_case "rejects oversized init" `Quick test_dse_rejects_oversized_init;
          Alcotest.test_case "trace monotone" `Quick test_dse_trace_monotone;
        ] );
      ("datapath", [ Alcotest.test_case "links" `Quick test_datapath_links ]);
    ]
