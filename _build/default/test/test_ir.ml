open Orianna_linalg
open Orianna_lie
open Orianna_ir
open Orianna_util

let check_mat msg ?(eps = 1e-8) a b =
  if not (Mat.equal ~eps a b) then
    Alcotest.failf "%s:@.%a@.vs@.%a" msg (fun ppf -> Mat.pp ppf) a (fun ppf -> Mat.pp ppf) b

let check_vec msg ?(eps = 1e-8) a b =
  if not (Vec.equal ~eps a b) then
    Alcotest.failf "%s: %a vs %a" msg (fun ppf -> Vec.pp ppf) a (fun ppf -> Vec.pp ppf) b

(* An environment assigns each leaf a value. *)
type env = (Expr.leaf * Value.t) list

let dim_of (env : env) leaf = Value.type_of (List.assoc leaf env)
let lookup (env : env) leaf = List.assoc leaf env

(* Perturb one leaf along tangent coordinate [k] by [eps]:
   rotations via right multiplication by Exp, vectors additively. *)
let perturb (env : env) leaf k eps : env =
  List.map
    (fun (l, v) ->
      if l <> leaf then (l, v)
      else
        match v with
        | Value.Rot r ->
            let n, _ = Mat.dims r in
            if n = 2 then (l, Value.Rot (Mat.mul r (So2.exp eps)))
            else begin
              let d = Vec.create 3 in
              d.(k) <- eps;
              (l, Value.Rot (Mat.mul r (So3.exp d)))
            end
        | Value.Vc vec ->
            let vec' = Vec.copy vec in
            vec'.(k) <- vec'.(k) +. eps;
            (l, Value.Vc vec'))
    env

let numeric_jacobian g env leaf =
  let base = Modfg.error g ~lookup:(lookup env) in
  let tdim = Value.tangent_dim (Value.type_of (List.assoc leaf env)) in
  let eps = 1e-6 in
  let cols =
    List.init tdim (fun k ->
        let plus = Modfg.error g ~lookup:(lookup (perturb env leaf k eps)) in
        let minus = Modfg.error g ~lookup:(lookup (perturb env leaf k (-.eps))) in
        Vec.scale (1.0 /. (2.0 *. eps)) (Vec.sub plus minus))
  in
  Mat.init (Vec.dim base) tdim (fun i j -> (List.nth cols j).(i))

let check_all_jacobians ?(eps = 1e-5) name g env =
  let values = Modfg.eval g ~lookup:(lookup env) in
  let jacs = Modfg.jacobians g ~values in
  List.iter
    (fun (leaf, analytic) ->
      let numeric = numeric_jacobian g env leaf in
      check_mat (Printf.sprintf "%s: jacobian wrt %s" name (Format.asprintf "%a" Expr.pp_leaf leaf))
        ~eps numeric analytic)
    jacs

let rng () = Rng.of_int 2024

let random_rot3 r = So3.random r
let random_vec3 r = Array.init 3 (fun _ -> Rng.uniform r ~lo:(-2.0) ~hi:2.0)

(* ---------- construction ---------- *)

let test_build_shares_subexpressions () =
  (* R_j^T appears in both error components of the between factor
     (Equ. 4): it must be a single node. *)
  let exprs =
    Expr.between_error ~pose_dim:3 ~x_i:"xi" ~x_j:"xj" ~z_rot:(Mat.identity 3)
      ~z_trans:(Vec.create 3)
  in
  let dim_of = function
    | Expr.Rot_of _ -> Value.Trot 3
    | Expr.Trans_of _ -> Value.Tvec 3
    | Expr.Vec_of _ -> Value.Tvec 3
  in
  let g = Modfg.build ~dim_of exprs in
  let rt_count =
    Array.fold_left
      (fun acc (n : Modfg.node) -> match n.op with Modfg.Op_rt -> acc + 1 | _ -> acc)
      0 (Modfg.nodes g)
  in
  Alcotest.(check int) "one shared RT node" 1 rt_count;
  Alcotest.(check int) "error dim" 6 (Modfg.error_dim g)

let test_build_rejects_type_error () =
  let bad = Expr.(log_map (vec_var "v")) in
  let dim_of = function Expr.Vec_of _ -> Value.Tvec 3 | _ -> Value.Trot 3 in
  Alcotest.check_raises "log of vector"
    (Invalid_argument "Modfg.build: expected a rotation operand") (fun () ->
      ignore (Modfg.build ~dim_of [ bad ]))

let test_build_rejects_rot_output () =
  let dim_of = function Expr.Rot_of _ -> Value.Trot 3 | _ -> Value.Tvec 3 in
  Alcotest.check_raises "rotation output"
    (Invalid_argument "Modfg.build: error components must be vector-typed") (fun () ->
      ignore (Modfg.build ~dim_of [ Expr.rot_var "r" ]))

let test_levels () =
  (* Leaves at level 0, ops stacked above. *)
  let e = Expr.(log_map (transpose (rot_var "a") *^ rot_var "b")) in
  let dim_of = function Expr.Rot_of _ -> Value.Trot 3 | _ -> Value.Tvec 3 in
  let g = Modfg.build ~dim_of [ e ] in
  Alcotest.(check int) "depth" 4 (Modfg.depth g);
  let sizes = Modfg.level_sizes g in
  Alcotest.(check int) "two leaves at level 0" 2 sizes.(0)

let test_op_census () =
  let e = Expr.(log_map (transpose (rot_var "a") *^ rot_var "b")) in
  let dim_of = function Expr.Rot_of _ -> Value.Trot 3 | _ -> Value.Tvec 3 in
  let g = Modfg.build ~dim_of [ e ] in
  let census = Modfg.op_census g in
  Alcotest.(check (option int)) "one RT" (Some 1) (List.assoc_opt "RT" census);
  Alcotest.(check (option int)) "one RR" (Some 1) (List.assoc_opt "RR" census);
  Alcotest.(check (option int)) "one Log" (Some 1) (List.assoc_opt "Log" census)

(* ---------- forward evaluation ---------- *)

let test_forward_between_matches_direct () =
  let r = rng () in
  let ri = random_rot3 r and rj = random_rot3 r in
  let ti = random_vec3 r and tj = random_vec3 r in
  let zr = random_rot3 r and zt = random_vec3 r in
  let exprs = Expr.between_error ~pose_dim:3 ~x_i:"xi" ~x_j:"xj" ~z_rot:zr ~z_trans:zt in
  let env : env =
    [
      (Expr.Rot_of "xi", Value.Rot ri);
      (Expr.Trans_of "xi", Value.Vc ti);
      (Expr.Rot_of "xj", Value.Rot rj);
      (Expr.Trans_of "xj", Value.Vc tj);
    ]
  in
  let g = Modfg.build ~dim_of:(dim_of env) exprs in
  let err = Modfg.error g ~lookup:(lookup env) in
  (* Direct computation of Equ. 4. *)
  let zrt = Mat.transpose zr in
  let e_o = So3.log (Mat.mul zrt (Mat.mul (Mat.transpose rj) ri)) in
  let e_p = Mat.mul_vec zrt (Vec.sub (Mat.mul_vec (Mat.transpose rj) (Vec.sub ti tj)) zt) in
  check_vec "between error" (Vec.concat [ e_o; e_p ]) err

let test_forward_pose_ominus_equivalence () =
  (* The between error with identity measurement equals the tangent
     coordinates of (xi ominus xj). *)
  let r = rng () in
  let pi = Pose3.random r ~scale:2.0 and pj = Pose3.random r ~scale:2.0 in
  let exprs =
    Expr.between_error ~pose_dim:3 ~x_i:"xi" ~x_j:"xj" ~z_rot:(Mat.identity 3)
      ~z_trans:(Vec.create 3)
  in
  let env : env =
    [
      (Expr.Rot_of "xi", Value.Rot (Pose3.rotation pi));
      (Expr.Trans_of "xi", Value.Vc (Pose3.translation pi));
      (Expr.Rot_of "xj", Value.Rot (Pose3.rotation pj));
      (Expr.Trans_of "xj", Value.Vc (Pose3.translation pj));
    ]
  in
  let g = Modfg.build ~dim_of:(dim_of env) exprs in
  let err = Modfg.error g ~lookup:(lookup env) in
  let rel = Pose3.ominus pi pj in
  check_vec "ominus" (Vec.concat [ Pose3.phi rel; Pose3.translation rel ]) err

(* ---------- backward propagation vs numeric differentiation ---------- *)

let test_backward_between_3d () =
  let r = rng () in
  for _ = 1 to 5 do
    let zr = random_rot3 r and zt = random_vec3 r in
    let exprs = Expr.between_error ~pose_dim:3 ~x_i:"xi" ~x_j:"xj" ~z_rot:zr ~z_trans:zt in
    let env : env =
      [
        (Expr.Rot_of "xi", Value.Rot (random_rot3 r));
        (Expr.Trans_of "xi", Value.Vc (random_vec3 r));
        (Expr.Rot_of "xj", Value.Rot (random_rot3 r));
        (Expr.Trans_of "xj", Value.Vc (random_vec3 r));
      ]
    in
    let g = Modfg.build ~dim_of:(dim_of env) exprs in
    check_all_jacobians "between3d" g env
  done

let test_backward_between_2d () =
  let r = rng () in
  for _ = 1 to 5 do
    let zr = So2.exp (Rng.uniform r ~lo:(-1.0) ~hi:1.0) in
    let zt = Array.init 2 (fun _ -> Rng.uniform r ~lo:(-1.0) ~hi:1.0) in
    let exprs = Expr.between_error ~pose_dim:2 ~x_i:"xi" ~x_j:"xj" ~z_rot:zr ~z_trans:zt in
    let env : env =
      [
        (Expr.Rot_of "xi", Value.Rot (So2.random r));
        (Expr.Trans_of "xi", Value.Vc (Array.init 2 (fun _ -> Rng.uniform r ~lo:(-1.0) ~hi:1.0)));
        (Expr.Rot_of "xj", Value.Rot (So2.random r));
        (Expr.Trans_of "xj", Value.Vc (Array.init 2 (fun _ -> Rng.uniform r ~lo:(-1.0) ~hi:1.0)));
      ]
    in
    let g = Modfg.build ~dim_of:(dim_of env) exprs in
    check_all_jacobians "between2d" g env
  done

let test_backward_exp_chain () =
  (* e = Log(Exp(v) R): exercises Exp and its right Jacobian. *)
  let r = rng () in
  let e = Expr.(log_map (exp_map (vec_var "v") *^ rot_var "r")) in
  let env : env =
    [
      (Expr.Vec_of "v", Value.Vc (Vec.scale 0.3 (random_vec3 r)));
      (Expr.Rot_of "r", Value.Rot (So3.exp (Vec.scale 0.2 (random_vec3 r))));
    ]
  in
  let g = Modfg.build ~dim_of:(dim_of env) [ e ] in
  check_all_jacobians "exp chain" g env

let test_backward_rv_and_scale () =
  (* e = 2.5 * (R (a - b)) + a: mixes RV, VP and Vscale. *)
  let r = rng () in
  let e =
    Expr.(scale 2.5 (rot_var "r" *> (vec_var "a" - vec_var "b")) + vec_var "a")
  in
  let env : env =
    [
      (Expr.Rot_of "r", Value.Rot (random_rot3 r));
      (Expr.Vec_of "a", Value.Vc (random_vec3 r));
      (Expr.Vec_of "b", Value.Vc (random_vec3 r));
    ]
  in
  let g = Modfg.build ~dim_of:(dim_of env) [ e ] in
  check_all_jacobians "rv scale" g env

let test_backward_transpose_apply () =
  (* e = R^T (a - t): the localization "world to body" pattern. *)
  let r = rng () in
  let e = Expr.(transpose (rot_var "x") *> (vec_var "a" - trans_var "x")) in
  let env : env =
    [
      (Expr.Rot_of "x", Value.Rot (random_rot3 r));
      (Expr.Trans_of "x", Value.Vc (random_vec3 r));
      (Expr.Vec_of "a", Value.Vc (random_vec3 r));
    ]
  in
  let g = Modfg.build ~dim_of:(dim_of env) [ e ] in
  check_all_jacobians "transpose apply" g env

let test_backward_multi_output () =
  (* Two error components sharing structure: offsets must be right. *)
  let r = rng () in
  let e1 = Expr.(rot_var "r" *> vec_var "a") in
  let e2 = Expr.(vec_var "a" - vec_var "b") in
  let env : env =
    [
      (Expr.Rot_of "r", Value.Rot (random_rot3 r));
      (Expr.Vec_of "a", Value.Vc (random_vec3 r));
      (Expr.Vec_of "b", Value.Vc (random_vec3 r));
    ]
  in
  let g = Modfg.build ~dim_of:(dim_of env) [ e1; e2 ] in
  Alcotest.(check int) "stacked dim" 6 (Modfg.error_dim g);
  check_all_jacobians "multi output" g env

let test_backward_unused_leaf_zero () =
  (* A declared leaf that no output depends on gets a zero block. *)
  let e = Expr.(vec_var "a" - vec_var "a") in
  let env : env = [ (Expr.Vec_of "a", Value.Vc [| 1.0; 2.0; 3.0 |]) ] in
  let g = Modfg.build ~dim_of:(dim_of env) [ e ] in
  let values = Modfg.eval g ~lookup:(lookup env) in
  let jacs = Modfg.jacobians g ~values in
  let j = List.assoc (Expr.Vec_of "a") jacs in
  check_mat "cancelled jacobian" (Mat.create 3 3) j

(* ---------- postfix form (Sec. 5.2) ---------- *)

let test_postfix_roundtrip_between () =
  let exprs =
    Expr.between_error ~pose_dim:3 ~x_i:"xi" ~x_j:"xj" ~z_rot:(Mat.identity 3)
      ~z_trans:[| 1.0; 2.0; 3.0 |]
  in
  List.iter
    (fun e ->
      let e' = Expr.of_postfix (Expr.to_postfix e) in
      Alcotest.(check bool) "roundtrip" true (e = e'))
    exprs

let test_postfix_roundtrip_random_shapes () =
  let open Expr in
  let samples =
    [
      vec_var "a" + vec_var "b";
      scale 2.0 (transpose (rot_var "r") *> (vec_var "a" - trans_var "x"));
      log_map (exp_map (vec_var "v") *^ rot_var "r");
      const_vec [| 1.0 |] - vec_var "w";
    ]
  in
  List.iter
    (fun e -> Alcotest.(check bool) "roundtrip" true (Expr.of_postfix (Expr.to_postfix e) = e))
    samples

let test_postfix_order_is_postorder () =
  (* a b VP+ for (a + b). *)
  let open Expr in
  match Expr.to_postfix (vec_var "a" + vec_var "b") with
  | [ Expr.Tleaf (Expr.Vec_of "a"); Expr.Tleaf (Expr.Vec_of "b"); Expr.Tvadd ] -> ()
  | _ -> Alcotest.fail "unexpected token order"

let test_postfix_malformed () =
  Alcotest.(check bool) "missing operand" true
    (try
       ignore (Expr.of_postfix [ Expr.Tvadd ]);
       false
     with Expr.Malformed_postfix _ -> true);
  Alcotest.(check bool) "leftover" true
    (try
       ignore (Expr.of_postfix [ Expr.Tleaf (Expr.Vec_of "a"); Expr.Tleaf (Expr.Vec_of "b") ]);
       false
     with Expr.Malformed_postfix _ -> true);
  Alcotest.(check bool) "empty" true
    (try
       ignore (Expr.of_postfix []);
       false
     with Expr.Malformed_postfix _ -> true)

let test_postfix_builds_same_modfg () =
  (* Parsing the postfix stream and building the MO-DFG gives the same
     graph as the direct expression (the paper's construction path). *)
  let exprs =
    Expr.between_error ~pose_dim:3 ~x_i:"xi" ~x_j:"xj" ~z_rot:(So3.exp [| 0.1; 0.2; 0.0 |])
      ~z_trans:[| 0.5; 0.0; 1.0 |]
  in
  let reparsed = List.map (fun e -> Expr.of_postfix (Expr.to_postfix e)) exprs in
  let dim_of = function
    | Expr.Rot_of _ -> Value.Trot 3
    | Expr.Trans_of _ -> Value.Tvec 3
    | Expr.Vec_of _ -> Value.Tvec 3
  in
  let g1 = Modfg.build ~dim_of exprs in
  let g2 = Modfg.build ~dim_of reparsed in
  Alcotest.(check int) "same node count" (Array.length (Modfg.nodes g1))
    (Array.length (Modfg.nodes g2));
  Alcotest.(check bool) "same census" true (Modfg.op_census g1 = Modfg.op_census g2)

(* ---------- expr helpers ---------- *)

let test_expr_variables () =
  let exprs =
    Expr.between_error ~pose_dim:3 ~x_i:"xi" ~x_j:"xj" ~z_rot:(Mat.identity 3)
      ~z_trans:(Vec.create 3)
  in
  let vars = List.concat_map Expr.variables exprs in
  Alcotest.(check bool) "mentions xi" true (List.mem "xi" vars);
  Alcotest.(check bool) "mentions xj" true (List.mem "xj" vars)

let test_expr_size () =
  Alcotest.(check int) "leaf size" 1 (Expr.size (Expr.vec_var "a"));
  Alcotest.(check int) "sum size" 3 Expr.(size (vec_var "a" + vec_var "b"))

let () =
  Alcotest.run "ir"
    [
      ( "build",
        [
          Alcotest.test_case "shares subexpressions" `Quick test_build_shares_subexpressions;
          Alcotest.test_case "rejects type error" `Quick test_build_rejects_type_error;
          Alcotest.test_case "rejects rotation output" `Quick test_build_rejects_rot_output;
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "op census" `Quick test_op_census;
        ] );
      ( "forward",
        [
          Alcotest.test_case "between matches direct" `Quick test_forward_between_matches_direct;
          Alcotest.test_case "ominus equivalence" `Quick test_forward_pose_ominus_equivalence;
        ] );
      ( "backward",
        [
          Alcotest.test_case "between 3d" `Quick test_backward_between_3d;
          Alcotest.test_case "between 2d" `Quick test_backward_between_2d;
          Alcotest.test_case "exp chain" `Quick test_backward_exp_chain;
          Alcotest.test_case "rv + scale" `Quick test_backward_rv_and_scale;
          Alcotest.test_case "transpose apply" `Quick test_backward_transpose_apply;
          Alcotest.test_case "multi output" `Quick test_backward_multi_output;
          Alcotest.test_case "cancelled leaf" `Quick test_backward_unused_leaf_zero;
        ] );
      ( "expr",
        [
          Alcotest.test_case "variables" `Quick test_expr_variables;
          Alcotest.test_case "size" `Quick test_expr_size;
        ] );
      ( "postfix",
        [
          Alcotest.test_case "roundtrip between" `Quick test_postfix_roundtrip_between;
          Alcotest.test_case "roundtrip shapes" `Quick test_postfix_roundtrip_random_shapes;
          Alcotest.test_case "postorder" `Quick test_postfix_order_is_postorder;
          Alcotest.test_case "malformed" `Quick test_postfix_malformed;
          Alcotest.test_case "same MO-DFG" `Quick test_postfix_builds_same_modfg;
        ] );
    ]
