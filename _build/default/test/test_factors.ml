open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_factors
open Orianna_util

let check_vec msg ?(eps = 1e-8) a b =
  if not (Vec.equal ~eps a b) then
    Alcotest.failf "%s: %a vs %a" msg (fun ppf -> Vec.pp ppf) a (fun ppf -> Vec.pp ppf) b

let check_mat msg ?(eps = 1e-8) a b =
  if not (Mat.equal ~eps a b) then
    Alcotest.failf "%s:@.%a@.vs@.%a" msg (fun ppf -> Mat.pp ppf) a (fun ppf -> Mat.pp ppf) b

(* Generic harness: the whitened analytic Jacobians of a factor must
   match central finite differences of the whitened error under the
   variables' retractions. *)
let check_factor_jacobians ?(eps = 1e-5) name factor (values : (string * Var.t) list) =
  let lookup_of vals v = List.assoc v vals in
  let base_lookup = lookup_of values in
  let _, blocks = Factor.linearize factor base_lookup in
  List.iter
    (fun (v, analytic) ->
      let value = List.assoc v values in
      let d = Var.dim value in
      let h = 1e-6 in
      let numeric =
        Mat.init (Vec.dim (Factor.error factor base_lookup)) d (fun i k ->
            let tangent s =
              let t = Vec.create d in
              t.(k) <- s;
              t
            in
            let vals_plus = (v, Var.retract value (tangent h)) :: List.remove_assoc v values in
            let vals_minus = (v, Var.retract value (tangent (-.h))) :: List.remove_assoc v values in
            let ep = Factor.error factor (lookup_of vals_plus) in
            let em = Factor.error factor (lookup_of vals_minus) in
            (ep.(i) -. em.(i)) /. (2.0 *. h))
      in
      check_mat (Printf.sprintf "%s: jacobian wrt %s" name v) ~eps numeric analytic)
    blocks

let rng () = Rng.of_int 4242

(* ---------- pose factors ---------- *)

let test_prior3_zero_at_truth () =
  let r = rng () in
  let z = Pose3.random r ~scale:2.0 in
  let f = Pose_factors.prior3 ~name:"prior" ~var:"x" ~z ~sigma:0.5 in
  let lookup _ = Var.Pose3 z in
  check_vec "zero error" (Vec.create 6) (Factor.error f lookup)

let test_prior3_jacobians () =
  let r = rng () in
  for _ = 1 to 3 do
    let z = Pose3.random r ~scale:2.0 in
    let f = Pose_factors.prior3 ~name:"prior" ~var:"x" ~z ~sigma:0.7 in
    check_factor_jacobians "prior3" f [ ("x", Var.Pose3 (Pose3.random r ~scale:2.0)) ]
  done

let test_prior2_jacobians () =
  let r = rng () in
  let z = Pose2.random r ~scale:2.0 in
  let f = Pose_factors.prior2 ~name:"prior" ~var:"x" ~z ~sigma:0.7 in
  check_factor_jacobians "prior2" f [ ("x", Var.Pose2 (Pose2.random r ~scale:2.0)) ]

let test_between3_zero_at_truth () =
  let r = rng () in
  let a = Pose3.random r ~scale:2.0 and b = Pose3.random r ~scale:2.0 in
  let z = Pose3.ominus b a in
  let f = Pose_factors.between3 ~name:"between" ~a:"a" ~b:"b" ~z ~sigma:0.3 in
  let lookup = function "a" -> Var.Pose3 a | _ -> Var.Pose3 b in
  check_vec "zero error" ~eps:1e-7 (Vec.create 6) (Factor.error f lookup)

let test_between3_jacobians () =
  let r = rng () in
  for _ = 1 to 3 do
    let z = Pose3.random r ~scale:1.0 in
    let f = Pose_factors.between3 ~name:"between" ~a:"a" ~b:"b" ~z ~sigma:0.3 in
    check_factor_jacobians "between3" f
      [ ("a", Var.Pose3 (Pose3.random r ~scale:2.0)); ("b", Var.Pose3 (Pose3.random r ~scale:2.0)) ]
  done

let test_between2_jacobians () =
  let r = rng () in
  let z = Pose2.random r ~scale:1.0 in
  let f = Pose_factors.between2 ~name:"between" ~a:"a" ~b:"b" ~z ~sigma:0.3 in
  check_factor_jacobians "between2" f
    [ ("a", Var.Pose2 (Pose2.random r ~scale:2.0)); ("b", Var.Pose2 (Pose2.random r ~scale:2.0)) ]

let test_gps3_jacobians () =
  let r = rng () in
  let f = Pose_factors.gps3 ~name:"gps" ~var:"x" ~z:[| 1.0; 2.0; 3.0 |] ~sigma:0.2 in
  check_factor_jacobians "gps3" f [ ("x", Var.Pose3 (Pose3.random r ~scale:2.0)) ]

let test_lidar_landmark3_jacobians () =
  let r = rng () in
  let f =
    Pose_factors.lidar_landmark3 ~name:"lidar" ~pose:"x" ~landmark:"l" ~z:[| 1.0; 0.5; -0.2 |]
      ~sigma:0.1
  in
  check_factor_jacobians "lidar3" f
    [
      ("x", Var.Pose3 (Pose3.random r ~scale:2.0));
      ("l", Var.Vector [| 3.0; -1.0; 2.0 |]);
    ]

let test_lidar_landmark2_jacobians () =
  let r = rng () in
  let f =
    Pose_factors.lidar_landmark2 ~name:"lidar" ~pose:"x" ~landmark:"l" ~z:[| 1.0; 0.5 |] ~sigma:0.1
  in
  check_factor_jacobians "lidar2" f
    [ ("x", Var.Pose2 (Pose2.random r ~scale:2.0)); ("l", Var.Vector [| 3.0; -1.0 |]) ]

let test_lidar_zero_at_truth () =
  let r = rng () in
  let p = Pose3.random r ~scale:1.0 in
  let l = [| 2.0; 1.0; 0.5 |] in
  let z = Mat.mul_vec (Mat.transpose (Pose3.rotation p)) (Vec.sub l (Pose3.translation p)) in
  let f = Pose_factors.lidar_landmark3 ~name:"lidar" ~pose:"x" ~landmark:"l" ~z ~sigma:0.1 in
  let lookup = function "x" -> Var.Pose3 p | _ -> Var.Vector l in
  check_vec "zero" ~eps:1e-9 (Vec.create 3) (Factor.error f lookup)

(* ---------- vision factors ---------- *)

let camera_setup () =
  let pose = Pose3.of_phi_t [| 0.05; -0.1; 0.02 |] [| 0.2; -0.1; 0.0 |] in
  let landmark = [| 0.4; 0.3; 3.0 |] in
  let k = Vision_factors.default_intrinsics in
  let p_cam =
    Mat.mul_vec (Mat.transpose (Pose3.rotation pose)) (Vec.sub landmark (Pose3.translation pose))
  in
  (pose, landmark, k, Vision_factors.project k p_cam)

let test_camera_zero_at_truth () =
  let pose, landmark, _, z = camera_setup () in
  let f = Vision_factors.camera ~name:"cam" ~pose:"x" ~landmark:"l" ~z ~sigma:1.0 () in
  let lookup = function "x" -> Var.Pose3 pose | _ -> Var.Vector landmark in
  check_vec "zero" ~eps:1e-9 (Vec.create 2) (Factor.error f lookup)

let test_camera_jacobians () =
  let pose, landmark, _, z = camera_setup () in
  let z = Vec.add z [| 1.5; -2.0 |] in
  let f = Vision_factors.camera ~name:"cam" ~pose:"x" ~landmark:"l" ~z ~sigma:1.0 () in
  check_factor_jacobians ~eps:2e-3 "camera" f
    [ ("x", Var.Pose3 pose); ("l", Var.Vector landmark) ]

let test_camera_jacobian_shapes () =
  (* The paper: camera factor has a 2x6 block and a 2x3 block. *)
  let pose, landmark, _, z = camera_setup () in
  let f = Vision_factors.camera ~name:"cam" ~pose:"x" ~landmark:"l" ~z ~sigma:1.0 () in
  let lookup = function "x" -> Var.Pose3 pose | _ -> Var.Vector landmark in
  let _, blocks = Factor.linearize f lookup in
  Alcotest.(check (pair int int)) "pose block" (2, 6) (Mat.dims (List.assoc "x" blocks));
  Alcotest.(check (pair int int)) "landmark block" (2, 3) (Mat.dims (List.assoc "l" blocks))

let test_camera_behind () =
  let pose = Pose3.identity in
  let landmark = [| 0.0; 0.0; -1.0 |] in
  let f = Vision_factors.camera ~name:"cam" ~pose:"x" ~landmark:"l" ~z:[| 0.0; 0.0 |] ~sigma:1.0 () in
  let lookup = function "x" -> Var.Pose3 pose | _ -> Var.Vector landmark in
  Alcotest.check_raises "behind camera" (Vision_factors.Behind_camera "cam") (fun () ->
      ignore (Factor.linearize f lookup))

let test_bearing_range_jacobians () =
  let pose = Pose2.create ~theta:0.4 ~t:[| 1.0; 2.0 |] in
  let landmark = [| 4.0; 3.5 |] in
  let f =
    Vision_factors.bearing_range2 ~name:"br" ~pose:"x" ~landmark:"l" ~bearing:0.2 ~range:2.5
      ~sigma:0.5
  in
  check_factor_jacobians ~eps:1e-4 "bearing-range" f
    [ ("x", Var.Pose2 pose); ("l", Var.Vector landmark) ]

(* ---------- motion factors ---------- *)

let test_smooth_zero_on_constant_velocity () =
  let dt = 0.5 in
  let xa = [| 0.0; 0.0; 1.0; 2.0 |] in
  (* p' = p + v dt *)
  let xb = [| 0.5; 1.0; 1.0; 2.0 |] in
  let f = Motion_factors.smooth ~name:"gp" ~a:"a" ~b:"b" ~dt ~d:2 ~sigma:0.1 in
  let lookup = function "a" -> Var.Vector xa | _ -> Var.Vector xb in
  check_vec "zero" (Vec.create 4) (Factor.error f lookup)

let test_smooth_jacobians () =
  let f = Motion_factors.smooth ~name:"gp" ~a:"a" ~b:"b" ~dt:0.3 ~d:3 ~sigma:0.2 in
  check_factor_jacobians "smooth" f
    [
      ("a", Var.Vector [| 0.1; 0.2; 0.3; 1.0; -1.0; 0.5 |]);
      ("b", Var.Vector [| 0.4; 0.1; 0.2; 0.9; -1.1; 0.6 |]);
    ]

let test_collision_inactive_outside () =
  let obstacle = { Motion_factors.center = [| 0.0; 0.0 |]; radius = 1.0 } in
  let f =
    Motion_factors.collision_free ~name:"obs" ~var:"x" ~obstacle ~safety:0.2 ~sigma:0.1
  in
  let lookup _ = Var.Vector [| 5.0; 0.0; 0.0; 0.0 |] in
  check_vec "inactive" [| 0.0 |] (Factor.error f lookup)

let test_collision_active_inside () =
  let obstacle = { Motion_factors.center = [| 0.0; 0.0 |]; radius = 1.0 } in
  let f =
    Motion_factors.collision_free ~name:"obs" ~var:"x" ~obstacle ~safety:0.5 ~sigma:1.0
  in
  (* distance 1.2 - radius 1.0 = clearance 0.2 < safety 0.5: e = 0.3 *)
  let lookup _ = Var.Vector [| 1.2; 0.0; 0.0; 0.0 |] in
  check_vec "active" ~eps:1e-9 [| 0.3 |] (Factor.error f lookup);
  check_factor_jacobians "collision" f [ ("x", Var.Vector [| 1.2; 0.0; 0.0; 0.0 |]) ]

let test_speed_limit () =
  let f = Motion_factors.speed_limit ~name:"kin" ~var:"x" ~d:2 ~vmax:1.0 ~sigma:1.0 in
  let slow _ = Var.Vector [| 0.0; 0.0; 0.5; 0.5 |] in
  check_vec "under limit" [| 0.0 |] (Factor.error f slow);
  let fast = [| 0.0; 0.0; 3.0; 4.0 |] in
  let lookup _ = Var.Vector fast in
  check_vec "over limit" ~eps:1e-9 [| 4.0 |] (Factor.error f lookup);
  check_factor_jacobians "speed" f [ ("x", Var.Vector fast) ]

let test_dynamics_zero_and_jacobians () =
  let a_mat, b_mat = Motion_factors.double_integrator ~d:2 ~dt:0.1 in
  let f =
    Motion_factors.dynamics ~name:"dyn" ~x_prev:"x0" ~u:"u0" ~x_next:"x1" ~a_mat ~b_mat ~sigma:0.05
  in
  let x0 = [| 1.0; 2.0; 0.5; -0.5 |] in
  let u0 = [| 0.2; 0.1 |] in
  let x1 = Vec.add (Mat.mul_vec a_mat x0) (Mat.mul_vec b_mat u0) in
  let lookup = function "x0" -> Var.Vector x0 | "u0" -> Var.Vector u0 | _ -> Var.Vector x1 in
  check_vec "consistent dynamics" ~eps:1e-9 (Vec.create 4) (Factor.error f lookup);
  check_factor_jacobians "dynamics" f
    [ ("x0", Var.Vector x0); ("u0", Var.Vector u0); ("x1", Var.Vector (Vec.add x1 [| 0.1; 0.0; 0.0; 0.1 |])) ]

let test_component_limit () =
  let f = Motion_factors.component_limit ~name:"vlim" ~var:"x" ~index:3 ~max_abs:2.0 ~sigma:1.0 in
  let under _ = Var.Vector [| 0.0; 0.0; 0.0; 1.5; 0.0 |] in
  check_vec "under" [| 0.0 |] (Factor.error f under);
  let over = [| 0.0; 0.0; 0.0; -3.0; 0.0 |] in
  let lookup _ = Var.Vector over in
  check_vec "over" ~eps:1e-9 [| 1.0 |] (Factor.error f lookup);
  check_factor_jacobians "component limit" f [ ("x", Var.Vector over) ]

let test_costs () =
  let f = Motion_factors.state_cost ~name:"cost" ~var:"x" ~target:[| 1.0; 2.0 |] ~sigmas:[| 0.5; 0.5 |] in
  check_factor_jacobians "state cost" f [ ("x", Var.Vector [| 0.0; 0.0 |]) ];
  let g = Motion_factors.input_cost ~name:"u-cost" ~var:"u" ~sigmas:[| 2.0 |] in
  let lookup _ = Var.Vector [| 3.0 |] in
  check_vec "input cost" [| 1.5 |] (Factor.error g lookup)

let test_unicycle_shapes () =
  let a, b = Motion_factors.unicycle_linearized ~v0:1.0 ~theta0:0.3 ~dt:0.1 in
  Alcotest.(check (pair int int)) "A" (5, 5) (Mat.dims a);
  Alcotest.(check (pair int int)) "B" (5, 2) (Mat.dims b)

(* ---------- IMU preintegration ---------- *)

let imu_samples n =
  List.init n (fun k ->
      let t = float_of_int k *. 0.01 in
      ( 0.01,
        [| 0.1 *. sin t; 0.05; 0.2 *. cos t |],
        (* Specific force: hover-ish thrust plus wiggle, cancelling
           gravity on average so motion stays bounded. *)
        [| 0.3 *. cos t; -0.2 *. sin t; 9.81 +. (0.1 *. sin t) |] ))

let test_preintegration_identity () =
  let pre = Imu_preintegration.create () in
  Alcotest.(check (float 0.0)) "dt" 0.0 (Imu_preintegration.delta_t pre);
  check_mat "rot" (Mat.identity 3) (Imu_preintegration.delta_rot pre);
  check_vec "vel" (Vec.create 3) (Imu_preintegration.delta_vel pre)

let test_preintegration_zero_residual_at_truth () =
  (* Noise-free samples: the factor's error at the integrated ground
     truth is (numerically) zero. *)
  let r = rng () in
  let pose_i = Pose3.of_phi_t [| 0.05; -0.1; 0.2 |] [| 1.0; 2.0; 3.0 |] in
  let vel_i = [| 0.4; -0.2; 0.1 |] in
  let gravity = [| 0.0; 0.0; -9.81 |] in
  let pre, pose_j, vel_j =
    Imu_preintegration.simulate ~rng:r ~gravity ~pose_i ~vel_i ~samples:(imu_samples 50)
      ~gyro_noise:0.0 ~accel_noise:0.0
  in
  let f =
    Imu_preintegration.factor ~name:"imu" ~pose_i:"xi" ~vel_i:"vi" ~pose_j:"xj" ~vel_j:"vj"
      ~preintegrated:pre ~rot_sigma:0.01 ~vel_sigma:0.05 ~pos_sigma:0.05
  in
  let lookup = function
    | "xi" -> Var.Pose3 pose_i
    | "vi" -> Var.Vector vel_i
    | "xj" -> Var.Pose3 pose_j
    | _ -> Var.Vector vel_j
  in
  let err = Factor.error f lookup in
  Alcotest.(check bool)
    (Printf.sprintf "residual %.2e" (Vec.norm err))
    true
    (Vec.norm err < 1e-6)

let test_preintegration_jacobians () =
  let r = rng () in
  let pose_i = Pose3.random r ~scale:1.0 in
  let vel_i = [| 0.3; -0.1; 0.2 |] in
  let gravity = [| 0.0; 0.0; -9.81 |] in
  let pre, pose_j, vel_j =
    Imu_preintegration.simulate ~rng:r ~gravity ~pose_i ~vel_i ~samples:(imu_samples 30)
      ~gyro_noise:0.002 ~accel_noise:0.02
  in
  let f =
    Imu_preintegration.factor ~name:"imu" ~pose_i:"xi" ~vel_i:"vi" ~pose_j:"xj" ~vel_j:"vj"
      ~preintegrated:pre ~rot_sigma:0.01 ~vel_sigma:0.05 ~pos_sigma:0.05
  in
  check_factor_jacobians ~eps:1e-4 "preintegration" f
    [
      ("xi", Var.Pose3 pose_i);
      ("vi", Var.Vector vel_i);
      ("xj", Var.Pose3 (Pose3.retract pose_j [| 0.02; -0.01; 0.03; 0.05; -0.05; 0.02 |]));
      ("vj", Var.Vector (Vec.add vel_j [| 0.05; -0.02; 0.01 |]));
    ]

let test_preintegration_vio_smoothing () =
  (* A two-keyframe VIO problem: anchor the first pose and velocity,
     constrain the second with the preintegrated IMU factor, perturb
     the second state — optimization recovers it. *)
  let r = rng () in
  let pose_i = Pose3.identity in
  let vel_i = [| 0.5; 0.0; 0.0 |] in
  let gravity = [| 0.0; 0.0; -9.81 |] in
  let pre, pose_j, vel_j =
    Imu_preintegration.simulate ~rng:r ~gravity ~pose_i ~vel_i ~samples:(imu_samples 40)
      ~gyro_noise:0.0 ~accel_noise:0.0
  in
  let g = Graph.create () in
  Graph.add_variable g "xi" (Var.Pose3 pose_i);
  Graph.add_variable g "vi" (Var.Vector vel_i);
  Graph.add_variable g "xj"
    (Var.Pose3 (Pose3.retract pose_j [| 0.05; -0.03; 0.04; 0.2; -0.1; 0.15 |]));
  Graph.add_variable g "vj" (Var.Vector (Vec.add vel_j [| 0.3; -0.2; 0.1 |]));
  Graph.add_factor g (Pose_factors.prior3 ~name:"anchor" ~var:"xi" ~z:pose_i ~sigma:1e-4);
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"anchor-v" ~var:"vi" ~target:vel_i ~sigmas:(Array.make 3 1e-4));
  Graph.add_factor g
    (Imu_preintegration.factor ~name:"imu" ~pose_i:"xi" ~vel_i:"vi" ~pose_j:"xj" ~vel_j:"vj"
       ~preintegrated:pre ~rot_sigma:0.01 ~vel_sigma:0.02 ~pos_sigma:0.02);
  let report = Optimizer.optimize g in
  Alcotest.(check bool) "converged" true report.Optimizer.converged;
  (match Graph.value g "xj" with
  | Var.Pose3 p ->
      Alcotest.(check bool)
        (Printf.sprintf "pose recovered (%.2e)" (Pose3.distance pose_j p))
        true
        (Pose3.distance pose_j p < 1e-4 && Pose3.angular_distance pose_j p < 1e-4)
  | _ -> Alcotest.fail "kind");
  match Graph.value g "vj" with
  | Var.Vector v ->
      Alcotest.(check bool) "velocity recovered" true (Vec.dist v vel_j < 1e-4)
  | _ -> Alcotest.fail "kind"

(* ---------- SE(3) baseline factors ---------- *)

let random_se3 r = Se3.exp (Array.init 6 (fun _ -> Rng.uniform r ~lo:(-0.8) ~hi:0.8))

let test_se3_between_zero_at_truth () =
  let r = rng () in
  let a = random_se3 r and b = random_se3 r in
  let z = Se3.compose (Se3.inverse a) b in
  let f = Se3_factors.between ~name:"b" ~a:"a" ~b:"b" ~z ~sigma:0.1 in
  let lookup = function "a" -> Var.Se3 a | _ -> Var.Se3 b in
  check_vec "zero" ~eps:1e-8 (Vec.create 6) (Factor.error f lookup)

let test_se3_between_jacobians () =
  let r = rng () in
  for _ = 1 to 3 do
    let z = random_se3 r in
    let f = Se3_factors.between ~name:"b" ~a:"a" ~b:"b" ~z ~sigma:0.2 in
    check_factor_jacobians ~eps:1e-4 "se3 between" f
      [ ("a", Var.Se3 (random_se3 r)); ("b", Var.Se3 (random_se3 r)) ]
  done

let test_se3_prior_jacobians () =
  let r = rng () in
  let z = random_se3 r in
  let f = Se3_factors.prior ~name:"p" ~var:"x" ~z ~sigma:0.2 in
  check_factor_jacobians ~eps:1e-4 "se3 prior" f [ ("x", Var.Se3 (random_se3 r)) ]

let test_se3_rejects_ir_path () =
  (* SE(3) variables cannot flow through the unified-representation
     compiler: symbolic factors referring to them must fail. *)
  let f = Pose_factors.gps3 ~name:"gps" ~var:"x" ~z:[| 0.0; 0.0; 0.0 |] ~sigma:1.0 in
  let lookup _ = Var.Se3 Se3.identity in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Factor.linearize f lookup);
       false
     with Invalid_argument _ -> true)

(* ---------- a complete localization solve using library factors ---------- *)

let test_slam_2d_with_landmarks () =
  let rng = Rng.of_int 314 in
  (* Ground truth: robot walks a square, observing two landmarks. *)
  let truth =
    [|
      Pose2.create ~theta:0.0 ~t:[| 0.0; 0.0 |];
      Pose2.create ~theta:(Float.pi /. 2.0) ~t:[| 2.0; 0.0 |];
      Pose2.create ~theta:Float.pi ~t:[| 2.0; 2.0 |];
      Pose2.create ~theta:(-.Float.pi /. 2.0) ~t:[| 0.0; 2.0 |];
    |]
  in
  let landmarks = [| [| 1.0; 1.0 |]; [| 3.0; 1.0 |] |] in
  let g = Graph.create () in
  Array.iteri
    (fun i p ->
      let noise = Array.init 3 (fun _ -> Rng.gaussian_sigma rng ~sigma:0.15) in
      Graph.add_variable g (Printf.sprintf "x%d" i) (Var.Pose2 (Pose2.retract p noise)))
    truth;
  Array.iteri
    (fun i l ->
      let noise = Array.init 2 (fun _ -> Rng.gaussian_sigma rng ~sigma:0.2) in
      Graph.add_variable g (Printf.sprintf "l%d" i) (Var.Vector (Vec.add l noise)))
    landmarks;
  Graph.add_factor g (Pose_factors.prior2 ~name:"prior" ~var:"x0" ~z:truth.(0) ~sigma:1e-3);
  for i = 0 to 2 do
    let z = Pose2.ominus truth.(i + 1) truth.(i) in
    Graph.add_factor g
      (Pose_factors.between2 ~name:"odo" ~a:(Printf.sprintf "x%d" i)
         ~b:(Printf.sprintf "x%d" (i + 1)) ~z ~sigma:0.05)
  done;
  Array.iteri
    (fun pi p ->
      Array.iteri
        (fun li l ->
          let z = Mat.mul_vec (Mat.transpose (Pose2.rotation p)) (Vec.sub l (Pose2.translation p)) in
          Graph.add_factor g
            (Pose_factors.lidar_landmark2 ~name:"obs" ~pose:(Printf.sprintf "x%d" pi)
               ~landmark:(Printf.sprintf "l%d" li) ~z ~sigma:0.03))
        landmarks)
    truth;
  let report = Optimizer.optimize g in
  Alcotest.(check bool) "converged" true report.Optimizer.converged;
  Alcotest.(check bool)
    (Printf.sprintf "small residual %g" report.Optimizer.final_error)
    true
    (report.Optimizer.final_error < 1e-9);
  Array.iteri
    (fun i p ->
      match Graph.value g (Printf.sprintf "x%d" i) with
      | Var.Pose2 q -> Alcotest.(check bool) "pose recovered" true (Pose2.distance p q < 1e-4)
      | _ -> Alcotest.fail "kind")
    truth

let () =
  Alcotest.run "factors"
    [
      ( "pose",
        [
          Alcotest.test_case "prior3 zero" `Quick test_prior3_zero_at_truth;
          Alcotest.test_case "prior3 jacobians" `Quick test_prior3_jacobians;
          Alcotest.test_case "prior2 jacobians" `Quick test_prior2_jacobians;
          Alcotest.test_case "between3 zero" `Quick test_between3_zero_at_truth;
          Alcotest.test_case "between3 jacobians" `Quick test_between3_jacobians;
          Alcotest.test_case "between2 jacobians" `Quick test_between2_jacobians;
          Alcotest.test_case "gps3 jacobians" `Quick test_gps3_jacobians;
          Alcotest.test_case "lidar3 jacobians" `Quick test_lidar_landmark3_jacobians;
          Alcotest.test_case "lidar2 jacobians" `Quick test_lidar_landmark2_jacobians;
          Alcotest.test_case "lidar zero" `Quick test_lidar_zero_at_truth;
        ] );
      ( "vision",
        [
          Alcotest.test_case "camera zero" `Quick test_camera_zero_at_truth;
          Alcotest.test_case "camera jacobians" `Quick test_camera_jacobians;
          Alcotest.test_case "camera block shapes" `Quick test_camera_jacobian_shapes;
          Alcotest.test_case "camera behind" `Quick test_camera_behind;
          Alcotest.test_case "bearing-range jacobians" `Quick test_bearing_range_jacobians;
        ] );
      ( "motion",
        [
          Alcotest.test_case "smooth zero" `Quick test_smooth_zero_on_constant_velocity;
          Alcotest.test_case "smooth jacobians" `Quick test_smooth_jacobians;
          Alcotest.test_case "collision inactive" `Quick test_collision_inactive_outside;
          Alcotest.test_case "collision active" `Quick test_collision_active_inside;
          Alcotest.test_case "speed limit" `Quick test_speed_limit;
          Alcotest.test_case "dynamics" `Quick test_dynamics_zero_and_jacobians;
          Alcotest.test_case "component limit" `Quick test_component_limit;
          Alcotest.test_case "costs" `Quick test_costs;
          Alcotest.test_case "unicycle shapes" `Quick test_unicycle_shapes;
        ] );
      ( "imu",
        [
          Alcotest.test_case "identity" `Quick test_preintegration_identity;
          Alcotest.test_case "zero residual at truth" `Quick test_preintegration_zero_residual_at_truth;
          Alcotest.test_case "jacobians" `Quick test_preintegration_jacobians;
          Alcotest.test_case "vio smoothing" `Quick test_preintegration_vio_smoothing;
        ] );
      ( "se3",
        [
          Alcotest.test_case "between zero" `Quick test_se3_between_zero_at_truth;
          Alcotest.test_case "between jacobians" `Quick test_se3_between_jacobians;
          Alcotest.test_case "prior jacobians" `Quick test_se3_prior_jacobians;
          Alcotest.test_case "rejects IR path" `Quick test_se3_rejects_ir_path;
        ] );
      ("slam", [ Alcotest.test_case "2d slam with landmarks" `Quick test_slam_2d_with_landmarks ]);
    ]
