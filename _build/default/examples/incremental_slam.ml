(* Incremental smoothing: online localization as a measurement stream.

   Localization accelerators (the paper's [21] substrate) exploit
   incremental factor-graph inference: each new keyframe only
   re-eliminates the variables its measurements touch plus their
   ancestors, instead of re-solving the whole window.  This example
   streams a 120-pose 2D trajectory with periodic loop closures and
   compares the work the incremental smoother does against batch
   re-elimination — while checking both produce identical solutions.

   Run with: dune exec examples/incremental_slam.exe *)

open Orianna_linalg
open Orianna_fg
open Orianna_util

let dim = 2
let poses = 120
let loop_every = 30

(* Plain linear factors: prior and relative measurements on 2D
   positions (the linear core an iSAM-style smoother operates on). *)
let prior ~var ~z ~sigma =
  {
    Linear_system.vars = [ var ];
    blocks = [ (var, Mat.scale (1.0 /. sigma) (Mat.identity dim)) ];
    rhs = Vec.scale (-1.0 /. sigma) (Vec.sub [| 0.0; 0.0 |] z);
  }

let between ~a ~b ~z ~sigma =
  let w = 1.0 /. sigma in
  {
    Linear_system.vars = [ a; b ];
    blocks =
      [ (a, Mat.scale (-.w) (Mat.identity dim)); (b, Mat.scale w (Mat.identity dim)) ];
    rhs = Vec.scale w z;
  }

let name i = Printf.sprintf "x%d" i

let () =
  let rng = Rng.of_int 31415 in
  let inc = Incremental.create () in
  let all_factors = ref [] in
  let affected_counts = ref [] in
  let push f =
    all_factors := f :: !all_factors;
    Incremental.update inc [ f ];
    affected_counts := (Incremental.stats inc).Incremental.affected_last :: !affected_counts
  in
  Incremental.add_variable inc (name 0) dim;
  push (prior ~var:(name 0) ~z:[| 0.0; 0.0 |] ~sigma:0.1);
  for i = 1 to poses - 1 do
    Incremental.add_variable inc (name i) dim;
    let z = [| 1.0 +. Rng.gaussian_sigma rng ~sigma:0.05; Rng.gaussian_sigma rng ~sigma:0.05 |] in
    push (between ~a:(name (i - 1)) ~b:(name i) ~z ~sigma:0.1);
    if i mod loop_every = 0 then
      (* Loop closure back to a much older pose. *)
      push
        (between
           ~a:(name (i - loop_every))
           ~b:(name i)
           ~z:[| float_of_int loop_every; 0.0 |]
           ~sigma:0.2)
  done;

  (* Exactness: incremental == batch over all factors. *)
  let incremental = Incremental.solution inc in
  let batch = Incremental.batch_equivalent inc !all_factors in
  let max_diff =
    List.fold_left
      (fun acc (v, d) -> Float.max acc (Vec.dist d (List.assoc v batch)))
      0.0 incremental
  in
  Format.printf "streamed %d poses, %d updates@." poses
    (Incremental.stats inc).Incremental.updates;
  Format.printf "incremental vs batch solution: max difference %.2e@." max_diff;
  assert (max_diff < 1e-8);

  (* Work comparison. *)
  let counts = Array.of_list (List.rev !affected_counts) in
  let odometry = Array.to_list counts |> List.filter (fun c -> c <= 3) in
  let closures = Array.to_list counts |> List.filter (fun c -> c > 3) in
  Format.printf "@.re-eliminated variables per update:@.";
  Format.printf "  odometry updates : %d updates, avg %.1f variables@." (List.length odometry)
    (Stats.mean (Array.of_list (List.map float_of_int odometry)));
  Format.printf "  loop closures    : %d updates, avg %.1f variables@." (List.length closures)
    (Stats.mean (Array.of_list (List.map float_of_int closures)));
  Format.printf "  batch would re-eliminate all %d variables on every update@." poses;
  let incremental_work = Array.fold_left ( + ) 0 counts in
  let batch_work =
    (* Batch re-eliminates everything seen so far at each update. *)
    let n = Array.length counts in
    let acc = ref 0 in
    for i = 1 to n do
      acc := !acc + min poses i
    done;
    !acc
  in
  Format.printf "@.total eliminations: incremental %d vs batch-every-update %d (%.1fx less work)@."
    incremental_work batch_work
    (float_of_int batch_work /. float_of_int incremental_work)
