(* Quickstart: the paper's Sec. 5.1 programming model in a few lines.

   A drone observes two landmarks from three keyframes.  We build the
   localization factor graph exactly like the paper's code listing —
   camera factors, IMU factors, one prior — and call optimize.

   Run with: dune exec examples/quickstart.exe *)

open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_factors

let () =
  (* Ground truth, used here to synthesize measurements. *)
  let x1 = Pose3.identity in
  let x2 = Pose3.of_phi_t [| 0.0; 0.0; 0.1 |] [| 1.0; 0.0; 0.0 |] in
  let x3 = Pose3.of_phi_t [| 0.0; 0.0; 0.2 |] [| 2.0; 0.1; 0.0 |] in
  let y1 = [| 1.0; -0.5; 4.0 |] and y2 = [| 2.5; 0.5; 5.0 |] in
  let k = Vision_factors.default_intrinsics in
  let observe pose landmark =
    Vision_factors.project k
      (Mat.mul_vec (Mat.transpose (Pose3.rotation pose)) (Vec.sub landmark (Pose3.translation pose)))
  in

  (* The paper's listing: start from an empty graph, add variables with
     initial guesses, then add factors. *)
  let graph = Graph.create () in
  Graph.add_variable graph "x1" (Var.Pose3 (Pose3.retract x1 [| 0.02; -0.03; 0.05; 0.1; -0.1; 0.05 |]));
  Graph.add_variable graph "x2" (Var.Pose3 (Pose3.retract x2 [| -0.04; 0.02; 0.03; -0.1; 0.1; 0.1 |]));
  Graph.add_variable graph "x3" (Var.Pose3 (Pose3.retract x3 [| 0.03; 0.01; -0.04; 0.1; 0.05; -0.1 |]));
  Graph.add_variable graph "y1" (Var.Vector (Vec.add y1 [| 0.2; -0.1; 0.3 |]));
  Graph.add_variable graph "y2" (Var.Vector (Vec.add y2 [| -0.2; 0.2; -0.3 |]));

  Graph.add_factor graph (Vision_factors.camera ~name:"CameraFactor1" ~pose:"x1" ~landmark:"y1" ~z:(observe x1 y1) ~sigma:1.0 ());
  Graph.add_factor graph (Vision_factors.camera ~name:"CameraFactor2" ~pose:"x2" ~landmark:"y1" ~z:(observe x2 y1) ~sigma:1.0 ());
  Graph.add_factor graph (Vision_factors.camera ~name:"CameraFactor3" ~pose:"x3" ~landmark:"y2" ~z:(observe x3 y2) ~sigma:1.0 ());
  Graph.add_factor graph (Vision_factors.camera ~name:"CameraFactor4" ~pose:"x1" ~landmark:"y2" ~z:(observe x1 y2) ~sigma:1.0 ());
  Graph.add_factor graph (Pose_factors.between3 ~name:"IMUFactor1" ~a:"x1" ~b:"x2" ~z:(Pose3.ominus x2 x1) ~sigma:0.01);
  Graph.add_factor graph (Pose_factors.between3 ~name:"IMUFactor2" ~a:"x2" ~b:"x3" ~z:(Pose3.ominus x3 x2) ~sigma:0.01);
  Graph.add_factor graph (Pose_factors.prior3 ~name:"PriorFactor" ~var:"x1" ~z:x1 ~sigma:0.001);

  (* graph.optimize() *)
  let report = Optimizer.optimize graph in
  Format.printf "optimize: %a@." Optimizer.pp_report report;

  List.iter
    (fun (name, truth) ->
      match Graph.value graph name with
      | Var.Pose3 p ->
          Format.printf "  %s recovered within %.2e m, %.2e rad@." name (Pose3.distance truth p)
            (Pose3.angular_distance truth p)
      | _ -> ())
    [ ("x1", x1); ("x2", x2); ("x3", x3) ];

  (* The same graph, compiled to the ORIANNA instruction stream and
     executed with accelerator semantics. *)
  let program = Orianna_compiler.Compile.compile graph in
  let stats = Orianna_isa.Program.stats program in
  Format.printf "compiled: %d instructions, critical path %d, %d flops@."
    stats.Orianna_isa.Program.instructions stats.Orianna_isa.Program.critical_path
    stats.Orianna_isa.Program.flops_total
