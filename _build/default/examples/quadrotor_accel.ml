(* Hardware generation under resource constraints (Sec. 6.2) for the
   Quadrotor, the paper's most demanding application (12-dimensional
   states, camera + IMU localization).

   We sweep the DSP budget and let the generator pick unit mixes; the
   trace shows which template it replicates (or how wide it makes the
   QR array) at each step — the Equ. 5 greedy in action.

   Run with: dune exec examples/quadrotor_accel.exe *)

open Orianna
open Orianna_hw
open Orianna_sim
module App = Orianna_apps.App

let move_name = function
  | None -> "(initial)"
  | Some (Dse.Add_unit cls) -> "+" ^ Unit_model.class_name cls
  | Some Dse.Widen_qr -> "widen QR array"

let () =
  let frame = Pipeline.frame App.quadrotor ~seed:7 in
  let program = frame.Pipeline.program in
  Format.printf "quadrotor stream: %d instructions@.@."
    (Orianna_isa.Program.length program);

  (* Full-budget generation, with the step-by-step trace. *)
  let result = Pipeline.generate program in
  Format.printf "generation trace (ZC706 budget):@.";
  List.iter
    (fun (s : Dse.step) ->
      Format.printf "  %-16s -> %8.1f us   (%a)@." (move_name s.Dse.added)
        (s.Dse.objective *. 1e6) Resource.pp s.Dse.resources)
    result.Dse.trace;
  Format.printf "@.final design:@.%a@.@." Accel.pp result.Dse.best;

  (* Budget sweep: performance under tighter DSP constraints
     (the Fig. 19 experiment for one application). *)
  Format.printf "DSP budget sweep:@.";
  List.iter
    (fun dsp ->
      let budget = { Resource.zc706 with Resource.dsp } in
      let r = Pipeline.generate ~budget program in
      let sim = Schedule.run ~accel:r.Dse.best ~policy:Schedule.Ooo_full program in
      Format.printf "  dsp <= %4d : %8.1f us with %d units (qr width %d)@." dsp
        (sim.Schedule.seconds *. 1e6) (Accel.total_units r.Dse.best) r.Dse.best.Accel.qr_rotators)
    [ 352; 512; 700; 900 ];

  (* Phase breakdown on the full-budget design (Sec. 7.3). *)
  let sim = Schedule.run ~accel:result.Dse.best ~policy:Schedule.Ooo_full program in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 sim.Schedule.phase_busy in
  Format.printf "@.phase breakdown:@.";
  List.iter
    (fun (ph, c) ->
      Format.printf "  %-10s %5.1f%%@."
        (Orianna_isa.Instr.phase_name ph)
        (100.0 *. float_of_int c /. float_of_int total))
    sim.Schedule.phase_busy
