examples/quickstart.ml: Format Graph List Mat Optimizer Orianna_compiler Orianna_factors Orianna_fg Orianna_isa Orianna_lie Orianna_linalg Pose3 Pose_factors Var Vec Vision_factors
