examples/quickstart.mli:
