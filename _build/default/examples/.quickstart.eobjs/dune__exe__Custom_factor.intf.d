examples/custom_factor.mli:
