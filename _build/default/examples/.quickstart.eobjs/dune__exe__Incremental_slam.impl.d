examples/incremental_slam.ml: Array Float Format Incremental Linear_system List Mat Orianna_fg Orianna_linalg Orianna_util Printf Rng Stats Vec
