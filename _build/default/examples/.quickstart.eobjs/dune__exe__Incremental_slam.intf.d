examples/incremental_slam.mli:
