examples/mobile_robot_stack.ml: Cpu_model Format Gpu_model List Orianna Orianna_apps Orianna_baselines Orianna_fg Orianna_hw Orianna_isa Orianna_sim Pipeline
