examples/quadrotor_accel.mli:
