examples/quadrotor_accel.ml: Accel Dse Format List Orianna Orianna_apps Orianna_hw Orianna_isa Orianna_sim Pipeline Resource Schedule Unit_model
