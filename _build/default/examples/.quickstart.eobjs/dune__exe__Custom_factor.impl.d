examples/custom_factor.ml: Array Factor Format Graph List Mat Option Orianna_compiler Orianna_factors Orianna_fg Orianna_ir Orianna_isa Orianna_lie Orianna_linalg Pose3 Pose_factors String Var Vec
