examples/vio_window.mli:
