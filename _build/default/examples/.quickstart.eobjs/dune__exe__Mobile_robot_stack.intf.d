examples/mobile_robot_stack.mli:
