(* Visual-inertial odometry over a sliding window.

   A VINS-Mono-style stack (the paper's [52]) estimates keyframe poses
   AND velocities by fusing camera reprojections with preintegrated
   IMU measurements.  This example builds a 5-keyframe window — pose
   and velocity variables per keyframe, landmarks, camera factors and
   Imu_preintegration factors — perturbs everything, optimizes, and
   shows the recovered states.  The same graph then goes through the
   ORIANNA compiler to report what the accelerator would execute.

   Run with: dune exec examples/vio_window.exe *)

open Orianna_linalg
open Orianna_lie
open Orianna_fg
open Orianna_factors
open Orianna_util

let keyframes = 5
let imu_rate_hz = 100.0
let keyframe_dt = 0.2
let gravity = [| 0.0; 0.0; -9.81 |]

(* Ground-truth motion: a gentle arc with yaw, specific-force samples
   chosen so the IMU integrates to it exactly. *)
let gyro t = [| 0.02 *. sin t; 0.01; 0.15 |]
let accel t = [| 0.4 *. cos t; -0.3 *. sin t; 9.81 +. (0.05 *. sin (2.0 *. t)) |]

let pose_name i = Printf.sprintf "x%d" i
let vel_name i = Printf.sprintf "v%d" i
let lm_name i = Printf.sprintf "l%d" i

let () =
  let rng = Rng.of_int 777 in
  (* Integrate the true trajectory keyframe by keyframe, keeping the
     preintegrated measurement of each interval. *)
  let samples_per_kf = int_of_float (imu_rate_hz *. keyframe_dt) in
  let dt = 1.0 /. imu_rate_hz in
  let truth_poses = Array.make keyframes Pose3.identity in
  let truth_vels = Array.make keyframes [| 0.5; 0.0; 0.0 |] in
  let preints = Array.make (keyframes - 1) (Imu_preintegration.create ~gravity ()) in
  for k = 0 to keyframes - 2 do
    let t0 = float_of_int k *. keyframe_dt in
    let samples =
      List.init samples_per_kf (fun s ->
          let t = t0 +. (float_of_int s *. dt) in
          (dt, gyro t, accel t))
    in
    let pre, pose_j, vel_j =
      Imu_preintegration.simulate ~rng ~gravity ~pose_i:truth_poses.(k) ~vel_i:truth_vels.(k)
        ~samples ~gyro_noise:0.0005 ~accel_noise:0.005
    in
    preints.(k) <- pre;
    truth_poses.(k + 1) <- pose_j;
    truth_vels.(k + 1) <- vel_j
  done;
  let landmarks =
    Array.init 8 (fun i ->
        let a = 2.0 *. Float.pi *. float_of_int i /. 8.0 in
        [| 4.0 *. cos a; 4.0 *. sin a; 1.0 +. (0.3 *. float_of_int i) |])
  in

  (* Build the window with perturbed initial estimates. *)
  let g = Graph.create () in
  Array.iteri
    (fun i p ->
      let n = Array.init 6 (fun k -> Rng.gaussian_sigma rng ~sigma:(if k < 3 then 0.01 else 0.05)) in
      Graph.add_variable g (pose_name i) (Var.Pose3 (Pose3.retract p n)))
    truth_poses;
  Array.iteri
    (fun i v ->
      Graph.add_variable g (vel_name i)
        (Var.Vector (Vec.add v (Array.init 3 (fun _ -> Rng.gaussian_sigma rng ~sigma:0.1)))))
    truth_vels;
  Array.iteri
    (fun i l ->
      Graph.add_variable g (lm_name i)
        (Var.Vector (Vec.add l (Array.init 3 (fun _ -> Rng.gaussian_sigma rng ~sigma:0.1)))))
    landmarks;
  Graph.add_factor g (Pose_factors.prior3 ~name:"anchor" ~var:(pose_name 0) ~z:truth_poses.(0) ~sigma:1e-4);
  Graph.add_factor g
    (Motion_factors.state_cost ~name:"anchor-v" ~var:(vel_name 0) ~target:truth_vels.(0)
       ~sigmas:(Array.make 3 1e-4));
  (* IMU preintegration factors between consecutive keyframes. *)
  for k = 0 to keyframes - 2 do
    Graph.add_factor g
      (Imu_preintegration.factor
         ~name:(Printf.sprintf "IMUFactor%d" k)
         ~pose_i:(pose_name k) ~vel_i:(vel_name k)
         ~pose_j:(pose_name (k + 1))
         ~vel_j:(vel_name (k + 1))
         ~preintegrated:preints.(k) ~rot_sigma:0.002 ~vel_sigma:0.02 ~pos_sigma:0.02)
  done;
  (* Camera reprojections of landmarks with positive depth. *)
  let k_intr = Vision_factors.default_intrinsics in
  let observations = ref 0 in
  Array.iteri
    (fun pi p ->
      Array.iteri
        (fun li l ->
          let p_cam = Mat.mul_vec (Mat.transpose (Pose3.rotation p)) (Vec.sub l (Pose3.translation p)) in
          if p_cam.(2) > 0.5 then begin
            incr observations;
            let z = Vec.add (Vision_factors.project k_intr p_cam)
                      (Array.init 2 (fun _ -> Rng.gaussian_sigma rng ~sigma:0.5)) in
            Graph.add_factor g
              (Vision_factors.camera
                 ~name:(Printf.sprintf "CameraFactor%d-%d" pi li)
                 ~pose:(pose_name pi) ~landmark:(lm_name li) ~z ~sigma:0.5 ())
          end)
        landmarks)
    truth_poses;

  Format.printf "window: %d keyframes, %d landmarks, %d camera observations, %d IMU factors@."
    keyframes (Array.length landmarks) !observations (keyframes - 1);
  let report = Optimizer.optimize g in
  Format.printf "optimize: %a@.@." Optimizer.pp_report report;

  Array.iteri
    (fun i truth ->
      match (Graph.value g (pose_name i), Graph.value g (vel_name i)) with
      | Var.Pose3 p, Var.Vector v ->
          Format.printf "  kf%d: pose error %.2e m / %.2e rad, velocity error %.2e m/s@." i
            (Pose3.distance truth p) (Pose3.angular_distance truth p)
            (Vec.dist v truth_vels.(i))
      | _ -> ())
    truth_poses;

  let program = Orianna_compiler.Compile.compile g in
  Format.printf "@.compiled VIO window: %a@." Orianna_isa.Program.pp_stats
    (Orianna_isa.Program.stats program)
